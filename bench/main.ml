(* Benchmark harness.

   Two layers:

   1. Bechamel micro-benchmarks — one Test.make per paper artifact
      (Tables 1–2, Figs. 3–7) timing the analytical-model evaluation
      for that artifact's configuration, plus substrate benchmarks
      (routing, event queue, simulator throughput).  These measure
      the cost of the "practical evaluation tool" the paper argues
      for: a model evaluation must be orders of magnitude cheaper
      than a simulation.

   2. Figure regeneration — prints the model and (scaled-down)
      simulation series for every figure, i.e. the rows behind each
      plotted curve, plus the Section-4 light-load error table.

   A machine-readable summary of the simulator's throughput is also
   written to BENCH_sim.json (next to the human-readable output) so
   the perf trajectory can be tracked across changes: each paper
   organization runs once with the per-flit state machine and once
   with the streaming fast path, recording events, wall seconds,
   events per second, and allocated bytes per event.

   A second machine-readable summary, BENCH_sweep.json, tracks the
   sweep orchestration engine: the same figure sweep run (a) through
   the legacy Parallel.map fan-out with the fixed replication budget
   a non-adaptive design must provision to guarantee the precision
   target everywhere, (b) cold through the engine (work-stealing
   scheduler + CI-adaptive replications, empty cache), and (c) warm
   (same cache), recording wall times, per-domain occupancy, steal
   counts and cache hit rates.

   Environment knobs:
     FATNET_BENCH_SIM=0        skip the simulation series (model only)
     FATNET_BENCH_SIM_STEPS=n  simulation points per curve (default 4)
     FATNET_BENCH_MEASURED=n   measured messages per point (default 4000)
     FATNET_BENCH_JSON=path    where to write the summary
                               (default BENCH_sim.json; empty disables)
     FATNET_BENCH_SWEEP=0          skip the sweep benchmark
     FATNET_BENCH_SWEEP_STEPS=n    sweep points per curve (default 4)
     FATNET_BENCH_SWEEP_MEASURED=n measured messages per replication
                                   (default 500; the fixed baseline
                                   gets this times the 8-rep cap)
     FATNET_BENCH_SWEEP_JSON=path  (default BENCH_sweep.json; empty disables)
     FATNET_BENCH_ONLY=sweep       run only the sweep benchmark

   A third summary, BENCH_obs.json, is the telemetry overhead guard:
   the org_544 cut-through workload runs interleaved with metrics
   disabled, with a live registry, and with a live span trace
   (metrics off), best-of-N each way.  The run fails (exit 1) if the
   enabled-mode or trace-mode overhead exceeds FATNET_BENCH_OBS_TOL
   (default 1%) — an upper bound on what the disabled-mode no-op
   sinks can cost.  The disabled-mode throughput is also compared
   against BENCH_sim.json's recorded baseline; report-only unless
   FATNET_BENCH_GUARD_TOL is set.

     FATNET_BENCH_OBS=0            skip the overhead guard
     FATNET_BENCH_OBS_MEASURED=n   measured messages (default 4000)
     FATNET_BENCH_OBS_REPS=n       repetitions per mode (default 5)
     FATNET_BENCH_OBS_TOL=x        enabled-overhead tolerance (default 0.01)
     FATNET_BENCH_GUARD_TOL=x      assert disabled-vs-baseline too
     FATNET_BENCH_OBS_JSON=path    (default BENCH_obs.json; empty disables)
     FATNET_BENCH_ONLY=obs         run only the overhead guard

   A fourth summary, BENCH_model.json, tracks the analytical-model
   evaluation engine: per-evaluation throughput and allocation of the
   record-building reference ([Latency.mean]) against the reusable
   [Eval] workspace, and the saturation-search path cold
   ([Latency.saturation_rate], rebuilt per system) against
   workspace + warm-started bracketing over a family of perturbed
   systems.  Bit-identity of the two evaluation paths is asserted in
   process (exit 1 on a mismatch).  The workspace throughput is also
   compared against the committed BENCH_model.json; report-only
   unless FATNET_BENCH_MODEL_GUARD_TOL is set.

     FATNET_BENCH_MODEL=0            skip the model engine benchmark
     FATNET_BENCH_MODEL_EVALS=n      timed evaluations per path (default 200)
     FATNET_BENCH_MODEL_SEARCHES=n   perturbed saturation searches (default 12)
     FATNET_BENCH_MODEL_GUARD_TOL=x  assert workspace-vs-baseline throughput
     FATNET_BENCH_MODEL_JSON=path    (default BENCH_model.json; empty disables)
     FATNET_BENCH_ONLY=model         run only the model engine benchmark

   A fifth summary, BENCH_parallel.json, stresses the multicore
   evaluation engine with a design-search workload: a seeded random
   walk over an 8x8 candidate lattice (ICN2 bandwidth scale x message
   length), each step evaluating a fixed λ grid, run sequentially and
   then through Eval.Pool at several domain counts with and without
   the sharded in-memory memo.  Every configuration is asserted
   bit-identical to the sequential reference in process (exit 1 on a
   mismatch).  The best engine throughput is compared against the
   committed BENCH_parallel.json; report-only unless
   FATNET_BENCH_PARALLEL_GUARD_TOL is set.

     FATNET_BENCH_PARALLEL=0            skip the multicore engine driver
     FATNET_BENCH_PARALLEL_STEPS=n      design-walk steps (default 512)
     FATNET_BENCH_PARALLEL_LAMBDAS=n    rates evaluated per step (default 4)
     FATNET_BENCH_PARALLEL_DOMAINS=l    comma-separated domain counts
                                        (default 1,2,4,8)
     FATNET_BENCH_PARALLEL_GUARD_TOL=x  assert engine-vs-baseline throughput
     FATNET_BENCH_PARALLEL_JSON=path    (default BENCH_parallel.json; empty
                                        disables)
     FATNET_BENCH_ONLY=parallel         run only the multicore engine driver

   A sixth summary, BENCH_tail.json, guards the distribution-carrying
   result pipeline: the per-message bookkeeping a run now performs is
   two Welford adds (all + intra|inter) plus the four-estimator P²
   quantile ladder.  The bench replays one synthetic latency stream
   through the scalar-era accumulators (moments only) and through the
   full distribution pipeline, best-of-N each way, and converts the
   per-sample difference into a fraction of a real simulation run's
   wall time (per-flit and streaming engines, measured in the same
   process).  The run fails (exit 1) if the worst-case fraction
   exceeds FATNET_BENCH_TAIL_TOL (default 5%).  Model-side tail
   throughput (Eval.quantile: shifted-exponential mixture build +
   bracketed inversion) is reported alongside, report-only.

     FATNET_BENCH_TAIL=0            skip the distribution-overhead guard
     FATNET_BENCH_TAIL_SAMPLES=n    replayed latency samples (default 200000)
     FATNET_BENCH_TAIL_MEASURED=n   measured messages in the timed sim run
                                    (default 4000)
     FATNET_BENCH_TAIL_REPS=n       repetitions per pipeline (default 5)
     FATNET_BENCH_TAIL_TOL=x        overhead tolerance (default 0.05)
     FATNET_BENCH_TAIL_JSON=path    (default BENCH_tail.json; empty disables)
     FATNET_BENCH_ONLY=tail         run only the distribution-overhead guard *)

open Bechamel
open Toolkit

module Figures = Fatnet_experiments.Figures
module Presets = Fatnet_model.Presets
module Runner = Fatnet_sim.Runner
module Scenario = Fatnet_scenario.Scenario

let env_int name default =
  match Sys.getenv_opt name with Some s -> (try int_of_string s with _ -> default) | None -> default

let with_sim = env_int "FATNET_BENCH_SIM" 1 <> 0
let sim_steps = env_int "FATNET_BENCH_SIM_STEPS" 4
let sim_measured = env_int "FATNET_BENCH_MEASURED" 4000

let sim_protocol =
  {
    Scenario.quick_protocol with
    Scenario.warmup = sim_measured / 10;
    measured = sim_measured;
    drain = sim_measured / 10;
  }

(* ---- micro-benchmarks ---- *)

let message32 = Presets.message ~m_flits:32 ~d_m_bytes:256.

(* Table 1: building and validating the two organizations. *)
let bench_table1 =
  Test.make ~name:"table1:build-organizations"
    (Staged.stage (fun () ->
         ignore (Fatnet_model.Params.validate Presets.org_1120);
         ignore (Fatnet_model.Params.validate Presets.org_544)))

(* Table 2: service-time derivation from network characteristics. *)
let bench_table2 =
  Test.make ~name:"table2:service-times"
    (Staged.stage (fun () ->
         ignore (Fatnet_model.Service_time.t_cn Presets.net1 ~message:message32);
         ignore (Fatnet_model.Service_time.t_cs Presets.net2 ~message:message32);
         ignore
           (Fatnet_model.Service_time.relaxing_factor ~ecn1:Presets.net2 ~icn2:Presets.net1)))

(* One model evaluation per figure, at mid-range load. *)
let bench_figure spec =
  let curve = List.hd spec.Figures.curves in
  let scn = curve.Figures.scenario in
  let lambda_g = 0.5 *. spec.Figures.lambda_max in
  Test.make
    ~name:(spec.Figures.id ^ ":model-eval")
    (Staged.stage (fun () -> ignore (Scenario.model_evaluate ~lambda_g scn)))

(* Substrate benchmarks. *)
let bench_routing =
  let tree = Fatnet_topology.Mport_tree.create ~m:8 ~n:3 in
  let n = Fatnet_topology.Mport_tree.node_count tree in
  let rng = Fatnet_prng.Rng.create ~seed:1L () in
  Test.make ~name:"substrate:route-mport-tree"
    (Staged.stage (fun () ->
         let src = Fatnet_prng.Rng.int rng n in
         let dst = Fatnet_prng.Rng.int_excluding rng n ~excluding:src in
         ignore (Fatnet_topology.Mport_tree.route tree ~src ~dst)))

let bench_event_queue =
  let rng = Fatnet_prng.Rng.create ~seed:2L () in
  Test.make ~name:"substrate:event-queue-push-pop"
    (Staged.stage (fun () ->
         let q = Fatnet_sim.Event_queue.create () in
         for _ = 1 to 64 do
           Fatnet_sim.Event_queue.push q ~time:(Fatnet_prng.Rng.float rng) ()
         done;
         while not (Fatnet_sim.Event_queue.is_empty q) do
           ignore (Fatnet_sim.Event_queue.pop q)
         done))

let bench_sim_small =
  let system =
    Fatnet_model.Params.homogeneous ~m:4 ~tree_depth:1 ~clusters:4 ~icn1:Presets.net1
      ~ecn1:Presets.net2 ~icn2:Presets.net1
  in
  let config = { Runner.quick_config with Runner.warmup = 20; measured = 200; drain = 20 } in
  Test.make ~name:"substrate:simulate-240-messages"
    (Staged.stage (fun () ->
         ignore (Runner.run ~config ~system ~message:message32 ~lambda_g:1e-3 ())))

let micro_tests =
  Test.make_grouped ~name:"fatnet"
    [
      bench_table1;
      bench_table2;
      bench_figure Figures.fig3;
      bench_figure Figures.fig4;
      bench_figure Figures.fig5;
      bench_figure Figures.fig6;
      bench_figure Figures.fig7;
      bench_routing;
      bench_event_queue;
      bench_sim_small;
    ]

let run_micro_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances micro_tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  print_endline "== micro-benchmarks (ns per run, OLS on monotonic clock) ==";
  let rows = ref [] in
  Hashtbl.iter
    (fun measure per_test ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols_result ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (x :: _) -> x
              | _ -> nan
            in
            rows := (name, ns) :: !rows)
          per_test)
    results;
  List.sort (fun (a, _) (b, _) -> compare a b) !rows
  |> List.iter (fun (name, ns) -> Printf.printf "  %-40s %12.1f ns/run\n" name ns);
  print_newline ()

(* ---- simulator throughput summary (BENCH_sim.json) ---- *)

(* Both engines retire the same workload (identical traces, see the
   determinism tests), so the honest cross-engine throughput metric is
   the slow path's event count divided by each engine's wall time:
   the rate at which the engine disposes of the workload's flit-hop
   events, whether it processes them one by one or in closed form. *)
let sim_throughput_json () =
  let scenarios =
    [
      ("org_544:cut_through", Presets.org_544, Runner.Cut_through);
      ("org_544:store_fwd", Presets.org_544, Runner.Store_and_forward);
      ("org_1120:cut_through", Presets.org_1120, Runner.Cut_through);
      ("org_1120:store_fwd", Presets.org_1120, Runner.Store_and_forward);
    ]
  in
  let measure streaming system mode =
    let config = { Runner.quick_config with Runner.cd_mode = mode; streaming } in
    let alloc0 = Gc.allocated_bytes () in
    let r = Runner.run ~config ~system ~message:message32 ~lambda_g:1e-4 () in
    let alloc = Gc.allocated_bytes () -. alloc0 in
    (r, alloc /. float_of_int r.Runner.events)
  in
  let engine_json (r : Runner.result) bytes_per_event ~workload_events =
    Printf.sprintf
      "{ \"events\": %d, \"wall_seconds\": %.6f, \"events_per_sec\": %.0f, \"workload_events_per_sec\": %.0f, \"allocated_bytes_per_event\": %.1f }"
      r.Runner.events r.Runner.wall_seconds
      (float_of_int r.Runner.events /. r.Runner.wall_seconds)
      (float_of_int workload_events /. r.Runner.wall_seconds)
      bytes_per_event
  in
  let slow_wall = ref 0. and fast_wall = ref 0. and workload = ref 0 in
  let rows =
    List.map
      (fun (name, system, mode) ->
        let slow, slow_bpe = measure false system mode in
        let fast, fast_bpe = measure true system mode in
        let workload_events = slow.Runner.events in
        slow_wall := !slow_wall +. slow.Runner.wall_seconds;
        fast_wall := !fast_wall +. fast.Runner.wall_seconds;
        workload := !workload + workload_events;
        Printf.sprintf
          "    { \"name\": %S,\n      \"per_flit\": %s,\n      \"streaming\": %s,\n      \"speedup\": %.2f }"
          name
          (engine_json slow slow_bpe ~workload_events)
          (engine_json fast fast_bpe ~workload_events)
          (slow.Runner.wall_seconds /. fast.Runner.wall_seconds))
      scenarios
  in
  Printf.sprintf
    "{\n  \"suite\": \"fatnet_sim quick_config lambda_g=1e-4 m_flits=32\",\n    \  \"scenarios\": [\n%s\n  ],\n    \  \"totals\": { \"workload_events\": %d, \"per_flit_events_per_sec\": %.0f, \"streaming_events_per_sec\": %.0f, \"speedup\": %.2f }\n     }\n"
    (String.concat ",\n" rows) !workload
    (float_of_int !workload /. !slow_wall)
    (float_of_int !workload /. !fast_wall)
    (!slow_wall /. !fast_wall)

let write_sim_json () =
  match Sys.getenv_opt "FATNET_BENCH_JSON" with
  | Some "" -> ()
  | path_opt ->
      let path = Option.value path_opt ~default:"BENCH_sim.json" in
      let json = sim_throughput_json () in
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Printf.printf "== simulator throughput (written to %s) ==\n%s\n" path json

(* ---- sweep orchestration benchmark (BENCH_sweep.json) ---- *)

module Sweep_engine = Fatnet_experiments.Sweep_engine
module Parallel = Fatnet_experiments.Parallel

let sweep_steps = env_int "FATNET_BENCH_SWEEP_STEPS" 4
let sweep_rep_measured = env_int "FATNET_BENCH_SWEEP_MEASURED" 500
let with_sweep = env_int "FATNET_BENCH_SWEEP" 1 <> 0

(* One replication's protocol, and the stopping rule.  The fixed
   baseline cannot know per-point variance up front, so to guarantee
   the precision target at every point it must provision the cap:
   max_reps x the replication quota, at every point.  The adaptive
   engine spends that budget only where the CI actually needs it
   (and futility-stops points whose CI cannot converge at all). *)
let sweep_replication =
  { Scenario.target_rel = 0.05; confidence = 0.95; min_reps = 2; max_reps = 8; target = Scenario.Mean }

let sweep_rep_protocol =
  {
    Scenario.quick_protocol with
    Scenario.warmup = max 1 (sweep_rep_measured / 10);
    measured = sweep_rep_measured;
    drain = max 1 (sweep_rep_measured / 10);
  }

let sweep_baseline_config =
  let m = sweep_rep_measured * sweep_replication.Scenario.max_reps in
  {
    Runner.quick_config with
    Runner.warmup = max 1 (m / 10);
    measured = m;
    drain = max 1 (m / 10);
  }

(* Exercise the scheduler even on a single-core runner: coarse tasks
   timeshare two domains at negligible cost, and steal counts /
   occupancy become observable. *)
let sweep_domains = max 2 (Parallel.recommended_domains ())

let sweep_points spec ~steps =
  spec.Figures.curves
  |> List.filter (fun c -> c.Figures.simulate)
  |> List.concat_map (fun c ->
         List.init steps (fun i ->
             let lambda_g =
               spec.Figures.lambda_max *. float_of_int (i + 1) /. float_of_int steps
             in
             {
               (Scenario.at c.Figures.scenario lambda_g) with
               Scenario.protocol = sweep_rep_protocol;
               replication = Some sweep_replication;
             }))

let fresh_cache_dir () =
  let marker = Filename.temp_file "fatnet-sweep-cache" "" in
  Sys.remove marker;
  Sys.mkdir marker 0o755;
  marker

let json_float_array xs =
  "[" ^ String.concat ", " (List.map (Printf.sprintf "%.3f") xs) ^ "]"

let sweep_bench_json () =
  let spec = Figures.fig5 in
  let points = sweep_points spec ~steps:sweep_steps in
  let n_points = List.length points in
  (* (a) the legacy path: atomic-counter Parallel.map, fixed budget *)
  let t0 = Fatnet_sim.Clock.now_ns () in
  let baseline_means =
    Parallel.map ~domains:sweep_domains
      (fun (p : Scenario.t) ->
        Runner.mean_latency ~config:sweep_baseline_config ~system:p.Scenario.system
          ~message:p.Scenario.message
          ~lambda_g:(Scenario.require_lambda p)
          ())
      points
  in
  ignore baseline_means;
  let baseline_wall = Fatnet_sim.Clock.seconds_since t0 in
  (* (b) cold engine: empty cache, work stealing, adaptive reps *)
  let cache_dir = fresh_cache_dir () in
  let engine =
    {
      Sweep_engine.default_config with
      domains = Some sweep_domains;
      cache = Sweep_engine.Cache_dir cache_dir;
    }
  in
  let cold_outcome = Sweep_engine.run ~config:engine points in
  let cold_results = Sweep_engine.results_exn cold_outcome in
  let cold = cold_outcome.Sweep_engine.stats in
  (* (c) warm engine: identical sweep against the populated cache *)
  let warm_outcome = Sweep_engine.run ~config:engine points in
  let warm_results = Sweep_engine.results_exn warm_outcome in
  let warm = warm_outcome.Sweep_engine.stats in
  let identical =
    Array.for_all2
      (fun (a : Sweep_engine.point_result) (b : Sweep_engine.point_result) ->
        a.Sweep_engine.summary = b.Sweep_engine.summary)
      cold_results warm_results
  in
  Fatnet_experiments.Point_cache.clear ~dir:cache_dir;
  (try Sys.rmdir cache_dir with Sys_error _ -> ());
  let total_reps =
    Array.fold_left (fun a r -> a + r.Sweep_engine.replications) 0 cold_results
  in
  let reps_per_point =
    Array.to_list (Array.map (fun r -> r.Sweep_engine.replications) cold_results)
  in
  let stats_json (s : Sweep_engine.stats) =
    Printf.sprintf
      "{ \"wall_seconds\": %.6f, \"points\": %d, \"executed\": %d, \"cache_hits\": %d, \"domains\": %d, \"steals\": %d, \"occupancy\": %s }"
      s.Sweep_engine.wall_seconds s.Sweep_engine.points s.Sweep_engine.executed
      s.Sweep_engine.cache_hits s.Sweep_engine.domains_used s.Sweep_engine.steals
      (json_float_array (Array.to_list s.Sweep_engine.occupancy))
  in
  Printf.sprintf
    "{\n\
    \  \"suite\": \"%s sweep, %d points, precision target %.2f rel at %.2f conf, rep quota %d, cap %d\",\n\
    \  \"note\": \"baseline is the legacy Parallel.map fan-out with the fixed budget (cap x rep quota per point) a non-adaptive design must provision to guarantee the precision target at every point; the engine spends that budget adaptively and caches points on disk\",\n\
    \  \"baseline_parallel_map\": { \"wall_seconds\": %.6f, \"measured_per_point\": %d, \"points\": %d, \"domains\": %d },\n\
    \  \"cold_engine\": %s,\n\
    \  \"warm_engine\": %s,\n\
    \  \"replications\": { \"total\": %d, \"per_point\": [%s] },\n\
    \  \"warm_equals_cold_bitwise\": %b,\n\
    \  \"cold_speedup_vs_baseline\": %.2f,\n\
    \  \"warm_speedup_vs_cold\": %.2f\n\
     }\n"
    spec.Figures.id n_points sweep_replication.Scenario.target_rel
    sweep_replication.Scenario.confidence sweep_rep_measured
    sweep_replication.Scenario.max_reps baseline_wall
    sweep_baseline_config.Runner.measured n_points sweep_domains (stats_json cold)
    (stats_json warm) total_reps
    (String.concat ", " (List.map string_of_int reps_per_point))
    identical
    (baseline_wall /. cold.Sweep_engine.wall_seconds)
    (cold.Sweep_engine.wall_seconds /. warm.Sweep_engine.wall_seconds)

let write_sweep_json () =
  if with_sweep then
    match Sys.getenv_opt "FATNET_BENCH_SWEEP_JSON" with
    | Some "" -> ()
    | path_opt ->
        let path = Option.value path_opt ~default:"BENCH_sweep.json" in
        let json = sweep_bench_json () in
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Printf.printf "== sweep orchestration (written to %s) ==\n%s\n" path json

(* ---- instrumentation overhead guard (BENCH_obs.json) ---- *)

module Metrics = Fatnet_obs.Metrics
module Trace = Fatnet_obs.Trace

let obs_measured = env_int "FATNET_BENCH_OBS_MEASURED" 4000
let obs_reps = env_int "FATNET_BENCH_OBS_REPS" 5
let with_obs = env_int "FATNET_BENCH_OBS" 1 <> 0

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (try float_of_string s with _ -> default)
  | None -> default

(* Always asserted: running with a live registry may not cost more
   than this fraction of the disabled-mode throughput measured in the
   same process.  Since the disabled mode's sinks are the same code
   with no-op records, the enabled overhead is an upper bound on what
   the instrumentation can cost when it is off. *)
let obs_tol = env_float "FATNET_BENCH_OBS_TOL" 0.01

let obs_config =
  {
    Runner.quick_config with
    Runner.warmup = max 1 (obs_measured / 10);
    measured = obs_measured;
    drain = max 1 (obs_measured / 10);
  }

let obs_run metrics =
  Runner.run
    ~config:{ obs_config with Runner.metrics }
    ~system:Presets.org_544 ~message:message32 ~lambda_g:1e-4 ()

(* The cross-change reference: BENCH_sim.json's org_544:cut_through
   per-flit throughput, recorded when the event engine landed.  The
   comparison is report-only by default (the checked-in number comes
   from whatever machine last regenerated it); setting
   FATNET_BENCH_GUARD_TOL=0.01 turns it into an assertion for runs
   where the baseline is known to come from the same machine. *)
let baseline_events_per_sec () =
  match open_in_bin "BENCH_sim.json" with
  | exception Sys_error _ -> None
  | ic ->
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let find_from pos needle =
        let n = String.length needle in
        let rec go i =
          if i + n > String.length body then None
          else if String.sub body i n = needle then Some (i + n)
          else go (i + 1)
        in
        go pos
      in
      Option.bind (find_from 0 "\"org_544:cut_through\"") (fun p ->
          Option.bind (find_from p "\"per_flit\"") (fun p ->
              Option.bind (find_from p "\"events_per_sec\": ") (fun p ->
                  let e = ref p in
                  while
                    !e < String.length body
                    && (match body.[!e] with '0' .. '9' | '.' | 'e' | '+' | '-' -> true | _ -> false)
                  do
                    incr e
                  done;
                  float_of_string_opt (String.sub body p (!e - p)))))

let obs_guard () =
  (* Interleave the two modes; wall-clock noise only ever slows a run
     down, so each mode's best throughput is the honest estimate. *)
  let disabled_eps = ref 0. and enabled_eps = ref 0. and traced_eps = ref 0. in
  let events = ref 0 and series = ref 0 and spans = ref 0 in
  for _ = 1 to obs_reps do
    let rd = obs_run Metrics.disabled in
    events := rd.Runner.events;
    disabled_eps :=
      Float.max !disabled_eps (float_of_int rd.Runner.events /. rd.Runner.wall_seconds);
    let reg = Metrics.create () in
    let re = obs_run reg in
    series := List.length (Metrics.snapshot reg).Metrics.Snapshot.series;
    enabled_eps :=
      Float.max !enabled_eps (float_of_int re.Runner.events /. re.Runner.wall_seconds);
    (* Span tracing records at phase granularity (a handful of spans
       per run, nothing per event), so a live trace must be workload
       noise — guarded by the same tolerance. *)
    let tr = Trace.create () in
    let rt = Trace.with_ambient tr (fun () -> obs_run Metrics.disabled) in
    spans := List.length (Trace.spans tr);
    traced_eps :=
      Float.max !traced_eps (float_of_int rt.Runner.events /. rt.Runner.wall_seconds)
  done;
  let enabled_overhead = 1. -. (!enabled_eps /. !disabled_eps) in
  let trace_overhead = 1. -. (!traced_eps /. !disabled_eps) in
  let baseline = baseline_events_per_sec () in
  let vs_baseline = Option.map (fun b -> 1. -. (!disabled_eps /. b)) baseline in
  let enabled_ok = enabled_overhead <= obs_tol in
  let trace_ok = trace_overhead <= obs_tol in
  let baseline_ok =
    match (Sys.getenv_opt "FATNET_BENCH_GUARD_TOL", vs_baseline) with
    | Some tol, Some reg -> reg <= (try float_of_string tol with _ -> 0.01)
    | _ -> true
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"suite\": \"instrumentation overhead, org_544 cut-through per-flit, %d measured messages, best of %d\",\n\
      \  \"events\": %d,\n\
      \  \"disabled\": { \"events_per_sec\": %.0f },\n\
      \  \"enabled\": { \"events_per_sec\": %.0f, \"series\": %d },\n\
      \  \"trace\": { \"events_per_sec\": %.0f, \"spans_per_run\": %d },\n\
      \  \"enabled_overhead\": %.4f,\n\
      \  \"trace_overhead\": %.4f,\n\
      \  \"enabled_overhead_tolerance\": %.4f,\n\
      \  \"baseline_events_per_sec\": %s,\n\
      \  \"disabled_vs_baseline\": %s,\n\
      \  \"pass\": %b\n\
       }\n"
      obs_measured obs_reps !events !disabled_eps !enabled_eps !series !traced_eps !spans
      enabled_overhead trace_overhead obs_tol
      (match baseline with Some b -> Printf.sprintf "%.0f" b | None -> "null")
      (match vs_baseline with Some r -> Printf.sprintf "%.4f" r | None -> "null")
      (enabled_ok && trace_ok && baseline_ok)
  in
  (match Sys.getenv_opt "FATNET_BENCH_OBS_JSON" with
  | Some "" -> ()
  | path_opt ->
      let path = Option.value path_opt ~default:"BENCH_obs.json" in
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Printf.printf "== instrumentation overhead (written to %s) ==\n%s" path json);
  Printf.printf
    "obs guard: enabled overhead %+.2f%%, trace overhead %+.2f%% (tolerance %.2f%%)%s -> %s\n%!"
    (100. *. enabled_overhead) (100. *. trace_overhead) (100. *. obs_tol)
    (match vs_baseline with
    | Some r -> Printf.sprintf ", disabled vs BENCH_sim.json baseline %+.2f%%" (100. *. r)
    | None -> "")
    (if enabled_ok && trace_ok && baseline_ok then "pass" else "FAIL");
  if not (enabled_ok && trace_ok && baseline_ok) then exit 1

(* ---- model evaluation engine (BENCH_model.json) ---- *)

module Eval = Fatnet_model.Eval
module Latency = Fatnet_model.Latency
module Solver = Fatnet_numerics.Solver

let with_model = env_int "FATNET_BENCH_MODEL" 1 <> 0
let model_evals = max 1 (env_int "FATNET_BENCH_MODEL_EVALS" 200)
let model_searches = max 2 (env_int "FATNET_BENCH_MODEL_SEARCHES" 12)

let model_orgs = [ ("org_544", Presets.org_544); ("org_1120", Presets.org_1120) ]

(* The committed BENCH_model.json's workspace throughput for this
   organization — same report-only guard pattern as the obs guard's
   BENCH_sim.json read-back. *)
let model_baseline_evals_per_sec org_name =
  match open_in_bin "BENCH_model.json" with
  | exception Sys_error _ -> None
  | ic ->
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let find_from pos needle =
        let n = String.length needle in
        let rec go i =
          if i + n > String.length body then None
          else if String.sub body i n = needle then Some (i + n)
          else go (i + 1)
        in
        go pos
      in
      Option.bind (find_from 0 (Printf.sprintf "\"name\": %S" org_name)) (fun p ->
          Option.bind (find_from p "\"workspace\"") (fun p ->
              Option.bind (find_from p "\"evals_per_sec\": ") (fun p ->
                  let e = ref p in
                  while
                    !e < String.length body
                    && (match body.[!e] with '0' .. '9' | '.' | 'e' | '+' | '-' -> true | _ -> false)
                  do
                    incr e
                  done;
                  float_of_string_opt (String.sub body p (!e - p)))))

(* Total solver work recorded in a registry: bracket probes plus
   bisection/boundary iterations. *)
let solver_iterations reg =
  let count name =
    match Metrics.Snapshot.find (Metrics.snapshot reg) name with
    | Some (Metrics.Snapshot.Counter n) -> n
    | _ -> 0
  in
  count "solver_bracket_retries" + count "solver_bisect_iterations"
  + count "solver_boundary_iterations"

let model_org_json (org_name, system) =
  let ws = Eval.workspace ~system ~message:message32 () in
  let sat = Latency.saturation_rate ~system ~message:message32 () in
  let fracs = [| 0.1; 0.3; 0.5; 0.7; 0.9 |] in
  let lambda i = fracs.(i mod Array.length fracs) *. sat in
  (* Bit-identity first: the speedup is only worth reporting if the
     fast path computes the same floats. *)
  Array.iter
    (fun frac ->
      let lambda_g = frac *. sat in
      let reference = Latency.mean ~system ~message:message32 ~lambda_g () in
      let fast = Eval.mean_into ws ~lambda_g in
      if Int64.bits_of_float reference <> Int64.bits_of_float fast then begin
        Printf.eprintf
          "model bench: BIT MISMATCH on %s at lambda_g=%g: reference %h, workspace %h\n%!"
          org_name lambda_g reference fast;
        exit 1
      end)
    fracs;
  let time_evals eval =
    ignore (eval (lambda 0));
    let alloc0 = Gc.allocated_bytes () in
    let t0 = Fatnet_sim.Clock.now_ns () in
    for i = 0 to model_evals - 1 do
      ignore (eval (lambda i))
    done;
    let wall = Fatnet_sim.Clock.seconds_since t0 in
    let bytes = (Gc.allocated_bytes () -. alloc0) /. float_of_int model_evals in
    (float_of_int model_evals /. wall, bytes)
  in
  let ref_eps, ref_bytes =
    time_evals (fun lambda_g -> Latency.mean ~system ~message:message32 ~lambda_g ())
  in
  let build0 = Fatnet_sim.Clock.now_ns () in
  let ws2 = Eval.workspace ~system ~message:message32 () in
  let build_seconds = Fatnet_sim.Clock.seconds_since build0 in
  let ws_eps, ws_bytes = time_evals (fun lambda_g -> Eval.mean_into ws2 ~lambda_g) in
  (* Saturation searches over a family of slightly perturbed systems —
     the topology-search access pattern.  Cold is the pre-workspace
     path: [Latency.saturation_rate] rebuilds everything per predicate
     probe and brackets from scratch.  Warm reuses a workspace per
     system and threads one bracket across the family.

     The family visits each perturbation twice in a row, the way a
     design search revisits neighbouring candidates.  That is what
     makes the bracket-REUSE branch observable: the stored bracket is
     tol-tight (~1e-9 wide) while each 1e-4 bandwidth step moves the
     root by ~1e-7, so on a strictly monotone family the root always
     escapes the previous bracket and every warm solve is a
     directional march ([solver_bracket_retries]), never a reuse —
     the counter reading 0 there is correct behaviour, not a bug.  A
     repeat of the same system leaves the root inside the bracket and
     [solver_bracket_reuses] ticks. *)
  let perturbed =
    Array.init model_searches (fun i ->
        Presets.with_icn2_bandwidth_scaled system
          ~factor:(1. +. (1e-4 *. float_of_int (i / 2))))
  in
  let cold_reg = Metrics.create () in
  let cold_rates = Array.make model_searches 0. in
  let cold_t0 = Fatnet_sim.Clock.now_ns () in
  Metrics.with_ambient cold_reg (fun () ->
      Array.iteri
        (fun i s -> cold_rates.(i) <- Latency.saturation_rate ~system:s ~message:message32 ())
        perturbed);
  let cold_wall = Fatnet_sim.Clock.seconds_since cold_t0 in
  let warm_reg = Metrics.create () in
  let warm_rates = Array.make model_searches 0. in
  let warm_t0 = Fatnet_sim.Clock.now_ns () in
  Metrics.with_ambient warm_reg (fun () ->
      let state = Solver.bracket_state () in
      Array.iteri
        (fun i s ->
          let ws = Eval.workspace ~system:s ~message:message32 () in
          warm_rates.(i) <- Eval.saturation_rate ~state ws)
        perturbed);
  let warm_wall = Fatnet_sim.Clock.seconds_since warm_t0 in
  Array.iteri
    (fun i cold ->
      if not (Fatnet_numerics.Float_utils.approx_equal ~rel:1e-6 cold warm_rates.(i))
      then begin
        Printf.eprintf
          "model bench: saturation mismatch on %s perturbation %d: cold %.9g, warm %.9g\n%!"
          org_name i cold warm_rates.(i);
        exit 1
      end)
    cold_rates;
  let warm_count name =
    match Metrics.Snapshot.find (Metrics.snapshot warm_reg) name with
    | Some (Metrics.Snapshot.Counter n) -> n
    | _ -> 0
  in
  let per_search total = float_of_int total /. float_of_int model_searches in
  let sat_speedup = cold_wall /. warm_wall in
  ( Printf.sprintf
      "    { \"name\": %S,\n\
      \      \"reference\": { \"evals_per_sec\": %.0f, \"allocated_bytes_per_eval\": %.1f },\n\
      \      \"workspace\": { \"evals_per_sec\": %.0f, \"allocated_bytes_per_eval\": %.1f, \"build_seconds\": %.6f },\n\
      \      \"eval_speedup\": %.2f,\n\
      \      \"bit_identical\": true,\n\
      \      \"cold_saturation\": { \"searches\": %d, \"searches_per_sec\": %.1f, \"solver_iterations_per_search\": %.1f },\n\
      \      \"warm_saturation\": { \"searches\": %d, \"searches_per_sec\": %.1f, \"solver_iterations_per_search\": %.1f, \"warm_starts\": %d, \"bracket_reuses\": %d },\n\
      \      \"saturation_speedup\": %.2f }"
      org_name ref_eps ref_bytes ws_eps ws_bytes build_seconds (ws_eps /. ref_eps)
      model_searches
      (float_of_int model_searches /. cold_wall)
      (per_search (solver_iterations cold_reg))
      model_searches
      (float_of_int model_searches /. warm_wall)
      (per_search (solver_iterations warm_reg))
      (warm_count "solver_warm_starts")
      (warm_count "solver_bracket_reuses")
      sat_speedup,
    ws_eps,
    sat_speedup )

let model_bench_json () =
  let rows = List.map model_org_json model_orgs in
  let guard_tol = Sys.getenv_opt "FATNET_BENCH_MODEL_GUARD_TOL" in
  let guards =
    List.map2
      (fun (org_name, _) (_, ws_eps, _) ->
        let baseline = model_baseline_evals_per_sec org_name in
        let regression = Option.map (fun b -> 1. -. (ws_eps /. b)) baseline in
        (match regression with
        | Some r ->
            Printf.printf
              "model bench: %s workspace throughput vs committed BENCH_model.json %+.2f%%\n%!"
              org_name (-100. *. r)
        | None -> ());
        match (guard_tol, regression) with
        | Some tol, Some r -> r <= (try float_of_string tol with _ -> 0.01)
        | _ -> true)
      model_orgs rows
  in
  let pass = List.for_all Fun.id guards in
  if not pass then begin
    Printf.eprintf "model bench: workspace throughput regressed past tolerance\n%!";
    exit 1
  end;
  Printf.sprintf
    "{\n\
    \  \"suite\": \"analytical model engine, m_flits=32 d_m_bytes=256, %d evals, %d perturbed searches\",\n\
    \  \"note\": \"reference is the record-building Latency.mean / cold Latency.saturation_rate path; workspace is Eval.mean_into over a prebuilt workspace, warm saturation threads one bracket across the perturbed family; bit-identity of the two evaluation paths is asserted in process\",\n\
    \  \"organizations\": [\n%s\n  ],\n\
    \  \"pass\": %b\n\
     }\n"
    model_evals model_searches
    (String.concat ",\n" (List.map (fun (j, _, _) -> j) rows))
    pass

let write_model_json () =
  if with_model then
    match Sys.getenv_opt "FATNET_BENCH_MODEL_JSON" with
    | Some "" -> ()
    | path_opt ->
        let path = Option.value path_opt ~default:"BENCH_model.json" in
        let json = model_bench_json () in
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Printf.printf "== model evaluation engine (written to %s) ==\n%s\n" path json

(* ---- multicore model engine stress driver (BENCH_parallel.json) ---- *)

(* A `fatnet design`-shaped workload: a seeded random walk over a
   design lattice — ICN2 bandwidth scale on one axis, message length
   on the other — evaluating a fixed λ grid at every step, the way an
   interactive topology search revisits neighbouring candidates.  The
   walk is revisit-heavy by construction, so the run exercises both
   halves of the engine: the domain pool (every step is an
   independent pure task) and the sharded memo (revisited
   (candidate, λ) points are served from memory without even building
   a workspace).  Every configuration's results are asserted
   bit-identical to the sequential [Eval.mean_into] reference before
   any throughput number is reported. *)

module Memo = Fatnet_numerics.Memo
module Pool = Eval.Pool
module Rng = Fatnet_prng.Rng

let with_parallel = env_int "FATNET_BENCH_PARALLEL" 1 <> 0
let parallel_steps = max 8 (env_int "FATNET_BENCH_PARALLEL_STEPS" 512)
let parallel_lambdas_n = max 1 (env_int "FATNET_BENCH_PARALLEL_LAMBDAS" 4)

let parallel_domain_counts =
  match Sys.getenv_opt "FATNET_BENCH_PARALLEL_DOMAINS" with
  | None | Some "" -> [ 1; 2; 4; 8 ]
  | Some s -> (
      match
        String.split_on_char ',' s
        |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
        |> List.filter (fun d -> d >= 1)
      with
      | [] -> [ 1; 2; 4; 8 ]
      | l -> l)

type design_point = {
  dp_system : Fatnet_model.Params.system;
  dp_message : Fatnet_model.Params.message;
  dp_key : string;  (* scenario canonical hash, load axis normalised away *)
}

(* The 8x8 candidate lattice.  Cells are built once so that revisits
   share physical identity — that is what lets each pool domain's
   1-slot workspace cache recognise a repeated candidate. *)
let parallel_lattice system =
  Array.init 8 (fun a ->
      Array.init 8 (fun b ->
          let dp_system =
            Presets.with_icn2_bandwidth_scaled system
              ~factor:(1. +. (0.05 *. float_of_int a))
          in
          let dp_message = Presets.message ~m_flits:(16 + (8 * b)) ~d_m_bytes:256. in
          let scn =
            Scenario.make ~system:dp_system ~message:dp_message
              ~load:(Scenario.Fixed 1e-4) ()
          in
          { dp_system; dp_message; dp_key = Scenario.memo_key scn }))

let parallel_walk lattice ~seed =
  let rng = Rng.create ~seed () in
  let a = ref 0 and b = ref 0 in
  Array.init parallel_steps (fun _ ->
      let dir = if Rng.bool rng then 1 else -1 in
      let move r = r := max 0 (min 7 (!r + dir)) in
      if Rng.bool rng then move a else move b;
      lattice.(!a).(!b))

(* The sequential reference: the PR-6 single-workspace path a
   1-domain design search runs — one workspace per candidate change
   (consecutive repeats reuse it), no memo. *)
let parallel_sequential walk lambdas =
  let out = Array.make (Array.length walk) [||] in
  let cached = ref None in
  let t0 = Fatnet_sim.Clock.now_ns () in
  Array.iteri
    (fun i dp ->
      let ws =
        match !cached with
        | Some (prev, ws) when prev == dp -> ws
        | _ ->
            let ws = Eval.workspace ~system:dp.dp_system ~message:dp.dp_message () in
            cached := Some (dp, ws);
            ws
      in
      out.(i) <- Array.map (fun lambda_g -> Eval.mean_into ws ~lambda_g) lambdas)
    walk;
  (out, Fatnet_sim.Clock.seconds_since t0)

(* One engine run: the walk fanned out over a [domains]-wide pool,
   memo-first — a hit skips even the workspace build.  Tasks are
   chunks of consecutive walk steps, not single steps: a design-walk
   step is a handful of memo probes, far too little work to amortize
   a claim, so chunking keeps the claim rate sane and gives each
   domain's 1-slot workspace cache the locality of the walk
   (consecutive steps usually revisit the same candidate).  Results
   land at their step index, so chunking cannot affect the bits.
   Runs under a fresh live registry so the satellite counters
   (model_memo_hits/misses, pool_domain_occupancy) flow end to end. *)
let parallel_chunk = max 1 (env_int "FATNET_BENCH_PARALLEL_CHUNK" 8)

let parallel_pool_run walk lambdas ~domains ~memo =
  let n = Array.length walk in
  let n_chunks = (n + parallel_chunk - 1) / parallel_chunk in
  let chunks = Array.init n_chunks (fun c -> c * parallel_chunk) in
  let out = Array.make n [||] in
  let reg = Metrics.create () in
  let t0 = Fatnet_sim.Clock.now_ns () in
  Metrics.with_ambient reg (fun () ->
      Pool.with_pool ~domains (fun pool ->
          ignore
            (Pool.map pool chunks ~f:(fun ctx start ->
                 for i = start to min (start + parallel_chunk) n - 1 do
                   let dp = walk.(i) in
                   out.(i) <-
                     Array.map
                       (fun lambda_g ->
                         let eval () =
                           let ws =
                             Pool.ctx_workspace ctx ~system:dp.dp_system
                               ~message:dp.dp_message ()
                           in
                           Eval.mean_into ws ~lambda_g
                         in
                         match memo with
                         | None -> eval ()
                         | Some m ->
                             Memo.find_or_compute m ~key:dp.dp_key
                               ~bits:(Int64.bits_of_float lambda_g) eval)
                       lambdas
                 done))));
  (out, Fatnet_sim.Clock.seconds_since t0, reg)

let parallel_assert_bits org_name label reference got =
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if Int64.bits_of_float v <> Int64.bits_of_float got.(i).(j) then begin
            Printf.eprintf
              "parallel bench: BIT MISMATCH on %s (%s) step %d lambda %d: sequential \
               %h, pool %h\n\
               %!"
              org_name label i j v got.(i).(j);
            exit 1
          end)
        row)
    reference

let parallel_occupancy reg domains =
  let snap = Metrics.snapshot reg in
  List.init domains (fun i ->
      match
        Metrics.Snapshot.find
          ~labels:[ ("domain", string_of_int i) ]
          snap "pool_domain_occupancy"
      with
      | Some (Metrics.Snapshot.Gauge g) -> g
      | _ -> 0.)

(* Committed-baseline read-back, same report-only pattern as the sim
   and model guards. *)
let parallel_baseline_evals_per_sec org_name =
  match open_in_bin "BENCH_parallel.json" with
  | exception Sys_error _ -> None
  | ic ->
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let find_from pos needle =
        let n = String.length needle in
        let rec go i =
          if i + n > String.length body then None
          else if String.sub body i n = needle then Some (i + n)
          else go (i + 1)
        in
        go pos
      in
      Option.bind (find_from 0 (Printf.sprintf "\"name\": %S" org_name)) (fun p ->
          Option.bind (find_from p "\"best_served_evals_per_sec\": ") (fun p ->
              let e = ref p in
              while
                !e < String.length body
                && (match body.[!e] with '0' .. '9' | '.' | 'e' | '+' | '-' -> true | _ -> false)
              do
                incr e
              done;
              float_of_string_opt (String.sub body p (!e - p))))

(* Domains time-sharing few cores serialize on minor-GC safepoint
   barriers: every minor collection waits for every domain to be
   scheduled, and with the default 256k-word minor heap the workspace
   builds trigger collections constantly — measured here as a ~3x
   wall inflation at 4 domains on one CPU.  A larger per-domain minor
   heap makes the barrier rate negligible; the sequential baseline
   runs under the same setting, so the comparison stays fair. *)
let parallel_minor_heap_words =
  max 262_144 (env_int "FATNET_BENCH_PARALLEL_MINOR_HEAP" (8 * 1024 * 1024))

let parallel_org_json (org_name, system) =
  let lattice = parallel_lattice system in
  let walk = parallel_walk lattice ~seed:(Int64.of_int (Hashtbl.hash org_name)) in
  let ws0 = Eval.workspace ~system ~message:message32 () in
  let sat = Eval.saturation_rate ws0 in
  (* A fixed λ grid anchored to the base organization's saturation
     rate: long-message candidates saturate below the top rates, so
     the walk includes genuinely diverged (infinite) points and the
     bit-identity assertion covers them too. *)
  let lambdas =
    Array.init parallel_lambdas_n (fun j ->
        0.85 *. sat *. float_of_int (j + 1) /. float_of_int parallel_lambdas_n)
  in
  let served = parallel_steps * parallel_lambdas_n in
  let reference, seq_wall = parallel_sequential walk lambdas in
  let seq_eps = float_of_int served /. seq_wall in
  let config_rows =
    List.map
      (fun domains ->
        let memo = Memo.create ~metric:"model_memo" () in
        let got, wall, reg = parallel_pool_run walk lambdas ~domains ~memo:(Some memo) in
        parallel_assert_bits org_name (Printf.sprintf "%d domains, memo" domains)
          reference got;
        let got_nm, wall_nm, _ =
          parallel_pool_run walk lambdas ~domains ~memo:None
        in
        parallel_assert_bits org_name
          (Printf.sprintf "%d domains, no memo" domains)
          reference got_nm;
        let eps = float_of_int served /. wall in
        let occ =
          parallel_occupancy reg domains
          |> List.map (Printf.sprintf "%.3f")
          |> String.concat ", "
        in
        ( Printf.sprintf
            "        { \"domains\": %d,\n\
            \          \"wall_seconds\": %.6f, \"served_evals_per_sec\": %.0f, \
             \"speedup_vs_sequential\": %.2f,\n\
            \          \"memo\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f, \
             \"entries\": %d },\n\
            \          \"no_memo\": { \"wall_seconds\": %.6f, \"evals_per_sec\": %.0f, \
             \"speedup_vs_sequential\": %.2f },\n\
            \          \"domain_occupancy\": [%s],\n\
            \          \"bit_identical\": true }"
            domains wall eps (seq_wall /. wall) (Memo.hits memo) (Memo.misses memo)
            (Memo.hit_rate memo) (Memo.length memo) wall_nm
            (float_of_int served /. wall_nm)
            (seq_wall /. wall_nm) occ,
          eps ))
      parallel_domain_counts
  in
  let best_eps = List.fold_left (fun acc (_, e) -> Float.max acc e) 0. config_rows in
  ( Printf.sprintf
      "    { \"name\": %S,\n\
      \      \"sequential\": { \"wall_seconds\": %.6f, \"evals_per_sec\": %.0f },\n\
      \      \"best_served_evals_per_sec\": %.0f,\n\
      \      \"configs\": [\n%s\n      ] }"
      org_name seq_wall seq_eps best_eps
      (String.concat ",\n" (List.map fst config_rows)),
    best_eps )

let parallel_bench_json () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = parallel_minor_heap_words };
  let rows = List.map parallel_org_json model_orgs in
  let guard_tol = Sys.getenv_opt "FATNET_BENCH_PARALLEL_GUARD_TOL" in
  let guards =
    List.map2
      (fun (org_name, _) (_, best_eps) ->
        let baseline = parallel_baseline_evals_per_sec org_name in
        let regression = Option.map (fun b -> 1. -. (best_eps /. b)) baseline in
        (match regression with
        | Some r ->
            Printf.printf
              "parallel bench: %s engine throughput vs committed BENCH_parallel.json \
               %+.2f%%\n\
               %!"
              org_name (-100. *. r)
        | None -> ());
        match (guard_tol, regression) with
        | Some tol, Some r -> r <= (try float_of_string tol with _ -> 0.01)
        | _ -> true)
      model_orgs rows
  in
  let pass = List.for_all Fun.id guards in
  if not pass then begin
    Printf.eprintf "parallel bench: engine throughput regressed past tolerance\n%!";
    exit 1
  end;
  Printf.sprintf
    "{\n\
    \  \"suite\": \"multicore model evaluation engine: design-walk stress driver, 8x8 \
     lattice (ICN2 bandwidth scale x message length), %d steps x %d rates\",\n\
    \  \"note\": \"sequential is the single-workspace 1-domain path; each config fans \
     the walk over an Eval.Pool with a fresh sharded memo (and once without, to \
     isolate the memo's contribution); every configuration is asserted bit-identical \
     to the sequential reference in process; speedups on few-core hosts come from the \
     memo serving revisited (candidate, rate) points, not from parallelism — compare \
     recommended_domains\",\n\
    \  \"recommended_domains\": %d,\n\
    \  \"minor_heap_words\": %d,\n\
    \  \"walk\": { \"steps\": %d, \"lambdas_per_step\": %d, \"served_points\": %d },\n\
    \  \"organizations\": [\n%s\n  ],\n\
    \  \"pass\": %b\n\
     }\n"
    parallel_steps parallel_lambdas_n
    (Pool.recommended_domains ())
    parallel_minor_heap_words parallel_steps parallel_lambdas_n
    (parallel_steps * parallel_lambdas_n)
    (String.concat ",\n" (List.map fst rows))
    pass

let write_parallel_json () =
  if with_parallel then
    match Sys.getenv_opt "FATNET_BENCH_PARALLEL_JSON" with
    | Some "" -> ()
    | path_opt ->
        let path = Option.value path_opt ~default:"BENCH_parallel.json" in
        let json = parallel_bench_json () in
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Printf.printf "== multicore model engine (written to %s) ==\n%s\n" path json

(* ---- distribution-carrying pipeline overhead (BENCH_tail.json) ---- *)

module Welford = Fatnet_stats.Welford
module Quantile = Fatnet_stats.Quantile

let with_tail = env_int "FATNET_BENCH_TAIL" 1 <> 0
let tail_samples = max 1000 (env_int "FATNET_BENCH_TAIL_SAMPLES" 200_000)
let tail_measured = env_int "FATNET_BENCH_TAIL_MEASURED" 4000
let tail_reps = max 1 (env_int "FATNET_BENCH_TAIL_REPS" 5)
let tail_tol = env_float "FATNET_BENCH_TAIL_TOL" 0.05

(* One synthetic latency stream shaped like the model's tail mixture
   (shifted exponential), replayed identically through both
   pipelines.  The intra/inter split alternates the way a mixed
   workload does, so the scalar path performs its real two Welford
   adds per sample. *)
let tail_stream () =
  let rng = Rng.create ~seed:7L () in
  Array.init tail_samples (fun _ ->
      150. +. (-200. *. log (1. -. Rng.float rng)))

let replay_scalar samples =
  let all = Welford.create () and intra = Welford.create () and inter = Welford.create () in
  let t0 = Fatnet_sim.Clock.now_ns () in
  Array.iteri
    (fun i l ->
      Welford.add all l;
      Welford.add (if i land 1 = 0 then intra else inter) l)
    samples;
  let wall = Fatnet_sim.Clock.seconds_since t0 in
  ignore (Welford.mean all);
  wall

let replay_distribution samples =
  let all = Welford.create () and intra = Welford.create () and inter = Welford.create () in
  let p50 = Quantile.create ~q:0.5
  and p90 = Quantile.create ~q:0.9
  and p99 = Quantile.create ~q:0.99
  and p999 = Quantile.create ~q:0.999 in
  let t0 = Fatnet_sim.Clock.now_ns () in
  Array.iteri
    (fun i l ->
      Welford.add all l;
      Quantile.add p50 l;
      Quantile.add p90 l;
      Quantile.add p99 l;
      Quantile.add p999 l;
      Welford.add (if i land 1 = 0 then intra else inter) l)
    samples;
  let wall = Fatnet_sim.Clock.seconds_since t0 in
  ignore (Quantile.estimate p999);
  wall

let tail_bench_json () =
  let samples = tail_stream () in
  (* Interleave and keep each pipeline's best: noise only slows. *)
  let scalar_wall = ref infinity and dist_wall = ref infinity in
  for _ = 1 to tail_reps do
    scalar_wall := Float.min !scalar_wall (replay_scalar samples);
    dist_wall := Float.min !dist_wall (replay_distribution samples)
  done;
  let per_sample w = w /. float_of_int tail_samples in
  let extra_per_sample =
    Float.max 0. (per_sample !dist_wall -. per_sample !scalar_wall)
  in
  (* A real run records one latency sample per measured message;
     scale the per-sample difference to the timed run's sample count
     and express it as a fraction of that run's wall time.  The
     streaming fast path is the stricter denominator. *)
  let sim_config streaming =
    {
      Runner.quick_config with
      Runner.warmup = max 1 (tail_measured / 10);
      measured = tail_measured;
      drain = max 1 (tail_measured / 10);
      streaming;
    }
  in
  let engine_fraction streaming =
    let wall = ref infinity in
    for _ = 1 to tail_reps do
      let r =
        Runner.run ~config:(sim_config streaming) ~system:Presets.org_544
          ~message:message32 ~lambda_g:1e-4 ()
      in
      wall := Float.min !wall r.Runner.wall_seconds
    done;
    (!wall, extra_per_sample *. float_of_int tail_measured /. !wall)
  in
  let per_flit_wall, per_flit_frac = engine_fraction false in
  let streaming_wall, streaming_frac = engine_fraction true in
  let worst_frac = Float.max per_flit_frac streaming_frac in
  (* Model-side tail throughput, report-only: quantile inversion on
     the shifted-exponential mixture at a few load fractions. *)
  let ws = Eval.workspace ~system:Presets.org_544 ~message:message32 () in
  let sat = Eval.saturation_rate ws in
  let fracs = [| 0.1; 0.3; 0.5; 0.7 |] in
  let quantile_evals = 2000 in
  ignore (Eval.quantile ws ~lambda_g:(0.5 *. sat) ~q:0.99);
  let t0 = Fatnet_sim.Clock.now_ns () in
  for i = 0 to quantile_evals - 1 do
    ignore
      (Eval.quantile ws
         ~lambda_g:(fracs.(i mod Array.length fracs) *. sat)
         ~q:0.99)
  done;
  let quantile_eps = float_of_int quantile_evals /. Fatnet_sim.Clock.seconds_since t0 in
  let pass = worst_frac <= tail_tol in
  let json =
    Printf.sprintf
      "{\n\
      \  \"suite\": \"distribution-carrying pipeline overhead, %d replayed samples, org_544 cut-through %d measured messages, best of %d\",\n\
      \  \"note\": \"scalar is the moments-only bookkeeping (two Welford adds per message); distribution adds the p50/p90/p99/p999 P2 ladder; the per-sample difference is scaled to the timed run's sample count and expressed as a fraction of that run's wall time per engine\",\n\
      \  \"scalar\": { \"ns_per_sample\": %.2f },\n\
      \  \"distribution\": { \"ns_per_sample\": %.2f },\n\
      \  \"extra_ns_per_sample\": %.2f,\n\
      \  \"per_flit\": { \"sim_wall_seconds\": %.6f, \"overhead_fraction\": %.5f },\n\
      \  \"streaming\": { \"sim_wall_seconds\": %.6f, \"overhead_fraction\": %.5f },\n\
      \  \"worst_overhead_fraction\": %.5f,\n\
      \  \"tolerance\": %.5f,\n\
      \  \"model_tail\": { \"p99_quantile_evals_per_sec\": %.0f },\n\
      \  \"pass\": %b\n\
       }\n"
      tail_samples tail_measured tail_reps
      (1e9 *. per_sample !scalar_wall)
      (1e9 *. per_sample !dist_wall)
      (1e9 *. extra_per_sample) per_flit_wall per_flit_frac streaming_wall
      streaming_frac worst_frac tail_tol quantile_eps pass
  in
  (json, worst_frac, pass)

let write_tail_json () =
  if with_tail then begin
    let json, worst_frac, pass = tail_bench_json () in
    (match Sys.getenv_opt "FATNET_BENCH_TAIL_JSON" with
    | Some "" -> ()
    | path_opt ->
        let path = Option.value path_opt ~default:"BENCH_tail.json" in
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Printf.printf "== distribution pipeline overhead (written to %s) ==\n%s" path json);
    Printf.printf "tail guard: worst overhead %.2f%% of sim wall (tolerance %.2f%%) -> %s\n%!"
      (100. *. worst_frac) (100. *. tail_tol)
      (if pass then "pass" else "FAIL");
    if not pass then exit 1
  end

(* ---- figure regeneration ---- *)

let print_series spec series =
  let open Fatnet_report in
  let columns = "lambda_g" :: List.map (fun s -> s.Series.name) series in
  let table = Table.create ~columns in
  let xs =
    List.concat_map (fun s -> List.map fst s.Series.points) series |> List.sort_uniq compare
  in
  List.iter
    (fun x ->
      let cell s =
        match List.assoc_opt x s.Series.points with
        | Some y when Float.is_finite y -> Printf.sprintf "%.6g" y
        | Some _ -> "sat."
        | None -> "-"
      in
      Table.add_row table (Printf.sprintf "%.6g" x :: List.map cell series))
    xs;
  Printf.printf "== %s: %s ==\n" spec.Figures.id spec.Figures.title;
  Table.print table;
  print_newline ()

let regenerate_figures () =
  List.iter
    (fun spec ->
      let model = Figures.model_series spec ~steps:(max 8 sim_steps) in
      let sim =
        if with_sim then Figures.sim_series ~protocol:sim_protocol spec ~steps:sim_steps
        else []
      in
      print_series spec (model @ sim))
    Figures.all

let light_load_errors () =
  if with_sim then begin
    print_endline "== Section 4 claim: light-load model-vs-simulation error ==";
    List.iter
      (fun spec ->
        if List.exists (fun c -> c.Figures.simulate) spec.Figures.curves then
          List.iter
            (fun (label, err) ->
              Printf.printf "  %-6s %-8s %+.1f%%\n" spec.Figures.id label (100. *. err))
            (Figures.light_load_error ~protocol:sim_protocol spec))
      Figures.all;
    print_endline "  (paper: 4 to 8 percent)";
    print_newline ()
  end

(* ---- latency-oracle serve driver (BENCH_serve.json) ----

   The tentpole claim behind `fatnet serve`: the analytical model is
   a query service, not just a figure generator.  This driver feeds a
   deterministic request stream — a bounded population of distinct
   λ values (memo-realistic: a live client asks about operating
   points, not random bit patterns), 1/8 quantile queries, the odd
   saturation probe — through Oracle.answer_batch in fixed-size
   batches at several domain counts, recording sustained queries/s
   and exact p50/p99 service times (a request's service time is its
   batch's wall: every answer in a batch lands together).  Every
   answer is asserted bit-identical to a fresh sequential evaluation
   in process, so the numbers can't drift from the contract.

     FATNET_BENCH_SERVE=0            skip the serve driver
     FATNET_BENCH_SERVE_REQUESTS=n   request count (default 300000)
     FATNET_BENCH_SERVE_DISTINCT=n   distinct lambda values (default 4096)
     FATNET_BENCH_SERVE_BATCH=n      requests per dispatch (default 512)
     FATNET_BENCH_SERVE_DOMAINS=a,b  domain counts (default 1,2,...,recommended)
     FATNET_BENCH_SERVE_MIN_QPS=x    pass floor (default 1e5)
     FATNET_BENCH_SERVE_P99_BUDGET=x pass ceiling, seconds (default 1e-3)
     FATNET_BENCH_SERVE_JSON=path    (default BENCH_serve.json; empty disables) *)

module Oracle = Fatnet_serve.Oracle
module Sproto = Fatnet_serve.Protocol

let with_serve = env_int "FATNET_BENCH_SERVE" 1 <> 0
let serve_requests = max 1000 (env_int "FATNET_BENCH_SERVE_REQUESTS" 300_000)
let serve_distinct = max 16 (env_int "FATNET_BENCH_SERVE_DISTINCT" 4096)
let serve_batch = max 1 (env_int "FATNET_BENCH_SERVE_BATCH" 64)
let serve_min_qps = env_float "FATNET_BENCH_SERVE_MIN_QPS" 1e5
let serve_p99_budget = env_float "FATNET_BENCH_SERVE_P99_BUDGET" 1e-3

let serve_domain_counts =
  match Sys.getenv_opt "FATNET_BENCH_SERVE_DOMAINS" with
  | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
  | None ->
      let r = Pool.recommended_domains () in
      List.sort_uniq compare (List.filter (fun d -> d <= r) [ 1; 2; 4; 8 ] @ [ r ])

let serve_scenario =
  Scenario.make ~name:"bench-serve" ~system:Presets.org_544 ~message:message32
    ~load:(Scenario.Fixed 1e-4) ()

(* The deterministic request stream: an LCG walks the λ grid, every
   8th request asks for p99 instead of the mean, every 1024th probes
   saturation. *)
let serve_request_stream sat =
  let lambdas =
    Array.init serve_distinct (fun j ->
        0.98 *. sat *. float_of_int (j + 1) /. float_of_int serve_distinct)
  in
  let state = ref 0x9E3779B97F4A7C15L in
  let next () =
    state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.shift_right_logical !state 33)
  in
  Array.init serve_requests (fun i ->
      let lambda = lambdas.(next () mod serve_distinct) in
      let query =
        if i mod 1024 = 1023 then Sproto.Saturation
        else if i mod 8 = 7 then Sproto.Quantile { lambda; q = 0.99 }
        else Sproto.Latency { lambda }
      in
      Sproto.Req { Sproto.id = Fatnet_obs.Json.Null; query })

(* Sequential reference answers: direct Eval calls, no pool, no
   daemon machinery — the oracle must reproduce these bits whatever
   its batch order or memo history.  A direct call for a given
   (op, λ) is itself deterministic, so each distinct pair is
   evaluated once and mapped over the stream. *)
let serve_reference stream =
  let ws = Scenario.evaluator serve_scenario in
  let sat = Eval.saturation_rate ws in
  let table = Hashtbl.create 8192 in
  let once key f =
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None ->
        let v = f () in
        Hashtbl.add table key v;
        v
  in
  Array.map
    (function
      | Sproto.Req { query = Sproto.Latency { lambda }; _ } ->
          once (`L (Int64.bits_of_float lambda)) (fun () ->
              Eval.mean_into ws ~lambda_g:lambda)
      | Sproto.Req { query = Sproto.Quantile { lambda; q }; _ } ->
          once (`Q (Int64.bits_of_float lambda, Int64.bits_of_float q)) (fun () ->
              Eval.quantile ws ~lambda_g:lambda ~q)
      | Sproto.Req { query = Sproto.Saturation; _ } -> sat
      | _ -> Float.nan)
    stream

let serve_assert_bits label reference answers =
  Array.iteri
    (fun i r ->
      let got =
        match (r : Sproto.response).Sproto.outcome with
        | Ok (_, Sproto.Value v) -> v
        | _ -> Float.nan
      in
      if Int64.bits_of_float got <> Int64.bits_of_float reference.(i) then begin
        Printf.eprintf
          "serve bench: BIT MISMATCH (%s) at request %d: oracle %h, reference %h\n%!"
          label i got reference.(i);
        exit 1
      end)
    answers

(* Exact request-weighted percentile over (batch wall, batch size):
   a request completes when its batch does. *)
let serve_percentile samples total p =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) samples in
  let target = int_of_float (Float.round (p *. float_of_int total)) in
  let target = max 1 (min total target) in
  let rec go acc = function
    | [] -> 0.
    | (w, n) :: rest -> if acc + n >= target then w else go (acc + n) rest
  in
  go 0 sorted

(* The warm-up pass: one query per (op, distinct λ) plus a saturation
   probe, untimed.  A daemon's sustained rate is its rate once the
   operating points in play have been solved; the cold cost is real
   but a one-time cost, reported separately as [warmup_seconds]. *)
let serve_warmup oracle sat =
  let reqs =
    Array.init
      ((2 * serve_distinct) + 1)
      (fun i ->
        let query =
          if i = 2 * serve_distinct then Sproto.Saturation
          else
            let lambda =
              0.98 *. sat
              *. float_of_int ((i / 2) + 1)
              /. float_of_int serve_distinct
            in
            if i mod 2 = 0 then Sproto.Latency { lambda }
            else Sproto.Quantile { lambda; q = 0.99 }
        in
        Sproto.Req { Sproto.id = Fatnet_obs.Json.Null; query })
  in
  let t0 = Fatnet_sim.Clock.now_ns () in
  ignore (Oracle.answer_batch oracle reqs);
  Fatnet_sim.Clock.seconds_since t0

let serve_config_row stream reference sat domains =
  let oracle = Oracle.create ~domains serve_scenario in
  let warmup = serve_warmup oracle sat in
  let n = Array.length stream in
  let answers = Array.make n None in
  let samples = ref [] in
  let t0 = Fatnet_sim.Clock.now_ns () in
  let pos = ref 0 in
  while !pos < n do
    let k = min serve_batch (n - !pos) in
    let slice = Array.sub stream !pos k in
    let b0 = Fatnet_sim.Clock.now_ns () in
    let rs = Oracle.answer_batch oracle slice in
    let bwall = Fatnet_sim.Clock.seconds_since b0 in
    samples := (bwall, k) :: !samples;
    Array.iteri (fun i r -> answers.(!pos + i) <- Some r) rs;
    pos := !pos + k
  done;
  let wall = Fatnet_sim.Clock.seconds_since t0 in
  let answers = Array.map Option.get answers in
  serve_assert_bits (Printf.sprintf "%d domains" domains) reference answers;
  let memo = Oracle.memo oracle in
  let qps = float_of_int n /. wall in
  let p50 = serve_percentile !samples n 0.50 in
  let p99 = serve_percentile !samples n 0.99 in
  Oracle.shutdown oracle;
  ( Printf.sprintf
      "    { \"domains\": %d, \"warmup_seconds\": %.6f, \"wall_seconds\": %.6f, \
       \"queries_per_sec\": %.0f,\n\
      \      \"p50_seconds\": %.6e, \"p99_seconds\": %.6e,\n\
      \      \"memo\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f, \
       \"entries\": %d, \"evictions\": %d },\n\
      \      \"bit_identical\": true }"
      domains warmup wall qps p50 p99 (Memo.hits memo) (Memo.misses memo)
      (Memo.hit_rate memo) (Memo.length memo) (Memo.evictions memo),
    (qps, p99) )

let serve_bench_json () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = parallel_minor_heap_words };
  let ws0 = Scenario.evaluator serve_scenario in
  let sat = Eval.saturation_rate ws0 in
  let stream = serve_request_stream sat in
  let reference = serve_reference stream in
  let rows = List.map (serve_config_row stream reference sat) serve_domain_counts in
  let best_qps, best_p99, best_domains =
    List.fold_left2
      (fun (bq, bp, bd) (_, (q, p)) d -> if q > bq then (q, p, d) else (bq, bp, bd))
      (0., Float.infinity, 0) rows serve_domain_counts
  in
  let pass = best_qps >= serve_min_qps && best_p99 < serve_p99_budget in
  if not pass then
    Printf.eprintf
      "serve bench: best %.0f q/s (floor %.0f), p99 %.2e s (budget %.2e s)\n%!" best_qps
      serve_min_qps best_p99 serve_p99_budget;
  Printf.sprintf
    "{\n\
    \  \"suite\": \"latency-oracle serve driver: org_544 scenario, in-process \
     Oracle.answer_batch dispatch (socket framing excluded), %d requests over %d \
     distinct rates, batches of %d\",\n\
    \  \"note\": \"service time of a request is its batch's wall clock (answers in a \
     batch land together); every answer asserted bit-identical to a fresh sequential \
     evaluation in process; the request mix is 1/8 p99-quantile and 1/1024 saturation \
     probes, rest mean latency; each config first warms the memo over the full \
     distinct-rate grid untimed (warmup_seconds) — sustained rate is the warm rate, \
     as for a long-running daemon\",\n\
    \  \"recommended_domains\": %d,\n\
    \  \"requests\": %d, \"distinct_lambdas\": %d, \"batch\": %d,\n\
    \  \"min_queries_per_sec\": %.0f,\n\
    \  \"p99_budget_seconds\": %.6e,\n\
    \  \"configs\": [\n%s\n  ],\n\
    \  \"best\": { \"domains\": %d, \"queries_per_sec\": %.0f, \"p99_seconds\": %.6e },\n\
    \  \"pass\": %b\n\
     }\n"
    serve_requests serve_distinct serve_batch
    (Pool.recommended_domains ())
    serve_requests serve_distinct serve_batch serve_min_qps serve_p99_budget
    (String.concat ",\n" (List.map fst rows))
    best_domains best_qps best_p99 pass

let write_serve_json () =
  if with_serve then
    match Sys.getenv_opt "FATNET_BENCH_SERVE_JSON" with
    | Some "" -> ()
    | path_opt ->
        let path = Option.value path_opt ~default:"BENCH_serve.json" in
        let json = serve_bench_json () in
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Printf.printf "== latency-oracle serve driver (written to %s) ==\n%s\n" path json


let () =
  if Sys.getenv_opt "FATNET_BENCH_ONLY" = Some "sweep" then begin
    write_sweep_json ();
    exit 0
  end;
  if Sys.getenv_opt "FATNET_BENCH_ONLY" = Some "obs" then begin
    obs_guard ();
    exit 0
  end;
  if Sys.getenv_opt "FATNET_BENCH_ONLY" = Some "model" then begin
    write_model_json ();
    exit 0
  end;
  if Sys.getenv_opt "FATNET_BENCH_ONLY" = Some "parallel" then begin
    write_parallel_json ();
    exit 0
  end;
  if Sys.getenv_opt "FATNET_BENCH_ONLY" = Some "tail" then begin
    write_tail_json ();
    exit 0
  end;
  if Sys.getenv_opt "FATNET_BENCH_ONLY" = Some "serve" then begin
    write_serve_json ();
    exit 0
  end;
  print_endline "Tables 1 and 2 (parsed presets):";
  Printf.printf "  org_1120: N=%d C=%d m=%d  |  org_544: N=%d C=%d m=%d\n"
    (Fatnet_model.Params.total_nodes Presets.org_1120)
    (Fatnet_model.Params.cluster_count Presets.org_1120)
    Presets.org_1120.Fatnet_model.Params.m
    (Fatnet_model.Params.total_nodes Presets.org_544)
    (Fatnet_model.Params.cluster_count Presets.org_544)
    Presets.org_544.Fatnet_model.Params.m;
  Printf.printf "  Net.1: bw=%g α_n=%g α_s=%g  |  Net.2: bw=%g α_n=%g α_s=%g\n\n"
    Presets.net1.Fatnet_model.Params.bandwidth Presets.net1.Fatnet_model.Params.network_latency
    Presets.net1.Fatnet_model.Params.switch_latency Presets.net2.Fatnet_model.Params.bandwidth
    Presets.net2.Fatnet_model.Params.network_latency
    Presets.net2.Fatnet_model.Params.switch_latency;
  run_micro_benchmarks ();
  write_sim_json ();
  write_sweep_json ();
  write_model_json ();
  write_parallel_json ();
  write_tail_json ();
  write_serve_json ();
  if with_obs then obs_guard ();
  regenerate_figures ();
  light_load_errors ()
