module Json = Fatnet_obs.Json

type query =
  | Latency of { lambda : float }
  | Quantile of { lambda : float; q : float }
  | Saturation
  | Point of { lambda : float }

type request = { id : Json.t; query : query }

type parsed = Req of request | Malformed of Json.t * string

type frame = Single of parsed | Batch of parsed list

type point_summary = {
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  ci_half_width : float;
  replications : int;
  events : int;
}

type reply = Value of float | Point_hit of point_summary | Point_miss

type response = { rid : Json.t; outcome : (string * reply, string) result }

let op_name = function
  | Latency _ -> "latency"
  | Quantile _ -> "quantile"
  | Saturation -> "saturation"
  | Point _ -> "point"

(* ------------------------------------------------------------------ *)
(* Requests *)

let request_id j = match Json.member "id" j with Some v -> v | None -> Json.Null

let parse_request j : parsed =
  match j with
  | Json.Obj _ -> (
      let id = request_id j in
      let bad msg = Malformed (id, msg) in
      let number field =
        match Json.member field j with
        | Some (Json.Num x) -> Ok (Some x)
        | Some _ -> Error (field ^ ": expected a number")
        | None -> Ok None
      in
      let lambda () =
        match number "lambda" with
        | Error e -> Error e
        | Ok None -> Error "lambda: required for this op"
        | Ok (Some l) when not (Float.is_finite l) -> Error "lambda: must be finite"
        | Ok (Some l) when l < 0. -> Error "lambda: must be >= 0"
        | Ok (Some l) -> Ok l
      in
      let op =
        match Json.member "op" j with
        | None -> Ok "latency"
        | Some (Json.Str s) -> Ok s
        | Some _ -> Error "op: expected a string"
      in
      match op with
      | Error e -> bad e
      | Ok "latency" -> (
          match lambda () with
          | Error e -> bad e
          | Ok l -> Req { id; query = Latency { lambda = l } })
      | Ok "quantile" -> (
          match (lambda (), number "q") with
          | Error e, _ -> bad e
          | _, Error e -> bad e
          | _, Ok None -> bad "q: required for op \"quantile\""
          | _, Ok (Some q) when not (q > 0. && q < 1.) ->
              bad "q: must be strictly between 0 and 1"
          | Ok l, Ok (Some q) -> Req { id; query = Quantile { lambda = l; q } })
      | Ok "saturation" -> Req { id; query = Saturation }
      | Ok "point" -> (
          match lambda () with
          | Error e -> bad e
          | Ok l -> Req { id; query = Point { lambda = l } })
      | Ok other ->
          bad
            (Printf.sprintf
               "op: unknown op %S (expected \"latency\", \"quantile\", \"saturation\" or \
                \"point\")"
               other))
  | _ -> Malformed (Json.Null, "expected a JSON object or an array of objects")

let frame_of_line line : (frame, string) result =
  match Json.parse_result line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok (Json.Arr items) -> Ok (Batch (List.map parse_request items))
  | Ok j -> Ok (Single (parse_request j))

(* ------------------------------------------------------------------ *)
(* Responses *)

(* Non-finite values cannot be JSON numbers; the convention is the
   metrics snapshot's — tagged strings — so a saturated latency
   renders as "inf".  Finite values use the shortest round-tripping
   decimal, which is what makes socket answers bit-comparable to
   direct [Eval] calls. *)
let buf_add_float b v =
  if Float.is_finite v then Buffer.add_string b (Json.shortest_float v)
  else if Float.is_nan v then Buffer.add_string b "\"nan\""
  else if v > 0. then Buffer.add_string b "\"inf\""
  else Buffer.add_string b "\"-inf\""

let rec buf_add_json b = function
  | Json.Null -> Buffer.add_string b "null"
  | Json.Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Json.Num v -> buf_add_float b v
  | Json.Str s -> Json.buf_add_string b s
  | Json.Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ", ";
          buf_add_json b v)
        l;
      Buffer.add_char b ']'
  | Json.Obj l ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Json.buf_add_string b k;
          Buffer.add_string b ": ";
          buf_add_json b v)
        l;
      Buffer.add_char b '}'

let field b name =
  Buffer.add_string b ", ";
  Json.buf_add_string b name;
  Buffer.add_string b ": "

let float_field b name v =
  field b name;
  buf_add_float b v

let buf_add_response b (r : response) =
  Buffer.add_string b "{\"id\": ";
  buf_add_json b r.rid;
  (match r.outcome with
  | Error msg ->
      Buffer.add_string b ", \"ok\": false";
      field b "error";
      Json.buf_add_string b msg
  | Ok (op, reply) -> (
      Buffer.add_string b ", \"ok\": true";
      field b "op";
      Json.buf_add_string b op;
      match reply with
      | Value v ->
          float_field b "value" v;
          if op = "latency" || op = "quantile" then begin
            field b "saturated";
            Buffer.add_string b (if Float.is_finite v then "false" else "true")
          end
      | Point_miss ->
          field b "found";
          Buffer.add_string b "false"
      | Point_hit s ->
          field b "found";
          Buffer.add_string b "true";
          float_field b "mean" s.mean;
          float_field b "p50" s.p50;
          float_field b "p90" s.p90;
          float_field b "p99" s.p99;
          float_field b "p999" s.p999;
          float_field b "ci_half_width" s.ci_half_width;
          field b "replications";
          Buffer.add_string b (string_of_int s.replications);
          field b "events";
          Buffer.add_string b (string_of_int s.events)));
  Buffer.add_char b '}'

(* A frame's worth of responses, mirroring its shape: an object line
   for a [Single] frame, an array line for a [Batch] (answers in
   request order), so clients correlate by position as well as [id]. *)
let buf_add_frame_responses b ~batched (rs : response array) =
  if batched then begin
    Buffer.add_char b '[';
    Array.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string b ", ";
        buf_add_response b r)
      rs;
    Buffer.add_char b ']'
  end
  else (
    assert (Array.length rs = 1);
    buf_add_response b rs.(0));
  Buffer.add_char b '\n'

let error_line msg =
  let b = Buffer.create 64 in
  buf_add_response b { rid = Json.Null; outcome = Error msg };
  Buffer.add_char b '\n';
  Buffer.contents b
