(** The daemon's socket edge: a single-threaded [select] loop.

    The protocol edge is deliberately single-threaded — evaluation
    parallelism lives in the {!Oracle}'s domain pool, so the server
    needs no locking and answers stay in arrival order.  Each loop
    round drains every readable connection, assembles everything that
    arrived into pool dispatches of at most [max_batch] requests, and
    buffers the answers back per connection (a frame's answer line
    mirrors its request line's shape; see {!Protocol}).

    A connection whose first line starts with [GET ] is treated as an
    HTTP scrape: [GET /metrics] answers one [HTTP/1.0 200] with the
    registry's Prometheus exposition and closes — enough for
    [curl --unix-socket] and a Prometheus scrape config, and the same
    text [--metrics-format prometheus] renders.

    Observability: [serve_requests_total{op,outcome}] (from the
    oracle), [serve_batch_size], [serve_queue_depth],
    [serve_request_seconds] (arrival → response buffered, so it
    includes loop queueing), [serve_connections_total],
    [serve_active_connections]; [serve.batch] / [serve.request]
    spans on the tracer. *)

type address = Unix_path of string | Tcp of string * int

val address_of_string : string -> (address, string) result
(** ["unix:PATH"] or ["tcp:HOST:PORT"] (empty HOST = 127.0.0.1). *)

val address_to_string : address -> string

type config = {
  address : address;
  max_batch : int;  (** pool-dispatch size cap; {!default_max_batch} *)
  stop : bool Atomic.t;
      (** checked every loop round (≤ 0.2 s): set it from a signal
          handler or another domain for a clean shutdown — listener
          closed, connections closed, unix socket file unlinked *)
  metrics : Fatnet_obs.Metrics.t;
  tracer : Fatnet_obs.Trace.t;
}

val default_max_batch : int
(** 1024. *)

val serve : config -> Oracle.t -> unit
(** Bind, listen, and run until [stop].  Raises [Unix.Unix_error]
    (address in use, permission) from the initial bind; a stale unix
    socket file at the address is replaced.  Does not shut down the
    oracle. *)
