module Scenario = Fatnet_scenario.Scenario
module Eval = Fatnet_model.Eval
module Memo = Fatnet_numerics.Memo
module Point_cache = Fatnet_experiments.Point_cache
module Cache_gate = Fatnet_experiments.Cache_gate
module Metrics = Fatnet_obs.Metrics
module Trace = Fatnet_obs.Trace
module Json = Fatnet_obs.Json

type t = {
  scenario : Scenario.t;
  skey : string;  (* Scenario.memo_key: canonical hash, load axis zeroed *)
  pool : Eval.Pool.t;
  (* One workspace per pool slot, built once: slot i is only ever
     used by the domain holding ctx id i, so the mutable scratch is
     single-domain as the workspace contract requires. *)
  wss : Eval.workspace array;
  memo : float Memo.t;
  points : Point_cache.entry Memo.t;
  cache_dir : string option;
  gate : Cache_gate.t;
  sat : float Atomic.t;  (* nan until first computed *)
  metrics : Metrics.t;
  tracer : Trace.t;
}

let default_memo_capacity = 1024
let default_cache_recovery = 512

let create ?domains ?(memo_capacity = default_memo_capacity) ?cache_dir
    ?(cache_recovery = default_cache_recovery) ?(metrics = Metrics.disabled)
    ?(tracer = Trace.disabled) scenario =
  (match Scenario.validate scenario with
  | Ok () -> ()
  | Error e -> invalid_arg ("Oracle.create: " ^ e));
  let capacity = if memo_capacity = 0 then None else Some memo_capacity in
  let pool = Eval.Pool.create ?domains () in
  {
    scenario;
    skey = Scenario.memo_key scenario;
    pool;
    wss = Array.init (Eval.Pool.domains pool) (fun _ -> Scenario.evaluator scenario);
    memo = Memo.create ?capacity ~metric:"serve_memo" ();
    points = Memo.create ?capacity ~metric:"serve_point_memo" ();
    cache_dir;
    gate =
      Cache_gate.create
        ?recover_after:(if cache_recovery = 0 then None else Some cache_recovery)
        ~metrics
        ~context:
          (if cache_recovery = 0 then "for the rest of this process"
           else Printf.sprintf "for the next %d point lookups" cache_recovery)
        ~enabled:(cache_dir <> None) ();
    sat = Atomic.make Float.nan;
    metrics;
    tracer;
  }

let scenario t = t.scenario
let pool t = t.pool
let memo t = t.memo
let cache_degraded t = Cache_gate.degraded t.gate

let shutdown t = Eval.Pool.shutdown t.pool

(* The answer to "saturation" is computed once and pinned: the warm
   per-domain bracket ([Pool.ctx_bracket]) makes repeat solves cheap,
   but warm solves depend on history, so only the first computed
   value is ever published.  Every domain's first solve runs the cold
   sequence bit-for-bit (fresh bracket state), and racing domains
   both run cold, so whichever store wins publishes the same bits. *)
let saturation_rate t ctx ws =
  let v = Atomic.get t.sat in
  if Float.is_nan v then begin
    let r = Eval.saturation_rate ~state:(Eval.Pool.ctx_bracket ctx) ws in
    Atomic.set t.sat r;
    r
  end
  else v

let summary_of (e : Point_cache.entry) : Protocol.point_summary =
  let s = e.Point_cache.summary in
  {
    mean = s.Fatnet_stats.Summary.mean;
    p50 = s.Fatnet_stats.Summary.p50;
    p90 = s.Fatnet_stats.Summary.p90;
    p99 = s.Fatnet_stats.Summary.p99;
    p999 = s.Fatnet_stats.Summary.p999;
    ci_half_width = e.Point_cache.ci_half_width;
    replications = e.Point_cache.replications;
    events = e.Point_cache.events;
  }

let point_bits = 0L

let answer_point t lambda =
  match t.cache_dir with
  | None -> Error "no point cache configured (start the daemon with --cache-dir)"
  | Some dir -> (
      let k = Point_cache.key (Scenario.at t.scenario lambda) in
      match Memo.find t.points ~key:k ~bits:point_bits with
      | Some e -> Ok ("point", Protocol.Point_hit (summary_of e))
      | None ->
          if Cache_gate.ready t.gate then (
            match Point_cache.find ~dir k with
            | Some e ->
                Memo.store t.points ~key:k ~bits:point_bits e;
                Ok ("point", Protocol.Point_hit (summary_of e))
            | None -> Ok ("point", Protocol.Point_miss)
            | exception exn ->
                Cache_gate.trip t.gate ~op:"find" exn;
                Ok ("point", Protocol.Point_miss))
          else Ok ("point", Protocol.Point_miss))

let count_request op ~ok =
  let reg = Metrics.ambient () in
  Metrics.incr
    (Metrics.counter reg "serve_requests_total"
       ~labels:[ ("op", op); ("outcome", (if ok then "ok" else "error")) ]
       ~help:"Oracle requests answered, by op and outcome")

let answer_one t ctx (p : Protocol.parsed) : Protocol.response =
  match p with
  | Protocol.Malformed (id, msg) ->
      count_request "invalid" ~ok:false;
      { Protocol.rid = id; outcome = Error msg }
  | Protocol.Req { id; query } ->
      let ws = t.wss.(Eval.Pool.ctx_id ctx) in
      let op = Protocol.op_name query in
      Trace.in_span t.tracer "serve.request" @@ fun sp ->
      Trace.attr sp "op" op;
      let outcome =
        match query with
        | Protocol.Latency { lambda } ->
            let v =
              Memo.find_or_compute t.memo ~key:t.skey
                ~bits:(Int64.bits_of_float lambda) (fun () ->
                  Eval.mean_into ws ~lambda_g:lambda)
            in
            Ok (op, Protocol.Value v)
        | Protocol.Quantile { lambda; q } ->
            (* q widens the memo key, λ stays on the bits axis, so
               quantile and latency answers for one λ never alias. *)
            let key = Printf.sprintf "%s|q:%Lx" t.skey (Int64.bits_of_float q) in
            let v =
              Memo.find_or_compute t.memo ~key ~bits:(Int64.bits_of_float lambda)
                (fun () -> Eval.quantile ws ~lambda_g:lambda ~q)
            in
            Ok (op, Protocol.Value v)
        | Protocol.Saturation -> Ok (op, Protocol.Value (saturation_rate t ctx ws))
        | Protocol.Point { lambda } -> answer_point t lambda
      in
      count_request op ~ok:(Result.is_ok outcome);
      { Protocol.rid = id; outcome }

let answer_batch t (reqs : Protocol.parsed array) : Protocol.response array =
  Metrics.with_ambient t.metrics @@ fun () ->
  Eval.Pool.map t.pool reqs ~f:(fun ctx p -> answer_one t ctx p)
