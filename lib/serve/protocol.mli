(** The oracle's wire protocol: newline-delimited JSON.

    One request per line, or one JSON array of requests per line (a
    client-side batch); the daemon answers with exactly one line per
    request line, mirroring the shape — an object for an object, an
    array (answers in request order) for an array.  Requests:

    {v
    {"id": 7, "op": "latency", "lambda": 2e-5}
    {"op": "quantile", "lambda": 2e-5, "q": 0.99}
    {"op": "saturation"}
    {"op": "point", "lambda": 2e-5}
    v}

    [id] is optional and echoed verbatim (any JSON value); [op]
    defaults to ["latency"].  Responses:

    {v
    {"id": 7, "ok": true, "op": "latency", "value": 0.000232..., "saturated": false}
    {"id": null, "ok": false, "error": "lambda: expected a number"}
    v}

    Finite values are rendered with the shortest decimal that parses
    back to exactly the same IEEE-754 bits ([Json.shortest_float]),
    so a socket answer is bit-comparable to a direct {!Fatnet_model.Eval}
    call; non-finite values render as the tagged strings ["inf"],
    ["-inf"], ["nan"] (the metrics-snapshot convention), with
    [saturated: true] alongside for latency/quantile answers.  A
    malformed line or request yields an [ok: false] answer in its
    slot and never closes the connection. *)

type query =
  | Latency of { lambda : float }
  | Quantile of { lambda : float; q : float }
  | Saturation
  | Point of { lambda : float }
      (** look up the {e simulated} point for [Scenario.at lambda] in
          the daemon's {!Fatnet_experiments.Point_cache} *)

type request = { id : Fatnet_obs.Json.t; query : query }

type parsed =
  | Req of request
  | Malformed of Fatnet_obs.Json.t * string
      (** the request's [id] (when recoverable) and a friendly
          message; answered in place so batch alignment survives *)

type frame = Single of parsed | Batch of parsed list

type point_summary = {
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  ci_half_width : float;
  replications : int;
  events : int;
}

type reply = Value of float | Point_hit of point_summary | Point_miss

type response = {
  rid : Fatnet_obs.Json.t;
  outcome : (string * reply, string) result;  (** op name × reply *)
}

val op_name : query -> string

val parse_request : Fatnet_obs.Json.t -> parsed

val frame_of_line : string -> (frame, string) result
(** Parse one wire line.  [Error] only when the line is not valid
    JSON at all (the server answers it with {!error_line}); an
    element that is valid JSON but a bad request comes back as
    [Malformed] inside the frame. *)

val buf_add_response : Buffer.t -> response -> unit

val buf_add_frame_responses : Buffer.t -> batched:bool -> response array -> unit
(** Render one answer line for a frame: [batched:false] expects
    exactly one response. *)

val error_line : string -> string
(** A complete [{"id": null, "ok": false, "error": ...}] line. *)
