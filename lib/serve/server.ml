module Metrics = Fatnet_obs.Metrics
module Trace = Fatnet_obs.Trace
module Log = Fatnet_obs.Log

type address = Unix_path of string | Tcp of string * int

let address_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then Error "unix address needs a path (unix:PATH)"
      else Ok (Unix_path path)
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Error "tcp address needs a host and port (tcp:HOST:PORT)"
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 ->
              Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
          | _ -> Error (Printf.sprintf "invalid tcp port %S" port)))
  | _ -> Error (Printf.sprintf "invalid listen address %S (expected unix:PATH or tcp:HOST:PORT)" s)

let address_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type config = {
  address : address;
  max_batch : int;
  stop : bool Atomic.t;
  metrics : Metrics.t;
  tracer : Trace.t;
}

let default_max_batch = 1024

(* ------------------------------------------------------------------ *)
(* Per-connection state.  Output is a FIFO of rendered chunks with a
   byte offset into the head, so partial writes resume cleanly. *)

type conn = {
  fd : Unix.file_descr;
  inb : Buffer.t;
  outq : string Queue.t;
  mutable sent : int;  (* bytes of the head chunk already written *)
  mutable http : bool;  (* an HTTP scrape: discard input, close when drained *)
  mutable eof : bool;  (* peer shut down its write side *)
  mutable dead : bool;
}

let enqueue c s = if s <> "" then Queue.add s c.outq

let has_output c = not (Queue.is_empty c.outq)

(* ------------------------------------------------------------------ *)
(* Minimal HTTP for `GET /metrics`: enough for curl and a Prometheus
   scrape, nothing more.  Everything but /metrics is a 404. *)

let http_response reg line =
  let path =
    match String.split_on_char ' ' line with _ :: p :: _ -> p | _ -> "/"
  in
  let status, body =
    if path = "/metrics" || String.length path >= 9 && String.sub path 0 9 = "/metrics?" then
      ("200 OK", Metrics.Snapshot.to_prometheus (Metrics.snapshot reg))
    else ("404 Not Found", "only /metrics is served\n")
  in
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: \
     %d\r\nConnection: close\r\n\r\n%s"
    status (String.length body) body

(* ------------------------------------------------------------------ *)

let listener_of_address = function
  | Unix_path path ->
      if Sys.file_exists path then (
        (* A previous daemon's socket file: connecting to it would
           have failed, so it is stale debris — replace it. *)
        try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

(* One frame of work: where the answers go back to, the shape to
   mirror, the parsed requests, and when they arrived (service time
   includes queueing in this loop, not just evaluation). *)
type work = {
  w_conn : conn;
  w_batched : bool;
  w_parsed : Protocol.parsed array;
  w_arrived : float;
}

let serve config oracle =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let reg = config.metrics in
  let requests_hist =
    Metrics.histogram reg "serve_request_seconds" ~lo:0. ~hi:0.05 ~bins:50
      ~help:"Request service time: arrival to response buffered"
  in
  let batch_hist =
    Metrics.histogram reg "serve_batch_size" ~lo:0. ~hi:1024. ~bins:64
      ~help:"Requests dispatched to the pool per batch"
  in
  let queue_gauge =
    Metrics.gauge reg "serve_queue_depth" ~help:"Requests pending at dispatch time"
  in
  let conns_total =
    Metrics.counter reg "serve_connections_total" ~help:"Connections accepted"
  in
  let active_gauge =
    Metrics.gauge reg "serve_active_connections" ~help:"Currently open connections"
  in
  let listener = listener_of_address config.address in
  Unix.set_nonblock listener;
  let conns : conn list ref = ref [] in
  let set_active () = Metrics.set active_gauge (float_of_int (List.length !conns)) in
  let close_conn c =
    if not c.dead then begin
      c.dead <- true;
      (try Unix.close c.fd with Unix.Unix_error _ -> ())
    end
  in
  Log.info "fatnet serve: listening on %s" (address_to_string config.address);
  let buf = Bytes.create 65536 in
  (* Split a connection's input buffer into complete lines; the tail
     (no newline yet) stays buffered. *)
  let take_lines c =
    let s = Buffer.contents c.inb in
    match String.rindex_opt s '\n' with
    | None -> []
    | Some last ->
        Buffer.clear c.inb;
        Buffer.add_substring c.inb s (last + 1) (String.length s - last - 1);
        String.split_on_char '\n' (String.sub s 0 last)
  in
  let pending : work list ref = ref [] in
  let handle_line c line =
    let line = if String.length line > 0 && line.[String.length line - 1] = '\r'
      then String.sub line 0 (String.length line - 1) else line in
    if c.http || line = "" then ()
    else if String.length line >= 4 && String.sub line 0 4 = "GET " then begin
      c.http <- true;
      enqueue c (http_response reg line)
    end
    else begin
      (* Even an unparseable line becomes a pending frame: answers
         must leave in request-line order, and an error line that
         jumped ahead of earlier frames still in dispatch would break
         positional correlation. *)
      let batched, parsed =
        match Protocol.frame_of_line line with
        | Error msg ->
            (false, [| Protocol.Malformed (Fatnet_obs.Json.Null, msg) |])
        | Ok (Protocol.Single p) -> (false, [| p |])
        | Ok (Protocol.Batch ps) -> (true, Array.of_list ps)
      in
      pending :=
        { w_conn = c; w_batched = batched; w_parsed = parsed;
          w_arrived = Metrics.now_seconds () }
        :: !pending
    end
  in
  let read_conn c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> c.eof <- true
    | n -> Buffer.add_subbytes c.inb buf 0 n;
        List.iter (handle_line c) (take_lines c)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn c
  in
  let write_conn c =
    try
      let continue = ref true in
      while !continue && not (Queue.is_empty c.outq) do
        let s = Queue.peek c.outq in
        let rem = String.length s - c.sent in
        let n = Unix.write_substring c.fd s c.sent rem in
        if n = rem then begin
          ignore (Queue.pop c.outq);
          c.sent <- 0
        end
        else begin
          c.sent <- c.sent + n;
          continue := false
        end
      done
    with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | Unix.Unix_error _ -> close_conn c
  in
  (* Answer everything read this round in [max_batch]-sized pool
     dispatches, then route each frame's slice back to its
     connection, shape preserved. *)
  let dispatch () =
    let work = List.rev !pending in
    pending := [];
    if work <> [] then begin
      let total = List.fold_left (fun a w -> a + Array.length w.w_parsed) 0 work in
      Metrics.set queue_gauge (float_of_int total);
      let all = Array.make total (Protocol.Malformed (Fatnet_obs.Json.Null, "")) in
      let off = ref 0 in
      List.iter
        (fun w ->
          Array.blit w.w_parsed 0 all !off (Array.length w.w_parsed);
          off := !off + Array.length w.w_parsed)
        work;
      let answers = Array.make total None in
      let chunk = max 1 config.max_batch in
      let pos = ref 0 in
      while !pos < total do
        let n = min chunk (total - !pos) in
        let slice = Array.sub all !pos n in
        Metrics.observe batch_hist (float_of_int n);
        let rs =
          Trace.in_span config.tracer "serve.batch" @@ fun sp ->
          Trace.attr_int sp "requests" n;
          Oracle.answer_batch oracle slice
        in
        Array.iteri (fun i r -> answers.(!pos + i) <- Some r) rs;
        pos := !pos + n
      done;
      let done_at = Metrics.now_seconds () in
      let off = ref 0 in
      List.iter
        (fun w ->
          let k = Array.length w.w_parsed in
          let rs =
            Array.init k (fun i ->
                match answers.(!off + i) with
                | Some r -> r
                | None ->
                    { Protocol.rid = Fatnet_obs.Json.Null;
                      outcome = Error "internal error: unanswered request" })
          in
          off := !off + k;
          if not w.w_conn.dead then begin
            let b = Buffer.create 256 in
            Protocol.buf_add_frame_responses b ~batched:w.w_batched rs;
            enqueue w.w_conn (Buffer.contents b)
          end;
          for _ = 1 to k do
            Metrics.observe requests_hist (done_at -. w.w_arrived)
          done)
        work;
      Metrics.set queue_gauge 0.
    end
  in
  let cleanup () =
    (try Unix.close listener with Unix.Unix_error _ -> ());
    List.iter close_conn !conns;
    match config.address with
    | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  in
  (* The main select loop: single-threaded by design — evaluation
     parallelism lives in the oracle's pool, so the protocol edge
     needs no locking and answers stay in arrival order. *)
  (try
     while not (Atomic.get config.stop) do
       conns :=
         List.filter
           (fun c ->
             if c.dead || (c.eof && not (has_output c)) || (c.http && not (has_output c))
             then (close_conn c; false)
             else true)
           !conns;
       set_active ();
       let rd = listener :: List.filter_map
                  (fun c -> if c.eof then None else Some c.fd)
                  !conns in
       let wr = List.filter_map (fun c -> if has_output c then Some c.fd else None) !conns in
       match Unix.select rd wr [] 0.2 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | readable, writable, _ ->
           if List.memq listener readable then begin
             let accepting = ref true in
             while !accepting do
               match Unix.accept listener with
               | fd, _ ->
                   Unix.set_nonblock fd;
                   Metrics.incr conns_total;
                   conns :=
                     { fd; inb = Buffer.create 256; outq = Queue.create ();
                       sent = 0; http = false; eof = false; dead = false }
                     :: !conns
               | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                   accepting := false
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
             done
           end;
           List.iter
             (fun c -> if List.memq c.fd readable then read_conn c)
             !conns;
           dispatch ();
           (* Write opportunistically, not only when select flagged
              writability: fresh answers almost always fit the socket
              buffer, and EAGAIN just defers to the next round (the
              [wr] set above wakes the loop when space frees up). *)
           ignore (writable : Unix.file_descr list);
           List.iter (fun c -> if has_output c then write_conn c) !conns
     done
   with e -> cleanup (); raise e);
  cleanup ();
  Log.info "fatnet serve: shut down cleanly"
