(** The latency oracle: the analytical model behind a query API.

    One oracle serves one scenario (everything but the load axis is
    fixed at {!create}); a query names λ (and, for quantiles, q) and
    gets the model's answer in microseconds.  Queries are dispatched
    in batches onto a persistent {!Fatnet_model.Eval.Pool}, each
    domain evaluating against its own pre-built workspace, through a
    bounded in-memory {!Fatnet_numerics.Memo} keyed by the scenario's
    canonical hash × λ's IEEE-754 bits.

    {b Determinism:} latency, quantile and saturation answers are a
    pure function of (scenario, query): bit-identical for any batch
    order, batch splitting, domain count, and memo hit/miss history
    (pinned by the QCheck property suite).  Saturation is solved once
    — every domain's first solve is the cold, bit-reproducible search
    — and the pinned value answers every later query.  [point]
    answers are the exception by design: they report whatever the
    {e simulation} point cache currently holds ([Point_miss] when it
    holds nothing, or while the cache gate is degraded). *)

type t

val default_memo_capacity : int
(** 1024 entries per memo shard (× 64 shards). *)

val default_cache_recovery : int
(** 512 — skipped point lookups before a degraded cache re-probes
    ({!Fatnet_experiments.Cache_gate}); daemon semantics, unlike the
    sweep engine's one-way trip. *)

val create :
  ?domains:int ->
  ?memo_capacity:int ->
  ?cache_dir:string ->
  ?cache_recovery:int ->
  ?metrics:Fatnet_obs.Metrics.t ->
  ?tracer:Fatnet_obs.Trace.t ->
  Fatnet_scenario.Scenario.t ->
  t
(** Validate the scenario, spawn the evaluation pool and build one
    workspace per domain.  [memo_capacity] is per shard, 0 =
    unbounded; [cache_recovery] 0 = degrade permanently.  [cache_dir]
    enables the [point] op against that
    {!Fatnet_experiments.Point_cache} directory.
    @raise Invalid_argument when the scenario fails validation. *)

val answer_batch : t -> Protocol.parsed array -> Protocol.response array
(** Answer a batch on the pool (the caller participates); responses
    land at their request's index.  Malformed requests answer
    [ok: false] in place.  Runs with the oracle's metrics registry
    ambient: bumps [serve_requests_total{op,outcome}] per request and
    the memo's [serve_memo_*] counters. *)

val scenario : t -> Fatnet_scenario.Scenario.t
val pool : t -> Fatnet_model.Eval.Pool.t
val memo : t -> float Fatnet_numerics.Memo.t

val cache_degraded : t -> bool
(** Is the point-cache gate currently tripped? *)

val shutdown : t -> unit
(** Join the pool's worker domains.  Idempotent. *)
