(** M/G/1 queueing formulas (Kleinrock vol. 2), used for the source
    queues and the concentrator/dispatcher buffers of the model.

    The paper's Eq. (15) is the Pollaczek–Khinchine mean waiting time

    [W = λ (x̄² + σ²) / (2 (1 − ρ))],   [ρ = λ x̄].

    Saturated queues ([ρ >= 1]) report an infinite wait rather than a
    negative one, so sweeps past the saturation point stay
    well-behaved. *)

type service = { mean : float; variance : float }
(** First two moments of the service-time distribution.
    [mean >= 0.] and [variance >= 0.]. *)

val utilization : lambda:float -> service:service -> float
(** [ρ = λ x̄]. *)

val is_stable : lambda:float -> service:service -> bool
(** [ρ < 1]. *)

val waiting_time : lambda:float -> service:service -> float
(** Pollaczek–Khinchine mean wait in queue (excluding service);
    [infinity] when [ρ >= 1].  Requires [lambda >= 0.]. *)

val waiting_time_mv : lambda:float -> mean:float -> variance:float -> float
(** {!waiting_time} with the moments passed unboxed — the same
    formula, guards and results bit-for-bit, without allocating a
    [service] record.  The model's workspace evaluator uses this on
    its hot path. *)

val sojourn_time : lambda:float -> service:service -> float
(** Wait plus service. *)

val deterministic : float -> service
(** Service with zero variance (M/D/1). *)

val exponential : mean:float -> service
(** Service with variance [mean²] (M/M/1). *)

val queue_length : lambda:float -> service:service -> float
(** Mean number waiting in queue, [L_q = λ·W] (Little's law);
    [infinity] when saturated. *)

val system_length : lambda:float -> service:service -> float
(** Mean number in system, [L = λ·(W + x̄)]. *)

val busy_period : lambda:float -> service:service -> float
(** Mean busy-period length [x̄ / (1 − ρ)]; [infinity] when
    saturated. *)

val coefficient_of_variation : service -> float
(** [c = σ / x̄]; 0 for deterministic, 1 for exponential service.
    Requires [mean > 0.]. *)

val mm1_waiting_time : lambda:float -> mu:float -> float
(** Closed-form M/M/1 wait [ρ / (μ − λ)]; reference for tests. *)

val md1_waiting_time : lambda:float -> mean:float -> float
(** Closed-form M/D/1 wait [ρ x̄ / (2 (1 − ρ))]; reference for
    tests. *)
