type service = { mean : float; variance : float }

let check_service s =
  if s.mean < 0. then invalid_arg "Mg1: negative service mean";
  if s.variance < 0. then invalid_arg "Mg1: negative service variance"

let utilization ~lambda ~service =
  check_service service;
  lambda *. service.mean

let is_stable ~lambda ~service = utilization ~lambda ~service < 1.

(* The unboxed entry point: identical formula and guards, but the
   moments arrive as plain floats so hot paths (the model's
   allocation-free evaluator) need not build a [service] record. *)
let waiting_time_mv ~lambda ~mean ~variance =
  if mean < 0. then invalid_arg "Mg1: negative service mean";
  if variance < 0. then invalid_arg "Mg1: negative service variance";
  if lambda < 0. then invalid_arg "Mg1.waiting_time: negative arrival rate";
  if lambda = 0. then 0.
  else begin
    let rho = lambda *. mean in
    if rho >= 1. then infinity
    else
      let second_moment = (mean *. mean) +. variance in
      lambda *. second_moment /. (2. *. (1. -. rho))
  end

let waiting_time ~lambda ~service =
  waiting_time_mv ~lambda ~mean:service.mean ~variance:service.variance

let sojourn_time ~lambda ~service = waiting_time ~lambda ~service +. service.mean

let deterministic mean = { mean; variance = 0. }

let exponential ~mean = { mean; variance = mean *. mean }

let queue_length ~lambda ~service = lambda *. waiting_time ~lambda ~service

let system_length ~lambda ~service = lambda *. sojourn_time ~lambda ~service

let busy_period ~lambda ~service =
  check_service service;
  let rho = lambda *. service.mean in
  if rho >= 1. then infinity else service.mean /. (1. -. rho)

let coefficient_of_variation service =
  check_service service;
  if not (service.mean > 0.) then invalid_arg "Mg1.coefficient_of_variation: zero mean";
  sqrt service.variance /. service.mean

let mm1_waiting_time ~lambda ~mu =
  if mu <= 0. then invalid_arg "Mg1.mm1_waiting_time: mu must be positive";
  let rho = lambda /. mu in
  if rho >= 1. then infinity else rho /. (mu -. lambda)

let md1_waiting_time ~lambda ~mean =
  let rho = lambda *. mean in
  if rho >= 1. then infinity else rho *. mean /. (2. *. (1. -. rho))
