(** Minimal JSON support shared by the observability exporters.

    One hand-rolled reader/writer (objects, arrays, strings, numbers,
    booleans, null) serves every side of lib/obs that speaks JSON —
    metrics snapshots, Chrome trace events, the bench-regression
    reporter — so the repo needs no external JSON dependency and every
    parser reports errors the same way.  It is intentionally {e not} a
    general-purpose JSON library: no streaming, no arbitrary-precision
    numbers, [\u] escapes above U+00FF decode to [?]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** members in document order *)

exception Parse of string
(** Raised by {!parse} with a byte-offset-qualified message. *)

val parse : string -> t
(** Parse a complete document; raises {!Parse} on malformed input or
    trailing garbage. *)

val parse_result : string -> (t, string) result
(** {!parse} with the error as a value. *)

val member : string -> t -> t option
(** First member of that name when the value is an object. *)

(** {1 Writer helpers} *)

val buf_add_string : Buffer.t -> string -> unit
(** Append [s] as a quoted JSON string, escaping quotes, backslashes,
    newlines and other control characters. *)

val shortest_float : float -> string
(** Shortest decimal representation that parses back to exactly the
    given (finite) float. *)
