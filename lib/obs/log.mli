(** Tiny leveled stderr logger, so warnings and the live progress
    line never interleave mid-line.

    Every diagnostic line the library emits (cache degradation,
    fault-injection notices, "wrote FILE" confirmations) goes through
    one mutex-guarded emitter.  A status-line renderer (the sweep
    progress reporter) registers clear/redraw hooks: the emitter
    clears the status line, prints the log line, and redraws — no
    torn output, whichever domain logs.

    Text format matches the CLI's existing conventions: [error: msg],
    [warning: msg], and info lines verbatim.  Setting [FATNET_LOG=json]
    in the environment switches to JSON-lines
    ([{"level": "warn", "msg": "..."}]) for machine consumers. *)

type level = Error | Warn | Info

val set_threshold : level -> unit
(** Drop messages below this severity (default [Info] = everything;
    [--quiet] sets [Error]). *)

val threshold : unit -> level

val err : ('a, unit, string, unit) format4 -> 'a
val warn : ('a, unit, string, unit) format4 -> 'a
val info : ('a, unit, string, unit) format4 -> 'a

(** {1 Status-line coordination} *)

val set_status_hooks : clear:(unit -> unit) -> redraw:(unit -> unit) -> unit
(** Install the active status line's hooks: [clear] erases it before
    a log line prints, [redraw] repaints it after.  One status line
    at a time (last writer wins). *)

val clear_status_hooks : unit -> unit

val with_print_lock : (unit -> unit) -> unit
(** Run [f] holding the emitter's lock — how the status line itself
    paints without racing a concurrent log line. *)
