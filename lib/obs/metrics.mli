(** Zero-dependency telemetry: a metrics registry with counters,
    gauges and fixed-bucket histograms, plus lightweight span timers.

    The registry exists so the engine's internal quantities — channel
    utilisation per tree level, blocking probability, C/D buffer
    occupancy, solver iteration counts, scheduler busy time — can be
    exported instead of printf-debugged.  Design constraints, in
    order:

    {ul
    {- {b allocation-free on the hot path}: instruments are plain
       mutable records created once (registration is the cold path);
       recording is an increment, a store, or a bin bump — no
       closures, no boxing;}
    {- {b literal no-ops when disabled}: a disabled registry hands
       every caller the same statically allocated sink instruments
       ({!null_counter} and friends), so instrumented code runs
       unconditionally and its disabled-mode cost is one dead store
       into a shared dummy — no [if enabled] at every call site;}
    {- {b domain-safe by construction}: counters are atomic; gauges
       and histograms are meant to be recorded from one domain at a
       time (the sweep engine gives each worker domain its own
       registry and {!absorb}s the snapshots after the join).
       Registration itself is mutex-guarded.}}

    Instruments are identified by a name plus optional
    [(key, value)] labels; registering the same identity twice
    returns the same instrument (with the same kind and, for
    histograms, the same buckets — anything else is a programming
    error and raises). *)

type t
(** A metrics registry. *)

type counter
type gauge
type histogram

val create : unit -> t
(** A fresh, enabled registry. *)

val disabled : t
(** The shared disabled registry: every instrument it returns is the
    corresponding static null sink, snapshots are empty, and
    {!absorb}/{!set_meta} are no-ops. *)

val is_enabled : t -> bool

(** {1 Registration (cold path)} *)

val counter : ?help:string -> ?labels:(string * string) list -> t -> string -> counter
(** Monotone integer count (events processed, cache hits, solver
    iterations).  Atomic, hence safe to bump from any domain. *)

val gauge : ?help:string -> ?labels:(string * string) list -> t -> string -> gauge
(** Last-written float (phase end times, saturation rate).  Merging
    snapshots keeps the {e maximum}, so peak-style gauges aggregate
    meaningfully across replications and domains. *)

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  lo:float ->
  hi:float ->
  bins:int ->
  t ->
  string ->
  histogram
(** Fixed-bucket histogram over [[lo, hi)] with [bins] equal-width
    bins; samples outside the range land in under/overflow counters,
    never dropped.  Requires finite [lo < hi] and [bins >= 1] (a
    non-finite bound would poison the bucket edges and the JSON
    export).  The running sum is kept, so merged snapshots preserve
    totals and means. *)

(** {1 Recording (hot path)} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the maximum of the current and given value — peak tracking
    (queue depths, worms in flight). *)

val observe : histogram -> float -> unit
(** Record a sample.  NaN samples are dropped, and negative samples
    are dropped when the histogram's range starts at or above zero —
    into such a histogram a negative value can only be a measurement
    defect (a stepped clock under a duration timer), so it is
    rejected at the boundary rather than recorded as under-range
    data.  Histograms created with a negative [lo] accept negative
    samples as before. *)

(** {1 Span timers} *)

val now_seconds : unit -> float
(** The clock behind span timers: monotonic (the same nanosecond
    clock {!Fatnet_obs.Trace} uses, scaled to seconds), so durations
    survive NTP steps in a long-running process.  The epoch is
    arbitrary — only differences are meaningful.  Exposed so layers
    that may not depend on [unix] directly (the model's evaluation
    pool, benches) can time busy/wall intervals against the same
    clock the registry uses. *)

type span
(** A started timing region; {!finish_span} observes the elapsed
    seconds into the histogram the span was started against. *)

val start_span : histogram -> span
(** Wall-clock span (microsecond resolution).  On a null histogram
    the span is free. *)

val finish_span : span -> unit

(** {1 Run metadata} *)

val set_meta : t -> string -> string -> unit
(** Attach a [(key, value)] string to the registry (command line,
    scenario name, ...); exported verbatim in snapshots.  Last write
    per key wins. *)

(** {1 Ambient registry}

    A domain-local current registry, so deep call sites (the solver
    inside the analytical model) can record without threading a
    registry through every signature.  Defaults to {!disabled} in
    every domain. *)

val ambient : unit -> t
val set_ambient : t -> unit

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run the thunk with the ambient registry swapped, restoring the
    previous one even on exceptions. *)

(** {1 Snapshots and exporters} *)

module Snapshot : sig
  type histo = {
    lo : float;
    hi : float;
    counts : int array;
    underflow : int;
    overflow : int;
    sum : float;
    count : int;  (** total samples, including under/overflow *)
  }

  type value = Counter of int | Gauge of float | Histogram of histo

  type series = {
    name : string;
    labels : (string * string) list;
    help : string;
    value : value;
  }

  type t = {
    meta : (string * string) list;  (** sorted by key *)
    series : series list;           (** sorted by (name, labels) *)
  }

  val empty : t

  val find : ?labels:(string * string) list -> t -> string -> value option
  (** The series with this exact identity, if present. *)

  val merge : t -> t -> t
  (** Pointwise union: counters add, gauges keep the maximum,
      histograms add bin-for-bin (same bucket layout required —
      mismatched layouts for the same identity raise
      [Invalid_argument]).  Meta keys union, second snapshot winning
      ties.  This is the replication/domain aggregation path. *)

  val to_json : t -> string
  (** Stable, human-readable JSON document (schema version included);
      non-finite floats are encoded as the strings ["nan"], ["inf"],
      ["-inf"]. *)

  val of_json : string -> (t, string) result
  (** Parse a document produced by {!to_json} (a minimal JSON reader
      — objects, arrays, strings, numbers — sufficient for the
      snapshot schema; not a general-purpose parser). *)

  val to_prometheus : t -> string
  (** Prometheus text exposition format: [# HELP]/[# TYPE] comments,
      cumulative [_bucket{le="..."}] series plus [_sum]/[_count] for
      histograms.  Underflow is folded into the first bucket, as the
      cumulative-bucket convention requires. *)
end

val snapshot : t -> Snapshot.t
(** Export the registry's current state (empty for {!disabled}). *)

val absorb : t -> Snapshot.t -> unit
(** Fold a snapshot into this registry with {!Snapshot.merge}
    semantics, creating missing instruments — how per-domain worker
    registries flow back into the run's root registry.  No-op on
    {!disabled}. *)
