type level = Error | Warn | Info

let severity = function Error -> 2 | Warn -> 1 | Info -> 0
let level_name = function Error -> "error" | Warn -> "warn" | Info -> "info"

let lock = Mutex.create ()
let threshold_ref = Atomic.make Info

let set_threshold l = Atomic.set threshold_ref l
let threshold () = Atomic.get threshold_ref

(* Read once: the output format cannot usefully change mid-run, and
   reading the environment on every line would cost a syscall-free
   but pointless lookup. *)
let json_mode =
  lazy (match Sys.getenv_opt "FATNET_LOG" with Some "json" -> true | _ -> false)

let hooks : ((unit -> unit) * (unit -> unit)) option ref = ref None

let set_status_hooks ~clear ~redraw =
  Mutex.lock lock;
  hooks := Some (clear, redraw);
  Mutex.unlock lock

let clear_status_hooks () =
  Mutex.lock lock;
  hooks := None;
  Mutex.unlock lock

let with_print_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let emit lvl msg =
  if severity lvl >= severity (Atomic.get threshold_ref) then begin
    Mutex.lock lock;
    (match !hooks with Some (clear, _) -> clear () | None -> ());
    (if Lazy.force json_mode then begin
       let b = Buffer.create (String.length msg + 32) in
       Buffer.add_string b "{\"level\": ";
       Json.buf_add_string b (level_name lvl);
       Buffer.add_string b ", \"msg\": ";
       Json.buf_add_string b msg;
       Buffer.add_string b "}\n";
       output_string stderr (Buffer.contents b)
     end
     else
       let prefix = match lvl with Error -> "error: " | Warn -> "warning: " | Info -> "" in
       output_string stderr (prefix ^ msg ^ "\n"));
    flush stderr;
    (match !hooks with Some (_, redraw) -> redraw () | None -> ());
    Mutex.unlock lock
  end

let err fmt = Printf.ksprintf (emit Error) fmt
let warn fmt = Printf.ksprintf (emit Warn) fmt
let info fmt = Printf.ksprintf (emit Info) fmt
