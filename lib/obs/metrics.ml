(* The registry is a cold-path table of hot-path records.  Recording
   never touches the table: callers hold the instrument, and an
   instrument is a bare mutable record (or an [Atomic.t] for
   counters), so the recording cost is one store.  A disabled
   registry hands out the static null sinks below, so instrumented
   code needs no [if enabled] branches — disabled-mode recording is a
   dead store into a shared dummy (benign: the nulls are never
   snapshotted). *)

type counter = int Atomic.t

type gauge = { mutable g : float }

type histogram = {
  h_lo : float;
  h_hi : float;
  h_counts : int array;
  mutable h_under : int;
  mutable h_over : int;
  mutable h_total : int;
  mutable h_sum : float;
}

let null_counter : counter = Atomic.make 0
let null_gauge = { g = 0. }

let null_histogram =
  { h_lo = 0.; h_hi = 1.; h_counts = [| 0 |]; h_under = 0; h_over = 0; h_total = 0; h_sum = 0. }

type instrument = C of counter | G of gauge | H of histogram

type item = { i_name : string; i_labels : (string * string) list; i_help : string; inst : instrument }

(* A series name carries one kind (and, for histograms, one bucket
   layout) across every label set: Prometheus forbids a family with
   two types, so registering `foo` as a counter and `foo{x="1"}` as a
   gauge must fail loudly at registration instead of producing an
   exposition the scraper rejects (or silently letting one kind
   win). *)
type shape = S_counter | S_gauge | S_histogram of float * float * int

let shape_name = function
  | S_counter -> "counter"
  | S_gauge -> "gauge"
  | S_histogram _ -> "histogram"

type t = {
  enabled : bool;
  lock : Mutex.t;
  items : (string, item) Hashtbl.t; (* canonical identity -> item *)
  kinds : (string, shape) Hashtbl.t; (* series name -> its one shape *)
  mutable meta : (string * string) list;
}

let create () =
  {
    enabled = true;
    lock = Mutex.create ();
    items = Hashtbl.create 64;
    kinds = Hashtbl.create 64;
    meta = [];
  }

let disabled =
  {
    enabled = false;
    lock = Mutex.create ();
    items = Hashtbl.create 1;
    kinds = Hashtbl.create 1;
    meta = [];
  }

let is_enabled t = t.enabled

let canonical_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let identity name labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

(* Find-or-create under the registration lock; [make] builds the
   instrument, [extract] projects the expected kind back out. *)
let register t name labels help ~shape make extract wrong =
  let labels = canonical_labels labels in
  let key = identity name labels in
  Mutex.lock t.lock;
  let outcome =
    match Hashtbl.find_opt t.kinds name with
    | Some prior when prior <> shape -> Error prior
    | _ ->
        if not (Hashtbl.mem t.kinds name) then Hashtbl.add t.kinds name shape;
        let item =
          match Hashtbl.find_opt t.items key with
          | Some item -> item
          | None ->
              let item = { i_name = name; i_labels = labels; i_help = help; inst = make () } in
              Hashtbl.add t.items key item;
              item
        in
        Ok item
  in
  Mutex.unlock t.lock;
  match outcome with
  | Error prior ->
      if shape_name prior <> shape_name shape then
        invalid_arg
          (Printf.sprintf
             "Metrics.%s: duplicate series %s already registered as a %s (a series name has \
              one kind)"
             wrong name (shape_name prior))
      else
        invalid_arg
          (Printf.sprintf "Metrics.histogram: %s already registered with another bucket layout"
             name)
  | Ok item -> (
      match extract item.inst with
      | Some v -> v
      | None ->
          (* Unreachable: the name-level shape check above already
             rejected kind mismatches. *)
          invalid_arg
            (Printf.sprintf "Metrics.%s: %s already registered with another kind" wrong name))

let counter ?(help = "") ?(labels = []) t name =
  if not t.enabled then null_counter
  else
    register t name labels help ~shape:S_counter
      (fun () -> C (Atomic.make 0))
      (function C c -> Some c | _ -> None)
      "counter"

let gauge ?(help = "") ?(labels = []) t name =
  if not t.enabled then null_gauge
  else
    register t name labels help ~shape:S_gauge
      (fun () -> G { g = 0. })
      (function G g -> Some g | _ -> None)
      "gauge"

let histogram ?(help = "") ?(labels = []) ~lo ~hi ~bins t name =
  (* Non-finite bounds would poison every bucket-edge computation and
     force the JSON exporter to emit bare NaN/Inf for [lo]/[hi]. *)
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Metrics.histogram: requires finite lo and hi";
  if not (lo < hi) then invalid_arg "Metrics.histogram: requires lo < hi";
  if bins < 1 then invalid_arg "Metrics.histogram: requires bins >= 1";
  if not t.enabled then null_histogram
  else
    register t name labels help
      ~shape:(S_histogram (lo, hi, bins))
      (fun () ->
        H { h_lo = lo; h_hi = hi; h_counts = Array.make bins 0; h_under = 0; h_over = 0; h_total = 0; h_sum = 0. })
      (function H h -> Some h | _ -> None)
      "histogram"

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let set g v = g.g <- v
let set_max g v = if v > g.g then g.g <- v

let observe h x =
  (* Reject samples that can only come from a defective measurement:
     NaN would poison [h_sum] forever, and a negative sample into a
     non-negative-range histogram means a broken clock (span timers
     feed durations here), not data.  Histograms whose range starts
     below zero still accept negative values. *)
  if Float.is_nan x || (x < 0. && h.h_lo >= 0.) then ()
  else begin
    h.h_total <- h.h_total + 1;
    h.h_sum <- h.h_sum +. x;
    if x < h.h_lo then h.h_under <- h.h_under + 1
    else if x >= h.h_hi then h.h_over <- h.h_over + 1
    else begin
      let bins = Array.length h.h_counts in
      let w = (h.h_hi -. h.h_lo) /. float_of_int bins in
      let i = int_of_float ((x -. h.h_lo) /. w) in
      let i = if i >= bins then bins - 1 else i in
      h.h_counts.(i) <- h.h_counts.(i) + 1
    end
  end

(* ---- span timers ---- *)

(* Monotonic, shared with [Trace]: span durations must survive
   wall-clock steps (NTP slews, manual resets) in a long-running
   process.  The epoch is arbitrary — only differences mean
   anything, which is all the callers (span timers, pool busy
   accounting) compute. *)
let now_seconds () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

type span = { s_h : histogram; s_t0 : float }

let start_span h =
  if h == null_histogram then { s_h = h; s_t0 = 0. }
  else { s_h = h; s_t0 = now_seconds () }

let finish_span s =
  if s.s_h != null_histogram then observe s.s_h (now_seconds () -. s.s_t0)

(* ---- meta ---- *)

let set_meta t k v =
  if t.enabled then begin
    Mutex.lock t.lock;
    t.meta <- (k, v) :: List.remove_assoc k t.meta;
    Mutex.unlock t.lock
  end

(* ---- ambient registry ---- *)

let ambient_key = Domain.DLS.new_key (fun () -> disabled)

let ambient () = Domain.DLS.get ambient_key
let set_ambient t = Domain.DLS.set ambient_key t

let with_ambient t f =
  let prev = ambient () in
  set_ambient t;
  Fun.protect ~finally:(fun () -> set_ambient prev) f

(* ---- snapshots ---- *)

module Snapshot = struct
  type histo = {
    lo : float;
    hi : float;
    counts : int array;
    underflow : int;
    overflow : int;
    sum : float;
    count : int;
  }

  type value = Counter of int | Gauge of float | Histogram of histo

  type series = {
    name : string;
    labels : (string * string) list;
    help : string;
    value : value;
  }

  type t = { meta : (string * string) list; series : series list }

  let empty = { meta = []; series = [] }

  let compare_series a b =
    match String.compare a.name b.name with
    | 0 -> compare a.labels b.labels
    | c -> c

  let sort t =
    {
      meta = List.sort (fun (a, _) (b, _) -> String.compare a b) t.meta;
      series = List.sort compare_series t.series;
    }

  let find ?(labels = []) t name =
    let labels = canonical_labels labels in
    List.find_opt (fun s -> s.name = name && s.labels = labels) t.series
    |> Option.map (fun s -> s.value)

  let merge_value name a b =
    match (a, b) with
    | Counter x, Counter y -> Counter (x + y)
    | Gauge x, Gauge y -> Gauge (if y > x then y else x)
    | Histogram x, Histogram y ->
        if x.lo <> y.lo || x.hi <> y.hi || Array.length x.counts <> Array.length y.counts then
          invalid_arg
            (Printf.sprintf "Metrics.Snapshot.merge: bucket layout mismatch for %s" name)
        else
          Histogram
            {
              lo = x.lo;
              hi = x.hi;
              counts = Array.map2 ( + ) x.counts y.counts;
              underflow = x.underflow + y.underflow;
              overflow = x.overflow + y.overflow;
              sum = x.sum +. y.sum;
              count = x.count + y.count;
            }
    | _ -> invalid_arg (Printf.sprintf "Metrics.Snapshot.merge: kind mismatch for %s" name)

  let merge a b =
    let tbl = Hashtbl.create 64 in
    let put s =
      let key = identity s.name s.labels in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key s
      | Some prev ->
          Hashtbl.replace tbl key
            {
              prev with
              value = merge_value s.name prev.value s.value;
              help = (if prev.help = "" then s.help else prev.help);
            }
    in
    List.iter put a.series;
    List.iter put b.series;
    let meta =
      List.fold_left
        (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc)
        a.meta b.meta
    in
    sort { meta; series = Hashtbl.fold (fun _ s acc -> s :: acc) tbl [] }

  (* ---- JSON ---- *)

  let buf_add_json_string = Json.buf_add_string

  (* Non-finite floats are not valid JSON numbers; encode them as
     tagged strings and accept both forms on the way back in.
     Finite floats use the shared shortest round-trip encoding. *)
  let shortest_float = Json.shortest_float

  let buf_add_float b f =
    if Float.is_nan f then Buffer.add_string b "\"nan\""
    else if f = Float.infinity then Buffer.add_string b "\"inf\""
    else if f = Float.neg_infinity then Buffer.add_string b "\"-inf\""
    else Buffer.add_string b (shortest_float f)

  let buf_add_kv_list b pairs =
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        buf_add_json_string b k;
        Buffer.add_string b ": ";
        buf_add_json_string b v)
      pairs;
    Buffer.add_char b '}'

  let schema_version = 1

  let to_json t =
    let t = sort t in
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Printf.sprintf "{\n  \"fatnet_metrics_version\": %d,\n  \"meta\": " schema_version);
    buf_add_kv_list b t.meta;
    Buffer.add_string b ",\n  \"series\": [";
    List.iteri
      (fun i s ->
        Buffer.add_string b (if i = 0 then "\n" else ",\n");
        Buffer.add_string b "    { \"name\": ";
        buf_add_json_string b s.name;
        Buffer.add_string b ", \"labels\": ";
        buf_add_kv_list b s.labels;
        if s.help <> "" then begin
          Buffer.add_string b ", \"help\": ";
          buf_add_json_string b s.help
        end;
        (match s.value with
        | Counter n -> Buffer.add_string b (Printf.sprintf ", \"type\": \"counter\", \"value\": %d" n)
        | Gauge g ->
            Buffer.add_string b ", \"type\": \"gauge\", \"value\": ";
            buf_add_float b g
        | Histogram h ->
            (* [lo]/[hi] are finite for natively created histograms
               (enforced at registration) but a snapshot can also come
               from [of_json]: tag them like every other float so the
               output is always valid JSON. *)
            Buffer.add_string b ", \"type\": \"histogram\", \"lo\": ";
            buf_add_float b h.lo;
            Buffer.add_string b ", \"hi\": ";
            buf_add_float b h.hi;
            Buffer.add_string b
              (Printf.sprintf ", \"counts\": [%s], \"underflow\": %d, \"overflow\": %d, \"sum\": "
                 (String.concat ", " (Array.to_list (Array.map string_of_int h.counts)))
                 h.underflow h.overflow);
            buf_add_float b h.sum;
            Buffer.add_string b (Printf.sprintf ", \"count\": %d" h.count));
        Buffer.add_string b " }")
      t.series;
    Buffer.add_string b "\n  ]\n}\n";
    Buffer.contents b

  (* ---- JSON reader (shared {!Json} parser, snapshot decoding) ---- *)

  exception Parse of string

  let decode_float name = function
    | Json.Num f -> f
    | Json.Str "nan" -> Float.nan
    | Json.Str "inf" -> Float.infinity
    | Json.Str "-inf" -> Float.neg_infinity
    | _ -> raise (Parse (name ^ ": expected a float"))

  let decode_int name = function
    | Json.Num f when Float.is_integer f -> int_of_float f
    | _ -> raise (Parse (name ^ ": expected an integer"))

  let decode_string name = function
    | Json.Str s -> s
    | _ -> raise (Parse (name ^ ": expected a string"))

  let decode_kv_list name = function
    | Json.Obj kvs -> List.map (fun (k, v) -> (k, decode_string name v)) kvs
    | _ -> raise (Parse (name ^ ": expected an object of strings"))

  let field name kvs = List.assoc_opt name kvs

  let require name kvs =
    match field name kvs with
    | Some v -> v
    | None -> raise (Parse ("missing field " ^ name))

  let decode_series = function
    | Json.Obj kvs ->
        let name = decode_string "name" (require "name" kvs) in
        let labels =
          match field "labels" kvs with
          | Some l -> canonical_labels (decode_kv_list "labels" l)
          | None -> []
        in
        let help =
          match field "help" kvs with Some h -> decode_string "help" h | None -> ""
        in
        let value =
          match decode_string "type" (require "type" kvs) with
          | "counter" -> Counter (decode_int "value" (require "value" kvs))
          | "gauge" -> Gauge (decode_float "value" (require "value" kvs))
          | "histogram" ->
              let counts =
                match require "counts" kvs with
                | Json.Arr xs -> Array.of_list (List.map (decode_int "counts") xs)
                | _ -> raise (Parse "counts: expected an array")
              in
              Histogram
                {
                  lo = decode_float "lo" (require "lo" kvs);
                  hi = decode_float "hi" (require "hi" kvs);
                  counts;
                  underflow = decode_int "underflow" (require "underflow" kvs);
                  overflow = decode_int "overflow" (require "overflow" kvs);
                  sum = decode_float "sum" (require "sum" kvs);
                  count = decode_int "count" (require "count" kvs);
                }
          | other -> raise (Parse (Printf.sprintf "type: unknown metric kind %S" other))
        in
        { name; labels; help; value }
    | _ -> raise (Parse "expected an object")

  (* Decode errors carry the failing series' position (and name, once
     known), so a bad snapshot reports like the .scn parser's
     `error: file: field: msg` once the caller prefixes the path:
     `error: m.json: series[3] (sim_events): type: unknown metric
     kind "ratio"`. *)
  let decode_series_at i s =
    let where =
      match s with
      | Json.Obj kvs -> (
          match field "name" kvs with
          | Some (Json.Str n) -> Printf.sprintf "series[%d] (%s)" i n
          | _ -> Printf.sprintf "series[%d]" i)
      | _ -> Printf.sprintf "series[%d]" i
    in
    try decode_series s with Parse msg -> raise (Parse (where ^ ": " ^ msg))

  let of_json text =
    match Json.parse text with
    | exception Json.Parse msg -> Error msg
    | Json.Obj kvs -> (
        try
          (match field "fatnet_metrics_version" kvs with
          | Some v ->
              let v = decode_int "fatnet_metrics_version" v in
              if v <> schema_version then
                raise (Parse (Printf.sprintf "unsupported schema version %d" v))
          | None -> raise (Parse "missing field fatnet_metrics_version"));
          let meta =
            match field "meta" kvs with
            | Some m -> decode_kv_list "meta" m
            | None -> []
          in
          let series =
            match field "series" kvs with
            | Some (Json.Arr xs) -> List.mapi decode_series_at xs
            | Some _ -> raise (Parse "series: expected an array")
            | None -> []
          in
          Ok (sort { meta; series })
        with Parse msg -> Error msg)
    | _ -> Error "expected a top-level object"

  (* ---- Prometheus text exposition ---- *)

  let prom_escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* HELP text escapes only [\] and newline — the exposition format
     leaves double quotes alone outside label values. *)
  let prom_escape_help s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let prom_float f =
    if Float.is_nan f then "NaN"
    else if f = Float.infinity then "+Inf"
    else if f = Float.neg_infinity then "-Inf"
    else shortest_float f

  let prom_labels = function
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
        ^ "}"

  let to_prometheus t =
    let t = sort t in
    let b = Buffer.create 4096 in
    let headers = Hashtbl.create 16 in
    let header name kind help =
      if not (Hashtbl.mem headers name) then begin
        Hashtbl.add headers name ();
        if help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (prom_escape_help help));
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
      end
    in
    List.iter
      (fun s ->
        match s.value with
        | Counter n ->
            header s.name "counter" s.help;
            Buffer.add_string b (Printf.sprintf "%s%s %d\n" s.name (prom_labels s.labels) n)
        | Gauge g ->
            header s.name "gauge" s.help;
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" s.name (prom_labels s.labels) (prom_float g))
        | Histogram h ->
            header s.name "histogram" s.help;
            let bins = Array.length h.counts in
            let w = (h.hi -. h.lo) /. float_of_int bins in
            (* Cumulative buckets; underflow folds into the first. *)
            let cum = ref h.underflow in
            for i = 0 to bins - 1 do
              cum := !cum + h.counts.(i);
              let le = h.lo +. (float_of_int (i + 1) *. w) in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" s.name
                   (prom_labels (s.labels @ [ ("le", prom_float le) ]))
                   !cum)
            done;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" s.name
                 (prom_labels (s.labels @ [ ("le", "+Inf") ]))
                 h.count);
            Buffer.add_string b
              (Printf.sprintf "%s_sum%s %s\n" s.name (prom_labels s.labels) (prom_float h.sum));
            Buffer.add_string b
              (Printf.sprintf "%s_count%s %d\n" s.name (prom_labels s.labels) h.count))
      t.series;
    Buffer.contents b
end

let snapshot t =
  if not t.enabled then Snapshot.empty
  else begin
    Mutex.lock t.lock;
    let series =
      Hashtbl.fold
        (fun _ item acc ->
          let value =
            match item.inst with
            | C c -> Snapshot.Counter (Atomic.get c)
            | G g -> Snapshot.Gauge g.g
            | H h ->
                Snapshot.Histogram
                  {
                    Snapshot.lo = h.h_lo;
                    hi = h.h_hi;
                    counts = Array.copy h.h_counts;
                    underflow = h.h_under;
                    overflow = h.h_over;
                    sum = h.h_sum;
                    count = h.h_total;
                  }
          in
          { Snapshot.name = item.i_name; labels = item.i_labels; help = item.i_help; value }
          :: acc)
        t.items []
    in
    let meta = t.meta in
    Mutex.unlock t.lock;
    Snapshot.sort { Snapshot.meta; series }
  end

let absorb t (snap : Snapshot.t) =
  if t.enabled then begin
    List.iter
      (fun (s : Snapshot.series) ->
        match s.Snapshot.value with
        | Snapshot.Counter n -> add (counter ~help:s.Snapshot.help ~labels:s.Snapshot.labels t s.Snapshot.name) n
        | Snapshot.Gauge g -> set_max (gauge ~help:s.Snapshot.help ~labels:s.Snapshot.labels t s.Snapshot.name) g
        | Snapshot.Histogram h ->
            let dst =
              histogram ~help:s.Snapshot.help ~labels:s.Snapshot.labels ~lo:h.Snapshot.lo
                ~hi:h.Snapshot.hi
                ~bins:(Array.length h.Snapshot.counts)
                t s.Snapshot.name
            in
            Array.iteri (fun i c -> dst.h_counts.(i) <- dst.h_counts.(i) + c) h.Snapshot.counts;
            dst.h_under <- dst.h_under + h.Snapshot.underflow;
            dst.h_over <- dst.h_over + h.Snapshot.overflow;
            dst.h_total <- dst.h_total + h.Snapshot.count;
            dst.h_sum <- dst.h_sum +. h.Snapshot.sum)
      snap.Snapshot.series;
    List.iter (fun (k, v) -> set_meta t k v) snap.Snapshot.meta
  end
