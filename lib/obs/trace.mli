(** Hierarchical causal spans: the "why was this slow" companion to
    {!Metrics}' aggregates.

    A span is a named interval on a monotonic clock with an explicit
    parent id, the recording domain's track, and optional key/value
    attributes (solver iteration counts, cache outcomes, λ points).
    Spans from every domain collect into one trace, exportable as
    Chrome trace-event JSON ([chrome://tracing] / Perfetto, one track
    per domain) or rendered as a timeline table
    ({!Fatnet_report.Trace_report}).

    The discipline is the same as {!Metrics}:

    {ul
    {- {b disabled is free}: {!disabled} hands every caller the one
       statically allocated {!null_span}; [start]/[finish]/[attr] on
       it are a load and a branch — no clock reads, no allocation —
       so instrumented code runs unconditionally;}
    {- {b no plumbing}: a Domain-local ambient trace plus an ambient
       {e current span} give deep call sites (the solver inside the
       model) a parent to attach to without threading anything
       through signatures;}
    {- {b results-transparent}: tracing observes, never steers — a
       traced run is bit-identical to an untraced one (pinned by
       test, including cache entries).}}

    Span bodies run on one domain (start and finish on the same
    domain); {!finish} publishes the completed record under the
    trace's lock, so any number of domains can record concurrently. *)

type t
(** A trace: a sink for completed spans. *)

val create : unit -> t
(** A fresh, enabled trace.  Its epoch (timestamp zero) is the
    creation instant. *)

val disabled : t
(** The shared disabled trace: spans started against it are
    {!null_span}, nothing is recorded, exports are empty. *)

val is_enabled : t -> bool

val now_ns : unit -> int64
(** The monotonic clock behind spans (nanoseconds, arbitrary
    origin) — exposed for consumers that throttle or compute rates
    against span timestamps (the sweep progress line). *)

(** {1 Spans} *)

type span
(** A started, unfinished span. *)

val null_span : span
(** What {!start} returns on a disabled trace; every operation on it
    is a no-op. *)

val start : ?parent:int -> t -> string -> span
(** Start a span.  [parent] defaults to the ambient current span
    (0 = a root).  Cheap: an atomic id fetch and one clock read. *)

val id : span -> int
(** The span's id, for explicit cross-domain parenting ([0] for
    {!null_span}). *)

val attr : span -> string -> string -> unit
(** Attach a key/value attribute (kept in insertion order). *)

val attr_int : span -> string -> int -> unit
val attr_float : span -> string -> float -> unit

val finish : span -> unit
(** Record the span (duration = now − start) on the current domain's
    track and hand the completed record to subscribers. *)

val in_span : ?parent:int -> t -> string -> (span -> 'a) -> 'a
(** [in_span t name f]: start a span, make it the ambient current
    span for [f] (so nested spans parent to it), finish it when [f]
    returns or raises.  On a disabled trace, [f null_span]. *)

val instant : ?parent:int -> t -> string -> (string * string) list -> unit
(** A zero-length marker span with the given attributes (memo-served
    sweep points, one-off events). *)

(** {1 Ambient trace}

    Mirrors {!Metrics.ambient}: a domain-local current trace so the
    simulator and solver need no configuration plumbing.  Defaults to
    {!disabled} in every domain. *)

val ambient : unit -> t
val set_ambient : t -> unit

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run the thunk with the ambient trace swapped, restoring the
    previous one even on exceptions. *)

val current : unit -> int
(** The ambient current span id on this domain (0 when outside any
    {!in_span}). *)

(** {1 Completed spans and export} *)

type span_record = {
  id : int;
  parent : int;  (** 0 = root *)
  name : string;
  track : int;  (** recording domain's id *)
  start_ns : int64;  (** since the trace's epoch *)
  dur_ns : int64;
  attrs : (string * string) list;
}

val subscribe : t -> (span_record -> unit) -> unit
(** Call [f] on every subsequently finished span (synchronously, on
    the finishing domain — [f] must be domain-safe and quick).  The
    sweep progress line is such a subscriber. *)

val spans : t -> span_record list
(** Every finished span so far, sorted by (start, id). *)

val to_chrome_json : t -> string
(** The trace as a Chrome trace-event JSON document: one complete
    ([ph:"X"]) event per span with microsecond [ts]/[dur], [tid] =
    track, span id/parent and attributes under [args], plus
    [thread_name] metadata naming each domain's track.  Loadable in
    [chrome://tracing] and Perfetto. *)

val spans_of_chrome_json : string -> (span_record list, string) result
(** Re-parse a {!to_chrome_json} document (timestamps round-trip
    exactly; metadata events are skipped).  This is what
    [experiments timeline] and the golden tests read. *)
