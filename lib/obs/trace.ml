(* Recording is hot-path-light: [start] is an atomic fetch-and-add
   plus one monotonic clock read, [finish] one clock read plus a
   mutex-guarded cons onto the trace's record list.  Spans are coarse
   (points, attempts, solver searches — never per event or per flit),
   so the lock is uncontended in practice.  The disabled trace hands
   out the one static [null_span]; every operation on it reduces to a
   load and a branch. *)

type span_record = {
  id : int;
  parent : int;
  name : string;
  track : int;
  start_ns : int64;
  dur_ns : int64;
  attrs : (string * string) list;
}

type t = {
  enabled : bool;
  epoch : int64;
  next_id : int Atomic.t;
  lock : Mutex.t;
  mutable recorded : span_record list;
  (* Growable array, not a list: registration is O(1) amortised (a
     daemon registers one observer per accepted connection, and
     [l @ [f]] would make that quadratic), and dispatch walks indices
     [0 .. observer_count-1] in registration order. *)
  mutable observers : (span_record -> unit) array;
  mutable observer_count : int;
}

type span = {
  tr : t;
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_t0 : int64;
  mutable sp_attrs : (string * string) list; (* reversed; finish restores order *)
}

let now_ns () = Monotonic_clock.now ()

let disabled =
  {
    enabled = false;
    epoch = 0L;
    next_id = Atomic.make 1;
    lock = Mutex.create ();
    recorded = [];
    observers = [||];
    observer_count = 0;
  }

let create () =
  {
    enabled = true;
    epoch = now_ns ();
    next_id = Atomic.make 1;
    lock = Mutex.create ();
    recorded = [];
    observers = [||];
    observer_count = 0;
  }

let is_enabled t = t.enabled

let null_span =
  { tr = disabled; sp_id = 0; sp_parent = 0; sp_name = ""; sp_t0 = 0L; sp_attrs = [] }

(* ---- ambient trace and current span ---- *)

let ambient_key = Domain.DLS.new_key (fun () -> disabled)
let ambient () = Domain.DLS.get ambient_key
let set_ambient t = Domain.DLS.set ambient_key t

let with_ambient t f =
  let prev = ambient () in
  set_ambient t;
  Fun.protect ~finally:(fun () -> set_ambient prev) f

let current_key = Domain.DLS.new_key (fun () -> 0)
let current () = Domain.DLS.get current_key

(* ---- recording ---- *)

let start ?parent t name =
  if not t.enabled then null_span
  else
    let parent = match parent with Some p -> p | None -> Domain.DLS.get current_key in
    {
      tr = t;
      sp_id = Atomic.fetch_and_add t.next_id 1;
      sp_parent = parent;
      sp_name = name;
      sp_t0 = now_ns ();
      sp_attrs = [];
    }

let id s = s.sp_id

let attr s k v = if s.tr.enabled then s.sp_attrs <- (k, v) :: s.sp_attrs
let attr_int s k v = if s.tr.enabled then s.sp_attrs <- (k, string_of_int v) :: s.sp_attrs

let attr_float s k v =
  if s.tr.enabled then
    s.sp_attrs <- (k, (if Float.is_finite v then Json.shortest_float v else Printf.sprintf "%h" v)) :: s.sp_attrs

let finish s =
  if s.tr.enabled then begin
    let t1 = now_ns () in
    let r =
      {
        id = s.sp_id;
        parent = s.sp_parent;
        name = s.sp_name;
        track = (Domain.self () :> int);
        start_ns = Int64.sub s.sp_t0 s.tr.epoch;
        dur_ns = Int64.sub t1 s.sp_t0;
        attrs = List.rev s.sp_attrs;
      }
    in
    Mutex.lock s.tr.lock;
    s.tr.recorded <- r :: s.tr.recorded;
    (* Snapshot under the lock, call outside it.  Growth replaces the
       array, so a snapshot taken here stays valid (its first
       [n_obs] slots never change) even if [subscribe] races. *)
    let obs = s.tr.observers and n_obs = s.tr.observer_count in
    Mutex.unlock s.tr.lock;
    for i = 0 to n_obs - 1 do
      obs.(i) r
    done
  end

let in_span ?parent t name f =
  if not t.enabled then f null_span
  else begin
    let s = start ?parent t name in
    let prev = Domain.DLS.get current_key in
    Domain.DLS.set current_key s.sp_id;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set current_key prev;
        finish s)
      (fun () -> f s)
  end

let instant ?parent t name attrs =
  if t.enabled then begin
    let s = start ?parent t name in
    s.sp_attrs <- List.rev attrs;
    finish s
  end

let subscribe t f =
  if t.enabled then begin
    Mutex.lock t.lock;
    let n = t.observer_count in
    if n = Array.length t.observers then begin
      let grown = Array.make (max 4 (2 * n)) f in
      Array.blit t.observers 0 grown 0 n;
      t.observers <- grown
    end;
    t.observers.(n) <- f;
    t.observer_count <- n + 1;
    Mutex.unlock t.lock
  end

let compare_record a b =
  match Int64.compare a.start_ns b.start_ns with 0 -> compare a.id b.id | c -> c

let spans t =
  Mutex.lock t.lock;
  let l = t.recorded in
  Mutex.unlock t.lock;
  List.sort compare_record l

(* ---- Chrome trace-event export ----

   One complete ("X") event per span: ts/dur in microseconds with
   three decimals, so the nanosecond timestamps survive the format's
   float convention exactly and [spans_of_chrome_json] round-trips
   bit-for-bit.  tid is the span's domain track; thread_name metadata
   events label the tracks so Perfetto shows "domain N" lanes. *)

let buf_add_us b ns =
  Buffer.add_string b (Printf.sprintf "%Ld.%03Ld" (Int64.div ns 1000L) (Int64.rem ns 1000L))

let to_chrome_json t =
  let sorted = spans t in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  let first = ref true in
  let event add_fields =
    Buffer.add_string b (if !first then "\n" else ",\n");
    first := false;
    Buffer.add_string b "    { ";
    add_fields ();
    Buffer.add_string b " }"
  in
  let tracks =
    List.sort_uniq compare (List.map (fun r -> r.track) sorted)
  in
  List.iter
    (fun track ->
      event (fun () ->
          Buffer.add_string b
            (Printf.sprintf
               "\"ph\": \"M\", \"pid\": 0, \"tid\": %d, \"name\": \"thread_name\", \
                \"args\": { \"name\": \"domain %d\" }"
               track track)))
    tracks;
  List.iter
    (fun r ->
      event (fun () ->
          Buffer.add_string b "\"ph\": \"X\", \"pid\": 0, \"tid\": ";
          Buffer.add_string b (string_of_int r.track);
          Buffer.add_string b ", \"name\": ";
          Json.buf_add_string b r.name;
          Buffer.add_string b ", \"cat\": \"fatnet\", \"ts\": ";
          buf_add_us b r.start_ns;
          Buffer.add_string b ", \"dur\": ";
          buf_add_us b r.dur_ns;
          Buffer.add_string b
            (Printf.sprintf ", \"args\": { \"span_id\": \"%d\", \"parent\": \"%d\"" r.id
               r.parent);
          List.iter
            (fun (k, v) ->
              Buffer.add_string b ", ";
              Json.buf_add_string b k;
              Buffer.add_string b ": ";
              Json.buf_add_string b v)
            r.attrs;
          Buffer.add_string b " }"))
    sorted;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Microsecond floats back to nanoseconds: the written value is
   k/1000 for an integer k well below 2^52, so the nearest double is
   within 2^-20 of it and rounding recovers k exactly. *)
let ns_of_us us = Int64.of_float (Float.round (us *. 1000.))

let spans_of_chrome_json text =
  let ( let* ) = Result.bind in
  let* doc = Json.parse_result text in
  let* events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr evs) -> Ok evs
    | Some _ -> Error "traceEvents: expected an array"
    | None -> Error "missing field traceEvents"
  in
  let str_field name ev =
    match Json.member name ev with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (name ^ ": expected a string")
  in
  let num_field name ev =
    match Json.member name ev with
    | Some (Json.Num f) -> Ok f
    | _ -> Error (name ^ ": expected a number")
  in
  let int_of_id name = function
    | Json.Str s -> (
        match int_of_string_opt s with
        | Some i -> Ok i
        | None -> Error (name ^ ": expected an integer id"))
    | _ -> Error (name ^ ": expected an integer id")
  in
  let decode_event i acc ev =
    let qualify = Result.map_error (Printf.sprintf "traceEvents[%d]: %s" i) in
    match Json.member "ph" ev with
    | Some (Json.Str "X") ->
        qualify
          (let* name = str_field "name" ev in
           let* track = num_field "tid" ev in
           let* ts = num_field "ts" ev in
           let* dur = num_field "dur" ev in
           let* args =
             match Json.member "args" ev with
             | Some (Json.Obj kvs) -> Ok kvs
             | _ -> Error "args: expected an object"
           in
           let* id =
             match List.assoc_opt "span_id" args with
             | Some v -> int_of_id "args.span_id" v
             | None -> Error "args: missing span_id"
           in
           let* parent =
             match List.assoc_opt "parent" args with
             | Some v -> int_of_id "args.parent" v
             | None -> Error "args: missing parent"
           in
           let attrs =
             List.filter_map
               (fun (k, v) ->
                 match (k, v) with
                 | ("span_id" | "parent"), _ -> None
                 | k, Json.Str s -> Some (k, s)
                 | _ -> None)
               args
           in
           Ok
             ({
                id;
                parent;
                name;
                track = int_of_float track;
                start_ns = ns_of_us ts;
                dur_ns = ns_of_us dur;
                attrs;
              }
             :: acc))
    | Some _ -> Ok acc (* metadata and other phases: skip *)
    | None -> Error (Printf.sprintf "traceEvents[%d]: missing field ph" i)
  in
  let rec fold i acc = function
    | [] -> Ok (List.sort compare_record acc)
    | ev :: rest ->
        let* acc = decode_event i acc ev in
        fold (i + 1) acc rest
  in
  fold 0 [] events
