type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\x00' in
  let advance () = pos := !pos + 1 in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char b '"'; advance ()
            | '\\' -> Buffer.add_char b '\\'; advance ()
            | '/' -> Buffer.add_char b '/'; advance ()
            | 'n' -> Buffer.add_char b '\n'; advance ()
            | 'r' -> Buffer.add_char b '\r'; advance ()
            | 't' -> Buffer.add_char b '\t'; advance ()
            | 'b' -> Buffer.add_char b '\b'; advance ()
            | 'f' -> Buffer.add_char b '\012'; advance ()
            | 'u' ->
                advance ();
                if !pos + 4 > n then fail "truncated \\u escape";
                let code = int_of_string ("0x" ^ String.sub s !pos 4) in
                pos := !pos + 4;
                if code < 256 then Buffer.add_char b (Char.chr code)
                else Buffer.add_char b '?'
            | _ -> fail "bad escape");
            go ()
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); Arr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | '"' -> Str (parse_string ())
    | 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then (pos := !pos + 4; Bool true)
        else fail "bad literal"
    | 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then (pos := !pos + 5; Bool false)
        else fail "bad literal"
    | 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then (pos := !pos + 4; Null)
        else fail "bad literal"
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_result s = match parse s with v -> Ok v | exception Parse msg -> Error msg

let member name = function Obj kvs -> List.assoc_opt name kvs | _ -> None

let buf_add_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let shortest_float f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s
  else
    let s = Printf.sprintf "%.16g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
