let recommended_domains () = max 1 (Domain.recommended_domain_count ())

exception Failures of (int * exn) list

let () =
  Printexc.register_printer (function
    | Failures fs ->
        Some
          (Printf.sprintf "Fatnet_experiments.Parallel.Failures [%s]"
             (String.concat "; "
                (List.map
                   (fun (i, exn) -> Printf.sprintf "%d: %s" i (Printexc.to_string exn))
                   fs)))
    | _ -> None)

type 'b slot = Pending | Done of 'b | Failed of exn

let map_slots ?domains f xs =
  let n = List.length xs in
  let domains =
    match domains with
    | Some d -> max 1 (min d n)
    | None -> max 1 (min (recommended_domains ()) n)
  in
  if domains <= 1 || n <= 1 then
    List.map (fun x -> try Done (f x) with exn -> Failed exn) xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <- (try Done (f input.(i)) with exn -> Failed exn)
      done
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
  end

let try_map ?domains f xs =
  map_slots ?domains f xs
  |> List.map (function
       | Done v -> Ok v
       | Failed exn -> Error exn
       | Pending -> assert false)

let map ?domains f xs =
  let slots = map_slots ?domains f xs in
  let failures =
    List.mapi (fun i s -> (i, s)) slots
    |> List.filter_map (function i, Failed exn -> Some (i, exn) | _ -> None)
  in
  match failures with
  | [] -> List.map (function Done v -> v | _ -> assert false) slots
  | fs -> raise (Failures fs)
