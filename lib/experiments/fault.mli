(** Deterministic fault injection for the sweep engine.

    A fault plan is a seeded (SplitMix64) schedule of failures at
    named sites — the points where a real sweep can die in the wild: a
    cache lookup on an unreadable directory, a store into a read-only
    one, a point's execution being killed mid-run, a temp file swept
    out from under its rename.  Tests and CI use a plan to drive the
    engine through reproducible fault schedules and pin the resilience
    guarantees (retry, quarantine, cache degradation).

    Determinism is the whole design: whether a fault fires at a site
    is a pure function of [(plan seed, site, key, attempt)] — never of
    wall clock, scheduling order, or domain count — so the same plan
    injects the same schedule no matter how the sweep's work-stealing
    scheduler interleaves points.  The [key] is the point's
    {!Fatnet_scenario.Scenario.hash} at the execution site and the
    cache key at the cache sites; the [attempt] index gives every
    retry a fresh deterministic sub-seed, so a plan can fail a point's
    first attempt and let its retry through.

    The simulation itself is never perturbed: an injected fault raises
    {!Injected} {e before} the guarded operation runs, so any point
    that eventually executes runs its scenario's own seed — which is
    what makes a faulted sweep's surviving results bit-identical to a
    fault-free run. *)

type site =
  | Cache_find   (** {!Point_cache.find} entry *)
  | Cache_store  (** {!Point_cache.store} entry *)
  | Point_exec   (** a sweep point's execution *)
  | Tmp_rename   (** between a store's temp-file write and its rename *)

val site_name : site -> string
(** [cache_find], [cache_store], [point_exec], [tmp_rename] — the
    spec-string names. *)

type t
(** A fault plan.  {!none} injects nothing (and costs nothing on the
    hot path: one physical-equality test). *)

val none : t

val is_none : t -> bool

val make : ?seed:int64 -> (site * float) list -> t
(** [make ~seed rates] builds a plan that fires at each listed site
    with the given probability (clamped to [[0, 1]]; unlisted sites
    never fire).  Decisions are deterministic in
    [(seed, site, key, attempt)]. *)

exception Injected of site * string
(** [Injected (site, key)] — the exception an injected fault raises.
    Registered with a human-readable printer. *)

val fires : t -> site -> key:string -> attempt:int -> bool
(** Whether the plan fires at [site] for [key] on the given attempt.
    Pure and deterministic; tests use it to predict exactly which
    points a schedule poisons. *)

val trip : t -> site -> key:string -> ?attempt:int -> unit -> unit
(** Raise {!Injected} iff {!fires} (default [attempt = 0]). *)

(** {1 Spec strings}

    The [--inject-faults SPEC] format: comma-separated [name=value]
    pairs, where [name] is [seed] (decimal [int64]) or a site name and
    [value] a firing probability in [[0, 1]].  Example:
    [seed=42,point_exec=0.5,cache_store=1]. *)

val of_spec : string -> (t, string) result

val to_spec : t -> string
(** Canonical spec rendering; [of_spec (to_spec t)] is equivalent to
    [t].  [to_spec none = ""]. *)
