(** Sweep orchestration engine.

    The unit of work users wait on is a figure sweep: dozens of
    fixed-load scenarios whose simulation costs vary by
    an order of magnitude between light load and saturation.  This
    engine replaces the naive atomic-counter fan-out with:

    {ul
    {- {b cost-model scheduling}: each point's expected cost is
       estimated from the analytical model's utilization (quota ×
       1/(1−ρ) of the most-loaded resource), points are distributed
       longest-expected-first (LPT) over per-domain deques, and idle
       domains steal from the back of a victim's deque — so the
       near-saturation points that dominate the critical path
       dispatch first and domains stay busy;}
    {- {b a persistent point cache} ({!Point_cache}): results are
       keyed by a canonical, bit-exact hash of the full run
       configuration, so regenerating a figure recomputes only points
       whose configuration actually changed;}
    {- {b CI-adaptive replications}
       ({!Fatnet_sim.Runner.run_replicated}): independently seeded
       replications per point until the replication-level CI is
       relatively tighter than a target, with a futility stop for
       points whose CI cannot converge within the budget.}}

    Results are positionally identical to a sequential sweep: every
    point's outcome is a pure function of its own configuration, so
    the output is bit-identical across domain counts and across cache
    hits vs. recomputation (pinned by the integration tests).

    {b Failure semantics.}  A sweep survives faults instead of dying
    with them.  A point whose execution raises is retried up to
    [retries] extra times; one that exhausts the budget is
    {e quarantined} — reported in {!outcome.quarantined} with its
    input index, offered load, attempt count, and final exception —
    while every other point's result is kept.  Any cache I/O failure
    (find, store, or the atomic rename) disables the cache for the
    rest of the sweep after one [warning:] line on stderr; the sweep
    then recomputes instead of failing.  Survivors are bit-identical
    to a fault-free run: a retry re-runs the scenario with its own
    seed, so faults cost work, never results (pinned by the
    fault-injection suite).  [fail_fast] restores the old
    all-or-nothing behavior: the first exhausted point stops workers
    from starting new points and the sweep raises
    {!Parallel.Failures}. *)

type cache_policy =
  | No_cache
  | Cache_dir of string  (** directory holding [*.point] entries *)

type config = {
  domains : int option;
      (** worker domains; [None] = the runtime's recommendation *)
  cache : cache_policy;
  trace : (Fatnet_sim.Runner.trace_record -> unit) option;
      (** per-delivery sink attached to every run; when set the cache
          is bypassed entirely (it cannot replay side effects) *)
  tracer : Fatnet_obs.Trace.t;
      (** causal span trace ({!Fatnet_obs.Trace.disabled} by default).
          When enabled the sweep records a span hierarchy — a [sweep]
          root, one [point] span per executed point (with its index,
          offered load, outcome, and attempt count), [attempt] spans
          under it, [cache.find]/[cache.store] spans, and instant
          [point] markers for memo- and cache-served points — and each
          worker installs the tracer as its domain's ambient so the
          simulator's and solver's spans nest underneath.  Unlike
          [trace], the span tracer observes only: caches stay active
          and a traced sweep is bit-identical to an untraced one,
          cache entries included (pinned by test). *)
  metrics : Fatnet_obs.Metrics.t;
      (** telemetry registry ({!Fatnet_obs.Metrics.disabled} by
          default).  When enabled the sweep records scheduler and
          cache statistics (points, steals, hit/miss/store timings,
          per-domain occupancy) and hands each worker domain its own
          registry — also installed as that domain's ambient, so
          simulator and solver metrics flow too — absorbing them all
          into this registry after the join.  Unlike [trace], metrics
          keep the cache active: cached points contribute cache
          metrics only, executed points contribute simulator
          metrics. *)
  retries : int;
      (** extra attempts per failing point before quarantine
          (default 2; 0 = no retries) *)
  fail_fast : bool;
      (** abort the sweep on the first exhausted point and raise
          {!Parallel.Failures} instead of quarantining (default
          [false]) *)
  faults : Fault.t;
      (** deterministic fault-injection plan ({!Fault.none} by
          default) — test plumbing; see {!Fault} *)
  memo : Point_cache.entry Fatnet_numerics.Memo.t option;
      (** sharded in-memory memo sitting {e above} the disk cache,
          keyed by the same canonical point hash ([None] by default).
          A memo hit costs a hashtable probe instead of a file read;
          computed and disk-loaded entries are stored back, so a memo
          shared across sweeps (one per CLI invocation, typically)
          makes repeated figure/ablation points O(lookup).  Explicit
          rather than process-global so fault-injection and trace
          semantics stay intact: trace runs bypass it like they bypass
          the disk cache, and a default-config sweep is memo-free. *)
  cache_recovery : int option;
      (** re-probe the cache after this many skipped operations once
          degraded ([None] by default: one cache I/O error disables
          the cache for the rest of the run — right for a batch
          sweep, wrong for a daemon; see {!Cache_gate}). *)
}

val default_config : config
(** Recommended domains, caching under {!Point_cache.default_dir},
    no trace, no tracer, 2 retries, no fail-fast, no faults, no
    memo, no cache recovery. *)

type point_result = {
  summary : Fatnet_stats.Summary.t;
  ci_half_width : float;
      (** replication-level CI when replicating, else the single
          run's batch-means CI *)
  replications : int;
  events : int;
  from_cache : bool;
}

type stats = {
  points : int;
  executed : int;      (** points actually simulated (misses) *)
  memo_hits : int;     (** points served by the in-memory memo *)
  cache_hits : int;    (** points served by the on-disk cache *)
  domains_used : int;
  steals : int;        (** points run by a non-owning domain *)
  occupancy : float array;
      (** per-domain fraction of the sweep wall time spent executing
          points *)
  wall_seconds : float;
  retries : int;       (** failed attempts that were retried *)
  quarantined : int;   (** points that exhausted their retry budget *)
  cache_degraded : bool;
      (** the cache was on and a cache I/O failure turned it off *)
}

type failure = {
  index : int;          (** the point's position in the input list *)
  lambda_g : float option;
      (** the point's offered load, when it is a fixed-load point *)
  attempts : int;       (** attempts made, including the first *)
  error : exn;          (** the last attempt's exception *)
}

exception Point_failure of failure
(** Wraps a quarantined point's failure when strict callers
    ({!results_exn}, [fail_fast]) re-raise it inside
    {!Parallel.Failures}.  Registered printer renders
    ["point 3 (lambda_g=0.7) failed after 3 attempts: ..."]. *)

type outcome = {
  results : point_result option array;
      (** positionally aligned with the input; [None] exactly for
          quarantined points (and, under [fail_fast], points never
          started) *)
  quarantined : failure list;  (** sorted by input index *)
  stats : stats;
}

val estimated_cost : Fatnet_scenario.Scenario.t -> float
(** The scheduler's relative cost estimate (arbitrary units): the
    scenario's message quota × replication cap × the congestion
    factor 1/(1−ρ) of the analytically most-loaded resource, with
    saturated points costed highest. *)

val run : ?config:config -> Fatnet_scenario.Scenario.t list -> outcome
(** Run every point — a fixed-load scenario; each carries its own
    protocol and replication rule.  [results.(i)] corresponds to the
    [i]-th input point regardless of scheduling.  A failing point is
    retried, then quarantined (see the failure semantics above);
    [run] itself raises only under [fail_fast]
    ({!Parallel.Failures}, each entry a {!Point_failure}). *)

val results_exn : outcome -> point_result array
(** The dense result array for strict callers.  Raises
    {!Parallel.Failures} (entries wrapped in {!Point_failure},
    sorted by input index) if anything was quarantined. *)

val run_sweep : ?config:config -> Fatnet_scenario.Scenario.t -> outcome
(** Expand one scenario's load axis
    ({!Fatnet_scenario.Scenario.points}) and run every operating
    point. *)

val mean_latencies :
  ?config:config -> Fatnet_scenario.Scenario.t list -> float list
(** Just each point's mean latency, in input order. *)
