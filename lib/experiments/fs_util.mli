(** Small filesystem helpers shared by the cache, the CLI and the
    binaries — the single race-safe [mkdir -p] in the tree. *)

val mkdir_p : string -> unit
(** Create [dir] and any missing parents.  Tolerates the
    concurrent-creation race: a [Sys_error] from [mkdir] is ignored
    when the directory exists afterwards (two runs writing into the
    same fresh directory must both succeed), and re-raised otherwise
    (e.g. a file in the way, or a read-only parent). *)
