module Splitmix64 = Fatnet_prng.Splitmix64

type site = Cache_find | Cache_store | Point_exec | Tmp_rename

let site_name = function
  | Cache_find -> "cache_find"
  | Cache_store -> "cache_store"
  | Point_exec -> "point_exec"
  | Tmp_rename -> "tmp_rename"

let all_sites = [ Cache_find; Cache_store; Point_exec; Tmp_rename ]

type t = Off | Plan of { seed : int64; rates : (site * float) list }

let none = Off

let is_none t = t = Off

let clamp01 p = if p < 0. then 0. else if p > 1. then 1. else p

let make ?(seed = 0L) rates =
  let rates =
    List.filter_map
      (fun (s, p) ->
        let p = clamp01 p in
        if p > 0. then Some (s, p) else None)
      rates
  in
  if rates = [] then Off else Plan { seed; rates }

exception Injected of site * string

let () =
  Printexc.register_printer (function
    | Injected (site, key) ->
        let key = if String.length key > 24 then String.sub key 0 24 ^ "…" else key in
        Some (Printf.sprintf "injected fault at %s (key %s)" (site_name site) key)
    | _ -> None)

(* The decision stream: a SplitMix64 seeded by mixing the plan seed
   with the key's digest and a (site, attempt) tag.  One generator
   output is a full avalanche of the seed, so distinct inputs give
   decorrelated decisions; nothing here depends on call order, which
   is what keeps schedules reproducible under work stealing. *)
let key_bits key = Bytes.get_int64_le (Bytes.of_string (Digest.string key)) 0

let site_index = function
  | Cache_find -> 1
  | Cache_store -> 2
  | Point_exec -> 3
  | Tmp_rename -> 4

let fires t site ~key ~attempt =
  match t with
  | Off -> false
  | Plan { seed; rates } -> (
      match List.assoc_opt site rates with
      | None -> false
      | Some p ->
          let tag = (site_index site * 0x1000003) + (attempt * 0x9e3779) in
          let s = Int64.logxor (Int64.logxor seed (key_bits key)) (Int64.of_int tag) in
          Splitmix64.next_float (Splitmix64.create s) < p)

let trip t site ~key ?(attempt = 0) () =
  if fires t site ~key ~attempt then raise (Injected (site, key))

(* ---- spec strings ---- *)

let site_of_name n = List.find_opt (fun s -> site_name s = n) all_sites

let of_spec spec =
  let ( let* ) = Result.bind in
  let fields =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  let parse_field (seed, rates) field =
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "%S: expected name=value" field)
    | Some i -> (
        let name = String.trim (String.sub field 0 i) in
        let value = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
        match name with
        | "seed" -> (
            match Int64.of_string_opt value with
            | Some s -> Ok (s, rates)
            | None -> Error (Printf.sprintf "seed %S: expected an integer" value))
        | _ -> (
            match site_of_name name with
            | None ->
                Error
                  (Printf.sprintf "unknown site %S (use %s or seed)" name
                     (String.concat ", " (List.map site_name all_sites)))
            | Some site -> (
                match float_of_string_opt value with
                | Some p when p >= 0. && p <= 1. -> Ok (seed, (site, p) :: rates)
                | Some _ | None ->
                    Error (Printf.sprintf "%s=%s: expected a probability in [0, 1]" name value))))
  in
  let* seed, rates =
    List.fold_left
      (fun acc field ->
        let* acc = acc in
        parse_field acc field)
      (Ok (0L, []))
      fields
  in
  Ok (make ~seed (List.rev rates))

let to_spec = function
  | Off -> ""
  | Plan { seed; rates } ->
      String.concat ","
        (Printf.sprintf "seed=%Ld" seed
        :: List.map (fun (s, p) -> Printf.sprintf "%s=%g" (site_name s) p) rates)
