module Eval = Fatnet_model.Eval
module Presets = Fatnet_model.Presets
module Variants = Fatnet_model.Variants
module Scenario = Fatnet_scenario.Scenario
module Table = Fatnet_report.Table

type t = {
  id : string;
  description : string;
  run : steps:int -> protocol:Scenario.protocol -> Fatnet_report.Table.t;
}

let message = Presets.message ~m_flits:32 ~d_m_bytes:256.

let organizations = [ ("N=1120", Presets.org_1120); ("N=544", Presets.org_544) ]

(* Compare model variants on saturation rate and latency at fixed
   fractions of the *default* variant's saturation point.  Each
   (organization, setting) gets one [Eval] workspace; the per-setting
   saturation searches within an organization warm-start from each
   other's brackets (the variants shift the root only slightly), while
   the baseline saturation comes from the stateless — cold, hence
   bit-identical to [Latency.saturation_rate] — search. *)
let variant_table settings ~steps =
  ignore steps;
  let table =
    Table.create ~columns:[ "organization"; "setting"; "saturation λ_g"; "λ@25%"; "λ@50%"; "λ@75%" ]
  in
  List.iter
    (fun (org_name, system) ->
      let base_ws = Eval.workspace ~system ~message () in
      let base_sat = Eval.saturation_rate base_ws in
      let state = Fatnet_numerics.Solver.bracket_state () in
      List.iter
        (fun (setting_name, variants) ->
          let ws = Eval.workspace ~variants ~system ~message () in
          let sat = Eval.saturation_rate ~state ws in
          let at frac = Eval.mean_into ws ~lambda_g:(frac *. base_sat) in
          Table.add_row table
            ([ org_name; setting_name ]
            @ List.map
                (fun x ->
                  if Float.is_finite x then Printf.sprintf "%.6g" x else "sat.")
                [ sat; at 0.25; at 0.5; at 0.75 ]))
        settings)
    organizations;
  table

let lambda_i2 =
  {
    id = "lambda-i2";
    description = "Eq. (23) reading: pair-average vs size-scaled λ_I2";
    run =
      (fun ~steps ~protocol ->
        ignore protocol;
        variant_table ~steps
          [
            ("pair-average", Variants.default);
            ("size-scaled", { Variants.default with lambda_i2 = Variants.Size_scaled });
          ]);
  }

let relaxing_factor =
  {
    id = "relaxing-factor";
    description = "Eq. (28) relaxing factor δ applied vs ignored";
    run =
      (fun ~steps ~protocol ->
        ignore protocol;
        variant_table ~steps
          [
            ("δ applied", Variants.default);
            ("δ ignored", { Variants.default with use_relaxing_factor = false });
          ]);
  }

let source_variance =
  {
    id = "source-variance";
    description = "Eq. (17) Draper–Ghosh source-queue variance vs M/D/1";
    run =
      (fun ~steps ~protocol ->
        ignore protocol;
        variant_table ~steps
          [
            ("draper-ghosh", Variants.default);
            ("zero (M/D/1)", { Variants.default with source_variance = Variants.Zero });
          ]);
  }

let source_rate =
  {
    id = "source-rate";
    description = "Eqs. (18)/(31) per-node vs literal network-total source-queue rate";
    run =
      (fun ~steps ~protocol ->
        ignore protocol;
        variant_table ~steps
          [
            ("per-node", Variants.default);
            ("network-total", { Variants.default with source_rate = Variants.Network_total });
          ]);
  }

(* Simulator ablation: cut-through vs store-and-forward C/Ds against
   the model on a small heterogeneous system that keeps the run
   cheap. *)
let cd_system =
  Fatnet_model.Params.make_system ~m:4 ~icn2:Presets.net1
    (List.concat
       [
         List.init 2 (fun _ ->
             { Fatnet_model.Params.tree_depth = 1; icn1 = Presets.net1; ecn1 = Presets.net2 });
         List.init 2 (fun _ ->
             { Fatnet_model.Params.tree_depth = 2; icn1 = Presets.net1; ecn1 = Presets.net2 });
       ])

(* Simulation columns go through the sweep engine (uncached — the
   ablation grids are derived from saturation searches and rarely
   recur), which balances the near-saturation rows across domains. *)
let engine_means ~protocol lambdas =
  Sweep_engine.mean_latencies
    ~config:{ Sweep_engine.default_config with cache = Sweep_engine.No_cache }
    (List.map
       (fun lambda_g ->
         Scenario.make ~name:"ablation" ~system:cd_system ~message ~protocol
           ~load:(Scenario.Fixed lambda_g) ())
       lambdas)

let cd_mode =
  {
    id = "cd-mode";
    description = "simulator C/D hand-off: cut-through vs store-and-forward vs model";
    run =
      (fun ~steps ~protocol ->
        let table =
          Table.create ~columns:[ "λ_g"; "model"; "sim cut-through"; "sim store-and-forward" ]
        in
        let ws = Eval.workspace ~system:cd_system ~message () in
        let sat = Eval.saturation_rate ws in
        let lambdas =
          List.init steps (fun i ->
              0.8 *. sat *. float_of_int (i + 1) /. float_of_int steps)
        in
        let sim mode = engine_means ~protocol:{ protocol with Scenario.cd_mode = mode } lambdas in
        let ct = sim Scenario.Cut_through in
        let sf = sim Scenario.Store_and_forward in
        List.iteri
          (fun i lambda_g ->
            let model = Eval.mean_into ws ~lambda_g in
            Table.add_float_row table
              [ lambda_g; model; List.nth ct i; List.nth sf i ])
          lambdas;
        table);
  }

let sim_engine =
  {
    id = "sim-engine";
    description = "flit-level engine vs message-level approximation vs model";
    run =
      (fun ~steps ~protocol ->
        let table =
          Table.create ~columns:[ "λ_g"; "model"; "flit-level sim"; "approx sim" ]
        in
        let ws = Eval.workspace ~system:cd_system ~message () in
        let sat = Eval.saturation_rate ws in
        let lambdas =
          List.init steps (fun i -> 0.7 *. sat *. float_of_int (i + 1) /. float_of_int steps)
        in
        let flits = engine_means ~protocol lambdas in
        let config =
          {
            Fatnet_sim.Runner.warmup = protocol.Scenario.warmup;
            measured = protocol.Scenario.measured;
            drain = protocol.Scenario.drain;
            seed = protocol.Scenario.seed;
            destination = Fatnet_workload.Destination.Uniform;
            cd_mode = protocol.Scenario.cd_mode;
            trace = None;
            streaming = protocol.Scenario.streaming;
            metrics = Fatnet_obs.Metrics.disabled;
          }
        in
        List.iteri
          (fun i lambda_g ->
            let model = Eval.mean_into ws ~lambda_g in
            let approx =
              (Fatnet_sim.Worm_approx.simulate ~config ~system:cd_system ~message ~lambda_g
                 ())
                .Fatnet_sim.Worm_approx.mean_latency
            in
            Table.add_float_row table [ lambda_g; model; List.nth flits i; approx ])
          lambdas;
        table);
  }

let all = [ lambda_i2; relaxing_factor; source_variance; source_rate; cd_mode; sim_engine ]

let find id = List.find_opt (fun a -> a.id = id) all
