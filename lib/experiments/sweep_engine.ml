module Runner = Fatnet_sim.Runner
module Scenario = Fatnet_scenario.Scenario
module Clock = Fatnet_sim.Clock
module Summary = Fatnet_stats.Summary
module Utilization = Fatnet_model.Utilization
module Metrics = Fatnet_obs.Metrics
module Trace = Fatnet_obs.Trace
module Log = Fatnet_obs.Log

type cache_policy = No_cache | Cache_dir of string

type config = {
  domains : int option;
  cache : cache_policy;
  trace : (Runner.trace_record -> unit) option;
  tracer : Trace.t;
  metrics : Metrics.t;
  retries : int;
  fail_fast : bool;
  faults : Fault.t;
  memo : Point_cache.entry Fatnet_numerics.Memo.t option;
  cache_recovery : int option;
}

let default_config =
  {
    domains = None;
    cache = Cache_dir Point_cache.default_dir;
    trace = None;
    tracer = Trace.disabled;
    metrics = Metrics.disabled;
    retries = 2;
    fail_fast = false;
    faults = Fault.none;
    memo = None;
    cache_recovery = None;
  }

type point_result = {
  summary : Summary.t;
  ci_half_width : float;
  replications : int;
  events : int;
  from_cache : bool;
}

type stats = {
  points : int;
  executed : int;
  memo_hits : int;
  cache_hits : int;
  domains_used : int;
  steals : int;
  occupancy : float array;
  wall_seconds : float;
  retries : int;
  quarantined : int;
  cache_degraded : bool;
}

type failure = {
  index : int;
  lambda_g : float option;
  attempts : int;
  error : exn;
}

exception Point_failure of failure

let () =
  Printexc.register_printer (function
    | Point_failure { index; lambda_g; attempts; error } ->
        Some
          (Printf.sprintf "point %d%s failed after %d attempt%s: %s" index
             (match lambda_g with
             | Some l -> Printf.sprintf " (lambda_g=%g)" l
             | None -> "")
             attempts
             (if attempts = 1 then "" else "s")
             (Printexc.to_string error))
    | _ -> None)

type outcome = {
  results : point_result option array;
  quarantined : failure list;
  stats : stats;
}

(* ---- cost model ----

   The scheduler only needs a priority, not a prediction in seconds.
   A point's simulation cost is driven by its message quota times the
   queueing blow-up at its load: near saturation, backlogs (and the
   drain phase) grow like 1/(1 - rho) of the most-loaded resource,
   which the analytical model hands us for free.  Saturated points
   (rho >= 1) are costlier still — the backlog grows linearly for the
   whole generation phase — so they sort first. *)
(* Every queue's ρ is linear in λ (Eqs. 15–37 all scale their rates
   by λ_g), so the bottleneck utilisation of a whole sweep batch —
   which shares one (system, message) physically via [Scenario.at] —
   is one [Utilization.analyze] at λ = 1 plus a multiply per point.
   One memo slot suffices; [estimated_cost] runs single-threaded in
   [run]'s setup, and a race would only recompute. *)
let bottleneck_slope_cache = ref None

let bottleneck_slope ~system ~message =
  match !bottleneck_slope_cache with
  | Some (s, m, slope) when s == system && m == message -> slope
  | _ ->
      let slope =
        (* [Utilization.analyze] sorts most-loaded first (pinned by a
           test), but the cost model wants the max-ρ bottleneck
           whatever the ordering — take the maximum explicitly so a
           sort change can never silently degrade LPT scheduling. *)
        match Utilization.analyze ~system ~message ~lambda_g:1. () with
        | entries ->
            let max_rho =
              List.fold_left
                (fun acc { Utilization.rho; _ } ->
                  if Float.is_finite rho then Float.max acc rho else acc)
                Float.neg_infinity entries
            in
            if Float.is_finite max_rho then Float.max 0. max_rho else Float.nan
        | exception _ -> Float.nan
      in
      bottleneck_slope_cache := Some (system, message, slope);
      slope

let estimated_cost (s : Scenario.t) =
  let p = s.Scenario.protocol in
  let quota = float_of_int (p.Scenario.warmup + p.Scenario.measured + p.Scenario.drain) in
  let reps =
    match s.Scenario.replication with
    | None -> 1.
    | Some r -> float_of_int r.Scenario.max_reps
  in
  let lambda_g = match Scenario.fixed_lambda s with Some l -> l | None -> 1e-3 in
  let rho =
    let r = bottleneck_slope ~system:s.Scenario.system ~message:s.Scenario.message *. lambda_g in
    if Float.is_finite r then Float.max 0. r else 0.5
  in
  let congestion =
    if rho >= 1. then 50. *. rho else 1. /. (1. -. Float.min rho 0.98)
  in
  quota *. reps *. congestion

(* ---- work-stealing deques ----

   Points are coarse tasks (milliseconds to minutes each), so a
   mutex-protected deque per domain costs nothing measurable and
   avoids the subtleties of lock-free Chase-Lev.  The initial
   distribution is longest-processing-time-first: points sorted by
   estimated cost, each chunked onto the currently least-loaded
   deque, so the expensive near-saturation points dispatch first and
   the critical path shrinks.  Owners pop their costliest remaining
   point from the front; idle domains steal from the back of a
   victim's deque (the victim's cheapest work), which keeps steals
   rare and cheap. *)
type deque = {
  items : int array;
  mutable lo : int;
  mutable hi : int;
  lock : Mutex.t;
}

let pop_front d =
  Mutex.lock d.lock;
  let r =
    if d.lo < d.hi then begin
      let i = d.items.(d.lo) in
      d.lo <- d.lo + 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let steal_back d =
  Mutex.lock d.lock;
  let r =
    if d.lo < d.hi then begin
      d.hi <- d.hi - 1;
      Some d.items.(d.hi)
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let execute ~config ~metrics (s : Scenario.t) =
  match s.Scenario.replication with
  | None ->
      let r = Runner.run_scenario ?trace:config.trace ~metrics s in
      {
        summary = r.Runner.latency;
        ci_half_width = r.Runner.ci95_half_width;
        replications = 1;
        events = r.Runner.events;
        from_cache = false;
      }
  | Some _ ->
      let r = Runner.run_replicated_scenario ?trace:config.trace ~metrics s in
      {
        summary = r.Runner.merged;
        ci_half_width = r.Runner.rep_ci_half_width;
        replications = r.Runner.replications;
        events = r.Runner.total_events;
        from_cache = false;
      }

let entry_of_result (r : point_result) =
  {
    Point_cache.summary = r.summary;
    ci_half_width = r.ci_half_width;
    replications = r.replications;
    events = r.events;
  }

let result_of_entry (e : Point_cache.entry) =
  {
    summary = e.Point_cache.summary;
    ci_half_width = e.Point_cache.ci_half_width;
    replications = e.Point_cache.replications;
    events = e.Point_cache.events;
    from_cache = true;
  }

let run ?(config = default_config) points =
  let t0 = Clock.now_ns () in
  let points = Array.of_list points in
  let n = Array.length points in
  (* The span tracer observes only — unlike [trace] below it never
     bypasses the caches, so a traced sweep is bit-identical to an
     untraced one, cache entries included (pinned by test). *)
  let tracer = config.tracer in
  Trace.in_span tracer "sweep" @@ fun sweep_sp ->
  Trace.attr_int sweep_sp "points" n;
  let sweep_id = Trace.id sweep_sp in
  let results : point_result option array = Array.make n None in
  (* Tracing runs replay side effects, so they must never be served
     from (or stored into) the cache. *)
  let cache_dir =
    match config.cache with
    | No_cache -> None
    | Cache_dir _ when config.trace <> None -> None
    | Cache_dir dir -> Some dir
  in
  (* The in-memory memo obeys the same trace exclusion as the disk
     cache: a memo-served point replays no side effects. *)
  let memo =
    match config.memo with Some m when config.trace = None -> Some m | _ -> None
  in
  let keys =
    let want = cache_dir <> None || memo <> None in
    Array.map (fun s -> if want then Some (Point_cache.key s) else None) points
  in
  (* The point hash already encodes λ (points are fixed-load), so the
     memo's float axis is unused — a constant fills it. *)
  let memo_bits = 0L in
  let memo_find k =
    match memo with
    | None -> None
    | Some m -> Fatnet_numerics.Memo.find m ~key:k ~bits:memo_bits
  in
  let memo_store k entry =
    match memo with
    | None -> ()
    | Some m -> Fatnet_numerics.Memo.store m ~key:k ~bits:memo_bits entry
  in
  let mreg = config.metrics in
  let metrics_on = Metrics.is_enabled mreg in
  (* Cache degradation: any cache I/O failure (unreadable entry dir,
     read-only store target, an injected fault) flips the whole sweep
     to cache-off — one stderr warning, one [cache_errors] counter
     tick per observed error — instead of aborting and throwing away
     every completed point.  Faults cost work, never results.  With
     [cache_recovery] the gate re-opens for a re-probe after that
     many skipped operations (daemon semantics); the default stays
     one-way.  The gate owns the warning and the [cache_errors]
     counter. *)
  let gate =
    Cache_gate.create ?recover_after:config.cache_recovery ~metrics:mreg
      ~enabled:(cache_dir <> None) ()
  in
  let degrade ~op exn = Cache_gate.trip gate ~op exn in
  (* Fault decisions at the execution site key on the point's own
     scenario hash, so a schedule follows the point, not its position
     or its domain. *)
  let fkeys =
    if Fault.is_none config.faults then [||] else Array.map Scenario.hash points
  in
  let fkey i = if Array.length fkeys = 0 then "" else fkeys.(i) in
  let find_seconds outcome =
    Metrics.histogram mreg "cache_find_seconds"
      ~labels:[ ("outcome", outcome) ]
      ~lo:0. ~hi:0.05 ~bins:20
      ~help:"Point-cache lookup latency by outcome"
  in
  let find_hit = find_seconds "hit" and find_miss = find_seconds "miss" in
  let cache_hits = ref 0 in
  let memo_hits = ref 0 in
  (* Memo first (a hashtable probe), disk second (a file read whose
     hits warm the memo for the next sweep sharing it). *)
  (match memo with
  | None -> ()
  | Some _ ->
      Array.iteri
        (fun i key ->
          match key with
          | Some k -> (
              match memo_find k with
              | Some entry ->
                  results.(i) <- Some (result_of_entry entry);
                  incr memo_hits;
                  Trace.instant tracer "point"
                    [ ("index", string_of_int i); ("outcome", "memo") ]
              | None -> ())
          | None -> ())
        keys);
  (match cache_dir with
  | None -> ()
  | Some dir ->
      ignore (Point_cache.gc_tmp ~dir);
      Array.iteri
        (fun i key ->
          match key with
          | Some k when results.(i) = None && Cache_gate.ready gate -> (
              let t_find = Clock.now_ns () in
              let found =
                Trace.in_span tracer "cache.find" @@ fun csp ->
                Trace.attr_int csp "index" i;
                match Point_cache.find ~dir ~faults:config.faults k with
                | found ->
                    Trace.attr csp "outcome"
                      (match found with Some _ -> "hit" | None -> "miss");
                    Ok found
                | exception exn ->
                    Trace.attr csp "outcome" "error";
                    Error exn
              in
              match found with
              | Ok found -> (
                  let dt = Clock.seconds_since t_find in
                  match found with
                  | Some entry ->
                      Metrics.observe find_hit dt;
                      results.(i) <- Some (result_of_entry entry);
                      memo_store k entry;
                      incr cache_hits;
                      Trace.instant tracer "point"
                        [ ("index", string_of_int i); ("outcome", "cache") ]
                  | None -> Metrics.observe find_miss dt)
              | Error exn -> degrade ~op:"find" exn)
          | _ -> ())
        keys);
  let misses =
    Array.to_list (Array.init n Fun.id) |> List.filter (fun i -> results.(i) = None)
  in
  let executed = List.length misses in
  let domains_used =
    let d =
      match config.domains with
      | Some d -> d
      | None -> Parallel.recommended_domains ()
    in
    max 1 (min d (max 1 executed))
  in
  let occupancy = Array.make domains_used 0. in
  let steals = Atomic.make 0 in
  let retried = Atomic.make 0 in
  let abort = Atomic.make false in
  let failures_lock = Mutex.create () in
  let failures = ref [] in
  if misses <> [] then begin
    let costs = Array.map estimated_cost points in
    let by_cost =
      List.sort (fun a b -> Float.compare costs.(b) costs.(a)) misses
    in
    (* LPT greedy: next-costliest point onto the least-loaded deque. *)
    let loads = Array.make domains_used 0. in
    let assignment = Array.make domains_used [] in
    List.iter
      (fun i ->
        let d = ref 0 in
        for k = 1 to domains_used - 1 do
          if loads.(k) < loads.(!d) then d := k
        done;
        loads.(!d) <- loads.(!d) +. costs.(i);
        assignment.(!d) <- i :: assignment.(!d))
      by_cost;
    let deques =
      Array.map
        (fun rev ->
          let items = Array.of_list (List.rev rev) in
          { items; lo = 0; hi = Array.length items; lock = Mutex.create () })
        assignment
    in
    (* Gauges and histograms are single-writer: each worker domain
       records into its own registry (simulator metrics reach it as
       the domain's ambient), absorbed into the caller's registry
       after the join. *)
    let work_regs =
      Array.init domains_used (fun _ ->
          if metrics_on then Metrics.create () else Metrics.disabled)
    in
    (* Retry discipline: a failed attempt re-runs the same point up
       to [config.retries] extra times.  The fault plan keys its
       decisions on the attempt index, so a retry sees a fresh,
       deterministic decision; a successful attempt always runs the
       scenario with its own seed, which is why survivors are
       bit-identical to a fault-free sweep.  A point that exhausts its
       budget is quarantined, not fatal — unless [fail_fast], which
       records the first failure and tells every worker to stop
       picking up new points. *)
    let run_point reg i =
      let p = points.(i) in
      (* Worker domains' ambient current span is 0, so the point span
         parents to the sweep root explicitly; everything below it
         (attempt, cache.store, the runner's sim spans, the model's
         solver spans) nests through the ambient current. *)
      Trace.in_span ~parent:sweep_id tracer "point" @@ fun psp ->
      Trace.attr_int psp "index" i;
      (match Scenario.fixed_lambda p with
      | Some l -> Trace.attr_float psp "lambda_g" l
      | None -> ());
      let rec attempt a =
        (* The attempt span covers exactly what the retry budget
           covers — the fault trip and the execution.  Result
           bookkeeping and retry decisions happen outside it, so a
           cache-store failure is cache degradation, never a retry. *)
        let attempted =
          Trace.in_span tracer "attempt" @@ fun asp ->
          Trace.attr_int asp "attempt" a;
          match
            Fault.trip config.faults Fault.Point_exec ~key:(fkey i) ~attempt:a ();
            execute ~config ~metrics:reg p
          with
          | r -> Ok r
          | exception exn -> Error exn
        in
        match attempted with
        | Ok r ->
            results.(i) <- Some r;
            Trace.attr psp "outcome" "executed";
            Trace.attr_int psp "attempts" (a + 1);
            (match keys.(i) with
            | Some k -> memo_store k (entry_of_result r)
            | None -> ());
            (match (cache_dir, keys.(i)) with
            | Some dir, Some k when Cache_gate.ready gate -> (
                let t_store = Clock.now_ns () in
                let stored =
                  Trace.in_span tracer "cache.store" @@ fun _ ->
                  match Point_cache.store ~dir ~faults:config.faults k (entry_of_result r) with
                  | () -> Ok ()
                  | exception exn -> Error exn
                in
                match stored with
                | Ok () ->
                    Metrics.observe
                      (Metrics.histogram reg "cache_store_seconds" ~lo:0. ~hi:0.05 ~bins:20
                         ~help:"Point-cache store latency")
                      (Clock.seconds_since t_store)
                | Error exn -> degrade ~op:"store" exn)
            | _ -> ())
        | Error exn ->
            if (not config.fail_fast) && a < config.retries then begin
              Atomic.incr retried;
              if metrics_on then
                Metrics.incr
                  (Metrics.counter mreg "sweep_point_retries"
                     ~help:"Point executions retried after a failed attempt");
              attempt (a + 1)
            end
            else begin
              Trace.attr psp "outcome" "quarantined";
              Trace.attr_int psp "attempts" (a + 1);
              Mutex.lock failures_lock;
              failures :=
                {
                  index = i;
                  lambda_g = Scenario.fixed_lambda p;
                  attempts = a + 1;
                  error = exn;
                }
                :: !failures;
              Mutex.unlock failures_lock;
              if config.fail_fast then Atomic.set abort true
            end
      in
      attempt 0
    in
    let worker d =
      let reg = work_regs.(d) in
      Metrics.with_ambient reg @@ fun () ->
      Trace.with_ambient tracer (fun () ->
          let busy_start = ref (Clock.now_ns ()) in
          let busy = ref 0. in
          let continue = ref true in
          while !continue && not (Atomic.get abort) do
            match pop_front deques.(d) with
            | Some i ->
                busy_start := Clock.now_ns ();
                run_point reg i;
                busy := !busy +. Clock.seconds_since !busy_start
            | None ->
                let t_steal = Clock.now_ns () in
                let rec try_steal k =
                  if k >= domains_used then None
                  else
                    match steal_back deques.((d + k) mod domains_used) with
                    | Some i -> Some i
                    | None -> try_steal (k + 1)
                in
                (match try_steal 1 with
                | Some i ->
                    Atomic.incr steals;
                    Metrics.observe
                      (Metrics.histogram reg "sweep_steal_latency_seconds" ~lo:0. ~hi:0.01
                         ~bins:20
                         ~help:"Victim-scan time before a successful steal")
                      (Clock.seconds_since t_steal);
                    busy_start := Clock.now_ns ();
                    run_point reg i;
                    busy := !busy +. Clock.seconds_since !busy_start
                | None -> continue := false)
          done;
          occupancy.(d) <- !busy)
    in
    let spawned =
      List.init (domains_used - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    List.iter Domain.join spawned;
    if metrics_on then
      Array.iter (fun reg -> Metrics.absorb mreg (Metrics.snapshot reg)) work_regs
  end;
  let wall = Clock.seconds_since t0 in
  let quarantined =
    List.sort (fun a b -> compare a.index b.index) !failures
  in
  if metrics_on then begin
    Metrics.add (Metrics.counter mreg "sweep_points_total") n;
    Metrics.add (Metrics.counter mreg "sweep_points_executed") executed;
    Metrics.add
      (Metrics.counter mreg "sweep_memo_hits"
         ~help:"Points served by the in-memory memo instead of disk or execution")
      !memo_hits;
    Metrics.add (Metrics.counter mreg "sweep_cache_hits") !cache_hits;
    Metrics.add (Metrics.counter mreg "sweep_steals") (Atomic.get steals);
    Metrics.add
      (Metrics.counter mreg "sweep_points_quarantined"
         ~help:"Points that exhausted their retry budget this sweep")
      (List.length quarantined);
    Metrics.add
      (Metrics.counter mreg "sweep_replications"
         ~help:"Simulation replications run across executed points")
      (Array.fold_left
         (fun acc r ->
           match r with
           | Some { replications; from_cache = false; _ } -> acc + replications
           | _ -> acc)
         0 results);
    Metrics.set (Metrics.gauge mreg "sweep_domains_used") (float_of_int domains_used);
    Metrics.set (Metrics.gauge mreg "sweep_wall_seconds") wall;
    Array.iteri
      (fun d b ->
        Metrics.set
          (Metrics.gauge mreg "sweep_domain_occupancy"
             ~labels:[ ("domain", string_of_int d) ]
             ~help:"Fraction of the sweep wall time this domain spent executing points")
          (if wall > 0. then b /. wall else 0.))
      occupancy
  end;
  Trace.attr_int sweep_sp "executed" executed;
  Trace.attr_int sweep_sp "memo_hits" !memo_hits;
  Trace.attr_int sweep_sp "cache_hits" !cache_hits;
  Trace.attr_int sweep_sp "steals" (Atomic.get steals);
  Trace.attr_int sweep_sp "quarantined" (List.length quarantined);
  if config.fail_fast && quarantined <> [] then
    raise
      (Parallel.Failures
         (List.map (fun f -> (f.index, Point_failure f)) quarantined));
  {
    results;
    quarantined;
    stats =
      {
        points = n;
        executed;
        memo_hits = !memo_hits;
        cache_hits = !cache_hits;
        domains_used;
        steals = Atomic.get steals;
        occupancy =
          Array.map (fun b -> if wall > 0. then b /. wall else 0.) occupancy;
        wall_seconds = wall;
        retries = Atomic.get retried;
        quarantined = List.length quarantined;
        cache_degraded = cache_dir <> None && Cache_gate.degraded gate;
      };
  }

let results_exn (o : outcome) =
  (match o.quarantined with
  | [] -> ()
  | fs ->
      raise
        (Parallel.Failures (List.map (fun f -> (f.index, Point_failure f)) fs)));
  Array.map
    (function Some r -> r | None -> assert false)
    o.results

let run_sweep ?config scenario = run ?config (Scenario.points scenario)

let mean_latencies ?config points =
  let results = results_exn (run ?config points) in
  Array.to_list (Array.map (fun r -> r.summary.Summary.mean) results)
