(** Degradation gate in front of {!Point_cache} I/O.

    A cache I/O failure must cost work, never results: the sweep
    engine's contract (PR 5) is that one error flips the run to
    cache-off with a single stderr warning and a [cache_errors]
    counter tick, instead of aborting.  That one-way trip is right
    for a 30-second batch sweep and wrong for a daemon that may
    outlive a transient disk hiccup (NFS blip, log rotation against
    the cache volume), so the gate adds an optional recovery path:
    after [recover_after] gated operations have been skipped, the
    next one re-probes the cache; if the disk is still broken the
    probe's own error trips the gate again (one warning per trip,
    [cache_reprobes] counts the attempts).

    The gate is domain-safe: any number of domains may call {!ready}
    and {!trip} concurrently; a racing trip warns exactly once. *)

type t

val create :
  ?recover_after:int -> ?metrics:Fatnet_obs.Metrics.t -> ?context:string ->
  enabled:bool -> unit -> t
(** [enabled:false] builds a permanently closed gate (no cache
    configured).  [recover_after] (default: none — batch semantics,
    the gate never re-opens) is the number of {!ready} calls to
    refuse after a trip before the next one re-probes; it must be
    ≥ 1.  [context] is spliced into the warning — ["point cache
    disabled <context> (cache <op> failed: ...)"] — and defaults to
    ["for this sweep"]. *)

val ready : t -> bool
(** Should this operation touch the cache?  [true] when the gate is
    up, and for the single operation elected to re-probe after a
    countdown expires (the gate re-opens optimistically at that
    point).  Counts down while degraded. *)

val trip : t -> op:string -> exn -> unit
(** Record a cache I/O failure: bump [cache_errors{op,kind}] on the
    gate's metrics registry, close the gate (forever, or for
    [recover_after] operations), and — only on the transition from
    up to down — log the one warning. *)

val degraded : t -> bool
(** Is the gate currently closed (including counting down)? *)

val trips : t -> int
(** Up→down transitions since creation (1 for a tripped batch gate;
    may exceed 1 with recovery as failed re-probes re-trip). *)

val exn_kind : exn -> string
(** The coarse exception taxonomy used for the [kind] label:
    ["sys_error"], ["injected"], ["out_of_memory"], ["other"]. *)
