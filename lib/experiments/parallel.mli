(** Multicore helper for embarrassingly parallel experiment sweeps.

    Every simulation point is an independent, freshly seeded run, so
    sweeps parallelise trivially across OCaml 5 domains.  Results are
    identical to the sequential order regardless of the domain
    count.

    This is the simple atomic-counter fan-out; {!Sweep_engine} is the
    full orchestrator (cost-model scheduling, work stealing, caching,
    adaptive replications) built for figure sweeps. *)

exception Failures of (int * exn) list
(** Raised by {!map} when one or more applications failed: every
    failed slot, as [(input index, exception)], in index order.  A
    printer is registered. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] applies [f] to every element, distributing
    the work over up to [domains] domains (default: the runtime's
    recommended domain count, capped by the list length).  Order is
    preserved.  Every element is attempted even when some fail; if
    any application raised, all failures are collected and re-raised
    together as {!Failures}. *)

val try_map : ?domains:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Like {!map} but returns per-slot outcomes instead of raising —
    the error path schedulers use to decide per-point handling
    themselves (e.g. re-raising only the first failure, the historic
    [map] behaviour). *)

val recommended_domains : unit -> int
(** The runtime's recommendation (at least 1). *)
