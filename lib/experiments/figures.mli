(** The paper's validation experiments, one spec per figure.

    Figs. 3–6 plot mean message latency against the traffic
    generation rate for the two Table-1 organizations and two
    message/flit sizes, overlaying the analytical model and the
    simulation.  Fig. 7 is a model-only design-space study: ICN2
    bandwidth increased by 20 %. *)

type curve = {
  label : string;
  system : Fatnet_model.Params.system;
  message : Fatnet_model.Params.message;
  simulate : bool; (** paper overlays a simulation for this curve *)
}

type spec = {
  id : string;          (** e.g. ["fig3"] *)
  title : string;       (** e.g. ["N=1120, m=8, M=32"] *)
  lambda_max : float;   (** right edge of the paper's x axis *)
  curves : curve list;
}

val fig3 : spec
val fig4 : spec
val fig5 : spec
val fig6 : spec
val fig7 : spec

val all : spec list

val find : string -> spec option
(** Look up a spec by id. *)

val model_series :
  ?variants:Fatnet_model.Variants.t -> spec -> steps:int -> Fatnet_report.Series.t list
(** One analytical series per curve, [steps] points on
    [[lambda_max/steps, lambda_max]].  Saturated points carry
    [infinity] (filter with {!Fatnet_report.Series.finite}). *)

val sim_series :
  ?config:Fatnet_sim.Runner.config ->
  ?domains:int ->
  ?engine:Sweep_engine.config ->
  spec ->
  steps:int ->
  Fatnet_report.Series.t list
(** One simulation series per curve with [simulate = true], every
    (curve, λ) point dispatched as one batch through
    {!Sweep_engine.run}.  When [engine] is given it wins; otherwise
    an uncached, single-run engine is built from [config] (default
    {!Fatnet_sim.Runner.quick_config}) and [domains] — the historic
    behaviour.  Results are bit-identical to a sequential sweep
    regardless of domains or caching. *)

val sim_series_stats :
  ?config:Fatnet_sim.Runner.config ->
  ?domains:int ->
  ?engine:Sweep_engine.config ->
  spec ->
  steps:int ->
  Fatnet_report.Series.t list * Sweep_engine.stats
(** {!sim_series} plus the engine's scheduler/cache statistics. *)

val sim_series_naive :
  ?config:Fatnet_sim.Runner.config ->
  ?domains:int ->
  spec ->
  steps:int ->
  Fatnet_report.Series.t list
(** The pre-engine sweep path ({!Parallel.map}, fixed protocol, no
    cache), kept as the benchmark baseline. *)

val light_load_error :
  ?config:Fatnet_sim.Runner.config -> spec -> (string * float) list
(** The paper's Section-4 claim check: per simulated curve, the
    relative model-vs-simulation error at 10 % and 25 % of that
    curve's saturation rate, averaged — the "light traffic" regime
    where the paper reports 4–8 %. *)
