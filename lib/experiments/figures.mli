(** The paper's validation experiments, one spec per figure.

    Figs. 3–6 plot mean message latency against the traffic
    generation rate for the two Table-1 organizations and two
    message/flit sizes, overlaying the analytical model and the
    simulation.  Fig. 7 is a model-only design-space study: ICN2
    bandwidth increased by 20 %.

    Every curve carries a full {!Fatnet_scenario.Scenario.t}; figures
    3–6 are each generated from one {e base} scenario via
    {!of_scenario}, so a figure loaded from its checked-in
    [examples/*.scn] file is structurally equal to the in-code preset
    (pinned by the integration tests — this is what makes the
    scenario-file path bit-for-bit identical to the preset path). *)

type curve = {
  label : string;
  scenario : Fatnet_scenario.Scenario.t;
      (** full experiment description; its load axis is the figure's
          sweep *)
  simulate : bool;  (** paper overlays a simulation for this curve *)
}

type spec = {
  id : string;          (** e.g. ["fig3"] *)
  title : string;       (** e.g. ["N=1120, m=8, M=32"] *)
  lambda_max : float;   (** right edge of the paper's x axis *)
  curves : curve list;
}

val default_steps : int
(** Load-axis steps recorded in the preset scenarios (the binaries'
    default [--sim-steps]). *)

val of_scenario : Fatnet_scenario.Scenario.t -> spec
(** The paper's validation-figure shape fanned out from one base
    scenario: two simulated curves, [Lm=256] and [Lm=512] (the base's
    flit size is replaced by each).  [id]/[title] come from the
    scenario's [name]/[title]; [lambda_max] from its load axis. *)

val to_scenario : spec -> Fatnet_scenario.Scenario.t option
(** The inverse of {!of_scenario} — the base scenario of a
    validation-shaped spec (the [Lm=256] curve's), or [None] for
    specs that are not two flit-size variants of one scenario
    (e.g. {!fig7}). *)

val fig3 : spec
val fig4 : spec
val fig5 : spec
val fig6 : spec
val fig7 : spec

val all : spec list

val find : string -> spec option
(** Look up a spec by id. *)

val model_series :
  ?variants:Fatnet_model.Variants.t -> spec -> steps:int -> Fatnet_report.Series.t list
(** One analytical series per curve, [steps] points on
    [[lambda_max/steps, lambda_max]], each under its curve scenario's
    variants unless [variants] overrides.  Saturated points carry
    [infinity] (filter with {!Fatnet_report.Series.finite}). *)

val sim_series :
  ?protocol:Fatnet_scenario.Scenario.protocol ->
  ?replication:Fatnet_scenario.Scenario.replication ->
  ?engine:Sweep_engine.config ->
  spec ->
  steps:int ->
  Fatnet_report.Series.t list
(** One simulation series per curve with [simulate = true], every
    (curve, λ) point dispatched as one fixed-load scenario through
    {!Sweep_engine.run}.  [protocol] (default
    {!Fatnet_scenario.Scenario.quick_protocol}) replaces each curve
    scenario's protocol; [replication], when given, replaces its
    replication rule; [engine] configures scheduling/caching (default
    uncached, recommended domains).  Results are bit-identical to a
    sequential sweep regardless of domains or caching. *)

val sim_series_stats :
  ?protocol:Fatnet_scenario.Scenario.protocol ->
  ?replication:Fatnet_scenario.Scenario.replication ->
  ?engine:Sweep_engine.config ->
  spec ->
  steps:int ->
  Fatnet_report.Series.t list * Sweep_engine.stats
(** {!sim_series} plus the engine's scheduler/cache statistics. *)

val sim_summaries_stats :
  ?protocol:Fatnet_scenario.Scenario.protocol ->
  ?replication:Fatnet_scenario.Scenario.replication ->
  ?engine:Sweep_engine.config ->
  spec ->
  steps:int ->
  (string * (float * Fatnet_stats.Summary.t) list) list * Sweep_engine.stats
(** The sweep behind {!sim_series_stats} with the full
    distribution-carrying summaries: per simulated curve, its label
    and the (λ, merged summary) grid.  One engine batch feeds both
    the mean and the quantile projections, so a figure and its tail
    family cost one sweep. *)

val mean_series_of_summaries :
  (string * (float * Fatnet_stats.Summary.t) list) list -> Fatnet_report.Series.t list
(** Project the mean out of {!sim_summaries_stats} output —
    [sim_series_stats = mean_series_of_summaries ∘ sim_summaries_stats]. *)

val quantile_series_of_summaries :
  q:float ->
  (string * (float * Fatnet_stats.Summary.t) list) list ->
  Fatnet_report.Series.t list
(** Project a ladder quantile (0.5, 0.9, 0.99 or 0.999) out of
    {!sim_summaries_stats} output.  Points whose summaries carry no
    quantile state (merged from zero-count replications) come out as
    NaN.  @raise Invalid_argument off the ladder
    (see {!Fatnet_stats.Summary.quantile}). *)

val quantile_name : float -> string
(** ["p50"], ["p90"], ["p99"], ["p999"] for the ladder (and
    ["p<100q>"] otherwise) — the suffix used in series names and
    {!quantile_id}. *)

val quantile_id : spec -> q:float -> string
(** The tail-family output id, e.g. [quantile_id fig5 ~q:0.99 =
    "fig5-p99"] — the CSV written next to the figure's mean CSV. *)

val sim_quantile_series_stats :
  ?protocol:Fatnet_scenario.Scenario.protocol ->
  ?replication:Fatnet_scenario.Scenario.replication ->
  ?engine:Sweep_engine.config ->
  spec ->
  steps:int ->
  q:float ->
  Fatnet_report.Series.t list * Sweep_engine.stats
(** One simulated quantile series per simulated curve (its own engine
    batch; to share a batch with the mean series use
    {!sim_summaries_stats} + the projections). *)

val model_quantile_series :
  ?variants:Fatnet_model.Variants.t -> spec -> steps:int -> q:float -> Fatnet_report.Series.t list
(** One predicted-quantile series per curve: a
    {!Fatnet_model.Tail} mixture fitted at each grid point and read
    at [q].  Saturated points carry [infinity], mirroring
    {!model_series}. *)

val sim_series_naive :
  ?protocol:Fatnet_scenario.Scenario.protocol ->
  ?domains:int ->
  spec ->
  steps:int ->
  Fatnet_report.Series.t list
(** The pre-engine sweep path ({!Parallel.map}, fixed protocol, no
    cache), kept as the benchmark baseline. *)

val light_load_error :
  ?protocol:Fatnet_scenario.Scenario.protocol -> spec -> (string * float) list
(** The paper's Section-4 claim check: per simulated curve, the
    relative model-vs-simulation error at 10 % and 25 % of that
    curve's saturation rate, averaged — the "light traffic" regime
    where the paper reports 4–8 %. *)
