module Scenario = Fatnet_scenario.Scenario
module Summary = Fatnet_stats.Summary

(* Bump whenever the simulator, the replication rule, or the stored
   format changes meaning: the version is part of every key, so a
   bump invalidates the whole cache without touching the files.
   Scenario-semantics changes bump [Scenario.scenario_version], which
   prefixes the canonical rendering and invalidates just the same. *)
(* Version 3: the stored summary carries the full quantile ladder
   (p50/p90/p99/p999).  Version-2 entries fail the magic-line check
   and read as plain misses — recomputed and rewritten, never an
   error. *)
let engine_version = 3

let default_dir = Filename.concat "results" ".cache"

let fbits f = Printf.sprintf "%Lx" (Int64.bits_of_float f)

(* The key is the scenario's own canonical identity — one rendering
   shared with [Scenario.hash], every float as its IEEE-754 bit hex,
   name/title excluded — prefixed with both versions.  Two
   configurations differing in the last ulp get different keys; a
   relabeled scenario keeps its entries. *)
let key (s : Scenario.t) =
  Printf.sprintf "fatnet-point v%d;scn v%d;%s" engine_version Scenario.scenario_version
    (Scenario.canonical s)

(* ---- stored results ---- *)

type entry = {
  summary : Summary.t;
  ci_half_width : float;
  replications : int;
  events : int;
}

let path_of ~dir k = Filename.concat dir (Digest.to_hex (Digest.string k) ^ ".point")

let to_lines ~key:k (e : entry) =
  let s = e.summary in
  [
    Printf.sprintf "fatnet-point-cache %d" engine_version;
    k;
    Printf.sprintf "count %d" s.Summary.count;
    Printf.sprintf "mean %s" (fbits s.Summary.mean);
    Printf.sprintf "stddev %s" (fbits s.Summary.stddev);
    Printf.sprintf "min %s" (fbits s.Summary.min);
    Printf.sprintf "max %s" (fbits s.Summary.max);
    Printf.sprintf "p50 %s" (fbits s.Summary.p50);
    Printf.sprintf "p90 %s" (fbits s.Summary.p90);
    Printf.sprintf "p99 %s" (fbits s.Summary.p99);
    Printf.sprintf "p999 %s" (fbits s.Summary.p999);
    Printf.sprintf "ci %s" (fbits e.ci_half_width);
    Printf.sprintf "reps %d" e.replications;
    Printf.sprintf "events %d" e.events;
  ]

let float_field lines name =
  List.find_map
    (fun l ->
      match String.index_opt l ' ' with
      | Some i when String.sub l 0 i = name ->
          let v = String.sub l (i + 1) (String.length l - i - 1) in
          Scanf.sscanf_opt v "%Lx" Int64.float_of_bits
      | _ -> None)
    lines

let int_field lines name =
  List.find_map
    (fun l ->
      match String.index_opt l ' ' with
      | Some i when String.sub l 0 i = name ->
          int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1))
      | _ -> None)
    lines

let of_lines ~key:k = function
  | magic :: stored_key :: fields
    when magic = Printf.sprintf "fatnet-point-cache %d" engine_version && stored_key = k
    -> (
      match
        ( ( int_field fields "count",
            float_field fields "mean",
            float_field fields "stddev",
            float_field fields "min",
            float_field fields "max" ),
          ( float_field fields "p50",
            float_field fields "p90",
            float_field fields "p99",
            float_field fields "p999" ),
          (float_field fields "ci", int_field fields "reps", int_field fields "events") )
      with
      | ( (Some count, Some mean, Some stddev, Some min, Some max),
          (Some p50, Some p90, Some p99, Some p999),
          (Some ci, Some reps, Some events) ) ->
          Some
            {
              summary = { Summary.count; mean; stddev; min; max; p50; p90; p99; p999 };
              ci_half_width = ci;
              replications = reps;
              events;
            }
      | _ -> None)
  | _ -> None

let find ~dir ?(faults = Fault.none) k =
  Fault.trip faults Fault.Cache_find ~key:k ();
  let path = path_of ~dir k in
  match In_channel.with_open_text path In_channel.input_lines with
  | lines -> of_lines ~key:k lines
  | exception Sys_error _ -> None

let store ~dir ?(faults = Fault.none) k entry =
  Fault.trip faults Fault.Cache_store ~key:k ();
  Fs_util.mkdir_p dir;
  let path = path_of ~dir k in
  (* Write-then-rename so concurrent domains storing the same key (or
     a reader racing a writer) never observe a torn file.  Any failure
     past this point removes the temp file before propagating: a
     failed store must never leave [.tmp] garbage behind. *)
  let tmp = Filename.temp_file ~temp_dir:dir "point" ".tmp" in
  match
    Out_channel.with_open_text tmp (fun oc ->
        List.iter
          (fun l ->
            Out_channel.output_string oc l;
            Out_channel.output_char oc '\n')
          (to_lines ~key:k entry));
    Fault.trip faults Fault.Tmp_rename ~key:k ();
    Sys.rename tmp path
  with
  | () -> ()
  | exception exn ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise exn

(* A [.tmp] this old cannot belong to a live writer (stores are
   write-then-rename within one point's execution); it is debris from
   a crashed or killed run. *)
let tmp_ttl_seconds = 900.

let tmp_is_stale path =
  match Unix.stat path with
  | { Unix.st_mtime; _ } -> Unix.gettimeofday () -. st_mtime > tmp_ttl_seconds
  | exception Unix.Unix_error _ -> false

let gc_tmp ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files ->
      Array.fold_left
        (fun removed f ->
          let path = Filename.concat dir f in
          if Filename.check_suffix f ".tmp" && tmp_is_stale path then
            match Sys.remove path with
            | () -> removed + 1
            | exception Sys_error _ -> removed
          else removed)
        0 files

let clear ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f ->
        (* Entries always; [.tmp] only when stale — a fresh [.tmp]
           belongs to a concurrent writer, and deleting it would race
           that writer's rename into a [Sys_error]. *)
        let path = Filename.concat dir f in
        if
          Filename.check_suffix f ".point"
          || (Filename.check_suffix f ".tmp" && tmp_is_stale path)
        then try Sys.remove path with Sys_error _ -> ())
      (Sys.readdir dir)
