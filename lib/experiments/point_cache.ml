module Params = Fatnet_model.Params
module Runner = Fatnet_sim.Runner
module Summary = Fatnet_stats.Summary

(* Bump whenever the simulator, the replication rule, or the stored
   format changes meaning: the version is part of every key, so a
   bump invalidates the whole cache without touching the files. *)
let engine_version = 1

let default_dir = Filename.concat "results" ".cache"

(* ---- canonical keys ----

   Floats are rendered as the hex of their IEEE-754 bits: the key is
   exact, platform-independent, and collision-free under rounding —
   two configurations differing in the last ulp get different keys. *)

let fbits f = Printf.sprintf "%Lx" (Int64.bits_of_float f)

let network_key (n : Params.network) =
  Printf.sprintf "%s,%s,%s" (fbits n.Params.bandwidth) (fbits n.Params.network_latency)
    (fbits n.Params.switch_latency)

let cluster_key (c : Params.cluster) =
  Printf.sprintf "%d:%s:%s" c.Params.tree_depth (network_key c.Params.icn1)
    (network_key c.Params.ecn1)

let system_key (s : Params.system) =
  Printf.sprintf "m=%d;nc=%d;icn2=%s;cl=[%s]" s.Params.m s.Params.icn2_depth
    (network_key s.Params.icn2)
    (String.concat "|" (Array.to_list (Array.map cluster_key s.Params.clusters)))

let message_key (m : Params.message) =
  Printf.sprintf "M=%d;dm=%s" m.Params.length_flits (fbits m.Params.flit_bytes)

let destination_key = function
  | Fatnet_workload.Destination.Uniform -> "u"
  | Fatnet_workload.Destination.Hotspot { node; fraction } ->
      Printf.sprintf "h:%d,%s" node (fbits fraction)
  | Fatnet_workload.Destination.Local { p_local } -> Printf.sprintf "l:%s" (fbits p_local)

let config_key (c : Runner.config) =
  Printf.sprintf "w=%d;me=%d;dr=%d;seed=%Lx;dest=%s;cd=%s;stream=%b" c.Runner.warmup
    c.Runner.measured c.Runner.drain c.Runner.seed
    (destination_key c.Runner.destination)
    (match c.Runner.cd_mode with Runner.Cut_through -> "ct" | Runner.Store_and_forward -> "sf")
    c.Runner.streaming

let replication_key = function
  | None -> "rep=none"
  | Some (r : Runner.replication_spec) ->
      Printf.sprintf "rep=%s,%s,%d,%d" (fbits r.Runner.target_rel)
        (fbits r.Runner.confidence) r.Runner.min_reps r.Runner.max_reps

let key ~system ~message ~lambda_g ~config ~replication =
  Printf.sprintf "fatnet-point v%d;%s;%s;lg=%s;%s;%s" engine_version (system_key system)
    (message_key message) (fbits lambda_g) (config_key config)
    (replication_key replication)

(* ---- stored results ---- *)

type entry = {
  summary : Summary.t;
  ci_half_width : float;
  replications : int;
  events : int;
}

let path_of ~dir k = Filename.concat dir (Digest.to_hex (Digest.string k) ^ ".point")

let to_lines ~key:k (e : entry) =
  let s = e.summary in
  [
    Printf.sprintf "fatnet-point-cache %d" engine_version;
    k;
    Printf.sprintf "count %d" s.Summary.count;
    Printf.sprintf "mean %s" (fbits s.Summary.mean);
    Printf.sprintf "stddev %s" (fbits s.Summary.stddev);
    Printf.sprintf "min %s" (fbits s.Summary.min);
    Printf.sprintf "max %s" (fbits s.Summary.max);
    Printf.sprintf "p50 %s" (fbits s.Summary.p50);
    Printf.sprintf "p99 %s" (fbits s.Summary.p99);
    Printf.sprintf "ci %s" (fbits e.ci_half_width);
    Printf.sprintf "reps %d" e.replications;
    Printf.sprintf "events %d" e.events;
  ]

let float_field lines name =
  List.find_map
    (fun l ->
      match String.index_opt l ' ' with
      | Some i when String.sub l 0 i = name ->
          let v = String.sub l (i + 1) (String.length l - i - 1) in
          Scanf.sscanf_opt v "%Lx" Int64.float_of_bits
      | _ -> None)
    lines

let int_field lines name =
  List.find_map
    (fun l ->
      match String.index_opt l ' ' with
      | Some i when String.sub l 0 i = name ->
          int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1))
      | _ -> None)
    lines

let of_lines ~key:k = function
  | magic :: stored_key :: fields
    when magic = Printf.sprintf "fatnet-point-cache %d" engine_version && stored_key = k
    -> (
      match
        ( int_field fields "count",
          float_field fields "mean",
          float_field fields "stddev",
          float_field fields "min",
          float_field fields "max",
          float_field fields "p50",
          float_field fields "p99",
          float_field fields "ci",
          int_field fields "reps",
          int_field fields "events" )
      with
      | ( Some count,
          Some mean,
          Some stddev,
          Some min,
          Some max,
          Some p50,
          Some p99,
          Some ci,
          Some reps,
          Some events ) ->
          Some
            {
              summary = { Summary.count; mean; stddev; min; max; p50; p99 };
              ci_half_width = ci;
              replications = reps;
              events;
            }
      | _ -> None)
  | _ -> None

let find ~dir k =
  let path = path_of ~dir k in
  match In_channel.with_open_text path In_channel.input_lines with
  | lines -> of_lines ~key:k lines
  | exception Sys_error _ -> None

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let store ~dir k entry =
  mkdir_p dir;
  let path = path_of ~dir k in
  (* Write-then-rename so concurrent domains storing the same key (or
     a reader racing a writer) never observe a torn file. *)
  let tmp = Filename.temp_file ~temp_dir:dir "point" ".tmp" in
  Out_channel.with_open_text tmp (fun oc ->
      List.iter
        (fun l ->
          Out_channel.output_string oc l;
          Out_channel.output_char oc '\n')
        (to_lines ~key:k entry));
  Sys.rename tmp path

let clear ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".point" || Filename.check_suffix f ".tmp" then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)
