module Metrics = Fatnet_obs.Metrics
module Log = Fatnet_obs.Log

let exn_kind = function
  | Sys_error _ -> "sys_error"
  | Fault.Injected _ -> "injected"
  | Out_of_memory -> "out_of_memory"
  | _ -> "other"

(* The whole state machine is one atomic int:
     0   cache up
    -1   down for good (batch semantics — a sweep never recovers)
     n>0 down, n more gated operations to skip before a re-probe
   A trip exchanges in the down value and warns only when it observed
   the up state (one warning per trip, however many domains race).
   [ready] decrements the countdown by CAS; the call that takes it to
   zero is the last of the n skips and re-opens the gate
   optimistically — the next gated operation is the re-probe, and if
   the disk is still broken, its error trips the gate again. *)
type t = {
  state : int Atomic.t;
  recover_after : int option;
  metrics : Metrics.t;
  context : string;
  trips : int Atomic.t;
}

let create ?recover_after ?(metrics = Metrics.disabled) ?(context = "for this sweep")
    ~enabled () =
  (match recover_after with
  | Some n when n < 1 -> invalid_arg "Cache_gate.create: recover_after must be >= 1"
  | _ -> ());
  {
    state = Atomic.make (if enabled then 0 else -1);
    recover_after;
    metrics;
    context;
    trips = Atomic.make 0;
  }

let rec ready t =
  match Atomic.get t.state with
  | 0 -> true
  | -1 -> false
  | n ->
      if Atomic.compare_and_set t.state n (n - 1) then begin
        if n = 1 then
          (* Countdown exhausted: the CAS left the gate at 0 (up), so
             the next gated operation re-probes the cache. *)
          if Metrics.is_enabled t.metrics then
            Metrics.incr
              (Metrics.counter t.metrics "cache_reprobes"
                 ~help:"Cache re-probe attempts after degradation");
        false
      end
      else ready t

let trip t ~op exn =
  if Metrics.is_enabled t.metrics then
    Metrics.incr
      (Metrics.counter t.metrics "cache_errors"
         ~labels:[ ("op", op); ("kind", exn_kind exn) ]
         ~help:"Point-cache I/O failures, by operation and exception kind");
  let down = match t.recover_after with None -> -1 | Some n -> n in
  if Atomic.exchange t.state down = 0 then begin
    Atomic.incr t.trips;
    Log.warn "point cache disabled %s (cache %s failed: %s)" t.context op
      (Printexc.to_string exn)
  end

let degraded t = Atomic.get t.state <> 0
let trips t = Atomic.get t.trips
