(** Persistent on-disk cache of sweep point results.

    A sweep point is a fixed-load {!Fatnet_scenario.Scenario.t}, and a
    scenario fully determines its result (the simulator is
    deterministic), so the cache keys on the scenario's own canonical
    identity — {!Fatnet_scenario.Scenario.canonical}, the rendering
    behind {!Fatnet_scenario.Scenario.hash} — prefixed with
    {!engine_version} and the scenario version.

    The canonical rendering is bit-exact (IEEE-754 bit hex floats)
    and excludes the scenario's [name]/[title], so a cache hit is
    bit-identical to recomputation and relabeling never invalidates.
    Bumping {!engine_version} (on any change to simulator semantics,
    the replication rule, or the storage format) or
    {!Fatnet_scenario.Scenario.scenario_version} (on any change to a
    field's meaning) invalidates every existing entry, because both
    prefix the key.  Entries whose stored key line does not exactly
    match the probe key (hash collision, truncated file, foreign
    file) are treated as misses. *)

val engine_version : int
(** Currently 3 (full-quantile-ladder summaries).  Entries written by
    an older engine fail the magic-line check and read as plain
    misses: the point is recomputed and the entry rewritten — never
    an error, and never a [cache_errors] increment. *)

val default_dir : string
(** [results/.cache]. *)

val key : Fatnet_scenario.Scenario.t -> string
(** The canonical key of a (fixed-load) scenario.  Trace sinks are
    run-time plumbing outside the scenario, hence never part of the
    key — callers must bypass the cache when a trace sink is attached
    (the cache cannot replay side effects). *)

type entry = {
  summary : Fatnet_stats.Summary.t;
  ci_half_width : float;
  replications : int;
  events : int;
}

val find : dir:string -> ?faults:Fault.t -> string -> entry option
(** Look the key up in [dir]; [None] on miss, unreadable file, or
    stored-key mismatch.  [faults] (default {!Fault.none}) may inject
    a failure at the {!Fault.Cache_find} site. *)

val store : dir:string -> ?faults:Fault.t -> string -> entry -> unit
(** Persist (atomically: write to a temp file, then rename).  Creates
    [dir] if needed.  On any failure the temp file is removed before
    the exception propagates — a failed store never leaks [.tmp]
    garbage.  [faults] may inject failures at the
    {!Fault.Cache_store} (entry) and {!Fault.Tmp_rename} (between
    write and rename) sites. *)

val gc_tmp : dir:string -> int
(** Remove orphaned [.tmp] files (older than 15 minutes — debris from
    crashed runs; fresh ones may belong to a live writer) and return
    how many were removed.  Never raises; unreadable directories and
    unremovable files count as zero. *)

val clear : dir:string -> unit
(** Remove every cache entry under [dir], plus any stale [.tmp]
    debris.  Fresh [.tmp] files are left alone: they may belong to a
    concurrent writer, and removing one would race that writer's
    rename into a [Sys_error]. *)
