(** Persistent on-disk cache of sweep point results.

    A sweep point is fully determined by its configuration — the
    system and message parameters, the generation rate, the runner
    protocol (batch sizes, seed, destination pattern, C/D mode,
    engine path) and the replication rule — and the simulator is
    deterministic, so the result can be keyed by a canonical
    rendering of that configuration and reused forever.

    Keys render every float as the hex of its IEEE-754 bits and
    include {!engine_version}; stored summaries round-trip through
    the same bit-exact encoding, so a cache hit is bit-identical to
    recomputation.  Bumping {!engine_version} (on any change to
    simulator semantics, the replication rule, or the storage format)
    invalidates every existing entry, because the version is part of
    the key.  Entries whose stored key line does not exactly match
    the probe key (hash collision, truncated file, foreign file) are
    treated as misses. *)

val engine_version : int

val default_dir : string
(** [results/.cache]. *)

val key :
  system:Fatnet_model.Params.system ->
  message:Fatnet_model.Params.message ->
  lambda_g:float ->
  config:Fatnet_sim.Runner.config ->
  replication:Fatnet_sim.Runner.replication_spec option ->
  string
(** The canonical key.  [config.trace] is deliberately not part of
    the key — callers must bypass the cache when a trace sink is
    attached (the cache cannot replay side effects). *)

type entry = {
  summary : Fatnet_stats.Summary.t;
  ci_half_width : float;
  replications : int;
  events : int;
}

val find : dir:string -> string -> entry option
(** Look the key up in [dir]; [None] on miss, unreadable file, or
    stored-key mismatch. *)

val store : dir:string -> string -> entry -> unit
(** Persist (atomically: write to a temp file, then rename).
    Creates [dir] if needed. *)

val clear : dir:string -> unit
(** Remove every cache entry under [dir]. *)
