(** Persistent on-disk cache of sweep point results.

    A sweep point is a fixed-load {!Fatnet_scenario.Scenario.t}, and a
    scenario fully determines its result (the simulator is
    deterministic), so the cache keys on the scenario's own canonical
    identity — {!Fatnet_scenario.Scenario.canonical}, the rendering
    behind {!Fatnet_scenario.Scenario.hash} — prefixed with
    {!engine_version} and the scenario version.

    The canonical rendering is bit-exact (IEEE-754 bit hex floats)
    and excludes the scenario's [name]/[title], so a cache hit is
    bit-identical to recomputation and relabeling never invalidates.
    Bumping {!engine_version} (on any change to simulator semantics,
    the replication rule, or the storage format) or
    {!Fatnet_scenario.Scenario.scenario_version} (on any change to a
    field's meaning) invalidates every existing entry, because both
    prefix the key.  Entries whose stored key line does not exactly
    match the probe key (hash collision, truncated file, foreign
    file) are treated as misses. *)

val engine_version : int

val default_dir : string
(** [results/.cache]. *)

val key : Fatnet_scenario.Scenario.t -> string
(** The canonical key of a (fixed-load) scenario.  Trace sinks are
    run-time plumbing outside the scenario, hence never part of the
    key — callers must bypass the cache when a trace sink is attached
    (the cache cannot replay side effects). *)

type entry = {
  summary : Fatnet_stats.Summary.t;
  ci_half_width : float;
  replications : int;
  events : int;
}

val find : dir:string -> string -> entry option
(** Look the key up in [dir]; [None] on miss, unreadable file, or
    stored-key mismatch. *)

val store : dir:string -> string -> entry -> unit
(** Persist (atomically: write to a temp file, then rename).
    Creates [dir] if needed. *)

val clear : dir:string -> unit
(** Remove every cache entry under [dir]. *)
