let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with
    | Sys_error _
      when (match Sys.is_directory dir with d -> d | exception Sys_error _ -> false) ->
        ()
  end
