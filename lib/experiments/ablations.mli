(** Ablation studies for the design choices DESIGN.md calls out: how
    much each contested equation reading moves the model, judged
    against the same simulation. *)

type t = {
  id : string;
  description : string;
  run : steps:int -> protocol:Fatnet_scenario.Scenario.protocol -> Fatnet_report.Table.t;
      (** Produce a results table; [steps] latency points per
          setting, each simulated under [protocol]. *)
}

val lambda_i2 : t
(** Eq. (23) primary vs. size-scaled reading: saturation rate and
    mid-load latency under both, for both Table-1 organizations. *)

val relaxing_factor : t
(** Eq. (28) δ applied vs. ignored. *)

val source_variance : t
(** Eq. (17) Draper–Ghosh variance vs. M/D/1 source queues. *)

val source_rate : t
(** Eqs. (18)/(31) per-node vs. literal network-total arrival rates
    in the source queues. *)

val cd_mode : t
(** Simulator C/D hand-off: cut-through vs. store-and-forward, versus
    the model. *)

val sim_engine : t
(** Flit-level engine vs. the message-level approximation
    ({!Fatnet_sim.Worm_approx}) vs. the model. *)

val all : t list

val find : string -> t option
