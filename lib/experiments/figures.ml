module Presets = Fatnet_model.Presets
module Series = Fatnet_report.Series

type curve = {
  label : string;
  system : Fatnet_model.Params.system;
  message : Fatnet_model.Params.message;
  simulate : bool;
}

type spec = { id : string; title : string; lambda_max : float; curves : curve list }

(* Figs. 3-6: one curve per flit size, each validated by simulation. *)
let validation ~id ~title ~system ~m_flits ~lambda_max =
  let curve d_m =
    {
      label = Printf.sprintf "Lm=%.0f" d_m;
      system;
      message = Presets.message ~m_flits ~d_m_bytes:d_m;
      simulate = true;
    }
  in
  { id; title; lambda_max; curves = [ curve 256.; curve 512. ] }

let fig3 =
  validation ~id:"fig3" ~title:"N=1120, m=8, M=32" ~system:Presets.org_1120 ~m_flits:32
    ~lambda_max:5e-4

let fig4 =
  validation ~id:"fig4" ~title:"N=1120, m=8, M=64" ~system:Presets.org_1120 ~m_flits:64
    ~lambda_max:2.5e-4

let fig5 =
  validation ~id:"fig5" ~title:"N=544, m=4, M=32" ~system:Presets.org_544 ~m_flits:32
    ~lambda_max:1e-3

let fig6 =
  validation ~id:"fig6" ~title:"N=544, m=4, M=64" ~system:Presets.org_544 ~m_flits:64
    ~lambda_max:5e-4

(* Fig. 7: model-only ICN2 bandwidth study, M=128, d_m=256. *)
let fig7 =
  let message = Presets.message ~m_flits:128 ~d_m_bytes:256. in
  let curve label system = { label; system; message; simulate = false } in
  {
    id = "fig7";
    title = "ICN2 bandwidth +20%, M=128, Lm=256";
    lambda_max = 3e-4;
    curves =
      [
        curve "N=544, Base" Presets.org_544;
        curve "N=544, Increased" (Presets.with_icn2_bandwidth_scaled Presets.org_544 ~factor:1.2);
        curve "N=1120, Base" Presets.org_1120;
        curve "N=1120, Increased"
          (Presets.with_icn2_bandwidth_scaled Presets.org_1120 ~factor:1.2);
      ];
  }

let all = [ fig3; fig4; fig5; fig6; fig7 ]

let find id = List.find_opt (fun s -> s.id = id) all

let lambda_points spec steps =
  List.init steps (fun i ->
      spec.lambda_max *. float_of_int (i + 1) /. float_of_int steps)

let model_series ?variants spec ~steps =
  List.map
    (fun c ->
      let points =
        List.map
          (fun lambda_g ->
            ( lambda_g,
              Fatnet_model.Latency.mean ?variants ~system:c.system ~message:c.message
                ~lambda_g () ))
          (lambda_points spec steps)
      in
      (* Saturated points are kept (y = infinity): consumers decide
         whether to render them as "sat." or drop them. *)
      Series.create ~name:("model " ^ c.label) ~points)
    spec.curves

(* The whole figure goes through the orchestrator as one batch —
   every (curve, λ) point — so the scheduler can balance the cheap
   light-load points of one curve against the expensive
   near-saturation points of another. *)
let sim_series_stats ?config ?domains ?engine spec ~steps =
  let engine =
    match engine with
    | Some e -> e
    | None ->
        {
          Sweep_engine.domains;
          cache = Sweep_engine.No_cache;
          base = Option.value config ~default:Fatnet_sim.Runner.quick_config;
          replication = None;
        }
  in
  let curves = List.filter (fun c -> c.simulate) spec.curves in
  let lambdas = lambda_points spec steps in
  let points =
    List.concat_map
      (fun c ->
        List.map
          (fun lambda_g ->
            { Sweep_engine.system = c.system; message = c.message; lambda_g })
          lambdas)
      curves
  in
  let results, stats = Sweep_engine.run ~config:engine points in
  let series =
    List.mapi
      (fun k c ->
        let points =
          List.mapi
            (fun j lambda_g ->
              let r = results.((k * steps) + j) in
              (lambda_g, r.Sweep_engine.summary.Fatnet_stats.Summary.mean))
            lambdas
        in
        Series.create ~name:("sim " ^ c.label) ~points)
      curves
  in
  (series, stats)

let sim_series ?config ?domains ?engine spec ~steps =
  fst (sim_series_stats ?config ?domains ?engine spec ~steps)

(* The pre-engine fan-out (fixed protocol per point, atomic-counter
   scheduling, no caching), kept as the baseline the sweep benchmarks
   compare the orchestrator against. *)
let sim_series_naive ?(config = Fatnet_sim.Runner.quick_config) ?domains spec ~steps =
  spec.curves
  |> List.filter (fun c -> c.simulate)
  |> List.map (fun c ->
         let points =
           Parallel.map ?domains
             (fun lambda_g ->
               ( lambda_g,
                 Fatnet_sim.Runner.mean_latency ~config ~system:c.system ~message:c.message
                   ~lambda_g () ))
             (lambda_points spec steps)
         in
         Series.create ~name:("sim " ^ c.label) ~points)

let light_load_error ?(config = Fatnet_sim.Runner.quick_config) spec =
  spec.curves
  |> List.filter (fun c -> c.simulate)
  |> List.map (fun c ->
         (* "Light traffic" is relative to each curve's own
            saturation point, not the figure's x range (the Lm=512
            curves saturate halfway across the axis). *)
         let saturation =
           Fatnet_model.Latency.saturation_rate ~system:c.system ~message:c.message ()
         in
         let err frac =
           let lambda_g = frac *. saturation in
           let model =
             Fatnet_model.Latency.mean ~system:c.system ~message:c.message ~lambda_g ()
           in
           let sim =
             Fatnet_sim.Runner.mean_latency ~config ~system:c.system ~message:c.message
               ~lambda_g ()
           in
           Fatnet_numerics.Float_utils.relative_error ~expected:sim ~actual:model
         in
         (c.label, (err 0.1 +. err 0.25) /. 2.))
