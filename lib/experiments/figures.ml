module Params = Fatnet_model.Params
module Presets = Fatnet_model.Presets
module Scenario = Fatnet_scenario.Scenario
module Runner = Fatnet_sim.Runner
module Series = Fatnet_report.Series
module Summary = Fatnet_stats.Summary

type curve = { label : string; scenario : Scenario.t; simulate : bool }
type spec = { id : string; title : string; lambda_max : float; curves : curve list }

let default_steps = 6

(* Figs. 3-6 are all one shape — a base scenario fanned out over the
   paper's two flit sizes — so the in-code presets and the checked-in
   [examples/*.scn] files go through the same constructor and are
   definitionally equal (pinned by the integration tests). *)
let of_scenario (base : Scenario.t) =
  let lambda_max =
    match base.Scenario.load with
    | Scenario.Linear { lambda_max; _ } -> lambda_max
    | Scenario.Fixed l -> l
  in
  let curve d_m =
    {
      label = Printf.sprintf "Lm=%.0f" d_m;
      scenario =
        {
          base with
          Scenario.message = { base.Scenario.message with Params.flit_bytes = d_m };
        };
      simulate = true;
    }
  in
  {
    id = base.Scenario.name;
    title = base.Scenario.title;
    lambda_max;
    curves = [ curve 256.; curve 512. ];
  }

let to_scenario spec =
  match spec.curves with
  | [ a; b ]
    when a.simulate && b.simulate
         && a.scenario.Scenario.message.Params.flit_bytes = 256.
         && b.scenario.Scenario.message.Params.flit_bytes = 512.
         && b.scenario
            = { a.scenario with Scenario.message = b.scenario.Scenario.message }
         && b.scenario.Scenario.message.Params.length_flits
            = a.scenario.Scenario.message.Params.length_flits
         && a.scenario.Scenario.name = spec.id
         && a.scenario.Scenario.title = spec.title ->
      Some a.scenario
  | _ -> None

let validation ~id ~title ~system ~m_flits ~lambda_max =
  of_scenario
    (Scenario.make ~name:id ~title ~system
       ~message:(Presets.message ~m_flits ~d_m_bytes:256.)
       ~load:(Scenario.Linear { lambda_max; steps = default_steps })
       ())

let fig3 =
  validation ~id:"fig3" ~title:"N=1120, m=8, M=32" ~system:Presets.org_1120 ~m_flits:32
    ~lambda_max:5e-4

let fig4 =
  validation ~id:"fig4" ~title:"N=1120, m=8, M=64" ~system:Presets.org_1120 ~m_flits:64
    ~lambda_max:2.5e-4

let fig5 =
  validation ~id:"fig5" ~title:"N=544, m=4, M=32" ~system:Presets.org_544 ~m_flits:32
    ~lambda_max:1e-3

let fig6 =
  validation ~id:"fig6" ~title:"N=544, m=4, M=64" ~system:Presets.org_544 ~m_flits:64
    ~lambda_max:5e-4

(* Fig. 7: model-only ICN2 bandwidth study, M=128, d_m=256. *)
let fig7 =
  let title = "ICN2 bandwidth +20%, M=128, Lm=256" in
  let message = Presets.message ~m_flits:128 ~d_m_bytes:256. in
  let lambda_max = 3e-4 in
  let curve label system =
    {
      label;
      scenario =
        Scenario.make ~name:"fig7" ~title ~system ~message
          ~load:(Scenario.Linear { lambda_max; steps = default_steps })
          ();
      simulate = false;
    }
  in
  {
    id = "fig7";
    title;
    lambda_max;
    curves =
      [
        curve "N=544, Base" Presets.org_544;
        curve "N=544, Increased" (Presets.with_icn2_bandwidth_scaled Presets.org_544 ~factor:1.2);
        curve "N=1120, Base" Presets.org_1120;
        curve "N=1120, Increased"
          (Presets.with_icn2_bandwidth_scaled Presets.org_1120 ~factor:1.2);
      ];
  }

let all = [ fig3; fig4; fig5; fig6; fig7 ]

let find id = List.find_opt (fun s -> s.id = id) all

let lambda_points spec steps =
  List.init steps (fun i ->
      spec.lambda_max *. float_of_int (i + 1) /. float_of_int steps)

let model_series ?variants spec ~steps =
  List.map
    (fun c ->
      let s =
        match variants with
        | Some v -> { c.scenario with Scenario.variants = v }
        | None -> c.scenario
      in
      (* One workspace per curve: the λ-invariant model terms are
         computed once and each grid point is one allocation-free
         [Eval.mean_into] — bit-identical to [Scenario.model_mean]. *)
      let ws = Scenario.evaluator s in
      let points =
        List.map
          (fun lambda_g -> (lambda_g, Fatnet_model.Eval.mean_into ws ~lambda_g))
          (lambda_points spec steps)
      in
      (* Saturated points are kept (y = infinity): consumers decide
         whether to render them as "sat." or drop them. *)
      Series.create ~name:("model " ^ c.label) ~points)
    spec.curves

(* One fixed-load scenario per (curve, λ): the curve's own scenario
   with the sweep protocol/replication applied and the load pinned. *)
let point_scenario ~protocol ?replication c lambda_g =
  let s = { c.scenario with Scenario.protocol } in
  let s =
    match replication with
    | Some r -> { s with Scenario.replication = Some r }
    | None -> s
  in
  Scenario.at s lambda_g

let default_engine =
  { Sweep_engine.default_config with cache = Sweep_engine.No_cache }

(* The whole figure goes through the orchestrator as one batch —
   every (curve, λ) point — so the scheduler can balance the cheap
   light-load points of one curve against the expensive
   near-saturation points of another. *)
let sim_summaries_stats ?(protocol = Scenario.quick_protocol) ?replication
    ?(engine = default_engine) spec ~steps =
  let curves = List.filter (fun c -> c.simulate) spec.curves in
  let lambdas = lambda_points spec steps in
  let points =
    List.concat_map
      (fun c -> List.map (point_scenario ~protocol ?replication c) lambdas)
      curves
  in
  let outcome = Sweep_engine.run ~config:engine points in
  (* Figures are dense grids: a hole would silently distort a curve,
     so quarantined points are an error here. *)
  let results = Sweep_engine.results_exn outcome in
  let stats = outcome.Sweep_engine.stats in
  let per_curve =
    List.mapi
      (fun k c ->
        ( c.label,
          List.mapi
            (fun j lambda_g ->
              (lambda_g, results.((k * steps) + j).Sweep_engine.summary))
            lambdas ))
      curves
  in
  (per_curve, stats)

let mean_series_of_summaries per_curve =
  List.map
    (fun (label, pts) ->
      Series.create ~name:("sim " ^ label)
        ~points:(List.map (fun (l, s) -> (l, s.Summary.mean)) pts))
    per_curve

(* The ladder names match the simulator's P² estimators; anything off
   the ladder would raise in [Summary.quantile] anyway. *)
let quantile_name q =
  if q = 0.5 then "p50"
  else if q = 0.9 then "p90"
  else if q = 0.99 then "p99"
  else if q = 0.999 then "p999"
  else Printf.sprintf "p%g" (100. *. q)

let quantile_id spec ~q = spec.id ^ "-" ^ quantile_name q

let quantile_series_of_summaries ~q per_curve =
  List.map
    (fun (label, pts) ->
      Series.create
        ~name:(Printf.sprintf "sim %s %s" (quantile_name q) label)
        ~points:(List.map (fun (l, s) -> (l, Summary.quantile s q)) pts))
    per_curve

let sim_series_stats ?protocol ?replication ?engine spec ~steps =
  let per_curve, stats =
    sim_summaries_stats ?protocol ?replication ?engine spec ~steps
  in
  (mean_series_of_summaries per_curve, stats)

let sim_series ?protocol ?replication ?engine spec ~steps =
  fst (sim_series_stats ?protocol ?replication ?engine spec ~steps)

let sim_quantile_series_stats ?protocol ?replication ?engine spec ~steps ~q =
  let per_curve, stats =
    sim_summaries_stats ?protocol ?replication ?engine spec ~steps
  in
  (quantile_series_of_summaries ~q per_curve, stats)

(* The model side of the tail family: one {!Fatnet_model.Tail} fit
   per (curve, λ), quantile read off the fitted mixture.  Mirrors
   [model_series]'s shape so the two overlay in one CSV. *)
let model_quantile_series ?variants spec ~steps ~q =
  List.map
    (fun c ->
      let s =
        match variants with
        | Some v -> { c.scenario with Scenario.variants = v }
        | None -> c.scenario
      in
      let ws = Scenario.evaluator s in
      let points =
        List.map
          (fun lambda_g -> (lambda_g, Fatnet_model.Eval.quantile ws ~lambda_g ~q))
          (lambda_points spec steps)
      in
      Series.create
        ~name:(Printf.sprintf "model %s %s" (quantile_name q) c.label)
        ~points)
    spec.curves

(* The pre-engine fan-out (fixed protocol per point, atomic-counter
   scheduling, no caching), kept as the baseline the sweep benchmarks
   compare the orchestrator against. *)
let sim_series_naive ?(protocol = Scenario.quick_protocol) ?domains spec ~steps =
  spec.curves
  |> List.filter (fun c -> c.simulate)
  |> List.map (fun c ->
         let points =
           Parallel.map ?domains
             (fun lambda_g ->
               ( lambda_g,
                 (Runner.run_scenario ~lambda_g { c.scenario with Scenario.protocol })
                   .Runner.latency
                   .Summary.mean ))
             (lambda_points spec steps)
         in
         Series.create ~name:("sim " ^ c.label) ~points)

let light_load_error ?(protocol = Scenario.quick_protocol) spec =
  spec.curves
  |> List.filter (fun c -> c.simulate)
  |> List.map (fun c ->
         let s = { c.scenario with Scenario.protocol } in
         (* "Light traffic" is relative to each curve's own
            saturation point, not the figure's x range (the Lm=512
            curves saturate halfway across the axis). *)
         let saturation = Scenario.saturation_rate s in
         let ws = Scenario.evaluator s in
         let err frac =
           let lambda_g = frac *. saturation in
           let model = Fatnet_model.Eval.mean_into ws ~lambda_g in
           let sim = (Runner.run_scenario ~lambda_g s).Runner.latency.Summary.mean in
           Fatnet_numerics.Float_utils.relative_error ~expected:sim ~actual:model
         in
         (c.label, (err 0.1 +. err 0.25) /. 2.))
