(** A simulated network instance: an m-port n-tree with per-channel
    flit times and, optionally, concentrator/dispatcher ports on its
    root switches.

    The paper connects each cluster's ECN1 to the global ICN2 through
    "a set of Concentrators/Dispatchers ... which combine message
    traffic" — realised here as one C/D port per ECN1 root switch
    (so egress traffic spreads over the fabric instead of funnelling
    through a single link, matching the per-channel rates of
    Eq. (24)).  An egress message ascends from its source to a chosen
    root port; an ingress message is injected at a root port and
    descends to its destination. *)

type t

type place =
  | Leaf of int     (** a processing node, [0 .. node_count-1] *)
  | Aux_port of int (** a C/D port, [0 .. aux_port_count-1], one per
                        root switch *)

val create :
  m:int -> n:int -> node_hop_time:float -> switch_hop_time:float -> with_aux:bool -> t
(** [node_hop_time] is [t_cn] (per flit on node–switch links,
    including the C/D port links); [switch_hop_time] is [t_cs]. *)

val tree : t -> Fatnet_topology.Mport_tree.t

val node_count : t -> int

val aux_port_count : t -> int
(** Number of C/D ports ([(m/2)^(n-1)], the root-switch count); 0
    without aux ports. *)

val channel_count : t -> int
(** Tree channels plus two per aux port (injection then ejection, in
    port order, at the end of the id space). *)

val hop_time : t -> int -> float
(** Per-flit transfer time of a channel. *)

val is_ejection : t -> int -> bool
(** True for channels that deliver into a node or a C/D port (their
    receiving buffer is an always-available sink). *)

val channel_level : t -> int -> int
(** Tree tier a channel serves: 0 for node–switch links (injection
    and ejection), [l] in [[1, n-1]] for switch–switch channels
    between levels [l] and [l+1], [n] for root-level and C/D port
    channels — the per-level aggregation key of the telemetry
    layer's utilisation histograms. *)

val ascent_choices : t -> int
(** Up-path choices for leaf-to-leaf routes (see
    {!Fatnet_topology.Mport_tree.ascent_choices}). *)

val route : ?choice:int -> t -> src:place -> dst:place -> int array
(** Wormhole route between two places.  For leaf-to-leaf routes,
    [choice] selects among the equivalent ascent paths (default:
    deterministic D-mod-k); port routes ignore it (the port pins the
    ascent).
    @raise Invalid_argument for port-to-port routes, equal leaves, or
    ports on a network built without aux. *)
