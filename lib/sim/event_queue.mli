(** Event calendar for the discrete-event simulator: a
    structure-of-arrays 4-ary min-heap (unboxed time array, parallel
    seq/payload arrays), so pushes allocate nothing beyond amortized
    array growth.

    Events are ordered by time, ties broken by insertion order so
    runs are deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push :
  ?order:float ->
  ?order2:float ->
  ?order3:float ->
  ?rank:float ->
  'a t ->
  time:float ->
  'a ->
  unit
(** Schedule an event.  [time] must be finite and non-negative.

    Equal-time events pop in ascending [order], then ascending
    [order2], then ascending [order3], then ascending [rank], then
    push (FIFO) order; [order] defaults to [time] and
    [order2]/[order3]/[rank] to [0.], which for clients that push
    chronologically reduces to plain FIFO tie-breaking.  A client
    that schedules an event {e before} the moment it would naturally
    have been pushed (the wormhole streaming fast path) passes the
    natural push time as [order] — and, going one pusher up the
    causal chain per level, the natural pusher's own order as
    [order2] and the pusher's pusher's order as [order3] — so the
    event still pops in exactly the position the chronological push
    would have given it.  [rank] is a stable client-chosen id (the
    wormhole engine uses the worm's creation serial): events whose
    order keys tie to full depth — causal chains in exact float
    lockstep — resolve by [rank] rather than push order, which an
    out-of-chronology scheduler can compute where it cannot know push
    order. *)

val push_keyed :
  'a t ->
  time:float ->
  order:float ->
  order2:float ->
  order3:float ->
  rank:float ->
  'a ->
  unit
(** [push] with every key required: the hot path of a simulator calls
    this directly so no option wrapper is allocated per push. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val pop_exn : 'a t -> 'a
(** Remove and return the earliest event's payload without allocating;
    its time is read with [popped_time].  Raises [Invalid_argument]
    when empty — guard with [is_empty]. *)

val popped_time : 'a t -> float
(** Time of the most recent [pop_exn] ([nan] before the first). *)

val peek_time : 'a t -> float option
(** Time of the earliest event, without removing it. *)
