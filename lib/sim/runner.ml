module Rng = Fatnet_prng.Rng
module Welford = Fatnet_stats.Welford
module Quantile = Fatnet_stats.Quantile
module Summary = Fatnet_stats.Summary
module Metrics = Fatnet_obs.Metrics
module Trace = Fatnet_obs.Trace

module Scenario = Fatnet_scenario.Scenario

type cd_mode = Scenario.cd_mode = Cut_through | Store_and_forward

type trace_record = {
  serial : int;
  src : int;
  dst : int;
  generated_at : float;
  delivered_at : float;
  is_intra : bool;
  measured : bool;
}

type config = {
  warmup : int;
  measured : int;
  drain : int;
  seed : int64;
  destination : Fatnet_workload.Destination.t;
  cd_mode : cd_mode;
  trace : (trace_record -> unit) option;
  streaming : bool;
  metrics : Metrics.t;
}

let default_config =
  {
    warmup = 10_000;
    measured = 100_000;
    drain = 10_000;
    seed = 0x0F17EE5L;
    destination = Fatnet_workload.Destination.Uniform;
    cd_mode = Cut_through;
    trace = None;
    streaming = true;
    metrics = Metrics.disabled;
  }

let quick_config = { default_config with warmup = 1_000; measured = 10_000; drain = 1_000 }

type result = {
  latency : Summary.t;
  intra_latency : Summary.t;
  inter_latency : Summary.t;
  ci95_half_width : float;
  generated : int;
  delivered : int;
  end_time : float;
  events : int;
  wall_seconds : float;
  bottlenecks : (string * float) list;
}

let summarize w p50 p90 p99 p999 =
  Summary.of_welford w ~p50:(Quantile.estimate p50) ~p90:(Quantile.estimate p90)
    ~p99:(Quantile.estimate p99) ~p999:(Quantile.estimate p999)

let run ?(config = default_config) ~system ~message ~lambda_g () =
  if not (lambda_g > 0.) then invalid_arg "Runner.run: lambda_g must be positive";
  if config.warmup < 0 || config.measured < 1 || config.drain < 0 then
    invalid_arg "Runner.run: invalid batch sizes";
  (* One span per run with three sequential phase children — setup
     (network construction and node-stream scheduling), events (the
     calendar drain), finalize (bottlenecks and metrics export).
     Spans observe only: no branch below depends on the tracer. *)
  let tr = Trace.ambient () in
  Trace.in_span tr "sim.run" @@ fun run_sp ->
  Trace.attr_float run_sp "lambda_g" lambda_g;
  let setup_sp = Trace.start tr "sim.setup" in
  let wall_start = Clock.now_ns () in
  let net = System_net.create ~system ~message in
  let space = System_net.space net in
  let total_nodes = Fatnet_workload.Node_space.total_nodes space in
  let engine =
    Wormhole.create ~streaming:config.streaming
      ~channel_count:(System_net.channel_count net)
      ~hop_time:(System_net.hop_time net)
      ~is_ejection:(System_net.is_ejection net)
      ()
  in
  let rng = Rng.create ~seed:config.seed () in
  let quota = config.warmup + config.measured + config.drain in
  let generated = ref 0 in
  let delivered = ref 0 in
  let all = Welford.create () and intra = Welford.create () and inter = Welford.create () in
  let p50 = Quantile.create ~q:0.5
  and p90 = Quantile.create ~q:0.9
  and p99 = Quantile.create ~q:0.99
  and p999 = Quantile.create ~q:0.999 in
  let batches =
    Fatnet_stats.Batch_means.create ~batch_size:(max 1 (config.measured / 30))
  in
  let arrival = Fatnet_workload.Arrival.Poisson lambda_g in
  let mreg = config.metrics in
  let metrics_on = Metrics.is_enabled mreg in
  let have_trace = config.trace <> None in
  (* In-flight and phase tracking cost a few stores per *message*
     (never per event), so they stay on unconditionally. *)
  let live = ref 0 in
  let peak_live = ref 0 in
  let warmup_end = ref nan in
  let measure_end = ref nan in
  let cd_backlog =
    Metrics.histogram mreg "sim_cd_backlog_flits" ~lo:0. ~hi:64. ~bins:16
      ~help:"Flits absorbed by a C/D but not yet delivered downstream (buffer + in flight), sampled at each message's tail-flit hand-off"
  in
  (* Simultaneous deliveries have no intrinsic order: which of two
     unrelated worms' equal-time arrivals pops first is a calendar
     tie-break detail.  The running statistics are add-order-sensitive,
     so records are staged per timestamp and committed in
     message-serial order, making every result independent of that
     detail. *)
  let pending = ref [] in
  let pending_time = ref Float.neg_infinity in
  let commit (r : trace_record) =
    (match config.trace with Some sink -> sink r | None -> ());
    if r.measured then begin
      let l = r.delivered_at -. r.generated_at in
      delivered := !delivered + 1;
      Welford.add all l;
      Quantile.add p50 l;
      Quantile.add p90 l;
      Quantile.add p99 l;
      Quantile.add p999 l;
      Fatnet_stats.Batch_means.add batches l;
      Welford.add (if r.is_intra then intra else inter) l
    end
  in
  (* Delivery times are non-decreasing, so equal-time records are
     contiguous and one pending batch suffices. *)
  let flush_pending () =
    match !pending with
    | [] -> ()
    | [ r ] ->
        pending := [];
        commit r
    | rs ->
        pending := [];
        List.iter commit (List.sort (fun a b -> compare a.serial b.serial) rs)
  in
  (* Launch one message: build its worm segments and chain them
     through the C/Ds (store-and-forward). *)
  let launch src t0 =
    let serial = !generated in
    generated := !generated + 1;
    let dst = Fatnet_workload.Destination.draw config.destination space rng ~src in
    let ci, _ = Fatnet_workload.Node_space.of_global space src in
    let cj, _ = Fatnet_workload.Node_space.of_global space dst in
    let pick_port c =
      let ports = System_net.cd_port_count net c in
      if ports <= 1 then 0 else Rng.int rng ports
    in
    let icn2_choice =
      let choices = System_net.icn2_ascent_choices net in
      if choices <= 1 then 0 else Rng.int rng choices
    in
    let segs =
      System_net.segments net ~src ~dst ~egress_port:(pick_port ci)
        ~ingress_port:(pick_port cj) ~icn2_choice
    in
    let measured_msg = serial >= config.warmup && serial < config.warmup + config.measured in
    let is_intra = List.length segs = 1 in
    let flits = message.Fatnet_model.Params.length_flits in
    incr live;
    if !live > !peak_live then peak_live := !live;
    if serial = config.warmup then warmup_end := t0;
    if serial = config.warmup + config.measured then measure_end := t0;
    (* Unmeasured messages with no trace sink attached need no
       [trace_record] at all: they never reach the statistics, so
       skipping the staging avoids one record allocation per warm-up
       and drain message. *)
    let record =
      if not (measured_msg || have_trace) then fun (_ : float) -> live := !live - 1
      else fun finish ->
        live := !live - 1;
        if finish <> !pending_time then begin
          flush_pending ();
          pending_time := finish
        end;
        pending :=
          {
            serial;
            src;
            dst;
            generated_at = t0;
            delivered_at = finish;
            is_intra;
            measured = measured_msg;
          }
          :: !pending
    in
    match (segs, config.cd_mode) with
    | [ one ], _ -> Wormhole.submit engine ~time:t0 ~route:one ~flits ~on_delivered:record ()
    | [ s1; s2; s3 ], Cut_through ->
        (* Each C/D absorbs the incoming worm and re-injects flits as
           they arrive.  When the downstream worm is blocked (queued
           for injection or stalled in the fabric), arriving flits
           accumulate in the C/D buffer and later stream out at full
           downstream wire rate — so channel holding times compress
           towards M·t_cs of the local network exactly when the load
           is high, which is what keeps the saturation point at the
           model's C/D bound (Eq. 37). *)
        let w3 = Wormhole.submit_gated engine ~route:s3 ~flits ~on_delivered:record () in
        (* The forwarding closure is chosen once per segment: the
           metrics-off variant is exactly the bare hand-off, so the
           per-flit fast path pays nothing when telemetry is off.
           With telemetry on, the backlog is sampled once per message
           (at the tail flit's hand-off, after the release) rather
           than per flit — per-flit observation costs a few percent
           of total throughput, per-message is noise. *)
        let forward downstream =
          if not metrics_on then fun j _ -> Wormhole.release_flit engine downstream j
          else fun j _ ->
            Wormhole.release_flit engine downstream j;
            if j + 1 = flits then
              Metrics.observe cd_backlog
                (float_of_int (flits - Wormhole.delivered_flits downstream))
        in
        let w2 =
          Wormhole.submit_gated engine ~route:s2 ~flits ~on_flit_delivered:(forward w3)
            ~on_delivered:ignore ()
        in
        Wormhole.submit engine ~time:t0 ~route:s1 ~flits ~on_flit_delivered:(forward w2)
          ~on_delivered:ignore ()
    | [ s1; s2; s3 ], Store_and_forward ->
        (* Whole messages queue at each C/D before moving on. *)
        Wormhole.submit engine ~time:t0 ~route:s1 ~flits
          ~on_delivered:(fun t1 ->
            Wormhole.submit engine ~time:t1 ~route:s2 ~flits
              ~on_delivered:(fun t2 ->
                Wormhole.submit engine ~time:t2 ~route:s3 ~flits ~on_delivered:record ())
              ())
          ()
    | _ -> assert false
  in
  (* Independent Poisson stream per node; each stream stops once the
     global generation quota is reached. *)
  let rec node_stream node time =
    if !generated < quota then begin
      launch node time;
      schedule_next node time
    end
  and schedule_next node time =
    let dt = Fatnet_workload.Arrival.next_interval arrival rng in
    Wormhole.schedule engine ~time:(time +. dt) (fun t -> node_stream node t)
  in
  for node = 0 to total_nodes - 1 do
    schedule_next node 0.
  done;
  Trace.finish setup_sp;
  let events_sp = Trace.start tr "sim.events" in
  Wormhole.run engine;
  flush_pending ();
  Trace.attr_int events_sp "events" (Wormhole.events_processed engine);
  Trace.finish events_sp;
  let finalize_sp = Trace.start tr "sim.finalize" in
  let end_time = Wormhole.now engine in
  (* Phase ends are stamped by the first message of the next phase, so
     a protocol with [drain = 0] (or [measured = 0]) never generates
     the stamping serial and the gauge would otherwise export NaN:
     the phase then ends where the run does. *)
  if Float.is_nan !warmup_end then warmup_end := end_time;
  if Float.is_nan !measure_end then measure_end := end_time;
  (* The five busiest channels point at the saturating resource. *)
  let bottlenecks =
    if end_time <= 0. then []
    else begin
      let utils =
        Array.init (System_net.channel_count net) (fun c ->
            (Wormhole.channel_busy_time engine c /. end_time, c))
      in
      Array.sort (fun (a, _) (b, _) -> Float.compare b a) utils;
      Array.to_list (Array.sub utils 0 (min 5 (Array.length utils)))
      |> List.map (fun (u, c) -> (System_net.describe_channel net c, u))
    end
  in
  let wall_seconds = Clock.seconds_since wall_start in
  if metrics_on then begin
    (* Whole-run export: everything below runs once, after the
       calendar drained, off any hot path. *)
    let classed = Hashtbl.create 16 in
    let class_hist name ~hi ~help c =
      let network, level = System_net.channel_class net c in
      let key = (name, network, level) in
      match Hashtbl.find_opt classed key with
      | Some h -> h
      | None ->
          let h =
            Metrics.histogram mreg name ~help
              ~labels:[ ("network", network); ("level", string_of_int level) ]
              ~lo:0. ~hi ~bins:20
          in
          Hashtbl.add classed key h;
          h
    in
    if end_time > 0. then
      for c = 0 to System_net.channel_count net - 1 do
        (* Utilisation lives in [0, 1]; a sample in the overflow
           counter is a channel pegged for the entire run.  Blocking
           sums over queued heads, so a contended channel can exceed
           1x the run length. *)
        Metrics.observe
          (class_hist "sim_channel_utilization" ~hi:1.
             ~help:"Per-channel fraction of the run spent reservation-held, by network and tree level"
             c)
          (Wormhole.channel_busy_time engine c /. end_time);
        Metrics.observe
          (class_hist "sim_channel_blocked_fraction" ~hi:2.
             ~help:"Per-channel head-blocking time as a fraction of the run (sums across queued heads)"
             c)
          (Wormhole.channel_blocked_time engine c /. end_time)
      done;
    Metrics.add (Metrics.counter mreg "sim_messages_generated") !generated;
    Metrics.add (Metrics.counter mreg "sim_messages_delivered") !delivered;
    Metrics.add (Metrics.counter mreg "sim_events") (Wormhole.events_processed engine);
    Metrics.add (Metrics.counter mreg "sim_runs") 1;
    Metrics.set_max
      (Metrics.gauge mreg "sim_peak_queue_depth"
         ~help:"Deepest channel reservation queue observed")
      (float_of_int (Wormhole.peak_queue_depth engine));
    Metrics.set_max
      (Metrics.gauge mreg "sim_peak_messages_in_flight"
         ~help:"Most messages simultaneously generated but undelivered")
      (float_of_int !peak_live);
    Metrics.set (Metrics.gauge mreg "sim_phase_end" ~labels:[ ("phase", "warmup") ]) !warmup_end;
    Metrics.set (Metrics.gauge mreg "sim_phase_end" ~labels:[ ("phase", "measure") ]) !measure_end;
    Metrics.set (Metrics.gauge mreg "sim_phase_end" ~labels:[ ("phase", "drain") ]) end_time;
    Metrics.observe
      (Metrics.histogram mreg "sim_run_wall_seconds" ~lo:0. ~hi:60. ~bins:24
         ~help:"Wall-clock seconds per simulation run")
      wall_seconds
  end;
  Trace.finish finalize_sp;
  Trace.attr_int run_sp "events" (Wormhole.events_processed engine);
  Trace.attr_int run_sp "delivered" !delivered;
  {
    latency = summarize all p50 p90 p99 p999;
    (* The side summaries track moments only: their quantile slots are
       nan and render as `--`. *)
    intra_latency = Summary.of_welford intra ~p50:nan ~p90:nan ~p99:nan ~p999:nan;
    inter_latency = Summary.of_welford inter ~p50:nan ~p90:nan ~p99:nan ~p999:nan;
    ci95_half_width = Fatnet_stats.Batch_means.half_width batches ~confidence:0.95;
    generated = !generated;
    delivered = !delivered;
    end_time;
    events = Wormhole.events_processed engine;
    wall_seconds;
    bottlenecks;
  }

let mean_latency ?config ~system ~message ~lambda_g () =
  (run ?config ~system ~message ~lambda_g ()).latency.Summary.mean

(* ---- scenario entry points ---- *)

let config_of_scenario ?trace ?(metrics = Metrics.disabled) (s : Scenario.t) =
  let p = s.Scenario.protocol in
  {
    warmup = p.Scenario.warmup;
    measured = p.Scenario.measured;
    drain = p.Scenario.drain;
    seed = p.Scenario.seed;
    destination = s.Scenario.pattern;
    cd_mode = p.Scenario.cd_mode;
    trace;
    streaming = p.Scenario.streaming;
    metrics;
  }

let protocol_of_config (c : config) =
  {
    Scenario.warmup = c.warmup;
    measured = c.measured;
    drain = c.drain;
    seed = c.seed;
    cd_mode = c.cd_mode;
    streaming = c.streaming;
  }

let run_scenario ?trace ?metrics ?lambda_g (s : Scenario.t) =
  run
    ~config:(config_of_scenario ?trace ?metrics s)
    ~system:s.Scenario.system ~message:s.Scenario.message
    ~lambda_g:(Scenario.require_lambda ?lambda_g s)
    ()

(* ---- CI-adaptive independent replications ---- *)

type target = Scenario.target = Mean | Quantile of float

type replication_spec = Scenario.replication = {
  target_rel : float;
  confidence : float;
  min_reps : int;
  max_reps : int;
  target : target;
}

let default_replication =
  { target_rel = 0.05; confidence = 0.95; min_reps = 2; max_reps = 8; target = Mean }

type replicated = {
  merged : Summary.t;
  rep_means : float list;
  rep_targets : float list;
  target : target;
  replications : int;
  rep_ci_half_width : float;
  total_events : int;
  total_generated : int;
  total_delivered : int;
  rep_wall_seconds : float;
}

(* The statistic the stopping rule converges: the run's mean, or one
   of the quantile-ladder P² estimates. *)
let target_value (target : target) (r : result) =
  match target with
  | Mean -> r.latency.Summary.mean
  | Quantile q -> Summary.quantile r.latency q

(* Student-t half-width over the replication means; [nan] below two
   replications, like {!Fatnet_stats.Batch_means.half_width}. *)
let rep_half_width ~confidence means =
  match means with
  | [] | [ _ ] -> nan
  | ms ->
      let w = Welford.create () in
      List.iter (Welford.add w) ms;
      let k = Welford.count w in
      Fatnet_stats.Batch_means.t_critical ~confidence ~df:(k - 1)
      *. Welford.stddev w /. sqrt (float_of_int k)

let run_replicated ?(config = default_config) ?(replication = default_replication)
    ~system ~message ~lambda_g () =
  if replication.min_reps < 1 || replication.max_reps < replication.min_reps then
    invalid_arg "Runner.run_replicated: need 1 <= min_reps <= max_reps";
  if not (replication.target_rel > 0.) then
    invalid_arg "Runner.run_replicated: target_rel must be positive";
  (* Replication k's seed is the k-th output of a SplitMix64 stream
     seeded by the point's own seed: per-replication streams are
     deterministic, decorrelated, and independent of how many
     replications end up running or on which domain they run. *)
  let seeder = Fatnet_prng.Splitmix64.create config.seed in
  let tr = Trace.ambient () in
  let results = ref [] in
  let stop = ref false in
  while not !stop do
    let seed = Fatnet_prng.Splitmix64.next seeder in
    let r =
      Trace.in_span tr "replication" (fun sp ->
          Trace.attr_int sp "rep" (List.length !results);
          run ~config:{ config with seed } ~system ~message ~lambda_g ())
    in
    results := r :: !results;
    let k = List.length !results in
    if k >= replication.max_reps then stop := true
    else if k >= replication.min_reps then begin
      let targets = List.rev_map (target_value replication.target) !results in
      let hw = rep_half_width ~confidence:replication.confidence targets in
      let grand = List.fold_left ( +. ) 0. targets /. float_of_int k in
      let rel = if grand = 0. || Float.is_nan hw then nan else Float.abs (hw /. grand) in
      if Float.is_nan rel then ()
      else if rel <= replication.target_rel then stop := true
      else begin
        (* Futility: project the relative half-width at the cap — the
           standard error shrinks like 1/sqrt(k) and the Student-t
           critical value drops from its small-df inflation to the
           cap's — and stop now if even the full budget cannot reach
           the target, reporting the wide interval instead of burning
           the cap.  This is what keeps deeply saturated points
           (whose CI never converges) cheap. *)
        let crit df = Fatnet_stats.Batch_means.t_critical ~confidence:replication.confidence ~df in
        let projected =
          rel
          *. (crit (replication.max_reps - 1) /. crit (k - 1))
          *. sqrt (float_of_int k /. float_of_int replication.max_reps)
        in
        if projected > replication.target_rel then stop := true
      end
    end
  done;
  let reps = List.rev !results in
  let k = List.length reps in
  let rep_means = List.map (fun r -> r.latency.Summary.mean) reps in
  let rep_targets = List.map (target_value replication.target) reps in
  {
    (* Moments pool exactly, quantiles merge count-weighted — the
       documented Summary.merge semantics. *)
    merged = Summary.merge (List.map (fun r -> r.latency) reps);
    rep_means;
    rep_targets;
    target = replication.target;
    replications = k;
    rep_ci_half_width = rep_half_width ~confidence:replication.confidence rep_targets;
    total_events = List.fold_left (fun a r -> a + r.events) 0 reps;
    total_generated = List.fold_left (fun a r -> a + r.generated) 0 reps;
    total_delivered = List.fold_left (fun a r -> a + r.delivered) 0 reps;
    rep_wall_seconds = List.fold_left (fun a r -> a +. r.wall_seconds) 0. reps;
  }

let run_replicated_scenario ?trace ?metrics ?lambda_g (s : Scenario.t) =
  let replication =
    match s.Scenario.replication with Some r -> r | None -> { default_replication with min_reps = 1; max_reps = 1 }
  in
  run_replicated
    ~config:(config_of_scenario ?trace ?metrics s)
    ~replication ~system:s.Scenario.system ~message:s.Scenario.message
    ~lambda_g:(Scenario.require_lambda ?lambda_g s)
    ()
