(** Flit-level wormhole flow-control engine (Assumption 6: input
    buffering, one flit buffer per channel).

    The engine simulates worms over a flat space of directed
    channels.  A worm's head reserves channels one hop at a time;
    body flits stream behind, each flit advancing only when the
    next channel's single buffer is free (so a blocked worm holds
    one flit per channel back from its head, exactly the paper's
    flow-control assumptions).  A channel is released to the next
    waiting head when the tail flit leaves its buffer.  Heads queue
    FIFO per channel, which also realises the source queue: a newly
    submitted worm waits in its injection channel's reservation
    queue.

    Ejection channels deliver into the destination node, which is
    always ready to receive (Section 3.1), so their buffer never
    blocks.

    Calendar entries are pooled cells (steady-state simulation
    allocates no words per flit-hop), and once a worm's head holds
    its ejection channel's reservation with every flit released, the
    engine switches that worm to a closed-form streaming fast path:
    the remaining per-flit arrivals and channel releases are computed
    directly from the wormhole recurrence and scheduled as single
    events.  The fast path is exactly trace-equivalent to the
    per-flit state machine — same seed, bit-for-bit identical
    delivered-time stream (property-tested against the slow path,
    which [create ~streaming:false] preserves). *)

type t

val create :
  ?streaming:bool ->
  channel_count:int ->
  hop_time:(int -> float) ->
  is_ejection:(int -> bool) ->
  unit ->
  t
(** [hop_time c] is the per-flit transfer time of channel [c] (must
    be positive); [is_ejection c] marks sink channels.  [streaming]
    (default true) enables the closed-form fast path; disabling it
    forces the reference per-flit state machine (differential
    tests). *)

val now : t -> float
(** Current simulation time (time of the last processed event). *)

val schedule : t -> time:float -> (float -> unit) -> unit
(** Run a client callback at a future time (traffic generation,
    store-and-forward hand-offs, ...).  [time] must be at or after
    {!now}. *)

val submit :
  t ->
  time:float ->
  route:int array ->
  flits:int ->
  ?on_flit_delivered:(int -> float -> unit) ->
  on_delivered:(float -> unit) ->
  unit ->
  unit
(** Inject a worm at [time]: it joins the FIFO reservation queue of
    [route.(0)] and, once granted, streams its [flits] flits along
    [route].  [on_delivered] fires when the tail flit reaches the end
    of the last channel; [on_flit_delivered j t] fires as each flit
    [j] arrives there.  The route must be non-empty, end in an
    ejection channel, and contain no ejection channel elsewhere;
    [flits >= 1]. *)

type gated
(** A worm whose flits only become transmittable one by one — the
    downstream half of a concentrator/dispatcher hand-off.  The C/D
    absorbs the upstream worm into its (unbounded) buffer and
    re-injects flits as they arrive, so forwarding cuts through at
    the head while never outrunning the slower upstream network, and
    a blocked downstream worm never back-pressures the upstream
    network (which would create cross-network deadlock cycles). *)

val submit_gated :
  t ->
  route:int array ->
  flits:int ->
  ?on_flit_delivered:(int -> float -> unit) ->
  on_delivered:(float -> unit) ->
  unit ->
  gated
(** Create a gated worm.  It requests its injection channel when its
    first flit is released. *)

val release_flit : t -> gated -> int -> unit
(** [release_flit t g j] (called during event processing, e.g. from
    an upstream [on_flit_delivered]) makes flit [j] available at the
    current clock.  Flits must be released in order, each exactly
    once. *)

val step : t -> bool
(** Process one event; [false] when the calendar is empty. *)

val run : ?until:float -> t -> unit
(** Process events until the calendar empties or the next event is
    later than [until]. *)

val events_processed : t -> int
(** Total events processed so far (for performance reporting). *)

val busy_channels : t -> int
(** Number of currently reserved channels (diagnostics, invariant
    checks in tests). *)

val channel_busy_time : t -> int -> float
(** Cumulative time the channel has been held by a reservation —
    utilisation diagnostics for locating bottlenecks. *)

val channel_blocked_time : t -> int -> float
(** Cumulative time worm heads have spent queued for this channel's
    reservation (blocking diagnostics; a head currently waiting
    contributes its elapsed wait). *)

val peak_queue_depth : t -> int
(** Deepest reservation queue observed on any channel so far. *)

val delivered_flits : gated -> int
(** Flits of a gated worm already landed at its ejection channel —
    with {!release_flit}'s argument this bounds the C/D backlog. *)

val iter_channels :
  t -> (int -> reserved:bool -> buffered_flit:int option -> waiters:int -> unit) -> unit
(** Visit every channel's live state (diagnostics: a drained engine
    should show no reservations, buffers or waiters). *)
