module Tree = Fatnet_topology.Mport_tree

type t = {
  tree : Tree.t;
  node_hop_time : float;
  switch_hop_time : float;
  ports : int; (* 0 without aux *)
  aux_base : int; (* first aux channel id *)
}

type place = Leaf of int | Aux_port of int

let int_pow base exp =
  let rec go acc b e = if e = 0 then acc else go (if e land 1 = 1 then acc * b else acc) (b * b) (e asr 1) in
  go 1 base exp

let create ~m ~n ~node_hop_time ~switch_hop_time ~with_aux =
  if node_hop_time <= 0. || switch_hop_time <= 0. then
    invalid_arg "Network.create: hop times must be positive";
  let tree = Tree.create ~m ~n in
  let ports = if with_aux then int_pow (m / 2) (n - 1) else 0 in
  { tree; node_hop_time; switch_hop_time; ports; aux_base = Tree.channel_count tree }

let tree t = t.tree

let node_count t = Tree.node_count t.tree

let aux_port_count t = t.ports

let channel_count t = Tree.channel_count t.tree + (2 * t.ports)

(* Aux channels for port p: inject = aux_base + 2p, eject = +1. *)
let aux_inject t p = t.aux_base + (2 * p)
let aux_eject t p = t.aux_base + (2 * p) + 1

let check_channel t c name =
  if c < 0 || c >= channel_count t then invalid_arg ("Network." ^ name ^ ": channel id")

let hop_time t c =
  check_channel t c "hop_time";
  if c >= t.aux_base then t.node_hop_time
  else
    match Tree.channel_kind t.tree c with
    | Tree.Injection | Tree.Ejection -> t.node_hop_time
    | Tree.Up | Tree.Down -> t.switch_hop_time

let is_ejection t c =
  check_channel t c "is_ejection";
  if c >= t.aux_base then (c - t.aux_base) land 1 = 1
  else match Tree.channel_kind t.tree c with Tree.Ejection -> true | _ -> false

(* Node links sit below the switch fabric (level 0); a switch-switch
   channel belongs to the lower of its two endpoint levels (an Up from
   level l and the opposing Down both serve tier l); aux C/D links
   hang off root switches, i.e. tier n. *)
let channel_level t c =
  check_channel t c "channel_level";
  if c >= t.aux_base then Tree.n t.tree
  else
    match Tree.channel_kind t.tree c with
    | Tree.Injection | Tree.Ejection -> 0
    | Tree.Up | Tree.Down ->
        let a, b = Tree.channel_endpoints t.tree c in
        let level = function
          | Tree.Switch s -> Tree.switch_level t.tree s
          | Tree.Node _ -> 0
        in
        min (level a) (level b)

let check_port t p =
  if t.ports = 0 then invalid_arg "Network.route: network has no aux ports";
  if p < 0 || p >= t.ports then invalid_arg "Network.route: aux port out of range"

(* Root switch p is reachable from every leaf: the up-path's parallel
   index at level l is p mod (m/2)^(l-1), and symmetrically for the
   down-path (the same chain the D-mod-k route construction uses). *)
let root_switch t p =
  match Tree.switches_at_level t.tree (Tree.n t.tree) with
  | roots -> List.nth roots p

let ascent_to_root t x p =
  (* Channel list from node x up to root switch p (inclusive of the
     injection channel, exclusive of the aux channel). *)
  let tree = t.tree in
  let n = Tree.n tree in
  let half = Tree.m tree / 2 in
  let rec par l = if l <= 1 then 1 else half * par (l - 1) in
  let switch_of_level l =
    (* level l in [1, n-1]: group of x at level l, parallel p mod half^(l-1) *)
    if l = n then root_switch t p
    else begin
      let parallel = p mod par l in
      let group = x / int_pow half l in
      (* switch ids at level l start at (l-1) * per_level *)
      let per_level = 2 * int_pow half (n - 1) in
      ((l - 1) * per_level) + (group * par l) + parallel
    end
  in
  let first =
    Tree.channel_id tree ~src:(Tree.Node x) ~dst:(Tree.Switch (Tree.leaf_switch_of_node tree x))
  in
  let rec ups l acc =
    if l >= n then List.rev acc
    else
      let c =
        Tree.channel_id tree ~src:(Tree.Switch (switch_of_level l))
          ~dst:(Tree.Switch (switch_of_level (l + 1)))
      in
      ups (l + 1) (c :: acc)
  in
  first :: ups 1 []

let ascent_choices t = Tree.ascent_choices t.tree

let route ?choice t ~src ~dst =
  match (src, dst) with
  | Leaf x, Leaf y ->
      if x = y then invalid_arg "Network.route: src = dst";
      Tree.route ?choice t.tree ~src:x ~dst:y
  | Leaf x, Aux_port p ->
      check_port t p;
      Array.of_list (ascent_to_root t x p @ [ aux_eject t p ])
  | Aux_port p, Leaf y ->
      check_port t p;
      (* Mirror of the ascent: aux inject, downs, ejection. *)
      let tree = t.tree in
      let n = Tree.n tree in
      let half = Tree.m tree / 2 in
      let switch_of_level l =
        if l = n then root_switch t p
        else begin
          let parallel = p mod int_pow half (l - 1) in
          let group = y / int_pow half l in
          let per_level = 2 * int_pow half (n - 1) in
          ((l - 1) * per_level) + (group * int_pow half (l - 1)) + parallel
        end
      in
      let rec downs l acc =
        if l <= 1 then acc
        else
          let c =
            Tree.channel_id tree ~src:(Tree.Switch (switch_of_level l))
              ~dst:(Tree.Switch (switch_of_level (l - 1)))
          in
          downs (l - 1) (c :: acc)
      in
      let last =
        Tree.channel_id tree
          ~src:(Tree.Switch (Tree.leaf_switch_of_node tree y))
          ~dst:(Tree.Node y)
      in
      Array.of_list ((aux_inject t p :: List.rev (downs n [])) @ [ last ])
  | Aux_port _, Aux_port _ -> invalid_arg "Network.route: port to port"
