(* Structure-of-arrays 4-ary min-heap.

   The calendar is the hottest structure in the simulator: every
   flit-hop costs a push and a pop.  Keeping times in an unboxed
   [float array] (with orders, seqs and payloads in parallel arrays)
   removes the per-entry record allocation of the old boxed binary
   heap, and the 4-ary shape halves tree depth so a sift touches
   about half as many levels, with the four-way child scan staying
   inside two cache lines.  Sifts move the hole instead of swapping,
   writing each slot once.

   Ordering is (time, order, order2, order3, rank, seq)
   lexicographic, seq being the push counter.  When every push leaves
   the optional keys at their defaults the contract is exactly the
   old one — equal-time events pop in FIFO push order, so runs are
   deterministic.  A client that schedules events out of
   chronological push order (the wormhole streaming fast path) passes
   [~order]/[~order2]/[~order3] explicitly to slot its events among
   equal-time ties exactly where pushing them "on time" would have,
   and [~rank] (a stable per-actor id) to settle ties the order keys
   cannot see in a way both scheduling styles compute identically. *)

type 'a t = {
  mutable times : float array; (* unboxed float storage *)
  mutable orders : float array; (* tie-break rank; defaults to the push time *)
  mutable orders2 : float array; (* second-level rank: the pusher's own order *)
  mutable orders3 : float array; (* third-level rank: the pusher's second-level rank *)
  mutable ranks : float array; (* final tie-break: a stable client-chosen rank *)
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
  popped_time : float array; (* single slot: time of the last pop_exn *)
}

let create () =
  {
    times = [||];
    orders = [||];
    orders2 = [||];
    orders3 = [||];
    ranks = [||];
    seqs = [||];
    payloads = [||];
    size = 0;
    next_seq = 0;
    popped_time = [| nan |];
  }

let is_empty t = t.size = 0

let length t = t.size

(* Grow using [filler] (the payload being inserted) for unused slots,
   so no dummy payload is ever fabricated. *)
let grow t filler =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let new_cap = if cap = 0 then 64 else 2 * cap in
    let times = Array.make new_cap 0. in
    let orders = Array.make new_cap 0. in
    let orders2 = Array.make new_cap 0. in
    let orders3 = Array.make new_cap 0. in
    let ranks = Array.make new_cap 0. in
    let seqs = Array.make new_cap 0 in
    let payloads = Array.make new_cap filler in
    Array.blit t.times 0 times 0 t.size;
    Array.blit t.orders 0 orders 0 t.size;
    Array.blit t.orders2 0 orders2 0 t.size;
    Array.blit t.orders3 0 orders3 0 t.size;
    Array.blit t.ranks 0 ranks 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.payloads 0 payloads 0 t.size;
    t.times <- times;
    t.orders <- orders;
    t.orders2 <- orders2;
    t.orders3 <- orders3;
    t.ranks <- ranks;
    t.seqs <- seqs;
    t.payloads <- payloads
  end

(* All keys required: the simulator's hot path calls this directly so
   no [Some] wrappers are allocated per push. *)
let push_keyed t ~time ~order ~order2 ~order3 ~rank payload =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Event_queue.push: time must be finite and non-negative";
  if
    not
      (Float.is_finite order && Float.is_finite order2 && Float.is_finite order3
     && Float.is_finite rank)
  then
    invalid_arg "Event_queue.push: order must be finite";
  grow t payload;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let times = t.times
  and orders = t.orders
  and orders2 = t.orders2
  and orders3 = t.orders3
  and ranks = t.ranks
  and seqs = t.seqs
  and payloads = t.payloads in
  (* Sift the hole up from the end. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 4 in
    (* Tie-break keys are only loaded on an exact time tie. *)
    let pt = times.(p) in
    if
      time < pt
      || time = pt
         &&
         let po = orders.(p) in
         order < po
         || order = po
            &&
            let po2 = orders2.(p) in
            order2 < po2
            || order2 = po2
               &&
               let po3 = orders3.(p) in
               order3 < po3
               || order3 = po3
                  &&
                  let pr = ranks.(p) in
                  rank < pr || (rank = pr && seq < seqs.(p))
    then begin
      times.(!i) <- pt;
      orders.(!i) <- orders.(p);
      orders2.(!i) <- orders2.(p);
      orders3.(!i) <- orders3.(p);
      ranks.(!i) <- ranks.(p);
      seqs.(!i) <- seqs.(p);
      payloads.(!i) <- payloads.(p);
      i := p
    end
    else continue := false
  done;
  times.(!i) <- time;
  orders.(!i) <- order;
  orders2.(!i) <- order2;
  orders3.(!i) <- order3;
  ranks.(!i) <- rank;
  seqs.(!i) <- seq;
  payloads.(!i) <- payload

let push ?order ?(order2 = 0.) ?(order3 = 0.) ?(rank = 0.) t ~time payload =
  let order = match order with None -> time | Some o -> o in
  push_keyed t ~time ~order ~order2 ~order3 ~rank payload

let pop_exn t =
  if t.size = 0 then invalid_arg "Event_queue.pop_exn: empty"
  else begin
    let time = t.times.(0) and payload = t.payloads.(0) in
    t.popped_time.(0) <- time;
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      let times = t.times
      and orders = t.orders
      and orders2 = t.orders2
      and orders3 = t.orders3
      and ranks = t.ranks
      and seqs = t.seqs
      and payloads = t.payloads in
      (* Sift the last entry down from the root's hole. *)
      let lt = times.(n)
      and lo = orders.(n)
      and lo2 = orders2.(n)
      and lo3 = orders3.(n)
      and lr = ranks.(n)
      and ls = seqs.(n) in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let first = (4 * !i) + 1 in
        if first >= n then continue := false
        else begin
          (* Smallest of up to four children; tie-break keys are only
             loaded on exact time ties. *)
          let best = ref first in
          let limit = min (first + 3) (n - 1) in
          for c = first + 1 to limit do
            let b = !best in
            let ct = times.(c) in
            let bt = times.(b) in
            if
              ct < bt
              || ct = bt
                 &&
                 let co = orders.(c) in
                 let bo = orders.(b) in
                 co < bo
                 || co = bo
                    &&
                    let co2 = orders2.(c) in
                    let bo2 = orders2.(b) in
                    co2 < bo2
                    || co2 = bo2
                       &&
                       let co3 = orders3.(c) in
                       let bo3 = orders3.(b) in
                       co3 < bo3
                       || co3 = bo3
                          &&
                          let cr = ranks.(c) in
                          let br = ranks.(b) in
                          cr < br || (cr = br && seqs.(c) < seqs.(b))
            then best := c
          done;
          let b = !best in
          let bt = times.(b) in
          if
            bt < lt
            || bt = lt
               &&
               let bo = orders.(b) in
               bo < lo
               || bo = lo
                  &&
                  let bo2 = orders2.(b) in
                  bo2 < lo2
                  || bo2 = lo2
                     &&
                     let bo3 = orders3.(b) in
                     bo3 < lo3
                     || bo3 = lo3
                        &&
                        let br = ranks.(b) in
                        br < lr || (br = lr && seqs.(b) < ls)
          then begin
            times.(!i) <- bt;
            orders.(!i) <- orders.(b);
            orders2.(!i) <- orders2.(b);
            orders3.(!i) <- orders3.(b);
            ranks.(!i) <- ranks.(b);
            seqs.(!i) <- seqs.(b);
            payloads.(!i) <- payloads.(b);
            i := b
          end
          else continue := false
        end
      done;
      times.(!i) <- lt;
      orders.(!i) <- lo;
      orders2.(!i) <- lo2;
      orders3.(!i) <- lo3;
      ranks.(!i) <- lr;
      seqs.(!i) <- ls;
      payloads.(!i) <- payloads.(n)
    end;
    payload
  end

let popped_time t = t.popped_time.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let payload = pop_exn t in
    Some (t.popped_time.(0), payload)
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)
