type worm = {
  wid : float;
      (* creation serial (1., 2., ...): the calendar's final explicit
         tie-break rank for every event of this worm, see the push
         helpers below *)
  route : int array;
  flits : int;
  on_delivered : float -> unit;
  on_flit_delivered : int -> float -> unit;
  next_to_enter : int array;
      (* next_to_enter.(k): index of the flit that should next start
         crossing route.(k); doubles as the staleness check that makes
         advance attempts idempotent. *)
  mutable released : int;
      (* flits available for transmission at the source; [flits] for
         ordinary worms, grows one by one for gated worms *)
  mutable delivered_flits : int;
      (* flits that have landed at the ejection channel *)
  mutable streaming : bool;
      (* the closed-form fast path has taken over this worm: its
         remaining per-flit events in the calendar are stale *)
}

type gated = worm

(* Calendar entries are pooled, reusable cells rather than variant
   constructors: steady-state simulation then allocates no words per
   flit-hop (the old [Advance (w, j, k)] boxed three words per event
   and fed the minor GC at tens of millions of events per run).  A
   cell's meaning is given by [op]; unused fields hold dummies. *)
type op = Advance | Arrive | Callback | Deliver | Release

type cell = {
  mutable op : op;
  mutable w : worm;
  mutable j : int; (* flit index (Advance/Arrive/Deliver) *)
  mutable k : int; (* route index (Advance/Arrive) or channel id (Release) *)
  mutable fn : float -> unit; (* Callback *)
  mutable o1 : float; (* this event's own order key, for pushes it makes *)
  mutable o2 : float; (* this event's own second-level key, likewise *)
}

let nop_fn (_ : float) = ()
let nop_flit_fn (_ : int) (_ : float) = ()

let dummy_worm =
  {
    wid = 0.;
    route = [||];
    flits = 0;
    on_delivered = nop_fn;
    on_flit_delivered = nop_flit_fn;
    next_to_enter = [||];
    released = 0;
    delivered_flits = 0;
    streaming = false;
  }

type t = {
  hop_time : float array;
  is_ejection : bool array;
  reserved_by : worm option array;
  reserved_since : float array;
  busy_time : float array; (* cumulative reservation-held time per channel *)
  wire_free_at : float array;
  buffer : (worm * int) option array; (* flit occupying the downstream buffer *)
  waiters : (worm * int * float) Queue.t array;
      (* heads awaiting reservation: (worm, route index, enqueue time) *)
  blocked_time : float array; (* cumulative head wait served per channel *)
  queue : cell Event_queue.t;
  streaming_enabled : bool;
  mutable clock : float;
  mutable cur_order : float; (* order key of the event being processed *)
  mutable cur_order2 : float; (* its second-level key *)
  mutable next_wid : float; (* creation serial of the next worm *)
  mutable events : int;
  mutable busy : int;
  mutable max_waiters : int; (* peak reservation-queue depth, any channel *)
  mutable pool : cell array; (* free-list of recycled cells *)
  mutable pool_len : int;
}

let create ?(streaming = true) ~channel_count ~hop_time ~is_ejection () =
  if channel_count <= 0 then invalid_arg "Wormhole.create: channel_count must be positive";
  let times = Array.init channel_count hop_time in
  Array.iteri
    (fun c tau ->
      if not (tau > 0.) then
        invalid_arg (Printf.sprintf "Wormhole.create: hop_time %d must be positive" c))
    times;
  {
    hop_time = times;
    is_ejection = Array.init channel_count is_ejection;
    reserved_by = Array.make channel_count None;
    reserved_since = Array.make channel_count 0.;
    busy_time = Array.make channel_count 0.;
    wire_free_at = Array.make channel_count 0.;
    buffer = Array.make channel_count None;
    waiters = Array.init channel_count (fun _ -> Queue.create ());
    blocked_time = Array.make channel_count 0.;
    queue = Event_queue.create ();
    streaming_enabled = streaming;
    clock = 0.;
    cur_order = 0.;
    cur_order2 = 0.;
    next_wid = 1.;
    events = 0;
    busy = 0;
    max_waiters = 0;
    pool = [||];
    pool_len = 0;
  }

let now t = t.clock

(* ---- cell pool ---- *)

let alloc_cell t =
  if t.pool_len = 0 then { op = Callback; w = dummy_worm; j = 0; k = 0; fn = nop_fn; o1 = 0.; o2 = 0. }
  else begin
    let n = t.pool_len - 1 in
    t.pool_len <- n;
    t.pool.(n)
  end

let free_cell t cell =
  (* Drop references so a parked cell never retains a worm/closure. *)
  cell.w <- dummy_worm;
  cell.fn <- nop_fn;
  let cap = Array.length t.pool in
  if t.pool_len = cap then begin
    let fresh = Array.make (if cap = 0 then 64 else 2 * cap) cell in
    Array.blit t.pool 0 fresh 0 t.pool_len;
    t.pool <- fresh
  end;
  t.pool.(t.pool_len) <- cell;
  t.pool_len <- t.pool_len + 1

(* Every push records the clock at which it happened (or, for the
   streaming fast path, at which the slow path would have pushed the
   same event) as the queue's [order] tie-break, plus the pushing
   event's own order keys one and two causal levels up as
   [order2]/[order3].  Because the clock is monotone and events pop
   their own pushes in order, ordering equal-time events by
   (order, order2, order3, seq) is exactly the engine's pure-FIFO seq
   order for chronological pushes, while letting the fast path
   schedule events early yet pop them in the slot a chronological
   push would have given them, three tie levels deep. *)

let push_advance t ~time w j k =
  let cell = alloc_cell t in
  cell.op <- Advance;
  cell.w <- w;
  cell.j <- j;
  cell.k <- k;
  cell.o1 <- t.clock;
  cell.o2 <- t.cur_order;
  Event_queue.push_keyed t.queue ~order:t.clock ~order2:t.cur_order ~order3:t.cur_order2
    ~rank:w.wid ~time cell

let push_arrive t ~time w j k =
  let cell = alloc_cell t in
  cell.op <- Arrive;
  cell.w <- w;
  cell.j <- j;
  cell.k <- k;
  cell.o1 <- t.clock;
  cell.o2 <- t.cur_order;
  Event_queue.push_keyed t.queue ~order:t.clock ~order2:t.cur_order ~order3:t.cur_order2
    ~rank:w.wid ~time cell

let push_deliver t ~time ~order ~order2 ~order3 w j =
  let cell = alloc_cell t in
  cell.op <- Deliver;
  cell.w <- w;
  cell.j <- j;
  cell.o1 <- order;
  cell.o2 <- order2;
  Event_queue.push_keyed t.queue ~order ~order2 ~order3 ~rank:w.wid ~time cell

(* The slow path frees a channel inside the tail's advance, so a
   batched Release carries the rank of the streaming worm whose tail
   it stands in for. *)
let push_release t ~time ~order ~order2 ~order3 ~rank c =
  let cell = alloc_cell t in
  cell.op <- Release;
  cell.k <- c;
  cell.o1 <- order;
  cell.o2 <- order2;
  Event_queue.push_keyed t.queue ~order ~order2 ~order3 ~rank ~time cell

let schedule t ~time f =
  if time < t.clock then invalid_arg "Wormhole.schedule: time in the past";
  let cell = alloc_cell t in
  cell.op <- Callback;
  cell.fn <- f;
  cell.o1 <- t.clock;
  cell.o2 <- t.cur_order;
  Event_queue.push_keyed t.queue ~order:t.clock ~order2:t.cur_order ~order3:t.cur_order2
    ~rank:0. ~time cell

let same_worm a b = a == b

(* ---- reservation protocol ---- *)

(* Reserve [c] for [w] if free; otherwise queue the head.  Returns
   true when the reservation was granted immediately. *)
let try_reserve t c w k =
  match t.reserved_by.(c) with
  | None ->
      t.reserved_by.(c) <- Some w;
      t.reserved_since.(c) <- t.clock;
      t.busy <- t.busy + 1;
      ignore k;
      true
  | Some _ ->
      Queue.add (w, k, t.clock) t.waiters.(c);
      let depth = Queue.length t.waiters.(c) in
      if depth > t.max_waiters then t.max_waiters <- depth;
      false

(* ---- closed-form streaming fast path ----

   Once a worm's head holds the reservation of its ejection channel,
   the worm holds every not-yet-released channel of its route (heads
   reserve forward, tails release behind: reservations form a
   contiguous window that now reaches the end).  If additionally every
   flit is released at the source, no other worm can influence the
   worm's remaining motion: flits only wait on the worm's own wire
   pacing and buffer hand-offs, all on channels it owns.  The slow
   path realizes each enter time as the event time of the last guard
   to clear, so the remaining schedule satisfies, exactly:

     enter j k = max (arrive of j at k-1)          (upstream hand-off)
                     (enter (j-1) k + tau k)       (wire pacing)
                     (enter (j-1) (k+1))           (single-buffer free)

   with arrive j k = enter j k + tau k.  Every term is an event time
   the slow path would itself compute with the same float operations,
   so evaluating the recurrence directly — seeded with the in-flight
   state (wire_free_at for the flit mid-wire per channel, the current
   clock standing in for hand-offs that completed in the past) —
   reproduces the slow path's delivery and release times bit for bit.
   We then schedule one Deliver event per remaining flit and one
   Release per still-held channel instead of ~2·hops events per flit,
   and mark the worm so its stale calendar entries are ignored.

   Matching the times is not quite enough: commensurate hop times make
   equal-timestamp ties with *other* worms' events systematic (e.g. a
   concentrator chain whose segments share a time base), and the seed
   engine resolves ties in push order.  So each batched event also
   carries the [order]/[order2]/[order3] keys the chronological push
   would have had — its own push time, its pusher's, and its
   pusher's pusher's: a delivery's arrive is pushed when the flit
   enters the ejection channel (order = enter time) by the advance
   that realized that entry; a release happens inside the tail's
   successful advance, whose push time the winning recurrence term
   identifies — an advance that succeeds on its upstream hand-off
   attempt or on a wire-free retry was pushed at the hand-off time,
   one rescheduled by a full buffer was pushed when the buffer freed
   (on a wire/buffer tie, by whichever of the two the slow path's pop
   order resolves first, which the previous flit's push time
   decides).

   Three levels ground every tie between events whose push chains
   differ within three causal links.  Worms whose schedules run in
   exact float lockstep (e.g. two gated chains serialized earlier on
   a shared channel) can tie to any depth — and that order has real
   consequences: a delivery callback may release a gated flit whose
   head then joins a waiter queue, so whichever same-instant delivery
   pops first also queues first.  Full-depth ties therefore resolve
   by an explicit [rank], the worm's creation serial, which both
   paths know for every event they schedule (worms are created in
   identical order either way), instead of by push order, which an
   out-of-chronology scheduler cannot reproduce. *)

let maybe_stream t w =
  let route = w.route in
  let last = Array.length route - 1 in
  if
    (not t.streaming_enabled)
    || w.streaming
    || w.released < w.flits
    || w.delivered_flits >= w.flits
    || (match t.reserved_by.(route.(last)) with
       | Some o -> not (same_worm o w)
       | None -> true)
  then false
  else begin
    let nte = w.next_to_enter in
    let m = w.flits in
    let l = last + 1 in
    let clock = t.clock in
    (* The event being processed right now is the one whose pop
       triggered the takeover; a push the slow path would make at this
       very instant is made by it, so its keys are the seam stand-ins
       at the o2/o3 levels (clock stands in at the time/o1 levels). *)
    let cur1 = t.cur_order in
    let cur2 = t.cur_order2 in
    let d = w.delivered_flits in
    (* Enter times of the previous flit (j-1) into each route channel;
       [clock] stands in for entries that happened before the takeover
       (they are dominated by some >= clock term wherever they are
       still consulted, see note above). *)
    let e_prev = Array.make l clock in
    let e_cur = Array.make l clock in
    (* Push time of the advance that realized each enter (see note
       above): the [order] key of the events we batch.  [p2] is one
       tie level deeper — the order key of the event that made that
       push. *)
    let p_prev = Array.make l clock in
    let p_cur = Array.make l clock in
    let p2_prev = Array.make l cur1 in
    let p2_cur = Array.make l cur1 in
    let p3_prev = Array.make l cur2 in
    let p3_cur = Array.make l cur2 in
    for j = d to m - 1 do
      (* Channels this flit had already entered when we took over. *)
      let kpos = ref 0 in
      while !kpos < l && nte.(!kpos) > j do incr kpos done;
      let kpos = !kpos in
      if kpos = l then begin
        (* Already on the ejection channel: its Arrive event is in the
           calendar with the exact time and push order, and ejection
           arrivals stay live during streaming, so there is nothing to
           schedule. *)
        Array.fill e_cur 0 l clock;
        Array.fill p_cur 0 l clock;
        Array.fill p2_cur 0 l cur1;
        Array.fill p3_cur 0 l cur2
      end
      else begin
        (* Upstream hand-off seed for the first new hop: the flit
           either sits in the upstream buffer / is not yet injected
           (a past or current-instant event: clock), or is mid-wire
           upstream and lands at that wire's free time. *)
        let seed =
          if kpos = 0 then clock
          else begin
            let c_up = route.(kpos - 1) in
            let mid_wire =
              nte.(kpos - 1) = j + 1
              && (match t.buffer.(c_up) with
                 | Some (o, f) -> not (same_worm o w && f = j)
                 | None -> true)
            in
            if mid_wire then Float.max clock t.wire_free_at.(c_up) else clock
          end
        in
        for kk = kpos to last do
          let c = route.(kk) in
          let up = if kk = kpos then seed else e_cur.(kk - 1) +. t.hop_time.(route.(kk - 1)) in
          let wire =
            (* Wire pacing behind the flit ahead: the first entrant
               after takeover is paced by the captured wire_free_at;
               later ones by the schedule we just computed. *)
            if j = nte.(kk) then t.wire_free_at.(c) else e_prev.(kk) +. t.hop_time.(c)
          in
          let buf =
            if kk = last || j = 0 then Float.neg_infinity
            else if j - 1 < nte.(kk + 1) then clock (* freed before takeover *)
            else e_prev.(kk + 1)
          in
          let e = Float.max up (Float.max wire buf) in
          e_cur.(kk) <- e;
          (* Push time of the slow path's successful advance copy.
             Three copies of an advance reach the calendar: the wire
             pacing push (made when flit j-1 entered this channel,
             order [e_prev.(kk)]), the upstream hand-off push and its
             wire-busy retry (order [up]), and the buffer-freed push
             (made when flit j-1 departed, order [buf]).  The first
             copy to pop whose guards pass is the one the release
             rides on; the rest go stale. *)
          (* The hand-off push is made by the upstream arrive (whose
             own order is the upstream enter time); at the takeover
             seam the pusher is lost to the past and [clock] stands
             in. *)
          let handoff_o2 = if kk = kpos then cur1 else e_cur.(kk - 1) in
          let handoff_o3 = if kk = kpos then cur2 else p_cur.(kk - 1) in
          let p, p2, p3 =
            if j = 0 then (up, handoff_o2, handoff_o3)
              (* head motion is purely hand-off-driven *)
            else if up >= wire && up >= buf then
              (* Hand-off binds; on an exact wire tie the earlier
                 pacing copy pops first and succeeds, provided the
                 hand-off and the buffer hand-back beat it. *)
              if
                wire = up
                && (kk = kpos || e_cur.(kk - 1) < e_prev.(kk))
                && (buf < up || (buf = up && p_prev.(kk + 1) < e_prev.(kk)))
              then (e_prev.(kk), p_prev.(kk), p2_prev.(kk))
              else (up, handoff_o2, handoff_o3)
            else if buf > wire then (e, p_prev.(kk + 1), p2_prev.(kk + 1))
              (* buffer binds: freed push *)
            else if wire > buf then (e_prev.(kk), p_prev.(kk), p2_prev.(kk))
              (* wire binds: pacing copy *)
            else if
              (* wire = buf = e > up: the pacing copy and the
                 hand-off retry race the departing flit; a copy
                 popping before the buffer frees is dropped and the
                 freed push wins. *)
              p_prev.(kk + 1) < e_prev.(kk)
            then (e_prev.(kk), p_prev.(kk), p2_prev.(kk))
            else if e_prev.(kk) < up && p_prev.(kk + 1) < up then (up, up, handoff_o2)
              (* wire-busy retry pushed while the hand-off copy popped *)
            else (e, p_prev.(kk + 1), p2_prev.(kk + 1))
          in
          p_cur.(kk) <- p;
          p2_cur.(kk) <- p2;
          p3_cur.(kk) <- p3
        done;
        push_deliver t
          ~time:(e_cur.(last) +. t.hop_time.(route.(last)))
          ~order:e_cur.(last) ~order2:p_cur.(last) ~order3:p2_cur.(last) w j;
        if j = m - 1 then
          (* The tail frees each channel's reservation as it leaves
             that channel's buffer, i.e. as it enters the next one. *)
          for kk = 1 to last do
            if nte.(kk) < m then
              push_release t ~time:e_cur.(kk) ~order:p_cur.(kk) ~order2:p2_cur.(kk)
                ~order3:p3_cur.(kk) ~rank:w.wid
                route.(kk - 1)
          done;
        if kpos > 0 then begin
          Array.fill e_cur 0 kpos clock;
          Array.fill p_cur 0 kpos clock;
          Array.fill p2_cur 0 kpos cur1;
          Array.fill p3_cur 0 kpos cur2
        end
      end;
      Array.blit e_cur 0 e_prev 0 l;
      Array.blit p_cur 0 p_prev 0 l;
      Array.blit p2_cur 0 p2_prev 0 l;
      Array.blit p3_cur 0 p3_prev 0 l
    done;
    (* Invalidate the worm's stale calendar entries: Advances fail the
       next_to_enter check, Arrives check [streaming]. *)
    w.streaming <- true;
    for kk = 0 to last do
      nte.(kk) <- m;
      (match t.buffer.(route.(kk)) with
      | Some (o, _) when same_worm o w -> t.buffer.(route.(kk)) <- None
      | _ -> ())
    done;
    true
  end

(* Release [c] and grant it to the next queued head, scheduling that
   head's advance at the current time. *)
let release t c =
  (match t.reserved_by.(c) with
  | Some _ ->
      t.busy <- t.busy - 1;
      t.busy_time.(c) <- t.busy_time.(c) +. (t.clock -. t.reserved_since.(c))
  | None -> ());
  t.reserved_by.(c) <- None;
  if not (Queue.is_empty t.waiters.(c)) then begin
    let w, k, since = Queue.pop t.waiters.(c) in
    t.blocked_time.(c) <- t.blocked_time.(c) +. (t.clock -. since);
    t.reserved_by.(c) <- Some w;
    t.reserved_since.(c) <- t.clock;
    t.busy <- t.busy + 1;
    (* A head granted its ejection channel may stream from here. *)
    if not (k = Array.length w.route - 1 && maybe_stream t w) then
      push_advance t ~time:t.clock w 0 k
  end

let handle_advance t w j k =
  let c = w.route.(k) in
  (* Staleness / idempotence: only the expected next flit may act. *)
  if w.next_to_enter.(k) = j then begin
    let reserved = match t.reserved_by.(c) with Some o -> same_worm o w | None -> false in
    let upstream_ready =
      if k = 0 then j < w.released
      else
        match t.buffer.(w.route.(k - 1)) with
        | Some (o, f) -> same_worm o w && f = j
        | None -> false
    in
    if reserved && upstream_ready then begin
      if t.wire_free_at.(c) > t.clock then
        (* Wire still busy with the previous flit: retry exactly when
           it frees. *)
        push_advance t ~time:t.wire_free_at.(c) w j k
      else begin
        (* The landing buffer must be clear of the previous flit, and
           that flit must already have *departed* (started crossing the
           next channel) — checking occupancy alone races with a flit
           still mid-wire at the same timestamp, which would land later
           and be overwritten. *)
        let target_free =
          t.is_ejection.(c)
          || (t.buffer.(c) = None && (j = 0 || w.next_to_enter.(k + 1) >= j))
        in
        if target_free then begin
          let tau = t.hop_time.(c) in
          w.next_to_enter.(k) <- j + 1;
          t.wire_free_at.(c) <- t.clock +. tau;
          if k > 0 then begin
            let upstream = w.route.(k - 1) in
            t.buffer.(upstream) <- None;
            if j = w.flits - 1 then
              (* Tail left the upstream buffer: that channel is free
                 for the next worm. *)
              release t upstream
            else
              (* The freed buffer lets the next flit start crossing
                 the upstream channel. *)
              push_advance t ~time:t.clock w (j + 1) (k - 1)
          end;
          if j + 1 < w.flits then
            (* Wire pacing: the next flit may enter this channel once
               the wire frees (other guards re-checked then). *)
            push_advance t ~time:(t.clock +. tau) w (j + 1) k;
          push_arrive t ~time:(t.clock +. tau) w j k
        end
        (* else: buffer full; the departing flit will reschedule us. *)
      end
    end
    (* else: not our reservation yet, or the flit has not arrived
       upstream; the grant or the upstream arrival reschedules. *)
  end

let handle_arrive t w j k =
  let c = w.route.(k) in
  if t.is_ejection.(c) then begin
    (* Ejection arrivals stay live when the worm is streaming: flits
       already on the ejection channel at takeover keep their exact
       calendar entries (the fast path only schedules the rest). *)
    w.delivered_flits <- j + 1;
    w.on_flit_delivered j t.clock;
    if j = w.flits - 1 then begin
      (* Tail delivered: the ejection channel frees immediately (the
         sink absorbed every flit). *)
      release t c;
      w.on_delivered t.clock
    end
  end
  else if not w.streaming then begin
    t.buffer.(c) <- Some (w, j);
    if j = 0 then begin
      (* Head: claim the next channel. *)
      let k' = k + 1 in
      if try_reserve t w.route.(k') w k' then
        if not (k' = Array.length w.route - 1 && maybe_stream t w) then
          push_advance t ~time:t.clock w 0 k'
    end
    else push_advance t ~time:t.clock w j (k + 1)
  end

(* Batched ejection arrival: same observable effects, in the same
   order, as the ejection branch of [handle_arrive]. *)
let handle_deliver t w j =
  w.delivered_flits <- j + 1;
  w.on_flit_delivered j t.clock;
  if j = w.flits - 1 then begin
    release t w.route.(Array.length w.route - 1);
    w.on_delivered t.clock
  end

let check_route t route flits =
  if Array.length route = 0 then invalid_arg "Wormhole.submit: empty route";
  if flits < 1 then invalid_arg "Wormhole.submit: flits >= 1";
  let last = Array.length route - 1 in
  Array.iteri
    (fun i c ->
      if c < 0 || c >= Array.length t.hop_time then invalid_arg "Wormhole.submit: channel id";
      if t.is_ejection.(c) <> (i = last) then
        invalid_arg "Wormhole.submit: route must end (and only end) in an ejection channel")
    route

let make_worm t route flits on_flit_delivered on_delivered ~released =
  let wid = t.next_wid in
  t.next_wid <- wid +. 1.;
  {
    wid;
    route;
    flits;
    on_delivered;
    on_flit_delivered;
    next_to_enter = Array.make (Array.length route) 0;
    released;
    delivered_flits = 0;
    streaming = false;
  }

let submit t ~time ~route ~flits ?(on_flit_delivered = nop_flit_fn) ~on_delivered () =
  if time < t.clock then invalid_arg "Wormhole.submit: time in the past";
  check_route t route flits;
  let w = make_worm t route flits on_flit_delivered on_delivered ~released:flits in
  schedule t ~time (fun _ -> if try_reserve t route.(0) w 0 then push_advance t ~time:t.clock w 0 0)

let submit_gated t ~route ~flits ?(on_flit_delivered = nop_flit_fn) ~on_delivered () =
  check_route t route flits;
  make_worm t route flits on_flit_delivered on_delivered ~released:0

let release_flit t w j =
  if j <> w.released then invalid_arg "Wormhole.release_flit: flits must be released in order";
  if j >= w.flits then invalid_arg "Wormhole.release_flit: flit index out of range";
  w.released <- j + 1;
  if j = 0 then begin
    (* First flit: the worm now joins its injection channel's queue. *)
    if try_reserve t w.route.(0) w 0 then push_advance t ~time:t.clock w 0 0
  end
  else if not (w.released = w.flits && maybe_stream t w) then
    (* Last release of a worm whose head already owns the ejection
       channel switches to the fast path instead. *)
    push_advance t ~time:t.clock w j 0

let step t =
  if Event_queue.is_empty t.queue then false
  else begin
    let cell = Event_queue.pop_exn t.queue in
    let time = Event_queue.popped_time t.queue in
    t.clock <- time;
    t.cur_order <- cell.o1;
    t.cur_order2 <- cell.o2;
    t.events <- t.events + 1;
    let op = cell.op and w = cell.w and j = cell.j and k = cell.k and fn = cell.fn in
    free_cell t cell;
    (match op with
    | Advance -> handle_advance t w j k
    | Arrive -> handle_arrive t w j k
    | Callback -> fn time
    | Deliver -> handle_deliver t w j
    | Release -> release t k);
    true
  end

let run ?until t =
  let continue = ref true in
  while !continue do
    match until with
    | Some limit -> (
        match Event_queue.peek_time t.queue with
        | Some next when next <= limit -> ignore (step t)
        | Some _ | None -> continue := false)
    | None -> if not (step t) then continue := false
  done

let events_processed t = t.events

let busy_channels t = t.busy

let channel_busy_time t c =
  if c < 0 || c >= Array.length t.busy_time then
    invalid_arg "Wormhole.channel_busy_time: channel id";
  t.busy_time.(c)
  +. (match t.reserved_by.(c) with Some _ -> t.clock -. t.reserved_since.(c) | None -> 0.)

let channel_blocked_time t c =
  if c < 0 || c >= Array.length t.blocked_time then
    invalid_arg "Wormhole.channel_blocked_time: channel id";
  Queue.fold (fun acc (_, _, since) -> acc +. (t.clock -. since)) t.blocked_time.(c) t.waiters.(c)

let peak_queue_depth t = t.max_waiters

let delivered_flits (w : gated) = w.delivered_flits

let iter_channels t f =
  Array.iteri
    (fun c reserved ->
      f c
        ~reserved:(reserved <> None)
        ~buffered_flit:(match t.buffer.(c) with Some (_, j) -> Some j | None -> None)
        ~waiters:(Queue.length t.waiters.(c)))
    t.reserved_by
