(** End-to-end simulation runs following the paper's validation
    protocol (Section 4): Poisson generation at every node, uniform
    destinations, a warm-up batch excluded from statistics, a
    measured batch, and a drain batch generated but not measured so
    the measured messages finish under realistic load. *)

type cd_mode = Fatnet_scenario.Scenario.cd_mode =
  | Cut_through
      (** The C/D forwards flits as they arrive (absorbing into its
          buffer when the next network is blocked) — the paper's
          "simple bi-directional buffers", and the mode whose
          latencies the merged-pipeline model (Eq. 20) describes. *)
  | Store_and_forward
      (** The C/D queues whole messages; kept as an ablation. *)

type trace_record = {
  serial : int;          (** generation order, 0-based *)
  src : int;             (** global node id *)
  dst : int;
  generated_at : float;
  delivered_at : float;
  is_intra : bool;
  measured : bool;       (** inside the measured batch *)
}
(** One delivered message, as observed by the per-node "sink modules"
    the paper's Section 4 describes. *)

type config = {
  warmup : int;    (** messages generated before statistics start *)
  measured : int;  (** messages included in statistics *)
  drain : int;     (** extra messages generated after the measured batch *)
  seed : int64;
  destination : Fatnet_workload.Destination.t;
  cd_mode : cd_mode;
  trace : (trace_record -> unit) option;
      (** called at every delivery (all batches), e.g. to stream a
          message trace to CSV; [None] by default *)
  streaming : bool;
      (** enable the engine's closed-form streaming fast path
          (default).  Disabling forces the per-flit state machine —
          same trace, more events; useful for benchmarking and
          differential testing. *)
  metrics : Fatnet_obs.Metrics.t;
      (** telemetry registry ({!Fatnet_obs.Metrics.disabled} by
          default).  When enabled, a run records channel-utilisation
          and blocking histograms by network and tree level, C/D
          backlog samples, peak queue depth and messages in flight,
          phase end times and message/event counters.  Telemetry
          never changes the event schedule: the delivered-time stream
          is bit-identical with metrics on or off. *)
}

val default_config : config
(** The paper's protocol: 10_000 / 100_000 / 10_000, uniform
    destinations, cut-through C/Ds, a fixed seed. *)

val quick_config : config
(** A scaled-down protocol (1_000 / 10_000 / 1_000) for tests and
    fast sweeps; same structure, more seed noise. *)

type result = {
  latency : Fatnet_stats.Summary.t;       (** measured messages, all classes *)
  intra_latency : Fatnet_stats.Summary.t; (** measured intra-cluster messages *)
  inter_latency : Fatnet_stats.Summary.t; (** measured inter-cluster messages *)
  ci95_half_width : float;
      (** 95% batch-means confidence half-width on the mean latency
          (30 batches over the measured messages); [nan] when too few
          samples *)
  generated : int;
  delivered : int;       (** of the measured batch *)
  end_time : float;      (** simulation clock when the network drained *)
  events : int;          (** engine events processed *)
  wall_seconds : float;
  bottlenecks : (string * float) list;
      (** the five busiest channels (description, fraction of the run
          they were reservation-held) — where the system saturates *)
}

val run :
  ?config:config ->
  system:Fatnet_model.Params.system ->
  message:Fatnet_model.Params.message ->
  lambda_g:float ->
  unit ->
  result
(** Simulate the system at per-node generation rate [lambda_g]
    (messages per time unit).  Runs until the network fully drains.
    Requires [lambda_g > 0.]. *)

val mean_latency :
  ?config:config ->
  system:Fatnet_model.Params.system ->
  message:Fatnet_model.Params.message ->
  lambda_g:float ->
  unit ->
  float
(** Just the measured mean latency. *)

(** {1 Scenario entry points}

    {!Fatnet_scenario.Scenario.t} carries everything [run] needs; the
    functions below are the preferred front door, with the classic
    per-field signatures above kept as thin compatibility wrappers
    (the scenario's [cd_mode] and [replication] types {e are} this
    module's — re-exported with equality — so existing call sites
    keep compiling unchanged). *)

val config_of_scenario :
  ?trace:(trace_record -> unit) ->
  ?metrics:Fatnet_obs.Metrics.t ->
  Fatnet_scenario.Scenario.t ->
  config
(** The run protocol a scenario prescribes: its [protocol] section
    plus its traffic [pattern], with an optional trace sink and
    telemetry registry attached (both are run-time plumbing, never
    part of the scenario's identity). *)

val protocol_of_config : config -> Fatnet_scenario.Scenario.protocol
(** The inverse projection (the destination pattern and trace sink are
    dropped: they live elsewhere in the scenario). *)

val run_scenario :
  ?trace:(trace_record -> unit) ->
  ?metrics:Fatnet_obs.Metrics.t ->
  ?lambda_g:float ->
  Fatnet_scenario.Scenario.t ->
  result
(** [run] under the scenario's system, message, pattern and protocol.
    The rate comes from [lambda_g] when given, else the scenario's
    [Fixed] load.
    @raise Invalid_argument on a swept load axis with no [lambda_g]. *)


type target = Fatnet_scenario.Scenario.target =
  | Mean  (** converge on the mean latency (the classic behaviour) *)
  | Quantile of float
      (** converge on a fixed-ladder quantile estimate (0.5, 0.9,
          0.99 or 0.999): the Student-t interval is taken over the
          per-replication P² estimates of that quantile *)

type replication_spec = Fatnet_scenario.Scenario.replication = {
  target_rel : float;
      (** stop once the replication-level CI half-width divided by the
          grand target statistic is at or below this *)
  confidence : float;  (** CI confidence level, e.g. [0.95] *)
  min_reps : int;      (** replications always run before any stopping test *)
  max_reps : int;      (** hard replication cap *)
  target : target;     (** the statistic the CI is taken over *)
}
(** Stopping rule for CI-adaptive independent replications.  After
    [min_reps] replications the engine stops when the Student-t
    interval over the per-replication target statistics (means, or
    one quantile's estimates) is relatively tighter than
    [target_rel]; it also stops on {e futility} — when the half-width
    projected at [max_reps] (standard error shrinking like
    [1/sqrt k], the Student-t critical value relaxing to the cap's)
    still misses [target_rel] — so hopeless (saturated,
    high-variance) points do not burn the whole budget.  The decision depends only on the point's own
    replication outputs, never on scheduling, so adaptive runs stay
    deterministic.  With [target = Mean] the rule is bit-identical to
    the historic mean-converging behaviour. *)

val default_replication : replication_spec
(** 5 % relative half-width at 95 % confidence, 2–8 replications,
    converging the mean. *)

type replicated = {
  merged : Fatnet_stats.Summary.t;
      (** all measured latencies pooled across replications
          ({!Fatnet_stats.Summary.merge}: moments merged exactly;
          each ladder quantile is the count-weighted average of the
          per-replication P² estimates) *)
  rep_means : float list;
      (** per-replication mean latency, in order (compatibility view;
          equals [rep_targets] when [target = Mean]) *)
  rep_targets : float list;
      (** per-replication values of the stopping rule's target
          statistic, in order *)
  target : target;  (** the statistic [rep_targets] carries *)
  replications : int;
  rep_ci_half_width : float;
      (** Student-t half-width over [rep_targets] at the spec's
          confidence; [nan] with a single replication *)
  total_events : int;
  total_generated : int;
  total_delivered : int;
  rep_wall_seconds : float;     (** summed wall time of the replications *)
}

val run_replicated :
  ?config:config ->
  ?replication:replication_spec ->
  system:Fatnet_model.Params.system ->
  message:Fatnet_model.Params.message ->
  lambda_g:float ->
  unit ->
  replicated
(** Run independently seeded replications of [run] until the
    [replication] rule stops.  [config] is the {e per-replication}
    protocol; replication [k] uses the [k]-th output of a SplitMix64
    stream seeded with [config.seed], so the full sequence of
    replication results is a pure function of the configuration. *)

val run_replicated_scenario :
  ?trace:(trace_record -> unit) ->
  ?metrics:Fatnet_obs.Metrics.t ->
  ?lambda_g:float ->
  Fatnet_scenario.Scenario.t ->
  replicated
(** [run_replicated] under the scenario's replication spec; a scenario
    with [replication = None] runs exactly one replication. *)
