(** End-to-end simulation runs following the paper's validation
    protocol (Section 4): Poisson generation at every node, uniform
    destinations, a warm-up batch excluded from statistics, a
    measured batch, and a drain batch generated but not measured so
    the measured messages finish under realistic load. *)

type cd_mode =
  | Cut_through
      (** The C/D forwards flits as they arrive (absorbing into its
          buffer when the next network is blocked) — the paper's
          "simple bi-directional buffers", and the mode whose
          latencies the merged-pipeline model (Eq. 20) describes. *)
  | Store_and_forward
      (** The C/D queues whole messages; kept as an ablation. *)

type trace_record = {
  serial : int;          (** generation order, 0-based *)
  src : int;             (** global node id *)
  dst : int;
  generated_at : float;
  delivered_at : float;
  is_intra : bool;
  measured : bool;       (** inside the measured batch *)
}
(** One delivered message, as observed by the per-node "sink modules"
    the paper's Section 4 describes. *)

type config = {
  warmup : int;    (** messages generated before statistics start *)
  measured : int;  (** messages included in statistics *)
  drain : int;     (** extra messages generated after the measured batch *)
  seed : int64;
  destination : Fatnet_workload.Destination.t;
  cd_mode : cd_mode;
  trace : (trace_record -> unit) option;
      (** called at every delivery (all batches), e.g. to stream a
          message trace to CSV; [None] by default *)
  streaming : bool;
      (** enable the engine's closed-form streaming fast path
          (default).  Disabling forces the per-flit state machine —
          same trace, more events; useful for benchmarking and
          differential testing. *)
}

val default_config : config
(** The paper's protocol: 10_000 / 100_000 / 10_000, uniform
    destinations, cut-through C/Ds, a fixed seed. *)

val quick_config : config
(** A scaled-down protocol (1_000 / 10_000 / 1_000) for tests and
    fast sweeps; same structure, more seed noise. *)

type result = {
  latency : Fatnet_stats.Summary.t;       (** measured messages, all classes *)
  intra_latency : Fatnet_stats.Summary.t; (** measured intra-cluster messages *)
  inter_latency : Fatnet_stats.Summary.t; (** measured inter-cluster messages *)
  ci95_half_width : float;
      (** 95% batch-means confidence half-width on the mean latency
          (30 batches over the measured messages); [nan] when too few
          samples *)
  generated : int;
  delivered : int;       (** of the measured batch *)
  end_time : float;      (** simulation clock when the network drained *)
  events : int;          (** engine events processed *)
  wall_seconds : float;
  bottlenecks : (string * float) list;
      (** the five busiest channels (description, fraction of the run
          they were reservation-held) — where the system saturates *)
}

val run :
  ?config:config ->
  system:Fatnet_model.Params.system ->
  message:Fatnet_model.Params.message ->
  lambda_g:float ->
  unit ->
  result
(** Simulate the system at per-node generation rate [lambda_g]
    (messages per time unit).  Runs until the network fully drains.
    Requires [lambda_g > 0.]. *)

val mean_latency :
  ?config:config ->
  system:Fatnet_model.Params.system ->
  message:Fatnet_model.Params.message ->
  lambda_g:float ->
  unit ->
  float
(** Just the measured mean latency. *)
