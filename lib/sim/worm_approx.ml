type message = {
  segments : int array array;
  flits : int;
  on_delivered : float -> unit;
  mutable bottleneck : float; (* slowest hop seen so far *)
}

type event = Head of message * int * int (* segment index, hop index *) | Callback of (float -> unit)

type t = {
  hop_time : float array;
  free_at : float array;
  queue : event Event_queue.t;
  mutable clock : float;
  mutable events : int;
}

let create ~channel_count ~hop_time =
  if channel_count <= 0 then invalid_arg "Worm_approx.create: channel_count must be positive";
  let times = Array.init channel_count hop_time in
  Array.iter
    (fun tau -> if not (tau > 0.) then invalid_arg "Worm_approx.create: hop times must be positive")
    times;
  {
    hop_time = times;
    free_at = Array.make channel_count 0.;
    queue = Event_queue.create ();
    clock = 0.;
    events = 0;
  }

let now t = t.clock

let schedule t ~time f =
  if time < t.clock then invalid_arg "Worm_approx.schedule: time in the past";
  Event_queue.push t.queue ~time (Callback f)

let submit t ~time ~segments ~flits ~on_delivered =
  if segments = [] then invalid_arg "Worm_approx.submit: no segments";
  if flits < 1 then invalid_arg "Worm_approx.submit: flits >= 1";
  List.iter
    (fun seg ->
      if Array.length seg = 0 then invalid_arg "Worm_approx.submit: empty segment";
      Array.iter
        (fun c ->
          if c < 0 || c >= Array.length t.hop_time then
            invalid_arg "Worm_approx.submit: channel id")
        seg)
    segments;
  let m = { segments = Array.of_list segments; flits; on_delivered; bottleneck = 0. } in
  Event_queue.push t.queue ~time (Head (m, 0, 0))

let handle_head t m s k =
  let seg = m.segments.(s) in
  let c = seg.(k) in
  let tau = t.hop_time.(c) in
  let start = Float.max t.clock t.free_at.(c) in
  (* The model's per-stage service: the channel is busy for the whole
     message transfer at local speed. *)
  t.free_at.(c) <- start +. (float_of_int m.flits *. tau);
  if tau > m.bottleneck then m.bottleneck <- tau;
  let head_out = start +. tau in
  if k + 1 < Array.length seg then Event_queue.push t.queue ~time:head_out (Head (m, s, k + 1))
  else if s + 1 < Array.length m.segments then
    (* The C/D cuts the head straight through to the next network. *)
    Event_queue.push t.queue ~time:head_out (Head (m, s + 1, 0))
  else begin
    (* Tail: one pipeline drain behind the head, paced by the slowest
       hop crossed anywhere along the way. *)
    let tail = head_out +. (float_of_int (m.flits - 1) *. m.bottleneck) in
    if tail <= t.clock then m.on_delivered t.clock
    else Event_queue.push t.queue ~time:tail (Callback m.on_delivered)
  end

let run t =
  let continue = ref true in
  while !continue do
    match Event_queue.pop t.queue with
    | None -> continue := false
    | Some (time, ev) ->
        t.clock <- time;
        t.events <- t.events + 1;
        (match ev with
        | Head (m, s, k) -> handle_head t m s k
        | Callback f -> f time)
  done

let events_processed t = t.events

type result = {
  mean_latency : float;
  intra_mean : float;
  inter_mean : float;
  delivered : int;
  events : int;
  wall_seconds : float;
}

let simulate ?(config = Runner.default_config) ~system ~message ~lambda_g () =
  if not (lambda_g > 0.) then invalid_arg "Worm_approx.simulate: lambda_g must be positive";
  let wall_start = Clock.now_ns () in
  let net = System_net.create ~system ~message in
  let space = System_net.space net in
  let total_nodes = Fatnet_workload.Node_space.total_nodes space in
  let engine =
    create ~channel_count:(System_net.channel_count net) ~hop_time:(System_net.hop_time net)
  in
  let rng = Fatnet_prng.Rng.create ~seed:config.Runner.seed () in
  let quota = config.Runner.warmup + config.Runner.measured + config.Runner.drain in
  let generated = ref 0 in
  let all = Fatnet_stats.Welford.create () in
  let intra = Fatnet_stats.Welford.create () in
  let inter = Fatnet_stats.Welford.create () in
  let arrival = Fatnet_workload.Arrival.Poisson lambda_g in
  let launch src t0 =
    let serial = !generated in
    generated := !generated + 1;
    let dst = Fatnet_workload.Destination.draw config.Runner.destination space rng ~src in
    let ci, _ = Fatnet_workload.Node_space.of_global space src in
    let cj, _ = Fatnet_workload.Node_space.of_global space dst in
    let pick_port c =
      let ports = System_net.cd_port_count net c in
      if ports <= 1 then 0 else Fatnet_prng.Rng.int rng ports
    in
    let icn2_choice =
      let choices = System_net.icn2_ascent_choices net in
      if choices <= 1 then 0 else Fatnet_prng.Rng.int rng choices
    in
    let segments =
      System_net.segments net ~src ~dst ~egress_port:(pick_port ci)
        ~ingress_port:(pick_port cj) ~icn2_choice
    in
    let measured =
      serial >= config.Runner.warmup && serial < config.Runner.warmup + config.Runner.measured
    in
    let is_intra = List.length segments = 1 in
    submit engine ~time:t0 ~segments ~flits:message.Fatnet_model.Params.length_flits
      ~on_delivered:(fun finish ->
        if measured then begin
          let l = finish -. t0 in
          Fatnet_stats.Welford.add all l;
          Fatnet_stats.Welford.add (if is_intra then intra else inter) l
        end)
  in
  let rec node_stream node time =
    if !generated < quota then begin
      launch node time;
      schedule_next node time
    end
  and schedule_next node time =
    let dt = Fatnet_workload.Arrival.next_interval arrival rng in
    schedule engine ~time:(time +. dt) (fun t -> node_stream node t)
  in
  for node = 0 to total_nodes - 1 do
    schedule_next node 0.
  done;
  run engine;
  {
    mean_latency = Fatnet_stats.Welford.mean all;
    intra_mean = Fatnet_stats.Welford.mean intra;
    inter_mean = Fatnet_stats.Welford.mean inter;
    delivered = Fatnet_stats.Welford.count all;
    events = events_processed engine;
    wall_seconds = Clock.seconds_since wall_start;
  }
