(** Monotonic wall-clock used to time simulator runs.

    [Unix.gettimeofday] is wall time: NTP slews and steps make it
    jump, which turns the reported [wall_seconds] (and every
    events/sec figure derived from it) into noise on long runs.  This
    wraps the raw CLOCK_MONOTONIC reader that ships with bechamel, so
    elapsed times are immune to clock adjustments. *)

val now_ns : unit -> int64
(** Current monotonic clock reading, in nanoseconds.  Only differences
    between readings are meaningful. *)

val seconds_since : int64 -> float
(** Seconds elapsed since an earlier [now_ns] reading. *)
