(** The complete simulated cluster-of-clusters network: one ICN1 and
    one ECN1 per cluster (the ECN1 carrying an auxiliary C/D leaf)
    plus the global ICN2 whose leaves are the C/Ds, all flattened
    into a single channel id space for the wormhole engine.

    An intra-cluster message makes one wormhole journey through its
    ICN1.  An inter-cluster message makes three: source node to C/D
    through ECN1(i); C/D i to C/D j through ICN2; C/D to destination
    node through ECN1(j).  The C/Ds are store-and-forward: each
    segment is a separate worm, and the hand-off queue is the next
    segment's injection-channel FIFO — exactly the "simple
    bi-directional buffers" of the paper, whose waits Eq. (37)
    models. *)

type t

val create : system:Fatnet_model.Params.system -> message:Fatnet_model.Params.message -> t
(** Builds every network with hop times from Eqs. (11)–(12).
    Validates the system description. *)

val system : t -> Fatnet_model.Params.system

val space : t -> Fatnet_workload.Node_space.t
(** Global node numbering (cluster blocks in order). *)

val channel_count : t -> int

val hop_time : t -> int -> float

val is_ejection : t -> int -> bool

val cd_port_count : t -> int -> int
(** Number of C/D ports on a cluster's ECN1 (one per root switch). *)

val icn2_ascent_choices : t -> int
(** Ascent choices in the ICN2 tree (see
    {!Fatnet_topology.Mport_tree.ascent_choices}). *)

val segments :
  t ->
  src:int ->
  dst:int ->
  egress_port:int ->
  ingress_port:int ->
  icn2_choice:int ->
  int array list
(** The ordered worm routes (in flat channel ids) for a message from
    global node [src] to global node [dst]; one segment for
    intra-cluster traffic, three for inter-cluster.  [egress_port]
    and [ingress_port] select the C/D port used to leave the source
    cluster's ECN1 and enter the destination cluster's ECN1, and
    [icn2_choice] the ICN2 ascent path; the runner load-balances all
    three uniformly, yielding the balanced channel loads the model
    assumes.  Requires [src <> dst]. *)

val describe : t -> string
(** One-line summary (clusters, nodes, channels) for logs. *)

val channel_class : t -> int -> string * int
(** The network family (["icn1"], ["ecn1"] or ["icn2"]) and tree tier
    (see {!Network.channel_level}) of a flat channel id — the
    aggregation key under which the telemetry layer buckets
    utilisation and blocking. *)

val describe_channel : t -> int -> string
(** Which network a flat channel id belongs to, its hop time and
    whether it is an ejection — for utilisation diagnostics. *)
