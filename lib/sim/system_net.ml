module Params = Fatnet_model.Params
module Service_time = Fatnet_model.Service_time

type t = {
  system : Params.system;
  space : Fatnet_workload.Node_space.t;
  icn1 : Network.t array;
  ecn1 : Network.t array;
  icn2 : Network.t;
  icn1_offset : int array;
  ecn1_offset : int array;
  icn2_offset : int;
  total_channels : int;
  hop_times : float array;
  ejections : bool array;
}

let system t = t.system
let space t = t.space
let channel_count t = t.total_channels
let hop_time t c = t.hop_times.(c)
let is_ejection t c = t.ejections.(c)

let create ~system ~message =
  Params.validate_exn system;
  let c_count = Params.cluster_count system in
  let m = system.Params.m in
  let make_net net ~n ~with_aux =
    Network.create ~m ~n
      ~node_hop_time:(Service_time.t_cn net ~message)
      ~switch_hop_time:(Service_time.t_cs net ~message)
      ~with_aux
  in
  let icn1 =
    Array.map (fun c -> make_net c.Params.icn1 ~n:c.Params.tree_depth ~with_aux:false)
      system.Params.clusters
  in
  let ecn1 =
    Array.map (fun c -> make_net c.Params.ecn1 ~n:c.Params.tree_depth ~with_aux:true)
      system.Params.clusters
  in
  let icn2 = make_net system.Params.icn2 ~n:system.Params.icn2_depth ~with_aux:false in
  (* ICN2's node count must cover the C/Ds; validated for C >= 2, and
     irrelevant for C = 1 (no inter-cluster traffic exists). *)
  if c_count > 1 then assert (Network.node_count icn2 = c_count);
  let icn1_offset = Array.make c_count 0 in
  let ecn1_offset = Array.make c_count 0 in
  let total = ref 0 in
  Array.iteri
    (fun i net ->
      icn1_offset.(i) <- !total;
      total := !total + Network.channel_count net)
    icn1;
  Array.iteri
    (fun i net ->
      ecn1_offset.(i) <- !total;
      total := !total + Network.channel_count net)
    ecn1;
  let icn2_offset = !total in
  total := !total + Network.channel_count icn2;
  let hop_times = Array.make !total 0. in
  let ejections = Array.make !total false in
  let fill net offset =
    for c = 0 to Network.channel_count net - 1 do
      hop_times.(offset + c) <- Network.hop_time net c;
      ejections.(offset + c) <- Network.is_ejection net c
    done
  in
  Array.iteri (fun i net -> fill net icn1_offset.(i)) icn1;
  Array.iteri (fun i net -> fill net ecn1_offset.(i)) ecn1;
  fill icn2 icn2_offset;
  let sizes = Array.init c_count (fun i -> Params.cluster_nodes system i) in
  {
    system;
    space = Fatnet_workload.Node_space.create ~cluster_sizes:sizes;
    icn1;
    ecn1;
    icn2;
    icn1_offset;
    ecn1_offset;
    icn2_offset;
    total_channels = !total;
    hop_times;
    ejections;
  }

let offset_route route offset = Array.map (fun c -> c + offset) route

let cd_port_count t cluster = Network.aux_port_count t.ecn1.(cluster)

let icn2_ascent_choices t = Network.ascent_choices t.icn2

let segments t ~src ~dst ~egress_port ~ingress_port ~icn2_choice =
  if src = dst then invalid_arg "System_net.segments: src = dst";
  let ci, ls = Fatnet_workload.Node_space.of_global t.space src in
  let cj, ld = Fatnet_workload.Node_space.of_global t.space dst in
  if ci = cj then
    [
      offset_route
        (Network.route t.icn1.(ci) ~src:(Network.Leaf ls) ~dst:(Network.Leaf ld))
        t.icn1_offset.(ci);
    ]
  else
    [
      offset_route
        (Network.route t.ecn1.(ci) ~src:(Network.Leaf ls) ~dst:(Network.Aux_port egress_port))
        t.ecn1_offset.(ci);
      offset_route
        (Network.route ~choice:icn2_choice t.icn2 ~src:(Network.Leaf ci)
           ~dst:(Network.Leaf cj))
        t.icn2_offset;
      offset_route
        (Network.route t.ecn1.(cj) ~src:(Network.Aux_port ingress_port) ~dst:(Network.Leaf ld))
        t.ecn1_offset.(cj);
    ]

let channel_class t c =
  if c < 0 || c >= t.total_channels then invalid_arg "System_net.channel_class: id";
  let find arr offsets label =
    let result = ref None in
    Array.iteri
      (fun i net ->
        let base = offsets.(i) in
        if !result = None && c >= base && c < base + Network.channel_count net then
          result := Some (label, Network.channel_level net (c - base)))
      arr;
    !result
  in
  match find t.icn1 t.icn1_offset "icn1" with
  | Some cls -> cls
  | None -> (
      match find t.ecn1 t.ecn1_offset "ecn1" with
      | Some cls -> cls
      | None -> ("icn2", Network.channel_level t.icn2 (c - t.icn2_offset)))

let describe_channel t c =
  if c < 0 || c >= t.total_channels then invalid_arg "System_net.describe_channel: id";
  let locate () =
    let find arr offsets label =
      let result = ref None in
      Array.iteri
        (fun i net ->
          let base = offsets.(i) in
          if !result = None && c >= base && c < base + Network.channel_count net then
            result := Some (Printf.sprintf "%s(%d)+%d" label i (c - base)))
        arr;
      !result
    in
    match find t.icn1 t.icn1_offset "icn1" with
    | Some s -> s
    | None -> (
        match find t.ecn1 t.ecn1_offset "ecn1" with
        | Some s -> s
        | None -> Printf.sprintf "icn2+%d" (c - t.icn2_offset))
  in
  Printf.sprintf "%s tau=%.3f%s" (locate ()) t.hop_times.(c)
    (if t.ejections.(c) then " [ej]" else "")

let describe t =
  Printf.sprintf "C=%d N=%d channels=%d"
    (Params.cluster_count t.system)
    (Fatnet_workload.Node_space.total_nodes t.space)
    t.total_channels
