type pair_breakdown = {
  dest : int;
  lambda_ecn1 : float;
  lambda_icn2 : float;
  eta_ecn1 : float;
  eta_icn2 : float;
  network : float;
  waiting : float;
  tail : float;
  cd_wait : float;
  latency : float;
}

type breakdown = {
  l_ex : float;
  w_d : float;
  total : float;
  pairs : pair_breakdown list;
}

(* Head-flit latency of one (r, v, l) journey: K = r + v + 2l - 1
   stages, ECN1(i) for stages [0, r), ICN2 for [r, r + 2l - 1),
   ECN1(j) for the rest; the final stage is the switch-to-node hop in
   cluster j (Eqs. 26-30). *)
let journey_latency ~message_flits ~r ~v ~l ~t_cs_e_i ~t_cs_i2 ~t_cs_e_j ~t_cn_e_j ~eta_ecn1
    ~eta_icn2_relaxed =
  let m = float_of_int message_flits in
  let stages = r + v + (2 * l) - 1 in
  let icn2_end = r + (2 * l) - 1 in
  let internal k = if k < r then m *. t_cs_e_i else if k < icn2_end then m *. t_cs_i2 else m *. t_cs_e_j in
  let eta k = if k >= r && k < icn2_end then eta_icn2_relaxed else eta_ecn1 in
  let times =
    Fatnet_queueing.Blocking.stage_service_times ~final:(m *. t_cn_e_j) ~internal ~eta ~stages
  in
  times.(0)

(* Eq. (34): tail-flit drain of one (r, v, l) journey. *)
let journey_tail ~r ~v ~l ~t_cs_e_i ~t_cs_i2 ~t_cs_e_j ~t_cn_e_j =
  (float_of_int (r - 1) *. t_cs_e_i)
  +. (float_of_int (v - 1) *. t_cs_e_j)
  +. (2. *. float_of_int l *. t_cs_i2)
  +. t_cn_e_j

let evaluate ?(variants = Variants.default) ~(system : Params.system)
    ~(message : Params.message) ~lambda_g ~cluster ~u () =
  if lambda_g < 0. then invalid_arg "Inter.evaluate: negative lambda_g";
  let c_count = Params.cluster_count system in
  if c_count < 2 then invalid_arg "Inter.evaluate: needs at least two clusters";
  let m_flits = message.Params.length_flits in
  let src = system.Params.clusters.(cluster) in
  let n_i = src.Params.tree_depth in
  let nodes_i = Params.cluster_nodes system cluster in
  let dist_i = Fatnet_topology.Distance.create ~m:system.Params.m ~n:n_i in
  let dist_c = Fatnet_topology.Distance.create ~m:system.Params.m ~n:system.Params.icn2_depth in
  let t_cs_e_i = Service_time.t_cs src.Params.ecn1 ~message in
  let t_cn_e_i = Service_time.t_cn src.Params.ecn1 ~message in
  let t_cs_i2 = Service_time.t_cs system.Params.icn2 ~message in
  let delta =
    if variants.Variants.use_relaxing_factor then
      Service_time.relaxing_factor ~ecn1:src.Params.ecn1 ~icn2:system.Params.icn2
    else 1.
  in
  let u_i = u cluster in
  let pair j =
    let dst = system.Params.clusters.(j) in
    let n_j = dst.Params.tree_depth in
    let nodes_j = Params.cluster_nodes system j in
    let dist_j = Fatnet_topology.Distance.create ~m:system.Params.m ~n:n_j in
    let t_cs_e_j = Service_time.t_cs dst.Params.ecn1 ~message in
    let t_cn_e_j = Service_time.t_cn dst.Params.ecn1 ~message in
    let u_j = u j in
    (* Eq. (22): traffic carried by the ECN1 pipeline for this pair. *)
    let outgoing_i = float_of_int nodes_i *. u_i and outgoing_j = float_of_int nodes_j *. u_j in
    let lambda_ecn1 = lambda_g *. (outgoing_i +. outgoing_j) in
    (* Eq. (23): per-C/D rate offered to ICN2, per the variant. *)
    let lambda_icn2 =
      match variants.Variants.lambda_i2 with
      | Variants.Pair_average -> lambda_g *. (outgoing_i +. outgoing_j) /. 2.
      | Variants.Size_scaled ->
          lambda_g
          *. (outgoing_i +. outgoing_j)
          *. float_of_int (nodes_i + nodes_j)
          /. (2. *. float_of_int nodes_i *. float_of_int nodes_j)
    in
    (* Eqs. (24)-(25): per-channel rates. *)
    let eta_ecn1 = Fatnet_topology.Distance.channel_rate dist_i ~lambda:lambda_ecn1 in
    let eta_icn2 =
      lambda_icn2
      *. Fatnet_topology.Distance.mean_links dist_c
      /. (4. *. float_of_int system.Params.icn2_depth)
    in
    let eta_icn2_relaxed = eta_icn2 *. delta in
    (* Eqs. (20)-(21): probability-weighted merged-pipeline latency. *)
    let network = ref 0. and tail = ref 0. in
    Fatnet_topology.Distance.fold dist_i ~init:() ~f:(fun () ~h:r ~p:p_r ->
        Fatnet_topology.Distance.fold dist_j ~init:() ~f:(fun () ~h:v ~p:p_v ->
            Fatnet_topology.Distance.fold dist_c ~init:() ~f:(fun () ~h:l ~p:p_l ->
                let p = p_r *. p_v *. p_l in
                network :=
                  !network
                  +. p
                     *. journey_latency ~message_flits:m_flits ~r ~v ~l ~t_cs_e_i ~t_cs_i2
                          ~t_cs_e_j ~t_cn_e_j ~eta_ecn1 ~eta_icn2_relaxed;
                tail :=
                  !tail +. (p *. journey_tail ~r ~v ~l ~t_cs_e_i ~t_cs_i2 ~t_cs_e_j ~t_cn_e_j))));
    let network = !network and tail = !tail in
    (* Eq. (31): M/G/1 source queue for the egress path; the minimum
       service is the node-to-switch hop in ECN1(i) (Eq. 17's
       analogue). *)
    let min_service = Service_time.message_time t_cn_e_i ~message in
    let variance =
      match variants.Variants.source_variance with
      | Variants.Draper_ghosh -> Fatnet_numerics.Float_utils.square (network -. min_service)
      | Variants.Zero -> 0.
    in
    let source_lambda =
      match variants.Variants.source_rate with
      | Variants.Per_node -> lambda_g *. u_i
      | Variants.Network_total -> lambda_ecn1
    in
    let waiting =
      Fatnet_queueing.Mg1.waiting_time ~lambda:source_lambda
        ~service:{ Fatnet_queueing.Mg1.mean = network; variance }
    in
    (* Eqs. (36)-(37): concentrator and dispatcher buffers, each an
       M/G/1 queue with service M·t_cs(ICN2) and Draper-Ghosh-style
       variance from the network mismatch. *)
    let cd_service = Service_time.message_time t_cs_i2 ~message in
    let cd_variance =
      Fatnet_numerics.Float_utils.square
        (cd_service -. Service_time.message_time t_cs_e_i ~message)
    in
    let cd_one =
      Fatnet_queueing.Mg1.waiting_time ~lambda:lambda_icn2
        ~service:{ Fatnet_queueing.Mg1.mean = cd_service; variance = cd_variance }
    in
    let cd_wait = 2. *. cd_one in
    {
      dest = j;
      lambda_ecn1;
      lambda_icn2;
      eta_ecn1;
      eta_icn2;
      network;
      waiting;
      tail;
      cd_wait;
      latency = waiting +. network +. tail;
    }
  in
  (* Destinations ascending, skipping the source — as an array, so
     the Eq. (35)/(38) sums run through [Float_utils.sum_array]
     (same left-to-right association as the list folds they replace,
     hence the same bits) without the init/filter/map list chain. *)
  let pair_arr = Array.init (c_count - 1) (fun k -> pair (if k < cluster then k else k + 1)) in
  let count = float_of_int (c_count - 1) in
  (* Eqs. (35), (38), (39). *)
  let l_ex =
    Fatnet_numerics.Float_utils.sum_array (Array.map (fun p -> p.latency) pair_arr) /. count
  in
  let w_d =
    Fatnet_numerics.Float_utils.sum_array (Array.map (fun p -> p.cd_wait) pair_arr) /. count
  in
  { l_ex; w_d; total = l_ex +. w_d; pairs = Array.to_list pair_arr }
