module Metrics = Fatnet_obs.Metrics

type cluster_result = {
  cluster : int;
  nodes : int;
  u : float;
  intra : Intra.breakdown;
  inter : Inter.breakdown option;
  combined : float;
}

type t = { mean_latency : float; clusters : cluster_result list }

let outgoing_probability ~system ~cluster =
  let total = Params.total_nodes system in
  let nodes = Params.cluster_nodes system cluster in
  if total <= 1 then 0.
  else 1. -. (float_of_int (nodes - 1) /. float_of_int (total - 1))

let evaluate ?(variants = Variants.default) ?outgoing ~system ~message ~lambda_g () =
  Metrics.incr (Metrics.counter (Metrics.ambient ()) "model_evaluations");
  Params.validate_exn system;
  let c_count = Params.cluster_count system in
  let u =
    match outgoing with
    | Some f -> f
    | None -> fun k -> outgoing_probability ~system ~cluster:k
  in
  let cluster_result i =
    let u_i = u i in
    let intra = Intra.evaluate ~variants ~system ~message ~lambda_g ~cluster:i ~u:u_i () in
    let inter =
      if c_count < 2 then None
      else Some (Inter.evaluate ~variants ~system ~message ~lambda_g ~cluster:i ~u ())
    in
    let combined =
      match inter with
      | None -> intra.Intra.total
      | Some ex -> (u_i *. ex.Inter.total) +. ((1. -. u_i) *. intra.Intra.total)
    in
    { cluster = i; nodes = Params.cluster_nodes system i; u = u_i; intra; inter; combined }
  in
  let clusters = List.init c_count cluster_result in
  let total_nodes = float_of_int (Params.total_nodes system) in
  let mean_latency =
    List.fold_left
      (fun acc r -> acc +. (float_of_int r.nodes /. total_nodes *. r.combined))
      0. clusters
  in
  { mean_latency; clusters }

let mean ?variants ?outgoing ~system ~message ~lambda_g () =
  (evaluate ?variants ?outgoing ~system ~message ~lambda_g ()).mean_latency

let is_saturated ?variants ~system ~message ~lambda_g () =
  let l = mean ?variants ~system ~message ~lambda_g () in
  not (Fatnet_numerics.Float_utils.is_finite l)

let saturation_rate ?variants ?(tol = 1e-9) ~system ~message () =
  let saturated lambda_g = is_saturated ?variants ~system ~message ~lambda_g () in
  let hi = Fatnet_numerics.Solver.find_upper_bracket ~f:saturated ~lo:1e-9 () in
  let rate =
    if hi <= 1e-9 then hi
    else Fatnet_numerics.Solver.boundary ~tol ~pred:saturated ~lo:0. ~hi ()
  in
  Metrics.set
    (Metrics.gauge (Metrics.ambient ()) "model_saturation_rate"
       ~help:"Last saturation rate located by the solver (per-node message rate)")
    rate;
  rate
