(** Allocation-free model evaluation.

    {!Latency.evaluate} is the record-building reference
    implementation: call it when you want the per-cluster breakdown.
    This module is the hot path behind topology searches and sweep
    inner loops: a {!workspace} built once per
    [(system, message, variants, pattern)] precomputes every
    λ-invariant quantity — service times, distance distributions,
    outgoing probabilities, Eq. (19)/(34) tail sums, ICN2 depth
    constants — and {!mean_into} then evaluates Eq. (3) for any λ
    without allocating.

    The fast path is {b bit-identical} to [Latency.mean]: every
    hoisted expression keeps the reference operand order, pinned by
    QCheck property tests and golden tests on both paper
    organizations.  Telemetry matches too: each {!mean_into} bumps
    [model_evaluations] and {!saturation_rate} sets the
    [model_saturation_rate] gauge, exactly like the slow path.

    A workspace is single-domain: it carries mutable scratch, so
    share one per domain, not across domains. *)

type workspace

val workspace :
  ?variants:Variants.t ->
  ?outgoing:(int -> float) ->
  system:Params.system ->
  message:Params.message ->
  unit ->
  workspace
(** Validate the system and precompute all λ-invariant terms.
    [outgoing] overrides Eq. (2) per cluster (the {!Pattern}
    extension); values outside [[0, 1]] raise.
    @raise Invalid_argument when the system fails validation. *)

val mean_into : workspace -> lambda_g:float -> float
(** Eq. (3) at [lambda_g]; [infinity] (or NaN in degenerate
    zero-outgoing corners, as with [Latency.mean]) past saturation.
    Bit-identical to [Latency.mean] with the same inputs, and
    allocation-free.  @raise Invalid_argument on negative rates. *)

val mean : workspace -> lambda_g:float -> float
(** Alias of {!mean_into}. *)

val is_saturated : workspace -> lambda_g:float -> bool
(** The predicted latency diverged at this rate. *)

val saturation_rate :
  ?state:Fatnet_numerics.Solver.bracket_state -> ?tol:float -> workspace -> float
(** The divergence rate.  Without [state] this runs the canonical
    cold search and is bit-identical to [Latency.saturation_rate].
    With [state], successive calls warm-start from the previous
    solve's bracket ({!Fatnet_numerics.Solver.boundary_warm}) — the
    first call against a fresh state still runs the cold sequence
    bit-for-bit. *)

val system : workspace -> Params.system
val message : workspace -> Params.message
val variants : workspace -> Variants.t
