(** Allocation-free model evaluation.

    {!Latency.evaluate} is the record-building reference
    implementation: call it when you want the per-cluster breakdown.
    This module is the hot path behind topology searches and sweep
    inner loops: a {!workspace} built once per
    [(system, message, variants, pattern)] precomputes every
    λ-invariant quantity — service times, distance distributions,
    outgoing probabilities, Eq. (19)/(34) tail sums, ICN2 depth
    constants — and {!mean_into} then evaluates Eq. (3) for any λ
    without allocating.

    The fast path is {b bit-identical} to [Latency.mean]: every
    hoisted expression keeps the reference operand order, pinned by
    QCheck property tests and golden tests on both paper
    organizations.  Telemetry matches too: each {!mean_into} bumps
    [model_evaluations] and {!saturation_rate} sets the
    [model_saturation_rate] gauge, exactly like the slow path.

    A workspace is single-domain: it carries mutable scratch, so
    share one per domain, not across domains. *)

type workspace

val workspace :
  ?variants:Variants.t ->
  ?outgoing:(int -> float) ->
  system:Params.system ->
  message:Params.message ->
  unit ->
  workspace
(** Validate the system and precompute all λ-invariant terms.
    [outgoing] overrides Eq. (2) per cluster (the {!Pattern}
    extension); values outside [[0, 1]] raise.
    @raise Invalid_argument when the system fails validation. *)

val mean_into : workspace -> lambda_g:float -> float
(** Eq. (3) at [lambda_g]; [infinity] (or NaN in degenerate
    zero-outgoing corners, as with [Latency.mean]) past saturation.
    Bit-identical to [Latency.mean] with the same inputs, and
    allocation-free.  @raise Invalid_argument on negative rates. *)

val mean : workspace -> lambda_g:float -> float
(** Alias of {!mean_into}. *)

val mean_memo :
  ?memo:float Fatnet_numerics.Memo.t ->
  ?key:string ->
  workspace ->
  lambda_g:float ->
  float
(** {!mean_into} fronted by a sharded in-memory memo.  [key] must
    identify everything but λ that the result depends on — use the
    scenario canonical hash ({!Fatnet_scenario.Scenario.hash}); the
    λ axis is keyed by its IEEE-754 bits, so a hit returns exactly
    the bits a fresh evaluation would.  Without both [memo] and
    [key] this is plain {!mean_into}. *)

val is_saturated : workspace -> lambda_g:float -> bool
(** The predicted latency diverged at this rate. *)

val tail : workspace -> lambda_g:float -> Tail.t
(** The fitted latency-distribution mixture ({!Tail}) at [lambda_g],
    under the workspace's variants and outgoing probabilities.  This
    runs the record-building reference evaluation (the tail fit needs
    the per-cluster breakdowns), so it is not allocation-free — fit
    once per operating point and read several quantiles off the
    result. *)

val quantile : workspace -> lambda_g:float -> q:float -> float
(** [Tail.quantile (tail ws ~lambda_g) q]: the model's predicted
    latency quantile (e.g. [~q:0.99] for p99); [infinity] past
    saturation.  @raise Invalid_argument unless [0 < q < 1]. *)

val saturation_rate :
  ?state:Fatnet_numerics.Solver.bracket_state -> ?tol:float -> workspace -> float
(** The divergence rate.  Without [state] this runs the canonical
    cold search and is bit-identical to [Latency.saturation_rate].
    With [state], successive calls warm-start from the previous
    solve's bracket ({!Fatnet_numerics.Solver.boundary_warm}) — the
    first call against a fresh state still runs the cold sequence
    bit-for-bit. *)

val system : workspace -> Params.system
val message : workspace -> Params.message
val variants : workspace -> Variants.t

(** Multicore batch evaluation: a persistent pool of OCaml 5 domains,
    each carrying its own {!workspace} cache and warm
    {!Fatnet_numerics.Solver.bracket_state}, fed by atomic-counter
    work sharing (the {!Fatnet_experiments.Parallel} idiom, restated
    here because the dependency arrow points the other way).

    {b Bit-identity:} {!Pool.map}/{!Pool.means} results are
    bit-identical to a sequential {!mean_into} loop over the same
    inputs in input order, for any domain count and any task-to-domain
    assignment: output slots are addressed by input index, each value
    depends only on pure per-domain data plus λ, and IEEE-754
    arithmetic is deterministic.  The property suite pins this across
    domain counts, shuffled orders and saturated points.
    {!Pool.saturation_rates} with [warm:true] is the exception — warm
    brackets depend on each domain's solve history, so values are
    tol-accurate but not scheduling-independent. *)
module Pool : sig
  type t
  (** A pool of [domains - 1] worker domains plus the caller. *)

  type ctx
  (** A domain's slot in the pool: its id, its warm bracket state and
      its cached workspace.  Valid only inside the callback that
      received it. *)

  val recommended_domains : unit -> int
  (** [max 1 (Domain.recommended_domain_count ())] — the default pool
      size, and the documented default of every [--domains] flag. *)

  val create : ?domains:int -> unit -> t
  (** Spawn the worker domains ([domains] defaults to
      {!recommended_domains}; must be [>= 1]).  Pools are cheap to
      keep and expensive to churn — create one per phase, not one per
      batch. *)

  val domains : t -> int

  val shutdown : t -> unit
  (** Stop and join the workers.  Idempotent; {!map} afterwards
      raises. *)

  val with_pool : ?domains:int -> (t -> 'a) -> 'a
  (** [create], run, always [shutdown]. *)

  val map : t -> f:(ctx -> 'a -> 'b) -> 'a array -> 'b array
  (** Evaluate [f] over the array with all pool domains (the caller
      participates).  Tasks are claimed by atomic counter; results
      land at their input index.  Worker-domain metrics registries
      are absorbed into the caller's ambient registry after the join,
      and per-domain [pool_domain_occupancy] gauges are recorded.
      The first task exception is re-raised after the batch stops
      claiming new tasks.  One [map] at a time per pool — concurrent
      or nested calls raise [Invalid_argument]. *)

  val ctx_id : ctx -> int
  (** 0 for the caller, [1 .. domains - 1] for workers. *)

  val ctx_bracket : ctx -> Fatnet_numerics.Solver.bracket_state
  (** The domain's warm bracket state, for custom [f] that run
      saturation searches. *)

  val ctx_workspace :
    ctx ->
    ?variants:Variants.t ->
    ?outgoing:(int -> float) ->
    system:Params.system ->
    message:Params.message ->
    unit ->
    workspace
  (** The domain's workspace for these inputs, rebuilt only when
      [(system, message, variants)] changes physical identity (1-slot
      cache per domain).  With [outgoing] the cache is bypassed —
      closures have no cheap identity. *)

  val means :
    t ->
    ?memo:float Fatnet_numerics.Memo.t ->
    ?key:string ->
    ?variants:Variants.t ->
    ?outgoing:(int -> float) ->
    system:Params.system ->
    message:Params.message ->
    float array ->
    float array
  (** Batch {!mean_into} over λ points; bit-identical to the
      sequential loop.  With [memo] and [key] (see {!mean_memo})
      repeated points are O(lookup) and skip even the workspace
      build. *)

  val saturation_rates :
    t ->
    ?warm:bool ->
    ?tol:float ->
    ?variants:Variants.t ->
    message:Params.message ->
    Params.system array ->
    float array
  (** Batch {!saturation_rate} over a system family.  [warm:false]
      (default) runs the deterministic cold search per system;
      [warm:true] reuses each domain's bracket across its tasks —
      faster on dense families, tol-accurate, but dependent on task
      scheduling. *)
end
