module Metrics = Fatnet_obs.Metrics

type point = { lambda_g : float; latency : float }

type t = { points : point list }

let linear ?variants ~system ~message ~lo ~hi ~steps () =
  if steps < 2 then invalid_arg "Sweep.linear: steps >= 2";
  if lo < 0. || not (lo < hi) then invalid_arg "Sweep.linear: requires 0 <= lo < hi";
  let reg = Metrics.ambient () in
  let points_total = Metrics.counter reg "model_sweep_points" in
  let points_saturated =
    Metrics.counter reg "model_sweep_points_saturated"
      ~help:"Model sweep points whose predicted latency diverged"
  in
  let point i =
    let frac = float_of_int i /. float_of_int (steps - 1) in
    let lambda_g = lo +. (frac *. (hi -. lo)) in
    let latency = Latency.mean ?variants ~system ~message ~lambda_g () in
    Metrics.incr points_total;
    if not (Fatnet_numerics.Float_utils.is_finite latency) then
      Metrics.incr points_saturated;
    { lambda_g; latency }
  in
  { points = List.init steps point }

let up_to_saturation ?variants ?(margin = 0.95) ~system ~message ~steps () =
  if margin <= 0. || margin >= 1. then
    invalid_arg "Sweep.up_to_saturation: margin must be in (0,1)";
  let sat = Latency.saturation_rate ?variants ~system ~message () in
  linear ?variants ~system ~message ~lo:0. ~hi:(margin *. sat) ~steps ()

let finite_points t =
  List.filter_map
    (fun p ->
      if Fatnet_numerics.Float_utils.is_finite p.latency then Some (p.lambda_g, p.latency)
      else None)
    t.points

let pp ppf t =
  List.iter
    (fun p -> Format.fprintf ppf "%.6g\t%.6g@." p.lambda_g p.latency)
    t.points
