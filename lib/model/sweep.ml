module Metrics = Fatnet_obs.Metrics

type point = { lambda_g : float; latency : float }

type t = { points : point list }

(* Both sweep entry points evaluate through an [Eval.workspace]: the
   λ-invariant precomputation is hoisted out of the grid loop, and
   each point costs one allocation-free [Eval.mean_into] — bit-
   identical to the [Latency.mean] the pre-workspace sweeps called. *)

let sweep_counters () =
  let reg = Metrics.ambient () in
  ( Metrics.counter reg "model_sweep_points",
    Metrics.counter reg "model_sweep_points_saturated"
      ~help:"Model sweep points whose predicted latency diverged" )

let linear ?variants ~system ~message ~lo ~hi ~steps () =
  if steps < 2 then invalid_arg "Sweep.linear: steps >= 2";
  if lo < 0. || not (lo < hi) then invalid_arg "Sweep.linear: requires 0 <= lo < hi";
  let ws = Eval.workspace ?variants ~system ~message () in
  let points_total, points_saturated = sweep_counters () in
  let point i =
    let frac = float_of_int i /. float_of_int (steps - 1) in
    let lambda_g = lo +. (frac *. (hi -. lo)) in
    let latency = Eval.mean_into ws ~lambda_g in
    Metrics.incr points_total;
    if not (Fatnet_numerics.Float_utils.is_finite latency) then
      Metrics.incr points_saturated;
    { lambda_g; latency }
  in
  { points = List.init steps point }

let batch ws ~lambdas =
  let points_total, points_saturated = sweep_counters () in
  let arr = Array.of_list lambdas in
  let n = Array.length arr in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare arr.(a) arr.(b)) idx;
  let out = Array.make n 0. in
  (* Saturation is monotone in λ (every Eq. (15)-(37) utilisation is
     linear in λ), so one ascending pass propagates the frontier:
     once a rate diverges, every rate at or above it reports
     [infinity] without being evaluated. *)
  let frontier = ref infinity in
  Array.iter
    (fun k ->
      let lambda_g = arr.(k) in
      let latency =
        if lambda_g >= !frontier then infinity
        else begin
          let l = Eval.mean_into ws ~lambda_g in
          if not (Fatnet_numerics.Float_utils.is_finite l) then frontier := lambda_g;
          l
        end
      in
      Metrics.incr points_total;
      if not (Fatnet_numerics.Float_utils.is_finite latency) then
        Metrics.incr points_saturated;
      out.(k) <- latency)
    idx;
  { points = List.init n (fun k -> { lambda_g = arr.(k); latency = out.(k) }) }

let up_to_saturation ?variants ?(margin = 0.95) ~system ~message ~steps () =
  if not (Float.is_finite margin && margin > 0. && margin < 1.) then
    invalid_arg "Sweep.up_to_saturation: margin must be finite and in (0,1)";
  if steps < 2 then invalid_arg "Sweep.linear: steps >= 2";
  let ws = Eval.workspace ?variants ~system ~message () in
  let sat = Eval.saturation_rate ws in
  let lo = 0. and hi = margin *. sat in
  if not (lo < hi) then invalid_arg "Sweep.linear: requires 0 <= lo < hi";
  let lambdas =
    List.init steps (fun i ->
        let frac = float_of_int i /. float_of_int (steps - 1) in
        lo +. (frac *. (hi -. lo)))
  in
  batch ws ~lambdas

let up_to_saturation_pool pool ?variants ?(margin = 0.95) ~system ~message ~steps () =
  if not (Float.is_finite margin && margin > 0. && margin < 1.) then
    invalid_arg "Sweep.up_to_saturation: margin must be finite and in (0,1)";
  if steps < 2 then invalid_arg "Sweep.linear: steps >= 2";
  let ws = Eval.workspace ?variants ~system ~message () in
  let sat = Eval.saturation_rate ws in
  let lo = 0. and hi = margin *. sat in
  if not (lo < hi) then invalid_arg "Sweep.linear: requires 0 <= lo < hi";
  let lambdas =
    Array.init steps (fun i ->
        let frac = float_of_int i /. float_of_int (steps - 1) in
        lo +. (frac *. (hi -. lo)))
  in
  (* Every grid point sits below [margin]·sat, so the sequential
     path's saturation-frontier shortcut never fires — the pooled
     batch evaluates the same λ values to the same bits. *)
  let out = Eval.Pool.means pool ?variants ~system ~message lambdas in
  let points_total, points_saturated = sweep_counters () in
  Metrics.add points_total steps;
  Array.iter
    (fun l ->
      if not (Fatnet_numerics.Float_utils.is_finite l) then Metrics.incr points_saturated)
    out;
  { points = List.init steps (fun k -> { lambda_g = lambdas.(k); latency = out.(k) }) }

let finite_points t =
  List.filter_map
    (fun p ->
      if Fatnet_numerics.Float_utils.is_finite p.latency then Some (p.lambda_g, p.latency)
      else None)
    t.points

let pp ppf t =
  List.iter
    (fun p -> Format.fprintf ppf "%.6g\t%.6g@." p.lambda_g p.latency)
    t.points
