(* The mean model (Eqs. 1-39) decomposes every message's latency into
   a deterministic transmission part (the probability-weighted
   network head latency plus the tail-flit drain) and the random
   M/G/1 waiting components (the source queue, and for inter-cluster
   traffic the two C/D buffers).  This module turns that decomposition
   into a latency *distribution*: each (cluster, traffic-class)
   component becomes a shifted exponential — a deterministic floor
   plus a wait that is zero with probability 1 - sigma and
   exponential with mean wait_mean / sigma otherwise — and the system
   law is the node- and class-weighted mixture.

   The exponential fit is exact for the M/M/1 waiting time
   (P(W > t) = rho e^[-(1-rho) mu t], i.e. sigma = rho and
   E[W] = wait_mean) and is the standard single-moment
   approximation for M/G/1 tails; composite waits (source queue plus
   two C/D queues) keep the summed mean and take
   sigma = 1 - prod (1 - rho_k), the probability that at least one of
   the independent queues is busy — a two-parameter phase-type
   collapse of the convolution.  Quantiles come from inverting the
   mixture CDF by bisection, so predicted p50/p90/p99/p999 line up
   with the simulator's ladder. *)

type component = {
  weight : float;  (* mixture probability: node share x class share *)
  floor : float;  (* deterministic network + tail-drain latency *)
  wait_mean : float;  (* mean of the waiting components, Eq. (15)/(31)/(36) *)
  sigma : float;  (* P(wait > 0): the fitted queue-busy probability *)
}

type t = { mean : float; components : component list }

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

(* P(W <= t) of one component's wait: a mass of 1 - sigma at zero
   plus sigma x Exponential(sigma / wait_mean), so E[W] = wait_mean. *)
let component_cdf c t =
  if t < c.floor then 0.
  else if c.sigma <= 0. || c.wait_mean <= 0. then 1.
  else 1. -. (c.sigma *. exp (-.c.sigma *. (t -. c.floor) /. c.wait_mean))

let cdf t x =
  List.fold_left (fun acc c -> acc +. (c.weight *. component_cdf c x)) 0. t.components

let complementary_cdf t x = 1. -. cdf t x

let is_finite_t t =
  Fatnet_numerics.Float_utils.is_finite t.mean
  && List.for_all
       (fun c ->
         Float.is_finite c.floor && Float.is_finite c.wait_mean && Float.is_finite c.sigma)
       t.components

let quantile t q =
  if not (q > 0. && q < 1.) then invalid_arg "Tail.quantile: q must be in (0,1)";
  if t.components = [] || not (is_finite_t t) then infinity
  else begin
    (* Smallest x with F(x) >= q.  F is monotone, 0 below the least
       floor; double an upper bracket out from the largest floor,
       then bisect to relative precision well below anything the
       figures or tables render. *)
    let lo0 = List.fold_left (fun a c -> Float.min a c.floor) infinity t.components in
    let hi0 = List.fold_left (fun a c -> Float.max a c.floor) 0. t.components in
    let rec widen hi n =
      if cdf t hi >= q || n > 128 then hi else widen (hi *. 2.) (n + 1)
    in
    let hi = widen (Float.max (2. *. hi0) 1e-12) 0 in
    if cdf t hi < q then infinity
    else begin
      let lo = ref lo0 and hi = ref hi in
      for _ = 1 to 100 do
        let mid = 0.5 *. (!lo +. !hi) in
        if cdf t mid >= q then hi := mid else lo := mid
      done;
      !hi
    end
  end

let of_latency ?(variants = Variants.default) ~(system : Params.system)
    ~(message : Params.message) ~lambda_g (l : Latency.t) =
  let total_nodes = float_of_int (Params.total_nodes system) in
  let cd_service = Service_time.message_time (Service_time.t_cs system.Params.icn2 ~message) ~message in
  let components =
    List.concat_map
      (fun (r : Latency.cluster_result) ->
        let node_share = float_of_int r.Latency.nodes /. total_nodes in
        let intra = r.Latency.intra in
        (* Eq. (15)'s source queue: rho recovers exactly the
           utilization Mg1.waiting_time saw (service mean = the
           network latency, arrival rate per the source-rate
           variant). *)
        let intra_lambda =
          match variants.Variants.source_rate with
          | Variants.Per_node -> lambda_g *. (1. -. r.Latency.u)
          | Variants.Network_total -> intra.Intra.lambda_icn1
        in
        let intra_c =
          {
            weight = node_share *. (1. -. r.Latency.u);
            floor = intra.Intra.network +. intra.Intra.tail;
            wait_mean = intra.Intra.waiting;
            sigma = clamp01 (intra_lambda *. intra.Intra.network);
          }
        in
        let inter_cs =
          match r.Latency.inter with
          | None -> []
          | Some ex ->
              let pair_count = float_of_int (List.length ex.Inter.pairs) in
              List.map
                (fun (p : Inter.pair_breakdown) ->
                  let src_lambda =
                    match variants.Variants.source_rate with
                    | Variants.Per_node -> lambda_g *. r.Latency.u
                    | Variants.Network_total -> p.Inter.lambda_ecn1
                  in
                  let rho_src = clamp01 (src_lambda *. p.Inter.network) in
                  let rho_cd = clamp01 (p.Inter.lambda_icn2 *. cd_service) in
                  (* Source wait + two C/D waits: summed means, busy
                     probability of the three-queue composite. *)
                  {
                    weight = node_share *. r.Latency.u /. pair_count;
                    floor = p.Inter.network +. p.Inter.tail;
                    wait_mean = p.Inter.waiting +. p.Inter.cd_wait;
                    sigma =
                      1. -. ((1. -. rho_src) *. (1. -. rho_cd) *. (1. -. rho_cd));
                  })
                ex.Inter.pairs
        in
        intra_c :: inter_cs)
      l.Latency.clusters
  in
  { mean = l.Latency.mean_latency; components }

let evaluate ?variants ?outgoing ~system ~message ~lambda_g () =
  let l = Latency.evaluate ?variants ?outgoing ~system ~message ~lambda_g () in
  of_latency ?variants ~system ~message ~lambda_g l
