(* The allocation-free evaluation engine behind topology searches and
   sweep inner loops.

   [Latency.evaluate] rebuilds every λ-invariant quantity — service
   times, distance distributions, outgoing probabilities, per-pair
   tail sums — on each call, then allocates per-cluster and per-pair
   breakdown records.  A [workspace] hoists all of that out: it is
   built once per (system, message, variants, pattern) and
   [mean_into] then computes Eq. (3) for any λ touching nothing but
   the precomputed tables and a small scratch array.

   Bit-identity discipline: every hoisted expression keeps the exact
   operand order of the original ([*.] and [+.] are left-associative
   and IEEE-754 ops are deterministic), the stage walk mirrors
   [Blocking.stage_service_times] scalar-for-scalar, and the M/G/1
   wait goes through [Mg1.waiting_time_mv] — the same code
   [Mg1.waiting_time] delegates to.  The QCheck suite pins
   [mean_into] to [Latency.mean] bit-for-bit; any arithmetic change
   here or in Intra/Inter/Latency must keep the two in lockstep. *)

module Metrics = Fatnet_obs.Metrics

type cluster_pre = {
  (* Eq. (2)/(3) constants *)
  u : float;
  one_minus_u : float;
  outgoing : float;  (* N_i · U_i *)
  weight : float;  (* N_i / N *)
  (* intra (ICN1) constants *)
  nodes_f : float;
  probs : float array;  (* P(h), h = index + 1, for the depth-n_i tree *)
  ml : float;  (* mean links of the ICN1 distance distribution *)
  chan_denom : float;  (* 4 · n_i · N(n_i), Eq. (10) denominator *)
  final_icn1 : float;  (* M · t_cn(ICN1) — also Eq. (17)'s service floor *)
  internal_icn1 : float;  (* M · t_cs(ICN1) *)
  tail_intra : float;  (* Eq. (19), λ-invariant *)
  (* inter (ECN1/ICN2) constants *)
  int_e : float;  (* M · t_cs(ECN1) *)
  final_e : float;  (* M · t_cn(ECN1) — Eq. (31)'s service floor *)
  delta : float;  (* Eq. (28) relaxing factor, 1. when disabled *)
  cd_variance : float;  (* Eq. (37) variance term, λ-invariant *)
}

type pair_pre = {
  dest : int;
  sum_outgoing : float;  (* N_i·U_i + N_j·U_j, Eq. (22) *)
  size_c : float;  (* N_i + N_j (Size_scaled numerator) *)
  size_d : float;  (* 2·N_i·N_j (Size_scaled denominator) *)
  tail_pair : float;  (* Eq. (34) probability-weighted tail, λ-invariant *)
}

type workspace = {
  system : Params.system;
  message : Params.message;
  variants : Variants.t;
  c_count : int;
  count_f : float;  (* C - 1 *)
  clusters : cluster_pre array;
  pairs : pair_pre array array;  (* pairs.(i).(k): k-th destination ≠ i, ascending *)
  probs_c : float array;  (* ICN2 distance distribution *)
  ml_c : float;
  icn2_denom : float;  (* 4 · n_c, Eq. (25) denominator *)
  int_i2 : float;  (* M · t_cs(ICN2) — also Eq. (36)'s C/D service *)
  use_dg : bool;
  per_node : bool;
  pair_average : bool;
  scratch : float array;
  (* Cached (registry, counter) so the hot path never does a registry
     lookup: revalidated by physical equality on the ambient. *)
  mutable mreg : Metrics.t;
  mutable mctr : Metrics.counter;
}

let probs_of dist =
  Array.init (Fatnet_topology.Distance.n dist) (fun k ->
      Fatnet_topology.Distance.probability dist (k + 1))

let workspace ?(variants = Variants.default) ?outgoing ~system ~message () =
  Params.validate_exn system;
  let c_count = Params.cluster_count system in
  let u =
    match outgoing with
    | Some f -> f
    | None -> fun k -> Latency.outgoing_probability ~system ~cluster:k
  in
  let m_f = float_of_int message.Params.length_flits in
  let dist_c =
    Fatnet_topology.Distance.create ~m:system.Params.m ~n:system.Params.icn2_depth
  in
  let t_cs_i2 = Service_time.t_cs system.Params.icn2 ~message in
  let int_i2 = Service_time.message_time t_cs_i2 ~message in
  let total_nodes_f = float_of_int (Params.total_nodes system) in
  let clusters =
    Array.init c_count (fun i ->
        let c = system.Params.clusters.(i) in
        let u_i = u i in
        if u_i < 0. || u_i > 1. then invalid_arg "Eval.workspace: u out of [0,1]";
        let nodes = Params.cluster_nodes system i in
        let dist = Fatnet_topology.Distance.create ~m:system.Params.m ~n:c.Params.tree_depth in
        let t_cn = Service_time.t_cn c.Params.icn1 ~message in
        let t_cs = Service_time.t_cs c.Params.icn1 ~message in
        let tail_intra =
          (* Eq. (19) verbatim, including the fold order. *)
          Fatnet_topology.Distance.fold dist ~init:0. ~f:(fun acc ~h ~p ->
              acc +. (p *. ((2. *. float_of_int (h - 1) *. t_cs) +. t_cn)))
        in
        let t_cs_e = Service_time.t_cs c.Params.ecn1 ~message in
        let t_cn_e = Service_time.t_cn c.Params.ecn1 ~message in
        let int_e = Service_time.message_time t_cs_e ~message in
        let delta =
          if variants.Variants.use_relaxing_factor then
            Service_time.relaxing_factor ~ecn1:c.Params.ecn1 ~icn2:system.Params.icn2
          else 1.
        in
        let cd_variance =
          Fatnet_numerics.Float_utils.square
            (int_i2 -. Service_time.message_time t_cs_e ~message)
        in
        {
          u = u_i;
          one_minus_u = 1. -. u_i;
          outgoing = float_of_int nodes *. u_i;
          weight = float_of_int nodes /. total_nodes_f;
          nodes_f = float_of_int nodes;
          probs = probs_of dist;
          ml = Fatnet_topology.Distance.mean_links dist;
          chan_denom =
            4.
            *. float_of_int (Fatnet_topology.Distance.n dist)
            *. float_of_int (Fatnet_topology.Distance.node_count dist);
          final_icn1 = m_f *. t_cn;
          internal_icn1 = m_f *. t_cs;
          tail_intra;
          int_e;
          final_e = m_f *. t_cn_e;
          delta;
          cd_variance;
        })
  in
  (* Raw per-cluster ECN1 service times, needed once more for the
     λ-invariant Eq. (34) tail sums. *)
  let t_cs_e_raw =
    Array.init c_count (fun i ->
        Service_time.t_cs system.Params.clusters.(i).Params.ecn1 ~message)
  in
  let t_cn_e_raw =
    Array.init c_count (fun i ->
        Service_time.t_cn system.Params.clusters.(i).Params.ecn1 ~message)
  in
  let probs_c = probs_of dist_c in
  let pairs =
    if c_count < 2 then Array.make c_count [||]
    else
      Array.init c_count (fun i ->
          let cp = clusters.(i) in
          Array.init (c_count - 1) (fun k ->
              let j = if k < i then k else k + 1 in
              let cq = clusters.(j) in
              let t_cs_e_i = t_cs_e_raw.(i) in
              let t_cs_e_j = t_cs_e_raw.(j) in
              let t_cn_e_j = t_cn_e_raw.(j) in
              (* Eq. (34) weighted over the (r, v, l) journey mix —
                 the same triple fold and accumulation as
                 [Inter.evaluate], just hoisted out of the λ loop. *)
              let tail = ref 0. in
              Array.iteri
                (fun ri p_r ->
                  let r = ri + 1 in
                  Array.iteri
                    (fun vi p_v ->
                      let v = vi + 1 in
                      Array.iteri
                        (fun li p_l ->
                          let l = li + 1 in
                          let p = p_r *. p_v *. p_l in
                          tail :=
                            !tail
                            +. (p
                               *. ((float_of_int (r - 1) *. t_cs_e_i)
                                  +. (float_of_int (v - 1) *. t_cs_e_j)
                                  +. (2. *. float_of_int l *. t_cs_i2)
                                  +. t_cn_e_j)))
                        probs_c)
                    cq.probs)
                cp.probs;
              let nodes_i = Params.cluster_nodes system i in
              let nodes_j = Params.cluster_nodes system j in
              {
                dest = j;
                sum_outgoing = cp.outgoing +. cq.outgoing;
                size_c = float_of_int (nodes_i + nodes_j);
                size_d = 2. *. cp.nodes_f *. cq.nodes_f;
                tail_pair = !tail;
              }))
  in
  let reg = Metrics.ambient () in
  {
    system;
    message;
    variants;
    c_count;
    count_f = float_of_int (c_count - 1);
    clusters;
    pairs;
    probs_c;
    ml_c = Fatnet_topology.Distance.mean_links dist_c;
    icn2_denom = 4. *. float_of_int system.Params.icn2_depth;
    int_i2;
    use_dg = variants.Variants.source_variance = Variants.Draper_ghosh;
    per_node = variants.Variants.source_rate = Variants.Per_node;
    pair_average = variants.Variants.lambda_i2 = Variants.Pair_average;
    scratch = Array.make 8 0.;
    mreg = reg;
    mctr = Metrics.counter reg "model_evaluations";
  }

let system ws = ws.system
let message ws = ws.message
let variants ws = ws.variants

(* Scratch slots: 0 = Eq. (3) accumulator, 1 = network accumulator,
   2 = stage walk service time, 3 = stage walk downstream waits,
   4 = Eq. (35) latency sum, 5 = Eq. (38) C/D wait sum. *)

(* Same-module mirror of [Mg1.waiting_time_mv], verbatim: without
   flambda a cross-module float call boxes three arguments and the
   result, which alone costs ~23 kB per [mean_into] on org_544.
   Inlined here the whole evaluation stays on the float registers.
   The bit-identity suite pins this against the real Mg1. *)
let[@inline] mg1_wait ~lambda ~mean ~variance =
  if mean < 0. then invalid_arg "Mg1: negative service mean";
  if variance < 0. then invalid_arg "Mg1: negative service variance";
  if lambda < 0. then invalid_arg "Mg1.waiting_time: negative arrival rate";
  if lambda = 0. then 0.
  else
    let rho = lambda *. mean in
    if rho >= 1. then infinity
    else lambda *. ((mean *. mean) +. variance) /. (2. *. (1. -. rho))

let mean_into ws ~lambda_g =
  if lambda_g < 0. then invalid_arg "Eval.mean_into: negative lambda_g";
  let reg = Metrics.ambient () in
  if reg != ws.mreg then begin
    ws.mreg <- reg;
    ws.mctr <- Metrics.counter reg "model_evaluations"
  end;
  Metrics.incr ws.mctr;
  let acc = ws.scratch in
  acc.(0) <- 0.;
  for i = 0 to ws.c_count - 1 do
    let cp = ws.clusters.(i) in
    (* ---- intra, Eqs. (5)-(19) ---- *)
    let lambda_icn1 = cp.nodes_f *. lambda_g *. cp.one_minus_u in
    let eta_icn1 = lambda_icn1 *. cp.ml /. cp.chan_denom in
    acc.(1) <- 0.;
    let nh = Array.length cp.probs in
    for hi = 0 to nh - 1 do
      (* Eq. (14)'s backward walk, scalarized: only stage 0's service
         time is consumed and each wait reads only the next stage's,
         so two scalars replace the stage array. *)
      let stages = (2 * (hi + 1)) - 1 in
      acc.(2) <- cp.final_icn1;
      acc.(3) <- 0.;
      for _k = stages - 2 downto 0 do
        acc.(3) <- acc.(3) +. (0.5 *. eta_icn1 *. acc.(2) *. acc.(2));
        acc.(2) <- cp.internal_icn1 +. acc.(3)
      done;
      acc.(1) <- acc.(1) +. (cp.probs.(hi) *. acc.(2))
    done;
    let network = acc.(1) in
    let variance =
      if ws.use_dg then begin
        let d = network -. cp.final_icn1 in
        d *. d
      end
      else 0.
    in
    let source_lambda = if ws.per_node then lambda_g *. cp.one_minus_u else lambda_icn1 in
    let waiting = mg1_wait ~lambda:source_lambda ~mean:network ~variance in
    let intra_total = waiting +. network +. cp.tail_intra in
    let combined =
      if ws.c_count < 2 then intra_total
      else begin
        (* ---- inter, Eqs. (20)-(39) ---- *)
        acc.(4) <- 0.;
        acc.(5) <- 0.;
        let prs = ws.pairs.(i) in
        let nl = Array.length ws.probs_c in
        for k = 0 to Array.length prs - 1 do
          let pr = prs.(k) in
          let cq = ws.clusters.(pr.dest) in
          let lambda_ecn1 = lambda_g *. pr.sum_outgoing in
          let lambda_icn2 =
            if ws.pair_average then lambda_g *. pr.sum_outgoing /. 2.
            else lambda_g *. pr.sum_outgoing *. pr.size_c /. pr.size_d
          in
          let eta_ecn1 = lambda_ecn1 *. cp.ml /. cp.chan_denom in
          let eta_icn2 = lambda_icn2 *. ws.ml_c /. ws.icn2_denom in
          let eta_icn2_relaxed = eta_icn2 *. cp.delta in
          acc.(1) <- 0.;
          let nr = Array.length cp.probs and nv = Array.length cq.probs in
          for ri = 0 to nr - 1 do
            let r = ri + 1 in
            for vi = 0 to nv - 1 do
              let v = vi + 1 in
              for li = 0 to nl - 1 do
                let l = li + 1 in
                let p = cp.probs.(ri) *. cq.probs.(vi) *. ws.probs_c.(li) in
                let stages = r + v + (2 * l) - 1 in
                let icn2_end = r + (2 * l) - 1 in
                acc.(2) <- cq.final_e;
                acc.(3) <- 0.;
                for k2 = stages - 2 downto 0 do
                  let s = k2 + 1 in
                  let eta =
                    if s >= r && s < icn2_end then eta_icn2_relaxed else eta_ecn1
                  in
                  acc.(3) <- acc.(3) +. (0.5 *. eta *. acc.(2) *. acc.(2));
                  let internal =
                    if k2 < r then cp.int_e
                    else if k2 < icn2_end then ws.int_i2
                    else cq.int_e
                  in
                  acc.(2) <- internal +. acc.(3)
                done;
                acc.(1) <- acc.(1) +. (p *. acc.(2))
              done
            done
          done;
          let network = acc.(1) in
          let variance =
            if ws.use_dg then begin
              let d = network -. cp.final_e in
              d *. d
            end
            else 0.
          in
          let source_lambda = if ws.per_node then lambda_g *. cp.u else lambda_ecn1 in
          let waiting = mg1_wait ~lambda:source_lambda ~mean:network ~variance in
          let cd_one =
            mg1_wait ~lambda:lambda_icn2 ~mean:ws.int_i2 ~variance:cp.cd_variance
          in
          acc.(4) <- acc.(4) +. (waiting +. network +. pr.tail_pair);
          acc.(5) <- acc.(5) +. (2. *. cd_one)
        done;
        let l_ex = acc.(4) /. ws.count_f in
        let w_d = acc.(5) /. ws.count_f in
        let inter_total = l_ex +. w_d in
        (cp.u *. inter_total) +. (cp.one_minus_u *. intra_total)
      end
    in
    acc.(0) <- acc.(0) +. (cp.weight *. combined)
  done;
  acc.(0)

let mean = mean_into

let is_saturated ws ~lambda_g =
  not (Fatnet_numerics.Float_utils.is_finite (mean_into ws ~lambda_g))

let saturation_rate ?state ?(tol = 1e-9) ws =
  let saturated lambda_g = is_saturated ws ~lambda_g in
  let rate =
    match state with
    | Some state -> Fatnet_numerics.Solver.boundary_warm ~tol ~state ~pred:saturated ~lo:0. ()
    | None ->
        (* The canonical cold sequence, as in [Latency.saturation_rate]. *)
        let hi = Fatnet_numerics.Solver.find_upper_bracket ~f:saturated ~lo:1e-9 () in
        if hi <= 1e-9 then hi
        else Fatnet_numerics.Solver.boundary ~tol ~pred:saturated ~lo:0. ~hi ()
  in
  Metrics.set
    (Metrics.gauge (Metrics.ambient ()) "model_saturation_rate"
       ~help:"Last saturation rate located by the solver (per-node message rate)")
    rate;
  rate
