(* The allocation-free evaluation engine behind topology searches and
   sweep inner loops.

   [Latency.evaluate] rebuilds every λ-invariant quantity — service
   times, distance distributions, outgoing probabilities, per-pair
   tail sums — on each call, then allocates per-cluster and per-pair
   breakdown records.  A [workspace] hoists all of that out: it is
   built once per (system, message, variants, pattern) and
   [mean_into] then computes Eq. (3) for any λ touching nothing but
   the precomputed tables and a small scratch array.

   Bit-identity discipline: every hoisted expression keeps the exact
   operand order of the original ([*.] and [+.] are left-associative
   and IEEE-754 ops are deterministic), the stage walk mirrors
   [Blocking.stage_service_times] scalar-for-scalar, and the M/G/1
   wait goes through [Mg1.waiting_time_mv] — the same code
   [Mg1.waiting_time] delegates to.  The QCheck suite pins
   [mean_into] to [Latency.mean] bit-for-bit; any arithmetic change
   here or in Intra/Inter/Latency must keep the two in lockstep. *)

module Metrics = Fatnet_obs.Metrics

type cluster_pre = {
  (* Eq. (2)/(3) constants *)
  u : float;
  one_minus_u : float;
  outgoing : float;  (* N_i · U_i *)
  weight : float;  (* N_i / N *)
  (* intra (ICN1) constants *)
  nodes_f : float;
  probs : float array;  (* P(h), h = index + 1, for the depth-n_i tree *)
  ml : float;  (* mean links of the ICN1 distance distribution *)
  chan_denom : float;  (* 4 · n_i · N(n_i), Eq. (10) denominator *)
  final_icn1 : float;  (* M · t_cn(ICN1) — also Eq. (17)'s service floor *)
  internal_icn1 : float;  (* M · t_cs(ICN1) *)
  tail_intra : float;  (* Eq. (19), λ-invariant *)
  (* inter (ECN1/ICN2) constants *)
  int_e : float;  (* M · t_cs(ECN1) *)
  final_e : float;  (* M · t_cn(ECN1) — Eq. (31)'s service floor *)
  delta : float;  (* Eq. (28) relaxing factor, 1. when disabled *)
  cd_variance : float;  (* Eq. (37) variance term, λ-invariant *)
}

type pair_pre = {
  dest : int;
  sum_outgoing : float;  (* N_i·U_i + N_j·U_j, Eq. (22) *)
  size_c : float;  (* N_i + N_j (Size_scaled numerator) *)
  size_d : float;  (* 2·N_i·N_j (Size_scaled denominator) *)
  tail_pair : float;  (* Eq. (34) probability-weighted tail, λ-invariant *)
}

type workspace = {
  system : Params.system;
  message : Params.message;
  variants : Variants.t;
  c_count : int;
  count_f : float;  (* C - 1 *)
  clusters : cluster_pre array;
  pairs : pair_pre array array;  (* pairs.(i).(k): k-th destination ≠ i, ascending *)
  probs_c : float array;  (* ICN2 distance distribution *)
  ml_c : float;
  icn2_denom : float;  (* 4 · n_c, Eq. (25) denominator *)
  int_i2 : float;  (* M · t_cs(ICN2) — also Eq. (36)'s C/D service *)
  use_dg : bool;
  per_node : bool;
  pair_average : bool;
  scratch : float array;
  (* Cached (registry, counter) so the hot path never does a registry
     lookup: revalidated by physical equality on the ambient. *)
  mutable mreg : Metrics.t;
  mutable mctr : Metrics.counter;
}

let probs_of dist =
  Array.init (Fatnet_topology.Distance.n dist) (fun k ->
      Fatnet_topology.Distance.probability dist (k + 1))

let workspace ?(variants = Variants.default) ?outgoing ~system ~message () =
  Params.validate_exn system;
  let c_count = Params.cluster_count system in
  let u =
    match outgoing with
    | Some f -> f
    | None -> fun k -> Latency.outgoing_probability ~system ~cluster:k
  in
  let m_f = float_of_int message.Params.length_flits in
  let dist_c =
    Fatnet_topology.Distance.create ~m:system.Params.m ~n:system.Params.icn2_depth
  in
  let t_cs_i2 = Service_time.t_cs system.Params.icn2 ~message in
  let int_i2 = Service_time.message_time t_cs_i2 ~message in
  let total_nodes_f = float_of_int (Params.total_nodes system) in
  let clusters =
    Array.init c_count (fun i ->
        let c = system.Params.clusters.(i) in
        let u_i = u i in
        if u_i < 0. || u_i > 1. then invalid_arg "Eval.workspace: u out of [0,1]";
        let nodes = Params.cluster_nodes system i in
        let dist = Fatnet_topology.Distance.create ~m:system.Params.m ~n:c.Params.tree_depth in
        let t_cn = Service_time.t_cn c.Params.icn1 ~message in
        let t_cs = Service_time.t_cs c.Params.icn1 ~message in
        let tail_intra =
          (* Eq. (19) verbatim, including the fold order. *)
          Fatnet_topology.Distance.fold dist ~init:0. ~f:(fun acc ~h ~p ->
              acc +. (p *. ((2. *. float_of_int (h - 1) *. t_cs) +. t_cn)))
        in
        let t_cs_e = Service_time.t_cs c.Params.ecn1 ~message in
        let t_cn_e = Service_time.t_cn c.Params.ecn1 ~message in
        let int_e = Service_time.message_time t_cs_e ~message in
        let delta =
          if variants.Variants.use_relaxing_factor then
            Service_time.relaxing_factor ~ecn1:c.Params.ecn1 ~icn2:system.Params.icn2
          else 1.
        in
        let cd_variance =
          Fatnet_numerics.Float_utils.square
            (int_i2 -. Service_time.message_time t_cs_e ~message)
        in
        {
          u = u_i;
          one_minus_u = 1. -. u_i;
          outgoing = float_of_int nodes *. u_i;
          weight = float_of_int nodes /. total_nodes_f;
          nodes_f = float_of_int nodes;
          probs = probs_of dist;
          ml = Fatnet_topology.Distance.mean_links dist;
          chan_denom =
            4.
            *. float_of_int (Fatnet_topology.Distance.n dist)
            *. float_of_int (Fatnet_topology.Distance.node_count dist);
          final_icn1 = m_f *. t_cn;
          internal_icn1 = m_f *. t_cs;
          tail_intra;
          int_e;
          final_e = m_f *. t_cn_e;
          delta;
          cd_variance;
        })
  in
  (* Raw per-cluster ECN1 service times, needed once more for the
     λ-invariant Eq. (34) tail sums. *)
  let t_cs_e_raw =
    Array.init c_count (fun i ->
        Service_time.t_cs system.Params.clusters.(i).Params.ecn1 ~message)
  in
  let t_cn_e_raw =
    Array.init c_count (fun i ->
        Service_time.t_cn system.Params.clusters.(i).Params.ecn1 ~message)
  in
  let probs_c = probs_of dist_c in
  let pairs =
    if c_count < 2 then Array.make c_count [||]
    else
      Array.init c_count (fun i ->
          let cp = clusters.(i) in
          Array.init (c_count - 1) (fun k ->
              let j = if k < i then k else k + 1 in
              let cq = clusters.(j) in
              let t_cs_e_i = t_cs_e_raw.(i) in
              let t_cs_e_j = t_cs_e_raw.(j) in
              let t_cn_e_j = t_cn_e_raw.(j) in
              (* Eq. (34) weighted over the (r, v, l) journey mix —
                 the same triple fold and accumulation as
                 [Inter.evaluate], just hoisted out of the λ loop. *)
              let tail = ref 0. in
              Array.iteri
                (fun ri p_r ->
                  let r = ri + 1 in
                  Array.iteri
                    (fun vi p_v ->
                      let v = vi + 1 in
                      Array.iteri
                        (fun li p_l ->
                          let l = li + 1 in
                          let p = p_r *. p_v *. p_l in
                          tail :=
                            !tail
                            +. (p
                               *. ((float_of_int (r - 1) *. t_cs_e_i)
                                  +. (float_of_int (v - 1) *. t_cs_e_j)
                                  +. (2. *. float_of_int l *. t_cs_i2)
                                  +. t_cn_e_j)))
                        probs_c)
                    cq.probs)
                cp.probs;
              let nodes_i = Params.cluster_nodes system i in
              let nodes_j = Params.cluster_nodes system j in
              {
                dest = j;
                sum_outgoing = cp.outgoing +. cq.outgoing;
                size_c = float_of_int (nodes_i + nodes_j);
                size_d = 2. *. cp.nodes_f *. cq.nodes_f;
                tail_pair = !tail;
              }))
  in
  let reg = Metrics.ambient () in
  {
    system;
    message;
    variants;
    c_count;
    count_f = float_of_int (c_count - 1);
    clusters;
    pairs;
    probs_c;
    ml_c = Fatnet_topology.Distance.mean_links dist_c;
    icn2_denom = 4. *. float_of_int system.Params.icn2_depth;
    int_i2;
    use_dg = variants.Variants.source_variance = Variants.Draper_ghosh;
    per_node = variants.Variants.source_rate = Variants.Per_node;
    pair_average = variants.Variants.lambda_i2 = Variants.Pair_average;
    scratch = Array.make 8 0.;
    mreg = reg;
    mctr = Metrics.counter reg "model_evaluations";
  }

let system ws = ws.system
let message ws = ws.message
let variants ws = ws.variants

(* Scratch slots: 0 = Eq. (3) accumulator, 1 = network accumulator,
   2 = stage walk service time, 3 = stage walk downstream waits,
   4 = Eq. (35) latency sum, 5 = Eq. (38) C/D wait sum. *)

(* Same-module mirror of [Mg1.waiting_time_mv], verbatim: without
   flambda a cross-module float call boxes three arguments and the
   result, which alone costs ~23 kB per [mean_into] on org_544.
   Inlined here the whole evaluation stays on the float registers.
   The bit-identity suite pins this against the real Mg1. *)
let[@inline] mg1_wait ~lambda ~mean ~variance =
  if mean < 0. then invalid_arg "Mg1: negative service mean";
  if variance < 0. then invalid_arg "Mg1: negative service variance";
  if lambda < 0. then invalid_arg "Mg1.waiting_time: negative arrival rate";
  if lambda = 0. then 0.
  else
    let rho = lambda *. mean in
    if rho >= 1. then infinity
    else lambda *. ((mean *. mean) +. variance) /. (2. *. (1. -. rho))

let mean_into ws ~lambda_g =
  if lambda_g < 0. then invalid_arg "Eval.mean_into: negative lambda_g";
  let reg = Metrics.ambient () in
  if reg != ws.mreg then begin
    ws.mreg <- reg;
    ws.mctr <- Metrics.counter reg "model_evaluations"
  end;
  Metrics.incr ws.mctr;
  let acc = ws.scratch in
  acc.(0) <- 0.;
  for i = 0 to ws.c_count - 1 do
    let cp = ws.clusters.(i) in
    (* ---- intra, Eqs. (5)-(19) ---- *)
    let lambda_icn1 = cp.nodes_f *. lambda_g *. cp.one_minus_u in
    let eta_icn1 = lambda_icn1 *. cp.ml /. cp.chan_denom in
    acc.(1) <- 0.;
    let nh = Array.length cp.probs in
    for hi = 0 to nh - 1 do
      (* Eq. (14)'s backward walk, scalarized: only stage 0's service
         time is consumed and each wait reads only the next stage's,
         so two scalars replace the stage array. *)
      let stages = (2 * (hi + 1)) - 1 in
      acc.(2) <- cp.final_icn1;
      acc.(3) <- 0.;
      for _k = stages - 2 downto 0 do
        acc.(3) <- acc.(3) +. (0.5 *. eta_icn1 *. acc.(2) *. acc.(2));
        acc.(2) <- cp.internal_icn1 +. acc.(3)
      done;
      acc.(1) <- acc.(1) +. (cp.probs.(hi) *. acc.(2))
    done;
    let network = acc.(1) in
    let variance =
      if ws.use_dg then begin
        let d = network -. cp.final_icn1 in
        d *. d
      end
      else 0.
    in
    let source_lambda = if ws.per_node then lambda_g *. cp.one_minus_u else lambda_icn1 in
    let waiting = mg1_wait ~lambda:source_lambda ~mean:network ~variance in
    let intra_total = waiting +. network +. cp.tail_intra in
    let combined =
      if ws.c_count < 2 then intra_total
      else begin
        (* ---- inter, Eqs. (20)-(39) ---- *)
        acc.(4) <- 0.;
        acc.(5) <- 0.;
        let prs = ws.pairs.(i) in
        let nl = Array.length ws.probs_c in
        for k = 0 to Array.length prs - 1 do
          let pr = prs.(k) in
          let cq = ws.clusters.(pr.dest) in
          let lambda_ecn1 = lambda_g *. pr.sum_outgoing in
          let lambda_icn2 =
            if ws.pair_average then lambda_g *. pr.sum_outgoing /. 2.
            else lambda_g *. pr.sum_outgoing *. pr.size_c /. pr.size_d
          in
          let eta_ecn1 = lambda_ecn1 *. cp.ml /. cp.chan_denom in
          let eta_icn2 = lambda_icn2 *. ws.ml_c /. ws.icn2_denom in
          let eta_icn2_relaxed = eta_icn2 *. cp.delta in
          acc.(1) <- 0.;
          let nr = Array.length cp.probs and nv = Array.length cq.probs in
          for ri = 0 to nr - 1 do
            let r = ri + 1 in
            for vi = 0 to nv - 1 do
              let v = vi + 1 in
              for li = 0 to nl - 1 do
                let l = li + 1 in
                let p = cp.probs.(ri) *. cq.probs.(vi) *. ws.probs_c.(li) in
                let stages = r + v + (2 * l) - 1 in
                let icn2_end = r + (2 * l) - 1 in
                acc.(2) <- cq.final_e;
                acc.(3) <- 0.;
                for k2 = stages - 2 downto 0 do
                  let s = k2 + 1 in
                  let eta =
                    if s >= r && s < icn2_end then eta_icn2_relaxed else eta_ecn1
                  in
                  acc.(3) <- acc.(3) +. (0.5 *. eta *. acc.(2) *. acc.(2));
                  let internal =
                    if k2 < r then cp.int_e
                    else if k2 < icn2_end then ws.int_i2
                    else cq.int_e
                  in
                  acc.(2) <- internal +. acc.(3)
                done;
                acc.(1) <- acc.(1) +. (p *. acc.(2))
              done
            done
          done;
          let network = acc.(1) in
          let variance =
            if ws.use_dg then begin
              let d = network -. cp.final_e in
              d *. d
            end
            else 0.
          in
          let source_lambda = if ws.per_node then lambda_g *. cp.u else lambda_ecn1 in
          let waiting = mg1_wait ~lambda:source_lambda ~mean:network ~variance in
          let cd_one =
            mg1_wait ~lambda:lambda_icn2 ~mean:ws.int_i2 ~variance:cp.cd_variance
          in
          acc.(4) <- acc.(4) +. (waiting +. network +. pr.tail_pair);
          acc.(5) <- acc.(5) +. (2. *. cd_one)
        done;
        let l_ex = acc.(4) /. ws.count_f in
        let w_d = acc.(5) /. ws.count_f in
        let inter_total = l_ex +. w_d in
        (cp.u *. inter_total) +. (cp.one_minus_u *. intra_total)
      end
    in
    acc.(0) <- acc.(0) +. (cp.weight *. combined)
  done;
  acc.(0)

let mean = mean_into

(* Memoised front: the memo key is (scenario canonical hash, λ bits),
   so a hit returns the exact bits a fresh [mean_into] would produce —
   the model is a pure function of those two identities.  Callers
   without a key (no scenario in hand) fall through to the plain
   evaluation. *)
let mean_memo ?memo ?key ws ~lambda_g =
  match (memo, key) with
  | Some memo, Some key ->
      Fatnet_numerics.Memo.find_or_compute memo ~key
        ~bits:(Int64.bits_of_float lambda_g) (fun () -> mean_into ws ~lambda_g)
  | _ -> mean_into ws ~lambda_g

let is_saturated ws ~lambda_g =
  not (Fatnet_numerics.Float_utils.is_finite (mean_into ws ~lambda_g))

(* Distribution view: quantiles come from the Tail mixture fitted on
   the reference evaluation (the record-building path — the tail fit
   needs the per-cluster breakdowns, which the allocation-free fast
   path never materialises).  The workspace's outgoing probabilities
   are reused, so a Pattern-extended workspace yields
   pattern-consistent tails. *)
let tail ws ~lambda_g =
  let outgoing k = ws.clusters.(k).u in
  let l =
    Latency.evaluate ~variants:ws.variants ~outgoing ~system:ws.system ~message:ws.message
      ~lambda_g ()
  in
  Tail.of_latency ~variants:ws.variants ~system:ws.system ~message:ws.message ~lambda_g l

let quantile ws ~lambda_g ~q = Tail.quantile (tail ws ~lambda_g) q

let saturation_rate ?state ?(tol = 1e-9) ws =
  let saturated lambda_g = is_saturated ws ~lambda_g in
  let rate =
    match state with
    | Some state -> Fatnet_numerics.Solver.boundary_warm ~tol ~state ~pred:saturated ~lo:0. ()
    | None ->
        (* The canonical cold sequence, as in [Latency.saturation_rate]. *)
        let hi = Fatnet_numerics.Solver.find_upper_bracket ~f:saturated ~lo:1e-9 () in
        if hi <= 1e-9 then hi
        else Fatnet_numerics.Solver.boundary ~tol ~pred:saturated ~lo:0. ~hi ()
  in
  Metrics.set
    (Metrics.gauge (Metrics.ambient ()) "model_saturation_rate"
       ~help:"Last saturation rate located by the solver (per-node message rate)")
    rate;
  rate

(* ---- the multicore batch engine ---- *)

module Pool = struct
  module Solver = Fatnet_numerics.Solver
  module Memo = Fatnet_numerics.Memo

  (* A persistent pool of [size - 1] worker domains plus the calling
     domain.  Work distribution is the same atomic-counter work
     sharing as [Fatnet_experiments.Parallel] (which this layer
     cannot depend on — the dependency arrow points the other way):
     every domain, caller included, claims the next unclaimed task
     index until the batch is drained, so a domain stuck on a slow
     task never strands the rest of the batch.

     Bit-identity under that stealing holds because the output slot
     is addressed by the {e input index}, each task's value depends
     only on (pure precomputed workspace, λ) — per-domain workspaces
     are identical pure data, scratch never crosses domains — and
     IEEE-754 ops are deterministic.  Which domain computes a task
     can never change what it writes. *)

  type ctx = {
    id : int;
    bstate : Solver.bracket_state;
    (* One cached workspace per domain, revalidated by physical
       equality on the inputs: batches iterate λ for one spec, or
       walk a small family of specs, so a 1-slot cache removes almost
       every rebuild without an unbounded table. *)
    mutable cached_ws : workspace option;
  }

  type job = {
    task : ctx -> int -> unit;
    n_tasks : int;
    next : int Atomic.t;
    regs : Metrics.t array; (* per-worker registries, absorbed after the join *)
    busy : float array; (* per-domain busy seconds for occupancy gauges *)
  }

  type t = {
    size : int;
    lock : Mutex.t;
    work : Condition.t;
    idle : Condition.t;
    mutable job : job option;
    mutable epoch : int;
    mutable pending : int;
    mutable stop : bool;
    mutable active : bool;
    mutable closed : bool;
    ctxs : ctx array;
    mutable workers : unit Domain.t array;
    err : (exn * Printexc.raw_backtrace) option Atomic.t;
  }

  let recommended_domains () = max 1 (Domain.recommended_domain_count ())

  let run_tasks t job ctx =
    let t0 = Metrics.now_seconds () in
    let continue = ref true in
    while !continue do
      if Atomic.get t.err <> None then continue := false
      else begin
        let i = Atomic.fetch_and_add job.next 1 in
        if i >= job.n_tasks then continue := false
        else
          try job.task ctx i
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set t.err None (Some (e, bt)));
            continue := false
      end
    done;
    job.busy.(ctx.id) <- job.busy.(ctx.id) +. (Metrics.now_seconds () -. t0)

  let worker_loop t idx () =
    let ctx = t.ctxs.(idx) in
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.lock;
      while (not t.stop) && t.epoch = !seen do
        Condition.wait t.work t.lock
      done;
      if t.stop then begin
        Mutex.unlock t.lock;
        running := false
      end
      else begin
        seen := t.epoch;
        let job = match t.job with Some j -> j | None -> assert false in
        Mutex.unlock t.lock;
        let reg = job.regs.(idx) in
        if Metrics.is_enabled reg then
          Metrics.with_ambient reg (fun () -> run_tasks t job ctx)
        else run_tasks t job ctx;
        Mutex.lock t.lock;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.signal t.idle;
        Mutex.unlock t.lock
      end
    done

  let create ?domains () =
    let size =
      match domains with
      | Some d -> if d < 1 then invalid_arg "Eval.Pool.create: domains must be >= 1" else d
      | None -> recommended_domains ()
    in
    let t =
      {
        size;
        lock = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        job = None;
        epoch = 0;
        pending = 0;
        stop = false;
        active = false;
        closed = false;
        ctxs =
          Array.init size (fun id ->
              { id; bstate = Solver.bracket_state (); cached_ws = None });
        workers = [||];
        err = Atomic.make None;
      }
    in
    t.workers <- Array.init (size - 1) (fun i -> Domain.spawn (worker_loop t (i + 1)));
    t

  let domains t = t.size

  let shutdown t =
    if not t.closed then begin
      t.closed <- true;
      Mutex.lock t.lock;
      t.stop <- true;
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      Array.iter Domain.join t.workers
    end

  let with_pool ?domains f =
    let t = create ?domains () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  let map t ~f inputs =
    if t.closed then invalid_arg "Eval.Pool.map: pool is shut down";
    let n = Array.length inputs in
    let out = Array.make n None in
    let caller_reg = Metrics.ambient () in
    let enabled = Metrics.is_enabled caller_reg in
    (* Slot 0 is the caller: it keeps its own ambient registry, so
       only workers need fresh ones (absorbed after the join, exactly
       like the sweep engine's worker registries). *)
    let regs =
      Array.init t.size (fun i ->
          if i > 0 && enabled then Metrics.create () else Metrics.disabled)
    in
    let job =
      {
        task = (fun ctx i -> out.(i) <- Some (f ctx inputs.(i)));
        n_tasks = n;
        next = Atomic.make 0;
        regs;
        busy = Array.make t.size 0.;
      }
    in
    Atomic.set t.err None;
    let t0 = Metrics.now_seconds () in
    Mutex.lock t.lock;
    if t.active then begin
      Mutex.unlock t.lock;
      invalid_arg "Eval.Pool.map: map is already running on this pool"
    end;
    t.active <- true;
    t.job <- Some job;
    t.epoch <- t.epoch + 1;
    t.pending <- t.size - 1;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    run_tasks t job t.ctxs.(0);
    Mutex.lock t.lock;
    while t.pending > 0 do
      Condition.wait t.idle t.lock
    done;
    t.job <- None;
    t.active <- false;
    Mutex.unlock t.lock;
    let wall = Float.max (Metrics.now_seconds () -. t0) 1e-9 in
    if enabled then begin
      for i = 1 to t.size - 1 do
        Metrics.absorb caller_reg (Metrics.snapshot regs.(i))
      done;
      Array.iteri
        (fun i b ->
          Metrics.set_max
            (Metrics.gauge caller_reg "pool_domain_occupancy"
               ~labels:[ ("domain", string_of_int i) ]
               ~help:"Peak busy fraction of each evaluation-pool domain over a batch")
            (b /. wall))
        job.busy
    end;
    (match Atomic.get t.err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) out

  let ctx_id ctx = ctx.id
  let ctx_bracket ctx = ctx.bstate

  let ctx_workspace ctx ?variants ?outgoing ~system:sys ~message:msg () =
    match outgoing with
    | Some _ ->
        (* An [outgoing] closure has no cheap identity to key the
           cache on; build fresh. *)
        workspace ?variants ?outgoing ~system:sys ~message:msg ()
    | None -> (
        let v = match variants with Some v -> v | None -> Variants.default in
        match ctx.cached_ws with
        | Some w when w.system == sys && w.message == msg && w.variants == v -> w
        | _ ->
            let w = workspace ~variants:v ~system:sys ~message:msg () in
            ctx.cached_ws <- Some w;
            w)

  let means t ?memo ?key ?variants ?outgoing ~system:sys ~message:msg lambdas =
    map t lambdas ~f:(fun ctx lambda_g ->
        let eval () =
          mean_into
            (ctx_workspace ctx ?variants ?outgoing ~system:sys ~message:msg ())
            ~lambda_g
        in
        match (memo, key) with
        | Some memo, Some key ->
            (* Memo first, workspace lazily: a fully memoised point
               never pays a workspace build. *)
            Memo.find_or_compute memo ~key ~bits:(Int64.bits_of_float lambda_g) eval
        | _ -> eval ())

  let saturation_rates t ?(warm = false) ?tol ?variants ~message:msg systems =
    map t systems ~f:(fun ctx sys ->
        let ws = ctx_workspace ctx ?variants ~system:sys ~message:msg () in
        if warm then saturation_rate ~state:ctx.bstate ?tol ws
        else saturation_rate ?tol ws)
end
