(** Traffic-rate sweeps of the analytical model — the x-axes of
    Figs. 3–7. *)

type point = { lambda_g : float; latency : float }

type t = { points : point list }

val linear :
  ?variants:Variants.t ->
  system:Params.system ->
  message:Params.message ->
  lo:float ->
  hi:float ->
  steps:int ->
  unit ->
  t
(** [steps] evenly spaced rates on [[lo, hi]] (inclusive); requires
    [steps >= 2] and [0. <= lo < hi].  Saturated points report
    [infinity].  Evaluates through a fresh {!Eval.workspace}, so the
    per-point results are bit-identical to [Latency.mean] while the
    λ-invariant work is done once. *)

val batch : Eval.workspace -> lambdas:float list -> t
(** Evaluate a whole λ axis in one pass over an existing workspace.
    Points come back in input order, but the evaluation walks the
    rates ascending and propagates the saturation frontier
    monotonically: once a rate diverges, every rate at or above it
    reports [infinity] without being evaluated (saturation is
    monotone in λ — every queue utilisation is linear in it).
    Skipped points still tick [model_sweep_points]/
    [model_sweep_points_saturated], but not [model_evaluations]. *)

val up_to_saturation :
  ?variants:Variants.t ->
  ?margin:float ->
  system:Params.system ->
  message:Params.message ->
  steps:int ->
  unit ->
  t
(** Sweep from 0 to [margin] (default 0.95) times the model's
    saturation rate, so every point is finite.  One workspace backs
    both the saturation search and the grid.  Raises
    [Invalid_argument] unless [margin] is finite and in (0, 1). *)

val up_to_saturation_pool :
  Eval.Pool.t ->
  ?variants:Variants.t ->
  ?margin:float ->
  system:Params.system ->
  message:Params.message ->
  steps:int ->
  unit ->
  t
(** {!up_to_saturation} with the grid evaluated on an {!Eval.Pool}
    ({!Eval.Pool.means}) instead of a sequential loop.  Same λ grid,
    same bits: every grid point is below [margin]·saturation, so the
    sequential frontier shortcut never fires and the pooled batch is
    bit-identical.  The saturation search itself stays on the calling
    domain. *)

val finite_points : t -> (float * float) list
(** Drop saturated points; pairs of [(lambda_g, latency)]. *)

val pp : Format.formatter -> t -> unit
