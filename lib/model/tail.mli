(** Model-side latency-distribution (tail) approximation.

    The mean model decomposes latency into deterministic transmission
    terms (network head latency + tail-flit drain) and M/G/1 waiting
    components (Eqs. 15, 31, 36).  This module fits each
    (cluster, traffic-class) component with a {e shifted exponential}
    — the wait is zero with probability [1 - sigma] and exponential
    with mean [wait_mean / sigma] otherwise, which is exact for M/M/1
    waiting times and the standard single-moment M/G/1 tail
    approximation — and reads quantiles off the node- and
    class-weighted mixture CDF.  Composite inter-cluster waits
    (source queue + two C/D buffers) keep the summed mean and take
    [sigma = 1 - prod (1 - rho_k)], a two-parameter phase-type
    collapse of the convolution.

    Validated against simulated distributions in the test suite (the
    predicted p99 tracks the simulator's P² estimate on the paper
    organizations through mid loads; see EXPERIMENTS.md). *)

type component = {
  weight : float;  (** mixture probability: node share × class share *)
  floor : float;  (** deterministic network + tail-drain latency *)
  wait_mean : float;  (** mean waiting time of the component *)
  sigma : float;  (** fitted P(wait > 0) — the queue-busy probability *)
}

type t = { mean : float; components : component list }

val of_latency :
  ?variants:Variants.t ->
  system:Params.system ->
  message:Params.message ->
  lambda_g:float ->
  Latency.t ->
  t
(** Fit the mixture to an evaluated mean model.  [variants] must be
    the ones the evaluation used (they decide which arrival rate each
    source queue saw). *)

val evaluate :
  ?variants:Variants.t ->
  ?outgoing:(int -> float) ->
  system:Params.system ->
  message:Params.message ->
  lambda_g:float ->
  unit ->
  t
(** {!Latency.evaluate} followed by {!of_latency}. *)

val cdf : t -> float -> float
(** [cdf t x] = P(latency <= x) under the mixture. *)

val complementary_cdf : t -> float -> float
(** [1 - cdf t x]: the tail probability P(latency > x). *)

val quantile : t -> float -> float
(** Invert the mixture CDF by bisection: the smallest [x] with
    [cdf t x >= q].  [infinity] when the model is saturated (any
    component diverged).  @raise Invalid_argument unless
    [0 < q < 1]. *)
