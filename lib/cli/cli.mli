(** Shared command-line vocabulary for the three binaries.

    [cluster_model], [cluster_sim] and [experiments] accept the same
    experiment-description flags — [--scenario FILE] plus overrides
    ([--org], [--clusters], [--m-flits], …) — and [experiments]'
    sweep-orchestration knobs ([--seed], [--domains], [--cache-dir],
    [--precision], …).  This module is their single definition, so
    the binaries cannot drift, and the single place where scenario
    and parameter validation failures become friendly [Error]
    messages instead of [Invalid_argument] backtraces. *)

(** {1 Error boundary} *)

val guard : (unit -> (int, string) result) -> int
(** Run a command body, mapping failures to friendly [error: …] lines
    on stderr instead of backtraces: [Error msg], [Invalid_argument]
    and [Failure] (usage/validation problems) exit 2;
    [Fatnet_experiments.Parallel.Failures] (one line per failed sweep
    point, naming its input index, offered load, and attempt count)
    and [Sys_error] (I/O problems) exit 1. *)

(** {1 Scenario selection: [--scenario] + override flags} *)

val scenario_file : string option Cmdliner.Term.t
(** [--scenario FILE]: read the experiment description from a [.scn]
    file; the other flags below override its fields. *)

type system_opts = {
  org : string option;       (** [--org]: Table-1 preset, [1120] or [544] *)
  clusters : int option;     (** [--clusters] (homogeneous build) *)
  depth : int option;        (** [--depth] (homogeneous build) *)
  arity : int option;        (** [--arity] (homogeneous build) *)
}

val system_opts : system_opts Cmdliner.Term.t

val system_given : system_opts -> bool
(** Whether any system flag was passed (and should override a loaded
    scenario's topology). *)

val build_system : system_opts -> (Fatnet_model.Params.system, string) result
(** [--org] wins; otherwise a homogeneous system from
    [--clusters]/[--depth]/[--arity] (defaults 4/2/4) on the Table-2
    networks.  Validation failures come back as [Error]. *)

type message_opts = {
  m_flits : int option;      (** [--m-flits]: message length M *)
  flit_bytes : float option; (** [--flit-bytes]: flit size d_m *)
}

val message_opts : message_opts Cmdliner.Term.t

val resolve :
  ?default_load:Fatnet_scenario.Scenario.load ->
  ?default_protocol:Fatnet_scenario.Scenario.protocol ->
  scenario:string option ->
  system:system_opts ->
  message:message_opts ->
  unit ->
  (Fatnet_scenario.Scenario.t, string) result
(** The binaries' common front door.  With [--scenario FILE], load
    and validate the file, then apply any system/message override
    flags (re-validating; errors are prefixed with the file path).
    Without it, build a scenario from the flags alone, defaulting to
    M=32, d_m=256, [default_load] (default [Fixed 1e-4]) and
    [default_protocol] (default
    {!Fatnet_scenario.Scenario.default_protocol}). *)

(** {1 Parallelism} *)

val domains_arg : int option Cmdliner.Term.t
(** [--domains N] — the single spelling of the worker-count flag
    across all binaries (there is no [--jobs]).  [None] means the
    runtime's recommended domain count
    ({!Fatnet_model.Eval.Pool.recommended_domains}), which is the
    documented default everywhere: the sweep scheduler and the
    model-evaluation pool both resolve it the same way.
    {!sweep_opts} embeds this same term as its [domains] field. *)

val resolve_domains : int option -> (int, string) result
(** The flag's value as a concrete pool size: [None] → the
    recommended domain count; a non-positive request is a friendly
    [Error]. *)

(** {1 Sweep orchestration flags} *)

type sweep_opts = {
  domains : int option;  (** [--domains] *)
  no_cache : bool;       (** [--no-cache] *)
  cache_dir : string;    (** [--cache-dir] *)
  precision : float;     (** [--precision]; [<= 0] disables adaptive reps *)
  min_reps : int;        (** [--min-reps] *)
  max_reps : int;        (** [--max-reps] *)
  seed : int64;          (** [--seed] *)
  target : Fatnet_scenario.Scenario.target;
      (** [--target mean] (default) or [--target quantile:p99]-style:
          the statistic the CI-adaptive stopping rule converges *)
  retries : int;         (** [--retries]: extra attempts before quarantine *)
  fail_fast : bool;      (** [--fail-fast]: abort on first exhausted point *)
  inject_faults : string option;
      (** [--inject-faults SPEC]: deterministic fault injection for
          testing; see {!Fatnet_experiments.Fault.of_spec} *)
}

val sweep_opts : sweep_opts Cmdliner.Term.t

val engine_of_opts :
  ?trace:(Fatnet_sim.Runner.trace_record -> unit) ->
  ?tracer:Fatnet_obs.Trace.t ->
  ?metrics:Fatnet_obs.Metrics.t ->
  sweep_opts ->
  Fatnet_experiments.Sweep_engine.config
(** Scheduler/cache/resilience configuration from the flags,
    including a fresh in-memory point memo shared by every sweep run
    against this config ([--no-cache] disables it along with the disk
    cache).  [tracer] is the span trace from {!tracer_of_opts}
    (default disabled).  Raises [Failure] (which {!guard} renders as
    a usage error) on a malformed [--inject-faults] spec. *)

val replication_of_opts : sweep_opts -> Fatnet_scenario.Scenario.replication option
(** [Some] when [--precision] is positive (95 % confidence,
    [--min-reps]/[--max-reps] bounds, [--target] statistic). *)

val protocol_of_opts :
  base:Fatnet_scenario.Scenario.protocol ->
  sweep_opts ->
  Fatnet_scenario.Scenario.protocol
(** [base] with the [--seed] flag applied. *)

(** {1 Telemetry flags: [--metrics] / [--metrics-format]} *)

type metrics_format = Metrics_json | Metrics_prometheus | Metrics_table

type metrics_opts = {
  metrics_file : string option;
      (** [--metrics \[FILE\]]; [None] disables telemetry entirely *)
  metrics_format : metrics_format;  (** [--metrics-format], default json *)
}

val default_metrics_file : string
(** ["results/metrics.json"] — where a bare [--metrics] writes, and
    where [experiments report] reads from by default. *)

val metrics_opts : metrics_opts Cmdliner.Term.t

val metrics_registry : metrics_opts -> Fatnet_obs.Metrics.t
(** A fresh enabled registry when [--metrics] was given,
    {!Fatnet_obs.Metrics.disabled} otherwise — pass it to the runner,
    sweep engine, or install it as the ambient registry. *)

val render_metrics : metrics_opts -> Fatnet_obs.Metrics.Snapshot.t -> string
(** The snapshot in the format [--metrics-format] selects. *)

val write_metrics : metrics_opts -> Fatnet_obs.Metrics.t -> unit
(** Snapshot the registry and write it to [--metrics]'s FILE ([-] for
    stdout), creating parent directories; a no-op without
    [--metrics].  Logs the destination to stderr. *)

(** {1 Tracing flags: [--trace] / [--quiet]} *)

type trace_opts = {
  trace_file : string option;
      (** [--trace \[FILE\]]; [None] = no trace file *)
  quiet : bool;  (** [--quiet]: errors only, no progress line *)
}

val default_trace_file : string
(** ["results/trace.json"] — where a bare [--trace] writes. *)

val trace_opts : trace_opts Cmdliner.Term.t

val apply_quiet : trace_opts -> unit
(** Raise the log threshold to errors-only when [--quiet] was
    given.  Idempotent; called by {!tracer_of_opts}. *)

val progress_wanted : trace_opts -> bool
(** Whether a live progress line should render: stderr is a TTY and
    [--quiet] was not given. *)

val tracer_of_opts : ?progress:bool -> trace_opts -> Fatnet_obs.Trace.t
(** An enabled trace when [--trace] was given — or when [progress]
    is set and {!progress_wanted} holds, since the progress reporter
    subscribes to the span stream — otherwise
    {!Fatnet_obs.Trace.disabled}.  Also applies [--quiet] to the log
    threshold. *)

val write_trace : trace_opts -> Fatnet_obs.Trace.t -> unit
(** Export the trace as Chrome trace-event JSON to [--trace]'s FILE
    ([-] for stdout), creating parent directories; a no-op without
    [--trace].  Logs the destination to stderr. *)
