module Params = Fatnet_model.Params
module Presets = Fatnet_model.Presets
module Scenario = Fatnet_scenario.Scenario
module Sweep_engine = Fatnet_experiments.Sweep_engine
module Metrics = Fatnet_obs.Metrics
module Trace = Fatnet_obs.Trace
module Log = Fatnet_obs.Log
open Cmdliner

(* One friendly line per failed sweep point: which point (input
   index), at what offered load, and why. *)
let describe_point_failure (i, exn) =
  match exn with
  | Sweep_engine.Point_failure { index; lambda_g; attempts; error } ->
      Printf.sprintf "error: point %d%s failed after %d attempt%s: %s" index
        (match lambda_g with
        | Some l -> Printf.sprintf " (lambda_g=%g)" l
        | None -> "")
        attempts
        (if attempts = 1 then "" else "s")
        (Printexc.to_string error)
  | exn -> Printf.sprintf "error: point %d failed: %s" i (Printexc.to_string exn)

let guard body =
  match body () with
  | Ok code -> code
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      2
  | exception (Invalid_argument msg | Failure msg) ->
      prerr_endline ("error: " ^ msg);
      2
  | exception Fatnet_experiments.Parallel.Failures fs ->
      List.iter (fun f -> prerr_endline (describe_point_failure f)) fs;
      1
  | exception Sys_error msg ->
      prerr_endline ("error: " ^ msg);
      1

(* ---- scenario selection ---- *)

let scenario_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"FILE"
        ~doc:
          "Read the experiment description from a .scn scenario file; the other \
           system/message flags override its fields.")

type system_opts = {
  org : string option;
  clusters : int option;
  depth : int option;
  arity : int option;
}

let system_opts =
  let org =
    Arg.(
      value
      & opt (some string) None
      & info [ "org" ] ~doc:"Table-1 organization: 1120 or 544. Overrides the homogeneous flags.")
  in
  let clusters =
    Arg.(value & opt (some int) None & info [ "clusters" ] ~doc:"Cluster count (homogeneous).")
  in
  let depth =
    Arg.(value & opt (some int) None & info [ "depth" ] ~doc:"Tree depth n_i (homogeneous).")
  in
  let arity =
    Arg.(value & opt (some int) None & info [ "arity" ] ~doc:"Switch arity m (homogeneous).")
  in
  let make org clusters depth arity = { org; clusters; depth; arity } in
  Term.(const make $ org $ clusters $ depth $ arity)

let system_given o =
  o.org <> None || o.clusters <> None || o.depth <> None || o.arity <> None

let build_system o =
  match o.org with
  | Some "1120" -> Ok Presets.org_1120
  | Some "544" -> Ok Presets.org_544
  | Some other -> Error (Printf.sprintf "unknown organization %S (use 1120 or 544)" other)
  | None -> (
      let clusters = Option.value o.clusters ~default:4 in
      let tree_depth = Option.value o.depth ~default:2 in
      let m = Option.value o.arity ~default:4 in
      match
        Params.homogeneous ~m ~tree_depth ~clusters ~icn1:Presets.net1 ~ecn1:Presets.net2
          ~icn2:Presets.net1
      with
      | s -> Ok s
      | exception Invalid_argument msg -> Error msg)

type message_opts = { m_flits : int option; flit_bytes : float option }

let message_opts =
  let m_flits =
    Arg.(
      value & opt (some int) None & info [ "m-flits" ] ~doc:"Message length in flits (M).")
  in
  let flit_bytes =
    Arg.(
      value & opt (some float) None & info [ "flit-bytes" ] ~doc:"Flit size in bytes (d_m).")
  in
  let make m_flits flit_bytes = { m_flits; flit_bytes } in
  Term.(const make $ m_flits $ flit_bytes)

let resolve ?(default_load = Scenario.Fixed 1e-4)
    ?(default_protocol = Scenario.default_protocol) ~scenario ~system ~message () =
  let ( let* ) = Result.bind in
  let* base =
    match scenario with
    | Some path -> Scenario.load path
    | None -> (
        let* sys = build_system system in
        let msg =
          Presets.message
            ~m_flits:(Option.value message.m_flits ~default:32)
            ~d_m_bytes:(Option.value message.flit_bytes ~default:256.)
        in
        match
          Scenario.make ~system:sys ~message:msg ~protocol:default_protocol
            ~load:default_load ()
        with
        | s -> Ok s
        | exception Invalid_argument msg -> Error msg)
  in
  let* base =
    if scenario <> None && system_given system then
      let* sys = build_system system in
      Ok { base with Scenario.system = sys }
    else Ok base
  in
  let base =
    match message.m_flits with
    | Some f ->
        { base with Scenario.message = { base.Scenario.message with Params.length_flits = f } }
    | None -> base
  in
  let base =
    match message.flit_bytes with
    | Some d ->
        { base with Scenario.message = { base.Scenario.message with Params.flit_bytes = d } }
    | None -> base
  in
  match Scenario.validate base with
  | Ok () -> Ok base
  | Error e -> Error (match scenario with Some path -> path ^ ": " ^ e | None -> e)

(* ---- parallelism ---- *)

(* The one spelling of the worker-count flag, shared by every binary
   (there is no [--jobs]): sweep scheduling and model-evaluation
   pools both read it, and the default everywhere is the runtime's
   recommended domain count. *)
let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel work (sweep scheduling, model evaluation pools).  \
           Default: the runtime's recommended domain count.")

let resolve_domains = function
  | Some d when d >= 1 -> Ok d
  | Some d -> Error (Printf.sprintf "--domains: %d is not a positive domain count" d)
  | None -> Ok (Fatnet_model.Eval.Pool.recommended_domains ())

(* ---- sweep orchestration flags ---- *)

type sweep_opts = {
  domains : int option;
  no_cache : bool;
  cache_dir : string;
  precision : float;
  min_reps : int;
  max_reps : int;
  seed : int64;
  target : Scenario.target;
  retries : int;
  fail_fast : bool;
  inject_faults : string option;
}

(* `--target mean` / `--target quantile:p99` (also accepts the raw
   probability, `quantile:0.99`).  Only the fixed quantile ladder is
   accepted — those are the only quantiles the summaries carry. *)
let target_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "mean" -> Ok Scenario.Mean
    | t when String.length t > 9 && String.sub t 0 9 = "quantile:" -> (
        let q = String.sub t 9 (String.length t - 9) in
        let p =
          match q with
          | "p50" -> Some 0.5
          | "p90" -> Some 0.9
          | "p99" -> Some 0.99
          | "p999" -> Some 0.999
          | _ -> (
              match float_of_string_opt q with
              | Some f when List.mem f [ 0.5; 0.9; 0.99; 0.999 ] -> Some f
              | _ -> None)
        in
        match p with
        | Some p -> Ok (Scenario.Quantile p)
        | None ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown quantile %S (expected p50, p90, p99, p999 or the probability \
                    0.5/0.9/0.99/0.999)"
                   q)))
    | _ ->
        Error
          (`Msg
            (Printf.sprintf "expected `mean` or `quantile:PXX` (e.g. quantile:p99), got %S" s))
  in
  let print ppf = function
    | Scenario.Mean -> Format.pp_print_string ppf "mean"
    | Scenario.Quantile q -> Format.fprintf ppf "quantile:%g" q
  in
  Arg.conv (parse, print)

let sweep_opts =
  let domains = domains_arg in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Recompute every point; do not read or write the point cache.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string Fatnet_experiments.Point_cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Point cache directory.")
  in
  let precision =
    Arg.(
      value & opt float 0.
      & info [ "precision" ] ~docv:"REL"
          ~doc:
            "Enable CI-adaptive replications: run independently seeded replications per point \
             until the 95% CI half-width over replication means is below REL of the mean \
             (subject to --min-reps/--max-reps).  0 disables (one run per point).")
  in
  let min_reps =
    Arg.(value & opt int 2 & info [ "min-reps" ] ~doc:"Replications before any stopping test.")
  in
  let max_reps = Arg.(value & opt int 8 & info [ "max-reps" ] ~doc:"Replication cap.") in
  let seed =
    Arg.(
      value
      & opt int64 Scenario.default_protocol.Scenario.seed
      & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed for every sweep point.")
  in
  let target =
    Arg.(
      value
      & opt target_conv Scenario.Mean
      & info [ "target" ] ~docv:"STAT"
          ~doc:
            "Statistic the CI-adaptive stopping rule converges (with --precision): $(b,mean) \
             (default) or $(b,quantile:p50)/$(b,quantile:p90)/$(b,quantile:p99)/\
             $(b,quantile:p999) — the Student-t interval is then taken over the \
             per-replication P\xC2\xB2 estimates of that quantile.")
  in
  let retries =
    Arg.(
      value
      & opt int Sweep_engine.default_config.Sweep_engine.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra attempts per failing sweep point before it is quarantined (0 disables \
             retries).")
  in
  let fail_fast =
    Arg.(
      value & flag
      & info [ "fail-fast" ]
          ~doc:
            "Abort the sweep on the first point that exhausts its retries instead of \
             quarantining it and completing the remaining points.")
  in
  let inject_faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-faults" ] ~docv:"SPEC"
          ~doc:
            "Testing only: deterministically inject failures at the named sites, e.g. \
             $(b,seed=42,point_exec=0.5,cache_store=1).  Sites: point_exec, cache_find, \
             cache_store, tmp_rename; values are failure probabilities in [0,1].")
  in
  let make domains no_cache cache_dir precision min_reps max_reps seed target retries
      fail_fast inject_faults =
    {
      domains;
      no_cache;
      cache_dir;
      precision;
      min_reps;
      max_reps;
      seed;
      target;
      retries;
      fail_fast;
      inject_faults;
    }
  in
  Term.(
    const make $ domains $ no_cache $ cache_dir $ precision $ min_reps $ max_reps $ seed
    $ target $ retries $ fail_fast $ inject_faults)

let engine_of_opts ?trace ?(tracer = Trace.disabled) ?(metrics = Metrics.disabled) opts =
  let faults =
    match opts.inject_faults with
    | None -> Fatnet_experiments.Fault.none
    | Some spec -> (
        match Fatnet_experiments.Fault.of_spec spec with
        | Ok plan -> plan
        | Error msg -> failwith ("--inject-faults: " ^ msg))
  in
  {
    Sweep_engine.domains = opts.domains;
    cache =
      (if opts.no_cache then Sweep_engine.No_cache else Sweep_engine.Cache_dir opts.cache_dir);
    trace;
    tracer;
    metrics;
    retries = max 0 opts.retries;
    fail_fast = opts.fail_fast;
    faults;
    (* One in-memory memo per CLI invocation: commands that run many
       sweeps over one engine config ([experiments all], figure +
       ablation passes) serve repeated points with a hashtable probe.
       [--no-cache] means "recompute every point", so it turns the
       memo off too. *)
    memo =
      (if opts.no_cache then None else Some (Fatnet_numerics.Memo.create ()));
    cache_recovery = None;
  }

let replication_of_opts opts =
  if opts.precision > 0. then
    Some
      {
        Scenario.target_rel = opts.precision;
        confidence = 0.95;
        min_reps = opts.min_reps;
        max_reps = opts.max_reps;
        target = opts.target;
      }
  else None

let protocol_of_opts ~base opts = { base with Scenario.seed = opts.seed }

(* ---- telemetry flags ---- *)

type metrics_format = Metrics_json | Metrics_prometheus | Metrics_table

type metrics_opts = { metrics_file : string option; metrics_format : metrics_format }

let default_metrics_file = "results/metrics.json"

let metrics_opts =
  let file =
    Arg.(
      value
      & opt ~vopt:(Some default_metrics_file) (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            (Printf.sprintf
               "Collect run telemetry (channel utilisation, solver iterations, scheduler and \
                cache statistics) and write it to FILE ($(docv) defaults to %s when the flag \
                is given bare; use - for stdout).  Without this flag instrumentation is \
                compiled to no-ops."
               default_metrics_file))
  in
  let format =
    Arg.(
      value
      & opt
          (enum
             [
               ("json", Metrics_json);
               ("prometheus", Metrics_prometheus);
               ("table", Metrics_table);
             ])
          Metrics_json
      & info [ "metrics-format" ] ~docv:"FMT"
          ~doc:
            "Telemetry output format: $(b,json) (schema-versioned snapshot, re-readable by \
             'experiments report'), $(b,prometheus) (text exposition format), or $(b,table) \
             (the human view).")
  in
  let make metrics_file metrics_format = { metrics_file; metrics_format } in
  Term.(const make $ file $ format)

let metrics_registry opts =
  match opts.metrics_file with None -> Metrics.disabled | Some _ -> Metrics.create ()

let render_metrics opts snapshot =
  match opts.metrics_format with
  | Metrics_json -> Metrics.Snapshot.to_json snapshot
  | Metrics_prometheus -> Metrics.Snapshot.to_prometheus snapshot
  | Metrics_table -> Fatnet_report.Metrics_report.render snapshot

let write_metrics opts registry =
  match opts.metrics_file with
  | None -> ()
  | Some path ->
      let body = render_metrics opts (Metrics.snapshot registry) in
      if path = "-" then print_string body
      else begin
        Fatnet_experiments.Fs_util.mkdir_p (Filename.dirname path);
        let oc = open_out path in
        output_string oc body;
        close_out oc;
        Log.info "metrics: wrote %s" path
      end

(* ---- tracing flags: --trace / --quiet ---- *)

type trace_opts = { trace_file : string option; quiet : bool }

let default_trace_file = "results/trace.json"

let trace_opts =
  let file =
    Arg.(
      value
      & opt ~vopt:(Some default_trace_file) (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            (Printf.sprintf
               "Record hierarchical causal spans (sweep points, attempts, replications, \
                simulator phases, solver searches, cache probes) and write Chrome \
                trace-event JSON to FILE ($(docv) defaults to %s when the flag is given \
                bare; use - for stdout).  Load it in Perfetto / chrome://tracing, or \
                render it with 'experiments timeline'.  Tracing observes only: results \
                and cache entries are bit-identical to an untraced run."
               default_trace_file))
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ]
          ~doc:
            "Suppress informational stderr output: no live progress line, no info lines; \
             only errors print.")
  in
  let make trace_file quiet = { trace_file; quiet } in
  Term.(const make $ file $ quiet)

let apply_quiet opts = if opts.quiet then Log.set_threshold Log.Error

let progress_wanted opts = (not opts.quiet) && Unix.isatty Unix.stderr

let tracer_of_opts ?(progress = false) opts =
  apply_quiet opts;
  if opts.trace_file <> None || (progress && progress_wanted opts) then Trace.create ()
  else Trace.disabled

let write_trace opts tracer =
  match opts.trace_file with
  | None -> ()
  | Some path ->
      let body = Trace.to_chrome_json tracer in
      if path = "-" then print_string body
      else begin
        Fatnet_experiments.Fs_util.mkdir_p (Filename.dirname path);
        let oc = open_out path in
        output_string oc body;
        close_out oc;
        Log.info "trace: wrote %s" path
      end
