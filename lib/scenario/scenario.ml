module Params = Fatnet_model.Params
module Variants = Fatnet_model.Variants
module Latency = Fatnet_model.Latency
module Pattern = Fatnet_model.Pattern
module Eval = Fatnet_model.Eval
module Destination = Fatnet_workload.Destination

(* Version 2 added the replication convergence [target] (mean vs a
   fixed quantile).  Version-1 files still parse — the new field
   defaults to [Mean], which is exactly the v1 semantics — but the
   canonical/hash scheme is prefixed with the version, so the bump
   deliberately invalidates every cached point. *)
let scenario_version = 2

let parseable_versions = [ 1; 2 ]

type cd_mode = Cut_through | Store_and_forward

type protocol = {
  warmup : int;
  measured : int;
  drain : int;
  seed : int64;
  cd_mode : cd_mode;
  streaming : bool;
}

type target = Mean | Quantile of float

type replication = {
  target_rel : float;
  confidence : float;
  min_reps : int;
  max_reps : int;
  target : target;
}

(* The quantile ladder every summary carries
   (Fatnet_stats.Summary.quantiles; duplicated here so the scenario
   layer does not depend on stats). *)
let quantile_levels = [ 0.5; 0.9; 0.99; 0.999 ]

type load = Fixed of float | Linear of { lambda_max : float; steps : int }

type t = {
  name : string;
  title : string;
  system : Params.system;
  message : Params.message;
  variants : Variants.t;
  pattern : Destination.t;
  protocol : protocol;
  replication : replication option;
  load : load;
}

let default_protocol =
  {
    warmup = 10_000;
    measured = 100_000;
    drain = 10_000;
    seed = 0x0F17EE5L;
    cd_mode = Cut_through;
    streaming = true;
  }

let quick_protocol = { default_protocol with warmup = 1_000; measured = 10_000; drain = 1_000 }

(* ---- validation ---- *)

let check name cond msg = if cond then Ok () else Error (name ^ ": " ^ msg)

let check_finite_pos name v =
  check name (Float.is_finite v && v > 0.) "must be finite and positive"

let single_line name s =
  check name (String.trim s = s && not (String.contains s '\n')) "must be a single trimmed line"

let validate t =
  let ( let* ) = Result.bind in
  let* () = single_line "name" t.name in
  let* () = single_line "title" t.title in
  let* () = Result.map_error (fun e -> "system: " ^ e) (Params.validate t.system) in
  let* () = check "message.flits" (t.message.Params.length_flits >= 1) "must be >= 1" in
  let* () = check_finite_pos "message.flit-bytes" t.message.Params.flit_bytes in
  let* () =
    match t.pattern with
    | Destination.Uniform -> Ok ()
    | Destination.Hotspot { node; fraction } ->
        let n = Params.total_nodes t.system in
        let* () =
          check "pattern.hotspot.node"
            (node >= 0 && node < n)
            (Printf.sprintf "must be a node id in [0, %d)" n)
        in
        check "pattern.hotspot.fraction" (fraction >= 0. && fraction <= 1.) "must be in [0, 1]"
    | Destination.Local { p_local } ->
        check "pattern.local" (p_local >= 0. && p_local <= 1.) "must be in [0, 1]"
  in
  let* () = check "protocol.warmup" (t.protocol.warmup >= 0) "must be >= 0" in
  let* () = check "protocol.measured" (t.protocol.measured >= 1) "must be >= 1" in
  let* () = check "protocol.drain" (t.protocol.drain >= 0) "must be >= 0" in
  let* () =
    match t.replication with
    | None -> Ok ()
    | Some r ->
        let* () = check_finite_pos "replication.target-rel" r.target_rel in
        let* () =
          check "replication.confidence" (r.confidence > 0. && r.confidence < 1.)
            "must be in (0, 1)"
        in
        let* () = check "replication.min-reps" (r.min_reps >= 1) "must be >= 1" in
        let* () = check "replication.max-reps" (r.max_reps >= r.min_reps) "must be >= min-reps" in
        (match r.target with
        | Mean -> Ok ()
        | Quantile q ->
            check "replication.target"
              (List.mem q quantile_levels)
              "quantile must be one of 0.5, 0.9, 0.99, 0.999")
  in
  match t.load with
  | Fixed l -> check_finite_pos "load.fixed" l
  | Linear { lambda_max; steps } ->
      let* () = check_finite_pos "load.linear" lambda_max in
      check "load.linear.steps" (steps >= 1) "must be >= 1"

let validate_exn t =
  match validate t with Ok () -> () | Error msg -> invalid_arg ("Scenario: " ^ msg)

let make ?(name = "") ?(title = "") ?(variants = Variants.default)
    ?(pattern = Destination.Uniform) ?(protocol = default_protocol) ?replication ~system
    ~message ~load () =
  let t = { name; title; system; message; variants; pattern; protocol; replication; load } in
  validate_exn t;
  t

(* ---- load axis ---- *)

let lambdas t =
  match t.load with
  | Fixed l -> [ l ]
  | Linear { lambda_max; steps } ->
      List.init steps (fun i -> lambda_max *. float_of_int (i + 1) /. float_of_int steps)

let at t lambda_g = { t with load = Fixed lambda_g }

let points t = List.map (at t) (lambdas t)

let fixed_lambda t = match t.load with Fixed l -> Some l | Linear _ -> None

let require_lambda ?lambda_g t =
  match (lambda_g, t.load) with
  | Some l, _ -> l
  | None, Fixed l -> l
  | None, Linear _ ->
      invalid_arg "Scenario: lambda_g is required when the load axis is a sweep"

(* ---- the analytical model ---- *)

let model_pattern t =
  match t.pattern with
  (* Hotspot traffic breaks the symmetry the closed form needs (see
     Pattern); the uniform reading is the model's best statement. *)
  | Destination.Uniform | Destination.Hotspot _ -> Pattern.Uniform
  | Destination.Local { p_local } -> Pattern.Local { p_local }

let model_evaluate ?lambda_g t =
  Pattern.evaluate ~variants:t.variants ~pattern:(model_pattern t) ~system:t.system
    ~message:t.message
    ~lambda_g:(require_lambda ?lambda_g t)
    ()

let model_mean ?lambda_g t = (model_evaluate ?lambda_g t).Latency.mean_latency

let evaluator t =
  let pattern = model_pattern t in
  let outgoing cluster =
    Pattern.outgoing_probability pattern ~system:t.system ~cluster
  in
  Eval.workspace ~variants:t.variants ~outgoing ~system:t.system ~message:t.message ()

let saturation_rate ?state t =
  (* Uniform-pattern saturation, as before: the workspace uses the
     default Eq. (2) outgoing probabilities regardless of the
     scenario's pattern, and the stateless search is bit-identical to
     [Latency.saturation_rate]. *)
  let ws = Eval.workspace ~variants:t.variants ~system:t.system ~message:t.message () in
  Eval.saturation_rate ?state ws

(* ---- text codec ----

   Line-based `key value...` format with [section] headers, full-line
   `#` comments, and a versioned first line.  The printer is
   canonical: floats render in the shortest decimal form that parses
   back to the same IEEE-754 value, equal consecutive clusters group
   into one `cluster*K` line, and every section is written even when
   it holds defaults — so parse(print(t)) = t exactly. *)

let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let bool_str b = if b then "on" else "off"

let net_str (n : Params.network) =
  Printf.sprintf "%s %s %s" (float_str n.Params.bandwidth) (float_str n.Params.network_latency)
    (float_str n.Params.switch_latency)

let to_string t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "scenario %d" scenario_version;
  if t.name <> "" then line "name %s" t.name;
  if t.title <> "" then line "title %s" t.title;
  line "";
  line "[system]";
  line "m %d" t.system.Params.m;
  line "icn2-depth %d" t.system.Params.icn2_depth;
  line "icn2 %s" (net_str t.system.Params.icn2);
  let clusters = Array.to_list t.system.Params.clusters in
  let rec group = function
    | [] -> ()
    | c :: rest ->
        let rec split acc = function
          | x :: tl when x = c -> split (acc + 1) tl
          | tl -> (acc, tl)
        in
        let count, rest = split 1 rest in
        let star = if count = 1 then "cluster" else Printf.sprintf "cluster*%d" count in
        line "%s depth %d icn1 %s ecn1 %s" star c.Params.tree_depth (net_str c.Params.icn1)
          (net_str c.Params.ecn1);
        group rest
  in
  group clusters;
  line "";
  line "[message]";
  line "flits %d" t.message.Params.length_flits;
  line "flit-bytes %s" (float_str t.message.Params.flit_bytes);
  line "";
  line "[variants]";
  line "lambda-i2 %s"
    (match t.variants.Variants.lambda_i2 with
    | Variants.Pair_average -> "pair-average"
    | Variants.Size_scaled -> "size-scaled");
  line "source-variance %s"
    (match t.variants.Variants.source_variance with
    | Variants.Draper_ghosh -> "draper-ghosh"
    | Variants.Zero -> "zero");
  line "source-rate %s"
    (match t.variants.Variants.source_rate with
    | Variants.Per_node -> "per-node"
    | Variants.Network_total -> "network-total");
  line "relaxing-factor %s" (bool_str t.variants.Variants.use_relaxing_factor);
  line "";
  line "[pattern]";
  (match t.pattern with
  | Destination.Uniform -> line "uniform"
  | Destination.Hotspot { node; fraction } -> line "hotspot %d %s" node (float_str fraction)
  | Destination.Local { p_local } -> line "local %s" (float_str p_local));
  line "";
  line "[protocol]";
  line "warmup %d" t.protocol.warmup;
  line "measured %d" t.protocol.measured;
  line "drain %d" t.protocol.drain;
  line "seed 0x%Lx" t.protocol.seed;
  line "cd-mode %s"
    (match t.protocol.cd_mode with
    | Cut_through -> "cut-through"
    | Store_and_forward -> "store-and-forward");
  line "streaming %s" (bool_str t.protocol.streaming);
  (match t.replication with
  | None -> ()
  | Some r ->
      line "";
      line "[replication]";
      line "target-rel %s" (float_str r.target_rel);
      line "confidence %s" (float_str r.confidence);
      line "min-reps %d" r.min_reps;
      line "max-reps %d" r.max_reps;
      line "target %s"
        (match r.target with
        | Mean -> "mean"
        | Quantile q -> Printf.sprintf "quantile %s" (float_str q)));
  line "";
  line "[load]";
  (match t.load with
  | Fixed l -> line "fixed %s" (float_str l)
  | Linear { lambda_max; steps } -> line "linear %s %d" (float_str lambda_max) steps);
  Buffer.contents b

(* ---- parsing ---- *)

type partial = {
  mutable p_name : string;
  mutable p_title : string;
  mutable p_m : int option;
  mutable p_icn2_depth : int option;
  mutable p_icn2 : Params.network option;
  mutable p_clusters : Params.cluster list;  (* reversed *)
  mutable p_flits : int option;
  mutable p_flit_bytes : float option;
  mutable p_variants : Variants.t;
  mutable p_pattern : Destination.t;
  mutable p_protocol : protocol;
  mutable p_replication : replication option;
  mutable p_load : load option;
}

let of_string text =
  let ( let* ) = Result.bind in
  let p =
    {
      p_name = "";
      p_title = "";
      p_m = None;
      p_icn2_depth = None;
      p_icn2 = None;
      p_clusters = [];
      p_flits = None;
      p_flit_bytes = None;
      p_variants = Variants.default;
      p_pattern = Destination.Uniform;
      p_protocol = default_protocol;
      p_replication = None;
      p_load = None;
    }
  in
  let lines = String.split_on_char '\n' text in
  let err ln fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" ln s)) fmt in
  let parse_float ln field s =
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> err ln "%s: expected a number, got %S" field s
  in
  let parse_int ln field s =
    match int_of_string_opt s with
    | Some i -> Ok i
    | None -> err ln "%s: expected an integer, got %S" field s
  in
  let parse_bool ln field s =
    match String.lowercase_ascii s with
    | "on" | "true" | "yes" -> Ok true
    | "off" | "false" | "no" -> Ok false
    | _ -> err ln "%s: expected on/off, got %S" field s
  in
  let parse_net ln field = function
    | [ bw; an; als ] ->
        let* bandwidth = parse_float ln (field ^ ".bandwidth") bw in
        let* network_latency = parse_float ln (field ^ ".network-latency") an in
        let* switch_latency = parse_float ln (field ^ ".switch-latency") als in
        Ok { Params.bandwidth; network_latency; switch_latency }
    | toks ->
        err ln "%s: expected `bandwidth network-latency switch-latency`, got %d token%s" field
          (List.length toks)
          (if List.length toks = 1 then "" else "s")
  in
  let split_ws s =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun x -> x <> "")
  in
  let rest_after_key line =
    match String.index_opt line ' ' with
    | None -> ""
    | Some i -> String.trim (String.sub line (i + 1) (String.length line - i - 1))
  in
  let rec go section saw_header ln = function
    | [] ->
        if not saw_header then Error "empty input: expected a `scenario N` header"
        else Ok ()
    | raw :: rest -> (
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then go section saw_header (ln + 1) rest
        else if not saw_header then
          match split_ws line with
          | [ "scenario"; v ] -> (
              let* v = parse_int ln "scenario" v in
              if List.mem v parseable_versions then go section true (ln + 1) rest
              else
                err ln "unsupported scenario version %d (this build reads versions %s)" v
                  (String.concat ", " (List.map string_of_int parseable_versions)))
          | _ -> err ln "expected a `scenario %d` header, got %S" scenario_version line
        else if line.[0] = '[' then
          match line with
          | "[system]" | "[message]" | "[variants]" | "[pattern]" | "[protocol]"
          | "[replication]" | "[load]" ->
              (if line = "[replication]" && p.p_replication = None then
                 p.p_replication <-
                   Some
                     {
                       target_rel = 0.05;
                       confidence = 0.95;
                       min_reps = 2;
                       max_reps = 8;
                       target = Mean;
                     });
              go line saw_header (ln + 1) rest
          | _ -> err ln "unknown section %s" line
        else
          let toks = split_ws line in
          let key = List.hd toks in
          let args = List.tl toks in
          let one field =
            match args with
            | [ v ] -> Ok v
            | _ -> err ln "%s: expected exactly one value" field
          in
          let* () =
            match (section, key) with
            | "", "name" ->
                p.p_name <- rest_after_key line;
                Ok ()
            | "", "title" ->
                p.p_title <- rest_after_key line;
                Ok ()
            | "[system]", "m" ->
                let* v = one "m" in
                let* m = parse_int ln "m" v in
                p.p_m <- Some m;
                Ok ()
            | "[system]", "icn2-depth" ->
                let* v = one "icn2-depth" in
                let* d = parse_int ln "icn2-depth" v in
                p.p_icn2_depth <- Some d;
                Ok ()
            | "[system]", "icn2" ->
                let* n = parse_net ln "icn2" args in
                p.p_icn2 <- Some n;
                Ok ()
            | "[system]", _ when key = "cluster" || String.length key > 8
                                                     && String.sub key 0 8 = "cluster*" -> (
                let* count =
                  if key = "cluster" then Ok 1
                  else
                    parse_int ln "cluster count"
                      (String.sub key 8 (String.length key - 8))
                in
                let* () = check "cluster count" (count >= 1) "must be >= 1"
                          |> Result.map_error (Printf.sprintf "line %d: %s" ln) in
                match args with
                | "depth" :: d :: "icn1" :: b1 :: a1 :: s1 :: "ecn1" :: b2 :: a2 :: s2 :: []
                  ->
                    let* tree_depth = parse_int ln "cluster.depth" d in
                    let* icn1 = parse_net ln "cluster.icn1" [ b1; a1; s1 ] in
                    let* ecn1 = parse_net ln "cluster.ecn1" [ b2; a2; s2 ] in
                    let c = { Params.tree_depth; icn1; ecn1 } in
                    for _ = 1 to count do
                      p.p_clusters <- c :: p.p_clusters
                    done;
                    Ok ()
                | _ ->
                    err ln
                      "cluster: expected `cluster[*K] depth D icn1 BW AN AS ecn1 BW AN AS`")
            | "[message]", "flits" ->
                let* v = one "flits" in
                let* f = parse_int ln "flits" v in
                p.p_flits <- Some f;
                Ok ()
            | "[message]", "flit-bytes" ->
                let* v = one "flit-bytes" in
                let* f = parse_float ln "flit-bytes" v in
                p.p_flit_bytes <- Some f;
                Ok ()
            | "[variants]", "lambda-i2" -> (
                let* v = one "lambda-i2" in
                match v with
                | "pair-average" ->
                    p.p_variants <- { p.p_variants with Variants.lambda_i2 = Variants.Pair_average };
                    Ok ()
                | "size-scaled" ->
                    p.p_variants <- { p.p_variants with Variants.lambda_i2 = Variants.Size_scaled };
                    Ok ()
                | _ -> err ln "lambda-i2: expected pair-average or size-scaled, got %S" v)
            | "[variants]", "source-variance" -> (
                let* v = one "source-variance" in
                match v with
                | "draper-ghosh" ->
                    p.p_variants <-
                      { p.p_variants with Variants.source_variance = Variants.Draper_ghosh };
                    Ok ()
                | "zero" ->
                    p.p_variants <- { p.p_variants with Variants.source_variance = Variants.Zero };
                    Ok ()
                | _ -> err ln "source-variance: expected draper-ghosh or zero, got %S" v)
            | "[variants]", "source-rate" -> (
                let* v = one "source-rate" in
                match v with
                | "per-node" ->
                    p.p_variants <- { p.p_variants with Variants.source_rate = Variants.Per_node };
                    Ok ()
                | "network-total" ->
                    p.p_variants <-
                      { p.p_variants with Variants.source_rate = Variants.Network_total };
                    Ok ()
                | _ -> err ln "source-rate: expected per-node or network-total, got %S" v)
            | "[variants]", "relaxing-factor" ->
                let* v = one "relaxing-factor" in
                let* b = parse_bool ln "relaxing-factor" v in
                p.p_variants <- { p.p_variants with Variants.use_relaxing_factor = b };
                Ok ()
            | "[pattern]", "uniform" ->
                p.p_pattern <- Destination.Uniform;
                Ok ()
            | "[pattern]", "hotspot" -> (
                match args with
                | [ node; fraction ] ->
                    let* node = parse_int ln "hotspot.node" node in
                    let* fraction = parse_float ln "hotspot.fraction" fraction in
                    p.p_pattern <- Destination.Hotspot { node; fraction };
                    Ok ()
                | _ -> err ln "hotspot: expected `hotspot NODE FRACTION`")
            | "[pattern]", "local" ->
                let* v = one "local" in
                let* p_local = parse_float ln "local" v in
                p.p_pattern <- Destination.Local { p_local };
                Ok ()
            | "[protocol]", "warmup" ->
                let* v = one "warmup" in
                let* i = parse_int ln "warmup" v in
                p.p_protocol <- { p.p_protocol with warmup = i };
                Ok ()
            | "[protocol]", "measured" ->
                let* v = one "measured" in
                let* i = parse_int ln "measured" v in
                p.p_protocol <- { p.p_protocol with measured = i };
                Ok ()
            | "[protocol]", "drain" ->
                let* v = one "drain" in
                let* i = parse_int ln "drain" v in
                p.p_protocol <- { p.p_protocol with drain = i };
                Ok ()
            | "[protocol]", "seed" -> (
                let* v = one "seed" in
                match Int64.of_string_opt v with
                | Some s ->
                    p.p_protocol <- { p.p_protocol with seed = s };
                    Ok ()
                | None -> err ln "seed: expected an integer (decimal or 0x hex), got %S" v)
            | "[protocol]", "cd-mode" -> (
                let* v = one "cd-mode" in
                match v with
                | "cut-through" ->
                    p.p_protocol <- { p.p_protocol with cd_mode = Cut_through };
                    Ok ()
                | "store-and-forward" ->
                    p.p_protocol <- { p.p_protocol with cd_mode = Store_and_forward };
                    Ok ()
                | _ -> err ln "cd-mode: expected cut-through or store-and-forward, got %S" v)
            | "[protocol]", "streaming" ->
                let* v = one "streaming" in
                let* b = parse_bool ln "streaming" v in
                p.p_protocol <- { p.p_protocol with streaming = b };
                Ok ()
            | "[replication]", "target-rel" ->
                let* v = one "target-rel" in
                let* f = parse_float ln "target-rel" v in
                p.p_replication <-
                  Some { (Option.get p.p_replication) with target_rel = f };
                Ok ()
            | "[replication]", "confidence" ->
                let* v = one "confidence" in
                let* f = parse_float ln "confidence" v in
                p.p_replication <-
                  Some { (Option.get p.p_replication) with confidence = f };
                Ok ()
            | "[replication]", "min-reps" ->
                let* v = one "min-reps" in
                let* i = parse_int ln "min-reps" v in
                p.p_replication <- Some { (Option.get p.p_replication) with min_reps = i };
                Ok ()
            | "[replication]", "max-reps" ->
                let* v = one "max-reps" in
                let* i = parse_int ln "max-reps" v in
                p.p_replication <- Some { (Option.get p.p_replication) with max_reps = i };
                Ok ()
            | "[replication]", "target" -> (
                match args with
                | [ "mean" ] ->
                    p.p_replication <- Some { (Option.get p.p_replication) with target = Mean };
                    Ok ()
                | [ "quantile"; q ] ->
                    let* q = parse_float ln "target.quantile" q in
                    p.p_replication <-
                      Some { (Option.get p.p_replication) with target = Quantile q };
                    Ok ()
                | _ -> err ln "target: expected `target mean` or `target quantile Q`")
            | "[load]", "fixed" ->
                let* v = one "fixed" in
                let* l = parse_float ln "fixed" v in
                p.p_load <- Some (Fixed l);
                Ok ()
            | "[load]", "linear" -> (
                match args with
                | [ lm; steps ] ->
                    let* lambda_max = parse_float ln "linear.lambda-max" lm in
                    let* steps = parse_int ln "linear.steps" steps in
                    p.p_load <- Some (Linear { lambda_max; steps });
                    Ok ()
                | _ -> err ln "linear: expected `linear LAMBDA_MAX STEPS`")
            | "", _ -> err ln "unknown key %S (before any [section])" key
            | _, _ -> err ln "unknown key %S in %s" key section
          in
          go section saw_header (ln + 1) rest)
  in
  let* () = go "" false 1 lines in
  let require field = function Some v -> Ok v | None -> Error ("missing " ^ field) in
  let* m = require "[system] m" p.p_m in
  let* icn2 = require "[system] icn2" p.p_icn2 in
  let* () = if p.p_clusters = [] then Error "missing [system] cluster lines" else Ok () in
  let clusters = Array.of_list (List.rev p.p_clusters) in
  let* icn2_depth =
    match p.p_icn2_depth with
    | Some d -> Ok d
    | None -> (
        let c = Array.length clusters in
        if c = 1 then Ok 1
        else
          match Params.icn2_depth_for ~m ~clusters:c with
          | Some d -> Ok d
          | None ->
              Error
                (Printf.sprintf
                   "[system] icn2-depth: no n_c satisfies C = 2*(m/2)^n_c for C = %d, m = %d \
                    (give icn2-depth explicitly or fix the cluster count)"
                   c m))
  in
  let* length_flits = require "[message] flits" p.p_flits in
  let* flit_bytes = require "[message] flit-bytes" p.p_flit_bytes in
  let* load = require "[load]" p.p_load in
  Ok
    {
      name = p.p_name;
      title = p.p_title;
      system = { Params.m; clusters; icn2; icn2_depth };
      message = { Params.length_flits; flit_bytes };
      variants = p.p_variants;
      pattern = p.p_pattern;
      protocol = p.p_protocol;
      replication = p.p_replication;
      load;
    }

let save ~path t =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string t))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
      match of_string text with
      | Error e -> Error (path ^ ": " ^ e)
      | Ok t -> (
          match validate t with Ok () -> Ok t | Error e -> Error (path ^ ": " ^ e)))

(* ---- canonical identity ----

   Floats render as the hex of their IEEE-754 bits: exact,
   platform-independent, and collision-free under rounding.  The
   name/title labels are deliberately excluded so relabeling never
   invalidates cached results. *)

let fbits f = Printf.sprintf "%Lx" (Int64.bits_of_float f)

let net_c (n : Params.network) =
  Printf.sprintf "%s,%s,%s" (fbits n.Params.bandwidth) (fbits n.Params.network_latency)
    (fbits n.Params.switch_latency)

let canonical t =
  let cluster_c (c : Params.cluster) =
    Printf.sprintf "%d:%s:%s" c.Params.tree_depth (net_c c.Params.icn1) (net_c c.Params.ecn1)
  in
  let sys =
    Printf.sprintf "m=%d;nc=%d;icn2=%s;cl=[%s]" t.system.Params.m t.system.Params.icn2_depth
      (net_c t.system.Params.icn2)
      (String.concat "|"
         (Array.to_list (Array.map cluster_c t.system.Params.clusters)))
  in
  let msg =
    Printf.sprintf "M=%d;dm=%s" t.message.Params.length_flits (fbits t.message.Params.flit_bytes)
  in
  let var =
    Printf.sprintf "i2=%s;sv=%s;sr=%s;rf=%b"
      (match t.variants.Variants.lambda_i2 with
      | Variants.Pair_average -> "pa"
      | Variants.Size_scaled -> "ss")
      (match t.variants.Variants.source_variance with
      | Variants.Draper_ghosh -> "dg"
      | Variants.Zero -> "z")
      (match t.variants.Variants.source_rate with
      | Variants.Per_node -> "pn"
      | Variants.Network_total -> "nt")
      t.variants.Variants.use_relaxing_factor
  in
  let pat =
    match t.pattern with
    | Destination.Uniform -> "u"
    | Destination.Hotspot { node; fraction } -> Printf.sprintf "h:%d,%s" node (fbits fraction)
    | Destination.Local { p_local } -> Printf.sprintf "l:%s" (fbits p_local)
  in
  let proto =
    Printf.sprintf "w=%d;me=%d;dr=%d;seed=%Lx;cd=%s;st=%b" t.protocol.warmup
      t.protocol.measured t.protocol.drain t.protocol.seed
      (match t.protocol.cd_mode with Cut_through -> "ct" | Store_and_forward -> "sf")
      t.protocol.streaming
  in
  let rep =
    match t.replication with
    | None -> "none"
    | Some r ->
        Printf.sprintf "%s,%s,%d,%d,%s" (fbits r.target_rel) (fbits r.confidence) r.min_reps
          r.max_reps
          (match r.target with Mean -> "m" | Quantile q -> "q:" ^ fbits q)
  in
  let load =
    match t.load with
    | Fixed l -> Printf.sprintf "f:%s" (fbits l)
    | Linear { lambda_max; steps } -> Printf.sprintf "l:%s,%d" (fbits lambda_max) steps
  in
  Printf.sprintf "sys{%s};msg{%s};var{%s};pat{%s};proto{%s};rep{%s};load{%s}" sys msg var pat
    proto rep load

let hash t =
  Digest.to_hex
    (Digest.string (Printf.sprintf "fatnet-scenario v%d;%s" scenario_version (canonical t)))

(* The model-memo key: the canonical hash with the load axis
   normalised away, because the memo keys λ separately by its IEEE-754
   bits — [at t λ] points of one scenario must share entries.  The
   sim-only fields (protocol, replication) stay in the key; that only
   splits entries between scenarios that could have shared, never
   aliases two different model inputs. *)
let memo_key t = hash { t with load = Fixed 0. }

let memo_evaluator ?memo t =
  let ws = evaluator t in
  let key = memo_key t in
  fun lambda_g -> Eval.mean_memo ?memo ~key ws ~lambda_g

let pp ppf t =
  Format.fprintf ppf "%s: N=%d C=%d m=%d M=%d dm=%g %s"
    (if t.name = "" then "(unnamed)" else t.name)
    (Params.total_nodes t.system) (Params.cluster_count t.system) t.system.Params.m
    t.message.Params.length_flits t.message.Params.flit_bytes
    (match t.load with
    | Fixed l -> Printf.sprintf "lambda=%g" l
    | Linear { lambda_max; steps } -> Printf.sprintf "sweep<=%g (%d steps)" lambda_max steps)
