(** One typed, serializable description of an experiment.

    A scenario fully determines an experiment: the system topology
    (Table-1 shape), the message parameters, the model variant
    readings, the traffic pattern, the simulation protocol, the
    replication stopping rule, and the load axis swept.  Every
    consumer — the analytical model, the discrete-event simulator,
    the sweep engine and the three binaries — reads the same record,
    so a new workload is a new scenario value (or [.scn] file), not a
    new code path.

    Three renderings exist, with distinct stability contracts:

    {ul
    {- {b the text codec} ({!to_string}/{!of_string}): a
       human-writable, line-based, versioned format ([scenario 1]
       header).  Parse → print → parse is the identity; the printed
       form is canonical (floats render in the shortest form that
       round-trips exactly).}
    {- {b the canonical string} ({!canonical}): a one-line rendering
       with every float as the hex of its IEEE-754 bits.  Exact,
       platform-independent, and collision-free under rounding; the
       [name]/[title] labels are excluded, so renaming a scenario
       never changes its identity.}
    {- {b the hash} ({!hash}): a digest of {!canonical} prefixed with
       {!scenario_version}.  This is the identity the point cache
       keys on (see {!Fatnet_experiments.Point_cache}).}}

    Bump {!scenario_version} whenever the meaning of a field or the
    canonical rendering changes: old files are rejected with a clear
    error instead of being silently reinterpreted, and every cache
    entry is invalidated because the version prefixes the hash. *)

val scenario_version : int
(** Version of the text codec and the canonical/hash scheme (currently
    2: version 1 plus the replication convergence [target]). *)

val parseable_versions : int list
(** Header versions {!of_string} accepts.  Older versions parse with
    the semantics their fields had then (a v1 file reads back with
    [target = Mean]); the canonical identity always renders — and
    hashes — at {!scenario_version}. *)

(** {1 Components} *)

type cd_mode =
  | Cut_through
      (** C/Ds forward flits as they arrive (the paper's "simple
          bi-directional buffers"). *)
  | Store_and_forward  (** C/Ds queue whole messages (ablation). *)

type protocol = {
  warmup : int;    (** messages generated before statistics start *)
  measured : int;  (** messages included in statistics *)
  drain : int;     (** extra messages generated after the measured batch *)
  seed : int64;    (** base PRNG seed *)
  cd_mode : cd_mode;
  streaming : bool;  (** use the engine's closed-form streaming fast path *)
}
(** The simulator's Section-4 run protocol (what
    {!Fatnet_sim.Runner.config} carries, minus the per-run function
    hooks — the destination pattern lives in the scenario itself and
    trace sinks are attached at run time). *)

type target =
  | Mean  (** converge the replication-level CI on the mean latency *)
  | Quantile of float
      (** converge on one of the fixed quantile-ladder estimates
          (0.5, 0.9, 0.99 or 0.999) — the Student-t interval is taken
          over the per-replication P² estimates of that quantile *)

type replication = {
  target_rel : float;  (** stop at this relative CI half-width *)
  confidence : float;  (** CI confidence level, e.g. [0.95] *)
  min_reps : int;      (** replications always run *)
  max_reps : int;      (** hard cap *)
  target : target;     (** the statistic the CI is taken over *)
}
(** Stopping rule for CI-adaptive independent replications
    ({!Fatnet_sim.Runner.run_replicated}). *)

type load =
  | Fixed of float
      (** One operating point: the per-node generation rate λ_g. *)
  | Linear of { lambda_max : float; steps : int }
      (** The figures' sweep axis: [steps] points
          [lambda_max·(i+1)/steps], i = 0..steps−1. *)

type t = {
  name : string;   (** short identifier, e.g. ["fig3"]; not hashed *)
  title : string;  (** human description; not hashed *)
  system : Fatnet_model.Params.system;
  message : Fatnet_model.Params.message;
  variants : Fatnet_model.Variants.t;
  pattern : Fatnet_workload.Destination.t;
  protocol : protocol;
  replication : replication option;  (** [None] = one run per point *)
  load : load;
}

(** {1 Construction} *)

val default_protocol : protocol
(** The paper's protocol: 10_000 / 100_000 / 10_000 messages, a fixed
    seed, cut-through C/Ds, streaming on. *)

val quick_protocol : protocol
(** The scaled-down 1_000 / 10_000 / 1_000 protocol for tests and
    fast sweeps. *)

val make :
  ?name:string ->
  ?title:string ->
  ?variants:Fatnet_model.Variants.t ->
  ?pattern:Fatnet_workload.Destination.t ->
  ?protocol:protocol ->
  ?replication:replication ->
  system:Fatnet_model.Params.system ->
  message:Fatnet_model.Params.message ->
  load:load ->
  unit ->
  t
(** Build and validate a scenario (defaults: [Variants.default],
    uniform destinations, {!default_protocol}, no replication).
    @raise Invalid_argument when {!validate} fails. *)

(** {1 Validation} *)

val validate : t -> (unit, string) result
(** Check every invariant, with the offending field in the message
    (e.g. ["system: m must be even and >= 2"],
    ["protocol.measured: must be >= 1"]). *)

val validate_exn : t -> unit
(** @raise Invalid_argument when {!validate} fails. *)

(** {1 The load axis} *)

val lambdas : t -> float list
(** The operating points of the load axis, in sweep order. *)

val at : t -> float -> t
(** The same scenario pinned to one operating point
    ([load = Fixed lambda_g]). *)

val points : t -> t list
(** One fixed-load scenario per operating point:
    [List.map (at t) (lambdas t)]. *)

val fixed_lambda : t -> float option
(** The rate when the load is [Fixed], else [None]. *)

val require_lambda : ?lambda_g:float -> t -> float
(** [lambda_g] when given, else the scenario's fixed rate.
    @raise Invalid_argument on a swept axis with no override. *)

(** {1 The analytical model} *)

val model_evaluate : ?lambda_g:float -> t -> Fatnet_model.Latency.t
(** Eqs. (1)–(39) under the scenario's variants and traffic pattern
    ([Local] patterns use the {!Fatnet_model.Pattern} extension;
    [Hotspot] has no closed form and falls back to uniform — use the
    simulator for hotspot predictions). *)

val model_mean : ?lambda_g:float -> t -> float
(** Just the mean latency, Eq. (3). *)

val evaluator : t -> Fatnet_model.Eval.workspace
(** An allocation-free evaluation workspace for the scenario's
    (system, message, variants, pattern) — build once per scenario,
    then [Eval.mean_into] per operating point.  Bit-identical to
    {!model_mean} at every rate. *)

val memo_key : t -> string
(** The scenario's model-memo key: {!hash} with the load axis
    normalised away, so every [at t λ] point of one scenario shares
    memo entries (λ is keyed separately, by its IEEE-754 bits). *)

val memo_evaluator :
  ?memo:float Fatnet_numerics.Memo.t -> t -> float -> float
(** [evaluator] fronted by a sharded in-memory memo
    ({!Fatnet_numerics.Memo}): the returned closure is
    [Eval.mean_memo] over the scenario's workspace with {!memo_key}.
    Bit-identical to {!model_mean} whether a point hits or misses —
    the model is a pure function of (scenario, λ).  Without [memo]
    it is a plain warm evaluator. *)

val saturation_rate : ?state:Fatnet_numerics.Solver.bracket_state -> t -> float
(** The model's divergence rate under the scenario's variants
    (uniform-pattern Eq. (2), as in the figures).  Without [state]
    this is the canonical cold search; with [state], successive calls
    over nearby scenarios warm-start from the previous bracket. *)

(** {1 Text codec} *)

val to_string : t -> string
(** Render as the versioned [.scn] text format (see DESIGN.md,
    "Scenario subsystem", for the schema).  [of_string (to_string t)
    = Ok t] for every valid [t]. *)

val of_string : string -> (t, string) result
(** Parse the text format.  Errors carry the line number and field
    (["line 7: [system] cluster: expected ..."]).  Parsing does not
    validate; callers wanting both use {!load} or run {!validate}. *)

val save : path:string -> t -> unit
(** Write [to_string] to [path]. *)

val load : string -> (t, string) result
(** Read, parse and validate a [.scn] file; every error message is
    prefixed with the path. *)

(** {1 Identity} *)

val canonical : t -> string
(** Canonical one-line rendering of every semantic field ([name] and
    [title] excluded), floats as IEEE-754 bit hex. *)

val hash : t -> string
(** Hex digest of {!canonical}, prefixed with {!scenario_version}.
    Equal scenarios (up to naming) hash equally on every platform;
    any semantic change — or a version bump — changes the hash. *)

val pp : Format.formatter -> t -> unit
(** One-line human summary. *)
