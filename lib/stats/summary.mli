(** Immutable latency-distribution summary of a sample set, as
    produced by the simulator's instrumentation at the end of a run:
    exact moments (Welford) plus the fixed quantile ladder
    p50/p90/p99/p999 (P² estimates). *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

val of_welford : Welford.t -> p50:float -> p90:float -> p99:float -> p999:float -> t
(** Assemble a summary from a moments accumulator plus externally
    estimated quantiles. *)

val empty : t
(** All-zero summary (count 0, nan quantiles). *)

val quantiles : float list
(** The fixed quantile ladder every summary carries:
    [[0.5; 0.9; 0.99; 0.999]]. *)

val quantile : t -> float -> float
(** Look up one of the fixed quantiles ({!quantiles});
    [Invalid_argument] for any other probability. *)

val merge : t list -> t
(** Pool summaries produced independently (per replication, per
    domain, or read back from a cache).  Moments merge exactly
    (Chan's parallel Welford update, folded in list order, so the
    result is deterministic for a given list); each quantile is the
    count-weighted average of the non-nan per-summary estimates — the
    exact pooled quantile is unrecoverable from P² state, and the
    weighted estimate converges to it as the per-stream estimates do.
    Empty-count summaries are skipped; [merge [] = empty]. *)

val pp : Format.formatter -> t -> unit
