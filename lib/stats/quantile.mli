(** P² (Jain & Chlamtac, 1985) streaming quantile estimator.

    Estimates a single quantile in O(1) memory without storing
    samples; the simulator uses it for median and p99 latency. *)

type t

val create : q:float -> t
(** [create ~q] with [q] strictly between 0 and 1. *)

val add : t -> float -> unit

val count : t -> int

val estimate : t -> float
(** Current quantile estimate.  Before five samples have been seen,
    falls back to the exact order statistic of what was observed;
    [nan] with zero samples. *)

val exact_of_sorted : float array -> q:float -> float
(** Exact quantile of a pre-sorted array (linear interpolation
    between order statistics); reference implementation for tests. *)

val merged_estimate : t list -> float
(** Count-weighted combination of the estimators' current estimates —
    the cross-replication view of a quantile tracked independently
    per replication.  (P² state does not permit recovering the exact
    pooled quantile; the weighted estimate agrees with it as the
    per-stream estimates converge — property-tested against
    {!exact_of_sorted} on pooled synthetic data.)  Edge cases are
    explicit: estimators with zero samples are ignored; [nan] when
    the list is empty or all estimators are empty; with exactly one
    (live) estimator the merge is that estimator's own estimate. *)
