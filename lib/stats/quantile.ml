type t = {
  q : float;
  heights : float array;        (* marker heights, 5 markers *)
  positions : float array;      (* actual marker positions *)
  desired : float array;        (* desired marker positions *)
  increments : float array;     (* desired position increments *)
  mutable n : int;
  initial : float array;        (* first five samples, unsorted *)
}

let create ~q =
  if not (q > 0. && q < 1.) then invalid_arg "Quantile.create: q must be in (0,1)";
  {
    q;
    heights = Array.make 5 0.;
    positions = [| 1.; 2.; 3.; 4.; 5. |];
    desired = [| 1.; 1. +. (2. *. q); 1. +. (4. *. q); 3. +. (2. *. q); 5. |];
    increments = [| 0.; q /. 2.; q; (1. +. q) /. 2.; 1. |];
    n = 0;
    initial = Array.make 5 0.;
  }

let count t = t.n

let exact_of_sorted sorted ~q =
  let n = Array.length sorted in
  if n = 0 then nan
  else if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor pos) in
    let frac = pos -. float_of_int i in
    if i >= n - 1 then sorted.(n - 1)
    else sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
  end

(* Piecewise-parabolic (P²) height adjustment for marker [i] moved by
   [d] (±1). *)
let parabolic t i d =
  let q = t.heights and pos = t.positions in
  q.(i)
  +. d
     /. (pos.(i + 1) -. pos.(i - 1))
     *. (((pos.(i) -. pos.(i - 1) +. d) *. (q.(i + 1) -. q.(i)) /. (pos.(i + 1) -. pos.(i)))
        +. ((pos.(i + 1) -. pos.(i) -. d) *. (q.(i) -. q.(i - 1)) /. (pos.(i) -. pos.(i - 1))))

let linear t i d =
  let q = t.heights and pos = t.positions in
  let j = i + int_of_float d in
  q.(i) +. (d *. (q.(j) -. q.(i)) /. (pos.(j) -. pos.(i)))

let add t x =
  if t.n < 5 then begin
    t.initial.(t.n) <- x;
    t.n <- t.n + 1;
    if t.n = 5 then begin
      let sorted = Array.copy t.initial in
      Array.sort Float.compare sorted;
      Array.blit sorted 0 t.heights 0 5
    end
  end
  else begin
    t.n <- t.n + 1;
    let q = t.heights and pos = t.positions in
    (* Find cell k such that q.(k) <= x < q.(k+1), clamping extremes. *)
    let k =
      if x < q.(0) then begin
        q.(0) <- x;
        0
      end
      else if x >= q.(4) then begin
        q.(4) <- Float.max x q.(4);
        3
      end
      else begin
        let rec find i = if x < q.(i + 1) then i else find (i + 1) in
        find 0
      end
    in
    for i = k + 1 to 4 do
      pos.(i) <- pos.(i) +. 1.
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.increments.(i)
    done;
    (* Adjust interior markers towards their desired positions. *)
    for i = 1 to 3 do
      let d = t.desired.(i) -. pos.(i) in
      if
        (d >= 1. && pos.(i + 1) -. pos.(i) > 1.)
        || (d <= -1. && pos.(i - 1) -. pos.(i) < -1.)
      then begin
        let d = if d >= 0. then 1. else -1. in
        let candidate = parabolic t i d in
        let new_height =
          if q.(i - 1) < candidate && candidate < q.(i + 1) then candidate else linear t i d
        in
        q.(i) <- new_height;
        pos.(i) <- pos.(i) +. d
      end
    done
  end

let estimate t =
  if t.n = 0 then nan
  else if t.n < 5 then begin
    let sorted = Array.sub t.initial 0 t.n in
    Array.sort Float.compare sorted;
    exact_of_sorted sorted ~q:t.q
  end
  else t.heights.(2)

(* The edge cases are spelled out rather than left to the weighted
   fold: no estimators (or all empty) is nan, and a single
   replication is exactly that replication's estimate — weighting
   must never perturb the degenerate cases. *)
let merged_estimate = function
  | [] -> nan
  | [ t ] -> estimate t
  | ts -> (
      match List.filter (fun t -> t.n > 0) ts with
      | [] -> nan
      | [ t ] -> estimate t
      | live ->
          let total = List.fold_left (fun acc t -> acc + t.n) 0 live in
          List.fold_left
            (fun acc t -> acc +. (float_of_int t.n /. float_of_int total *. estimate t))
            0. live)
