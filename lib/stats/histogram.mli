(** Fixed-bin histogram over a float range.

    Used to inspect latency distributions (tail behaviour near
    saturation) and hop-count distributions from the simulator. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] requires [lo < hi] and [bins >= 1].
    Samples below [lo] or at/above [hi] are tallied in overflow
    counters, not dropped silently. *)

val add : t -> float -> unit

val count : t -> int
(** Total samples, including under/overflow. *)

val merge : t -> t -> t
(** Bin-wise sum of two histograms.  Requires identical
    [lo]/[hi]/[bins] layouts (raises [Invalid_argument] otherwise);
    the inputs are left unchanged.  Because the layout is fixed at
    creation, merging is exact: the result is what a single histogram
    would have tallied over both sample streams. *)

val bin_count : t -> int -> int
(** Count in bin [i] (0-based). *)

val underflow : t -> int
val overflow : t -> int

val bin_bounds : t -> int -> float * float
(** Half-open bounds [(lo_i, hi_i)] of bin [i]. *)

val fraction_below : t -> float -> float
(** Approximate CDF at a value (counts whole bins whose upper bound is
    at or below the value, plus the underflow mass). *)

val pp : Format.formatter -> t -> unit
(** Render a small ASCII sketch of the histogram. *)
