(** Batch-means confidence intervals for steady-state simulation
    output.

    Correlated latency samples are grouped into fixed-size batches;
    batch means are approximately independent, so a Student-t interval
    over them is a defensible CI for the steady-state mean. *)

type t

val create : batch_size:int -> t
(** [batch_size >= 1]. *)

val add : t -> float -> unit

val completed_batches : t -> int

val mean : t -> float
(** Grand mean over completed batches ([nan] if none). *)

val half_width : t -> confidence:float -> float
(** Half-width of the two-sided CI at [confidence] (e.g. [0.95]).
    Requires at least two completed batches; [nan] otherwise.
    Uses a built-in t-table (exact for small df, normal limit
    beyond). *)

val relative_half_width : t -> confidence:float -> float
(** [half_width / |mean|]; [nan] when undefined. *)

val t_critical : confidence:float -> df:int -> float
(** Two-sided Student-t critical value (the table {!half_width}
    uses): exact for [df <= 30], the normal quantile beyond.
    Exposed so that replication-level intervals — a Student-t over
    independent replication means — use the same table as the
    batch-means intervals.  Requires [df >= 1]. *)
