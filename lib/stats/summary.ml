type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

let of_welford w ~p50 ~p90 ~p99 ~p999 =
  {
    count = Welford.count w;
    mean = Welford.mean w;
    stddev = Welford.stddev w;
    min = Welford.min_value w;
    max = Welford.max_value w;
    p50;
    p90;
    p99;
    p999;
  }

let empty =
  {
    count = 0;
    mean = 0.;
    stddev = 0.;
    min = nan;
    max = nan;
    p50 = nan;
    p90 = nan;
    p99 = nan;
    p999 = nan;
  }

let quantiles = [ 0.5; 0.9; 0.99; 0.999 ]

let quantile t q =
  if q = 0.5 then t.p50
  else if q = 0.9 then t.p90
  else if q = 0.99 then t.p99
  else if q = 0.999 then t.p999
  else invalid_arg (Printf.sprintf "Summary.quantile: %g is not one of p50/p90/p99/p999" q)

(* Moments pool exactly (Chan's parallel update, via Welford.of_stats /
   merge, folded in list order); quantiles cannot — P² keeps no sample
   state — so each is the count-weighted average of the per-summary
   estimates, skipping summaries whose estimate is nan (e.g. the
   intra/inter side summaries that track moments only).  The weighted
   estimate is the documented cross-replication semantics; it agrees
   with the exact pooled quantile as the per-stream estimates
   converge. *)
let merge = function
  | [] -> empty
  | ts ->
      let w =
        List.fold_left
          (fun acc t ->
            if t.count = 0 then acc
            else
              let v = t.stddev *. t.stddev in
              let wt = Welford.of_stats ~n:t.count ~mean:t.mean ~variance:v ~min:t.min ~max:t.max in
              match acc with None -> Some wt | Some a -> Some (Welford.merge a wt))
          None ts
      in
      let weighted field =
        let num, den =
          List.fold_left
            (fun (num, den) t ->
              let v = field t in
              if t.count = 0 || Float.is_nan v then (num, den)
              else (num +. (float_of_int t.count *. v), den +. float_of_int t.count))
            (0., 0.) ts
        in
        if den = 0. then nan else num /. den
      in
      let p50 = weighted (fun t -> t.p50)
      and p90 = weighted (fun t -> t.p90)
      and p99 = weighted (fun t -> t.p99)
      and p999 = weighted (fun t -> t.p999) in
      (match w with
      | None -> { empty with p50; p90; p99; p999 }
      | Some w -> of_welford w ~p50 ~p90 ~p99 ~p999)

let pp_q ppf v = if Float.is_nan v then Format.pp_print_string ppf "--" else Format.fprintf ppf "%.4g" v

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%a max=%a p50=%a p90=%a p99=%a p999=%a"
    t.count t.mean t.stddev pp_q t.min pp_q t.max pp_q t.p50 pp_q t.p90 pp_q t.p99 pp_q
    t.p999
