(** Streaming mean/variance (Welford's online algorithm).

    Numerically stable single-pass moments; the simulator feeds every
    measured message latency through one of these. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Observe one sample. *)

val count : t -> int
(** Number of samples observed. *)

val mean : t -> float
(** Sample mean; [0.] before any sample. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val min_value : t -> float
(** Smallest sample; [nan] before any sample. *)

val max_value : t -> float
(** Largest sample; [nan] before any sample. *)

val merge : t -> t -> t
(** Combine two accumulators (parallel Welford/Chan update). *)

val of_stats : n:int -> mean:float -> variance:float -> min:float -> max:float -> t
(** Reconstruct an accumulator from previously reported statistics
    ([variance] is the unbiased sample variance, as {!variance}
    reports).  Used to merge per-replication summaries that were
    produced independently — possibly in another domain or read back
    from a cache — without re-observing the samples. *)
