type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: requires lo < hi";
  if bins < 1 then invalid_arg "Histogram.create: requires bins >= 1";
  { lo; hi; counts = Array.make bins 0; under = 0; over = 0; total = 0 }

let bins t = Array.length t.counts

let width t = (t.hi -. t.lo) /. float_of_int (bins t)

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. width t) in
    let i = min i (bins t - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total

let merge a b =
  if a.lo <> b.lo || a.hi <> b.hi || bins a <> bins b then
    invalid_arg "Histogram.merge: layouts differ";
  {
    lo = a.lo;
    hi = a.hi;
    counts = Array.init (bins a) (fun i -> a.counts.(i) + b.counts.(i));
    under = a.under + b.under;
    over = a.over + b.over;
    total = a.total + b.total;
  }

let bin_count t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_count: index";
  t.counts.(i)

let underflow t = t.under
let overflow t = t.over

let bin_bounds t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_bounds: index";
  let w = width t in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let fraction_below t x =
  if t.total = 0 then 0.
  else begin
    let acc = ref t.under in
    for i = 0 to bins t - 1 do
      let _, hi_i = bin_bounds t i in
      if hi_i <= x then acc := !acc + t.counts.(i)
    done;
    float_of_int !acc /. float_of_int t.total
  end

let pp ppf t =
  let max_count = Array.fold_left max 1 t.counts in
  Format.fprintf ppf "histogram [%g, %g) n=%d under=%d over=%d@." t.lo t.hi t.total t.under
    t.over;
  Array.iteri
    (fun i c ->
      let lo_i, hi_i = bin_bounds t i in
      let bar_len = c * 40 / max_count in
      Format.fprintf ppf "  [%8.3g, %8.3g) %6d %s@." lo_i hi_i c (String.make bar_len '#'))
    t.counts
