let approx_equal ?(rel = 1e-9) ?(abs = 1e-12) a b =
  let diff = Float.abs (a -. b) in
  diff <= abs || diff <= rel *. Float.max (Float.abs a) (Float.abs b)

let relative_error ~expected ~actual =
  let diff = Float.abs (actual -. expected) in
  if expected = 0. then diff else diff /. Float.abs expected

let safe_div num den =
  if den = 0. then if num = 0. then 0. else if num > 0. then infinity else neg_infinity
  else num /. den

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Float_utils.clamp: lo > hi";
  Float.max lo (Float.min hi x)

let is_finite x = Float.is_finite x

let square x = x *. x

let mean_of = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let sum_array xs = Array.fold_left ( +. ) 0. xs

let mean_of_array xs =
  let n = Array.length xs in
  if n = 0 then 0. else sum_array xs /. float_of_int n
