(** Lock-striped in-memory memo cache for deterministic evaluations.

    The analytical model is a pure function of (scenario, λ): the
    same inputs always produce the same IEEE-754 bits (the engine's
    pinned bit-identity contract).  That purity is what makes an
    in-memory memo safe under parallelism — two domains racing to
    compute the same key write the {e same} value, so last-write-wins
    stores need no coordination beyond per-shard mutual exclusion on
    the table structure itself.

    Keys are [(key : string, bits : int64)] pairs: in the model
    engine, [key] is the scenario canonical hash ({!Fatnet_scenario}
    excludes presentation fields from it) and [bits] is
    [Int64.bits_of_float lambda_g], so two λ values collide only when
    they are the same float bit pattern — exactly when the memoised
    result is bit-identical anyway.

    The table is striped over a power-of-two number of shards, each a
    mutex-guarded hashtable.  Lookups lock one shard for the duration
    of a hashtable probe (no user code runs under the lock);
    {!find_or_compute} runs the computation {e outside} the lock, so
    a slow evaluation never blocks other shards or even other keys of
    the same shard for longer than the probe. *)

type 'v t

val create : ?shards:int -> ?capacity:int -> ?metric:string -> unit -> 'v t
(** A fresh memo with [shards] stripes (default 64, rounded up to a
    power of two).  When [metric] is given (e.g. ["model_memo"]),
    every lookup additionally bumps ["<metric>_hits"] or
    ["<metric>_misses"] on the calling domain's {e ambient} metrics
    registry — the same convention the solver uses, so per-domain
    worker registries absorb cleanly after a parallel join.

    [capacity] bounds each shard to that many entries (so the memo
    holds at most [shards × capacity] values); the default is
    unbounded, which is right for a sweep whose key population is
    finite but wrong for a daemon fed arbitrary (scenario, λ) keys.
    Eviction is second-chance ("clock"): a hit re-arms its entry, an
    insert into a full shard sweeps a clock hand past armed entries
    (disarming them) and evicts the first unarmed one — O(1) amortised
    and never worse than two laps.  Evictions bump
    ["<metric>_evictions"] and {!evictions}.  Raises [Invalid_argument]
    when [capacity < 1]. *)

val find : 'v t -> key:string -> bits:int64 -> 'v option
(** Lookup; counts a hit or miss. *)

val store : 'v t -> key:string -> bits:int64 -> 'v -> unit
(** Insert or overwrite.  Racing stores for the same key are benign
    when values are deterministic functions of the key (the only
    supported use). *)

val find_or_compute : 'v t -> key:string -> bits:int64 -> (unit -> 'v) -> 'v
(** [find], or run the thunk outside any lock and [store] the result.
    Concurrent callers may compute the same key twice; both stores
    write the same value. *)

val hits : _ t -> int
(** Total hits since creation, across all domains. *)

val misses : _ t -> int
(** Total misses since creation, across all domains. *)

val evictions : _ t -> int
(** Entries displaced by the capacity bound since creation (always 0
    for an unbounded memo). *)

val capacity : _ t -> int option
(** The per-shard capacity this memo was created with, if any. *)

val hit_rate : _ t -> float
(** [hits / (hits + misses)]; 0 when no lookups have happened. *)

val length : _ t -> int
(** Number of memoised entries (sums the shards; a racing writer can
    make this approximate). *)

val clear : _ t -> unit
(** Drop all entries; the hit/miss totals are kept. *)
