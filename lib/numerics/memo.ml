module Metrics = Fatnet_obs.Metrics

type mkey = { mk : string; mbits : int64 }

type 'v shard = { lock : Mutex.t; tbl : (mkey, 'v) Hashtbl.t }

type 'v t = {
  shards : 'v shard array;
  mask : int;
  metric : string option;
  hits_total : int Atomic.t;
  misses_total : int Atomic.t;
}

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(shards = 64) ?metric () =
  if shards < 1 then invalid_arg "Memo.create: shards must be >= 1";
  let n = pow2_at_least shards 1 in
  {
    shards = Array.init n (fun _ -> { lock = Mutex.create (); tbl = Hashtbl.create 64 });
    mask = n - 1;
    metric;
    hits_total = Atomic.make 0;
    misses_total = Atomic.make 0;
  }

let shard_of t k = t.shards.(Hashtbl.hash k land t.mask)

(* Per-lookup accounting: the process-wide atomics always run; the
   ambient-registry counters only when the memo was created with a
   metric name (they are per-domain, merged by the caller's absorb,
   and dead stores when the ambient registry is disabled). *)
let record t ~hit =
  (match t.metric with
  | None -> ()
  | Some m ->
      let reg = Metrics.ambient () in
      let name = m ^ if hit then "_hits" else "_misses" in
      Metrics.incr (Metrics.counter reg name));
  Atomic.incr (if hit then t.hits_total else t.misses_total)

let find t ~key ~bits =
  let k = { mk = key; mbits = bits } in
  let s = shard_of t k in
  Mutex.lock s.lock;
  let r = Hashtbl.find_opt s.tbl k in
  Mutex.unlock s.lock;
  record t ~hit:(Option.is_some r);
  r

let store t ~key ~bits v =
  let k = { mk = key; mbits = bits } in
  let s = shard_of t k in
  Mutex.lock s.lock;
  Hashtbl.replace s.tbl k v;
  Mutex.unlock s.lock

let find_or_compute t ~key ~bits f =
  match find t ~key ~bits with
  | Some v -> v
  | None ->
      (* Outside the shard lock: a concurrent computation of the same
         key stores an identical value (determinism contract). *)
      let v = f () in
      store t ~key ~bits v;
      v

let hits t = Atomic.get t.hits_total
let misses t = Atomic.get t.misses_total

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let length t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.reset s.tbl;
      Mutex.unlock s.lock)
    t.shards
