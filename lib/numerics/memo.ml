module Metrics = Fatnet_obs.Metrics

type mkey = { mk : string; mbits : int64 }

(* A capped shard keeps a clock ring alongside the hashtable: slot i
   of [ring] names the key occupying it (for slots < [used]), [refbit]
   is the second-chance bit, [slot_of] maps a key back to its slot so
   a hit can set the bit in O(1).  Unbounded shards leave the ring
   empty and never touch it. *)
type 'v shard = {
  lock : Mutex.t;
  tbl : (mkey, 'v) Hashtbl.t;
  ring : mkey array;
  refbit : Bytes.t;
  slot_of : (mkey, int) Hashtbl.t;
  mutable hand : int;
  mutable used : int;
}

type 'v t = {
  shards : 'v shard array;
  mask : int;
  cap : int;  (* per-shard entry bound; 0 = unbounded *)
  metric : string option;
  hits_total : int Atomic.t;
  misses_total : int Atomic.t;
  evictions_total : int Atomic.t;
}

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let no_key = { mk = ""; mbits = 0L }

let create ?(shards = 64) ?capacity ?metric () =
  if shards < 1 then invalid_arg "Memo.create: shards must be >= 1";
  let cap =
    match capacity with
    | None -> 0
    | Some c when c >= 1 -> c
    | Some _ -> invalid_arg "Memo.create: capacity must be >= 1"
  in
  let n = pow2_at_least shards 1 in
  {
    shards =
      Array.init n (fun _ ->
          {
            lock = Mutex.create ();
            tbl = Hashtbl.create 64;
            ring = Array.make cap no_key;
            refbit = Bytes.make (max cap 1) '\000';
            slot_of = Hashtbl.create (max (cap / 4) 16);
            hand = 0;
            used = 0;
          });
    mask = n - 1;
    cap;
    metric;
    hits_total = Atomic.make 0;
    misses_total = Atomic.make 0;
    evictions_total = Atomic.make 0;
  }

let shard_of t k = t.shards.(Hashtbl.hash k land t.mask)

(* Per-lookup accounting: the process-wide atomics always run; the
   ambient-registry counters only when the memo was created with a
   metric name (they are per-domain, merged by the caller's absorb,
   and dead stores when the ambient registry is disabled). *)
let record t ~hit =
  (match t.metric with
  | None -> ()
  | Some m ->
      let reg = Metrics.ambient () in
      let name = m ^ if hit then "_hits" else "_misses" in
      Metrics.incr (Metrics.counter reg name));
  Atomic.incr (if hit then t.hits_total else t.misses_total)

let record_evictions t n =
  if n > 0 then begin
    (match t.metric with
    | None -> ()
    | Some m -> Metrics.add (Metrics.counter (Metrics.ambient ()) (m ^ "_evictions")) n);
    ignore (Atomic.fetch_and_add t.evictions_total n)
  end

let find t ~key ~bits =
  let k = { mk = key; mbits = bits } in
  let s = shard_of t k in
  Mutex.lock s.lock;
  let r = Hashtbl.find_opt s.tbl k in
  (if t.cap > 0 && Option.is_some r then
     (* Second chance: a hit re-arms the entry against the clock hand. *)
     match Hashtbl.find_opt s.slot_of k with
     | Some slot -> Bytes.set s.refbit slot '\001'
     | None -> ());
  Mutex.unlock s.lock;
  record t ~hit:(Option.is_some r);
  r

(* Under the shard lock.  Returns the number of entries evicted (0 or
   1) so the caller can bump counters outside the lock. *)
let store_locked t s k v =
  if Hashtbl.mem s.tbl k then begin
    Hashtbl.replace s.tbl k v;
    if t.cap > 0 then begin
      match Hashtbl.find_opt s.slot_of k with
      | Some slot -> Bytes.set s.refbit slot '\001'
      | None -> ()
    end;
    0
  end
  else if t.cap = 0 then begin
    Hashtbl.replace s.tbl k v;
    0
  end
  else begin
    let evicted = ref 0 in
    let slot =
      if s.used < t.cap then begin
        let i = s.used in
        s.used <- s.used + 1;
        i
      end
      else begin
        (* Clock sweep: skip-and-disarm referenced slots until an
           unreferenced victim turns up.  Terminates within two laps —
           the first lap clears every bit it skips. *)
        let rec sweep () =
          let i = s.hand in
          s.hand <- (if i + 1 >= t.cap then 0 else i + 1);
          if Bytes.get s.refbit i = '\001' then begin
            Bytes.set s.refbit i '\000';
            sweep ()
          end
          else i
        in
        let i = sweep () in
        let victim = s.ring.(i) in
        Hashtbl.remove s.tbl victim;
        Hashtbl.remove s.slot_of victim;
        evicted := 1;
        i
      end
    in
    s.ring.(slot) <- k;
    Bytes.set s.refbit slot '\001';
    Hashtbl.replace s.slot_of k slot;
    Hashtbl.replace s.tbl k v;
    !evicted
  end

let store t ~key ~bits v =
  let k = { mk = key; mbits = bits } in
  let s = shard_of t k in
  Mutex.lock s.lock;
  let ev = store_locked t s k v in
  Mutex.unlock s.lock;
  record_evictions t ev

let find_or_compute t ~key ~bits f =
  match find t ~key ~bits with
  | Some v -> v
  | None ->
      (* Outside the shard lock: a concurrent computation of the same
         key stores an identical value (determinism contract). *)
      let v = f () in
      store t ~key ~bits v;
      v

let hits t = Atomic.get t.hits_total
let misses t = Atomic.get t.misses_total
let evictions t = Atomic.get t.evictions_total
let capacity t = if t.cap = 0 then None else Some t.cap

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let length t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.reset s.tbl;
      Hashtbl.reset s.slot_of;
      s.used <- 0;
      s.hand <- 0;
      Bytes.fill s.refbit 0 (Bytes.length s.refbit) '\000';
      Mutex.unlock s.lock)
    t.shards
