(** Root bracketing and bisection.

    Used to locate the saturation point of the analytical model: the
    traffic rate at which predicted latency diverges (the M/G/1
    denominators cross zero). *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** [bisect ~f ~lo ~hi ()] finds [x] in [[lo, hi]] with [f x ≈ 0].
    Requires [f lo] and [f hi] to have opposite signs (zero counts as
    either).  [tol] is the interval width at which to stop (default
    [1e-12] relative to the bracket).  Raises [Invalid_argument] when
    the bracket does not straddle a sign change. *)

val find_upper_bracket :
  ?growth:float -> ?max_iter:int -> f:(float -> bool) -> lo:float -> unit -> float
(** [find_upper_bracket ~f ~lo ()] doubles outward from [lo] until
    [f x] becomes true, returning the first such [x].  Used to find a
    rate beyond saturation.  Raises [Not_found] after [max_iter]
    doublings (default 200). *)

val boundary :
  ?tol:float -> pred:(float -> bool) -> lo:float -> hi:float -> unit -> float
(** [boundary ~pred ~lo ~hi ()] assumes [pred] is monotone (false
    then true) on [[lo, hi]] with [pred lo = false] and
    [pred hi = true], and bisects to the switching point. *)

(** {1 Warm-started boundary search}

    Successive saturation searches over adjacent operating points
    have switching points microns apart; re-bracketing each from
    scratch wastes dozens of predicate evaluations.  A
    {!bracket_state} threaded through {!boundary_warm} carries the
    previous solve's final bracket: when it still straddles the new
    switching point the solve converges in a couple of iterations,
    otherwise a geometric window expansion around the old root
    re-brackets far faster than doubling out from zero.

    Telemetry (ambient registry): every warm solve bumps
    [solver_warm_starts]; reusing the previous bracket verbatim bumps
    [solver_bracket_reuses]; window expansions count as
    [solver_bracket_retries]; bisection work lands in the same
    [solver_boundary_iterations] counter the cold path uses, so cold
    and warm costs are directly comparable. *)

type bracket_state
(** The previous solve's final bracket (initially invalid). *)

val bracket_state : unit -> bracket_state
(** A fresh state; the first {!boundary_warm} against it runs the
    cold search. *)

val bracket_reset : bracket_state -> unit
(** Forget the remembered bracket (e.g. when switching to an
    unrelated predicate); the next solve runs cold. *)

val boundary_warm :
  ?tol:float ->
  ?bracket_lo:float ->
  state:bracket_state ->
  pred:(float -> bool) ->
  lo:float ->
  unit ->
  float
(** [boundary_warm ~state ~pred ~lo ()] locates the switching point
    of a monotone [pred] on [[lo, ∞)].  With an invalid [state] it is
    bit-identical to [find_upper_bracket ~f:pred ~lo:bracket_lo ()]
    (default [1e-9]) followed by [boundary ~tol ~pred ~lo ~hi ()] —
    including the degenerate case where [pred] is already true at
    [bracket_lo], which returns the bracket floor unchanged.  With a
    valid [state] it warm-starts from the previous bracket.  The
    state is updated after every solve.  Raises [Invalid_argument]
    when [pred lo] is true, [Not_found] when no bracket is found. *)
