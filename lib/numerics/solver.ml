module Metrics = Fatnet_obs.Metrics
module Trace = Fatnet_obs.Trace

(* Telemetry goes to the domain's ambient registry (disabled by
   default, so the instruments below are the static null sinks and
   every record is a dead store).  The solver sits too deep in the
   model to thread a registry argument through every caller.  Spans
   follow the same ambient discipline: one span per search against
   the ambient trace, carrying iteration counts and warm/cold mode. *)

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let reg = Metrics.ambient () in
  let tr = Trace.ambient () in
  Trace.in_span tr "solver.bisect" @@ fun sp ->
  Metrics.incr (Metrics.counter reg "solver_bisect_calls");
  let iterations = Metrics.counter reg "solver_bisect_iterations" in
  let residual =
    Metrics.gauge reg "solver_bisect_residual"
      ~help:"Worst final bracket width over all bisections"
  in
  let flo = f lo and fhi = f hi in
  if flo = 0. then begin
    Metrics.set_max residual 0.;
    Trace.attr_int sp "iterations" 0;
    lo
  end
  else if fhi = 0. then begin
    Metrics.set_max residual 0.;
    Trace.attr_int sp "iterations" 0;
    hi
  end
  else if flo *. fhi > 0. then invalid_arg "Solver.bisect: no sign change on bracket"
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iter = ref 0 in
    while !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) && !iter < max_iter do
      incr iter;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0. then begin
        lo := mid;
        hi := mid
      end
      else if fmid *. !flo < 0. then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    Metrics.add iterations !iter;
    Metrics.set_max residual (!hi -. !lo);
    Trace.attr_int sp "iterations" !iter;
    0.5 *. (!lo +. !hi)
  end

let find_upper_bracket ?(growth = 2.) ?(max_iter = 200) ~f ~lo () =
  let reg = Metrics.ambient () in
  let tr = Trace.ambient () in
  Trace.in_span tr "solver.bracket" @@ fun sp ->
  Metrics.incr (Metrics.counter reg "solver_bracket_calls");
  let retries =
    Metrics.counter reg "solver_bracket_retries"
      ~help:"Outward doublings needed before a bracket was found"
  in
  let rec search x i =
    if i >= max_iter then raise Not_found
    else if f x then begin
      Metrics.add retries i;
      Trace.attr_int sp "probes" i;
      x
    end
    else search (x *. growth) (i + 1)
  in
  search (if lo > 0. then lo else 1e-12) 0

(* The shared bisection kernel behind [boundary] and [boundary_warm]:
   assumes [pred lo = false] and [pred hi = true], returns the
   midpoint plus the final bracket (so warm callers can stash it) and
   the iteration count (so callers can stamp it on their span).
   Iterations are recorded into [solver_boundary_iterations], the
   counter both the cold and warm paths share — that is what the
   model bench compares. *)
let boundary_loop ~tol ~pred ~lo ~hi =
  let reg = Metrics.ambient () in
  let iterations = Metrics.counter reg "solver_boundary_iterations" in
  let lo = ref lo and hi = ref hi in
  let iter = ref 0 in
  while !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) do
    incr iter;
    let mid = 0.5 *. (!lo +. !hi) in
    if pred mid then hi := mid else lo := mid
  done;
  Metrics.add iterations !iter;
  (0.5 *. (!lo +. !hi), !lo, !hi, !iter)

let boundary ?(tol = 1e-12) ~pred ~lo ~hi () =
  let reg = Metrics.ambient () in
  let tr = Trace.ambient () in
  Trace.in_span tr "solver.boundary" @@ fun sp ->
  Trace.attr sp "mode" "cold";
  Metrics.incr (Metrics.counter reg "solver_boundary_calls");
  if pred lo then invalid_arg "Solver.boundary: pred already true at lo";
  if not (pred hi) then invalid_arg "Solver.boundary: pred false at hi";
  let mid, _, _, iters = boundary_loop ~tol ~pred ~lo ~hi in
  Trace.attr_int sp "iterations" iters;
  mid

(* ---- warm-started boundary search ----

   A [bracket_state] remembers the final bracket of the previous
   solve.  Successive solves whose switching points are close (a
   sweep's adjacent λ points, a saturation search over a slightly
   perturbed system) then start from a near-tight bracket instead of
   re-doubling from scratch: the cold path costs ~20 outward probes
   plus ~30 bisections, the warm path a couple of probes plus however
   far the root moved. *)

type bracket_state = { mutable blo : float; mutable bhi : float; mutable valid : bool }

let bracket_state () = { blo = 0.; bhi = 0.; valid = false }

let bracket_reset state = state.valid <- false

let boundary_warm ?(tol = 1e-12) ?(bracket_lo = 1e-9) ~state ~pred ~lo () =
  let reg = Metrics.ambient () in
  let tr = Trace.ambient () in
  Trace.in_span tr "solver.boundary" @@ fun sp ->
  Trace.attr sp "mode" (if state.valid then "warm" else "cold");
  Metrics.incr (Metrics.counter reg "solver_boundary_calls");
  let finish (mid, flo, fhi, iters) =
    Trace.attr_int sp "iterations" iters;
    state.blo <- flo;
    state.bhi <- fhi;
    state.valid <- true;
    mid
  in
  if not state.valid then begin
    (* Cold: replicate the canonical search sequence exactly —
       outward doubling from [bracket_lo], then bisection on
       [[lo, hi]] — so the first solve against a fresh state is
       bit-identical to [find_upper_bracket] + [boundary]. *)
    let hi = find_upper_bracket ~f:pred ~lo:bracket_lo () in
    if hi <= bracket_lo then begin
      Trace.attr_int sp "iterations" 0;
      state.blo <- lo;
      state.bhi <- hi;
      state.valid <- true;
      hi
    end
    else begin
      if pred lo then invalid_arg "Solver.boundary_warm: pred already true at lo";
      finish (boundary_loop ~tol ~pred ~lo ~hi)
    end
  end
  else begin
    Metrics.incr (Metrics.counter reg "solver_warm_starts");
    let plo = Float.max lo state.blo and phi = state.bhi in
    let retries = Metrics.counter reg "solver_bracket_retries" in
    (* Seed step for the directional march below: the previous
       bracket's width, floored at 0.1% of the magnitude — the
       previous bracket is tol-tight, so a drifted root is nearly
       always outside it but rarely further than a fraction of a
       percent, and a relative floor catches it in one probe. *)
    let pad0 from =
      let w = phi -. plo in
      let w = Float.max w (1e-3 *. Float.abs from) in
      let w = Float.max w (tol *. Float.max 1. (Float.abs from)) in
      if w > 0. then w else 1e-12
    in
    if pred plo then begin
      (* The switching point moved below the previous bracket: march
         down from [plo] with doubling steps; each probe either
         brackets the root or tightens the true side. *)
      if plo <= lo then invalid_arg "Solver.boundary_warm: pred already true at lo";
      let rec down hi_true pad i =
        if i >= 200 then raise Not_found
        else begin
          Metrics.incr retries;
          let clo = Float.max lo (hi_true -. pad) in
          if not (pred clo) then finish (boundary_loop ~tol ~pred ~lo:clo ~hi:hi_true)
          else if clo <= lo then
            invalid_arg "Solver.boundary_warm: pred already true at lo"
          else down clo (2. *. pad) (i + 1)
        end
      in
      down plo (pad0 plo) 0
    end
    else if phi > plo && pred phi then begin
      (* The previous bracket still straddles the switching point —
         the root barely moved (or not at all), so the bisection
         converges in a handful of steps. *)
      Metrics.incr (Metrics.counter reg "solver_bracket_reuses");
      Trace.attr sp "bracket_reuse" "true";
      finish (boundary_loop ~tol ~pred ~lo:plo ~hi:phi)
    end
    else begin
      (* The switching point moved above the previous bracket
         ([pred] is false at both ends): march up with doubling
         steps, keeping the highest known-false point as the lower
         bracket end. *)
      let rec up lo_false pad i =
        if i >= 200 then raise Not_found
        else begin
          Metrics.incr retries;
          let chi = lo_false +. pad in
          if pred chi then finish (boundary_loop ~tol ~pred ~lo:lo_false ~hi:chi)
          else up chi (2. *. pad) (i + 1)
        end
      in
      let lo_false = Float.max plo phi in
      up lo_false (pad0 lo_false) 0
    end
  end
