module Metrics = Fatnet_obs.Metrics

(* Telemetry goes to the domain's ambient registry (disabled by
   default, so the instruments below are the static null sinks and
   every record is a dead store).  The solver sits too deep in the
   model to thread a registry argument through every caller. *)

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let reg = Metrics.ambient () in
  Metrics.incr (Metrics.counter reg "solver_bisect_calls");
  let iterations = Metrics.counter reg "solver_bisect_iterations" in
  let residual =
    Metrics.gauge reg "solver_bisect_residual"
      ~help:"Worst final bracket width over all bisections"
  in
  let flo = f lo and fhi = f hi in
  if flo = 0. then (Metrics.set_max residual 0.; lo)
  else if fhi = 0. then (Metrics.set_max residual 0.; hi)
  else if flo *. fhi > 0. then invalid_arg "Solver.bisect: no sign change on bracket"
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iter = ref 0 in
    while !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) && !iter < max_iter do
      incr iter;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0. then begin
        lo := mid;
        hi := mid
      end
      else if fmid *. !flo < 0. then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    Metrics.add iterations !iter;
    Metrics.set_max residual (!hi -. !lo);
    0.5 *. (!lo +. !hi)
  end

let find_upper_bracket ?(growth = 2.) ?(max_iter = 200) ~f ~lo () =
  let reg = Metrics.ambient () in
  Metrics.incr (Metrics.counter reg "solver_bracket_calls");
  let retries =
    Metrics.counter reg "solver_bracket_retries"
      ~help:"Outward doublings needed before a bracket was found"
  in
  let rec search x i =
    if i >= max_iter then raise Not_found
    else if f x then begin
      Metrics.add retries i;
      x
    end
    else search (x *. growth) (i + 1)
  in
  search (if lo > 0. then lo else 1e-12) 0

let boundary ?(tol = 1e-12) ~pred ~lo ~hi () =
  let reg = Metrics.ambient () in
  Metrics.incr (Metrics.counter reg "solver_boundary_calls");
  let iterations = Metrics.counter reg "solver_boundary_iterations" in
  if pred lo then invalid_arg "Solver.boundary: pred already true at lo";
  if not (pred hi) then invalid_arg "Solver.boundary: pred false at hi";
  let lo = ref lo and hi = ref hi in
  let iter = ref 0 in
  while !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) do
    incr iter;
    let mid = 0.5 *. (!lo +. !hi) in
    if pred mid then hi := mid else lo := mid
  done;
  Metrics.add iterations !iter;
  0.5 *. (!lo +. !hi)
