(** Small floating-point helpers shared by the model and simulator. *)

val approx_equal : ?rel:float -> ?abs:float -> float -> float -> bool
(** [approx_equal ~rel ~abs a b] holds when [a] and [b] agree within
    an absolute tolerance [abs] (default [1e-12]) or a relative
    tolerance [rel] (default [1e-9]) of the larger magnitude. *)

val relative_error : expected:float -> actual:float -> float
(** [|actual - expected| / |expected|]; if [expected = 0.] falls back
    to the absolute error. *)

val safe_div : float -> float -> float
(** [safe_div num den] is [num /. den], or [infinity]/[neg_infinity]
    when [den = 0.] and [num <> 0.], or [0.] when both are zero.
    Keeps saturated-queue formulas from producing NaNs. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp into [[lo, hi]].  Requires [lo <= hi]. *)

val is_finite : float -> bool
(** Neither NaN nor infinite. *)

val square : float -> float
(** [square x = x *. x]. *)

val mean_of : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val sum_array : float array -> float
(** Left-to-right sum, [Array.fold_left ( +. ) 0.] — the same
    association as the list fold it replaces, so migrated call sites
    keep their results bit-for-bit. *)

val mean_of_array : float array -> float
(** Arithmetic mean over an array; 0. on the empty array. *)
