module Snapshot = Fatnet_obs.Metrics.Snapshot

let label_suffix = function
  | [] -> ""
  | labels ->
      "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels) ^ "}"

let display_name (s : Snapshot.series) = s.Snapshot.name ^ label_suffix s.Snapshot.labels

let bar_width = 40

let render_histogram b (s : Snapshot.series) (h : Snapshot.histo) =
  let bins = Array.length h.Snapshot.counts in
  let w = (h.Snapshot.hi -. h.Snapshot.lo) /. float_of_int bins in
  let mean =
    if h.Snapshot.count = 0 then "-"
    else Printf.sprintf "%.6g" (h.Snapshot.sum /. float_of_int h.Snapshot.count)
  in
  Printf.bprintf b "%s  count=%d mean=%s sum=%.6g\n" (display_name s) h.Snapshot.count mean
    h.Snapshot.sum;
  if s.Snapshot.help <> "" then Printf.bprintf b "  %s\n" s.Snapshot.help;
  let peak =
    Array.fold_left max (max h.Snapshot.underflow h.Snapshot.overflow) h.Snapshot.counts
  in
  let bar count =
    if peak = 0 then ""
    else String.make (count * bar_width / peak) '#'
  in
  if h.Snapshot.underflow > 0 then
    Printf.bprintf b "  %23s  %8d  %s\n"
      (Printf.sprintf "(-inf, %.4g)" h.Snapshot.lo)
      h.Snapshot.underflow (bar h.Snapshot.underflow);
  Array.iteri
    (fun i count ->
      let lo = h.Snapshot.lo +. (float_of_int i *. w) in
      Printf.bprintf b "  %23s  %8d  %s\n"
        (Printf.sprintf "[%.4g, %.4g)" lo (lo +. w))
        count (bar count))
    h.Snapshot.counts;
  if h.Snapshot.overflow > 0 then
    Printf.bprintf b "  %23s  %8d  %s\n"
      (Printf.sprintf "[%.4g, +inf)" h.Snapshot.hi)
      h.Snapshot.overflow (bar h.Snapshot.overflow);
  Buffer.add_char b '\n'

let render (snap : Snapshot.t) =
  let b = Buffer.create 4096 in
  if snap.Snapshot.meta <> [] then begin
    Buffer.add_string b "run metadata\n";
    List.iter (fun (k, v) -> Printf.bprintf b "  %s = %s\n" k v) snap.Snapshot.meta;
    Buffer.add_char b '\n'
  end;
  let scalars, histograms =
    List.partition
      (fun s ->
        match s.Snapshot.value with
        | Snapshot.Counter _ | Snapshot.Gauge _ -> true
        | Snapshot.Histogram _ -> false)
      snap.Snapshot.series
  in
  if scalars <> [] then begin
    let table = Table.create ~columns:[ "metric"; "value" ] in
    List.iter
      (fun s ->
        let value =
          match s.Snapshot.value with
          | Snapshot.Counter n -> string_of_int n
          | Snapshot.Gauge g -> Printf.sprintf "%.6g" g
          | Snapshot.Histogram _ -> assert false
        in
        Table.add_row table [ display_name s; value ])
      scalars;
    Buffer.add_string b (Table.to_string table);
    Buffer.add_char b '\n'
  end;
  List.iter
    (fun s ->
      match s.Snapshot.value with
      | Snapshot.Histogram h -> render_histogram b s h
      | _ -> ())
    histograms;
  Buffer.contents b

let print snap = print_string (render snap)
