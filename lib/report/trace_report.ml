module Trace = Fatnet_obs.Trace

let ms ns = Int64.to_float ns /. 1e6

let fmt_ms v = Printf.sprintf "%.3f" v

let attrs_cell attrs =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)

(* Self time = duration minus direct children's summed duration:
   where a span's time actually went, as opposed to what it was
   waiting on. *)
let self_times spans =
  let child_dur = Hashtbl.create 64 in
  List.iter
    (fun (r : Trace.span_record) ->
      if r.parent <> 0 then
        let prev =
          match Hashtbl.find_opt child_dur r.parent with Some d -> d | None -> 0L
        in
        Hashtbl.replace child_dur r.parent (Int64.add prev r.dur_ns))
    spans;
  fun (r : Trace.span_record) ->
    let children =
      match Hashtbl.find_opt child_dur r.id with Some d -> d | None -> 0L
    in
    (* Children can overlap their parent's clock reads by a few ns of
       instrumentation skew; clamp so self time never goes negative. *)
    Int64.max 0L (Int64.sub r.dur_ns children)

let render ?(top = 10) spans =
  match spans with
  | [] -> "trace is empty: no spans recorded\n"
  | spans ->
      let self = self_times spans in
      let b = Buffer.create 1024 in
      let slowest =
        List.sort
          (fun (a : Trace.span_record) (b : Trace.span_record) ->
            match Int64.compare b.dur_ns a.dur_ns with
            | 0 -> compare a.id b.id
            | c -> c)
          spans
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      Buffer.add_string b
        (Printf.sprintf "Slowest spans (top %d of %d):\n"
           (min top (List.length spans))
           (List.length spans));
      let t = Table.create ~columns:[ "span"; "track"; "start ms"; "dur ms"; "self ms"; "attributes" ] in
      List.iter
        (fun (r : Trace.span_record) ->
          Table.add_row t
            [
              r.name;
              string_of_int r.track;
              fmt_ms (ms r.start_ns);
              fmt_ms (ms r.dur_ns);
              fmt_ms (ms (self r));
              attrs_cell r.attrs;
            ])
        (take top slowest);
      Buffer.add_string b (Table.to_string t);
      Buffer.add_char b '\n';
      (* By-name aggregate, ordered by total time. *)
      let agg = Hashtbl.create 16 in
      List.iter
        (fun (r : Trace.span_record) ->
          let count, total, self_total, mx =
            match Hashtbl.find_opt agg r.name with
            | Some x -> x
            | None -> (0, 0L, 0L, 0L)
          in
          Hashtbl.replace agg r.name
            ( count + 1,
              Int64.add total r.dur_ns,
              Int64.add self_total (self r),
              Int64.max mx r.dur_ns ))
        spans;
      let rows = Hashtbl.fold (fun name x acc -> (name, x) :: acc) agg [] in
      let rows =
        List.sort
          (fun (_, (_, ta, _, _)) (_, (_, tb, _, _)) -> Int64.compare tb ta)
          rows
      in
      Buffer.add_string b "By span name:\n";
      let t = Table.create ~columns:[ "span"; "count"; "total ms"; "self ms"; "max ms" ] in
      List.iter
        (fun (name, (count, total, self_total, mx)) ->
          Table.add_row t
            [
              name;
              string_of_int count;
              fmt_ms (ms total);
              fmt_ms (ms self_total);
              fmt_ms (ms mx);
            ])
        rows;
      Buffer.add_string b (Table.to_string t);
      Buffer.contents b
