(** Human view of a telemetry snapshot: counters and gauges as an
    aligned table, histograms as labelled ASCII bar blocks (one row
    per bucket, bars scaled to the fullest bucket, under/overflow
    rows shown only when hit).  This is what [experiments report]
    prints; the machine-readable forms are
    {!Fatnet_obs.Metrics.Snapshot.to_json} and
    {!Fatnet_obs.Metrics.Snapshot.to_prometheus}. *)

val render : Fatnet_obs.Metrics.Snapshot.t -> string

val print : Fatnet_obs.Metrics.Snapshot.t -> unit
(** [render] to stdout. *)
