(** Live sweep progress on stderr, fed by the span stream.

    A reporter subscribes to an enabled {!Fatnet_obs.Trace} and
    repaints a single status line as [point] spans finish:

    {v   sweep 12/40  exec 10 memo 1 cache 1  quar 0  hit 17%  occ 87%  eta 42s v}

    — points done over total, outcome counts (executed /
    memo-served / cache-served), quarantined count, memo+cache hit
    rate, mean per-domain occupancy since the sweep started, and an
    ETA from the mean executed-point duration spread over the active
    tracks.  Repaints are throttled to ~10 Hz.

    The reporter registers itself with {!Fatnet_obs.Log} as the
    active status line, so any log line (a cache-degradation warning,
    a fault notice) clears the line, prints, and redraws — no
    interleaving.  Callers decide whether a line is wanted at all
    (stderr is a TTY, [--quiet] absent: {!Fatnet_cli.Cli.progress_wanted});
    this module just renders. *)

type t

val create : ?out:out_channel -> total:int -> Fatnet_obs.Trace.t -> t
(** Subscribe a reporter for a sweep of [total] points to the trace
    ([out] defaults to stderr).  On a disabled trace this is inert:
    nothing subscribes, nothing paints. *)

val finish : t -> unit
(** Erase the status line and deregister from {!Fatnet_obs.Log}.
    Call once the sweep returns (the subscription stays attached to
    the trace but goes dormant). *)
