type t = { columns : string list; mutable rows : string list list (* reversed *) }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: needs at least one column";
  { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- row :: t.rows

(* Two distinct non-finite renderings: infinity is the model past
   saturation ("sat."), NaN is a value that does not exist (an empty
   summary, a quantile with no state) and renders as "--".  Raw "nan"
   or "inf" text never reaches a table cell. *)
let format_float x =
  if Float.is_finite x then Printf.sprintf "%.6g" x
  else if Float.is_nan x then "--"
  else "sat."

let add_float_row t row = add_row t (List.map format_float row)

let to_string t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map (fun _ -> 0) t.columns)
      all
  in
  let render_row row =
    String.concat "  " (List.map2 (fun w cell -> Printf.sprintf "%*s" w cell) widths row)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((render_row t.columns :: rule :: List.map render_row rows) @ [ "" ])

let print t = print_string (to_string t)
