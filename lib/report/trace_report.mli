(** Human timeline view of a span trace: the [experiments timeline]
    renderer.

    Two tables from one span list (typically
    {!Fatnet_obs.Trace.spans_of_chrome_json} on a [--trace] file):

    {ul
    {- the top-N slowest spans, with start, duration, {e self} time
       (duration minus the summed duration of direct children — where
       the time actually went) and attributes;}
    {- an aggregate by span name: count, total, total self, max.}}

    Durations print in milliseconds. *)

val render : ?top:int -> Fatnet_obs.Trace.span_record list -> string
(** The full report ([top] slowest spans, default 10, then the
    by-name aggregate).  Empty input renders a friendly one-liner. *)
