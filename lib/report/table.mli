(** Aligned plain-text tables for experiment output. *)

type t

val create : columns:string list -> t
(** Column headers; at least one. *)

val add_row : t -> string list -> unit
(** Must match the column count. *)

val add_float_row : t -> float list -> unit
(** Formats each value with [%.6g].  Non-finite values never print
    raw: infinities render as [sat.] (the model past saturation) and
    NaN as [--] (no such value — e.g. a quantile whose summary
    carries no quantile state). *)

val to_string : t -> string
(** Render with column alignment and a header rule. *)

val print : t -> unit
(** [to_string] to stdout. *)
