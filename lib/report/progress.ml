module Trace = Fatnet_obs.Trace
module Log = Fatnet_obs.Log

(* Lock ordering: Log's print lock strictly outside the reporter's
   state lock.  Observers update state under the state lock alone,
   then repaint under Log's lock (which re-takes the state lock to
   read); Log's clear/redraw hooks run under Log's lock and take only
   the state lock.  No path takes them in the other order. *)
type t = {
  total : int;
  out : out_channel;
  lock : Mutex.t;
  start_ns : int64;
  mutable executed : int;
  mutable memo_hits : int;
  mutable cache_hits : int;
  mutable quarantined : int;
  mutable exec_dur_ns : int64;  (* summed executed-point durations *)
  busy : (int, int64) Hashtbl.t;  (* per-track busy ns *)
  mutable last_paint_ns : int64;
  mutable visible : bool;
  mutable finished : bool;
}

let eta_string seconds =
  if Float.is_nan seconds || seconds < 0. then "--"
  else if seconds < 100. then Printf.sprintf "%.0fs" seconds
  else if seconds < 6000. then Printf.sprintf "%.0fm" (seconds /. 60.)
  else Printf.sprintf "%.1fh" (seconds /. 3600.)

(* Render under [t.lock]; write outside no lock but inside Log's
   print lock (callers guarantee it). *)
let line t =
  Mutex.lock t.lock;
  let done_ = t.executed + t.memo_hits + t.cache_hits + t.quarantined in
  let hits = t.memo_hits + t.cache_hits in
  let hit_rate = if done_ > 0 then 100. *. float_of_int hits /. float_of_int done_ else 0. in
  let tracks = max 1 (Hashtbl.length t.busy) in
  let elapsed_ns = Int64.sub (Trace.now_ns ()) t.start_ns in
  let occ =
    if elapsed_ns <= 0L then 0.
    else begin
      let busy = Hashtbl.fold (fun _ b acc -> Int64.add acc b) t.busy 0L in
      100. *. Int64.to_float busy
      /. (Int64.to_float elapsed_ns *. float_of_int tracks)
    end
  in
  let eta =
    if t.executed = 0 then nan
    else
      let per_point =
        Int64.to_float t.exec_dur_ns /. 1e9 /. float_of_int t.executed
      in
      float_of_int (t.total - done_) *. per_point /. float_of_int tracks
  in
  let s =
    Printf.sprintf
      "\r\x1b[2K  sweep %d/%d  exec %d memo %d cache %d  quar %d  hit %.0f%%  occ %.0f%%  eta %s"
      done_ t.total t.executed t.memo_hits t.cache_hits t.quarantined hit_rate
      (Float.min 100. occ) (eta_string eta)
  in
  Mutex.unlock t.lock;
  s

let paint t =
  if not t.finished then begin
    let s = line t in
    Mutex.lock t.lock;
    t.visible <- true;
    Mutex.unlock t.lock;
    output_string t.out s;
    flush t.out
  end

let clear_line t =
  Mutex.lock t.lock;
  let was = t.visible in
  t.visible <- false;
  Mutex.unlock t.lock;
  if was then begin
    output_string t.out "\r\x1b[2K";
    flush t.out
  end

let on_span t (r : Trace.span_record) =
  if r.name = "point" then begin
    Mutex.lock t.lock;
    (match List.assoc_opt "outcome" r.attrs with
    | Some "executed" ->
        t.executed <- t.executed + 1;
        t.exec_dur_ns <- Int64.add t.exec_dur_ns r.dur_ns;
        let prev =
          match Hashtbl.find_opt t.busy r.track with Some b -> b | None -> 0L
        in
        Hashtbl.replace t.busy r.track (Int64.add prev r.dur_ns)
    | Some "memo" -> t.memo_hits <- t.memo_hits + 1
    | Some "cache" -> t.cache_hits <- t.cache_hits + 1
    | Some "quarantined" -> t.quarantined <- t.quarantined + 1
    | _ -> ());
    let done_ = t.executed + t.memo_hits + t.cache_hits + t.quarantined in
    let now = Trace.now_ns () in
    let due =
      done_ >= t.total || Int64.sub now t.last_paint_ns >= 100_000_000L
    in
    if due then t.last_paint_ns <- now;
    Mutex.unlock t.lock;
    if due then Log.with_print_lock (fun () -> paint t)
  end

let create ?(out = stderr) ~total tracer =
  let t =
    {
      total;
      out;
      lock = Mutex.create ();
      start_ns = Trace.now_ns ();
      executed = 0;
      memo_hits = 0;
      cache_hits = 0;
      quarantined = 0;
      exec_dur_ns = 0L;
      busy = Hashtbl.create 8;
      last_paint_ns = 0L;
      visible = false;
      finished = false;
    }
  in
  if Trace.is_enabled tracer then begin
    Trace.subscribe tracer (on_span t);
    Log.set_status_hooks ~clear:(fun () -> clear_line t) ~redraw:(fun () -> paint t)
  end;
  t

let finish t =
  Log.clear_status_hooks ();
  Log.with_print_lock (fun () -> clear_line t);
  Mutex.lock t.lock;
  t.finished <- true;
  Mutex.unlock t.lock
