(* Run one discrete-event simulation from the command line.

   `cluster_sim --scenario examples/fig3.scn --lambda 1e-4`
   `cluster_sim --org 544 --m-flits 32 --lambda 1e-4 --full`
   `cluster_sim --clusters 4 --depth 2 --arity 4 --lambda 2e-3 --hotspot 0 --hotspot-fraction 0.2` *)

module Params = Fatnet_model.Params
module Scenario = Fatnet_scenario.Scenario
module Cli = Fatnet_cli.Cli
module Metrics = Fatnet_obs.Metrics
module Trace = Fatnet_obs.Trace
module Runner = Fatnet_sim.Runner

let run scenario system message lambda full seed store_and_forward hotspot hotspot_fraction
    p_local trace_path mopts topts =
  Cli.guard @@ fun () ->
  let ( let* ) = Result.bind in
  let default_load = Scenario.Fixed (Option.value lambda ~default:1e-4) in
  let* base =
    Cli.resolve ~default_load ~default_protocol:Scenario.quick_protocol ~scenario ~system
      ~message ()
  in
  let protocol = base.Scenario.protocol in
  let protocol =
    if full then { protocol with Scenario.warmup = 10_000; measured = 100_000; drain = 10_000 }
    else protocol
  in
  let protocol =
    match seed with Some s -> { protocol with Scenario.seed = s } | None -> protocol
  in
  let protocol =
    if store_and_forward then { protocol with Scenario.cd_mode = Scenario.Store_and_forward }
    else protocol
  in
  let pattern =
    match (hotspot, p_local) with
    | Some node, _ -> Fatnet_workload.Destination.Hotspot { node; fraction = hotspot_fraction }
    | None, Some p -> Fatnet_workload.Destination.Local { p_local = p }
    | None, None -> base.Scenario.pattern
  in
  let scn = { base with Scenario.protocol; pattern } in
  let scn = match lambda with Some l -> Scenario.at scn l | None -> scn in
  let* () = Scenario.validate scn in
  let lambda_g = Scenario.require_lambda scn in
  let trace_channel = Option.map open_out trace_path in
  let trace =
    Option.map
      (fun oc ->
        output_string oc "serial,src,dst,generated_at,delivered_at,latency,class,measured\n";
        fun (t : Runner.trace_record) ->
          Printf.fprintf oc "%d,%d,%d,%.9g,%.9g,%.9g,%s,%b\n" t.Runner.serial t.Runner.src
            t.Runner.dst t.Runner.generated_at t.Runner.delivered_at
            (t.Runner.delivered_at -. t.Runner.generated_at)
            (if t.Runner.is_intra then "intra" else "inter")
            t.Runner.measured)
      trace_channel
  in
  let metrics = Cli.metrics_registry mopts in
  Metrics.set_meta metrics "command" "cluster_sim";
  Option.iter (Metrics.set_meta metrics "scenario") scenario;
  Metrics.set_meta metrics "lambda_g" (Printf.sprintf "%g" lambda_g);
  let tracer = Cli.tracer_of_opts topts in
  let r =
    Trace.with_ambient tracer (fun () -> Runner.run_scenario ?trace ~metrics scn)
  in
  Option.iter close_out trace_channel;
  Option.iter (Printf.printf "message trace written to %s\n") trace_path;
  Format.printf "system: @[%a@]@." Params.pp_system scn.Scenario.system;
  Printf.printf "λ_g=%g  generated=%d  measured-delivered=%d\n" lambda_g r.Runner.generated
    r.Runner.delivered;
  (* A too-short run has no CI (NaN): print "--", never raw nan. *)
  let ci =
    if Float.is_nan r.Runner.ci95_half_width then "--"
    else Printf.sprintf "%.3g" r.Runner.ci95_half_width
  in
  Format.printf "latency (all):   %a  ±%s (95%% CI)@." Fatnet_stats.Summary.pp
    r.Runner.latency ci;
  Format.printf "latency (intra): %a@." Fatnet_stats.Summary.pp r.Runner.intra_latency;
  Format.printf "latency (inter): %a@." Fatnet_stats.Summary.pp r.Runner.inter_latency;
  print_endline "busiest channels:";
  List.iter
    (fun (desc, util) -> Printf.printf "  %5.1f%%  %s\n" (100. *. util) desc)
    r.Runner.bottlenecks;
  Printf.printf "sim end time=%g  events=%d  wall=%.2fs (%.2f Mevents/s)\n" r.Runner.end_time
    r.Runner.events r.Runner.wall_seconds
    (float_of_int r.Runner.events /. 1e6 /. r.Runner.wall_seconds);
  Cli.write_metrics mopts metrics;
  Cli.write_trace topts tracer;
  Ok 0

open Cmdliner

let lambda =
  Arg.(
    value
    & opt (some float) None
    & info [ "lambda" ] ~doc:"Traffic generation rate (default 1e-4).")

let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper's full 10k/100k/10k protocol.")

let seed = Arg.(value & opt (some int64) None & info [ "seed" ] ~doc:"Random seed.")

let store_and_forward =
  Arg.(value & flag & info [ "store-and-forward" ] ~doc:"Store-and-forward C/Ds (ablation).")

let hotspot =
  Arg.(value & opt (some int) None & info [ "hotspot" ] ~doc:"Hot destination node id.")

let hotspot_fraction =
  Arg.(value & opt float 0.1 & info [ "hotspot-fraction" ] ~doc:"Hotspot traffic fraction.")

let p_local =
  Arg.(
    value
    & opt (some float) None
    & info [ "p-local" ] ~doc:"Probability a message stays in its cluster (locality pattern).")

(* [--trace] is the span trace (shared with the other binaries, in
   Cli.trace_opts); the per-delivery CSV is [--message-trace]. *)
let trace_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "message-trace" ] ~doc:"Write a per-message CSV trace to this file.")

let () =
  let term =
    Term.(
      const run $ Cli.scenario_file $ Cli.system_opts $ Cli.message_opts $ lambda $ full $ seed
      $ store_and_forward $ hotspot $ hotspot_fraction $ p_local $ trace_path
      $ Cli.metrics_opts $ Cli.trace_opts)
  in
  exit (Cmd.eval' (Cmd.v (Cmd.info "cluster_sim" ~doc:"Discrete-event wormhole simulation") term))
