(* Repo-level utility commands.

   `fatnet serve` runs the latency oracle as a long-lived daemon: one
   scenario, a Unix or TCP socket, newline-delimited JSON queries
   (see lib/serve/protocol.mli), the model evaluation pool behind it.
   `fatnet query` is the matching client — and, with --offline, a
   local evaluator whose output is bit-for-bit the daemon's, which is
   what the CI smoke diffs.

   `fatnet bench report` reads the checked-in BENCH_*.json baselines
   (and, with --dir, a directory of freshly generated ones), renders a
   regression table per bench family, and exits non-zero when any
   family's own pass flag is false, an overhead guard exceeds its
   tolerance, or (with --guard-tol) a headline metric moved against
   its direction by more than the given fraction.  CI runs the obs
   bench into results/ and then `fatnet bench report --dir results`
   instead of hand-rolled jq checks. *)

module Json = Fatnet_obs.Json
module Table = Fatnet_report.Table

(* ------------------------------------------------------------------ *)
(* Dotted-path lookup into a parsed document: "totals.speedup",
   "organizations[0].workspace.evals_per_sec".                         *)

let lookup json path =
  let seg j seg =
    match String.index_opt seg '[' with
    | None -> Json.member seg j
    | Some b when String.length seg > b + 1 && seg.[String.length seg - 1] = ']' ->
        let name = String.sub seg 0 b in
        let idx = String.sub seg (b + 1) (String.length seg - b - 2) in
        let base = if name = "" then Some j else Json.member name j in
        Option.bind base (fun v ->
            match (v, int_of_string_opt idx) with
            | Json.Arr l, Some i -> List.nth_opt l i
            | _ -> None)
    | Some _ -> None
  in
  List.fold_left
    (fun acc s -> Option.bind acc (fun j -> seg j s))
    (Some json)
    (String.split_on_char '.' path)

let number json path =
  match lookup json path with Some (Json.Num f) -> Some f | _ -> None

let boolean json path =
  match lookup json path with Some (Json.Bool b) -> Some b | _ -> None

(* ------------------------------------------------------------------ *)
(* What each bench family reports.  [Higher]/[Lower] metrics are
   guarded by --guard-tol (a drop / rise beyond the fraction fails);
   [Info] rows never fail on their own.  [tolerance] pairs a metric
   with the path of its in-file ceiling (value must stay <= ceiling). *)

type direction = Higher | Lower | Info

type metric = {
  label : string;
  path : string;
  direction : direction;
  tolerance : string option;  (* path of the ceiling, e.g. "tolerance" *)
}

type family = {
  file : string;
  pass_flag : string option;  (* path of the family's own boolean verdict *)
  rows : metric list;
}

let m ?tolerance label path direction = { label; path; direction; tolerance }

let families =
  [
    {
      file = "BENCH_model.json";
      pass_flag = Some "pass";
      rows =
        [
          m "org_544 workspace evals/s" "organizations[0].workspace.evals_per_sec" Higher;
          m "org_1120 workspace evals/s" "organizations[1].workspace.evals_per_sec" Higher;
          m "org_544 warm-saturation speedup" "organizations[0].saturation_speedup" Higher;
          m "org_1120 warm-saturation speedup" "organizations[1].saturation_speedup" Higher;
        ];
    };
    {
      file = "BENCH_sim.json";
      pass_flag = None;
      rows =
        [
          m "per-flit events/s" "totals.per_flit_events_per_sec" Higher;
          m "streaming events/s" "totals.streaming_events_per_sec" Higher;
          m "streaming speedup" "totals.speedup" Higher;
        ];
    };
    {
      file = "BENCH_parallel.json";
      pass_flag = Some "pass";
      rows =
        [
          m "org_544 served evals/s" "organizations[0].best_served_evals_per_sec" Higher;
          m "org_1120 served evals/s" "organizations[1].best_served_evals_per_sec" Higher;
        ];
    };
    {
      file = "BENCH_sweep.json";
      pass_flag = Some "warm_equals_cold_bitwise";
      rows =
        [
          m "cold speedup vs baseline" "cold_speedup_vs_baseline" Higher;
          m "warm speedup vs cold" "warm_speedup_vs_cold" Higher;
        ];
    };
    {
      file = "BENCH_tail.json";
      pass_flag = Some "pass";
      rows =
        [
          m "worst overhead fraction" "worst_overhead_fraction" Lower
            ~tolerance:"tolerance";
          m "p99 quantile evals/s" "model_tail.p99_quantile_evals_per_sec" Higher;
        ];
    };
    {
      file = "BENCH_serve.json";
      pass_flag = Some "pass";
      rows =
        [
          m "best sustained queries/s" "best.queries_per_sec" Higher;
          m "best p99 service seconds" "best.p99_seconds" Lower
            ~tolerance:"p99_budget_seconds";
        ];
    };
    {
      file = "BENCH_obs.json";
      pass_flag = Some "pass";
      rows =
        [
          m "enabled overhead" "enabled_overhead" Lower
            ~tolerance:"enabled_overhead_tolerance";
          m "trace overhead" "trace_overhead" Lower
            ~tolerance:"enabled_overhead_tolerance";
          m "disabled events/s" "disabled.events_per_sec" Higher;
          m "disabled vs baseline" "disabled_vs_baseline" Info;
        ];
    };
  ]

(* ------------------------------------------------------------------ *)

let read_doc dir file =
  let path = Filename.concat dir file in
  if not (Sys.file_exists path) then Ok None
  else
    let contents = In_channel.with_open_bin path In_channel.input_all in
    match Json.parse_result contents with
    | Ok j -> Ok (Some j)
    | Error e -> Error (Printf.sprintf "%s: %s" path e)

let fmt_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

let report dir baseline_dir obs_tol guard_tol =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let table =
    Table.create ~columns:[ "bench"; "metric"; "baseline"; "new"; "delta"; "status" ]
  in
  let errors = ref [] in
  let any_seen = ref false in
  List.iter
    (fun fam ->
      let doc_of = function
        | Ok d -> d
        | Error e ->
            errors := e :: !errors;
            None
      in
      let base = doc_of (read_doc baseline_dir fam.file) in
      let fresh =
        match dir with Some d -> doc_of (read_doc d fam.file) | None -> None
      in
      (* Guards run against the freshest document available. *)
      let eff = match fresh with Some _ -> fresh | None -> base in
      match eff with
      | None -> ()
      | Some eff_doc ->
          any_seen := true;
          let short = Filename.remove_extension fam.file in
          (match fam.pass_flag with
          | Some path when boolean eff_doc path = Some false ->
              fail "%s: %s is false" fam.file path;
              Table.add_row table [ short; path; "--"; "--"; "--"; "FAIL" ]
          | _ -> ());
          List.iter
            (fun mt ->
              let bval = Option.bind base (fun d -> number d mt.path) in
              let fval = Option.bind fresh (fun d -> number d mt.path) in
              let eval = number eff_doc mt.path in
              match eval with
              | None -> ()  (* e.g. trace_overhead before it existed *)
              | Some v ->
                  let delta =
                    match (bval, fval) with
                    | Some b, Some f when b <> 0. ->
                        Some (100. *. (f -. b) /. Float.abs b)
                    | _ -> None
                  in
                  let ceiling =
                    match mt.tolerance with
                    | None -> None
                    | Some _ when fam.file = "BENCH_obs.json" && obs_tol <> None ->
                        obs_tol
                    | Some p -> number eff_doc p
                  in
                  let status = ref "ok" in
                  (match ceiling with
                  | Some tol when v > tol ->
                      status := "FAIL";
                      fail "%s: %s = %g exceeds tolerance %g" fam.file mt.label v tol
                  | _ -> ());
                  (match (guard_tol, delta, mt.direction) with
                  | Some g, Some d, Higher when d < -100. *. g ->
                      status := "FAIL";
                      fail "%s: %s dropped %.1f%% (guard %.1f%%)" fam.file mt.label
                        (-.d) (100. *. g)
                  | Some g, Some d, Lower when d > 100. *. g ->
                      status := "FAIL";
                      fail "%s: %s rose %.1f%% (guard %.1f%%)" fam.file mt.label d
                        (100. *. g)
                  | _ -> ());
                  Table.add_row table
                    [
                      short;
                      mt.label;
                      (match bval with Some b -> fmt_num b | None -> "--");
                      (match fval with Some f -> fmt_num f | None -> "--");
                      (match delta with
                      | Some d -> Printf.sprintf "%+.1f%%" d
                      | None -> "--");
                      !status;
                    ])
            fam.rows)
    families;
  List.iter (Printf.eprintf "error: %s\n%!") (List.rev !errors);
  if not !any_seen then begin
    Printf.eprintf "error: no BENCH_*.json found in %s%s\n%!" baseline_dir
      (match dir with Some d -> " or " ^ d | None -> "");
    1
  end
  else begin
    Table.print table;
    match (List.rev !failures, !errors) with
    | [], [] ->
        print_endline "all bench guards pass";
        0
    | fs, _ ->
        List.iter (Printf.printf "FAIL: %s\n") fs;
        1
  end

open Cmdliner

let dir =
  Arg.(
    value
    & opt (some dir) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:"Directory holding freshly generated BENCH_*.json to compare against the baselines.")

let baseline_dir =
  Arg.(
    value
    & opt dir "."
    & info [ "baseline" ] ~docv:"DIR"
        ~doc:"Directory holding the checked-in BENCH_*.json baselines (default: current directory).")

let obs_tol =
  Arg.(
    value
    & opt (some float) None
    & info [ "obs-tol" ]
        ~doc:
          "Override the instrumentation-overhead tolerance from BENCH_obs.json (a fraction, \
           e.g. 0.01).")

let guard_tol =
  Arg.(
    value
    & opt (some float) None
    & info [ "guard-tol" ]
        ~doc:
          "Also fail when a headline metric moves against its direction by more than this \
           fraction versus the baseline (off by default: throughput is machine-dependent).")

let report_cmd =
  let term = Term.(const report $ dir $ baseline_dir $ obs_tol $ guard_tol) in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render the bench-regression table and exit non-zero past tolerance.")
    term

let bench_cmd =
  Cmd.group (Cmd.info "bench" ~doc:"Benchmark baseline utilities.") [ report_cmd ]

(* ------------------------------------------------------------------ *)
(* fatnet serve / fatnet query *)

module Cli = Fatnet_cli.Cli
module Metrics = Fatnet_obs.Metrics
module Serve = Fatnet_serve.Server
module Oracle = Fatnet_serve.Oracle
module Protocol = Fatnet_serve.Protocol
module Point_cache = Fatnet_experiments.Point_cache

let default_listen = "unix:/tmp/fatnet-serve.sock"

let listen_arg =
  Arg.(
    value
    & opt string default_listen
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Listen address: $(b,unix:)$(i,PATH) or $(b,tcp:)$(i,HOST):$(i,PORT) (default \
           unix:/tmp/fatnet-serve.sock).")

let memo_capacity_arg =
  Arg.(
    value
    & opt int Oracle.default_memo_capacity
    & info [ "memo-capacity" ] ~docv:"N"
        ~doc:
          "In-memory memo bound, entries per shard (64 shards); 0 = unbounded.  Bounded by \
           default: a daemon fed distinct λ values must not grow without limit.")

let cache_dir_arg =
  Arg.(
    value
    & opt string Point_cache.default_dir
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Point cache served by the $(b,point) op (simulated results).")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the $(b,point) op's disk cache.")

let cache_recovery_arg =
  Arg.(
    value
    & opt int Oracle.default_cache_recovery
    & info [ "cache-recovery" ] ~docv:"N"
        ~doc:
          "After a cache I/O error, skip N point lookups then re-probe (a daemon outlives \
           transient disk hiccups); 0 = degrade permanently like a batch sweep.")

let max_batch_arg =
  Arg.(
    value
    & opt int Serve.default_max_batch
    & info [ "max-batch" ] ~docv:"N" ~doc:"Largest single pool dispatch (default 1024).")

let serve_run scenario system message listen domains memo_capacity cache_dir no_cache
    cache_recovery max_batch mopts topts =
  Cli.guard @@ fun () ->
  match Cli.resolve ~scenario ~system ~message () with
  | Error e -> Error e
  | Ok scn -> (
      match Serve.address_of_string listen with
      | Error e -> Error e
      | Ok address -> (
          match Cli.resolve_domains domains with
          | Error e -> Error e
          | Ok domains ->
              if memo_capacity < 0 then Error "--memo-capacity must be >= 0"
              else if cache_recovery < 0 then Error "--cache-recovery must be >= 0"
              else begin
                (* The daemon's registry is always live (the /metrics
                   scrape must have data); --metrics FILE additionally
                   writes a snapshot at shutdown. *)
                let reg = Metrics.create () in
                Metrics.set_meta reg "command" "serve";
                Metrics.set_meta reg "listen" (Serve.address_to_string address);
                let tracer = Cli.tracer_of_opts topts in
                let oracle =
                  Oracle.create ~domains ~memo_capacity
                    ?cache_dir:(if no_cache then None else Some cache_dir)
                    ~cache_recovery ~metrics:reg ~tracer scn
                in
                let stop = Atomic.make false in
                let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
                Sys.set_signal Sys.sigterm on_signal;
                Sys.set_signal Sys.sigint on_signal;
                Serve.serve { Serve.address; max_batch; stop; metrics = reg; tracer }
                  oracle;
                Oracle.shutdown oracle;
                Cli.write_metrics mopts reg;
                Cli.write_trace topts tracer;
                Ok 0
              end))

let serve_cmd =
  let term =
    Term.(
      const serve_run $ Cli.scenario_file $ Cli.system_opts $ Cli.message_opts
      $ listen_arg $ Cli.domains_arg $ memo_capacity_arg $ cache_dir_arg $ no_cache_arg
      $ cache_recovery_arg $ max_batch_arg $ Cli.metrics_opts $ Cli.trace_opts)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the latency oracle as a daemon: newline-delimited JSON queries over a Unix \
          or TCP socket, plus an HTTP GET /metrics Prometheus scrape on the same socket.")
    term

(* --- query: socket client, or offline local evaluation --- *)

let answer_lines_offline oracle lines =
  List.iter
    (fun line ->
      match Protocol.frame_of_line line with
      | Error msg -> print_string (Protocol.error_line msg)
      | Ok frame ->
          let batched, parsed =
            match frame with
            | Protocol.Single p -> (false, [| p |])
            | Protocol.Batch ps -> (true, Array.of_list ps)
          in
          let rs = Oracle.answer_batch oracle parsed in
          let b = Buffer.create 256 in
          Protocol.buf_add_frame_responses b ~batched rs;
          print_string (Buffer.contents b))
    lines

let answer_lines_socket address lines =
  let fd =
    match address with
    | Serve.Unix_path p ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX p);
        fd
    | Serve.Tcp (host, port) ->
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (addr, port));
        fd
  in
  let oc = Unix.out_channel_of_descr fd and ic = Unix.in_channel_of_descr fd in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc;
  (* One answer line per request line, shape mirrored — read exactly
     as many lines as were sent. *)
  List.iter (fun _ -> print_endline (input_line ic)) lines;
  close_in ic

let read_stdin_lines () =
  let rec go acc =
    match In_channel.input_line stdin with
    | Some l -> go (l :: acc)
    | None -> List.rev acc
  in
  go []

let query_run connect offline scenario system message domains requests =
  Cli.guard @@ fun () ->
  let lines =
    (match requests with [] -> read_stdin_lines () | rs -> rs)
    |> List.filter (fun l -> String.trim l <> "")
  in
  match (connect, offline) with
  | Some _, true -> Error "--connect and --offline are mutually exclusive"
  | None, false -> Error "pass --connect ADDR (socket client) or --offline (local evaluation)"
  | Some addr, false -> (
      match Serve.address_of_string addr with
      | Error e -> Error e
      | Ok address ->
          answer_lines_socket address lines;
          Ok 0)
  | None, true -> (
      match Cli.resolve ~scenario ~system ~message () with
      | Error e -> Error e
      | Ok scn -> (
          match Cli.resolve_domains domains with
          | Error e -> Error e
          | Ok domains ->
              let oracle = Oracle.create ~domains scn in
              Fun.protect
                ~finally:(fun () -> Oracle.shutdown oracle)
                (fun () -> answer_lines_offline oracle lines);
              Ok 0))

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:"Daemon address ($(b,unix:)$(i,PATH) or $(b,tcp:)$(i,HOST):$(i,PORT)).")

let offline_arg =
  Arg.(
    value & flag
    & info [ "offline" ]
        ~doc:
          "Answer locally (no daemon) from --scenario; output is bit-for-bit what the \
           daemon answers for the same scenario.")

let requests_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"REQUEST"
        ~doc:"Request lines (JSON); read from stdin when none are given.")

let query_cmd =
  let term =
    Term.(
      const query_run $ connect_arg $ offline_arg $ Cli.scenario_file $ Cli.system_opts
      $ Cli.message_opts $ Cli.domains_arg $ requests_arg)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Send oracle queries to a running daemon (--connect), or answer them locally \
          (--offline --scenario FILE).")
    term

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "fatnet" ~doc:"Fatnet repo utilities.")
          [ bench_cmd; serve_cmd; query_cmd ]))
