(* Repo-level utility commands.

   `fatnet bench report` reads the checked-in BENCH_*.json baselines
   (and, with --dir, a directory of freshly generated ones), renders a
   regression table per bench family, and exits non-zero when any
   family's own pass flag is false, an overhead guard exceeds its
   tolerance, or (with --guard-tol) a headline metric moved against
   its direction by more than the given fraction.  CI runs the obs
   bench into results/ and then `fatnet bench report --dir results`
   instead of hand-rolled jq checks. *)

module Json = Fatnet_obs.Json
module Table = Fatnet_report.Table

(* ------------------------------------------------------------------ *)
(* Dotted-path lookup into a parsed document: "totals.speedup",
   "organizations[0].workspace.evals_per_sec".                         *)

let lookup json path =
  let seg j seg =
    match String.index_opt seg '[' with
    | None -> Json.member seg j
    | Some b when String.length seg > b + 1 && seg.[String.length seg - 1] = ']' ->
        let name = String.sub seg 0 b in
        let idx = String.sub seg (b + 1) (String.length seg - b - 2) in
        let base = if name = "" then Some j else Json.member name j in
        Option.bind base (fun v ->
            match (v, int_of_string_opt idx) with
            | Json.Arr l, Some i -> List.nth_opt l i
            | _ -> None)
    | Some _ -> None
  in
  List.fold_left
    (fun acc s -> Option.bind acc (fun j -> seg j s))
    (Some json)
    (String.split_on_char '.' path)

let number json path =
  match lookup json path with Some (Json.Num f) -> Some f | _ -> None

let boolean json path =
  match lookup json path with Some (Json.Bool b) -> Some b | _ -> None

(* ------------------------------------------------------------------ *)
(* What each bench family reports.  [Higher]/[Lower] metrics are
   guarded by --guard-tol (a drop / rise beyond the fraction fails);
   [Info] rows never fail on their own.  [tolerance] pairs a metric
   with the path of its in-file ceiling (value must stay <= ceiling). *)

type direction = Higher | Lower | Info

type metric = {
  label : string;
  path : string;
  direction : direction;
  tolerance : string option;  (* path of the ceiling, e.g. "tolerance" *)
}

type family = {
  file : string;
  pass_flag : string option;  (* path of the family's own boolean verdict *)
  rows : metric list;
}

let m ?tolerance label path direction = { label; path; direction; tolerance }

let families =
  [
    {
      file = "BENCH_model.json";
      pass_flag = Some "pass";
      rows =
        [
          m "org_544 workspace evals/s" "organizations[0].workspace.evals_per_sec" Higher;
          m "org_1120 workspace evals/s" "organizations[1].workspace.evals_per_sec" Higher;
          m "org_544 warm-saturation speedup" "organizations[0].saturation_speedup" Higher;
          m "org_1120 warm-saturation speedup" "organizations[1].saturation_speedup" Higher;
        ];
    };
    {
      file = "BENCH_sim.json";
      pass_flag = None;
      rows =
        [
          m "per-flit events/s" "totals.per_flit_events_per_sec" Higher;
          m "streaming events/s" "totals.streaming_events_per_sec" Higher;
          m "streaming speedup" "totals.speedup" Higher;
        ];
    };
    {
      file = "BENCH_parallel.json";
      pass_flag = Some "pass";
      rows =
        [
          m "org_544 served evals/s" "organizations[0].best_served_evals_per_sec" Higher;
          m "org_1120 served evals/s" "organizations[1].best_served_evals_per_sec" Higher;
        ];
    };
    {
      file = "BENCH_sweep.json";
      pass_flag = Some "warm_equals_cold_bitwise";
      rows =
        [
          m "cold speedup vs baseline" "cold_speedup_vs_baseline" Higher;
          m "warm speedup vs cold" "warm_speedup_vs_cold" Higher;
        ];
    };
    {
      file = "BENCH_tail.json";
      pass_flag = Some "pass";
      rows =
        [
          m "worst overhead fraction" "worst_overhead_fraction" Lower
            ~tolerance:"tolerance";
          m "p99 quantile evals/s" "model_tail.p99_quantile_evals_per_sec" Higher;
        ];
    };
    {
      file = "BENCH_obs.json";
      pass_flag = Some "pass";
      rows =
        [
          m "enabled overhead" "enabled_overhead" Lower
            ~tolerance:"enabled_overhead_tolerance";
          m "trace overhead" "trace_overhead" Lower
            ~tolerance:"enabled_overhead_tolerance";
          m "disabled events/s" "disabled.events_per_sec" Higher;
          m "disabled vs baseline" "disabled_vs_baseline" Info;
        ];
    };
  ]

(* ------------------------------------------------------------------ *)

let read_doc dir file =
  let path = Filename.concat dir file in
  if not (Sys.file_exists path) then Ok None
  else
    let contents = In_channel.with_open_bin path In_channel.input_all in
    match Json.parse_result contents with
    | Ok j -> Ok (Some j)
    | Error e -> Error (Printf.sprintf "%s: %s" path e)

let fmt_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

let report dir baseline_dir obs_tol guard_tol =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let table =
    Table.create ~columns:[ "bench"; "metric"; "baseline"; "new"; "delta"; "status" ]
  in
  let errors = ref [] in
  let any_seen = ref false in
  List.iter
    (fun fam ->
      let doc_of = function
        | Ok d -> d
        | Error e ->
            errors := e :: !errors;
            None
      in
      let base = doc_of (read_doc baseline_dir fam.file) in
      let fresh =
        match dir with Some d -> doc_of (read_doc d fam.file) | None -> None
      in
      (* Guards run against the freshest document available. *)
      let eff = match fresh with Some _ -> fresh | None -> base in
      match eff with
      | None -> ()
      | Some eff_doc ->
          any_seen := true;
          let short = Filename.remove_extension fam.file in
          (match fam.pass_flag with
          | Some path when boolean eff_doc path = Some false ->
              fail "%s: %s is false" fam.file path;
              Table.add_row table [ short; path; "--"; "--"; "--"; "FAIL" ]
          | _ -> ());
          List.iter
            (fun mt ->
              let bval = Option.bind base (fun d -> number d mt.path) in
              let fval = Option.bind fresh (fun d -> number d mt.path) in
              let eval = number eff_doc mt.path in
              match eval with
              | None -> ()  (* e.g. trace_overhead before it existed *)
              | Some v ->
                  let delta =
                    match (bval, fval) with
                    | Some b, Some f when b <> 0. ->
                        Some (100. *. (f -. b) /. Float.abs b)
                    | _ -> None
                  in
                  let ceiling =
                    match mt.tolerance with
                    | None -> None
                    | Some _ when fam.file = "BENCH_obs.json" && obs_tol <> None ->
                        obs_tol
                    | Some p -> number eff_doc p
                  in
                  let status = ref "ok" in
                  (match ceiling with
                  | Some tol when v > tol ->
                      status := "FAIL";
                      fail "%s: %s = %g exceeds tolerance %g" fam.file mt.label v tol
                  | _ -> ());
                  (match (guard_tol, delta, mt.direction) with
                  | Some g, Some d, Higher when d < -100. *. g ->
                      status := "FAIL";
                      fail "%s: %s dropped %.1f%% (guard %.1f%%)" fam.file mt.label
                        (-.d) (100. *. g)
                  | Some g, Some d, Lower when d > 100. *. g ->
                      status := "FAIL";
                      fail "%s: %s rose %.1f%% (guard %.1f%%)" fam.file mt.label d
                        (100. *. g)
                  | _ -> ());
                  Table.add_row table
                    [
                      short;
                      mt.label;
                      (match bval with Some b -> fmt_num b | None -> "--");
                      (match fval with Some f -> fmt_num f | None -> "--");
                      (match delta with
                      | Some d -> Printf.sprintf "%+.1f%%" d
                      | None -> "--");
                      !status;
                    ])
            fam.rows)
    families;
  List.iter (Printf.eprintf "error: %s\n%!") (List.rev !errors);
  if not !any_seen then begin
    Printf.eprintf "error: no BENCH_*.json found in %s%s\n%!" baseline_dir
      (match dir with Some d -> " or " ^ d | None -> "");
    1
  end
  else begin
    Table.print table;
    match (List.rev !failures, !errors) with
    | [], [] ->
        print_endline "all bench guards pass";
        0
    | fs, _ ->
        List.iter (Printf.printf "FAIL: %s\n") fs;
        1
  end

open Cmdliner

let dir =
  Arg.(
    value
    & opt (some dir) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:"Directory holding freshly generated BENCH_*.json to compare against the baselines.")

let baseline_dir =
  Arg.(
    value
    & opt dir "."
    & info [ "baseline" ] ~docv:"DIR"
        ~doc:"Directory holding the checked-in BENCH_*.json baselines (default: current directory).")

let obs_tol =
  Arg.(
    value
    & opt (some float) None
    & info [ "obs-tol" ]
        ~doc:
          "Override the instrumentation-overhead tolerance from BENCH_obs.json (a fraction, \
           e.g. 0.01).")

let guard_tol =
  Arg.(
    value
    & opt (some float) None
    & info [ "guard-tol" ]
        ~doc:
          "Also fail when a headline metric moves against its direction by more than this \
           fraction versus the baseline (off by default: throughput is machine-dependent).")

let report_cmd =
  let term = Term.(const report $ dir $ baseline_dir $ obs_tol $ guard_tol) in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render the bench-regression table and exit non-zero past tolerance.")
    term

let bench_cmd =
  Cmd.group (Cmd.info "bench" ~doc:"Benchmark baseline utilities.") [ report_cmd ]

let () =
  exit (Cmd.eval' (Cmd.group (Cmd.info "fatnet" ~doc:"Fatnet repo utilities.") [ bench_cmd ]))
