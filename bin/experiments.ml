(* Regenerate the paper's figures and tables.

   `experiments list`            enumerate figures and ablations
   `experiments fig fig3`        one figure (model + simulation series)
   `experiments fig --scenario examples/fig3.scn`
                                 the same figure from its scenario file
   `experiments all`             every figure
   `experiments errors`          the Section-4 light-load error check
   `experiments ablate <id>`     one ablation study
   `experiments tables`          print Tables 1 and 2 as parsed
   `experiments export fig3`     write the figure's scenario to examples/fig3.scn
   `experiments sweep FILE`      run an arbitrary scenario file's load axis
   `experiments sweep FILE --metrics out.json`
                                 the same, collecting run telemetry
   `experiments report [FILE]`   render a saved metrics snapshot
   `experiments sweep FILE --trace out.json`
                                 the same, recording causal spans
   `experiments timeline [FILE]` render a saved --trace span file
   `experiments --quick fig3`    smoke a figure with a tiny protocol

   Sweeps go through the orchestration engine
   (`Fatnet_experiments.Sweep_engine`): cost-model work-stealing
   scheduling over OCaml domains (`--domains`), a persistent point
   cache under results/.cache (`--no-cache`, `--cache-dir`), and
   CI-adaptive replications (`--precision`, `--min-reps`,
   `--max-reps`).  The shared flags live in `Fatnet_cli.Cli`. *)

module Figures = Fatnet_experiments.Figures
module Ablations = Fatnet_experiments.Ablations
module Sweep_engine = Fatnet_experiments.Sweep_engine
module Scenario = Fatnet_scenario.Scenario
module Cli = Fatnet_cli.Cli
module Metrics = Fatnet_obs.Metrics
module Trace = Fatnet_obs.Trace
module Log = Fatnet_obs.Log
module Series = Fatnet_report.Series
module Table = Fatnet_report.Table
module Progress = Fatnet_report.Progress

let sim_protocol full =
  if full then Scenario.default_protocol else Scenario.quick_protocol

let ensure_dir = Fatnet_experiments.Fs_util.mkdir_p

(* Scheduler/cache accounting goes to stderr (via the shared logger,
   so it never tears the progress line) so piping a command's stdout
   (tables, CSV paths, metrics on [-]) stays clean. *)
let print_sweep_stats (s : Sweep_engine.stats) =
  Log.info
    "sweep: %d points (%d executed, %d memoized, %d cached), %d domain%s, %d steal%s, occupancy [%s], %.2f s%s%s"
    s.Sweep_engine.points s.Sweep_engine.executed s.Sweep_engine.memo_hits
    s.Sweep_engine.cache_hits s.Sweep_engine.domains_used
    (if s.Sweep_engine.domains_used = 1 then "" else "s")
    s.Sweep_engine.steals
    (if s.Sweep_engine.steals = 1 then "" else "s")
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.2f") s.Sweep_engine.occupancy)))
    s.Sweep_engine.wall_seconds
    (if s.Sweep_engine.retries > 0 || s.Sweep_engine.quarantined > 0 then
       Printf.sprintf ", %d retr%s, %d quarantined" s.Sweep_engine.retries
         (if s.Sweep_engine.retries = 1 then "y" else "ies")
         s.Sweep_engine.quarantined
     else "")
    (if s.Sweep_engine.cache_degraded then ", cache degraded" else "")

(* A figure spec comes either from the in-code presets (by id) or
   from a scenario file; the two are structurally identical for the
   checked-in examples, so the output is bit-for-bit the same. *)
let resolve_spec ~scenario ~id =
  match scenario with
  | Some path -> Result.map Figures.of_scenario (Scenario.load path)
  | None -> (
      match id with
      | None -> Error "a FIGURE id (or --scenario FILE) is required"
      | Some id -> (
          match Figures.find id with
          | Some spec -> Ok spec
          | None -> Error ("unknown figure: " ^ id)))

(* One family (mean, or a tail quantile) of a figure: table on the
   simulation grid, ASCII plot clipped to the model's ceiling, CSV. *)
let print_family spec ~sim_steps ~model ~sim ~csv_path =
  let all = model @ sim in
  let table =
    Table.create ~columns:("lambda_g" :: List.map (fun s -> s.Series.name) all)
  in
  let xs =
    List.init sim_steps (fun i ->
        spec.Figures.lambda_max *. float_of_int (i + 1) /. float_of_int sim_steps)
  in
  List.iter
    (fun x ->
      let value s =
        match List.find_opt (fun (px, _) -> Float.abs (px -. x) < 1e-15) s.Series.points with
        | Some (_, y) -> y
        | None -> (
            match Series.finite s with
            | { Series.points = []; _ } -> nan
            | fs ->
                let arr = Array.of_list fs.Series.points in
                let interp = Fatnet_numerics.Interp.create arr in
                let lo, hi = Fatnet_numerics.Interp.domain interp in
                if x < lo || x > hi then nan else Fatnet_numerics.Interp.eval interp x)
      in
      Table.add_float_row table (x :: List.map value all))
    xs;
  Table.print table;
  (* Clip the plot to a sensible ceiling: simulated points blow up
     near saturation and would crush the rest of the curves. *)
  let model_max =
    List.concat_map (fun s -> List.map snd (Series.finite s).Series.points) model
    |> List.fold_left Float.max 0.
  in
  if model_max > 0. then
    Fatnet_report.Ascii_plot.print ~height:16 ~y_cap:(2. *. model_max) all;
  Series.write_csv ~path:csv_path all;
  Printf.printf "wrote %s\n\n%!" csv_path

let run_figure ?(tracer = Trace.disabled) ?(show_progress = false) spec ~model_steps
    ~sim_steps ~protocol ~replication ~engine ~with_sim ~p99 ~out_dir =
  Printf.printf "== %s: %s ==\n%!" spec.Figures.id spec.Figures.title;
  let model = Figures.model_series spec ~steps:model_steps in
  (* One engine batch feeds both the mean curves and (with --p99) the
     tail family: the summaries carry the full distribution, so the
     quantile series are a projection, not a second sweep. *)
  let summaries =
    if with_sim then begin
      let n_sim =
        sim_steps
        * List.length (List.filter (fun c -> c.Figures.simulate) spec.Figures.curves)
      in
      let progress =
        if show_progress && n_sim > 0 then Some (Progress.create ~total:n_sim tracer)
        else None
      in
      let per_curve, stats =
        Fun.protect
          ~finally:(fun () -> Option.iter Progress.finish progress)
          (fun () ->
            Figures.sim_summaries_stats ~protocol ?replication ~engine spec
              ~steps:sim_steps)
      in
      print_sweep_stats stats;
      Some per_curve
    end
    else None
  in
  let sim =
    match summaries with
    | Some per_curve -> Figures.mean_series_of_summaries per_curve
    | None -> []
  in
  ensure_dir out_dir;
  print_family spec ~sim_steps ~model ~sim
    ~csv_path:(Filename.concat out_dir (spec.Figures.id ^ ".csv"));
  if p99 then begin
    let q = 0.99 in
    let family = Figures.quantile_id spec ~q in
    Printf.printf "== %s: %s, predicted vs simulated p99 ==\n%!" family spec.Figures.title;
    let model_q = Figures.model_quantile_series spec ~steps:model_steps ~q in
    let sim_q =
      match summaries with
      | Some per_curve -> Figures.quantile_series_of_summaries ~q per_curve
      | None -> []
    in
    print_family spec ~sim_steps ~model:model_q ~sim:sim_q
      ~csv_path:(Filename.concat out_dir (family ^ ".csv"))
  end

let cmd_list () =
  print_endline "figures:";
  List.iter
    (fun s -> Printf.printf "  %-6s %s\n" s.Figures.id s.Figures.title)
    Figures.all;
  print_endline "ablations:";
  List.iter (fun a -> Printf.printf "  %-16s %s\n" a.Ablations.id a.Ablations.description)
    Ablations.all

let cmd_fig id scenario model_steps sim_steps full no_sim p99 out_dir opts topts =
  Cli.guard @@ fun () ->
  Result.map
    (fun spec ->
      let tracer = Cli.tracer_of_opts ~progress:true topts in
      run_figure spec ~tracer ~show_progress:(Cli.progress_wanted topts) ~model_steps
        ~sim_steps
        ~protocol:(Cli.protocol_of_opts ~base:(sim_protocol full) opts)
        ~replication:(Cli.replication_of_opts opts)
        ~engine:(Cli.engine_of_opts ~tracer opts)
        ~with_sim:(not no_sim) ~p99 ~out_dir;
      Cli.write_trace topts tracer;
      0)
    (resolve_spec ~scenario ~id)

let cmd_all model_steps sim_steps full no_sim p99 out_dir opts topts =
  Cli.guard @@ fun () ->
  let tracer = Cli.tracer_of_opts ~progress:true topts in
  let protocol = Cli.protocol_of_opts ~base:(sim_protocol full) opts in
  let replication = Cli.replication_of_opts opts in
  let engine = Cli.engine_of_opts ~tracer opts in
  List.iter
    (fun spec ->
      run_figure spec ~tracer ~show_progress:(Cli.progress_wanted topts) ~model_steps
        ~sim_steps ~protocol ~replication ~engine ~with_sim:(not no_sim) ~p99 ~out_dir)
    Figures.all;
  Cli.write_trace topts tracer;
  Ok 0

let cmd_errors full =
  let table = Table.create ~columns:[ "figure"; "curve"; "light-load error %" ] in
  List.iter
    (fun spec ->
      if List.exists (fun c -> c.Figures.simulate) spec.Figures.curves then
        List.iter
          (fun (label, err) ->
            Table.add_row table
              [ spec.Figures.id; label; Printf.sprintf "%.1f" (100. *. err) ])
          (Figures.light_load_error ~protocol:(sim_protocol full) spec))
    Figures.all;
  Table.print table;
  print_endline "(paper, Section 4: \"at light traffic the model differs from simulation by about 4 to 8 percent\")";
  0

let cmd_ablate id steps full =
  match Ablations.find id with
  | None ->
      prerr_endline ("unknown ablation: " ^ id);
      1
  | Some a ->
      Printf.printf "== ablation %s: %s ==\n%!" a.Ablations.id a.Ablations.description;
      Table.print (a.Ablations.run ~steps ~protocol:(sim_protocol full));
      0

let cmd_tables () =
  let t1 = Table.create ~columns:[ "org"; "N"; "C"; "m"; "n_c"; "cluster depths" ] in
  List.iter
    (fun (name, sys) ->
      let depths =
        Array.to_list sys.Fatnet_model.Params.clusters
        |> List.map (fun c -> string_of_int c.Fatnet_model.Params.tree_depth)
        |> String.concat ","
      in
      Table.add_row t1
        [
          name;
          string_of_int (Fatnet_model.Params.total_nodes sys);
          string_of_int (Fatnet_model.Params.cluster_count sys);
          string_of_int sys.Fatnet_model.Params.m;
          string_of_int sys.Fatnet_model.Params.icn2_depth;
          depths;
        ])
    [ ("N=1120", Fatnet_model.Presets.org_1120); ("N=544", Fatnet_model.Presets.org_544) ];
  print_endline "Table 1: system organizations";
  Table.print t1;
  let t2 = Table.create ~columns:[ "network"; "bandwidth"; "network latency"; "switch latency" ] in
  List.iter
    (fun (name, n) ->
      Table.add_row t2
        [
          name;
          Printf.sprintf "%g" n.Fatnet_model.Params.bandwidth;
          Printf.sprintf "%g" n.Fatnet_model.Params.network_latency;
          Printf.sprintf "%g" n.Fatnet_model.Params.switch_latency;
        ])
    [ ("Net.1 (ICN1, ICN2)", Fatnet_model.Presets.net1); ("Net.2 (ECN1)", Fatnet_model.Presets.net2) ];
  print_endline "Table 2: network characteristics";
  Table.print t2;
  0

(* `experiments export fig3` regenerates the checked-in scenario
   files: the exported file is the figure's base scenario, so loading
   it back reproduces the preset spec exactly. *)
let cmd_export id out =
  Cli.guard @@ fun () ->
  match Figures.find id with
  | None -> Error ("unknown figure: " ^ id)
  | Some spec -> (
      match Figures.to_scenario spec with
      | None ->
          Error
            (id
           ^ " has no single base scenario (its curves differ in more than flit size); \
              nothing to export")
      | Some base ->
          let path = Option.value out ~default:(Filename.concat "examples" (id ^ ".scn")) in
          Scenario.save ~path base;
          Printf.printf "wrote %s (hash %s)\n" path (Scenario.hash base);
          Ok 0)

(* `experiments sweep FILE` runs an arbitrary scenario's load axis
   through the orchestrator — any new workload is a new .scn file,
   not a new code path. *)
let cmd_sweep file scenario out_dir opts mopts topts =
  Cli.guard @@ fun () ->
  let ( let* ) = Result.bind in
  let* file =
    match (file, scenario) with
    | Some f, _ | None, Some f -> Ok f
    | None, None -> Error "a scenario FILE (positional or --scenario) is required"
  in
  Result.map
    (fun scn ->
      Printf.printf "== scenario %s ==\n%!"
        (if scn.Scenario.name = "" then file else scn.Scenario.name);
      let tracer = Cli.tracer_of_opts ~progress:true topts in
      let metrics = Cli.metrics_registry mopts in
      Metrics.set_meta metrics "command" "experiments sweep";
      Metrics.set_meta metrics "scenario" file;
      Metrics.set_meta metrics "scenario_name" scn.Scenario.name;
      Metrics.set_meta metrics "scenario_hash" (Scenario.hash scn);
      (* The analytical side of the sweep: evaluating the saturation
         rate under the ambient registry records the solver's
         bisection/bracketing counters into the same snapshot as the
         simulator and scheduler series.  The ambient tracer makes
         the same solve contribute its solver spans. *)
      if Metrics.is_enabled metrics then
        Metrics.with_ambient metrics (fun () ->
            Trace.with_ambient tracer (fun () ->
                ignore (Scenario.saturation_rate scn)));
      let lambdas = Scenario.lambdas scn in
      let progress =
        if Cli.progress_wanted topts then
          Some (Progress.create ~total:(List.length lambdas) tracer)
        else None
      in
      let outcome =
        Fun.protect
          ~finally:(fun () -> Option.iter Progress.finish progress)
          (fun () ->
            Sweep_engine.run_sweep ~config:(Cli.engine_of_opts ~tracer ~metrics opts) scn)
      in
      let results = outcome.Sweep_engine.results in
      print_sweep_stats outcome.Sweep_engine.stats;
      List.iter
        (fun f ->
          Log.warn "quarantined: point %d%s after %d attempt%s: %s"
            f.Sweep_engine.index
            (match f.Sweep_engine.lambda_g with
            | Some l -> Printf.sprintf " (lambda_g=%g)" l
            | None -> "")
            f.Sweep_engine.attempts
            (if f.Sweep_engine.attempts = 1 then "" else "s")
            (Printexc.to_string f.Sweep_engine.error))
        outcome.Sweep_engine.quarantined;
      let table =
        Table.create
          ~columns:
            [ "lambda_g"; "sim mean"; "sim p99"; "ci half-width"; "reps"; "model mean"; "model p99" ]
      in
      (* Quarantined points keep their table row (marked [quar.], to
         keep them distinct from [sat.], the NaN of a saturated model
         cell) so the load axis stays aligned; the CSV carries
         survivors only. *)
      let cell x = if Float.is_finite x then Printf.sprintf "%.6g" x else "sat." in
      (* One workspace for both the table's model column and the CSV
         model series — bit-identical to [Scenario.model_mean]. *)
      let ws = Scenario.evaluator scn in
      (* The model p99 reuses [ws]'s system/message/variants but runs
         the record-building tail fit — cheap next to the simulation
         it sits beside. *)
      let model_p99 lambda_g = Fatnet_model.Eval.quantile ws ~lambda_g ~q:0.99 in
      List.iteri
        (fun i lambda_g ->
          let model = Fatnet_model.Eval.mean_into ws ~lambda_g in
          match results.(i) with
          | Some r ->
              Table.add_float_row table
                [
                  lambda_g;
                  r.Sweep_engine.summary.Fatnet_stats.Summary.mean;
                  r.Sweep_engine.summary.Fatnet_stats.Summary.p99;
                  r.Sweep_engine.ci_half_width;
                  float_of_int r.Sweep_engine.replications;
                  model;
                  model_p99 lambda_g;
                ]
          | None ->
              Table.add_row table
                [
                  cell lambda_g; "quar."; "quar."; "quar."; "quar."; cell model;
                  cell (model_p99 lambda_g);
                ])
        lambdas;
      Table.print table;
      ensure_dir out_dir;
      let name = if scn.Scenario.name = "" then "sweep" else scn.Scenario.name in
      let path = Filename.concat out_dir (name ^ ".csv") in
      let surviving project =
        List.concat
          (List.mapi
             (fun i l ->
               match results.(i) with Some r -> [ (l, project r) ] | None -> [])
             lambdas)
      in
      Series.write_csv ~path
        [
          Series.create ~name:"sim"
            ~points:(surviving (fun r -> r.Sweep_engine.summary.Fatnet_stats.Summary.mean));
          Series.create ~name:"sim p99"
            ~points:(surviving (fun r -> r.Sweep_engine.summary.Fatnet_stats.Summary.p99));
          Series.create ~name:"model"
            ~points:(List.map (fun l -> (l, Fatnet_model.Eval.mean_into ws ~lambda_g:l)) lambdas);
          Series.create ~name:"model p99"
            ~points:(List.map (fun l -> (l, model_p99 l)) lambdas);
        ];
      Printf.printf "wrote %s\n%!" path;
      Cli.write_metrics mopts metrics;
      Cli.write_trace topts tracer;
      if outcome.Sweep_engine.quarantined = [] then 0 else 3)
    (Scenario.load file)

(* `experiments report [FILE]` re-renders a saved metrics snapshot —
   by default as the human table/bar view, or back through the
   machine formats with --format. *)
let cmd_report file format =
  Cli.guard @@ fun () ->
  let path = Option.value file ~default:Cli.default_metrics_file in
  if not (Sys.file_exists path) then
    Error
      (Printf.sprintf "%s: no metrics snapshot found (run a command with --metrics first)" path)
  else begin
    let ic = open_in_bin path in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Metrics.Snapshot.of_json body with
    | Error e -> Error (path ^ ": " ^ e)
    | Ok snapshot ->
        print_string
          (Cli.render_metrics
             { Cli.metrics_file = Some path; metrics_format = format }
             snapshot);
        Ok 0
  end

(* The CI smoke entry point: `experiments --quick fig3` (or
   `--quick --scenario FILE`) runs one figure end-to-end (model +
   simulation + CSV) with a protocol small enough for a cold CI
   runner. *)
let quick_opts opts = { opts with Cli.precision = 0.1; min_reps = 2; max_reps = 4 }

let quick_protocol_smoke =
  { Scenario.quick_protocol with Scenario.warmup = 100; measured = 1_000; drain = 100 }

let cmd_default quick fig scenario p99 out_dir opts topts =
  match (fig, scenario) with
  | None, None ->
      cmd_list ();
      0
  | _ ->
      Cli.guard @@ fun () ->
      Result.map
        (fun spec ->
          let protocol, opts =
            if quick then (quick_protocol_smoke, quick_opts opts)
            else (sim_protocol false, opts)
          in
          let protocol = Cli.protocol_of_opts ~base:protocol opts in
          let model_steps = if quick then 16 else 24 in
          let sim_steps = if quick then 3 else 6 in
          let tracer = Cli.tracer_of_opts ~progress:true topts in
          run_figure spec ~tracer ~show_progress:(Cli.progress_wanted topts) ~model_steps
            ~sim_steps ~protocol
            ~replication:(Cli.replication_of_opts opts)
            ~engine:(Cli.engine_of_opts ~tracer opts)
            ~with_sim:true ~p99 ~out_dir;
          Cli.write_trace topts tracer;
          0)
        (resolve_spec ~scenario ~id:fig)

(* `experiments timeline [FILE]` renders a --trace span file as the
   human timeline view: top-N slowest spans with self time, then the
   by-name aggregate. *)
let cmd_timeline file top =
  Cli.guard @@ fun () ->
  let path = Option.value file ~default:Cli.default_trace_file in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no trace found (run a command with --trace first)" path)
  else begin
    let ic = open_in_bin path in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Trace.spans_of_chrome_json body with
    | Error e -> Error (path ^ ": " ^ e)
    | Ok spans ->
        print_string (Fatnet_report.Trace_report.render ~top spans);
        Ok 0
  end

open Cmdliner

let model_steps =
  Arg.(value & opt int 24 & info [ "model-steps" ] ~doc:"Model points per curve.")

let sim_steps = Arg.(value & opt int 6 & info [ "sim-steps" ] ~doc:"Simulation points per curve.")

let full =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:"Use the paper's full protocol (10k/100k/10k messages) instead of the quick one.")

let no_sim = Arg.(value & flag & info [ "no-sim" ] ~doc:"Skip simulation series.")

let p99_flag =
  Arg.(
    value & flag
    & info [ "p99" ]
        ~doc:
          "Also emit the figure's tail family: predicted (model) vs simulated p99 latency, \
           written as FIGURE-p99.csv next to the mean CSV.  The simulated p99 is a \
           projection of the same sweep (no extra simulation cost).")

let out_dir =
  Arg.(value & opt string "results" & info [ "out" ] ~doc:"Directory for CSV output.")

let steps = Arg.(value & opt int 6 & info [ "steps" ] ~doc:"Points per ablation setting.")

let fig_id = Arg.(value & pos 0 (some string) None & info [] ~docv:"FIGURE")
let ablate_id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ABLATION")
let export_id = Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE")
let sweep_file = Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE")

let report_file =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:(Printf.sprintf "Metrics snapshot to render (default %s)." Cli.default_metrics_file))

let report_format =
  Arg.(
    value
    & opt
        (enum
           [
             ("table", Cli.Metrics_table);
             ("json", Cli.Metrics_json);
             ("prometheus", Cli.Metrics_prometheus);
           ])
        Cli.Metrics_table
    & info [ "format"; "metrics-format" ] ~docv:"FMT"
        ~doc:"Output format: $(b,table) (default), $(b,json), or $(b,prometheus).")

let export_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path (default examples/FIGURE.scn).")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List figures and ablations")
    Term.(const (fun () -> cmd_list (); 0) $ const ())

let fig_cmd =
  Cmd.v (Cmd.info "fig" ~doc:"Regenerate one figure (by id or from --scenario)")
    Term.(
      const cmd_fig $ fig_id $ Cli.scenario_file $ model_steps $ sim_steps $ full $ no_sim
      $ p99_flag $ out_dir $ Cli.sweep_opts $ Cli.trace_opts)

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every figure")
    Term.(
      const cmd_all $ model_steps $ sim_steps $ full $ no_sim $ p99_flag $ out_dir
      $ Cli.sweep_opts $ Cli.trace_opts)

let errors_cmd =
  Cmd.v (Cmd.info "errors" ~doc:"Light-load model-vs-simulation error (Section 4 claim)")
    Term.(const cmd_errors $ full)

let ablate_cmd =
  Cmd.v (Cmd.info "ablate" ~doc:"Run an ablation study")
    Term.(const cmd_ablate $ ablate_id $ steps $ full)

let tables_cmd =
  Cmd.v (Cmd.info "tables" ~doc:"Print Tables 1 and 2")
    Term.(const (fun () -> cmd_tables ()) $ const ())

let export_cmd =
  Cmd.v (Cmd.info "export" ~doc:"Write a figure's base scenario to a .scn file")
    Term.(const cmd_export $ export_id $ export_out)

let sweep_cmd =
  Cmd.v (Cmd.info "sweep" ~doc:"Run a scenario file's load axis through the sweep engine")
    Term.(
      const cmd_sweep $ sweep_file $ Cli.scenario_file $ out_dir $ Cli.sweep_opts
      $ Cli.metrics_opts $ Cli.trace_opts)

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render a --metrics snapshot (histograms as bars, counters as a table)")
    Term.(const cmd_report $ report_file $ report_format)

let timeline_file =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:(Printf.sprintf "Chrome trace-event file to render (default %s)." Cli.default_trace_file))

let timeline_top =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"N" ~doc:"How many slowest spans to list (default 10).")

let timeline_cmd =
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Render a --trace span file (slowest spans with self time, by-name aggregate)")
    Term.(const cmd_timeline $ timeline_file $ timeline_top)

let quick_flag =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:"With a FIGURE argument: smoke the figure with a tiny protocol (CI entry point).")

let () =
  let info = Cmd.info "experiments" ~doc:"Reproduce the paper's figures and tables" in
  let default =
    Term.(
      const cmd_default $ quick_flag $ fig_id $ Cli.scenario_file $ p99_flag $ out_dir
      $ Cli.sweep_opts $ Cli.trace_opts)
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            list_cmd;
            fig_cmd;
            all_cmd;
            errors_cmd;
            ablate_cmd;
            tables_cmd;
            export_cmd;
            sweep_cmd;
            report_cmd;
            timeline_cmd;
          ]))
