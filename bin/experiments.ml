(* Regenerate the paper's figures and tables.

   `experiments list`            enumerate figures and ablations
   `experiments fig fig3`        one figure (model + simulation series)
   `experiments all`             every figure
   `experiments errors`          the Section-4 light-load error check
   `experiments ablate <id>`     one ablation study
   `experiments tables`          print Tables 1 and 2 as parsed
   `experiments --quick fig3`    smoke a figure with a tiny protocol

   Sweeps go through the orchestration engine
   (`Fatnet_experiments.Sweep_engine`): cost-model work-stealing
   scheduling over OCaml domains (`--domains`), a persistent point
   cache under results/.cache (`--no-cache`, `--cache-dir`), and
   CI-adaptive replications (`--precision`, `--min-reps`,
   `--max-reps`). *)

module Figures = Fatnet_experiments.Figures
module Ablations = Fatnet_experiments.Ablations
module Sweep_engine = Fatnet_experiments.Sweep_engine
module Runner = Fatnet_sim.Runner
module Series = Fatnet_report.Series
module Table = Fatnet_report.Table

let sim_config full =
  if full then Fatnet_sim.Runner.default_config else Fatnet_sim.Runner.quick_config

type sweep_opts = {
  domains : int option;
  no_cache : bool;
  cache_dir : string;
  precision : float;  (* <= 0 disables adaptive replications *)
  min_reps : int;
  max_reps : int;
  seed : int64;
}

let engine_of_opts ~base opts =
  {
    Sweep_engine.domains = opts.domains;
    cache =
      (if opts.no_cache then Sweep_engine.No_cache
       else Sweep_engine.Cache_dir opts.cache_dir);
    base = { base with Runner.seed = opts.seed };
    replication =
      (if opts.precision > 0. then
         Some
           {
             Runner.target_rel = opts.precision;
             confidence = 0.95;
             min_reps = opts.min_reps;
             max_reps = opts.max_reps;
           }
       else None);
  }

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let print_sweep_stats (s : Sweep_engine.stats) =
  Printf.printf
    "sweep: %d points (%d executed, %d cached), %d domain%s, %d steal%s, occupancy [%s], %.2f s\n%!"
    s.Sweep_engine.points s.Sweep_engine.executed s.Sweep_engine.cache_hits
    s.Sweep_engine.domains_used
    (if s.Sweep_engine.domains_used = 1 then "" else "s")
    s.Sweep_engine.steals
    (if s.Sweep_engine.steals = 1 then "" else "s")
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.2f") s.Sweep_engine.occupancy)))
    s.Sweep_engine.wall_seconds

let run_figure spec ~model_steps ~sim_steps ~engine ~with_sim ~out_dir =
  Printf.printf "== %s: %s ==\n%!" spec.Figures.id spec.Figures.title;
  let model = Figures.model_series spec ~steps:model_steps in
  let sim =
    if with_sim then begin
      let series, stats = Figures.sim_series_stats ~engine spec ~steps:sim_steps in
      print_sweep_stats stats;
      series
    end
    else []
  in
  let all = model @ sim in
  let table =
    Table.create ~columns:("lambda_g" :: List.map (fun s -> s.Series.name) all)
  in
  let xs =
    List.init sim_steps (fun i ->
        spec.Figures.lambda_max *. float_of_int (i + 1) /. float_of_int sim_steps)
  in
  List.iter
    (fun x ->
      let value s =
        match List.find_opt (fun (px, _) -> Float.abs (px -. x) < 1e-15) s.Series.points with
        | Some (_, y) -> y
        | None -> (
            match Series.finite s with
            | { Series.points = []; _ } -> nan
            | fs ->
                let arr = Array.of_list fs.Series.points in
                let interp = Fatnet_numerics.Interp.create arr in
                let lo, hi = Fatnet_numerics.Interp.domain interp in
                if x < lo || x > hi then nan else Fatnet_numerics.Interp.eval interp x)
      in
      Table.add_float_row table (x :: List.map value all))
    xs;
  Table.print table;
  (* Clip the plot to a sensible ceiling: simulated points blow up
     near saturation and would crush the rest of the curves. *)
  let model_max =
    List.concat_map (fun s -> List.map snd (Series.finite s).Series.points) model
    |> List.fold_left Float.max 0.
  in
  if model_max > 0. then
    Fatnet_report.Ascii_plot.print ~height:16 ~y_cap:(2. *. model_max) all;
  ensure_dir out_dir;
  let path = Filename.concat out_dir (spec.Figures.id ^ ".csv") in
  Series.write_csv ~path all;
  Printf.printf "wrote %s\n\n%!" path

let cmd_list () =
  print_endline "figures:";
  List.iter
    (fun s -> Printf.printf "  %-6s %s\n" s.Figures.id s.Figures.title)
    Figures.all;
  print_endline "ablations:";
  List.iter (fun a -> Printf.printf "  %-16s %s\n" a.Ablations.id a.Ablations.description)
    Ablations.all

let cmd_fig id model_steps sim_steps full no_sim out_dir opts =
  match Figures.find id with
  | None ->
      prerr_endline ("unknown figure: " ^ id);
      1
  | Some spec ->
      let engine = engine_of_opts ~base:(sim_config full) opts in
      run_figure spec ~model_steps ~sim_steps ~engine ~with_sim:(not no_sim) ~out_dir;
      0

let cmd_all model_steps sim_steps full no_sim out_dir opts =
  let engine = engine_of_opts ~base:(sim_config full) opts in
  List.iter
    (fun spec -> run_figure spec ~model_steps ~sim_steps ~engine ~with_sim:(not no_sim) ~out_dir)
    Figures.all;
  0

let cmd_errors full =
  let table = Table.create ~columns:[ "figure"; "curve"; "light-load error %" ] in
  List.iter
    (fun spec ->
      if List.exists (fun c -> c.Figures.simulate) spec.Figures.curves then
        List.iter
          (fun (label, err) ->
            Table.add_row table
              [ spec.Figures.id; label; Printf.sprintf "%.1f" (100. *. err) ])
          (Figures.light_load_error ~config:(sim_config full) spec))
    Figures.all;
  Table.print table;
  print_endline "(paper, Section 4: \"at light traffic the model differs from simulation by about 4 to 8 percent\")";
  0

let cmd_ablate id steps full =
  match Ablations.find id with
  | None ->
      prerr_endline ("unknown ablation: " ^ id);
      1
  | Some a ->
      Printf.printf "== ablation %s: %s ==\n%!" a.Ablations.id a.Ablations.description;
      Table.print (a.Ablations.run ~steps ~config:(sim_config full));
      0

let cmd_tables () =
  let t1 = Table.create ~columns:[ "org"; "N"; "C"; "m"; "n_c"; "cluster depths" ] in
  List.iter
    (fun (name, sys) ->
      let depths =
        Array.to_list sys.Fatnet_model.Params.clusters
        |> List.map (fun c -> string_of_int c.Fatnet_model.Params.tree_depth)
        |> String.concat ","
      in
      Table.add_row t1
        [
          name;
          string_of_int (Fatnet_model.Params.total_nodes sys);
          string_of_int (Fatnet_model.Params.cluster_count sys);
          string_of_int sys.Fatnet_model.Params.m;
          string_of_int sys.Fatnet_model.Params.icn2_depth;
          depths;
        ])
    [ ("N=1120", Fatnet_model.Presets.org_1120); ("N=544", Fatnet_model.Presets.org_544) ];
  print_endline "Table 1: system organizations";
  Table.print t1;
  let t2 = Table.create ~columns:[ "network"; "bandwidth"; "network latency"; "switch latency" ] in
  List.iter
    (fun (name, n) ->
      Table.add_row t2
        [
          name;
          Printf.sprintf "%g" n.Fatnet_model.Params.bandwidth;
          Printf.sprintf "%g" n.Fatnet_model.Params.network_latency;
          Printf.sprintf "%g" n.Fatnet_model.Params.switch_latency;
        ])
    [ ("Net.1 (ICN1, ICN2)", Fatnet_model.Presets.net1); ("Net.2 (ECN1)", Fatnet_model.Presets.net2) ];
  print_endline "Table 2: network characteristics";
  Table.print t2;
  0

(* The CI smoke entry point: `experiments --quick fig3` runs one
   figure end-to-end (model + simulation + CSV) with a protocol small
   enough for a cold CI runner. *)
let quick_opts opts = { opts with precision = 0.1; min_reps = 2; max_reps = 4 }

let quick_base =
  { Runner.quick_config with Runner.warmup = 100; measured = 1_000; drain = 100 }

let cmd_default quick fig out_dir opts =
  match fig with
  | None ->
      cmd_list ();
      0
  | Some id -> (
      match Figures.find id with
      | None ->
          prerr_endline ("unknown figure: " ^ id);
          1
      | Some spec ->
          let engine =
            if quick then engine_of_opts ~base:quick_base (quick_opts opts)
            else engine_of_opts ~base:(sim_config false) opts
          in
          let model_steps = if quick then 16 else 24 in
          let sim_steps = if quick then 3 else 6 in
          run_figure spec ~model_steps ~sim_steps ~engine ~with_sim:true ~out_dir;
          0)

open Cmdliner

let model_steps =
  Arg.(value & opt int 24 & info [ "model-steps" ] ~doc:"Model points per curve.")

let sim_steps = Arg.(value & opt int 6 & info [ "sim-steps" ] ~doc:"Simulation points per curve.")

let full =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:"Use the paper's full protocol (10k/100k/10k messages) instead of the quick one.")

let no_sim = Arg.(value & flag & info [ "no-sim" ] ~doc:"Skip simulation series.")

let out_dir =
  Arg.(value & opt string "results" & info [ "out" ] ~doc:"Directory for CSV output.")

let steps = Arg.(value & opt int 6 & info [ "steps" ] ~doc:"Points per ablation setting.")

let fig_id = Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE")
let ablate_id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ABLATION")

let sweep_opts =
  let domains =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains for the sweep scheduler (default: the runtime's recommendation).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Recompute every point; do not read or write the point cache.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string Fatnet_experiments.Point_cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Point cache directory.")
  in
  let precision =
    Arg.(
      value & opt float 0.
      & info [ "precision" ] ~docv:"REL"
          ~doc:
            "Enable CI-adaptive replications: run independently seeded replications per point \
             until the 95% CI half-width over replication means is below REL of the mean \
             (subject to --min-reps/--max-reps).  0 disables (one run per point).")
  in
  let min_reps =
    Arg.(value & opt int 2 & info [ "min-reps" ] ~doc:"Replications before any stopping test.")
  in
  let max_reps = Arg.(value & opt int 8 & info [ "max-reps" ] ~doc:"Replication cap.") in
  let seed =
    Arg.(
      value & opt int64 Runner.quick_config.Runner.seed
      & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed for every sweep point.")
  in
  let make domains no_cache cache_dir precision min_reps max_reps seed =
    { domains; no_cache; cache_dir; precision; min_reps; max_reps; seed }
  in
  Term.(const make $ domains $ no_cache $ cache_dir $ precision $ min_reps $ max_reps $ seed)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List figures and ablations")
    Term.(const (fun () -> cmd_list (); 0) $ const ())

let fig_cmd =
  Cmd.v (Cmd.info "fig" ~doc:"Regenerate one figure")
    Term.(const cmd_fig $ fig_id $ model_steps $ sim_steps $ full $ no_sim $ out_dir $ sweep_opts)

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every figure")
    Term.(const cmd_all $ model_steps $ sim_steps $ full $ no_sim $ out_dir $ sweep_opts)

let errors_cmd =
  Cmd.v (Cmd.info "errors" ~doc:"Light-load model-vs-simulation error (Section 4 claim)")
    Term.(const cmd_errors $ full)

let ablate_cmd =
  Cmd.v (Cmd.info "ablate" ~doc:"Run an ablation study")
    Term.(const cmd_ablate $ ablate_id $ steps $ full)

let tables_cmd =
  Cmd.v (Cmd.info "tables" ~doc:"Print Tables 1 and 2")
    Term.(const (fun () -> cmd_tables ()) $ const ())

let quick_flag =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:"With a FIGURE argument: smoke the figure with a tiny protocol (CI entry point).")

let default_fig = Arg.(value & pos 0 (some string) None & info [] ~docv:"FIGURE")

let () =
  let info = Cmd.info "experiments" ~doc:"Reproduce the paper's figures and tables" in
  let default = Term.(const cmd_default $ quick_flag $ default_fig $ out_dir $ sweep_opts) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ list_cmd; fig_cmd; all_cmd; errors_cmd; ablate_cmd; tables_cmd ]))
