(* Evaluate the analytical model from the command line.

   `cluster_model --scenario examples/fig3.scn --lambda 1e-4`
   `cluster_model --org 1120 --m-flits 32 --flit-bytes 256 --lambda 1e-4`
   `cluster_model --org 544 --sweep --steps 10`
   `cluster_model --clusters 4 --depth 2 --arity 4 --saturation` *)

module Params = Fatnet_model.Params
module Latency = Fatnet_model.Latency
module Scenario = Fatnet_scenario.Scenario
module Cli = Fatnet_cli.Cli
module Metrics = Fatnet_obs.Metrics
module Trace = Fatnet_obs.Trace
module Table = Fatnet_report.Table

let print_breakdown (scn : Scenario.t) =
  let lambda_g = Scenario.require_lambda scn in
  let r = Scenario.model_evaluate scn in
  Printf.printf "mean latency at λ_g=%g: %g\n\n" lambda_g r.Latency.mean_latency;
  let table =
    Table.create
      ~columns:[ "cluster"; "N_i"; "U_i"; "L_in"; "W_in"; "T_in"; "E_in"; "L_out"; "combined" ]
  in
  List.iter
    (fun c ->
      let open Latency in
      let i = c.intra in
      Table.add_row table
        ([ string_of_int c.cluster; string_of_int c.nodes; Printf.sprintf "%.4f" c.u ]
        @ List.map
            (fun x -> if Float.is_finite x then Printf.sprintf "%.5g" x else "sat.")
            [
              i.Fatnet_model.Intra.total;
              i.Fatnet_model.Intra.waiting;
              i.Fatnet_model.Intra.network;
              i.Fatnet_model.Intra.tail;
              (match c.inter with
              | None -> nan
              | Some x -> x.Fatnet_model.Inter.total);
              c.combined;
            ]))
    r.Latency.clusters;
  Table.print table

let run scenario system message lambda sweep steps saturation domains mopts topts =
  Cli.guard @@ fun () ->
  let ( let* ) = Result.bind in
  let default_load = Scenario.Fixed (Option.value lambda ~default:1e-4) in
  let* domains = Cli.resolve_domains domains in
  let* scn = Cli.resolve ~default_load ~scenario ~system ~message () in
  let scn = match lambda with Some l -> Scenario.at scn l | None -> scn in
  Format.printf "system: @[%a@]@.@." Params.pp_system scn.Scenario.system;
  let sys = scn.Scenario.system and msg = scn.Scenario.message in
  let metrics = Cli.metrics_registry mopts in
  Metrics.set_meta metrics "command" "cluster_model";
  Option.iter (Metrics.set_meta metrics "scenario") scenario;
  let tracer = Cli.tracer_of_opts topts in
  (* The model and solver record through the ambient registry and
     trace, so running the evaluation under [with_ambient] is the
     whole hookup. *)
  Metrics.with_ambient metrics @@ fun () ->
  Trace.with_ambient tracer @@ fun () ->
  (* The root span closes before the exports below, so the written
     trace contains it. *)
  Trace.in_span tracer "model.run" (fun _ ->
  if saturation then begin
    let sat = Scenario.saturation_rate scn in
    Printf.printf "saturation rate: λ_g = %g\n" sat;
    let b =
      Fatnet_model.Utilization.bottleneck ~variants:scn.Scenario.variants ~system:sys
        ~message:msg ()
    in
    Format.printf "binding resource: %a (ρ = 1 at λ_g = %.4g)@."
      Fatnet_model.Utilization.pp_resource b.Fatnet_model.Utilization.resource
      b.Fatnet_model.Utilization.saturates_at
  end;
  if sweep then begin
    (* Grid evaluation on the model's domain pool; bit-identical to
       the sequential sweep at any [--domains] value. *)
    let s =
      Fatnet_model.Eval.Pool.with_pool ~domains (fun pool ->
          Fatnet_model.Sweep.up_to_saturation_pool pool ~system:sys ~message:msg ~steps ())
    in
    let table = Table.create ~columns:[ "lambda_g"; "mean latency" ] in
    List.iter
      (fun p ->
        Table.add_float_row table [ p.Fatnet_model.Sweep.lambda_g; p.Fatnet_model.Sweep.latency ])
      s.Fatnet_model.Sweep.points;
    Table.print table;
    Fatnet_report.Ascii_plot.print ~height:14
      [
        Fatnet_report.Series.create ~name:"mean latency"
          ~points:(Fatnet_model.Sweep.finite_points s);
      ]
  end
  else if not saturation then print_breakdown scn);
  Cli.write_metrics mopts metrics;
  Cli.write_trace topts tracer;
  Ok 0

open Cmdliner

let lambda =
  Arg.(
    value
    & opt (some float) None
    & info [ "lambda" ] ~doc:"Traffic generation rate λ_g (default 1e-4).")

let sweep = Arg.(value & flag & info [ "sweep" ] ~doc:"Sweep λ_g up to saturation.")
let steps = Arg.(value & opt int 12 & info [ "steps" ] ~doc:"Sweep points.")

let saturation =
  Arg.(value & flag & info [ "saturation" ] ~doc:"Print the model's saturation rate.")

let () =
  let term =
    Term.(
      const run $ Cli.scenario_file $ Cli.system_opts $ Cli.message_opts $ lambda $ sweep
      $ steps $ saturation $ Cli.domains_arg $ Cli.metrics_opts $ Cli.trace_opts)
  in
  exit (Cmd.eval' (Cmd.v (Cmd.info "cluster_model" ~doc:"Analytical latency model") term))
