(* Benchmark harness.

   Two layers:

   1. Bechamel micro-benchmarks — one Test.make per paper artifact
      (Tables 1–2, Figs. 3–7) timing the analytical-model evaluation
      for that artifact's configuration, plus substrate benchmarks
      (routing, event queue, simulator throughput).  These measure
      the cost of the "practical evaluation tool" the paper argues
      for: a model evaluation must be orders of magnitude cheaper
      than a simulation.

   2. Figure regeneration — prints the model and (scaled-down)
      simulation series for every figure, i.e. the rows behind each
      plotted curve, plus the Section-4 light-load error table.

   Environment knobs:
     FATNET_BENCH_SIM=0        skip the simulation series (model only)
     FATNET_BENCH_SIM_STEPS=n  simulation points per curve (default 4)
     FATNET_BENCH_MEASURED=n   measured messages per point (default 4000) *)

open Bechamel
open Toolkit

module Figures = Fatnet_experiments.Figures
module Presets = Fatnet_model.Presets
module Latency = Fatnet_model.Latency
module Runner = Fatnet_sim.Runner

let env_int name default =
  match Sys.getenv_opt name with Some s -> (try int_of_string s with _ -> default) | None -> default

let with_sim = env_int "FATNET_BENCH_SIM" 1 <> 0
let sim_steps = env_int "FATNET_BENCH_SIM_STEPS" 4
let sim_measured = env_int "FATNET_BENCH_MEASURED" 4000

let sim_config =
  {
    Runner.quick_config with
    Runner.warmup = sim_measured / 10;
    measured = sim_measured;
    drain = sim_measured / 10;
  }

(* ---- micro-benchmarks ---- *)

let message32 = Presets.message ~m_flits:32 ~d_m_bytes:256.

(* Table 1: building and validating the two organizations. *)
let bench_table1 =
  Test.make ~name:"table1:build-organizations"
    (Staged.stage (fun () ->
         ignore (Fatnet_model.Params.validate Presets.org_1120);
         ignore (Fatnet_model.Params.validate Presets.org_544)))

(* Table 2: service-time derivation from network characteristics. *)
let bench_table2 =
  Test.make ~name:"table2:service-times"
    (Staged.stage (fun () ->
         ignore (Fatnet_model.Service_time.t_cn Presets.net1 ~message:message32);
         ignore (Fatnet_model.Service_time.t_cs Presets.net2 ~message:message32);
         ignore
           (Fatnet_model.Service_time.relaxing_factor ~ecn1:Presets.net2 ~icn2:Presets.net1)))

(* One model evaluation per figure, at mid-range load. *)
let bench_figure spec =
  let curve = List.hd spec.Figures.curves in
  let lambda_g = 0.5 *. spec.Figures.lambda_max in
  Test.make
    ~name:(spec.Figures.id ^ ":model-eval")
    (Staged.stage (fun () ->
         ignore
           (Latency.mean ~system:curve.Figures.system ~message:curve.Figures.message ~lambda_g
              ())))

(* Substrate benchmarks. *)
let bench_routing =
  let tree = Fatnet_topology.Mport_tree.create ~m:8 ~n:3 in
  let n = Fatnet_topology.Mport_tree.node_count tree in
  let rng = Fatnet_prng.Rng.create ~seed:1L () in
  Test.make ~name:"substrate:route-mport-tree"
    (Staged.stage (fun () ->
         let src = Fatnet_prng.Rng.int rng n in
         let dst = Fatnet_prng.Rng.int_excluding rng n ~excluding:src in
         ignore (Fatnet_topology.Mport_tree.route tree ~src ~dst)))

let bench_event_queue =
  let rng = Fatnet_prng.Rng.create ~seed:2L () in
  Test.make ~name:"substrate:event-queue-push-pop"
    (Staged.stage (fun () ->
         let q = Fatnet_sim.Event_queue.create () in
         for _ = 1 to 64 do
           Fatnet_sim.Event_queue.push q ~time:(Fatnet_prng.Rng.float rng) ()
         done;
         while not (Fatnet_sim.Event_queue.is_empty q) do
           ignore (Fatnet_sim.Event_queue.pop q)
         done))

let bench_sim_small =
  let system =
    Fatnet_model.Params.homogeneous ~m:4 ~tree_depth:1 ~clusters:4 ~icn1:Presets.net1
      ~ecn1:Presets.net2 ~icn2:Presets.net1
  in
  let config = { Runner.quick_config with Runner.warmup = 20; measured = 200; drain = 20 } in
  Test.make ~name:"substrate:simulate-240-messages"
    (Staged.stage (fun () ->
         ignore (Runner.run ~config ~system ~message:message32 ~lambda_g:1e-3 ())))

let micro_tests =
  Test.make_grouped ~name:"fatnet"
    [
      bench_table1;
      bench_table2;
      bench_figure Figures.fig3;
      bench_figure Figures.fig4;
      bench_figure Figures.fig5;
      bench_figure Figures.fig6;
      bench_figure Figures.fig7;
      bench_routing;
      bench_event_queue;
      bench_sim_small;
    ]

let run_micro_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances micro_tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  print_endline "== micro-benchmarks (ns per run, OLS on monotonic clock) ==";
  let rows = ref [] in
  Hashtbl.iter
    (fun measure per_test ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols_result ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (x :: _) -> x
              | _ -> nan
            in
            rows := (name, ns) :: !rows)
          per_test)
    results;
  List.sort (fun (a, _) (b, _) -> compare a b) !rows
  |> List.iter (fun (name, ns) -> Printf.printf "  %-40s %12.1f ns/run\n" name ns);
  print_newline ()

(* ---- figure regeneration ---- *)

let print_series spec series =
  let open Fatnet_report in
  let columns = "lambda_g" :: List.map (fun s -> s.Series.name) series in
  let table = Table.create ~columns in
  let xs =
    List.concat_map (fun s -> List.map fst s.Series.points) series |> List.sort_uniq compare
  in
  List.iter
    (fun x ->
      let cell s =
        match List.assoc_opt x s.Series.points with
        | Some y when Float.is_finite y -> Printf.sprintf "%.6g" y
        | Some _ -> "sat."
        | None -> "-"
      in
      Table.add_row table (Printf.sprintf "%.6g" x :: List.map cell series))
    xs;
  Printf.printf "== %s: %s ==\n" spec.Figures.id spec.Figures.title;
  Table.print table;
  print_newline ()

let regenerate_figures () =
  List.iter
    (fun spec ->
      let model = Figures.model_series spec ~steps:(max 8 sim_steps) in
      let sim =
        if with_sim then Figures.sim_series ~config:sim_config spec ~steps:sim_steps else []
      in
      print_series spec (model @ sim))
    Figures.all

let light_load_errors () =
  if with_sim then begin
    print_endline "== Section 4 claim: light-load model-vs-simulation error ==";
    List.iter
      (fun spec ->
        if List.exists (fun c -> c.Figures.simulate) spec.Figures.curves then
          List.iter
            (fun (label, err) ->
              Printf.printf "  %-6s %-8s %+.1f%%\n" spec.Figures.id label (100. *. err))
            (Figures.light_load_error ~config:sim_config spec))
      Figures.all;
    print_endline "  (paper: 4 to 8 percent)";
    print_newline ()
  end

let () =
  print_endline "Tables 1 and 2 (parsed presets):";
  Printf.printf "  org_1120: N=%d C=%d m=%d  |  org_544: N=%d C=%d m=%d\n"
    (Fatnet_model.Params.total_nodes Presets.org_1120)
    (Fatnet_model.Params.cluster_count Presets.org_1120)
    Presets.org_1120.Fatnet_model.Params.m
    (Fatnet_model.Params.total_nodes Presets.org_544)
    (Fatnet_model.Params.cluster_count Presets.org_544)
    Presets.org_544.Fatnet_model.Params.m;
  Printf.printf "  Net.1: bw=%g α_n=%g α_s=%g  |  Net.2: bw=%g α_n=%g α_s=%g\n\n"
    Presets.net1.Fatnet_model.Params.bandwidth Presets.net1.Fatnet_model.Params.network_latency
    Presets.net1.Fatnet_model.Params.switch_latency Presets.net2.Fatnet_model.Params.bandwidth
    Presets.net2.Fatnet_model.Params.network_latency
    Presets.net2.Fatnet_model.Params.switch_latency;
  run_micro_benchmarks ();
  regenerate_figures ();
  light_load_errors ()
