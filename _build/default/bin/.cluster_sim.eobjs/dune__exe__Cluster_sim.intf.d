bin/cluster_sim.mli:
