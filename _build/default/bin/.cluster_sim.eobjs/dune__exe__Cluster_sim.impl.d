bin/cluster_sim.ml: Arg Cmd Cmdliner Fatnet_model Fatnet_sim Fatnet_stats Fatnet_workload Format List Option Printf Term
