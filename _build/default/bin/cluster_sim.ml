(* Run one discrete-event simulation from the command line.

   `cluster_sim --org 544 --m-flits 32 --lambda 1e-4 --full`
   `cluster_sim --clusters 4 --depth 2 --m 4 --lambda 2e-3 --hotspot 0 --hotspot-fraction 0.2` *)

module Params = Fatnet_model.Params
module Presets = Fatnet_model.Presets
module Runner = Fatnet_sim.Runner

let build_system org clusters depth m =
  match org with
  | Some "1120" -> Presets.org_1120
  | Some "544" -> Presets.org_544
  | Some other -> invalid_arg ("unknown organization: " ^ other ^ " (use 1120 or 544)")
  | None ->
      Params.homogeneous ~m ~tree_depth:depth ~clusters ~icn1:Presets.net1 ~ecn1:Presets.net2
        ~icn2:Presets.net1

let run org clusters depth m m_flits flit_bytes lambda full seed store_and_forward hotspot
    hotspot_fraction p_local trace_path =
  let system = build_system org clusters depth m in
  let message = Presets.message ~m_flits ~d_m_bytes:flit_bytes in
  let destination =
    match (hotspot, p_local) with
    | Some node, _ -> Fatnet_workload.Destination.Hotspot { node; fraction = hotspot_fraction }
    | None, Some p -> Fatnet_workload.Destination.Local { p_local = p }
    | None, None -> Fatnet_workload.Destination.Uniform
  in
  let base = if full then Runner.default_config else Runner.quick_config in
  let trace_channel = Option.map open_out trace_path in
  let trace =
    Option.map
      (fun oc ->
        output_string oc "serial,src,dst,generated_at,delivered_at,latency,class,measured\n";
        fun (t : Runner.trace_record) ->
          Printf.fprintf oc "%d,%d,%d,%.9g,%.9g,%.9g,%s,%b\n" t.Runner.serial t.Runner.src
            t.Runner.dst t.Runner.generated_at t.Runner.delivered_at
            (t.Runner.delivered_at -. t.Runner.generated_at)
            (if t.Runner.is_intra then "intra" else "inter")
            t.Runner.measured)
      trace_channel
  in
  let config =
    {
      base with
      Runner.seed;
      destination;
      cd_mode = (if store_and_forward then Runner.Store_and_forward else Runner.Cut_through);
      trace;
    }
  in
  let r = Runner.run ~config ~system ~message ~lambda_g:lambda () in
  Option.iter close_out trace_channel;
  Option.iter (Printf.printf "trace written to %s\n") trace_path;
  Format.printf "system: @[%a@]@." Params.pp_system system;
  Printf.printf "λ_g=%g  generated=%d  measured-delivered=%d\n" lambda r.Runner.generated
    r.Runner.delivered;
  Format.printf "latency (all):   %a  ±%.3g (95%% CI)@." Fatnet_stats.Summary.pp
    r.Runner.latency r.Runner.ci95_half_width;
  Format.printf "latency (intra): %a@." Fatnet_stats.Summary.pp r.Runner.intra_latency;
  Format.printf "latency (inter): %a@." Fatnet_stats.Summary.pp r.Runner.inter_latency;
  print_endline "busiest channels:";
  List.iter
    (fun (desc, util) -> Printf.printf "  %5.1f%%  %s\n" (100. *. util) desc)
    r.Runner.bottlenecks;
  Printf.printf "sim end time=%g  events=%d  wall=%.2fs (%.2f Mevents/s)\n" r.Runner.end_time
    r.Runner.events r.Runner.wall_seconds
    (float_of_int r.Runner.events /. 1e6 /. r.Runner.wall_seconds);
  0

open Cmdliner

let org = Arg.(value & opt (some string) None & info [ "org" ] ~doc:"1120 or 544.")
let clusters = Arg.(value & opt int 4 & info [ "clusters" ] ~doc:"Cluster count (homogeneous).")
let depth = Arg.(value & opt int 2 & info [ "depth" ] ~doc:"Tree depth (homogeneous).")
let m = Arg.(value & opt int 4 & info [ "arity" ] ~doc:"Switch arity m (homogeneous).")
let m_flits = Arg.(value & opt int 32 & info [ "m-flits" ] ~doc:"Message length in flits.")
let flit_bytes = Arg.(value & opt float 256. & info [ "flit-bytes" ] ~doc:"Flit size in bytes.")
let lambda = Arg.(value & opt float 1e-4 & info [ "lambda" ] ~doc:"Traffic generation rate.")
let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper's full 10k/100k/10k protocol.")
let seed = Arg.(value & opt int64 0x0F17EE5L & info [ "seed" ] ~doc:"Random seed.")

let store_and_forward =
  Arg.(value & flag & info [ "store-and-forward" ] ~doc:"Store-and-forward C/Ds (ablation).")

let hotspot =
  Arg.(value & opt (some int) None & info [ "hotspot" ] ~doc:"Hot destination node id.")

let hotspot_fraction =
  Arg.(value & opt float 0.1 & info [ "hotspot-fraction" ] ~doc:"Hotspot traffic fraction.")

let p_local =
  Arg.(
    value
    & opt (some float) None
    & info [ "p-local" ] ~doc:"Probability a message stays in its cluster (locality pattern).")

let trace_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~doc:"Write a per-message CSV trace to this file.")

let () =
  let term =
    Term.(
      const run $ org $ clusters $ depth $ m $ m_flits $ flit_bytes $ lambda $ full $ seed
      $ store_and_forward $ hotspot $ hotspot_fraction $ p_local $ trace_path)
  in
  exit (Cmd.eval' (Cmd.v (Cmd.info "cluster_sim" ~doc:"Discrete-event wormhole simulation") term))
