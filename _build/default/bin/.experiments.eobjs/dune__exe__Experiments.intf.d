bin/experiments.mli:
