bin/experiments.ml: Arg Array Cmd Cmdliner Fatnet_experiments Fatnet_model Fatnet_numerics Fatnet_report Fatnet_sim Filename Float List Printf String Sys Term
