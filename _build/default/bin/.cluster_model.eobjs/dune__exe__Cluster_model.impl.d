bin/cluster_model.ml: Arg Cmd Cmdliner Fatnet_model Fatnet_report Float Format List Printf Term
