bin/cluster_model.mli:
