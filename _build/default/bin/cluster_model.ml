(* Evaluate the analytical model from the command line.

   `cluster_model --org 1120 --m-flits 32 --flit-bytes 256 --lambda 1e-4`
   `cluster_model --org 544 --sweep --steps 10`
   `cluster_model --clusters 4 --depth 2 --m 4 ... --saturation` *)

module Params = Fatnet_model.Params
module Latency = Fatnet_model.Latency
module Presets = Fatnet_model.Presets
module Table = Fatnet_report.Table

let build_system org clusters depth m =
  match org with
  | Some "1120" -> Presets.org_1120
  | Some "544" -> Presets.org_544
  | Some other -> invalid_arg ("unknown organization: " ^ other ^ " (use 1120 or 544)")
  | None ->
      Params.homogeneous ~m ~tree_depth:depth ~clusters ~icn1:Presets.net1 ~ecn1:Presets.net2
        ~icn2:Presets.net1

let print_breakdown system message lambda_g =
  let r = Latency.evaluate ~system ~message ~lambda_g () in
  Printf.printf "mean latency at λ_g=%g: %g\n\n" lambda_g r.Latency.mean_latency;
  let table =
    Table.create
      ~columns:[ "cluster"; "N_i"; "U_i"; "L_in"; "W_in"; "T_in"; "E_in"; "L_out"; "combined" ]
  in
  List.iter
    (fun c ->
      let open Latency in
      let i = c.intra in
      Table.add_row table
        ([ string_of_int c.cluster; string_of_int c.nodes; Printf.sprintf "%.4f" c.u ]
        @ List.map
            (fun x -> if Float.is_finite x then Printf.sprintf "%.5g" x else "sat.")
            [
              i.Fatnet_model.Intra.total;
              i.Fatnet_model.Intra.waiting;
              i.Fatnet_model.Intra.network;
              i.Fatnet_model.Intra.tail;
              (match c.inter with
              | None -> nan
              | Some x -> x.Fatnet_model.Inter.total);
              c.combined;
            ]))
    r.Latency.clusters;
  Table.print table

let run org clusters depth m m_flits flit_bytes lambda sweep steps saturation =
  let system = build_system org clusters depth m in
  let message = Presets.message ~m_flits ~d_m_bytes:flit_bytes in
  Format.printf "system: @[%a@]@.@." Params.pp_system system;
  if saturation then begin
    let sat = Latency.saturation_rate ~system ~message () in
    Printf.printf "saturation rate: λ_g = %g\n" sat;
    let b = Fatnet_model.Utilization.bottleneck ~system ~message () in
    Format.printf "binding resource: %a (ρ = 1 at λ_g = %.4g)@."
      Fatnet_model.Utilization.pp_resource b.Fatnet_model.Utilization.resource
      b.Fatnet_model.Utilization.saturates_at
  end;
  if sweep then begin
    let s = Fatnet_model.Sweep.up_to_saturation ~system ~message ~steps () in
    let table = Table.create ~columns:[ "lambda_g"; "mean latency" ] in
    List.iter
      (fun p -> Table.add_float_row table [ p.Fatnet_model.Sweep.lambda_g; p.Fatnet_model.Sweep.latency ])
      s.Fatnet_model.Sweep.points;
    Table.print table;
    Fatnet_report.Ascii_plot.print ~height:14
      [
        Fatnet_report.Series.create ~name:"mean latency"
          ~points:(Fatnet_model.Sweep.finite_points s);
      ]
  end
  else if not saturation then print_breakdown system message lambda;
  0

open Cmdliner

let org =
  Arg.(
    value
    & opt (some string) None
    & info [ "org" ] ~doc:"Table-1 organization: 1120 or 544. Overrides the homogeneous flags.")

let clusters = Arg.(value & opt int 4 & info [ "clusters" ] ~doc:"Cluster count (homogeneous).")
let depth = Arg.(value & opt int 2 & info [ "depth" ] ~doc:"Tree depth n_i (homogeneous).")
let m = Arg.(value & opt int 4 & info [ "arity" ] ~doc:"Switch arity m (homogeneous).")
let m_flits = Arg.(value & opt int 32 & info [ "m-flits" ] ~doc:"Message length in flits (M).")

let flit_bytes =
  Arg.(value & opt float 256. & info [ "flit-bytes" ] ~doc:"Flit size in bytes (d_m).")

let lambda = Arg.(value & opt float 1e-4 & info [ "lambda" ] ~doc:"Traffic generation rate λ_g.")
let sweep = Arg.(value & flag & info [ "sweep" ] ~doc:"Sweep λ_g up to saturation.")
let steps = Arg.(value & opt int 12 & info [ "steps" ] ~doc:"Sweep points.")

let saturation =
  Arg.(value & flag & info [ "saturation" ] ~doc:"Print the model's saturation rate.")

let () =
  let term =
    Term.(
      const run $ org $ clusters $ depth $ m $ m_flits $ flit_bytes $ lambda $ sweep $ steps
      $ saturation)
  in
  exit (Cmd.eval' (Cmd.v (Cmd.info "cluster_model" ~doc:"Analytical latency model") term))
