(* Traffic patterns: the paper's future work, explored with the
   simulator.

   The analytical model assumes uniform destinations (Assumption 2).
   The paper's conclusion promises non-uniform traffic as future
   work; the simulator already supports two such patterns —
   cluster-local traffic and a hotspot — so we can quantify how far
   the uniform-traffic model drifts as the pattern skews.

   Run with: dune exec examples/traffic_patterns.exe *)

module Presets = Fatnet_model.Presets
module Latency = Fatnet_model.Latency
module Runner = Fatnet_sim.Runner
module D = Fatnet_workload.Destination

let system =
  Fatnet_model.Params.homogeneous ~m:4 ~tree_depth:2 ~clusters:4 ~icn1:Presets.net1
    ~ecn1:Presets.net2 ~icn2:Presets.net1

let message = Presets.message ~m_flits:32 ~d_m_bytes:256.

let config = { Runner.quick_config with Runner.warmup = 500; measured = 8000; drain = 500 }

let () =
  let saturation = Latency.saturation_rate ~system ~message () in
  let lambda_g = 0.4 *. saturation in
  let model = Latency.mean ~system ~message ~lambda_g () in
  Printf.printf
    "16-node clusters x 4, λ_g = %.4g (40%% of predicted saturation)\n\
     uniform-traffic model prediction: %.4g\n\n"
    lambda_g model;
  let table =
    Fatnet_report.Table.create
      ~columns:[ "pattern"; "sim mean"; "sim p99"; "intra share %"; "vs model %" ]
  in
  let run name destination =
    let r = Runner.run ~config:{ config with Runner.destination } ~system ~message ~lambda_g () in
    let mean = r.Runner.latency.Fatnet_stats.Summary.mean in
    let intra_share =
      100.
      *. float_of_int r.Runner.intra_latency.Fatnet_stats.Summary.count
      /. float_of_int r.Runner.latency.Fatnet_stats.Summary.count
    in
    Fatnet_report.Table.add_row table
      [
        name;
        Printf.sprintf "%.4g" mean;
        Printf.sprintf "%.4g" r.Runner.latency.Fatnet_stats.Summary.p99;
        Printf.sprintf "%.1f" intra_share;
        Printf.sprintf "%+.1f" (100. *. (mean -. model) /. model);
      ]
  in
  run "uniform (Assumption 2)" D.Uniform;
  List.iter
    (fun p -> run (Printf.sprintf "local p=%.2f" p) (D.Local { p_local = p }))
    [ 0.25; 0.5; 0.75; 0.9 ];
  (* The locality pattern is symmetric enough that the model extends
     to it (Fatnet_model.Pattern): compare its predictions too. *)
  Printf.printf "\nlocality-extended model (this repository's extension of the paper):\n";
  List.iter
    (fun p ->
      let predicted =
        Fatnet_model.Pattern.mean
          ~pattern:(Fatnet_model.Pattern.Local { p_local = p })
          ~system ~message ~lambda_g ()
      in
      Printf.printf "  local p=%.2f -> model %.4g\n" p predicted)
    [ 0.25; 0.5; 0.75; 0.9 ];
  print_newline ();
  List.iter
    (fun f -> run (Printf.sprintf "hotspot %.0f%% -> node 0" (100. *. f)) (D.Hotspot { node = 0; fraction = f }))
    [ 0.1; 0.25; 0.4 ];
  Fatnet_report.Table.print table;
  print_endline
    "\nReading: locality pulls traffic off the slow egress networks, so latency\n\
     falls well below the uniform-traffic prediction; a hotspot concentrates\n\
     ejection-channel contention at one node and blows the tail latency up long\n\
     before the mean moves much. Extending the analytical model to these\n\
     patterns is exactly the future work the paper names."
