(* Capacity planning: the design-space exploration the paper's
   conclusion advertises ("a practical evaluation tool that can help
   system designers to explore the design space").

   Question: a site must host 256 nodes and sustain a per-node
   message rate with a mean latency budget.  Should it build a few
   big clusters or many small ones, and with which switch arity?
   The analytical model answers in milliseconds per configuration —
   no simulation required.

   Run with: dune exec examples/capacity_planning.exe *)

module Params = Fatnet_model.Params
module Presets = Fatnet_model.Presets
module Latency = Fatnet_model.Latency

let target_nodes = 256

let message = Presets.message ~m_flits:64 ~d_m_bytes:256.

let latency_budget = 120.

(* Enumerate organizations with exactly [target_nodes] nodes built
   from identical clusters: C clusters of 2*(m/2)^n nodes, subject to
   C = 2*(m/2)^(n_c) for some n_c. *)
let organizations () =
  List.concat_map
    (fun m ->
      List.concat_map
        (fun n ->
          let size = Params.cluster_size ~m ~tree_depth:n in
          if target_nodes mod size = 0 then begin
            let c = target_nodes / size in
            match Params.icn2_depth_for ~m ~clusters:c with
            | Some _ when c >= 2 ->
                [
                  Params.homogeneous ~m ~tree_depth:n ~clusters:c ~icn1:Presets.net1
                    ~ecn1:Presets.net2 ~icn2:Presets.net1;
                ]
            | _ -> []
          end
          else [])
        [ 1; 2; 3; 4; 5; 6 ])
    [ 4; 8; 16 ]

let () =
  Printf.printf "Design space for %d nodes, M=%d flits, budget %.0f time units:\n\n"
    target_nodes message.Params.length_flits latency_budget;
  let table =
    Fatnet_report.Table.create
      ~columns:
        [ "m"; "n_i"; "clusters"; "nodes/cluster"; "saturation λ_g"; "λ_g @ budget"; "zero-load" ]
  in
  let candidates =
    List.map
      (fun sys ->
        let saturation = Latency.saturation_rate ~system:sys ~message () in
        (* Highest sustainable rate within the latency budget, found
           by bisection on the model. *)
        let budget_rate =
          if Latency.mean ~system:sys ~message ~lambda_g:(0.999 *. saturation) () <= latency_budget
          then 0.999 *. saturation
          else
            Fatnet_numerics.Solver.boundary
              ~pred:(fun lambda_g ->
                let l = Latency.mean ~system:sys ~message ~lambda_g () in
                (not (Float.is_finite l)) || l > latency_budget)
              ~lo:0. ~hi:saturation ()
        in
        let zero_load = Latency.mean ~system:sys ~message ~lambda_g:1e-12 () in
        (sys, saturation, budget_rate, zero_load))
      (organizations ())
  in
  let ranked =
    List.sort (fun (_, _, a, _) (_, _, b, _) -> Float.compare b a) candidates
  in
  List.iter
    (fun (sys, saturation, budget_rate, zero_load) ->
      let c0 = sys.Params.clusters.(0) in
      Fatnet_report.Table.add_row table
        [
          string_of_int sys.Params.m;
          string_of_int c0.Params.tree_depth;
          string_of_int (Params.cluster_count sys);
          string_of_int (Params.cluster_size ~m:sys.Params.m ~tree_depth:c0.Params.tree_depth);
          Printf.sprintf "%.4g" saturation;
          Printf.sprintf "%.4g" budget_rate;
          Printf.sprintf "%.4g" zero_load;
        ])
    ranked;
  Fatnet_report.Table.print table;
  match ranked with
  | (best, _, rate, _) :: _ ->
      Printf.printf
        "\nBest organization: m=%d, %d clusters of %d nodes — sustains λ_g=%.4g within budget.\n"
        best.Params.m (Params.cluster_count best)
        (Params.cluster_size ~m:best.Params.m
           ~tree_depth:best.Params.clusters.(0).Params.tree_depth)
        rate;
      Printf.printf
        "The binding constraint is each cluster's concentrator/dispatcher (Eq. 37),\n\
         whose load grows with the cluster's node count: many small clusters spread\n\
         the egress traffic over many C/Ds and sustain the highest per-node rates,\n\
         at the price of a slightly higher zero-load latency (almost every message\n\
         crosses the slow egress networks when clusters are tiny).\n"
  | [] -> print_endline "no feasible organization"
