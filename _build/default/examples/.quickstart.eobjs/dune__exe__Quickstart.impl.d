examples/quickstart.ml: Fatnet_model Fatnet_report Fatnet_sim Format List Printf
