examples/traffic_patterns.mli:
