examples/bottleneck_analysis.ml: Array Fatnet_model Fatnet_report Float Format List Printf
