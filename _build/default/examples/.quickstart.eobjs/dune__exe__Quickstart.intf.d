examples/quickstart.mli:
