examples/capacity_planning.ml: Array Fatnet_model Fatnet_numerics Fatnet_report Float List Printf
