examples/protocol_study.ml: Fatnet_model Fatnet_report Fatnet_sim Fatnet_stats List Printf
