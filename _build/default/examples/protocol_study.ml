(* Protocol study: why Section 4's warm-up / measure / drain protocol
   looks the way it does, shown with this repository's instruments.

   The paper inhibits statistics for the first 10,000 messages, keeps
   100,000, and generates 10,000 more while the network drains.  This
   example measures (a) how the estimated mean moves as the warm-up
   grows, and (b) how the batch-means confidence interval tightens as
   the measured batch grows — on a moderate-load configuration where
   queues take a while to reach steady state.

   Run with: dune exec examples/protocol_study.exe *)

module Presets = Fatnet_model.Presets
module Runner = Fatnet_sim.Runner

let system =
  Fatnet_model.Params.homogeneous ~m:4 ~tree_depth:2 ~clusters:4 ~icn1:Presets.net1
    ~ecn1:Presets.net2 ~icn2:Presets.net1

let message = Presets.message ~m_flits:32 ~d_m_bytes:256.

let lambda_g =
  0.6 *. Fatnet_model.Latency.saturation_rate ~system ~message ()

let () =
  Printf.printf "64-node system at 60%% of the model's saturation rate (λ_g=%.4g)\n\n" lambda_g;

  print_endline "1. Warm-up sensitivity (10,000 measured messages each):";
  let table =
    Fatnet_report.Table.create ~columns:[ "warm-up"; "measured mean"; "shift vs longest" ]
  in
  let mean_for warmup =
    (Runner.run
       ~config:{ Runner.quick_config with Runner.warmup; measured = 10_000; drain = 1_000 }
       ~system ~message ~lambda_g ())
      .Runner.latency.Fatnet_stats.Summary.mean
  in
  let warmups = [ 0; 100; 1_000; 5_000; 10_000 ] in
  let means = List.map mean_for warmups in
  let reference = List.nth means (List.length means - 1) in
  List.iter2
    (fun w m ->
      Fatnet_report.Table.add_row table
        [
          string_of_int w;
          Printf.sprintf "%.4g" m;
          Printf.sprintf "%+.2f%%" (100. *. (m -. reference) /. reference);
        ])
    warmups means;
  Fatnet_report.Table.print table;
  print_endline
    "   (an unwarmed run under-estimates: early messages see empty queues —\n\
    \   the bias the paper's 10k warm-up removes)\n";

  print_endline "2. Confidence-interval width vs measured batch size (1,000 warm-up):";
  let table2 =
    Fatnet_report.Table.create
      ~columns:[ "measured"; "mean"; "95% CI half-width"; "relative" ]
  in
  List.iter
    (fun measured ->
      let r =
        Runner.run
          ~config:{ Runner.quick_config with Runner.warmup = 1_000; measured; drain = 1_000 }
          ~system ~message ~lambda_g ()
      in
      let mean = r.Runner.latency.Fatnet_stats.Summary.mean in
      Fatnet_report.Table.add_row table2
        [
          string_of_int measured;
          Printf.sprintf "%.4g" mean;
          Printf.sprintf "%.3g" r.Runner.ci95_half_width;
          Printf.sprintf "%.2f%%" (100. *. r.Runner.ci95_half_width /. mean);
        ])
    [ 2_000; 10_000; 50_000; 100_000 ];
  Fatnet_report.Table.print table2;
  print_endline
    "   (this is a deliberately heavy 60%-load point: latencies are strongly\n\
    \   correlated, so even 100k messages leave a few percent of CI — while at\n\
    \   the light-load points where the paper quotes its 4-8% accuracy, the\n\
    \   same batch size puts the CI well under one percent. Protocol size has\n\
    \   to be judged against the load region being measured.)"
