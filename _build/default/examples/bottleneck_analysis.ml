(* Bottleneck analysis: Section 4's "typical analysis" generalised.

   The paper observes that the inter-cluster networks — especially
   ICN2 — are the system bottleneck, and shows (Fig. 7) the effect of
   a 20% ICN2 bandwidth increase.  Here we sweep the upgrade factor
   over both Table-1 organizations and also try the alternative
   upgrade (faster ECN1s) to see which investment buys more.

   Run with: dune exec examples/bottleneck_analysis.exe *)

module Params = Fatnet_model.Params
module Presets = Fatnet_model.Presets
module Latency = Fatnet_model.Latency

let message = Presets.message ~m_flits:128 ~d_m_bytes:256.

let with_ecn1_bandwidth_scaled sys ~factor =
  {
    sys with
    Params.clusters =
      Array.map
        (fun c ->
          {
            c with
            Params.ecn1 =
              { c.Params.ecn1 with Params.bandwidth = c.Params.ecn1.Params.bandwidth *. factor };
          })
        sys.Params.clusters;
  }

let () =
  List.iter
    (fun (name, base) ->
      Printf.printf "== %s ==\n" name;
      (* Ask the model what binds, before sweeping anything. *)
      let top =
        Fatnet_model.Utilization.analyze ~system:base ~message
          ~lambda_g:1e-4 ()
      in
      Printf.printf "most-loaded resources (analytical, λ_g=1e-4):\n";
      List.iteri
        (fun rank e ->
          if rank < 3 then
            Format.printf "  %d. %a — ρ=%.3f, saturates at λ_g=%.4g@."
              (rank + 1) Fatnet_model.Utilization.pp_resource
              e.Fatnet_model.Utilization.resource e.Fatnet_model.Utilization.rho
              e.Fatnet_model.Utilization.saturates_at)
        top;
      let base_sat = Latency.saturation_rate ~system:base ~message () in
      let probe = 0.8 *. base_sat in
      let base_latency = Latency.mean ~system:base ~message ~lambda_g:probe () in
      Printf.printf "baseline: saturation λ_g=%.4g, latency at 80%% load %.4g\n\n" base_sat
        base_latency;
      let table =
        Fatnet_report.Table.create
          ~columns:
            [
              "upgrade";
              "factor";
              "saturation λ_g";
              "sat. gain %";
              "latency @ probe";
              "latency gain %";
            ]
      in
      let row label sys factor =
        let sat = Latency.saturation_rate ~system:sys ~message () in
        let l = Latency.mean ~system:sys ~message ~lambda_g:probe () in
        Fatnet_report.Table.add_row table
          [
            label;
            Printf.sprintf "%.1f" factor;
            Printf.sprintf "%.4g" sat;
            Printf.sprintf "%+.1f" (100. *. ((sat /. base_sat) -. 1.));
            (if Float.is_finite l then Printf.sprintf "%.4g" l else "sat.");
            (if Float.is_finite l then Printf.sprintf "%+.1f" (100. *. ((base_latency -. l) /. base_latency))
             else "-");
          ]
      in
      List.iter
        (fun factor ->
          row "ICN2 bandwidth" (Presets.with_icn2_bandwidth_scaled base ~factor) factor)
        [ 1.2; 1.4; 1.6 ];
      List.iter
        (fun factor -> row "ECN1 bandwidth" (with_ecn1_bandwidth_scaled base ~factor) factor)
        [ 1.2; 1.4; 1.6 ];
      Fatnet_report.Table.print table;
      print_newline ())
    [ ("N=1120, m=8 (Table 1, row 1)", Presets.org_1120); ("N=544, m=4 (Table 1, row 2)", Presets.org_544) ];
  print_endline
    "Reading: upgrading the concentrator-facing ICN2 moves the saturation point\n\
     (it is the first queue to diverge), while upgrading the ECN1s mostly lowers\n\
     the pre-saturation latency — the two investments fix different bottlenecks.\n\
     The N=544 system benefits more from the ICN2 upgrade, matching Fig. 7."
