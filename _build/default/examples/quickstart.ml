(* Quickstart: describe a heterogeneous cluster-of-clusters system,
   predict its mean message latency with the analytical model, and
   check the prediction against the discrete-event simulator.

   Run with: dune exec examples/quickstart.exe *)

module Params = Fatnet_model.Params
module Presets = Fatnet_model.Presets
module Latency = Fatnet_model.Latency
module Runner = Fatnet_sim.Runner

let () =
  (* A system of four clusters sharing 4-port switches: two small
     clusters (4 nodes each) and two larger ones (8 nodes each).
     Every cluster uses the paper's Net.1 for its internal fabric and
     the slower Net.2 for its egress network; the global ICN2 runs
     Net.1. *)
  let cluster depth = { Params.tree_depth = depth; icn1 = Presets.net1; ecn1 = Presets.net2 } in
  let system =
    Params.make_system ~m:4 ~icn2:Presets.net1 [ cluster 1; cluster 1; cluster 2; cluster 2 ]
  in
  Format.printf "system: @[%a@]@.@." Params.pp_system system;

  (* Messages of 32 flits, 256 bytes per flit. *)
  let message = Presets.message ~m_flits:32 ~d_m_bytes:256. in

  (* Where does the model say the network saturates? *)
  let saturation = Latency.saturation_rate ~system ~message () in
  Printf.printf "predicted saturation: λ_g = %.4g messages/node/time-unit\n\n" saturation;

  (* Predict and simulate at a few fractions of that rate. *)
  let table =
    Fatnet_report.Table.create
      ~columns:[ "load (% of sat)"; "λ_g"; "model"; "simulation"; "error %" ]
  in
  List.iter
    (fun percent ->
      let lambda_g = float_of_int percent /. 100. *. saturation in
      let model = Latency.mean ~system ~message ~lambda_g () in
      let sim =
        Runner.mean_latency ~config:Runner.quick_config ~system ~message ~lambda_g ()
      in
      Fatnet_report.Table.add_row table
        [
          string_of_int percent;
          Printf.sprintf "%.4g" lambda_g;
          Printf.sprintf "%.4g" model;
          Printf.sprintf "%.4g" sim;
          Printf.sprintf "%+.1f" (100. *. (model -. sim) /. sim);
        ])
    [ 10; 30; 50; 70 ];
  Fatnet_report.Table.print table;

  (* The per-cluster breakdown shows the heterogeneity: small
     clusters send almost everything through the egress networks. *)
  print_newline ();
  let r = Latency.evaluate ~system ~message ~lambda_g:(0.3 *. saturation) () in
  List.iter
    (fun c ->
      Printf.printf
        "cluster %d: %d nodes, U=%.3f (fraction of traffic leaving), latency %.4g\n"
        c.Latency.cluster c.Latency.nodes c.Latency.u c.Latency.combined)
    r.Latency.clusters;
  Printf.printf "\nweighted mean latency: %.4g\n" r.Latency.mean_latency
