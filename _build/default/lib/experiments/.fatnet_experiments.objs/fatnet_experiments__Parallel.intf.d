lib/experiments/parallel.mli:
