lib/experiments/ablations.ml: Fatnet_model Fatnet_report Fatnet_sim Float List Printf
