lib/experiments/figures.mli: Fatnet_model Fatnet_report Fatnet_sim
