lib/experiments/parallel.ml: Array Atomic Domain List
