lib/experiments/ablations.mli: Fatnet_report Fatnet_sim
