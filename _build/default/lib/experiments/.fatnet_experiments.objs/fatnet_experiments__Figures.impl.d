lib/experiments/figures.ml: Fatnet_model Fatnet_numerics Fatnet_report Fatnet_sim List Parallel Printf
