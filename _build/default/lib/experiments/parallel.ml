let recommended_domains () = max 1 (Domain.recommended_domain_count ())

type 'b slot = Pending | Done of 'b | Failed of exn

let map ?domains f xs =
  let n = List.length xs in
  let domains =
    match domains with
    | Some d -> max 1 (min d n)
    | None -> max 1 (min (recommended_domains ()) n)
  in
  if domains <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <- (try Done (f input.(i)) with exn -> Failed exn)
      done
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Done v -> v
         | Failed exn -> raise exn
         | Pending -> assert false)
  end
