(** Multicore helper for embarrassingly parallel experiment sweeps.

    Every simulation point is an independent, freshly seeded run, so
    sweeps parallelise trivially across OCaml 5 domains.  Results are
    identical to the sequential order regardless of the domain
    count. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] applies [f] to every element, distributing
    the work over up to [domains] domains (default: the runtime's
    recommended domain count, capped by the list length).  Order is
    preserved.  Exceptions raised by [f] are re-raised. *)

val recommended_domains : unit -> int
(** The runtime's recommendation (at least 1). *)
