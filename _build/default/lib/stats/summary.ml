type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p99 : float;
}

let of_welford w ~p50 ~p99 =
  {
    count = Welford.count w;
    mean = Welford.mean w;
    stddev = Welford.stddev w;
    min = Welford.min_value w;
    max = Welford.max_value w;
    p50;
    p99;
  }

let empty = { count = 0; mean = 0.; stddev = 0.; min = nan; max = nan; p50 = nan; p99 = nan }

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g p50=%.4g p99=%.4g" t.count
    t.mean t.stddev t.min t.max t.p50 t.p99
