(** Immutable summary of a sample set, as produced by the simulator's
    instrumentation at the end of a run. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p99 : float;
}

val of_welford : Welford.t -> p50:float -> p99:float -> t
(** Assemble a summary from a moments accumulator plus externally
    estimated quantiles. *)

val empty : t
(** All-zero summary (count 0, nan quantiles). *)

val pp : Format.formatter -> t -> unit
