lib/stats/welford.mli:
