lib/stats/summary.mli: Format Welford
