lib/stats/summary.ml: Format Welford
