lib/stats/quantile.mli:
