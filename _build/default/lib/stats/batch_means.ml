type t = {
  batch_size : int;
  mutable current_sum : float;
  mutable current_count : int;
  batch_stats : Welford.t;
}

let create ~batch_size =
  if batch_size < 1 then invalid_arg "Batch_means.create: batch_size >= 1";
  { batch_size; current_sum = 0.; current_count = 0; batch_stats = Welford.create () }

let add t x =
  t.current_sum <- t.current_sum +. x;
  t.current_count <- t.current_count + 1;
  if t.current_count = t.batch_size then begin
    Welford.add t.batch_stats (t.current_sum /. float_of_int t.batch_size);
    t.current_sum <- 0.;
    t.current_count <- 0
  end

let completed_batches t = Welford.count t.batch_stats

let mean t = if completed_batches t = 0 then nan else Welford.mean t.batch_stats

(* Two-sided Student-t critical values at 95% and 99% for small df,
   falling back to the normal quantile for df > 30. *)
let t_critical ~confidence ~df =
  let table_95 =
    [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
       2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
       2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]
  in
  let table_99 =
    [| 63.657; 9.925; 5.841; 4.604; 4.032; 3.707; 3.499; 3.355; 3.250; 3.169;
       3.106; 3.055; 3.012; 2.977; 2.947; 2.921; 2.898; 2.878; 2.861; 2.845;
       2.831; 2.819; 2.807; 2.797; 2.787; 2.779; 2.771; 2.763; 2.756; 2.750 |]
  in
  let pick table limit = if df <= 30 then table.(df - 1) else limit in
  if confidence >= 0.99 then pick table_99 2.576
  else if confidence >= 0.95 then pick table_95 1.96
  else (* generic normal approximation for lower confidence levels *)
    let alpha = 1. -. confidence in
    (* crude inverse-normal via Beasley-Springer-like rational fit at
       the few levels we use; 90% is the only other common case *)
    if alpha >= 0.1 then 1.645 else 1.96

let half_width t ~confidence =
  let k = completed_batches t in
  if k < 2 then nan
  else begin
    let s = Welford.stddev t.batch_stats in
    let crit = t_critical ~confidence ~df:(k - 1) in
    crit *. s /. sqrt (float_of_int k)
  end

let relative_half_width t ~confidence =
  let m = mean t in
  let hw = half_width t ~confidence in
  if Float.is_nan m || m = 0. then nan else Float.abs (hw /. m)
