(** The paper's validation configurations: Table 1 (system
    organizations) and Table 2 (network characteristics). *)

val net1 : Params.network
(** Net.1: bandwidth 500, network latency 0.01, switch latency 0.02.
    Used by every ICN1 and by ICN2. *)

val net2 : Params.network
(** Net.2: bandwidth 250, network latency 0.05, switch latency 0.01.
    Used by every ECN1. *)

val org_1120 : Params.system
(** Table 1, row 1: N = 1120, C = 32, m = 8; [n_i = 1] for clusters
    0–11, [n_i = 2] for 12–27, [n_i = 3] for 28–31. *)

val org_544 : Params.system
(** Table 1, row 2: N = 544, C = 16, m = 4; [n_i = 3] for clusters
    0–7, [n_i = 4] for 8–10, [n_i = 5] for 11–15. *)

val message : m_flits:int -> d_m_bytes:float -> Params.message
(** Message descriptor; the paper uses [M ∈ {32, 64, 128}] flits and
    [d_m ∈ {256, 512}] bytes. *)

val with_icn2_bandwidth_scaled : Params.system -> factor:float -> Params.system
(** Copy of a system with ICN2 bandwidth multiplied by [factor]
    (Fig. 7 uses [factor = 1.2]). *)
