lib/model/utilization.mli: Format Params Variants
