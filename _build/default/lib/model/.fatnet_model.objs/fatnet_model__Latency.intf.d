lib/model/latency.mli: Inter Intra Params Variants
