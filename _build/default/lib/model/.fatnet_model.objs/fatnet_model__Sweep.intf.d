lib/model/sweep.mli: Format Params Variants
