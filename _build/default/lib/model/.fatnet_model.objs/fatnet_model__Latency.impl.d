lib/model/latency.ml: Fatnet_numerics Inter Intra List Params Variants
