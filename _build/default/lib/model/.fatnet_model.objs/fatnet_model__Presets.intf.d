lib/model/presets.mli: Params
