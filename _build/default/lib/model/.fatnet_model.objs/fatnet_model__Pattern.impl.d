lib/model/pattern.ml: Latency Params
