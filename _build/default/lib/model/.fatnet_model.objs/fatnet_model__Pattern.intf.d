lib/model/pattern.mli: Latency Params Variants
