lib/model/service_time.mli: Params
