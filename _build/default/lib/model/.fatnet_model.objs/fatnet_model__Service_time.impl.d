lib/model/service_time.ml: Params
