lib/model/intra.ml: Array Fatnet_numerics Fatnet_queueing Fatnet_topology Params Service_time Variants
