lib/model/intra.mli: Params Variants
