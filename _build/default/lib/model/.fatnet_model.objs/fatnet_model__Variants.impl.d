lib/model/variants.ml: Format
