lib/model/presets.ml: List Params
