lib/model/inter.mli: Params Variants
