lib/model/inter.ml: Array Fatnet_numerics Fatnet_queueing Fatnet_topology List Params Service_time Variants
