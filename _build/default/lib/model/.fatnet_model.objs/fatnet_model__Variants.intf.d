lib/model/variants.mli: Format
