lib/model/sweep.ml: Fatnet_numerics Format Latency List
