lib/model/params.ml: Array Format List Printf Result
