lib/model/utilization.ml: Array Fatnet_topology Float Format Latency List Params Service_time Variants
