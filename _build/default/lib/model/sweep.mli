(** Traffic-rate sweeps of the analytical model — the x-axes of
    Figs. 3–7. *)

type point = { lambda_g : float; latency : float }

type t = { points : point list }

val linear :
  ?variants:Variants.t ->
  system:Params.system ->
  message:Params.message ->
  lo:float ->
  hi:float ->
  steps:int ->
  unit ->
  t
(** [steps] evenly spaced rates on [[lo, hi]] (inclusive); requires
    [steps >= 2] and [0. <= lo < hi].  Saturated points report
    [infinity]. *)

val up_to_saturation :
  ?variants:Variants.t ->
  ?margin:float ->
  system:Params.system ->
  message:Params.message ->
  steps:int ->
  unit ->
  t
(** Sweep from 0 to [margin] (default 0.95) times the model's
    saturation rate, so every point is finite. *)

val finite_points : t -> (float * float) list
(** Drop saturated points; pairs of [(lambda_g, latency)]. *)

val pp : Format.formatter -> t -> unit
