type lambda_i2 = Pair_average | Size_scaled

type source_variance = Draper_ghosh | Zero

type source_rate = Per_node | Network_total

type t = {
  lambda_i2 : lambda_i2;
  source_variance : source_variance;
  source_rate : source_rate;
  use_relaxing_factor : bool;
}

let default =
  {
    lambda_i2 = Pair_average;
    source_variance = Draper_ghosh;
    source_rate = Per_node;
    use_relaxing_factor = true;
  }

let pp ppf t =
  Format.fprintf ppf "{λ_I2=%s; σ²=%s; λ_src=%s; δ=%b}"
    (match t.lambda_i2 with Pair_average -> "pair-average" | Size_scaled -> "size-scaled")
    (match t.source_variance with Draper_ghosh -> "draper-ghosh" | Zero -> "zero")
    (match t.source_rate with Per_node -> "per-node" | Network_total -> "network-total")
    t.use_relaxing_factor
