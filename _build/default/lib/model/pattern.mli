(** Extension of the model to non-uniform traffic — the future work
    the paper names in its conclusion.

    The model's only use of the destination distribution is through
    each cluster's outgoing probability [U_i] (Eq. 2 assumes uniform
    destinations).  Any destination pattern that remains symmetric
    within and across clusters is therefore modelled by replacing
    Eq. (2) with the pattern's own outgoing probability:

    - {b Uniform}: [U_i = 1 − (N_i − 1)/(N − 1)] (Eq. 2, the paper);
    - {b Local p}: a message stays in its own cluster with
      probability [p], so [U_i = 1 − p] wherever both local and
      remote destinations exist.

    Hotspot traffic breaks the symmetry assumptions (one node's
    ejection channel dominates), so it has no closed form here; use
    the simulator ({!Fatnet_workload.Destination.Hotspot}). *)

type t =
  | Uniform
  | Local of { p_local : float } (** [p_local ∈ [0, 1]] *)

val outgoing_probability : t -> system:Params.system -> cluster:int -> float
(** The pattern's [U_i]. *)

val evaluate :
  ?variants:Variants.t ->
  pattern:t ->
  system:Params.system ->
  message:Params.message ->
  lambda_g:float ->
  unit ->
  Latency.t
(** Eqs. (1)–(39) with the pattern's outgoing probabilities in place
    of Eq. (2). *)

val mean :
  ?variants:Variants.t ->
  pattern:t ->
  system:Params.system ->
  message:Params.message ->
  lambda_g:float ->
  unit ->
  float
