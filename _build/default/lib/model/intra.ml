type breakdown = {
  lambda_icn1 : float;
  eta_icn1 : float;
  mean_distance : float;
  network : float;
  waiting : float;
  tail : float;
  total : float;
}

let network_latency_for_hops ~eta ~t_cn ~t_cs ~message_flits ~h =
  if h < 1 then invalid_arg "Intra.network_latency_for_hops: h >= 1";
  let m = float_of_int message_flits in
  let stages = (2 * h) - 1 in
  let times =
    Fatnet_queueing.Blocking.stage_service_times ~final:(m *. t_cn)
      ~internal:(fun _ -> m *. t_cs)
      ~eta:(fun _ -> eta)
      ~stages
  in
  times.(0)

let evaluate ?(variants = Variants.default) ~(system : Params.system)
    ~(message : Params.message) ~lambda_g ~cluster ~u () =
  if lambda_g < 0. then invalid_arg "Intra.evaluate: negative lambda_g";
  if u < 0. || u > 1. then invalid_arg "Intra.evaluate: u out of [0,1]";
  let c = system.Params.clusters.(cluster) in
  let n_i = c.Params.tree_depth in
  let nodes = Params.cluster_nodes system cluster in
  let dist = Fatnet_topology.Distance.create ~m:system.Params.m ~n:n_i in
  let t_cn = Service_time.t_cn c.Params.icn1 ~message in
  let t_cs = Service_time.t_cs c.Params.icn1 ~message in
  (* Eq. (7): total rate offered to ICN1(i). *)
  let lambda_icn1 = float_of_int nodes *. lambda_g *. (1. -. u) in
  (* Eq. (10) via the distance distribution. *)
  let eta_icn1 = Fatnet_topology.Distance.channel_rate dist ~lambda:lambda_icn1 in
  (* Eq. (5): probability-weighted head latency. *)
  let network =
    Fatnet_topology.Distance.fold dist ~init:0. ~f:(fun acc ~h ~p ->
        acc
        +. p
           *. network_latency_for_hops ~eta:eta_icn1 ~t_cn ~t_cs
                ~message_flits:message.Params.length_flits ~h)
  in
  (* Eq. (19): tail-flit drain time. *)
  let tail =
    Fatnet_topology.Distance.fold dist ~init:0. ~f:(fun acc ~h ~p ->
        acc +. (p *. ((2. *. float_of_int (h - 1) *. t_cs) +. t_cn)))
  in
  (* Eqs. (15)–(18): M/G/1 source queue with the Draper–Ghosh
     variance approximation. *)
  let min_service = Service_time.message_time t_cn ~message in
  let variance =
    match variants.Variants.source_variance with
    | Variants.Draper_ghosh -> Fatnet_numerics.Float_utils.square (network -. min_service)
    | Variants.Zero -> 0.
  in
  let source_lambda =
    match variants.Variants.source_rate with
    | Variants.Per_node -> lambda_g *. (1. -. u)
    | Variants.Network_total -> lambda_icn1
  in
  let waiting =
    Fatnet_queueing.Mg1.waiting_time ~lambda:source_lambda
      ~service:{ Fatnet_queueing.Mg1.mean = network; variance }
  in
  {
    lambda_icn1;
    eta_icn1;
    mean_distance = Fatnet_topology.Distance.mean_links dist;
    network;
    waiting;
    tail;
    total = waiting +. network +. tail;
  }
