let net1 = { Params.bandwidth = 500.; network_latency = 0.01; switch_latency = 0.02 }

let net2 = { Params.bandwidth = 250.; network_latency = 0.05; switch_latency = 0.01 }

let cluster tree_depth = { Params.tree_depth; icn1 = net1; ecn1 = net2 }

let repeat k x = List.init k (fun _ -> x)

let org_1120 =
  Params.make_system ~m:8 ~icn2:net1
    (repeat 12 (cluster 1) @ repeat 16 (cluster 2) @ repeat 4 (cluster 3))

let org_544 =
  Params.make_system ~m:4 ~icn2:net1
    (repeat 8 (cluster 3) @ repeat 3 (cluster 4) @ repeat 5 (cluster 5))

let message ~m_flits ~d_m_bytes = { Params.length_flits = m_flits; flit_bytes = d_m_bytes }

let with_icn2_bandwidth_scaled sys ~factor =
  if factor <= 0. then invalid_arg "Presets.with_icn2_bandwidth_scaled: factor must be positive";
  {
    sys with
    Params.icn2 = { sys.Params.icn2 with Params.bandwidth = sys.Params.icn2.Params.bandwidth *. factor };
  }
