(** Ablation knobs for the readings of ambiguous equations (see
    DESIGN.md, "OCR/typography ambiguities").

    The default value reproduces our primary reading of the paper;
    the alternatives let the benches quantify how much each choice
    matters. *)

type lambda_i2 =
  | Pair_average
      (** Eq. (23), primary reading: the ICN2 per-C/D rate from the
          (i,j) viewpoint is the average of the two endpoints' C/D
          injection rates, [λ_g (N_i U_i + N_j U_j) / 2]. *)
  | Size_scaled
      (** Alternative reading keeping the OCR's [(N_i+N_j)/(N_i N_j)]
          factor: [λ_g (N_i U_i + N_j U_j) (N_i+N_j) / (2 N_i N_j)]. *)

type source_variance =
  | Draper_ghosh
      (** Eq. (17): [σ² = (T − M·t_cn)²], the variance approximation
          of Draper & Ghosh. *)
  | Zero  (** Treat the source queue as M/D/1. *)

type source_rate =
  | Per_node
      (** The source queue at a node sees that node's own generation
          rate, [λ_g·(1−U)] intra and [λ_g·U] inter.  This is the
          physically meaningful reading, and the only one consistent
          with the paper's figures: with it, the first component to
          saturate is the concentrator/dispatcher queue, whose
          divergence rate coincides with the x-axis extent of every
          one of Figs. 3–6 (see DESIGN.md). *)
  | Network_total
      (** Literal reading of Eqs. (18)/(31): reuse the network-wide
          rates λ_I1/λ_E1 in the source queue.  Saturates roughly 4×
          earlier than the figures' ranges. *)

type t = {
  lambda_i2 : lambda_i2;
  source_variance : source_variance;
  source_rate : source_rate;
  use_relaxing_factor : bool; (** apply Eq. (28)'s δ to ICN2 waits *)
}

val default : t
(** [Pair_average], [Draper_ghosh], [Per_node], relaxing factor
    on. *)

val pp : Format.formatter -> t -> unit
