(** Analytical resource-utilization breakdown — which queue or channel
    class the model expects to saturate first, and at what load.

    Section 4's "typical analysis" identifies the inter-cluster
    networks, especially ICN2, as the bottleneck; this module makes
    that reasoning a first-class query instead of a by-product of
    sweeping latency to divergence.  Each resource's utilization is
    the ρ of the queue the model attaches to it; the saturation rate
    scales as [λ_sat = λ_g / ρ] per resource, so the minimum over
    resources reproduces {!Latency.saturation_rate} up to the
    blocking-recursion terms. *)

type resource =
  | Intra_channel of int        (** ICN1 channels of a cluster *)
  | Intra_source of int         (** source queue into ICN1 *)
  | Egress_channel of int * int (** ECN1 channels, pair (i, j) view *)
  | Egress_source of int        (** source queue into ECN1 *)
  | Icn2_channel of int * int   (** ICN2 channels, pair (i, j) view *)
  | Cd_queue of int * int       (** concentrator/dispatcher, pair (i, j) *)

type entry = {
  resource : resource;
  rho : float;           (** utilization at the queried [lambda_g] *)
  saturates_at : float;  (** the λ_g where this ρ reaches 1 *)
}

val analyze :
  ?variants:Variants.t ->
  system:Params.system ->
  message:Params.message ->
  lambda_g:float ->
  unit ->
  entry list
(** Every resource's utilization at [lambda_g], sorted most-loaded
    first. *)

val bottleneck :
  ?variants:Variants.t ->
  system:Params.system ->
  message:Params.message ->
  unit ->
  entry
(** The resource with the lowest [saturates_at] (evaluated at a
    nominal light load; ρ is linear in λ_g so the ranking is
    load-independent). *)

val pp_resource : Format.formatter -> resource -> unit
