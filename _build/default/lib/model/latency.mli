(** Top-level mean message latency, Eqs. (1)–(3).

    Cluster [i]'s mean latency combines the intra- and inter-cluster
    components with the outgoing probability
    [U_i = 1 − (N_i − 1)/(N − 1)] (Eq. 2); the system latency is the
    node-weighted average over clusters (Eq. 3). *)

type cluster_result = {
  cluster : int;
  nodes : int;
  u : float;                        (** Eq. (2) *)
  intra : Intra.breakdown;
  inter : Inter.breakdown option;   (** [None] for single-cluster systems *)
  combined : float;                 (** Eq. (1) *)
}

type t = {
  mean_latency : float;             (** Eq. (3); [infinity] past saturation *)
  clusters : cluster_result list;
}

val outgoing_probability : system:Params.system -> cluster:int -> float
(** Eq. (2). *)

val evaluate :
  ?variants:Variants.t ->
  ?outgoing:(int -> float) ->
  system:Params.system ->
  message:Params.message ->
  lambda_g:float ->
  unit ->
  t
(** Full evaluation with per-cluster breakdowns.  [outgoing]
    overrides Eq. (2)'s per-cluster outgoing probability — the hook
    {!Pattern} uses to model non-uniform destination patterns. *)

val mean :
  ?variants:Variants.t ->
  ?outgoing:(int -> float) ->
  system:Params.system ->
  message:Params.message ->
  lambda_g:float ->
  unit ->
  float
(** Just Eq. (3). *)

val is_saturated :
  ?variants:Variants.t ->
  system:Params.system ->
  message:Params.message ->
  lambda_g:float ->
  unit ->
  bool
(** True when the predicted latency is not finite. *)

val saturation_rate :
  ?variants:Variants.t ->
  ?tol:float ->
  system:Params.system ->
  message:Params.message ->
  unit ->
  float
(** The traffic generation rate at which the model first diverges
    (bisection on {!is_saturated}). *)
