type network = { bandwidth : float; network_latency : float; switch_latency : float }

type message = { length_flits : int; flit_bytes : float }

type cluster = { tree_depth : int; icn1 : network; ecn1 : network }

type system = { m : int; clusters : cluster array; icn2 : network; icn2_depth : int }

let beta net = 1. /. net.bandwidth

let int_pow base exp =
  let rec go acc base exp =
    if exp = 0 then acc
    else if exp land 1 = 1 then go (acc * base) (base * base) (exp asr 1)
    else go acc (base * base) (exp asr 1)
  in
  go 1 base exp

let cluster_size ~m ~tree_depth = 2 * int_pow (m / 2) tree_depth

let cluster_nodes sys i = cluster_size ~m:sys.m ~tree_depth:sys.clusters.(i).tree_depth

let total_nodes sys =
  Array.fold_left (fun acc c -> acc + cluster_size ~m:sys.m ~tree_depth:c.tree_depth) 0
    sys.clusters

let cluster_count sys = Array.length sys.clusters

let icn2_depth_for ~m ~clusters =
  let half = m / 2 in
  if half < 1 then None
  else begin
    (* valid depths start at 1: C = 2*(m/2)^n_c with n_c >= 1 *)
    let rec search n acc =
      if 2 * acc > clusters then None
      else if 2 * acc = clusters then Some n
      else if half = 1 then None
      else search (n + 1) (acc * half)
    in
    search 1 half
  end

let check_network name net =
  if net.bandwidth <= 0. then Error (name ^ ": bandwidth must be positive")
  else if net.network_latency < 0. then Error (name ^ ": negative network latency")
  else if net.switch_latency < 0. then Error (name ^ ": negative switch latency")
  else Ok ()

let validate sys =
  let ( let* ) = Result.bind in
  let* () =
    if sys.m < 2 || sys.m mod 2 <> 0 then Error "m must be even and >= 2" else Ok ()
  in
  let* () =
    if Array.length sys.clusters = 0 then Error "system needs at least one cluster" else Ok ()
  in
  let* () = check_network "icn2" sys.icn2 in
  let* () =
    Array.to_list sys.clusters
    |> List.mapi (fun i c -> (i, c))
    |> List.fold_left
         (fun acc (i, c) ->
           let* () = acc in
           let name = Printf.sprintf "cluster %d" i in
           let* () =
             if c.tree_depth < 1 then Error (name ^ ": tree depth must be >= 1") else Ok ()
           in
           let* () = check_network (name ^ " icn1") c.icn1 in
           check_network (name ^ " ecn1") c.ecn1)
         (Ok ())
  in
  let c = Array.length sys.clusters in
  if c = 1 then
    (* A single cluster never uses ICN2; any depth is accepted. *)
    if sys.icn2_depth >= 1 then Ok () else Error "icn2_depth must be >= 1"
  else if sys.icn2_depth < 1 then Error "icn2_depth must be >= 1"
  else if cluster_size ~m:sys.m ~tree_depth:sys.icn2_depth <> c then
    Error
      (Printf.sprintf "icn2_depth %d does not satisfy C = 2*(m/2)^n_c for C = %d, m = %d"
         sys.icn2_depth c sys.m)
  else Ok ()

let validate_exn sys =
  match validate sys with Ok () -> () | Error msg -> invalid_arg ("Params.validate: " ^ msg)

let make_system ~m ~icn2 ?icn2_depth clusters =
  if clusters = [] then invalid_arg "Params.make_system: no clusters";
  let c = List.length clusters in
  let icn2_depth =
    match icn2_depth with
    | Some d -> d
    | None -> (
        if c = 1 then 1
        else
          match icn2_depth_for ~m ~clusters:c with
          | Some d -> d
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Params.make_system: no n_c satisfies C = 2*(m/2)^n_c for C = %d, m = %d" c
                   m))
  in
  let sys = { m; clusters = Array.of_list clusters; icn2; icn2_depth } in
  validate_exn sys;
  sys

let homogeneous ~m ~tree_depth ~clusters ~icn1 ~ecn1 ~icn2 =
  make_system ~m ~icn2 (List.init clusters (fun _ -> { tree_depth; icn1; ecn1 }))

let pp_network ppf net =
  Format.fprintf ppf "{bw=%g; α_n=%g; α_s=%g}" net.bandwidth net.network_latency
    net.switch_latency

let pp_system ppf sys =
  Format.fprintf ppf "m=%d C=%d N=%d n_c=%d icn2=%a" sys.m (cluster_count sys)
    (total_nodes sys) sys.icn2_depth pp_network sys.icn2;
  Array.iteri
    (fun i c ->
      Format.fprintf ppf "@ cluster %d: n=%d N=%d icn1=%a ecn1=%a" i c.tree_depth
        (cluster_size ~m:sys.m ~tree_depth:c.tree_depth)
        pp_network c.icn1 pp_network c.ecn1)
    sys.clusters
