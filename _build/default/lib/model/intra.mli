(** Intra-cluster mean message latency, Section 3.1 (Eqs. 4–19).

    From cluster [i]'s point of view, a message staying inside the
    cluster sees [L_in = W_in + T_in + E_in]: the source-queue wait,
    the head-flit network latency through ICN1(i), and the tail-flit
    drain time. *)

type breakdown = {
  lambda_icn1 : float;  (** Eq. (7): message rate entering ICN1(i) *)
  eta_icn1 : float;     (** Eq. (10): per-channel rate in ICN1(i) *)
  mean_distance : float; (** Eq. (9): average links per message *)
  network : float;      (** [T_in], Eq. (5) *)
  waiting : float;      (** [W_in], Eq. (18); [infinity] past saturation *)
  tail : float;         (** [E_in], Eq. (19) *)
  total : float;        (** [L_in = W_in + T_in + E_in] *)
}

val evaluate :
  ?variants:Variants.t ->
  system:Params.system ->
  message:Params.message ->
  lambda_g:float ->
  cluster:int ->
  u:float ->
  unit ->
  breakdown
(** [evaluate ~system ~message ~lambda_g ~cluster ~u ()] computes the
    intra-cluster latency breakdown for cluster [cluster], where [u]
    is the probability (Eq. 2) that a message leaves the cluster.
    Requires [lambda_g >= 0.] and [0. <= u <= 1.]. *)

val network_latency_for_hops :
  eta:float -> t_cn:float -> t_cs:float -> message_flits:int -> h:int -> float
(** [T_h], Eqs. (13)–(14): mean head-flit latency of a [2h]-link
    journey ([2h − 1] stages) in a single tree whose channels all
    carry rate [eta].  Exposed for unit tests. *)
