let t_cn net ~(message : Params.message) =
  (0.5 *. net.Params.network_latency) +. (message.flit_bytes *. Params.beta net)

let t_cs net ~(message : Params.message) =
  net.Params.switch_latency +. (message.flit_bytes *. Params.beta net)

let message_time t ~(message : Params.message) = float_of_int message.length_flits *. t

let relaxing_factor ~ecn1 ~icn2 = Params.beta icn2 /. Params.beta ecn1
