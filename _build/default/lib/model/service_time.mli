(** Per-flit channel service times, Eqs. (11)–(12).

    A node–switch (or switch–node) hop costs
    [t_cn = 0.5·α_n + d_m·β]: the link crosses half a wire latency
    and no switch.  A switch–switch hop costs
    [t_cs = α_s + d_m·β]. *)

val t_cn : Params.network -> message:Params.message -> float
(** Node/switch hop time for one flit. *)

val t_cs : Params.network -> message:Params.message -> float
(** Switch/switch hop time for one flit. *)

val message_time : float -> message:Params.message -> float
(** [M · t]: time for a whole message to cross a channel with
    per-flit time [t]. *)

val relaxing_factor : ecn1:Params.network -> icn2:Params.network -> float
(** Eq. (28)'s relaxing factor [δ], implemented as
    [β_ICN2 / β_ECN1] so that a faster ICN2 ([β_ICN2 < β_ECN1])
    {e shrinks} the ICN2 blocking waits "proportional to the capacity
    of the ICN2 networks", as the paper's prose states.  (The scanned
    equation reads as the inverse ratio, but that direction inflates
    the waits and pushes the N=544 saturation point ~35 % below the
    x-range of Figs. 5–6; see DESIGN.md.) *)
