(** Inter-cluster mean message latency, Section 3.2 (Eqs. 20–39).

    A message leaving cluster [i] for cluster [j] ascends [r] links
    of ECN1(i), crosses the concentrator/dispatcher, makes a
    [2l]-link journey through ICN2, crosses cluster [j]'s C/D, and
    descends [v] links of ECN1(j).  Because the flow control is
    wormhole, the three networks are analysed as one merged pipeline
    of [K = r + v + 2l − 1] stages whose per-stage service times and
    channel rates switch networks partway (Eqs. 27 and 30). *)

type pair_breakdown = {
  dest : int;          (** the cluster [j] *)
  lambda_ecn1 : float; (** Eq. (22) *)
  lambda_icn2 : float; (** Eq. (23), per the selected variant *)
  eta_ecn1 : float;    (** Eq. (24) *)
  eta_icn2 : float;    (** Eq. (25) *)
  network : float;     (** [T_ex^(i,j)], Eq. (20) *)
  waiting : float;     (** [W_ex^(i,j)], Eq. (31) *)
  tail : float;        (** [E_ex^(i,j)], Eq. (33) *)
  cd_wait : float;     (** [2·W_c^(i,j)], Eq. (37), both C/D buffers *)
  latency : float;     (** [L_ex^(i,j)], Eq. (32) *)
}

type breakdown = {
  l_ex : float;   (** Eq. (35): average of [L_ex^(i,j)] over [j ≠ i] *)
  w_d : float;    (** Eq. (38): mean C/D wait *)
  total : float;  (** Eq. (39): [L_out = L_ex + W_d] *)
  pairs : pair_breakdown list; (** one per destination cluster *)
}

val evaluate :
  ?variants:Variants.t ->
  system:Params.system ->
  message:Params.message ->
  lambda_g:float ->
  cluster:int ->
  u:(int -> float) ->
  unit ->
  breakdown
(** [evaluate ~system ~message ~lambda_g ~cluster ~u ()] computes
    [L_out] from cluster [cluster]'s point of view; [u k] is cluster
    [k]'s outgoing probability (Eq. 2).  Requires at least two
    clusters and [lambda_g >= 0.]. *)
