(** Parameter records describing a heterogeneous cluster-of-clusters
    system (Section 2 of the paper).

    A system is [C] clusters sharing a switch arity [m].  Cluster [i]
    is an m-port [n_i]-tree of [N_i = 2*(m/2)^(n_i)] nodes with its
    own intra-cluster network ICN1(i) and egress network ECN1(i); the
    clusters are joined by concentrator/dispatchers to a global
    m-port [n_c]-tree ICN2 whose "nodes" are the [C] C/Ds, so
    [C = 2*(m/2)^(n_c)] must hold. *)

type network = {
  bandwidth : float;       (** bytes per time unit; [β = 1 / bandwidth] *)
  network_latency : float; (** [α_n], wire latency per link *)
  switch_latency : float;  (** [α_s], switch traversal latency *)
}

type message = {
  length_flits : int; (** [M], message length in flits *)
  flit_bytes : float; (** [d_m], flit length in bytes *)
}

type cluster = {
  tree_depth : int; (** [n_i] of the cluster's m-port n-tree *)
  icn1 : network;   (** intra-cluster network characteristics *)
  ecn1 : network;   (** inter-cluster egress network characteristics *)
}

type system = {
  m : int;                  (** switch arity, shared by every tree *)
  clusters : cluster array; (** one entry per cluster, length [C] *)
  icn2 : network;           (** global network characteristics *)
  icn2_depth : int;         (** [n_c]; must satisfy [C = 2*(m/2)^(n_c)] *)
}

val beta : network -> float
(** Per-byte transmission time [1 / bandwidth]. *)

val cluster_size : m:int -> tree_depth:int -> int
(** [N_i = 2 * (m/2)^(n_i)]. *)

val cluster_nodes : system -> int -> int
(** Node count of cluster [i]. *)

val total_nodes : system -> int
(** [N = Σ_i N_i]. *)

val cluster_count : system -> int
(** [C]. *)

val icn2_depth_for : m:int -> clusters:int -> int option
(** The [n_c] with [clusters = 2*(m/2)^(n_c)], when one exists. *)

val validate : system -> (unit, string) result
(** Check structural invariants: [m] even and positive, at least one
    cluster, positive depths, positive bandwidths and latencies, and
    [C = 2*(m/2)^(n_c)]. *)

val validate_exn : system -> unit
(** @raise Invalid_argument when {!validate} fails. *)

val make_system :
  m:int -> icn2:network -> ?icn2_depth:int -> cluster list -> system
(** Convenience constructor; infers [icn2_depth] from the cluster
    count when not supplied.  Validates. *)

val homogeneous :
  m:int -> tree_depth:int -> clusters:int -> icn1:network -> ecn1:network -> icn2:network ->
  system
(** A system of identical clusters; validates. *)

val pp_network : Format.formatter -> network -> unit
val pp_system : Format.formatter -> system -> unit
