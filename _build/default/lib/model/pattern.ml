type t = Uniform | Local of { p_local : float }

let outgoing_probability t ~system ~cluster =
  match t with
  | Uniform -> Latency.outgoing_probability ~system ~cluster
  | Local { p_local } ->
      if p_local < 0. || p_local > 1. then invalid_arg "Pattern: p_local must be in [0,1]";
      let size = Params.cluster_nodes system cluster in
      let total = Params.total_nodes system in
      (* Degenerate clusters fall back to whatever destinations
         exist, mirroring the workload generator's behaviour. *)
      if total - size = 0 then 0. else if size <= 1 then 1. else 1. -. p_local

let evaluate ?variants ~pattern ~system ~message ~lambda_g () =
  let outgoing cluster = outgoing_probability pattern ~system ~cluster in
  Latency.evaluate ?variants ~outgoing ~system ~message ~lambda_g ()

let mean ?variants ~pattern ~system ~message ~lambda_g () =
  (evaluate ?variants ~pattern ~system ~message ~lambda_g ()).Latency.mean_latency
