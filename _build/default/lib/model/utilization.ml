type resource =
  | Intra_channel of int
  | Intra_source of int
  | Egress_channel of int * int
  | Egress_source of int
  | Icn2_channel of int * int
  | Cd_queue of int * int

type entry = { resource : resource; rho : float; saturates_at : float }

let entry resource rho ~lambda_g =
  {
    resource;
    rho;
    saturates_at = (if rho > 0. then lambda_g /. rho else infinity);
  }

let analyze ?(variants = Variants.default) ~system ~message ~lambda_g () =
  Params.validate_exn system;
  if not (lambda_g > 0.) then invalid_arg "Utilization.analyze: lambda_g must be positive";
  let c_count = Params.cluster_count system in
  let u k = Latency.outgoing_probability ~system ~cluster:k in
  let m = float_of_int message.Params.length_flits in
  let dist_c = Fatnet_topology.Distance.create ~m:system.Params.m ~n:system.Params.icn2_depth in
  let t_cs_i2 = Service_time.t_cs system.Params.icn2 ~message in
  let entries = ref [] in
  let push e = entries := e :: !entries in
  for i = 0 to c_count - 1 do
    let c = system.Params.clusters.(i) in
    let nodes = float_of_int (Params.cluster_nodes system i) in
    let u_i = u i in
    let dist_i = Fatnet_topology.Distance.create ~m:system.Params.m ~n:c.Params.tree_depth in
    (* ICN1: channel occupancy is the message transfer time at local
       speed (Eq. 14's internal stage service). *)
    let t_cs_i = Service_time.t_cs c.Params.icn1 ~message in
    let lambda_icn1 = nodes *. lambda_g *. (1. -. u_i) in
    let eta_icn1 = Fatnet_topology.Distance.channel_rate dist_i ~lambda:lambda_icn1 in
    push (entry (Intra_channel i) (eta_icn1 *. m *. t_cs_i) ~lambda_g);
    (* Source queues: per-node rate times the head-latency floor. *)
    let t_cn_i = Service_time.t_cn c.Params.icn1 ~message in
    push (entry (Intra_source i) (lambda_g *. (1. -. u_i) *. m *. t_cn_i) ~lambda_g);
    let t_cn_e = Service_time.t_cn c.Params.ecn1 ~message in
    push (entry (Egress_source i) (lambda_g *. u_i *. m *. t_cn_e) ~lambda_g);
    (* Pairwise inter-cluster resources (Eqs. 22-25, 37). *)
    for j = 0 to c_count - 1 do
      if j <> i then begin
        let nodes_j = float_of_int (Params.cluster_nodes system j) in
        let u_j = u j in
        let lambda_ecn1 = lambda_g *. ((nodes *. u_i) +. (nodes_j *. u_j)) in
        let t_cs_e = Service_time.t_cs c.Params.ecn1 ~message in
        let eta_ecn1 = Fatnet_topology.Distance.channel_rate dist_i ~lambda:lambda_ecn1 in
        push (entry (Egress_channel (i, j)) (eta_ecn1 *. m *. t_cs_e) ~lambda_g);
        let lambda_icn2 =
          match variants.Variants.lambda_i2 with
          | Variants.Pair_average -> lambda_g *. ((nodes *. u_i) +. (nodes_j *. u_j)) /. 2.
          | Variants.Size_scaled ->
              lambda_g
              *. ((nodes *. u_i) +. (nodes_j *. u_j))
              *. (nodes +. nodes_j) /. (2. *. nodes *. nodes_j)
        in
        let eta_icn2 =
          lambda_icn2
          *. Fatnet_topology.Distance.mean_links dist_c
          /. (4. *. float_of_int system.Params.icn2_depth)
        in
        push (entry (Icn2_channel (i, j)) (eta_icn2 *. m *. t_cs_i2) ~lambda_g);
        push (entry (Cd_queue (i, j)) (lambda_icn2 *. m *. t_cs_i2) ~lambda_g)
      end
    done
  done;
  List.sort (fun a b -> Float.compare b.rho a.rho) !entries

let bottleneck ?variants ~system ~message () =
  match analyze ?variants ~system ~message ~lambda_g:1e-9 () with
  | top :: _ -> top
  | [] -> invalid_arg "Utilization.bottleneck: empty system"

let pp_resource ppf = function
  | Intra_channel i -> Format.fprintf ppf "ICN1(%d) channels" i
  | Intra_source i -> Format.fprintf ppf "source queue into ICN1(%d)" i
  | Egress_channel (i, j) -> Format.fprintf ppf "ECN1(%d) channels [pair (%d,%d)]" i i j
  | Egress_source i -> Format.fprintf ppf "source queue into ECN1(%d)" i
  | Icn2_channel (i, j) -> Format.fprintf ppf "ICN2 channels [pair (%d,%d)]" i j
  | Cd_queue (i, j) -> Format.fprintf ppf "concentrator/dispatcher [pair (%d,%d)]" i j
