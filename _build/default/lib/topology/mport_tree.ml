type endpoint = Node of int | Switch of int

type channel_kind = Injection | Ejection | Up | Down

type t = {
  m : int;
  n : int;
  half : int;                   (* m / 2 *)
  half_pow : int array;         (* half_pow.(i) = half^i, i in [0, n] *)
  node_count : int;
  switch_count : int;
  per_level : int;              (* switches per non-root level: 2*half^(n-1) *)
  root_offset : int;            (* first root switch id *)
  chan_src : int array;         (* encoded endpoint, see [encode] *)
  chan_dst : int array;
  chan_kind : channel_kind array;
  chan_table : (int, int) Hashtbl.t; (* (src, dst) encoded pair -> channel id *)
  degrees : int array;          (* outgoing channels per switch *)
}

let m t = t.m
let n t = t.n
let node_count t = t.node_count
let switch_count t = t.switch_count
let channel_count t = Array.length t.chan_src

(* Endpoints are encoded as a single int so channel lookup is one
   hashtable probe: nodes map to their id, switches follow. *)
let encode t = function Node x -> x | Switch s -> t.node_count + s

let pair_key t a b = (a * (t.node_count + t.switch_count)) + b

(* Switch id layout: levels 1..n-1 occupy [0, (n-1)*per_level) in level
   order, each level indexed by group * parallel-count + parallel; root
   switches occupy [root_offset, root_offset + half^(n-1)). *)
let switch_id t ~level ~group ~parallel =
  assert (level >= 1 && level < t.n);
  ((level - 1) * t.per_level) + (group * t.half_pow.(level - 1)) + parallel

let root_id t r = t.root_offset + r

let switch_level t s =
  if s < 0 || s >= t.switch_count then invalid_arg "Mport_tree.switch_level: id";
  if s >= t.root_offset then t.n else (s / t.per_level) + 1

let switches_at_level t level =
  if level < 1 || level > t.n then invalid_arg "Mport_tree.switches_at_level: level";
  let first, count =
    if level = t.n then (t.root_offset, t.half_pow.(t.n - 1))
    else ((level - 1) * t.per_level, t.per_level)
  in
  List.init count (fun i -> first + i)

let group_of_node t x level = x / t.half_pow.(level)

let leaf_switch t x =
  if t.n = 1 then root_id t 0 else switch_id t ~level:1 ~group:(group_of_node t x 1) ~parallel:0

let leaf_switch_of_node t x =
  if x < 0 || x >= t.node_count then invalid_arg "Mport_tree.leaf_switch_of_node: id";
  leaf_switch t x

let create ~m ~n =
  if m < 2 || m mod 2 <> 0 then invalid_arg "Mport_tree.create: m must be even and >= 2";
  if n < 1 then invalid_arg "Mport_tree.create: n must be >= 1";
  let half = m / 2 in
  let half_pow = Array.make (n + 1) 1 in
  for i = 1 to n do
    half_pow.(i) <- half_pow.(i - 1) * half
  done;
  let node_count = 2 * half_pow.(n) in
  let per_level = 2 * half_pow.(n - 1) in
  let root_count = half_pow.(n - 1) in
  let switch_count = ((n - 1) * per_level) + root_count in
  let root_offset = (n - 1) * per_level in
  let t =
    {
      m;
      n;
      half;
      half_pow;
      node_count;
      switch_count;
      per_level;
      root_offset;
      chan_src = [||];
      chan_dst = [||];
      chan_kind = [||];
      chan_table = Hashtbl.create 16;
      degrees = Array.make switch_count 0;
    }
  in
  let chans = ref [] and count = ref 0 in
  let add_link a b kind_ab kind_ba =
    chans := (encode t a, encode t b, kind_ab) :: (encode t b, encode t a, kind_ba) :: !chans;
    count := !count + 2
  in
  (* Node <-> leaf-switch links. *)
  for x = 0 to node_count - 1 do
    add_link (Node x) (Switch (leaf_switch t x)) Injection Ejection
  done;
  (* Switch-to-switch links between level l and l+1 (butterfly wiring). *)
  for level = 1 to n - 2 do
    let groups = 2 * half_pow.(n - level) in
    let par = half_pow.(level - 1) in
    for g = 0 to groups - 1 do
      for r = 0 to par - 1 do
        let lower = switch_id t ~level ~group:g ~parallel:r in
        for j = 0 to half - 1 do
          let upper =
            switch_id t ~level:(level + 1) ~group:(g / half) ~parallel:(r + (j * par))
          in
          add_link (Switch lower) (Switch upper) Up Down
        done
      done
    done
  done;
  (* Level n-1 <-> root links: each root reaches every level-(n-1) group. *)
  if n >= 2 then begin
    let groups = 2 * half in
    let par = half_pow.(n - 2) in
    for g = 0 to groups - 1 do
      for r = 0 to par - 1 do
        let lower = switch_id t ~level:(n - 1) ~group:g ~parallel:r in
        for j = 0 to half - 1 do
          add_link (Switch lower) (Switch (root_id t (r + (j * par)))) Up Down
        done
      done
    done
  end;
  let chan_src = Array.make !count 0 in
  let chan_dst = Array.make !count 0 in
  let chan_kind = Array.make !count Injection in
  let table = Hashtbl.create (2 * !count) in
  List.iteri
    (fun i (a, b, kind) ->
      chan_src.(i) <- a;
      chan_dst.(i) <- b;
      chan_kind.(i) <- kind;
      Hashtbl.replace table (pair_key t a b) i)
    !chans;
  let degrees = Array.make switch_count 0 in
  Array.iteri
    (fun i src ->
      ignore i;
      if src >= node_count then
        degrees.(src - node_count) <- degrees.(src - node_count) + 1)
    chan_src;
  { t with chan_src; chan_dst; chan_kind; chan_table = table; degrees }

let channel_kind t c =
  if c < 0 || c >= channel_count t then invalid_arg "Mport_tree.channel_kind: id";
  t.chan_kind.(c)

let decode t e = if e < t.node_count then Node e else Switch (e - t.node_count)

let channel_endpoints t c =
  if c < 0 || c >= channel_count t then invalid_arg "Mport_tree.channel_endpoints: id";
  (decode t t.chan_src.(c), decode t t.chan_dst.(c))

let channel_id t ~src ~dst =
  match Hashtbl.find_opt t.chan_table (pair_key t (encode t src) (encode t dst)) with
  | Some c -> c
  | None -> raise Not_found

let nca_level t ~src ~dst =
  if src = dst then invalid_arg "Mport_tree.nca_level: src = dst";
  if src < 0 || src >= t.node_count || dst < 0 || dst >= t.node_count then
    invalid_arg "Mport_tree.nca_level: node id";
  let rec find l =
    if l > t.n - 1 then t.n
    else if group_of_node t src l = group_of_node t dst l then l
    else find (l + 1)
  in
  find 1

let ascent_choices t = t.half_pow.(t.n - 1)

(* The deterministic D-mod-k ascent target: the destination's low
   base-(m/2) digits.  Low digits are uniform even conditioned on the
   destination lying outside the source's subtree (high digits), so
   all-pairs uniform traffic loads the up-channels of each level
   evenly — the balance Eq. (10) assumes.  (Packing the high digits
   instead skews the load towards the opposite subtree.) *)
let default_choice t dst = dst mod t.half_pow.(t.n - 1)

let route_endpoints ?choice t ~src ~dst =
  let h = nca_level t ~src ~dst in
  let choice =
    match choice with
    | None -> default_choice t dst
    | Some c ->
        if c < 0 then invalid_arg "Mport_tree.route_endpoints: negative choice";
        c mod ascent_choices t
  in
  (* Ascend towards the NCA-level switch selected by [choice]: the
     parallel index at level l is choice mod (m/2)^(l-1). *)
  let ascend = ref [] in
  let parallel = ref 0 in
  for l = 1 to h - 1 do
    let next_parallel = choice mod t.half_pow.(l) in
    parallel := next_parallel;
    let sw =
      if l + 1 = t.n then root_id t next_parallel
      else switch_id t ~level:(l + 1) ~group:(group_of_node t src (l + 1)) ~parallel:next_parallel
    in
    ascend := Switch sw :: !ascend
  done;
  (* Descend: parallel index at level l is the one above reduced
     modulo half^(l-1); groups follow the destination. *)
  let descend = ref [] in
  let down_parallel = ref !parallel in
  for l = h - 1 downto 1 do
    let p = !down_parallel mod t.half_pow.(l - 1) in
    down_parallel := p;
    let sw = switch_id t ~level:l ~group:(group_of_node t dst l) ~parallel:p in
    descend := Switch sw :: !descend
  done;
  (Node src :: Switch (leaf_switch t src) :: List.rev !ascend)
  @ List.rev (Node dst :: !descend)

let route ?choice t ~src ~dst =
  let eps = route_endpoints ?choice t ~src ~dst in
  let rec channels = function
    | a :: (b :: _ as rest) -> channel_id t ~src:a ~dst:b :: channels rest
    | [ _ ] | [] -> []
  in
  Array.of_list (channels eps)

let degree t s =
  if s < 0 || s >= t.switch_count then invalid_arg "Mport_tree.degree: id";
  t.degrees.(s)

let pp_endpoint ppf = function
  | Node x -> Format.fprintf ppf "node:%d" x
  | Switch s -> Format.fprintf ppf "switch:%d" s
