lib/topology/mport_tree.ml: Array Format Hashtbl List
