lib/topology/distance.ml: Array Fatnet_numerics
