lib/topology/mport_tree.mli: Format
