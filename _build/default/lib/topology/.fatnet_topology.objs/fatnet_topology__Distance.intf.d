lib/topology/distance.mli:
