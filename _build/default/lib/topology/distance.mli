(** Message-distance distribution on an m-port n-tree under uniform
    traffic — Eqs. (6), (8) and (9) of the paper.

    A message whose source and destination meet at NCA level [h]
    crosses [2h] links.  Under a uniform destination distribution the
    probability of each [h] follows from counting nodes per NCA
    level:

    - [P(h) = ((m/2)^h - (m/2)^(h-1)) / (N - 1)] for [h < n],
    - [P(n) = (2*(m/2)^n - (m/2)^(n-1)) / (N - 1)],

    which sums to one since [N = 2*(m/2)^n]. *)

type t

val create : m:int -> n:int -> t
(** Same preconditions as {!Mport_tree.create}. *)

val m : t -> int
val n : t -> int

val node_count : t -> int

val probability : t -> int -> float
(** [probability t h] is [P(h)] for [h] in [[1, n]]; zero outside. *)

val mean_links : t -> float
(** Average number of links crossed, [D = Σ_h 2h·P(h)] (Eqs. 8–9). *)

val fold : t -> init:'a -> f:('a -> h:int -> p:float -> 'a) -> 'a
(** Fold [f] over [h = 1 .. n] with the associated probability. *)

val channel_rate : t -> lambda:float -> float
(** Eq. (10): the per-channel message rate [λ·D / (4·n·N)] induced on
    the tree's channels by a network-wide arrival rate [lambda].
    (Also Eq. (24)/(25) when applied to ECN1/ICN2 with their own
    [lambda] conventions.) *)
