(** The m-port n-tree fat-tree topology (Lin, 2003), as used by the
    paper for every network in the system (ICN1, ECN1 and ICN2).

    An m-port n-tree has [N = 2*(m/2)^n] processing nodes and
    [(2n-1)*(m/2)^(n-1)] switches built from [m]-port switches.
    Levels are numbered 1 (leaf switches) to [n] (root switches);
    every non-root level holds [2*(m/2)^(n-1)] switches, the root
    level [(m/2)^(n-1)].

    The construction is digit-based: node [x] belongs, at level [l],
    to group [x / (m/2)^l]; a level-[l] switch is a (group, parallel)
    pair with parallel index in [[0, (m/2)^(l-1))], wired to the next
    level with butterfly wiring.  Root switches use all [m] ports
    downward, one per level-[(n-1)] group.

    Routing is the deterministic Up*/Down* scheme of the paper's
    reference [20]: ascend to the nearest common ancestor choosing
    up-ports by destination digits (D-mod-k), then descend by digit
    routing.  A source/destination pair at NCA level [h] crosses
    exactly [2h] links and [2h - 1] switches. *)

type t

type endpoint =
  | Node of int    (** processing node id, [0 .. node_count-1] *)
  | Switch of int  (** switch id, [0 .. switch_count-1] *)

type channel_kind =
  | Injection  (** node -> leaf switch *)
  | Ejection   (** leaf switch -> node *)
  | Up         (** switch -> higher-level switch *)
  | Down       (** switch -> lower-level switch *)

val create : m:int -> n:int -> t
(** [create ~m ~n] builds the topology.  Requires [m] even, [m >= 2],
    [n >= 1]. *)

val m : t -> int
val n : t -> int

val node_count : t -> int
(** [2 * (m/2)^n]. *)

val switch_count : t -> int
(** [(2n - 1) * (m/2)^(n-1)]. *)

val channel_count : t -> int
(** Total number of directed channels (two per physical link). *)

val switch_level : t -> int -> int
(** Level of a switch id, in [[1, n]]. *)

val switches_at_level : t -> int -> int list
(** All switch ids at a given level. *)

val leaf_switch_of_node : t -> int -> int
(** The level-1 (root when [n = 1]) switch a node attaches to. *)

val channel_kind : t -> int -> channel_kind
(** Kind of a channel id. *)

val channel_endpoints : t -> int -> endpoint * endpoint
(** Source and destination endpoints of a directed channel. *)

val channel_id : t -> src:endpoint -> dst:endpoint -> int
(** Id of the directed channel between adjacent endpoints.
    @raise Not_found if the endpoints are not adjacent. *)

val nca_level : t -> src:int -> dst:int -> int
(** Nearest-common-ancestor level [h] of two distinct nodes, in
    [[1, n]].  Requires [src <> dst]. *)

val ascent_choices : t -> int
(** Number of distinct up-path choices a source has,
    [(m/2)^(n-1)] — the root-switch count. *)

val route : ?choice:int -> t -> src:int -> dst:int -> int array
(** Directed channel ids along an Up*/Down* path from node [src] to
    node [dst].  The path has [2h] channels for NCA level [h]: one
    {!Injection}, [h-1] {!Up}, [h-1] {!Down}, one {!Ejection}
    ([h = n] paths touch a root switch; [h = 1] paths are injection
    followed by ejection through the shared leaf switch).

    The ascent phase has [(m/2)^(h-1)] equivalent NCA switches to aim
    for; [choice] (in [[0, ascent_choices)], reduced modulo the
    per-level parallel count) selects among them.  The default is
    the deterministic D-mod-k choice derived from the destination
    address; passing a uniformly random [choice] per message yields
    the balanced channel loads the analytical model assumes, which
    matters under non-uniform destination weights.  The descent is
    forced by the wiring either way.  Requires [src <> dst]. *)

val route_endpoints : ?choice:int -> t -> src:int -> dst:int -> endpoint list
(** The endpoint sequence of {!route}, starting with [Node src] and
    ending with [Node dst]; exposed for tests and debugging. *)

val degree : t -> int -> int
(** Number of channels leaving a switch (up + down + ejection); at
    most [m] by construction. *)

val pp_endpoint : Format.formatter -> endpoint -> unit
