type t = { m : int; n : int; node_count : int; probs : float array (* probs.(h-1) = P(h) *) }

let create ~m ~n =
  if m < 2 || m mod 2 <> 0 then invalid_arg "Distance.create: m must be even and >= 2";
  if n < 1 then invalid_arg "Distance.create: n must be >= 1";
  let half = m / 2 in
  let pow = Array.make (n + 1) 1 in
  for i = 1 to n do
    pow.(i) <- pow.(i - 1) * half
  done;
  let node_count = 2 * pow.(n) in
  let denom = float_of_int (node_count - 1) in
  let probs =
    Array.init n (fun i ->
        let h = i + 1 in
        if h < n then float_of_int (pow.(h) - pow.(h - 1)) /. denom
        else float_of_int ((2 * pow.(n)) - pow.(n - 1)) /. denom)
  in
  { m; n; node_count; probs }

let m t = t.m
let n t = t.n
let node_count t = t.node_count

let probability t h = if h < 1 || h > t.n then 0. else t.probs.(h - 1)

let mean_links t =
  Fatnet_numerics.Summation.sum_over t.n (fun i ->
      2. *. float_of_int (i + 1) *. t.probs.(i))

let fold t ~init ~f =
  let acc = ref init in
  Array.iteri (fun i p -> acc := f !acc ~h:(i + 1) ~p) t.probs;
  !acc

let channel_rate t ~lambda =
  lambda *. mean_links t /. (4. *. float_of_int t.n *. float_of_int t.node_count)
