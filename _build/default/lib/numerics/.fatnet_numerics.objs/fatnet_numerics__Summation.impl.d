lib/numerics/summation.ml: Array Float List
