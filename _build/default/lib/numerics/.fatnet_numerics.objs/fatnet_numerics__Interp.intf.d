lib/numerics/interp.mli:
