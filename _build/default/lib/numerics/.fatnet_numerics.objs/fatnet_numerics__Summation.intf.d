lib/numerics/summation.mli:
