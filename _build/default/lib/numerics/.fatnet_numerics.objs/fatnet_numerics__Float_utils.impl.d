lib/numerics/float_utils.ml: Float List
