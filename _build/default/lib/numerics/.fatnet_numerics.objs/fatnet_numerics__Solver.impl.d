lib/numerics/solver.ml: Float
