lib/numerics/solver.mli:
