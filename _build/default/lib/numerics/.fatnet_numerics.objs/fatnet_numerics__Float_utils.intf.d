lib/numerics/float_utils.mli:
