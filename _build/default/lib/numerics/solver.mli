(** Root bracketing and bisection.

    Used to locate the saturation point of the analytical model: the
    traffic rate at which predicted latency diverges (the M/G/1
    denominators cross zero). *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** [bisect ~f ~lo ~hi ()] finds [x] in [[lo, hi]] with [f x ≈ 0].
    Requires [f lo] and [f hi] to have opposite signs (zero counts as
    either).  [tol] is the interval width at which to stop (default
    [1e-12] relative to the bracket).  Raises [Invalid_argument] when
    the bracket does not straddle a sign change. *)

val find_upper_bracket :
  ?growth:float -> ?max_iter:int -> f:(float -> bool) -> lo:float -> unit -> float
(** [find_upper_bracket ~f ~lo ()] doubles outward from [lo] until
    [f x] becomes true, returning the first such [x].  Used to find a
    rate beyond saturation.  Raises [Not_found] after [max_iter]
    doublings (default 200). *)

val boundary :
  ?tol:float -> pred:(float -> bool) -> lo:float -> hi:float -> unit -> float
(** [boundary ~pred ~lo ~hi ()] assumes [pred] is monotone (false
    then true) on [[lo, hi]] with [pred lo = false] and
    [pred hi = true], and bisects to the switching point. *)
