type t = { xs : float array; ys : float array }

let create points =
  if Array.length points = 0 then invalid_arg "Interp.create: empty series";
  let pts = Array.copy points in
  Array.sort (fun (x1, _) (x2, _) -> Float.compare x1 x2) pts;
  Array.iteri
    (fun i (x, _) ->
      if i > 0 then
        let x0, _ = pts.(i - 1) in
        if x = x0 then invalid_arg "Interp.create: duplicate x value")
    pts;
  { xs = Array.map fst pts; ys = Array.map snd pts }

let eval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else begin
    (* Binary search for the segment containing x. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    let x0 = t.xs.(!lo) and x1 = t.xs.(!hi) in
    let y0 = t.ys.(!lo) and y1 = t.ys.(!hi) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  end

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))
