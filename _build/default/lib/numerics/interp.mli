(** Piecewise-linear interpolation over sampled (x, y) series.

    Used when comparing an analytical sweep against a simulation
    sweep sampled at different traffic rates. *)

type t

val create : (float * float) array -> t
(** [create points] requires at least one point; points are sorted by
    [x] internally.  Duplicate [x] values are rejected. *)

val eval : t -> float -> float
(** Linear interpolation; constant extrapolation outside the domain. *)

val domain : t -> float * float
(** Smallest and largest [x]. *)
