(** Compensated (Neumaier) summation.

    The analytical model sums many terms of very different magnitude
    (per-stage waiting times across deep recursions, probability-
    weighted latencies); compensated summation keeps those sums
    accurate without reordering. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Accumulate one term. *)

val total : t -> float
(** Current compensated total. *)

val sum : float list -> float
(** One-shot compensated sum of a list. *)

val sum_array : float array -> float
(** One-shot compensated sum of an array. *)

val sum_over : int -> (int -> float) -> float
(** [sum_over n f] is the compensated sum of [f 0 .. f (n-1)]. *)
