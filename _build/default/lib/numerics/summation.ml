type t = { mutable sum : float; mutable compensation : float }

let create () = { sum = 0.; compensation = 0. }

let add t x =
  let s = t.sum +. x in
  (* Neumaier's variant: compensate whichever operand lost bits. *)
  if Float.abs t.sum >= Float.abs x then
    t.compensation <- t.compensation +. ((t.sum -. s) +. x)
  else t.compensation <- t.compensation +. ((x -. s) +. t.sum);
  t.sum <- s

let total t = t.sum +. t.compensation

let sum xs =
  let t = create () in
  List.iter (add t) xs;
  total t

let sum_array xs =
  let t = create () in
  Array.iter (add t) xs;
  total t

let sum_over n f =
  let t = create () in
  for i = 0 to n - 1 do
    add t (f i)
  done;
  total t
