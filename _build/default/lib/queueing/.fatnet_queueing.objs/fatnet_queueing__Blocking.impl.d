lib/queueing/blocking.ml: Array
