lib/queueing/blocking.mli:
