(** The paper's channel-blocking wait approximation.

    Eq. (13)/(26): the mean time a message waits to acquire a channel
    at an internal network stage is approximated as

    [W = ½ · η · T²]

    where [η] is the channel's message rate and [T] the channel's
    mean service time.  This is the leading term of an M/G/1 wait
    with deterministic service at low utilisation; the paper uses it
    untruncated at all loads, which is a recognised source of error
    near saturation (Section 4). *)

val wait : eta:float -> service_time:float -> float
(** [½ η T²].  Requires [eta >= 0.]. *)

val stage_service_times :
  final:float -> internal:(int -> float) -> eta:(int -> float) -> stages:int -> float array
(** Backward recursion of Eq. (14)/(29): computes the mean channel
    service time [T_k] at each stage [k] of a [stages]-stage path.

    - [T_(stages-1) = final] (the destination always sinks flits);
    - [T_k = internal k + Σ_(s=k+1)^(stages-1) W_s] with
      [W_s = ½ · eta s · T_s²] for [k < stages-1].

    Returns the array of [T_k]; the network latency of the path is
    [T_0].  Requires [stages >= 1]. *)
