let wait ~eta ~service_time =
  if eta < 0. then invalid_arg "Blocking.wait: negative rate";
  0.5 *. eta *. service_time *. service_time

let stage_service_times ~final ~internal ~eta ~stages =
  if stages < 1 then invalid_arg "Blocking.stage_service_times: stages >= 1";
  let t = Array.make stages 0. in
  t.(stages - 1) <- final;
  (* Accumulate the downstream waits as we walk back towards the
     source (Eq. 14): each stage adds its own blocking wait on top. *)
  let downstream_waits = ref 0. in
  for k = stages - 2 downto 0 do
    let s = k + 1 in
    downstream_waits := !downstream_waits +. wait ~eta:(eta s) ~service_time:t.(s);
    t.(k) <- internal k +. !downstream_waits
  done;
  t
