lib/sim/wormhole.mli:
