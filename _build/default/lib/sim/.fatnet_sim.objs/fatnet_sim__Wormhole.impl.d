lib/sim/wormhole.ml: Array Event_queue Printf Queue
