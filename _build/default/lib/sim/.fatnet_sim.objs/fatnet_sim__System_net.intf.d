lib/sim/system_net.mli: Fatnet_model Fatnet_workload
