lib/sim/network.mli: Fatnet_topology
