lib/sim/system_net.ml: Array Fatnet_model Fatnet_workload Network Printf
