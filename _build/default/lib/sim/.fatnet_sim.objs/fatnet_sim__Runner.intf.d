lib/sim/runner.mli: Fatnet_model Fatnet_stats Fatnet_workload
