lib/sim/network.ml: Array Fatnet_topology List
