lib/sim/worm_approx.mli: Fatnet_model Runner
