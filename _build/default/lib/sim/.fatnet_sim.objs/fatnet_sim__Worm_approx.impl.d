lib/sim/worm_approx.ml: Array Event_queue Fatnet_model Fatnet_prng Fatnet_stats Fatnet_workload Float List Runner System_net Unix
