lib/sim/runner.ml: Array Fatnet_model Fatnet_prng Fatnet_stats Fatnet_workload Float List System_net Unix Wormhole
