type worm = {
  route : int array;
  flits : int;
  on_delivered : float -> unit;
  on_flit_delivered : int -> float -> unit;
  next_to_enter : int array;
      (* next_to_enter.(k): index of the flit that should next start
         crossing route.(k); doubles as the staleness check that makes
         advance attempts idempotent. *)
  mutable released : int;
      (* flits available for transmission at the source; [flits] for
         ordinary worms, grows one by one for gated worms *)
}

type gated = worm

type event =
  | Advance of worm * int * int (* flit j attempts to enter route.(k) *)
  | Arrive of worm * int * int  (* flit j lands at the end of route.(k) *)
  | Callback of (float -> unit)

type t = {
  hop_time : float array;
  is_ejection : bool array;
  reserved_by : worm option array;
  reserved_since : float array;
  busy_time : float array; (* cumulative reservation-held time per channel *)
  wire_free_at : float array;
  buffer : (worm * int) option array; (* flit occupying the downstream buffer *)
  waiters : (worm * int) Queue.t array; (* heads awaiting reservation, with route index *)
  queue : event Event_queue.t;
  mutable clock : float;
  mutable events : int;
  mutable busy : int;
}

let create ~channel_count ~hop_time ~is_ejection () =
  if channel_count <= 0 then invalid_arg "Wormhole.create: channel_count must be positive";
  let times = Array.init channel_count hop_time in
  Array.iteri
    (fun c tau ->
      if not (tau > 0.) then
        invalid_arg (Printf.sprintf "Wormhole.create: hop_time %d must be positive" c))
    times;
  {
    hop_time = times;
    is_ejection = Array.init channel_count is_ejection;
    reserved_by = Array.make channel_count None;
    reserved_since = Array.make channel_count 0.;
    busy_time = Array.make channel_count 0.;
    wire_free_at = Array.make channel_count 0.;
    buffer = Array.make channel_count None;
    waiters = Array.init channel_count (fun _ -> Queue.create ());
    queue = Event_queue.create ();
    clock = 0.;
    events = 0;
    busy = 0;
  }

let now t = t.clock

let schedule t ~time f =
  if time < t.clock then invalid_arg "Wormhole.schedule: time in the past";
  Event_queue.push t.queue ~time (Callback f)

let same_worm a b = a == b

(* Reserve [c] for [w] if free; otherwise queue the head.  Returns
   true when the reservation was granted immediately. *)
let try_reserve t c w k =
  match t.reserved_by.(c) with
  | None ->
      t.reserved_by.(c) <- Some w;
      t.reserved_since.(c) <- t.clock;
      t.busy <- t.busy + 1;
      ignore k;
      true
  | Some _ ->
      Queue.add (w, k) t.waiters.(c);
      false

let push_advance t ~time w j k = Event_queue.push t.queue ~time (Advance (w, j, k))

(* Release [c] and grant it to the next queued head, scheduling that
   head's advance at the current time. *)
let release t c =
  (match t.reserved_by.(c) with
  | Some _ ->
      t.busy <- t.busy - 1;
      t.busy_time.(c) <- t.busy_time.(c) +. (t.clock -. t.reserved_since.(c))
  | None -> ());
  t.reserved_by.(c) <- None;
  if not (Queue.is_empty t.waiters.(c)) then begin
    let w, k = Queue.pop t.waiters.(c) in
    t.reserved_by.(c) <- Some w;
    t.reserved_since.(c) <- t.clock;
    t.busy <- t.busy + 1;
    push_advance t ~time:t.clock w 0 k
  end

let handle_advance t w j k =
  let c = w.route.(k) in
  (* Staleness / idempotence: only the expected next flit may act. *)
  if w.next_to_enter.(k) = j then begin
    let reserved = match t.reserved_by.(c) with Some o -> same_worm o w | None -> false in
    let upstream_ready =
      if k = 0 then j < w.released
      else
        match t.buffer.(w.route.(k - 1)) with
        | Some (o, f) -> same_worm o w && f = j
        | None -> false
    in
    if reserved && upstream_ready then begin
      if t.wire_free_at.(c) > t.clock then
        (* Wire still busy with the previous flit: retry exactly when
           it frees. *)
        push_advance t ~time:t.wire_free_at.(c) w j k
      else begin
        (* The landing buffer must be clear of the previous flit, and
           that flit must already have *departed* (started crossing the
           next channel) — checking occupancy alone races with a flit
           still mid-wire at the same timestamp, which would land later
           and be overwritten. *)
        let target_free =
          t.is_ejection.(c)
          || (t.buffer.(c) = None && (j = 0 || w.next_to_enter.(k + 1) >= j))
        in
        if target_free then begin
          let tau = t.hop_time.(c) in
          w.next_to_enter.(k) <- j + 1;
          t.wire_free_at.(c) <- t.clock +. tau;
          if k > 0 then begin
            let upstream = w.route.(k - 1) in
            t.buffer.(upstream) <- None;
            if j = w.flits - 1 then
              (* Tail left the upstream buffer: that channel is free
                 for the next worm. *)
              release t upstream
            else
              (* The freed buffer lets the next flit start crossing
                 the upstream channel. *)
              push_advance t ~time:t.clock w (j + 1) (k - 1)
          end;
          if j + 1 < w.flits then
            (* Wire pacing: the next flit may enter this channel once
               the wire frees (other guards re-checked then). *)
            push_advance t ~time:(t.clock +. tau) w (j + 1) k;
          Event_queue.push t.queue ~time:(t.clock +. tau) (Arrive (w, j, k))
        end
        (* else: buffer full; the departing flit will reschedule us. *)
      end
    end
    (* else: not our reservation yet, or the flit has not arrived
       upstream; the grant or the upstream arrival reschedules. *)
  end

let handle_arrive t w j k =
  let c = w.route.(k) in
  if t.is_ejection.(c) then begin
    w.on_flit_delivered j t.clock;
    if j = w.flits - 1 then begin
      (* Tail delivered: the ejection channel frees immediately (the
         sink absorbed every flit). *)
      release t c;
      w.on_delivered t.clock
    end
  end
  else begin
    t.buffer.(c) <- Some (w, j);
    if j = 0 then begin
      (* Head: claim the next channel. *)
      let k' = k + 1 in
      if try_reserve t w.route.(k') w k' then push_advance t ~time:t.clock w 0 k'
    end
    else push_advance t ~time:t.clock w j (k + 1)
  end

let check_route t route flits =
  if Array.length route = 0 then invalid_arg "Wormhole.submit: empty route";
  if flits < 1 then invalid_arg "Wormhole.submit: flits >= 1";
  let last = Array.length route - 1 in
  Array.iteri
    (fun i c ->
      if c < 0 || c >= Array.length t.hop_time then invalid_arg "Wormhole.submit: channel id";
      if t.is_ejection.(c) <> (i = last) then
        invalid_arg "Wormhole.submit: route must end (and only end) in an ejection channel")
    route

let no_flit_callback _ _ = ()

let make_worm route flits on_flit_delivered on_delivered ~released =
  {
    route;
    flits;
    on_delivered;
    on_flit_delivered;
    next_to_enter = Array.make (Array.length route) 0;
    released;
  }

let submit t ~time ~route ~flits ?(on_flit_delivered = no_flit_callback) ~on_delivered () =
  if time < t.clock then invalid_arg "Wormhole.submit: time in the past";
  check_route t route flits;
  let w = make_worm route flits on_flit_delivered on_delivered ~released:flits in
  schedule t ~time (fun _ -> if try_reserve t route.(0) w 0 then push_advance t ~time:t.clock w 0 0)

let submit_gated t ~route ~flits ?(on_flit_delivered = no_flit_callback) ~on_delivered () =
  check_route t route flits;
  make_worm route flits on_flit_delivered on_delivered ~released:0

let release_flit t w j =
  if j <> w.released then invalid_arg "Wormhole.release_flit: flits must be released in order";
  if j >= w.flits then invalid_arg "Wormhole.release_flit: flit index out of range";
  w.released <- j + 1;
  if j = 0 then begin
    (* First flit: the worm now joins its injection channel's queue. *)
    if try_reserve t w.route.(0) w 0 then push_advance t ~time:t.clock w 0 0
  end
  else push_advance t ~time:t.clock w j 0

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, ev) ->
      t.clock <- time;
      t.events <- t.events + 1;
      (match ev with
      | Advance (w, j, k) -> handle_advance t w j k
      | Arrive (w, j, k) -> handle_arrive t w j k
      | Callback f -> f time);
      true

let run ?until t =
  let continue = ref true in
  while !continue do
    match until with
    | Some limit -> (
        match Event_queue.peek_time t.queue with
        | Some next when next <= limit -> ignore (step t)
        | Some _ | None -> continue := false)
    | None -> if not (step t) then continue := false
  done

let events_processed t = t.events

let busy_channels t = t.busy

let channel_busy_time t c =
  if c < 0 || c >= Array.length t.busy_time then
    invalid_arg "Wormhole.channel_busy_time: channel id";
  t.busy_time.(c)
  +. (match t.reserved_by.(c) with Some _ -> t.clock -. t.reserved_since.(c) | None -> 0.)

let iter_channels t f =
  Array.iteri
    (fun c reserved ->
      f c
        ~reserved:(reserved <> None)
        ~buffered_flit:(match t.buffer.(c) with Some (_, j) -> Some j | None -> None)
        ~waiters:(Queue.length t.waiters.(c)))
    t.reserved_by
