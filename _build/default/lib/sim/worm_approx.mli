(** Message-level wormhole approximation — a fast, intermediate-
    fidelity companion to the flit-level {!Wormhole} engine.

    One event per message-hop instead of ~2.5 per flit-hop (×50–100
    faster).  The approximation deliberately embodies the analytical
    model's occupancy assumptions so that it sits between the model
    and the flit simulator in fidelity:

    - a channel is held for [M·τ] from the moment the head starts
      crossing it (the model's per-stage service time, Eqs. 14/29);
    - the head advances hop by hop, waiting for each channel to
      free ([max] with the channel's release time — contention, but
      no reservation queues or flit-level back-pressure);
    - the tail arrives one pipeline drain after the head:
      [(M−1)·max τ] over the hops crossed so far (bottleneck
      pacing);
    - concentrator/dispatchers cut the head through immediately.

    Use it for wide design sweeps and as the `sim-engine` ablation;
    use {!Runner} (flit-level) for validation numbers. *)

type t

val create : channel_count:int -> hop_time:(int -> float) -> t

val now : t -> float

val schedule : t -> time:float -> (float -> unit) -> unit

val submit :
  t -> time:float -> segments:int array list -> flits:int -> on_delivered:(float -> unit) -> unit
(** Launch a message over its (already flattened) segment routes;
    [on_delivered] fires at the estimated tail arrival at the final
    destination. *)

val run : t -> unit
(** Drain the calendar. *)

val events_processed : t -> int

type result = {
  mean_latency : float;
  intra_mean : float;
  inter_mean : float;
  delivered : int;
  events : int;
  wall_seconds : float;
}

val simulate :
  ?config:Runner.config ->
  system:Fatnet_model.Params.system ->
  message:Fatnet_model.Params.message ->
  lambda_g:float ->
  unit ->
  result
(** The full Section-4 protocol (same configuration record as
    {!Runner}, ignoring [cd_mode]) on this engine. *)
