(** Binary-heap event calendar for the discrete-event simulator.

    Events are ordered by time, ties broken by insertion order so
    runs are deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Schedule an event.  [time] must be finite and non-negative. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option
(** Time of the earliest event, without removing it. *)
