type t = {
  prob : float array;   (* acceptance threshold per column *)
  alias : int array;    (* fallback outcome per column *)
  weights : float array; (* normalised input, kept for [probability] *)
}

let create weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Alias.create: empty distribution";
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then invalid_arg "Alias.create: weights sum to zero";
  Array.iter
    (fun w -> if w < 0. || Float.is_nan w then invalid_arg "Alias.create: negative weight")
    weights;
  let norm = Array.map (fun w -> w /. total) weights in
  let scaled = Array.map (fun p -> p *. float_of_int n) norm in
  let prob = Array.make n 1. in
  let alias = Array.init n (fun i -> i) in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri (fun i s -> Queue.add i (if s < 1. then small else large)) scaled;
  while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
    let s = Queue.pop small and g = Queue.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- g;
    scaled.(g) <- scaled.(g) +. scaled.(s) -. 1.;
    Queue.add g (if scaled.(g) < 1. then small else large)
  done;
  (* Leftovers are 1.0 columns up to rounding. *)
  Queue.iter (fun i -> prob.(i) <- 1.) small;
  Queue.iter (fun i -> prob.(i) <- 1.) large;
  { prob; alias; weights = norm }

let length t = Array.length t.prob

let sample t rng =
  let n = Array.length t.prob in
  let col = Rng.int rng n in
  if Rng.float rng < t.prob.(col) then col else t.alias.(col)

let probability t i =
  if i < 0 || i >= Array.length t.weights then invalid_arg "Alias.probability: index";
  t.weights.(i)
