type t = { mutable state : int64 }

let create seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Take the top 53 bits so the result is uniform on [0,1) with full
   double-precision mantissa resolution. *)
let next_float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. 0x1p-53
