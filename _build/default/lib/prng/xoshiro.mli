(** xoshiro256++ pseudo-random generator (Blackman & Vigna, 2019).

    The workhorse generator for the simulator: 256 bits of state,
    period 2^256 − 1, excellent statistical quality and very fast.
    Seeded via {!Splitmix64} so that nearby integer seeds still yield
    decorrelated streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] expands [seed] with SplitMix64 into the 256-bit
    state.  The all-zero state is impossible by construction. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float on [[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform on [[0, bound)].  [bound] must be
    positive.  Uses rejection sampling, so it is exactly uniform. *)

val jump : t -> unit
(** Advance the state by 2^128 steps; used to split one seed into
    many long non-overlapping substreams. *)
