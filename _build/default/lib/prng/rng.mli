(** High-level random variate generation.

    Wraps {!Xoshiro} with the distributions the workload generators
    and simulator need: uniforms, exponentials (Poisson inter-arrival
    times), Bernoulli trials, geometric counts, and sampling without
    replacement.  All draws are reproducible from the [int64] seed. *)

type t
(** A random stream. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] builds a stream.  Default seed is a fixed
    constant so that unseeded runs are still reproducible. *)

val split : t -> t
(** [split t] returns a new stream decorrelated from [t] (jump-ahead
    by 2^128), leaving [t] advanced past the jump.  Use one split per
    simulated entity to keep per-entity streams independent. *)

val float : t -> float
(** Uniform on [[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform on [[lo, hi)].  Requires [lo < hi]. *)

val int : t -> int -> int
(** [int t n] uniform on [[0, n)]; [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [true] with probability [p]; [p] clamped to [[0, 1]]. *)

val exponential : t -> rate:float -> float
(** Exponential variate with the given [rate] (mean [1 /. rate]).
    Requires [rate > 0.]. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success, [p ∈ (0, 1]]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val int_excluding : t -> int -> excluding:int -> int
(** [int_excluding t n ~excluding:e] is uniform on
    [[0, n) \ {e}].  Requires [n >= 2] and [0 <= e < n].  Used for
    "uniform destination other than self". *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)
