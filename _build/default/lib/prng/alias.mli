(** Walker/Vose alias method for O(1) sampling from a fixed discrete
    distribution.

    The destination-selection distributions used by the non-uniform
    workloads (hotspot, locality) are fixed for a whole run, so we
    precompute the alias table once and draw in constant time. *)

type t

val create : float array -> t
(** [create weights] builds a sampler over indices
    [0 .. Array.length weights - 1].  Weights must be non-negative,
    not all zero; they are normalised internally. *)

val length : t -> int
(** Number of outcomes. *)

val sample : t -> Rng.t -> int
(** Draw an index with probability proportional to its weight. *)

val probability : t -> int -> float
(** [probability t i] is the normalised probability of outcome [i]
    (reconstructed from the table; exact up to float rounding). *)
