type t = { gen : Xoshiro.t }

let default_seed = 0x5EEDCAFEF00DL

let create ?(seed = default_seed) () = { gen = Xoshiro.create seed }

let split t =
  let child = Xoshiro.copy t.gen in
  Xoshiro.jump t.gen;
  { gen = child }

let float t = Xoshiro.float t.gen

let uniform t ~lo ~hi =
  if not (lo < hi) then invalid_arg "Rng.uniform: requires lo < hi";
  lo +. ((hi -. lo) *. float t)

let int t n = Xoshiro.int t.gen n

let bool t = Int64.logand (Xoshiro.next t.gen) 1L = 1L

let bernoulli t ~p =
  let p = Float.max 0. (Float.min 1. p) in
  float t < p

let exponential t ~rate =
  if not (rate > 0.) then invalid_arg "Rng.exponential: rate must be positive";
  (* 1 - u is in (0,1], so log never sees zero. *)
  -.Float.log (1. -. float t) /. rate

let geometric t ~p =
  if not (p > 0. && p <= 1.) then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1. then 0
  else
    let u = 1. -. float t in
    int_of_float (Float.log u /. Float.log (1. -. p))

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let int_excluding t n ~excluding =
  if n < 2 then invalid_arg "Rng.int_excluding: need at least two values";
  if excluding < 0 || excluding >= n then
    invalid_arg "Rng.int_excluding: excluded value out of range";
  let v = int t (n - 1) in
  if v >= excluding then v + 1 else v

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
