lib/prng/xoshiro.mli:
