lib/prng/alias.ml: Array Float Queue Rng
