lib/prng/rng.mli:
