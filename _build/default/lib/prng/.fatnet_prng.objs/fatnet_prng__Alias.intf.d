lib/prng/alias.mli: Rng
