(** SplitMix64 pseudo-random generator.

    A tiny, fast, well-distributed 64-bit generator (Steele, Lea &
    Flood, 2014).  Its main role here is seeding: a single [int64]
    seed is expanded into an arbitrary stream of 64-bit words used to
    initialise the larger-state {!Xoshiro} generator, guaranteeing
    that two simulations with different seeds get decorrelated
    streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed.  Any seed is
    valid, including [0L]. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_float : t -> float
(** [next t] as a float uniform on [[0, 1)]. *)
