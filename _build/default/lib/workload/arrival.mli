(** Message arrival processes (Assumption 1: independent Poisson
    streams per node, mean rate [λ_g]). *)

type t =
  | Poisson of float
      (** Exponential inter-arrival times with the given rate. *)
  | Deterministic of float
      (** Fixed inter-arrival period (rate = 1/period); a stress
          variant used by tests and extension experiments. *)

val rate : t -> float
(** Long-run arrivals per time unit. *)

val next_interval : t -> Fatnet_prng.Rng.t -> float
(** Draw the time until the next arrival. *)
