(** Global node numbering over a cluster-of-clusters system.

    Cluster [i]'s nodes occupy a contiguous block of global ids;
    [of_global]/[to_global] convert between global ids and
    (cluster, local) pairs. *)

type t

val create : cluster_sizes:int array -> t
(** Requires at least one cluster, every size positive. *)

val cluster_count : t -> int

val total_nodes : t -> int

val cluster_size : t -> int -> int

val cluster_offset : t -> int -> int
(** First global id of a cluster. *)

val of_global : t -> int -> int * int
(** [(cluster, local)] of a global node id. *)

val to_global : t -> cluster:int -> local:int -> int

val same_cluster : t -> int -> int -> bool
