type t =
  | Uniform
  | Hotspot of { node : int; fraction : float }
  | Local of { p_local : float }

let uniform_draw space rng ~src =
  Fatnet_prng.Rng.int_excluding rng (Node_space.total_nodes space) ~excluding:src

let draw t space rng ~src =
  let total = Node_space.total_nodes space in
  if total < 2 then invalid_arg "Destination.draw: need at least two nodes";
  match t with
  | Uniform -> uniform_draw space rng ~src
  | Hotspot { node; fraction } ->
      if node < 0 || node >= total then invalid_arg "Destination.draw: hot node out of range";
      if node <> src && Fatnet_prng.Rng.bernoulli rng ~p:fraction then node
      else uniform_draw space rng ~src
  | Local { p_local } ->
      let cluster, local = Node_space.of_global space src in
      let size = Node_space.cluster_size space cluster in
      let remote = total - size in
      let want_local =
        if remote = 0 then true
        else if size <= 1 then false
        else Fatnet_prng.Rng.bernoulli rng ~p:p_local
      in
      if want_local then
        let other = Fatnet_prng.Rng.int_excluding rng size ~excluding:local in
        Node_space.to_global space ~cluster ~local:other
      else begin
        (* Uniform over nodes outside the source's cluster: draw an
           index in [0, remote) and skip over the cluster's block. *)
        let k = Fatnet_prng.Rng.int rng remote in
        let offset = Node_space.cluster_offset space cluster in
        if k < offset then k else k + size
      end

let outgoing_probability t space ~src =
  let total = Node_space.total_nodes space in
  let cluster, _ = Node_space.of_global space src in
  let size = Node_space.cluster_size space cluster in
  if total < 2 then 0.
  else
    match t with
    | Uniform -> 1. -. (float_of_int (size - 1) /. float_of_int (total - 1))
    | Local { p_local } ->
        if total - size = 0 then 0. else if size <= 1 then 1. else 1. -. p_local
    | Hotspot { node; fraction } ->
        let hot_cluster, _ = Node_space.of_global space node in
        let uniform_out = 1. -. (float_of_int (size - 1) /. float_of_int (total - 1)) in
        if node = src then uniform_out
        else if hot_cluster = cluster then
          ((1. -. fraction) *. uniform_out)
        else fraction +. ((1. -. fraction) *. uniform_out)
