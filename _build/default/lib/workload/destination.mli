(** Destination selection (Assumption 2 and the paper's future-work
    extension to non-uniform traffic). *)

type t =
  | Uniform
      (** Any node other than the source, uniformly (Assumption 2). *)
  | Hotspot of { node : int; fraction : float }
      (** With probability [fraction] the destination is a fixed hot
          node; otherwise uniform.  Models the non-uniform pattern
          the paper lists as future work. *)
  | Local of { p_local : float }
      (** With probability [p_local] pick uniformly within the
          source's own cluster; otherwise uniformly among remote
          nodes.  [Uniform] corresponds to
          [p_local = (N_i - 1)/(N - 1)]. *)

val draw : t -> Node_space.t -> Fatnet_prng.Rng.t -> src:int -> int
(** Pick a destination global id distinct from [src].  [Hotspot]
    falls back to uniform when the source is the hot node itself.
    [Local] requires the system to have both another node in the
    source's cluster and at least one remote node when the
    corresponding branch is taken; with single-node clusters the
    local branch redraws as remote. *)

val outgoing_probability : t -> Node_space.t -> src:int -> float
(** Probability that a message from [src] leaves its cluster; used to
    parameterise the analytical model consistently with the
    workload. *)
