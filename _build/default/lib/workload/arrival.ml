type t = Poisson of float | Deterministic of float

let rate = function
  | Poisson r -> r
  | Deterministic period -> if period > 0. then 1. /. period else infinity

let next_interval t rng =
  match t with
  | Poisson r -> Fatnet_prng.Rng.exponential rng ~rate:r
  | Deterministic period ->
      if period <= 0. then invalid_arg "Arrival.next_interval: period must be positive";
      period
