type t = { sizes : int array; offsets : int array; total : int }

let create ~cluster_sizes =
  if Array.length cluster_sizes = 0 then invalid_arg "Node_space.create: no clusters";
  Array.iter
    (fun s -> if s <= 0 then invalid_arg "Node_space.create: non-positive cluster size")
    cluster_sizes;
  let offsets = Array.make (Array.length cluster_sizes) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i s ->
      offsets.(i) <- !total;
      total := !total + s)
    cluster_sizes;
  { sizes = Array.copy cluster_sizes; offsets; total = !total }

let cluster_count t = Array.length t.sizes

let total_nodes t = t.total

let cluster_size t i = t.sizes.(i)

let cluster_offset t i = t.offsets.(i)

let of_global t g =
  if g < 0 || g >= t.total then invalid_arg "Node_space.of_global: id out of range";
  (* Binary search over offsets. *)
  let lo = ref 0 and hi = ref (Array.length t.offsets - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.offsets.(mid) <= g then lo := mid else hi := mid - 1
  done;
  (!lo, g - t.offsets.(!lo))

let to_global t ~cluster ~local =
  if cluster < 0 || cluster >= Array.length t.sizes then
    invalid_arg "Node_space.to_global: cluster out of range";
  if local < 0 || local >= t.sizes.(cluster) then
    invalid_arg "Node_space.to_global: local id out of range";
  t.offsets.(cluster) + local

let same_cluster t a b =
  let ca, _ = of_global t a and cb, _ = of_global t b in
  ca = cb
