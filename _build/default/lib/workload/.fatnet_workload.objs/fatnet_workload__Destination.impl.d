lib/workload/destination.ml: Fatnet_prng Node_space
