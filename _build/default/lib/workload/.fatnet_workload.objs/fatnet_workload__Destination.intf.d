lib/workload/destination.mli: Fatnet_prng Node_space
