lib/workload/arrival.ml: Fatnet_prng
