lib/workload/node_space.ml: Array
