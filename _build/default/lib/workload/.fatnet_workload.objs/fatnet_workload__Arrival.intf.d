lib/workload/arrival.mli: Fatnet_prng
