lib/workload/node_space.mli:
