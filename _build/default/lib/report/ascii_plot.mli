(** Terminal line plots for latency-vs-load curves.

    Renders one or more {!Series} on a shared character grid — enough
    to eyeball curve ordering and saturation knees without leaving
    the terminal (CSV output remains the tool for real plotting). *)

val render :
  ?width:int -> ?height:int -> ?y_cap:float -> Series.t list -> string
(** [render series] draws all series on one grid.  Each series gets a
    marker character ([a], [b], [c], ...; shown in the legend);
    overlapping points show the later series' marker.  Non-finite
    points are skipped.  [y_cap] clips the y-axis (useful when one
    curve saturates); default is the finite maximum.  Defaults:
    72×20 characters. *)

val print : ?width:int -> ?height:int -> ?y_cap:float -> Series.t list -> unit
