let markers = "abcdefghijklmnopqrstuvwxyz"

let render ?(width = 72) ?(height = 20) ?y_cap series =
  if width < 10 || height < 4 then invalid_arg "Ascii_plot.render: grid too small";
  let finite = List.map Series.finite series in
  let all_points = List.concat_map (fun s -> s.Series.points) finite in
  if all_points = [] then "(no finite points)\n"
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let x_min = List.fold_left Float.min infinity xs in
    let x_max = List.fold_left Float.max neg_infinity xs in
    let y_min = Float.min 0. (List.fold_left Float.min infinity ys) in
    let y_max =
      match y_cap with
      | Some c -> c
      | None -> List.fold_left Float.max neg_infinity ys
    in
    let x_span = if x_max > x_min then x_max -. x_min else 1. in
    let y_span = if y_max > y_min then y_max -. y_min else 1. in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun i s ->
        let marker = markers.[i mod String.length markers] in
        List.iter
          (fun (x, y) ->
            let y = Float.min y y_max in
            let col =
              int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
            in
            let row =
              height - 1
              - int_of_float ((y -. y_min) /. y_span *. float_of_int (height - 1))
            in
            if row >= 0 && row < height && col >= 0 && col < width then
              grid.(row).(col) <- marker)
          s.Series.points)
      finite;
    let buf = Buffer.create ((width + 16) * (height + 4)) in
    Array.iteri
      (fun r row ->
        let y_label =
          y_max -. (float_of_int r /. float_of_int (height - 1) *. y_span)
        in
        Buffer.add_string buf (Printf.sprintf "%10.4g |" y_label);
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    let x_lo = Printf.sprintf "%.4g" x_min and x_hi = Printf.sprintf "%.4g" x_max in
    let gap = max 1 (width - String.length x_lo - String.length x_hi) in
    Buffer.add_string buf
      (Printf.sprintf "%12s%s%s%s\n" "" x_lo (String.make gap ' ') x_hi);
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "  %c = %s\n" markers.[i mod String.length markers] s.Series.name))
      finite;
    Buffer.contents buf
  end

let print ?width ?height ?y_cap series =
  print_string (render ?width ?height ?y_cap series)
