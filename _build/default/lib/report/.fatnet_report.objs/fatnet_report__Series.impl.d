lib/report/series.ml: Array Buffer Fatnet_numerics Float Fun List Printf
