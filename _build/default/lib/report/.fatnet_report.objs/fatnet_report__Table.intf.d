lib/report/table.mli:
