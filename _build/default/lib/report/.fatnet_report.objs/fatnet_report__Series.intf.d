lib/report/series.mli:
