(** Aligned plain-text tables for experiment output. *)

type t

val create : columns:string list -> t
(** Column headers; at least one. *)

val add_row : t -> string list -> unit
(** Must match the column count. *)

val add_float_row : t -> float list -> unit
(** Formats each value with [%.6g]; non-finite values print as
    [sat.] (saturated). *)

val to_string : t -> string
(** Render with column alignment and a header rule. *)

val print : t -> unit
(** [to_string] to stdout. *)
