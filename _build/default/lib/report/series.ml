type t = { name : string; points : (float * float) list }

let create ~name ~points = { name; points }

let finite t =
  { t with points = List.filter (fun (_, y) -> Float.is_finite y) t.points }

let interp_of t =
  match (finite t).points with
  | [] -> None
  | pts -> Some (Fatnet_numerics.Interp.create (Array.of_list pts))

let errors ~reference t =
  match interp_of t with
  | None -> []
  | Some f ->
      let lo, hi = Fatnet_numerics.Interp.domain f in
      (finite reference).points
      |> List.filter (fun (x, _) -> x >= lo && x <= hi)
      |> List.map (fun (x, y_ref) ->
             Fatnet_numerics.Float_utils.relative_error ~expected:y_ref
               ~actual:(Fatnet_numerics.Interp.eval f x))

let max_relative_error ~reference t =
  match errors ~reference t with [] -> nan | es -> List.fold_left Float.max 0. es

let mean_relative_error ~reference t =
  match errors ~reference t with
  | [] -> nan
  | es -> List.fold_left ( +. ) 0. es /. float_of_int (List.length es)

let to_csv series =
  let xs =
    List.concat_map (fun s -> List.map fst s.points) series
    |> List.sort_uniq Float.compare
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "x";
  List.iter (fun s -> Buffer.add_string buf ("," ^ s.name)) series;
  Buffer.add_char buf '\n';
  let cell s x =
    match List.assoc_opt x s.points with
    | Some y when Float.is_finite y -> Printf.sprintf "%.8g" y
    | Some _ -> ""
    | None -> (
        match interp_of s with
        | None -> ""
        | Some f ->
            let lo, hi = Fatnet_numerics.Interp.domain f in
            if x < lo || x > hi then ""
            else Printf.sprintf "%.8g" (Fatnet_numerics.Interp.eval f x))
  in
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%.8g" x);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (cell s x))
        series;
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf

let write_csv ~path series =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv series))
