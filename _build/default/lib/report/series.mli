(** Named (x, y) series and model-vs-simulation comparisons — the
    data behind each curve of Figs. 3–7. *)

type t = { name : string; points : (float * float) list }

val create : name:string -> points:(float * float) list -> t

val finite : t -> t
(** Drop points with non-finite y. *)

val max_relative_error : reference:t -> t -> float
(** Largest relative deviation of this series from [reference],
    comparing y values at the reference's x points via linear
    interpolation of this series.  NaN when either is empty. *)

val mean_relative_error : reference:t -> t -> float
(** Average relative deviation over the reference's x points. *)

val to_csv : t list -> string
(** Wide CSV: header [x,name1,name2,...]; series are re-sampled at
    the union of x values via linear interpolation (blank for series
    that do not cover an x). *)

val write_csv : path:string -> t list -> unit
