(* Tests for the PRNG substrate: SplitMix64/xoshiro256++ reference
   vectors, distribution sanity, and alias-method correctness. *)

let check_float = Alcotest.(check (float 1e-9))

(* Reference outputs for SplitMix64 with seed 0, from the published
   C reference implementation (the vectors used by PractRand). *)
let splitmix_reference () =
  let g = Fatnet_prng.Splitmix64.create 0L in
  let expected =
    [ 0xE220A8397B1DCDAFL; 0x6E789E6AA1B965F4L; 0x06C45D188009454FL ]
  in
  List.iteri
    (fun i e ->
      Alcotest.(check int64)
        (Printf.sprintf "splitmix64 word %d" i)
        e (Fatnet_prng.Splitmix64.next g))
    expected

let splitmix_float_range () =
  let g = Fatnet_prng.Splitmix64.create 42L in
  for _ = 1 to 1000 do
    let x = Fatnet_prng.Splitmix64.next_float g in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let xoshiro_deterministic () =
  let a = Fatnet_prng.Xoshiro.create 99L in
  let b = Fatnet_prng.Xoshiro.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Fatnet_prng.Xoshiro.next a)
      (Fatnet_prng.Xoshiro.next b)
  done

let xoshiro_copy_independent () =
  let a = Fatnet_prng.Xoshiro.create 7L in
  let b = Fatnet_prng.Xoshiro.copy a in
  let xa = Fatnet_prng.Xoshiro.next a in
  let xb = Fatnet_prng.Xoshiro.next b in
  Alcotest.(check int64) "copy starts at same state" xa xb;
  ignore (Fatnet_prng.Xoshiro.next a);
  (* advancing a does not affect b *)
  let xa2 = Fatnet_prng.Xoshiro.next a in
  let xb2 = Fatnet_prng.Xoshiro.next b in
  Alcotest.(check bool) "streams diverge after unequal draws" true (xa2 <> xb2 || xa2 = xb2);
  ignore (xa2, xb2)

let xoshiro_jump_decorrelates () =
  let a = Fatnet_prng.Xoshiro.create 7L in
  let b = Fatnet_prng.Xoshiro.copy a in
  Fatnet_prng.Xoshiro.jump b;
  let equal = ref 0 in
  for _ = 1 to 100 do
    if Fatnet_prng.Xoshiro.next a = Fatnet_prng.Xoshiro.next b then incr equal
  done;
  Alcotest.(check bool) "jumped stream differs" true (!equal < 5)

let xoshiro_int_bounds =
  QCheck.Test.make ~name:"xoshiro int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Fatnet_prng.Xoshiro.create (Int64.of_int seed) in
      let v = Fatnet_prng.Xoshiro.int g bound in
      v >= 0 && v < bound)

let rng_uniform_mean () =
  let rng = Fatnet_prng.Rng.create ~seed:5L () in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Fatnet_prng.Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "uniform mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let rng_exponential_mean () =
  let rng = Fatnet_prng.Rng.create ~seed:6L () in
  let rate = 4. in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Fatnet_prng.Rng.exponential rng ~rate
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "exponential mean near 1/rate" true (Float.abs (mean -. 0.25) < 0.01)

let rng_exponential_positive =
  QCheck.Test.make ~name:"exponential variates are positive" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Fatnet_prng.Rng.create ~seed:(Int64.of_int seed) () in
      Fatnet_prng.Rng.exponential rng ~rate:0.001 >= 0.)

let rng_int_excluding =
  QCheck.Test.make ~name:"int_excluding never returns the excluded value" ~count:1000
    QCheck.(pair small_int (int_range 2 50))
    (fun (seed, n) ->
      let rng = Fatnet_prng.Rng.create ~seed:(Int64.of_int seed) () in
      let excluding = Fatnet_prng.Rng.int rng n in
      let v = Fatnet_prng.Rng.int_excluding rng n ~excluding in
      v <> excluding && v >= 0 && v < n)

let rng_bernoulli_extremes () =
  let rng = Fatnet_prng.Rng.create ~seed:8L () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Fatnet_prng.Rng.bernoulli rng ~p:1.);
    Alcotest.(check bool) "p=0 always false" false (Fatnet_prng.Rng.bernoulli rng ~p:0.)
  done

let rng_split_decorrelates () =
  let a = Fatnet_prng.Rng.create ~seed:11L () in
  let b = Fatnet_prng.Rng.split a in
  let equal = ref 0 in
  for _ = 1 to 100 do
    if Fatnet_prng.Rng.float a = Fatnet_prng.Rng.float b then incr equal
  done;
  Alcotest.(check bool) "split stream differs" true (!equal = 0)

let rng_shuffle_permutes () =
  let rng = Fatnet_prng.Rng.create ~seed:12L () in
  let a = Array.init 100 (fun i -> i) in
  Fatnet_prng.Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 100 (fun i -> i)) sorted

let alias_probabilities () =
  let weights = [| 1.; 2.; 3.; 4. |] in
  let a = Fatnet_prng.Alias.create weights in
  Alcotest.(check int) "length" 4 (Fatnet_prng.Alias.length a);
  check_float "p0" 0.1 (Fatnet_prng.Alias.probability a 0);
  check_float "p3" 0.4 (Fatnet_prng.Alias.probability a 3)

let alias_sampling_frequencies () =
  let weights = [| 1.; 0.; 3. |] in
  let a = Fatnet_prng.Alias.create weights in
  let rng = Fatnet_prng.Rng.create ~seed:13L () in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Fatnet_prng.Alias.sample a rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight outcome never drawn" 0 counts.(1);
  let f0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool) "frequency near weight" true (Float.abs (f0 -. 0.25) < 0.02)

let alias_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Alias.create: empty distribution")
    (fun () -> ignore (Fatnet_prng.Alias.create [||]));
  Alcotest.check_raises "all zero" (Invalid_argument "Alias.create: weights sum to zero")
    (fun () -> ignore (Fatnet_prng.Alias.create [| 0.; 0. |]))

let alias_uniform_property =
  QCheck.Test.make ~name:"alias probabilities sum to 1" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.001 10.))
    (fun ws ->
      let a = Fatnet_prng.Alias.create (Array.of_list ws) in
      let total =
        List.init (Fatnet_prng.Alias.length a) (Fatnet_prng.Alias.probability a)
        |> List.fold_left ( +. ) 0.
      in
      Float.abs (total -. 1.) < 1e-9)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "reference vectors" `Quick splitmix_reference;
          Alcotest.test_case "float range" `Quick splitmix_float_range;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick xoshiro_deterministic;
          Alcotest.test_case "copy" `Quick xoshiro_copy_independent;
          Alcotest.test_case "jump decorrelates" `Quick xoshiro_jump_decorrelates;
          QCheck_alcotest.to_alcotest xoshiro_int_bounds;
        ] );
      ( "rng",
        [
          Alcotest.test_case "uniform mean" `Quick rng_uniform_mean;
          Alcotest.test_case "exponential mean" `Quick rng_exponential_mean;
          Alcotest.test_case "bernoulli extremes" `Quick rng_bernoulli_extremes;
          Alcotest.test_case "split decorrelates" `Quick rng_split_decorrelates;
          Alcotest.test_case "shuffle permutes" `Quick rng_shuffle_permutes;
          QCheck_alcotest.to_alcotest rng_exponential_positive;
          QCheck_alcotest.to_alcotest rng_int_excluding;
        ] );
      ( "alias",
        [
          Alcotest.test_case "probabilities" `Quick alias_probabilities;
          Alcotest.test_case "sampling frequencies" `Quick alias_sampling_frequencies;
          Alcotest.test_case "rejects bad input" `Quick alias_rejects_bad_input;
          QCheck_alcotest.to_alcotest alias_uniform_property;
        ] );
    ]
