(* Tests for the m-port n-tree topology: closed-form counts, routing
   validity, NCA levels, and the distance distribution of Eq. (6). *)

module Tree = Fatnet_topology.Mport_tree
module Dist = Fatnet_topology.Distance

let check_float = Alcotest.(check (float 1e-9))

let int_pow b e =
  let rec go acc i = if i = 0 then acc else go (acc * b) (i - 1) in
  go 1 e

(* (m, n) pairs used across the structural tests; includes the
   paper's configurations (8,1..3), (4,3..5) and edge cases. *)
let shapes = [ (2, 1); (2, 3); (4, 1); (4, 2); (4, 3); (4, 5); (8, 1); (8, 2); (8, 3); (6, 2) ]

let counts_match_closed_forms () =
  List.iter
    (fun (m, n) ->
      let t = Tree.create ~m ~n in
      let half = m / 2 in
      Alcotest.(check int)
        (Printf.sprintf "N for m=%d n=%d" m n)
        (2 * int_pow half n) (Tree.node_count t);
      Alcotest.(check int)
        (Printf.sprintf "N_sw for m=%d n=%d" m n)
        (((2 * n) - 1) * int_pow half (n - 1))
        (Tree.switch_count t);
      (* 2 directed channels per link, n*N links in total. *)
      Alcotest.(check int)
        (Printf.sprintf "channels for m=%d n=%d" m n)
        (2 * n * Tree.node_count t) (Tree.channel_count t))
    shapes

let switch_degrees_bounded () =
  List.iter
    (fun (m, n) ->
      let t = Tree.create ~m ~n in
      for s = 0 to Tree.switch_count t - 1 do
        Alcotest.(check int)
          (Printf.sprintf "degree of switch %d (m=%d n=%d)" s m n)
          m (Tree.degree t s)
      done)
    shapes

let levels_partition_switches () =
  List.iter
    (fun (m, n) ->
      let t = Tree.create ~m ~n in
      let total =
        List.init n (fun l -> List.length (Tree.switches_at_level t (l + 1)))
        |> List.fold_left ( + ) 0
      in
      Alcotest.(check int) (Printf.sprintf "levels m=%d n=%d" m n) (Tree.switch_count t) total;
      List.iteri
        (fun l switches ->
          List.iter
            (fun s ->
              Alcotest.(check int) "switch_level consistent" (l + 1) (Tree.switch_level t s))
            switches)
        (List.init n (fun l -> Tree.switches_at_level t (l + 1))))
    shapes

let route_structure t ~src ~dst =
  let path = Tree.route t ~src ~dst in
  let h = Tree.nca_level t ~src ~dst in
  Alcotest.(check int) "path length is 2h" (2 * h) (Array.length path);
  Alcotest.(check bool) "starts with injection" true
    (Tree.channel_kind t path.(0) = Tree.Injection);
  Alcotest.(check bool) "ends with ejection" true
    (Tree.channel_kind t path.(Array.length path - 1) = Tree.Ejection);
  (* consecutive channels share the intermediate endpoint *)
  for i = 0 to Array.length path - 2 do
    let _, mid = Tree.channel_endpoints t path.(i) in
    let mid', _ = Tree.channel_endpoints t path.(i + 1) in
    Alcotest.(check bool) "contiguous" true (mid = mid')
  done;
  (* endpoints are the right nodes *)
  let first_src, _ = Tree.channel_endpoints t path.(0) in
  let _, last_dst = Tree.channel_endpoints t path.(Array.length path - 1) in
  Alcotest.(check bool) "src endpoint" true (first_src = Tree.Node src);
  Alcotest.(check bool) "dst endpoint" true (last_dst = Tree.Node dst);
  (* up phase then down phase *)
  let kinds = Array.map (Tree.channel_kind t) path in
  let phase = ref `Up in
  Array.iter
    (fun k ->
      match (k, !phase) with
      | Tree.Injection, `Up -> ()
      | Tree.Up, `Up -> ()
      | Tree.Down, (`Up | `Down) -> phase := `Down
      | Tree.Ejection, _ -> ()
      | Tree.Up, `Down -> Alcotest.fail "up after down"
      | Tree.Injection, `Down -> Alcotest.fail "injection after down")
    kinds

let all_pairs_route_small () =
  List.iter
    (fun (m, n) ->
      let t = Tree.create ~m ~n in
      let nodes = Tree.node_count t in
      for src = 0 to nodes - 1 do
        for dst = 0 to nodes - 1 do
          if src <> dst then route_structure t ~src ~dst
        done
      done)
    [ (2, 1); (2, 2); (4, 1); (4, 2); (6, 2); (4, 3) ]

let routes_property =
  QCheck.Test.make ~name:"random routes are valid up*/down* paths" ~count:300
    QCheck.(triple (int_range 0 3) small_int small_int)
    (fun (shape, a, b) ->
      let m, n = List.nth [ (8, 3); (4, 5); (8, 2); (4, 4) ] shape in
      let t = Tree.create ~m ~n in
      let nodes = Tree.node_count t in
      let src = a mod nodes and dst = b mod nodes in
      QCheck.assume (src <> dst);
      let path = Tree.route t ~src ~dst in
      Array.length path = 2 * Tree.nca_level t ~src ~dst)

let route_choice_varies_ascent () =
  let t = Tree.create ~m:8 ~n:3 in
  (* src/dst meeting at the root have 16 distinct ascent choices; all
     must be valid and reach the same destination. *)
  let src = 0 and dst = Tree.node_count t - 1 in
  let distinct = Hashtbl.create 16 in
  for choice = 0 to Tree.ascent_choices t - 1 do
    let path = Tree.route ~choice t ~src ~dst in
    Alcotest.(check int) "length" (2 * Tree.nca_level t ~src ~dst) (Array.length path);
    let _, last = Tree.channel_endpoints t path.(Array.length path - 1) in
    Alcotest.(check bool) "reaches dst" true (last = Tree.Node dst);
    Hashtbl.replace distinct path.(1) ()
  done;
  Alcotest.(check bool) "different choices take different first up-links" true
    (Hashtbl.length distinct > 1)

let route_default_matches_dmodk () =
  let t = Tree.create ~m:4 ~n:3 in
  for src = 0 to 7 do
    for dst = 8 to 15 do
      if src <> dst then begin
        let a = Tree.route t ~src ~dst in
        let b = Tree.route t ~src ~dst in
        Alcotest.(check bool) "route is deterministic" true (a = b)
      end
    done
  done

let nca_levels_symmetric =
  QCheck.Test.make ~name:"nca level is symmetric" ~count:300
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let t = Tree.create ~m:4 ~n:4 in
      let n = Tree.node_count t in
      let src = a mod n and dst = b mod n in
      QCheck.assume (src <> dst);
      Tree.nca_level t ~src ~dst = Tree.nca_level t ~src:dst ~dst:src)

let channel_lookup_roundtrip () =
  let t = Tree.create ~m:4 ~n:2 in
  for c = 0 to Tree.channel_count t - 1 do
    let src, dst = Tree.channel_endpoints t c in
    Alcotest.(check int) "roundtrip" c (Tree.channel_id t ~src ~dst)
  done

let distance_sums_to_one () =
  List.iter
    (fun (m, n) ->
      let d = Dist.create ~m ~n in
      let total = Dist.fold d ~init:0. ~f:(fun acc ~h:_ ~p -> acc +. p) in
      check_float (Printf.sprintf "sum m=%d n=%d" m n) 1. total)
    shapes

let distance_positive =
  QCheck.Test.make ~name:"distance probabilities are non-negative" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 1 6))
    (fun (halfm, n) ->
      let m = 2 * halfm in
      let d = Dist.create ~m ~n in
      Dist.fold d ~init:true ~f:(fun acc ~h:_ ~p -> acc && p >= 0.))

let distance_matches_enumeration () =
  (* Eq. (6) must equal the empirical NCA-level distribution obtained
     by enumerating every source/destination pair. *)
  List.iter
    (fun (m, n) ->
      let t = Tree.create ~m ~n in
      let d = Dist.create ~m ~n in
      let nodes = Tree.node_count t in
      let counts = Array.make (n + 1) 0 in
      for src = 0 to nodes - 1 do
        for dst = 0 to nodes - 1 do
          if src <> dst then begin
            let h = Tree.nca_level t ~src ~dst in
            counts.(h) <- counts.(h) + 1
          end
        done
      done;
      let total = float_of_int (nodes * (nodes - 1)) in
      for h = 1 to n do
        check_float
          (Printf.sprintf "P(%d) m=%d n=%d" h m n)
          (float_of_int counts.(h) /. total)
          (Dist.probability d h)
      done)
    [ (2, 2); (4, 1); (4, 2); (4, 3); (8, 2); (6, 2) ]

let mean_links_consistent () =
  List.iter
    (fun (m, n) ->
      let d = Dist.create ~m ~n in
      let expected = Dist.fold d ~init:0. ~f:(fun acc ~h ~p -> acc +. (2. *. float_of_int h *. p)) in
      check_float (Printf.sprintf "D m=%d n=%d" m n) expected (Dist.mean_links d))
    shapes

let mean_links_bounds =
  QCheck.Test.make ~name:"2 <= D <= 2n" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 1 6))
    (fun (halfm, n) ->
      let d = Dist.create ~m:(2 * halfm) ~n in
      let dd = Dist.mean_links d in
      dd >= 2. -. 1e-9 && dd <= (2. *. float_of_int n) +. 1e-9)

let channel_rate_eq10 () =
  (* Eq. (10) on a concrete case: λ D / (4 n N). *)
  let d = Dist.create ~m:8 ~n:3 in
  let lambda = 0.5 in
  check_float "eq10"
    (lambda *. Dist.mean_links d /. (4. *. 3. *. 128.))
    (Dist.channel_rate d ~lambda)

let channel_loads_balanced_within_kind () =
  (* Enumerate every source/destination route and count channel
     visits.  Under uniform traffic the D-mod-k routes must load
     every channel of the same kind-and-level equally — the balance
     assumption behind Eq. (10)'s single per-channel rate η. *)
  List.iter
    (fun (m, n) ->
      let t = Tree.create ~m ~n in
      let nodes = Tree.node_count t in
      let loads = Array.make (Tree.channel_count t) 0 in
      for src = 0 to nodes - 1 do
        for dst = 0 to nodes - 1 do
          if src <> dst then
            Array.iter (fun c -> loads.(c) <- loads.(c) + 1) (Tree.route t ~src ~dst)
        done
      done;
      (* group channels by (kind, level of the switch endpoint) *)
      let key c =
        let kind = Tree.channel_kind t c in
        let level =
          match Tree.channel_endpoints t c with
          | Tree.Switch s, Tree.Switch s' ->
              (Tree.switch_level t s * 100) + Tree.switch_level t s'
          | Tree.Node _, Tree.Switch s | Tree.Switch s, Tree.Node _ -> Tree.switch_level t s
          | Tree.Node _, Tree.Node _ -> 0
        in
        (kind, level)
      in
      let groups = Hashtbl.create 16 in
      Array.iteri
        (fun c load ->
          let k = key c in
          Hashtbl.replace groups k (load :: (Option.value ~default:[] (Hashtbl.find_opt groups k))))
        loads;
      Hashtbl.iter
        (fun _ group_loads ->
          let mn = List.fold_left min max_int group_loads in
          let mx = List.fold_left max 0 group_loads in
          Alcotest.(check bool)
            (Printf.sprintf "balanced loads m=%d n=%d (min %d max %d)" m n mn mx)
            true (mn = mx))
        groups;
      (* total link visits = sum over pairs of path length = N(N-1)·D *)
      let total = Array.fold_left ( + ) 0 loads in
      let d = Dist.mean_links (Dist.create ~m ~n) in
      check_float
        (Printf.sprintf "total visits m=%d n=%d" m n)
        (float_of_int (nodes * (nodes - 1)) *. d)
        (float_of_int total))
    [ (4, 2); (4, 3); (6, 2) ]

let leaf_switch_level_one () =
  let t = Tree.create ~m:8 ~n:3 in
  for x = 0 to Tree.node_count t - 1 do
    Alcotest.(check int) "leaf switch at level 1" 1
      (Tree.switch_level t (Tree.leaf_switch_of_node t x))
  done

let invalid_arguments () =
  Alcotest.check_raises "odd m" (Invalid_argument "Mport_tree.create: m must be even and >= 2")
    (fun () -> ignore (Tree.create ~m:3 ~n:2));
  Alcotest.check_raises "zero n" (Invalid_argument "Mport_tree.create: n must be >= 1")
    (fun () -> ignore (Tree.create ~m:4 ~n:0));
  let t = Tree.create ~m:4 ~n:2 in
  Alcotest.check_raises "src=dst" (Invalid_argument "Mport_tree.nca_level: src = dst")
    (fun () -> ignore (Tree.nca_level t ~src:1 ~dst:1))

let () =
  Alcotest.run "topology"
    [
      ( "structure",
        [
          Alcotest.test_case "closed-form counts" `Quick counts_match_closed_forms;
          Alcotest.test_case "switch degrees" `Quick switch_degrees_bounded;
          Alcotest.test_case "level partition" `Quick levels_partition_switches;
          Alcotest.test_case "channel lookup roundtrip" `Quick channel_lookup_roundtrip;
          Alcotest.test_case "leaf switches" `Quick leaf_switch_level_one;
          Alcotest.test_case "invalid arguments" `Quick invalid_arguments;
        ] );
      ( "routing",
        [
          Alcotest.test_case "all pairs on small trees" `Quick all_pairs_route_small;
          Alcotest.test_case "ascent choices" `Quick route_choice_varies_ascent;
          Alcotest.test_case "deterministic default" `Quick route_default_matches_dmodk;
          QCheck_alcotest.to_alcotest routes_property;
          QCheck_alcotest.to_alcotest nca_levels_symmetric;
        ] );
      ( "distance",
        [
          Alcotest.test_case "sums to one" `Quick distance_sums_to_one;
          Alcotest.test_case "matches enumeration" `Quick distance_matches_enumeration;
          Alcotest.test_case "mean links" `Quick mean_links_consistent;
          Alcotest.test_case "eq10 channel rate" `Quick channel_rate_eq10;
          Alcotest.test_case "channel loads balanced" `Quick channel_loads_balanced_within_kind;
          QCheck_alcotest.to_alcotest distance_positive;
          QCheck_alcotest.to_alcotest mean_links_bounds;
        ] );
    ]
