test/test_sim.ml: Alcotest Array Fatnet_model Fatnet_prng Fatnet_sim Fatnet_stats Fatnet_topology Float Int64 List Printf QCheck QCheck_alcotest
