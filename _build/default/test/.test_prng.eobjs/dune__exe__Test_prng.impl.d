test/test_prng.ml: Alcotest Array Fatnet_prng Float Gen Int64 List Printf QCheck QCheck_alcotest
