test/test_numerics.ml: Alcotest Array Fatnet_numerics Float Gen List Map QCheck QCheck_alcotest
