test/test_report.ml: Alcotest Fatnet_report Filename Fun List String Sys
