test/test_topology.ml: Alcotest Array Fatnet_topology Hashtbl List Option Printf QCheck QCheck_alcotest
