test/test_stats.ml: Alcotest Array Fatnet_prng Fatnet_stats Float Gen Int64 List QCheck QCheck_alcotest
