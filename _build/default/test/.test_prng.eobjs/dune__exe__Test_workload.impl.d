test/test_workload.ml: Alcotest Array Fatnet_prng Fatnet_workload Float Fun Gen Int64 List Printf QCheck QCheck_alcotest
