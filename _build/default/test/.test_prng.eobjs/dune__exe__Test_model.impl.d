test/test_model.ml: Alcotest Array Fatnet_model Float List Printf QCheck QCheck_alcotest Result
