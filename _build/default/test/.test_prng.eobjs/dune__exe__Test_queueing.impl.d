test/test_queueing.ml: Alcotest Array Fatnet_prng Fatnet_queueing Float List Printf QCheck QCheck_alcotest
