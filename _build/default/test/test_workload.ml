(* Tests for the workload generators: node numbering, arrival
   processes and destination distributions. *)

module NS = Fatnet_workload.Node_space
module A = Fatnet_workload.Arrival
module D = Fatnet_workload.Destination

let check_float = Alcotest.(check (float 1e-9))

let space = NS.create ~cluster_sizes:[| 4; 8; 4 |]

let node_space_layout () =
  Alcotest.(check int) "total" 16 (NS.total_nodes space);
  Alcotest.(check int) "clusters" 3 (NS.cluster_count space);
  Alcotest.(check int) "offset 0" 0 (NS.cluster_offset space 0);
  Alcotest.(check int) "offset 1" 4 (NS.cluster_offset space 1);
  Alcotest.(check int) "offset 2" 12 (NS.cluster_offset space 2)

let node_space_roundtrip () =
  for g = 0 to 15 do
    let c, l = NS.of_global space g in
    Alcotest.(check int) "roundtrip" g (NS.to_global space ~cluster:c ~local:l)
  done

let node_space_of_global_cases () =
  Alcotest.(check (pair int int)) "first" (0, 0) (NS.of_global space 0);
  Alcotest.(check (pair int int)) "boundary into 1" (1, 0) (NS.of_global space 4);
  Alcotest.(check (pair int int)) "last" (2, 3) (NS.of_global space 15)

let node_space_same_cluster () =
  Alcotest.(check bool) "same" true (NS.same_cluster space 4 11);
  Alcotest.(check bool) "different" false (NS.same_cluster space 3 4)

let node_space_roundtrip_property =
  QCheck.Test.make ~name:"of_global/to_global roundtrip on random spaces" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 8) (int_range 1 50)) small_int)
    (fun (sizes, pick) ->
      let s = NS.create ~cluster_sizes:(Array.of_list sizes) in
      let g = pick mod NS.total_nodes s in
      let c, l = NS.of_global s g in
      NS.to_global s ~cluster:c ~local:l = g
      && l >= 0
      && l < NS.cluster_size s c)

let arrival_rates () =
  check_float "poisson" 2. (A.rate (A.Poisson 2.));
  check_float "deterministic" 0.5 (A.rate (A.Deterministic 2.))

let arrival_poisson_mean () =
  let rng = Fatnet_prng.Rng.create ~seed:1L () in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. A.next_interval (A.Poisson 5.) rng
  done;
  Alcotest.(check bool) "mean near 1/5" true (Float.abs ((!sum /. float_of_int n) -. 0.2) < 0.005)

let arrival_deterministic () =
  let rng = Fatnet_prng.Rng.create ~seed:1L () in
  check_float "fixed period" 3. (A.next_interval (A.Deterministic 3.) rng)

let uniform_never_self =
  QCheck.Test.make ~name:"uniform destination is never the source" ~count:500
    QCheck.(pair small_int small_int)
    (fun (seed, s) ->
      let rng = Fatnet_prng.Rng.create ~seed:(Int64.of_int seed) () in
      let src = s mod 16 in
      D.draw D.Uniform space rng ~src <> src)

let uniform_covers_all () =
  let rng = Fatnet_prng.Rng.create ~seed:2L () in
  let seen = Array.make 16 false in
  for _ = 1 to 5000 do
    seen.(D.draw D.Uniform space rng ~src:0) <- true
  done;
  seen.(0) <- true;
  Alcotest.(check bool) "all destinations reachable" true (Array.for_all Fun.id seen)

let hotspot_bias () =
  let rng = Fatnet_prng.Rng.create ~seed:3L () in
  let dist = D.Hotspot { node = 7; fraction = 0.5 } in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if D.draw dist space rng ~src:0 = 7 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  (* 0.5 direct + 0.5 * uniform(1/15) ≈ 0.533 *)
  Alcotest.(check bool) "hotspot frequency" true (Float.abs (f -. 0.533) < 0.02)

let hotspot_self_falls_back () =
  let rng = Fatnet_prng.Rng.create ~seed:4L () in
  let dist = D.Hotspot { node = 7; fraction = 1.0 } in
  for _ = 1 to 200 do
    Alcotest.(check bool) "never self" true (D.draw dist space rng ~src:7 <> 7)
  done

let local_stays_in_cluster () =
  let rng = Fatnet_prng.Rng.create ~seed:5L () in
  let dist = D.Local { p_local = 1.0 } in
  for _ = 1 to 500 do
    let d = D.draw dist space rng ~src:5 in
    Alcotest.(check bool) "same cluster" true (NS.same_cluster space 5 d);
    Alcotest.(check bool) "not self" true (d <> 5)
  done

let local_zero_always_remote () =
  let rng = Fatnet_prng.Rng.create ~seed:6L () in
  let dist = D.Local { p_local = 0.0 } in
  for _ = 1 to 500 do
    let d = D.draw dist space rng ~src:5 in
    Alcotest.(check bool) "remote" false (NS.same_cluster space 5 d)
  done

let local_remote_uniform () =
  (* remote draws must cover every node outside the cluster and none
     inside *)
  let rng = Fatnet_prng.Rng.create ~seed:7L () in
  let dist = D.Local { p_local = 0.0 } in
  let seen = Array.make 16 false in
  for _ = 1 to 5000 do
    seen.(D.draw dist space rng ~src:5) <- true
  done;
  for g = 0 to 15 do
    let expected = not (NS.same_cluster space 5 g) in
    Alcotest.(check bool) (Printf.sprintf "node %d" g) expected seen.(g)
  done

let outgoing_probability_matches_empirical () =
  let rng = Fatnet_prng.Rng.create ~seed:8L () in
  List.iter
    (fun dist ->
      let src = 5 in
      let p = D.outgoing_probability dist space ~src in
      let n = 40_000 in
      let out = ref 0 in
      for _ = 1 to n do
        if not (NS.same_cluster space src (D.draw dist space rng ~src)) then incr out
      done;
      let f = float_of_int !out /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "empirical %.3f vs analytic %.3f" f p)
        true
        (Float.abs (f -. p) < 0.02))
    [
      D.Uniform;
      D.Local { p_local = 0.3 };
      D.Hotspot { node = 0; fraction = 0.25 };
      D.Hotspot { node = 6; fraction = 0.25 };
    ]

let uniform_outgoing_matches_eq2 () =
  (* Eq. (2) is exactly the uniform outgoing probability. *)
  let src = 5 in
  let size = 8 and total = 16 in
  check_float "Eq. (2)"
    (1. -. (float_of_int (size - 1) /. float_of_int (total - 1)))
    (D.outgoing_probability D.Uniform space ~src)

let () =
  Alcotest.run "workload"
    [
      ( "node_space",
        [
          Alcotest.test_case "layout" `Quick node_space_layout;
          Alcotest.test_case "roundtrip" `Quick node_space_roundtrip;
          Alcotest.test_case "of_global" `Quick node_space_of_global_cases;
          Alcotest.test_case "same_cluster" `Quick node_space_same_cluster;
          QCheck_alcotest.to_alcotest node_space_roundtrip_property;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "rates" `Quick arrival_rates;
          Alcotest.test_case "poisson mean" `Quick arrival_poisson_mean;
          Alcotest.test_case "deterministic" `Quick arrival_deterministic;
        ] );
      ( "destination",
        [
          Alcotest.test_case "uniform covers all" `Quick uniform_covers_all;
          Alcotest.test_case "hotspot bias" `Quick hotspot_bias;
          Alcotest.test_case "hotspot self" `Quick hotspot_self_falls_back;
          Alcotest.test_case "local stays" `Quick local_stays_in_cluster;
          Alcotest.test_case "local zero remote" `Quick local_zero_always_remote;
          Alcotest.test_case "remote uniform" `Quick local_remote_uniform;
          Alcotest.test_case "outgoing probability" `Quick outgoing_probability_matches_empirical;
          Alcotest.test_case "uniform matches Eq. (2)" `Quick uniform_outgoing_matches_eq2;
          QCheck_alcotest.to_alcotest uniform_never_self;
        ] );
    ]
