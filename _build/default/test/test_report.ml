(* Tests for the reporting library: table rendering, series algebra
   and CSV output. *)

module Table = Fatnet_report.Table
module Series = Fatnet_report.Series

let table_renders_aligned () =
  let t = Table.create ~columns:[ "a"; "long-header" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.to_string t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check int) "rule width matches header" (String.length header)
        (String.length rule)
  | _ -> Alcotest.fail "expected at least two lines");
  Alcotest.(check bool) "contains data" true
    (List.exists (fun l -> String.length l > 0 && String.trim l <> "" &&
                           String.length l >= 3 &&
                           (let t = String.trim l in String.length t >= 3 && String.sub t 0 3 = "333")) lines)

let table_rejects_width_mismatch () =
  let t = Table.create ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "width" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let table_formats_saturated () =
  let t = Table.create ~columns:[ "x" ] in
  Table.add_float_row t [ infinity ];
  Alcotest.(check bool) "sat. marker" true
    (String.length (Table.to_string t) > 0
    && String.split_on_char '\n' (Table.to_string t)
       |> List.exists (fun l -> String.trim l = "sat."))

let series_finite_filters () =
  let s = Series.create ~name:"s" ~points:[ (1., 2.); (2., infinity); (3., 4.) ] in
  Alcotest.(check int) "dropped" 2 (List.length (Series.finite s).Series.points)

let series_errors_zero_for_identical () =
  let s = Series.create ~name:"a" ~points:[ (1., 10.); (2., 20.); (3., 30.) ] in
  Alcotest.(check (float 1e-9)) "max err" 0. (Series.max_relative_error ~reference:s s);
  Alcotest.(check (float 1e-9)) "mean err" 0. (Series.mean_relative_error ~reference:s s)

let series_errors_known () =
  let reference = Series.create ~name:"ref" ~points:[ (1., 10.); (2., 20.) ] in
  let s = Series.create ~name:"s" ~points:[ (1., 11.); (2., 22.) ] in
  Alcotest.(check (float 1e-9)) "10% everywhere" 0.1
    (Series.max_relative_error ~reference s);
  Alcotest.(check (float 1e-9)) "mean 10%" 0.1 (Series.mean_relative_error ~reference s)

let series_error_interpolates () =
  (* s sampled at different x than the reference *)
  let reference = Series.create ~name:"ref" ~points:[ (1., 10.); (3., 30.) ] in
  let s = Series.create ~name:"s" ~points:[ (0., 0.); (4., 40.) ] in
  Alcotest.(check (float 1e-9)) "linear agreement" 0.
    (Series.max_relative_error ~reference s)

let csv_shape () =
  let a = Series.create ~name:"a" ~points:[ (1., 10.); (2., 20.) ] in
  let b = Series.create ~name:"b" ~points:[ (1., 1.); (2., 2.) ] in
  let csv = Series.to_csv [ a; b ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "x,a,b" (List.hd lines)

let csv_blank_outside_domain () =
  let a = Series.create ~name:"a" ~points:[ (1., 10.) ] in
  let b = Series.create ~name:"b" ~points:[ (2., 5.) ] in
  let csv = Series.to_csv [ a; b ] in
  Alcotest.(check bool) "row for x=2 has blank a" true
    (String.split_on_char '\n' csv |> List.exists (fun l -> l = "2,,5"))

let csv_roundtrip_file () =
  let path = Filename.temp_file "fatnet" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Series.write_csv ~path [ Series.create ~name:"s" ~points:[ (1., 2.) ] ];
      let ic = open_in path in
      let header = input_line ic in
      close_in ic;
      Alcotest.(check string) "file header" "x,s" header)

let plot_renders_markers () =
  let s1 = Series.create ~name:"one" ~points:[ (0., 0.); (1., 1.) ] in
  let s2 = Series.create ~name:"two" ~points:[ (0., 1.); (1., 0.) ] in
  let out = Fatnet_report.Ascii_plot.render ~width:20 ~height:8 [ s1; s2 ] in
  Alcotest.(check bool) "marker a" true (String.contains out 'a');
  Alcotest.(check bool) "marker b" true (String.contains out 'b');
  Alcotest.(check bool) "legend one" true
    (List.exists (fun l -> l = "  a = one") (String.split_on_char '\n' out));
  Alcotest.(check bool) "legend two" true
    (List.exists (fun l -> l = "  b = two") (String.split_on_char '\n' out))

let plot_handles_empty () =
  Alcotest.(check string) "placeholder" "(no finite points)\n"
    (Fatnet_report.Ascii_plot.render [ Series.create ~name:"x" ~points:[ (0., infinity) ] ])

let plot_caps_y () =
  let s = Series.create ~name:"s" ~points:[ (0., 1.); (1., 1000.) ] in
  let out = Fatnet_report.Ascii_plot.render ~width:20 ~height:6 ~y_cap:10. [ s ] in
  (* the top axis label reflects the cap, not the data maximum *)
  Alcotest.(check bool) "capped axis" true
    (String.length out > 0
    && String.split_on_char '\n' out
       |> List.exists (fun l ->
              String.length l > 10 && String.trim (String.sub l 0 10) = "10"))

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "aligned" `Quick table_renders_aligned;
          Alcotest.test_case "width mismatch" `Quick table_rejects_width_mismatch;
          Alcotest.test_case "saturated marker" `Quick table_formats_saturated;
        ] );
      ( "series",
        [
          Alcotest.test_case "finite filter" `Quick series_finite_filters;
          Alcotest.test_case "identical zero error" `Quick series_errors_zero_for_identical;
          Alcotest.test_case "known error" `Quick series_errors_known;
          Alcotest.test_case "interpolated error" `Quick series_error_interpolates;
          Alcotest.test_case "csv shape" `Quick csv_shape;
          Alcotest.test_case "csv blanks" `Quick csv_blank_outside_domain;
          Alcotest.test_case "csv file" `Quick csv_roundtrip_file;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "markers and legend" `Quick plot_renders_markers;
          Alcotest.test_case "empty" `Quick plot_handles_empty;
          Alcotest.test_case "y cap" `Quick plot_caps_y;
        ] );
    ]
