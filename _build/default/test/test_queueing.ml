(* Tests for the queueing substrate: Pollaczek–Khinchine forms and
   the paper's channel-blocking recursion. *)

module Mg1 = Fatnet_queueing.Mg1
module Blocking = Fatnet_queueing.Blocking

let check_float = Alcotest.(check (float 1e-9))

let utilization_basics () =
  check_float "rho" 0.5 (Mg1.utilization ~lambda:0.5 ~service:(Mg1.deterministic 1.));
  Alcotest.(check bool) "stable" true (Mg1.is_stable ~lambda:0.5 ~service:(Mg1.deterministic 1.));
  Alcotest.(check bool) "unstable" false (Mg1.is_stable ~lambda:2. ~service:(Mg1.deterministic 1.))

let mg1_reduces_to_mm1 () =
  (* With exponential service the P-K formula must equal the M/M/1
     closed form. *)
  List.iter
    (fun (lambda, mu) ->
      let w_pk = Mg1.waiting_time ~lambda ~service:(Mg1.exponential ~mean:(1. /. mu)) in
      let w_mm1 = Mg1.mm1_waiting_time ~lambda ~mu in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "λ=%g μ=%g" lambda mu) w_mm1 w_pk)
    [ (0.1, 1.); (0.5, 1.); (0.9, 1.); (2., 5.); (0.3, 0.5) ]

let mg1_reduces_to_md1 () =
  List.iter
    (fun (lambda, mean) ->
      let w_pk = Mg1.waiting_time ~lambda ~service:(Mg1.deterministic mean) in
      let w_md1 = Mg1.md1_waiting_time ~lambda ~mean in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "λ=%g x=%g" lambda mean) w_md1 w_pk)
    [ (0.1, 1.); (0.5, 1.); (0.9, 1.); (0.05, 10.) ]

let mg1_zero_arrivals () =
  check_float "no arrivals, no wait" 0.
    (Mg1.waiting_time ~lambda:0. ~service:(Mg1.exponential ~mean:3.))

let mg1_saturated_is_infinite () =
  Alcotest.(check bool) "rho=1 diverges" true
    (Mg1.waiting_time ~lambda:1. ~service:(Mg1.deterministic 1.) = infinity);
  Alcotest.(check bool) "rho>1 diverges" true
    (Mg1.waiting_time ~lambda:2. ~service:(Mg1.deterministic 1.) = infinity)

let mg1_monotone_in_lambda =
  QCheck.Test.make ~name:"P-K wait increases with load" ~count:300
    QCheck.(pair (float_range 0.01 0.9) (float_range 0.01 0.9))
    (fun (l1, l2) ->
      let lo = Float.min l1 l2 and hi = Float.max l1 l2 in
      let service = Mg1.exponential ~mean:1. in
      Mg1.waiting_time ~lambda:lo ~service <= Mg1.waiting_time ~lambda:hi ~service +. 1e-12)

let mg1_variance_increases_wait =
  QCheck.Test.make ~name:"more service variance, more wait" ~count:300
    QCheck.(pair (float_range 0.01 0.9) (float_range 0. 5.))
    (fun (lambda, extra_var) ->
      let base = { Mg1.mean = 1.; variance = 0. } in
      let noisy = { Mg1.mean = 1.; variance = extra_var } in
      Mg1.waiting_time ~lambda ~service:base
      <= Mg1.waiting_time ~lambda ~service:noisy +. 1e-12)

let mg1_sojourn () =
  let service = Mg1.deterministic 2. in
  check_float "sojourn = wait + service"
    (Mg1.waiting_time ~lambda:0.2 ~service +. 2.)
    (Mg1.sojourn_time ~lambda:0.2 ~service)

let mg1_rejects_negative () =
  Alcotest.check_raises "negative mean" (Invalid_argument "Mg1: negative service mean")
    (fun () -> ignore (Mg1.waiting_time ~lambda:0.1 ~service:{ Mg1.mean = -1.; variance = 0. }));
  Alcotest.check_raises "negative lambda"
    (Invalid_argument "Mg1.waiting_time: negative arrival rate") (fun () ->
      ignore (Mg1.waiting_time ~lambda:(-0.1) ~service:(Mg1.deterministic 1.)))

let blocking_wait_form () =
  check_float "half eta T^2" (0.5 *. 0.1 *. 9.) (Blocking.wait ~eta:0.1 ~service_time:3.)

let blocking_zero_rate () =
  check_float "no traffic, no blocking" 0. (Blocking.wait ~eta:0. ~service_time:100.)

let stage_times_single_stage () =
  let t =
    Blocking.stage_service_times ~final:7. ~internal:(fun _ -> 99.) ~eta:(fun _ -> 1.)
      ~stages:1
  in
  Alcotest.(check int) "one stage" 1 (Array.length t);
  check_float "single stage is the final hop" 7. t.(0)

let stage_times_zero_load_is_transfer_time () =
  let t =
    Blocking.stage_service_times ~final:5. ~internal:(fun _ -> 10.) ~eta:(fun _ -> 0.)
      ~stages:4
  in
  check_float "stage 0 at zero load" 10. t.(0);
  check_float "stage 2 at zero load" 10. t.(2);
  check_float "last stage" 5. t.(3)

let stage_times_eq14_hand_computed () =
  (* Two stages, eta = 0.1 on each: T1 = final = 4;
     T0 = internal + ½·0.1·16 = 10 + 0.8. *)
  let t =
    Blocking.stage_service_times ~final:4. ~internal:(fun _ -> 10.) ~eta:(fun _ -> 0.1)
      ~stages:2
  in
  check_float "T1" 4. t.(1);
  check_float "T0" 10.8 t.(0);
  (* Three stages: T2 = 4; T1 = 10 + ½·0.1·16 = 10.8;
     T0 = 10 + W2 + W1 = 10 + 0.8 + ½·0.1·10.8² = 16.632... *)
  let t3 =
    Blocking.stage_service_times ~final:4. ~internal:(fun _ -> 10.) ~eta:(fun _ -> 0.1)
      ~stages:3
  in
  check_float "T0 three stages" (10. +. 0.8 +. (0.05 *. 10.8 *. 10.8)) t3.(0)

let stage_times_monotone_in_eta =
  QCheck.Test.make ~name:"head latency increases with channel rate" ~count:200
    QCheck.(pair (float_range 0. 0.05) (float_range 0. 0.05))
    (fun (e1, e2) ->
      let lo = Float.min e1 e2 and hi = Float.max e1 e2 in
      let head eta =
        (Blocking.stage_service_times ~final:4. ~internal:(fun _ -> 10.)
           ~eta:(fun _ -> eta)
           ~stages:5).(0)
      in
      head lo <= head hi +. 1e-12)

let stage_times_monotone_in_depth =
  QCheck.Test.make ~name:"head latency increases with path depth" ~count:100
    QCheck.(int_range 1 12)
    (fun stages ->
      let head s =
        (Blocking.stage_service_times ~final:4. ~internal:(fun _ -> 10.)
           ~eta:(fun _ -> 0.01)
           ~stages:s).(0)
      in
      stages < 2 || head stages >= head (stages - 1) -. 1e-12)

let littles_law_forms () =
  let service = Mg1.exponential ~mean:1. in
  let lambda = 0.6 in
  check_float "L_q = λW"
    (lambda *. Mg1.waiting_time ~lambda ~service)
    (Mg1.queue_length ~lambda ~service);
  check_float "L = λ(W + x̄)"
    (lambda *. Mg1.sojourn_time ~lambda ~service)
    (Mg1.system_length ~lambda ~service)

let busy_period_cases () =
  check_float "idle system" 2. (Mg1.busy_period ~lambda:0. ~service:(Mg1.deterministic 2.));
  check_float "half loaded" 4. (Mg1.busy_period ~lambda:0.25 ~service:(Mg1.deterministic 2.));
  Alcotest.(check bool) "saturated" true
    (Mg1.busy_period ~lambda:1. ~service:(Mg1.deterministic 1.) = infinity)

let cv_cases () =
  check_float "deterministic" 0. (Mg1.coefficient_of_variation (Mg1.deterministic 3.));
  check_float "exponential" 1. (Mg1.coefficient_of_variation (Mg1.exponential ~mean:3.))

(* Event-driven single-server FIFO queue: the Lindley recursion
   W_{k+1} = max(0, W_k + S_k − A_k) measured over many customers
   must agree with Pollaczek–Khinchine.  This cross-validates the
   closed form against an independent mechanism (and the exponential
   sampler with it). *)
let simulate_mg1 ~lambda ~draw_service ~customers ~seed =
  let rng = Fatnet_prng.Rng.create ~seed () in
  let wait = ref 0. in
  let total = ref 0. in
  let warmup = customers / 10 in
  for k = 1 to customers do
    let service = draw_service rng in
    let interarrival = Fatnet_prng.Rng.exponential rng ~rate:lambda in
    if k > warmup then total := !total +. !wait;
    wait := Float.max 0. (!wait +. service -. interarrival)
  done;
  !total /. float_of_int (customers - warmup)

let pk_matches_lindley_md1 () =
  let lambda = 0.7 in
  let measured =
    simulate_mg1 ~lambda ~draw_service:(fun _ -> 1.) ~customers:300_000 ~seed:101L
  in
  let predicted = Mg1.waiting_time ~lambda ~service:(Mg1.deterministic 1.) in
  Alcotest.(check bool)
    (Printf.sprintf "M/D/1 measured %.3f vs P-K %.3f" measured predicted)
    true
    (Float.abs (measured -. predicted) /. predicted < 0.05)

let pk_matches_lindley_mm1 () =
  let lambda = 0.6 in
  let measured =
    simulate_mg1 ~lambda
      ~draw_service:(fun rng -> Fatnet_prng.Rng.exponential rng ~rate:1.)
      ~customers:300_000 ~seed:102L
  in
  let predicted = Mg1.waiting_time ~lambda ~service:(Mg1.exponential ~mean:1.) in
  Alcotest.(check bool)
    (Printf.sprintf "M/M/1 measured %.3f vs P-K %.3f" measured predicted)
    true
    (Float.abs (measured -. predicted) /. predicted < 0.05)

let pk_matches_lindley_uniform_service () =
  (* Uniform service on [0.5, 1.5]: mean 1, variance 1/12. *)
  let lambda = 0.65 in
  let measured =
    simulate_mg1 ~lambda
      ~draw_service:(fun rng -> Fatnet_prng.Rng.uniform rng ~lo:0.5 ~hi:1.5)
      ~customers:300_000 ~seed:103L
  in
  let predicted = Mg1.waiting_time ~lambda ~service:{ Mg1.mean = 1.; variance = 1. /. 12. } in
  Alcotest.(check bool)
    (Printf.sprintf "M/U/1 measured %.3f vs P-K %.3f" measured predicted)
    true
    (Float.abs (measured -. predicted) /. predicted < 0.05)

let () =
  Alcotest.run "queueing"
    [
      ( "mg1",
        [
          Alcotest.test_case "utilization" `Quick utilization_basics;
          Alcotest.test_case "reduces to M/M/1" `Quick mg1_reduces_to_mm1;
          Alcotest.test_case "reduces to M/D/1" `Quick mg1_reduces_to_md1;
          Alcotest.test_case "zero arrivals" `Quick mg1_zero_arrivals;
          Alcotest.test_case "saturated" `Quick mg1_saturated_is_infinite;
          Alcotest.test_case "sojourn" `Quick mg1_sojourn;
          Alcotest.test_case "rejects negatives" `Quick mg1_rejects_negative;
          Alcotest.test_case "little's law forms" `Quick littles_law_forms;
          Alcotest.test_case "busy period" `Quick busy_period_cases;
          Alcotest.test_case "coefficient of variation" `Quick cv_cases;
          QCheck_alcotest.to_alcotest mg1_monotone_in_lambda;
          QCheck_alcotest.to_alcotest mg1_variance_increases_wait;
        ] );
      ( "cross-validation (Lindley recursion)",
        [
          Alcotest.test_case "M/D/1" `Slow pk_matches_lindley_md1;
          Alcotest.test_case "M/M/1" `Slow pk_matches_lindley_mm1;
          Alcotest.test_case "uniform service" `Slow pk_matches_lindley_uniform_service;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "wait form" `Quick blocking_wait_form;
          Alcotest.test_case "zero rate" `Quick blocking_zero_rate;
          Alcotest.test_case "single stage" `Quick stage_times_single_stage;
          Alcotest.test_case "zero load" `Quick stage_times_zero_load_is_transfer_time;
          Alcotest.test_case "eq14 hand computed" `Quick stage_times_eq14_hand_computed;
          QCheck_alcotest.to_alcotest stage_times_monotone_in_eta;
          QCheck_alcotest.to_alcotest stage_times_monotone_in_depth;
        ] );
    ]
