(* Tests for the numeric substrate: compensated summation, float
   helpers, root finding and interpolation. *)

module FU = Fatnet_numerics.Float_utils
module Sum = Fatnet_numerics.Summation
module Solver = Fatnet_numerics.Solver
module Interp = Fatnet_numerics.Interp
module Memo = Fatnet_numerics.Memo
module Metrics = Fatnet_obs.Metrics

let check_float = Alcotest.(check (float 1e-9))

let approx_equal_basics () =
  Alcotest.(check bool) "equal" true (FU.approx_equal 1. 1.);
  Alcotest.(check bool) "close rel" true (FU.approx_equal 1. (1. +. 1e-12));
  Alcotest.(check bool) "far" false (FU.approx_equal 1. 1.1);
  Alcotest.(check bool) "abs tolerance near zero" true (FU.approx_equal 0. 1e-13)

let relative_error_cases () =
  check_float "10% error" 0.1 (FU.relative_error ~expected:10. ~actual:11.);
  check_float "zero expected falls back to abs" 0.5 (FU.relative_error ~expected:0. ~actual:0.5)

let safe_div_cases () =
  check_float "normal" 2. (FU.safe_div 4. 2.);
  Alcotest.(check bool) "pos/0 = inf" true (FU.safe_div 1. 0. = infinity);
  Alcotest.(check bool) "neg/0 = -inf" true (FU.safe_div (-1.) 0. = neg_infinity);
  check_float "0/0 = 0" 0. (FU.safe_div 0. 0.)

let clamp_cases () =
  check_float "below" 0. (FU.clamp ~lo:0. ~hi:1. (-3.));
  check_float "above" 1. (FU.clamp ~lo:0. ~hi:1. 7.);
  check_float "inside" 0.5 (FU.clamp ~lo:0. ~hi:1. 0.5);
  Alcotest.check_raises "bad bounds" (Invalid_argument "Float_utils.clamp: lo > hi") (fun () ->
      ignore (FU.clamp ~lo:1. ~hi:0. 0.5))

let array_sums () =
  check_float "empty sum" 0. (FU.sum_array [||]);
  check_float "singleton sum" 3.5 (FU.sum_array [| 3.5 |]);
  check_float "several" 6. (FU.sum_array [| 1.; 2.; 3. |]);
  check_float "empty mean" 0. (FU.mean_of_array [||]);
  check_float "singleton mean" 3.5 (FU.mean_of_array [| 3.5 |]);
  check_float "several mean" 2. (FU.mean_of_array [| 1.; 2.; 3. |]);
  (* sum_array folds left-to-right, like the list folds it replaces
     in the model layer — same bits, not merely close. *)
  let xs = [| 1e16; 1.; -1e16; 1. |] in
  Alcotest.(check int64) "left-to-right association"
    (Int64.bits_of_float (List.fold_left ( +. ) 0. (Array.to_list xs)))
    (Int64.bits_of_float (FU.sum_array xs))

let compensated_sum_beats_naive () =
  (* 1 + 1e-16 added 10^7 times loses everything naively but not
     compensated. *)
  let tiny = 1e-16 in
  let n = 1_000_000 in
  let acc = Sum.create () in
  Sum.add acc 1.;
  for _ = 1 to n do
    Sum.add acc tiny
  done;
  let compensated = Sum.total acc -. 1. in
  let naive = ref 1. in
  for _ = 1 to n do
    naive := !naive +. tiny
  done;
  let naive_err = Float.abs (!naive -. 1. -. (float_of_int n *. tiny)) in
  let comp_err = Float.abs (compensated -. (float_of_int n *. tiny)) in
  Alcotest.(check bool) "compensated at least as accurate" true (comp_err <= naive_err);
  (* the compensated total is accurate to ~1 ulp of the total, i.e.
     ~1e-16 here, while the naive sum loses the entire 1e-10 *)
  Alcotest.(check bool) "compensated accurate to ulp" true (comp_err < 1e-15);
  Alcotest.(check bool) "naive loses the increments" true (naive_err > 1e-12)

let sum_over_matches_list () =
  let f i = float_of_int i *. 0.1 in
  check_float "sum_over" (Sum.sum (List.init 10 f)) (Sum.sum_over 10 f)

let sum_agrees_with_naive =
  QCheck.Test.make ~name:"compensated sum matches naive on benign input" ~count:300
    QCheck.(list (float_range (-1000.) 1000.))
    (fun xs ->
      let naive = List.fold_left ( +. ) 0. xs in
      Float.abs (Sum.sum xs -. naive) <= 1e-9 *. Float.max 1. (Float.abs naive))

let bisect_finds_sqrt2 () =
  let f x = (x *. x) -. 2. in
  let root = Solver.bisect ~f ~lo:0. ~hi:2. () in
  Alcotest.(check (float 1e-9)) "sqrt 2" (sqrt 2.) root

let bisect_rejects_bad_bracket () =
  Alcotest.check_raises "no sign change"
    (Invalid_argument "Solver.bisect: no sign change on bracket") (fun () ->
      ignore (Solver.bisect ~f:(fun x -> x +. 10.) ~lo:0. ~hi:1. ()))

let bisect_endpoint_root () =
  check_float "root at lo" 0. (Solver.bisect ~f:(fun x -> x) ~lo:0. ~hi:1. ())

let boundary_finds_threshold () =
  let threshold = 0.37 in
  let b = Solver.boundary ~pred:(fun x -> x >= threshold) ~lo:0. ~hi:1. () in
  Alcotest.(check (float 1e-9)) "threshold" threshold b

let upper_bracket_doubles () =
  let x = Solver.find_upper_bracket ~f:(fun x -> x > 50.) ~lo:1. () in
  Alcotest.(check bool) "first doubling past 50" true (x = 64.)

let boundary_warm_cold_matches_canonical () =
  let pred x = x >= 0.37 in
  let cold =
    let hi = Solver.find_upper_bracket ~f:pred ~lo:1e-9 () in
    Solver.boundary ~pred ~lo:0. ~hi ()
  in
  let state = Solver.bracket_state () in
  let first = Solver.boundary_warm ~state ~pred ~lo:0. () in
  Alcotest.(check int64) "first solve runs the cold sequence bit-for-bit"
    (Int64.bits_of_float cold) (Int64.bits_of_float first)

let boundary_warm_tracks_threshold () =
  let state = Solver.bracket_state () in
  let solve t = Solver.boundary_warm ~state ~pred:(fun x -> x >= t) ~lo:0. () in
  (* Small drifts both ways, big jumps both ways, and an exact
     repeat — the bracket follows every time. *)
  List.iter
    (fun t -> Alcotest.(check (float 1e-9)) (Printf.sprintf "threshold %g" t) t (solve t))
    [ 0.37; 0.3704; 0.3697; 0.52; 0.11; 0.11 ];
  Solver.bracket_reset state;
  Alcotest.(check (float 1e-9)) "after reset" 0.25 (solve 0.25)

let boundary_warm_rejects_true_at_lo () =
  let state = Solver.bracket_state () in
  ignore (Solver.boundary_warm ~state ~pred:(fun x -> x >= 0.5) ~lo:0.1 ());
  Alcotest.check_raises "pred true everywhere above lo"
    (Invalid_argument "Solver.boundary_warm: pred already true at lo")
    (fun () -> ignore (Solver.boundary_warm ~state ~pred:(fun _ -> true) ~lo:0.1 ()))

let bisect_property =
  QCheck.Test.make ~name:"bisect root has small residual" ~count:200
    QCheck.(float_range 0.1 100.)
    (fun target ->
      let f x = x -. target in
      let root = Solver.bisect ~f ~lo:0. ~hi:200. () in
      Float.abs (f root) < 1e-6)

let interp_exact_at_knots () =
  let f = Interp.create [| (0., 1.); (1., 3.); (2., 2.) |] in
  check_float "knot 0" 1. (Interp.eval f 0.);
  check_float "knot 1" 3. (Interp.eval f 1.);
  check_float "knot 2" 2. (Interp.eval f 2.)

let interp_linear_between () =
  let f = Interp.create [| (0., 0.); (2., 4.) |] in
  check_float "midpoint" 2. (Interp.eval f 1.);
  check_float "quarter" 1. (Interp.eval f 0.5)

let interp_constant_outside () =
  let f = Interp.create [| (0., 5.); (1., 6.) |] in
  check_float "below" 5. (Interp.eval f (-10.));
  check_float "above" 6. (Interp.eval f 10.)

let interp_rejects_duplicates () =
  Alcotest.check_raises "duplicate x" (Invalid_argument "Interp.create: duplicate x value")
    (fun () -> ignore (Interp.create [| (1., 0.); (1., 1.) |]))

let interp_sorts_input () =
  let f = Interp.create [| (2., 20.); (0., 0.); (1., 10.) |] in
  check_float "sorted eval" 15. (Interp.eval f 1.5)

let interp_within_envelope =
  QCheck.Test.make ~name:"interpolation stays within the y envelope" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 2 10) (pair (float_range 0. 100.) (float_range (-50.) 50.))) (float_range 0. 100.))
    (fun (pts, x) ->
      (* deduplicate x values to satisfy the precondition *)
      let module FM = Map.Make (Float) in
      let uniq = List.fold_left (fun m (x, y) -> FM.add x y m) FM.empty pts in
      let pts = FM.bindings uniq in
      QCheck.assume (List.length pts >= 2);
      let f = Interp.create (Array.of_list pts) in
      let ys = List.map snd pts in
      let lo = List.fold_left Float.min infinity ys in
      let hi = List.fold_left Float.max neg_infinity ys in
      let y = Interp.eval f x in
      y >= lo -. 1e-9 && y <= hi +. 1e-9)

(* ---- sharded memo ---- *)

let memo_find_store_roundtrip () =
  let m = Memo.create () in
  Alcotest.(check (option int)) "empty" None (Memo.find m ~key:"a" ~bits:1L);
  Memo.store m ~key:"a" ~bits:1L 10;
  Memo.store m ~key:"a" ~bits:2L 20;
  Memo.store m ~key:"b" ~bits:1L 30;
  Alcotest.(check (option int)) "a/1" (Some 10) (Memo.find m ~key:"a" ~bits:1L);
  Alcotest.(check (option int)) "a/2" (Some 20) (Memo.find m ~key:"a" ~bits:2L);
  Alcotest.(check (option int)) "b/1" (Some 30) (Memo.find m ~key:"b" ~bits:1L);
  Alcotest.(check (option int)) "b/2" None (Memo.find m ~key:"b" ~bits:2L);
  Memo.store m ~key:"a" ~bits:1L 11;
  Alcotest.(check (option int)) "overwrite" (Some 11) (Memo.find m ~key:"a" ~bits:1L);
  Alcotest.(check int) "entries" 3 (Memo.length m);
  let hits = Memo.hits m and misses = Memo.misses m in
  Memo.clear m;
  Alcotest.(check int) "cleared" 0 (Memo.length m);
  Alcotest.(check (option int)) "gone" None (Memo.find m ~key:"a" ~bits:1L);
  Alcotest.(check int) "hit totals survive clear" hits (Memo.hits m);
  Alcotest.(check int) "miss totals count the post-clear probe" (misses + 1)
    (Memo.misses m)

let memo_find_or_compute () =
  let m = Memo.create ~shards:3 () in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  Alcotest.(check int) "computed" 42 (Memo.find_or_compute m ~key:"k" ~bits:7L compute);
  Alcotest.(check int) "memoised" 42 (Memo.find_or_compute m ~key:"k" ~bits:7L compute);
  Alcotest.(check int) "thunk ran once" 1 !calls;
  Alcotest.(check int) "one hit" 1 (Memo.hits m);
  Alcotest.(check int) "one miss" 1 (Memo.misses m);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Memo.hit_rate m);
  let empty = Memo.create () in
  Alcotest.(check (float 0.)) "no lookups, rate 0" 0. (Memo.hit_rate empty)

let memo_metric_counters () =
  let reg = Metrics.create () in
  Metrics.with_ambient reg (fun () ->
      let m = Memo.create ~metric:"model_memo" () in
      ignore (Memo.find_or_compute m ~key:"k" ~bits:1L (fun () -> 1.));
      ignore (Memo.find_or_compute m ~key:"k" ~bits:1L (fun () -> 1.));
      ignore (Memo.find m ~key:"other" ~bits:1L));
  let count name =
    match Metrics.Snapshot.find (Metrics.snapshot reg) name with
    | Some (Metrics.Snapshot.Counter n) -> n
    | _ -> 0
  in
  Alcotest.(check int) "ambient hits" 1 (count "model_memo_hits");
  Alcotest.(check int) "ambient misses" 2 (count "model_memo_misses")

let memo_parallel_hammer () =
  (* Many domains racing over a small key set: the value for a key is
     a pure function of the key, so every lookup must return that
     value and the table must converge to exactly the key set. *)
  let m = Memo.create ~shards:4 () in
  let keys = 16 and rounds = 500 in
  let value k b = (k * 1000) + Int64.to_int b in
  let worker seed () =
    for i = 0 to rounds - 1 do
      let k = (i + seed) mod keys in
      let bits = Int64.of_int (k mod 3) in
      let got =
        Memo.find_or_compute m ~key:(string_of_int k) ~bits (fun () ->
            value k bits)
      in
      if got <> value k bits then failwith "memo returned a foreign value"
    done
  in
  let domains = List.init 3 (fun d -> Domain.spawn (worker (d * 5))) in
  worker 1 ();
  List.iter Domain.join domains;
  Alcotest.(check int) "one entry per key" keys (Memo.length m);
  for k = 0 to keys - 1 do
    let bits = Int64.of_int (k mod 3) in
    Alcotest.(check (option int))
      (Printf.sprintf "key %d" k)
      (Some (value k bits))
      (Memo.find m ~key:(string_of_int k) ~bits)
  done

let memo_capacity_bound () =
  let m = Memo.create ~shards:1 ~capacity:4 () in
  Alcotest.(check (option int)) "capacity accessor" (Some 4) (Memo.capacity m);
  Alcotest.(check (option int)) "unbounded has none" None
    (Memo.capacity (Memo.create ()));
  for k = 0 to 9 do
    Memo.store m ~key:(string_of_int k) ~bits:0L k
  done;
  Alcotest.(check int) "bounded at capacity" 4 (Memo.length m);
  Alcotest.(check int) "evictions counted" 6 (Memo.evictions m);
  (* The newest insert always survives its own insertion. *)
  Alcotest.(check (option int)) "newest survives" (Some 9)
    (Memo.find m ~key:"9" ~bits:0L);
  (* Overwriting a resident key neither grows nor evicts. *)
  Memo.store m ~key:"9" ~bits:0L 99;
  Alcotest.(check int) "overwrite keeps size" 4 (Memo.length m);
  Alcotest.(check int) "overwrite evicts nothing" 6 (Memo.evictions m);
  Memo.clear m;
  Alcotest.(check int) "cleared" 0 (Memo.length m);
  Memo.store m ~key:"fresh" ~bits:0L 1;
  Alcotest.(check (option int)) "usable after clear" (Some 1)
    (Memo.find m ~key:"fresh" ~bits:0L);
  Alcotest.check_raises "capacity < 1 rejected"
    (Invalid_argument "Memo.create: capacity must be >= 1") (fun () ->
      ignore (Memo.create ~capacity:0 ()))

let memo_second_chance_protects_hot () =
  (* Fill a 4-slot shard, keep hitting one key, and stream strangers
     through: the clock hand must skip the re-armed hot entry every
     lap, so it survives arbitrarily many evictions.  ("hot" is not
     placed in slot 0: a freshly filled ring is fully armed, so the
     very first sweep disarms everything and falls back to FIFO,
     taking slot 0 — that victim is "a".) *)
  let m = Memo.create ~shards:1 ~capacity:4 () in
  List.iter (fun k -> Memo.store m ~key:k ~bits:0L 0) [ "a"; "hot"; "b"; "c" ];
  for i = 0 to 19 do
    Alcotest.(check (option int))
      (Printf.sprintf "hot alive at round %d" i)
      (Some 0)
      (Memo.find m ~key:"hot" ~bits:0L);
    Memo.store m ~key:(Printf.sprintf "stranger%d" i) ~bits:0L i
  done;
  Alcotest.(check (option int)) "hot survived 20 evictions" (Some 0)
    (Memo.find m ~key:"hot" ~bits:0L);
  Alcotest.(check int) "still at capacity" 4 (Memo.length m);
  Alcotest.(check int) "20 evictions" 20 (Memo.evictions m)

let memo_eviction_metric () =
  let reg = Metrics.create () in
  Metrics.with_ambient reg (fun () ->
      let m = Memo.create ~shards:1 ~capacity:2 ~metric:"serve_memo" () in
      for k = 0 to 4 do
        Memo.store m ~key:(string_of_int k) ~bits:0L k
      done);
  match Metrics.Snapshot.find (Metrics.snapshot reg) "serve_memo_evictions" with
  | Some (Metrics.Snapshot.Counter n) ->
      Alcotest.(check int) "ambient eviction counter" 3 n
  | _ -> Alcotest.fail "serve_memo_evictions counter missing"

let memo_capacity_parallel_hammer () =
  (* The bounded-memo analogue of the hammer above: domains race over
     a key population larger than the total capacity, so evictions
     happen constantly under contention.  The memo may forget, but it
     must never return a foreign value, exceed its bound, or lose an
     eviction count. *)
  let m = Memo.create ~shards:2 ~capacity:8 () in
  let keys = 64 and rounds = 2_000 in
  let value k b = (k * 1000) + Int64.to_int b in
  let worker seed () =
    for i = 0 to rounds - 1 do
      let k = (i * 7) + seed land (keys - 1) in
      let k = k land (keys - 1) in
      let bits = Int64.of_int (k mod 3) in
      let got =
        Memo.find_or_compute m ~key:(string_of_int k) ~bits (fun () ->
            value k bits)
      in
      if got <> value k bits then failwith "bounded memo returned a foreign value"
    done
  in
  let domains = List.init 3 (fun d -> Domain.spawn (worker (d * 11))) in
  worker 1 ();
  List.iter Domain.join domains;
  Alcotest.(check bool) "within bound" true (Memo.length m <= 2 * 8);
  Alcotest.(check bool) "evictions happened" true (Memo.evictions m > 0);
  (* Whatever survived must still be the right value for its key. *)
  for k = 0 to keys - 1 do
    let bits = Int64.of_int (k mod 3) in
    match Memo.find m ~key:(string_of_int k) ~bits with
    | None -> ()
    | Some v ->
        Alcotest.(check int) (Printf.sprintf "survivor %d" k) (value k bits) v
  done

let () =
  Alcotest.run "numerics"
    [
      ( "float_utils",
        [
          Alcotest.test_case "approx_equal" `Quick approx_equal_basics;
          Alcotest.test_case "relative_error" `Quick relative_error_cases;
          Alcotest.test_case "safe_div" `Quick safe_div_cases;
          Alcotest.test_case "clamp" `Quick clamp_cases;
          Alcotest.test_case "array sums" `Quick array_sums;
        ] );
      ( "summation",
        [
          Alcotest.test_case "compensated beats naive" `Quick compensated_sum_beats_naive;
          Alcotest.test_case "sum_over" `Quick sum_over_matches_list;
          QCheck_alcotest.to_alcotest sum_agrees_with_naive;
        ] );
      ( "solver",
        [
          Alcotest.test_case "sqrt 2" `Quick bisect_finds_sqrt2;
          Alcotest.test_case "bad bracket" `Quick bisect_rejects_bad_bracket;
          Alcotest.test_case "endpoint root" `Quick bisect_endpoint_root;
          Alcotest.test_case "boundary" `Quick boundary_finds_threshold;
          Alcotest.test_case "upper bracket" `Quick upper_bracket_doubles;
          Alcotest.test_case "warm first solve = cold" `Quick
            boundary_warm_cold_matches_canonical;
          Alcotest.test_case "warm tracks threshold" `Quick boundary_warm_tracks_threshold;
          Alcotest.test_case "warm rejects pred true at lo" `Quick
            boundary_warm_rejects_true_at_lo;
          QCheck_alcotest.to_alcotest bisect_property;
        ] );
      ( "memo",
        [
          Alcotest.test_case "find/store roundtrip" `Quick memo_find_store_roundtrip;
          Alcotest.test_case "find_or_compute" `Quick memo_find_or_compute;
          Alcotest.test_case "ambient metric counters" `Quick memo_metric_counters;
          Alcotest.test_case "parallel hammer" `Quick memo_parallel_hammer;
          Alcotest.test_case "capacity bound" `Quick memo_capacity_bound;
          Alcotest.test_case "second chance protects hot keys" `Quick
            memo_second_chance_protects_hot;
          Alcotest.test_case "eviction metric" `Quick memo_eviction_metric;
          Alcotest.test_case "bounded parallel hammer" `Quick
            memo_capacity_parallel_hammer;
        ] );
      ( "interp",
        [
          Alcotest.test_case "exact at knots" `Quick interp_exact_at_knots;
          Alcotest.test_case "linear between" `Quick interp_linear_between;
          Alcotest.test_case "constant outside" `Quick interp_constant_outside;
          Alcotest.test_case "rejects duplicates" `Quick interp_rejects_duplicates;
          Alcotest.test_case "sorts input" `Quick interp_sorts_input;
          QCheck_alcotest.to_alcotest interp_within_envelope;
        ] );
    ]
