(* Tests for the statistics substrate: Welford moments, histograms,
   P² quantiles and batch-means confidence intervals. *)

module W = Fatnet_stats.Welford
module H = Fatnet_stats.Histogram
module Q = Fatnet_stats.Quantile
module B = Fatnet_stats.Batch_means

let check_float = Alcotest.(check (float 1e-9))

let naive_mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let naive_variance xs =
  let m = naive_mean xs in
  let n = List.length xs in
  if n < 2 then 0.
  else
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. float_of_int (n - 1)

let welford_empty () =
  let w = W.create () in
  Alcotest.(check int) "count" 0 (W.count w);
  check_float "mean" 0. (W.mean w);
  check_float "variance" 0. (W.variance w)

let welford_single () =
  let w = W.create () in
  W.add w 5.;
  check_float "mean" 5. (W.mean w);
  check_float "variance of one sample" 0. (W.variance w);
  check_float "min" 5. (W.min_value w);
  check_float "max" 5. (W.max_value w)

let welford_known () =
  let w = W.create () in
  List.iter (W.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_float "mean" 5. (W.mean w);
  check_float "variance" 4.571428571428571 (W.variance w);
  check_float "min" 2. (W.min_value w);
  check_float "max" 9. (W.max_value w)

let welford_matches_naive =
  QCheck.Test.make ~name:"welford matches two-pass moments" ~count:300
    QCheck.(list_of_size (Gen.int_range 2 100) (float_range (-100.) 100.))
    (fun xs ->
      let w = W.create () in
      List.iter (W.add w) xs;
      Float.abs (W.mean w -. naive_mean xs) < 1e-9
      && Float.abs (W.variance w -. naive_variance xs) < 1e-6)

let welford_merge_matches_sequential =
  QCheck.Test.make ~name:"merged welford equals sequential" ~count:300
    QCheck.(pair (list (float_range (-10.) 10.)) (list (float_range (-10.) 10.)))
    (fun (xs, ys) ->
      QCheck.assume (xs <> [] && ys <> []);
      let a = W.create () and b = W.create () and all = W.create () in
      List.iter (W.add a) xs;
      List.iter (W.add b) ys;
      List.iter (W.add all) (xs @ ys);
      let m = W.merge a b in
      W.count m = W.count all
      && Float.abs (W.mean m -. W.mean all) < 1e-9
      && Float.abs (W.variance m -. W.variance all) < 1e-6)

let histogram_binning () =
  let h = H.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (H.add h) [ 0.5; 1.5; 1.7; 9.9; -1.; 10.; 25. ];
  Alcotest.(check int) "total" 7 (H.count h);
  Alcotest.(check int) "bin 0" 1 (H.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (H.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (H.bin_count h 9);
  Alcotest.(check int) "underflow" 1 (H.underflow h);
  Alcotest.(check int) "overflow" 2 (H.overflow h)

let histogram_bounds () =
  let h = H.create ~lo:0. ~hi:4. ~bins:4 in
  let lo, hi = H.bin_bounds h 2 in
  check_float "lo" 2. lo;
  check_float "hi" 3. hi

let histogram_cdf () =
  let h = H.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (H.add h) [ 0.5; 1.5; 2.5; 3.5 ];
  check_float "half below 2" 0.5 (H.fraction_below h 2.)

let histogram_counts_everything =
  QCheck.Test.make ~name:"histogram loses no sample" ~count:200
    QCheck.(list (float_range (-20.) 20.))
    (fun xs ->
      let h = H.create ~lo:(-10.) ~hi:10. ~bins:7 in
      List.iter (H.add h) xs;
      let binned = List.init 7 (H.bin_count h) |> List.fold_left ( + ) 0 in
      binned + H.underflow h + H.overflow h = List.length xs)

let histogram_merge_matches_sequential =
  QCheck.Test.make ~name:"merged histogram equals sequential" ~count:200
    QCheck.(pair (list (float_range (-20.) 20.)) (list (float_range (-20.) 20.)))
    (fun (xs, ys) ->
      let a = H.create ~lo:(-10.) ~hi:10. ~bins:7 in
      let b = H.create ~lo:(-10.) ~hi:10. ~bins:7 in
      let all = H.create ~lo:(-10.) ~hi:10. ~bins:7 in
      List.iter (H.add a) xs;
      List.iter (H.add b) ys;
      List.iter (H.add all) (xs @ ys);
      let m = H.merge a b in
      H.count m = H.count all
      && H.underflow m = H.underflow all
      && H.overflow m = H.overflow all
      && List.for_all (fun i -> H.bin_count m i = H.bin_count all i) (List.init 7 Fun.id))

let histogram_merge_pure () =
  let a = H.create ~lo:0. ~hi:10. ~bins:5 in
  let b = H.create ~lo:0. ~hi:10. ~bins:5 in
  H.add a 1.;
  H.add b 9.;
  let m = H.merge a b in
  Alcotest.(check int) "merged total" 2 (H.count m);
  Alcotest.(check int) "a unchanged" 1 (H.count a);
  Alcotest.(check int) "b unchanged" 1 (H.count b)

let histogram_merge_layout_mismatch () =
  let a = H.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter
    (fun bad ->
      Alcotest.check_raises "layout mismatch rejected"
        (Invalid_argument "Histogram.merge: layouts differ") (fun () -> ignore (H.merge a bad)))
    [
      H.create ~lo:1. ~hi:10. ~bins:5;
      H.create ~lo:0. ~hi:11. ~bins:5;
      H.create ~lo:0. ~hi:10. ~bins:6;
    ]

let quantile_small_samples_exact () =
  let q = Q.create ~q:0.5 in
  List.iter (Q.add q) [ 3.; 1.; 2. ];
  check_float "median of three" 2. (Q.estimate q)

let quantile_median_uniform () =
  let q = Q.create ~q:0.5 in
  let rng = Fatnet_prng.Rng.create ~seed:3L () in
  for _ = 1 to 50_000 do
    Q.add q (Fatnet_prng.Rng.float rng)
  done;
  Alcotest.(check bool) "median near 0.5" true (Float.abs (Q.estimate q -. 0.5) < 0.02)

let quantile_p99_exponential () =
  let q = Q.create ~q:0.99 in
  let rng = Fatnet_prng.Rng.create ~seed:4L () in
  for _ = 1 to 100_000 do
    Q.add q (Fatnet_prng.Rng.exponential rng ~rate:1.)
  done;
  (* true p99 of Exp(1) is ln(100) ≈ 4.605 *)
  Alcotest.(check bool) "p99 near ln 100" true (Float.abs (Q.estimate q -. 4.605) < 0.35)

let quantile_vs_exact =
  QCheck.Test.make ~name:"P² near exact quantile on big samples" ~count:20
    QCheck.(pair (int_range 1 1000) (float_range 0.1 0.9))
    (fun (seed, target) ->
      let rng = Fatnet_prng.Rng.create ~seed:(Int64.of_int seed) () in
      let n = 5000 in
      let samples = Array.init n (fun _ -> Fatnet_prng.Rng.float rng) in
      let q = Q.create ~q:target in
      Array.iter (Q.add q) samples;
      let sorted = Array.copy samples in
      Array.sort Float.compare sorted;
      let exact = Q.exact_of_sorted sorted ~q:target in
      Float.abs (Q.estimate q -. exact) < 0.05)

(* The per-point sweep summaries report P² medians and p99s, so pin
   both against the exact sorted-sample quantiles on randomized,
   latency-shaped (skewed, heavy-tailed) inputs.  The tolerance band
   is in {e rank} space: the estimate must fall between the exact
   q−0.05 and q+0.05 sample quantiles (and inside the sample range).
   A value-space band is meaningless on a heavy tail — the spread is
   dominated by the max while the p99 neighbourhood is sparse; an
   empirical scan of 4 000 seeds at n ≥ 300 puts the worst rank error
   at ≈ 0.034 for both quantiles, so 0.05 is a safe band. *)
let quantile_median_p99_vs_exact =
  let rank_band sorted ~q estimate =
    let n = Array.length sorted in
    let lo = Q.exact_of_sorted sorted ~q:(Float.max 0. (q -. 0.05)) in
    let hi = Q.exact_of_sorted sorted ~q:(Float.min 1. (q +. 0.05)) in
    lo <= estimate && estimate <= hi
    && sorted.(0) <= estimate && estimate <= sorted.(n - 1)
  in
  QCheck.Test.make ~name:"P² median and p99 within bands of exact quantiles" ~count:60
    QCheck.(triple (int_range 1 100_000) (int_range 300 4_000) (float_range 0.5 50.))
    (fun (seed, n, scale) ->
      let rng = Fatnet_prng.Rng.create ~seed:(Int64.of_int seed) () in
      let sample () =
        (* bimodal: a light cluster plus an exponential tail *)
        if Fatnet_prng.Rng.float rng < 0.3 then scale *. Fatnet_prng.Rng.float rng
        else scale +. Fatnet_prng.Rng.exponential rng ~rate:(1. /. scale)
      in
      let samples = Array.init n (fun _ -> sample ()) in
      let p50 = Q.create ~q:0.5 and p99 = Q.create ~q:0.99 in
      Array.iter
        (fun x ->
          Q.add p50 x;
          Q.add p99 x)
        samples;
      let sorted = Array.copy samples in
      Array.sort Float.compare sorted;
      rank_band sorted ~q:0.5 (Q.estimate p50)
      && rank_band sorted ~q:0.99 (Q.estimate p99))

let quantile_merged_weighting () =
  (* Small samples estimate exactly, so the weighted combination is
     computable by hand: 3 samples with median 2 and 1 sample with
     median 10 give (3*2 + 1*10)/4. *)
  let a = Q.create ~q:0.5 and b = Q.create ~q:0.5 in
  List.iter (Q.add a) [ 3.; 1.; 2. ];
  Q.add b 10.;
  check_float "count-weighted" 4. (Q.merged_estimate [ a; b ]);
  check_float "singleton is estimate" 2. (Q.merged_estimate [ a ]);
  check_float "empty estimators ignored" 2. (Q.merged_estimate [ a; Q.create ~q:0.5 ]);
  Alcotest.(check bool) "all empty is nan" true
    (Float.is_nan (Q.merged_estimate [ Q.create ~q:0.5 ]));
  Alcotest.(check bool) "no estimators is nan" true (Float.is_nan (Q.merged_estimate []))

let quantile_merged_replications () =
  (* The cross-replication use: per-replication P² medians over the
     same distribution combine to the distribution's median. *)
  let reps =
    List.init 4 (fun i ->
        let q = Q.create ~q:0.5 in
        let rng = Fatnet_prng.Rng.create ~seed:(Int64.of_int (100 + i)) () in
        for _ = 1 to 10_000 do
          Q.add q (Fatnet_prng.Rng.float rng)
        done;
        q)
  in
  Alcotest.(check bool) "merged median near 0.5" true
    (Float.abs (Q.merged_estimate reps -. 0.5) < 0.02)

let welford_of_stats_roundtrip =
  QCheck.Test.make ~name:"of_stats reconstructs reported moments" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 80) (float_range (-50.) 50.))
    (fun xs ->
      let w = W.create () in
      List.iter (W.add w) xs;
      let r =
        W.of_stats ~n:(W.count w) ~mean:(W.mean w) ~variance:(W.variance w)
          ~min:(W.min_value w) ~max:(W.max_value w)
      in
      W.count r = W.count w
      && Float.abs (W.mean r -. W.mean w) < 1e-12
      && Float.abs (W.variance r -. W.variance w) < 1e-9
      && W.min_value r = W.min_value w
      && W.max_value r = W.max_value w)

let exact_of_sorted_cases () =
  check_float "median of evens" 2.5 (Q.exact_of_sorted [| 1.; 2.; 3.; 4. |] ~q:0.5);
  check_float "min" 1. (Q.exact_of_sorted [| 1.; 2.; 3. |] ~q:0.);
  check_float "max" 3. (Q.exact_of_sorted [| 1.; 2.; 3. |] ~q:1.)

let batch_means_mean () =
  let b = B.create ~batch_size:10 in
  for i = 1 to 100 do
    B.add b (float_of_int (i mod 10))
  done;
  Alcotest.(check int) "batches" 10 (B.completed_batches b);
  check_float "grand mean" 4.5 (B.mean b)

let batch_means_ci_covers_iid () =
  (* For IID uniform samples the 95% CI over batch means should cover
     the true mean 0.5 most of the time; with a fixed seed just check
     this instance. *)
  let b = B.create ~batch_size:100 in
  let rng = Fatnet_prng.Rng.create ~seed:21L () in
  for _ = 1 to 10_000 do
    B.add b (Fatnet_prng.Rng.float rng)
  done;
  let hw = B.half_width b ~confidence:0.95 in
  Alcotest.(check bool) "half width positive" true (hw > 0.);
  Alcotest.(check bool) "CI covers the truth" true (Float.abs (B.mean b -. 0.5) <= hw)

let batch_means_needs_two_batches () =
  let b = B.create ~batch_size:1000 in
  B.add b 1.;
  Alcotest.(check bool) "nan before two batches" true
    (Float.is_nan (B.half_width b ~confidence:0.95))

let summary_roundtrip () =
  let w = W.create () in
  List.iter (W.add w) [ 1.; 2.; 3. ];
  let s = Fatnet_stats.Summary.of_welford w ~p50:2. ~p90:2.8 ~p99:3. ~p999:3. in
  Alcotest.(check int) "count" 3 s.Fatnet_stats.Summary.count;
  check_float "mean" 2. s.Fatnet_stats.Summary.mean;
  check_float "p50" 2. s.Fatnet_stats.Summary.p50

(* The pooled-quantile property behind CI-adaptive replication
   merging: per-replication P² estimates, combined count-weighted,
   must land in a rank band of the exact quantile of the *pooled*
   sample.  The band (±0.08 in rank space, on top of P²'s own ±0.05
   band pinned above) absorbs both the P² error of each replication
   and the weighting-vs-pooling gap; an empirical scan over the
   generator's seed space puts the worst observed rank error well
   inside it. *)
let merged_estimate_vs_exact_pooled =
  QCheck.Test.make ~name:"merged P² estimate tracks the exact pooled quantile" ~count:40
    QCheck.(
      quad (int_range 1 100_000) (int_range 2 6) (int_range 400 2_000)
        (oneofl [ 0.5; 0.9; 0.99 ]))
    (fun (seed, reps, n, q) ->
      let rng = Fatnet_prng.Rng.create ~seed:(Int64.of_int seed) () in
      let scale = 10. in
      let sample () =
        if Fatnet_prng.Rng.float rng < 0.3 then scale *. Fatnet_prng.Rng.float rng
        else scale +. Fatnet_prng.Rng.exponential rng ~rate:(1. /. scale)
      in
      let all = ref [] in
      let estimators =
        List.init reps (fun _ ->
            let est = Q.create ~q in
            for _ = 1 to n do
              let x = sample () in
              all := x :: !all;
              Q.add est x
            done;
            est)
      in
      let sorted = Array.of_list !all in
      Array.sort Float.compare sorted;
      let merged = Q.merged_estimate estimators in
      let lo = Q.exact_of_sorted sorted ~q:(Float.max 0. (q -. 0.08)) in
      let hi = Q.exact_of_sorted sorted ~q:(Float.min 1. (q +. 0.08)) in
      lo <= merged && merged <= hi)

(* Summary.merge: moments pool exactly (Chan/Welford), quantiles are
   the documented count-weighted estimates. *)
module S = Fatnet_stats.Summary

let summary_merge_property =
  QCheck.Test.make ~name:"Summary.merge pools moments exactly, quantiles by count" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 60) (float_range 0. 50.))
        (list_of_size (Gen.int_range 1 60) (float_range 0. 50.)))
    (fun (xs, ys) ->
      let mk samples p =
        let w = W.create () in
        List.iter (W.add w) samples;
        S.of_welford w ~p50:p ~p90:p ~p99:p ~p999:p
      in
      let a = mk xs 1. and b = mk ys 3. in
      let m = S.merge [ a; b ] in
      let pooled = W.create () in
      List.iter (W.add pooled) (xs @ ys);
      let na = float_of_int (List.length xs) and nb = float_of_int (List.length ys) in
      m.S.count = List.length xs + List.length ys
      && Float.abs (m.S.mean -. W.mean pooled) < 1e-9
      && Float.abs (m.S.stddev -. sqrt (W.variance pooled)) < 1e-9
      && m.S.min = W.min_value pooled
      && m.S.max = W.max_value pooled
      && Float.abs (m.S.p50 -. (((na *. 1.) +. (nb *. 3.)) /. (na +. nb))) < 1e-12
      && Float.abs (m.S.p999 -. (((na *. 1.) +. (nb *. 3.)) /. (na +. nb))) < 1e-12)

let summary_merge_edges () =
  let m = S.merge [] in
  Alcotest.(check int) "empty merge count" 0 m.S.count;
  check_float "empty merge mean" S.empty.S.mean m.S.mean;
  Alcotest.(check bool) "empty merge min is nan" true (Float.is_nan m.S.min);
  Alcotest.(check bool) "empty merge p99 is nan" true (Float.is_nan m.S.p99);
  let w = W.create () in
  List.iter (W.add w) [ 1.; 2.; 3. ];
  let s = S.of_welford w ~p50:2. ~p90:2.8 ~p99:3. ~p999:3. in
  (* zero-count summaries contribute nothing *)
  let m = S.merge [ S.empty; s; S.empty ] in
  Alcotest.(check int) "zero-count skipped" 3 m.S.count;
  check_float "mean unchanged" 2. m.S.mean;
  check_float "p50 unchanged" 2. m.S.p50;
  (* single-summary merge is the identity on every field *)
  let one = S.merge [ s ] in
  Alcotest.(check int) "singleton count" s.S.count one.S.count;
  check_float "singleton mean" s.S.mean one.S.mean;
  check_float "singleton p999" s.S.p999 one.S.p999;
  (* a live summary without quantile state (e.g. the per-class
     intra/inter summaries) pools moments but not quantiles *)
  let nq = S.of_welford w ~p50:nan ~p90:nan ~p99:nan ~p999:nan in
  let m2 = S.merge [ s; nq ] in
  Alcotest.(check int) "moments pooled" 6 m2.S.count;
  check_float "quantile from the carrying summary" 2. m2.S.p50;
  let m3 = S.merge [ nq; nq ] in
  Alcotest.(check bool) "no quantile state anywhere stays nan" true (Float.is_nan m3.S.p50)

let summary_quantile_accessor () =
  let w = W.create () in
  List.iter (W.add w) [ 1.; 2.; 3. ];
  let s = S.of_welford w ~p50:2. ~p90:2.8 ~p99:3. ~p999:3.5 in
  check_float "0.5" 2. (S.quantile s 0.5);
  check_float "0.9" 2.8 (S.quantile s 0.9);
  check_float "0.99" 3. (S.quantile s 0.99);
  check_float "0.999" 3.5 (S.quantile s 0.999);
  Alcotest.check_raises "off the ladder"
    (Invalid_argument "Summary.quantile: 0.95 is not one of p50/p90/p99/p999") (fun () ->
      ignore (S.quantile s 0.95))

let () =
  Alcotest.run "stats"
    [
      ( "welford",
        [
          Alcotest.test_case "empty" `Quick welford_empty;
          Alcotest.test_case "single" `Quick welford_single;
          Alcotest.test_case "known moments" `Quick welford_known;
          QCheck_alcotest.to_alcotest welford_matches_naive;
          QCheck_alcotest.to_alcotest welford_merge_matches_sequential;
          QCheck_alcotest.to_alcotest welford_of_stats_roundtrip;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick histogram_binning;
          Alcotest.test_case "bounds" `Quick histogram_bounds;
          Alcotest.test_case "cdf" `Quick histogram_cdf;
          QCheck_alcotest.to_alcotest histogram_counts_everything;
          Alcotest.test_case "merge pure" `Quick histogram_merge_pure;
          Alcotest.test_case "merge layout mismatch" `Quick histogram_merge_layout_mismatch;
          QCheck_alcotest.to_alcotest histogram_merge_matches_sequential;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "small exact" `Quick quantile_small_samples_exact;
          Alcotest.test_case "median uniform" `Quick quantile_median_uniform;
          Alcotest.test_case "p99 exponential" `Quick quantile_p99_exponential;
          Alcotest.test_case "exact_of_sorted" `Quick exact_of_sorted_cases;
          Alcotest.test_case "merged weighting" `Quick quantile_merged_weighting;
          Alcotest.test_case "merged replications" `Quick quantile_merged_replications;
          QCheck_alcotest.to_alcotest quantile_vs_exact;
          QCheck_alcotest.to_alcotest quantile_median_p99_vs_exact;
        ] );
      ( "batch_means",
        [
          Alcotest.test_case "grand mean" `Quick batch_means_mean;
          Alcotest.test_case "ci covers iid" `Quick batch_means_ci_covers_iid;
          Alcotest.test_case "needs two batches" `Quick batch_means_needs_two_batches;
        ] );
      ( "summary",
        [
          Alcotest.test_case "roundtrip" `Quick summary_roundtrip;
          Alcotest.test_case "merge edge cases" `Quick summary_merge_edges;
          Alcotest.test_case "quantile accessor" `Quick summary_quantile_accessor;
          QCheck_alcotest.to_alcotest summary_merge_property;
          QCheck_alcotest.to_alcotest merged_estimate_vs_exact_pooled;
        ] );
    ]
