(* The resilience layer: deterministic fault injection, per-point
   retry/quarantine, cache degradation, and crash-safe cache hygiene.

   The headline property pinned here is the engine's failure-semantics
   contract: for ANY injected fault schedule, the surviving points'
   summaries are bit-identical to a fault-free run — faults cost work
   (retries, recomputation, a disabled cache), never results. *)

module Fault = Fatnet_experiments.Fault
module Fs_util = Fatnet_experiments.Fs_util
module Point_cache = Fatnet_experiments.Point_cache
module Engine = Fatnet_experiments.Sweep_engine
module Parallel = Fatnet_experiments.Parallel
module Scenario = Fatnet_scenario.Scenario
module Presets = Fatnet_model.Presets
module Metrics = Fatnet_obs.Metrics
module Cli = Fatnet_cli.Cli

let message = Presets.message ~m_flits:8 ~d_m_bytes:256.

let small_system =
  Fatnet_model.Params.homogeneous ~m:4 ~tree_depth:2 ~clusters:4 ~icn1:Presets.net1
    ~ecn1:Presets.net2 ~icn2:Presets.net1

let tiny_protocol =
  { Scenario.quick_protocol with Scenario.warmup = 10; measured = 100; drain = 10 }

let point lambda_g =
  Scenario.make ~name:"fault-test" ~system:small_system ~message ~protocol:tiny_protocol
    ~load:(Scenario.Fixed lambda_g) ()

let points = List.init 6 (fun i -> point (1e-4 *. float_of_int (i + 1)))

let with_temp_dir f =
  let dir = Filename.temp_file "fatnet-fault-test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      (match Sys.readdir dir with
      | files ->
          Array.iter (fun x -> try Sys.remove (Filename.concat dir x) with Sys_error _ -> ()) files
      | exception Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let hex = Printf.sprintf "%h"

(* --- the fault plan ----------------------------------------------- *)

let plan_is_deterministic () =
  let plan = Fault.make ~seed:7L [ (Fault.Point_exec, 0.5) ] in
  List.iter
    (fun key ->
      List.iter
        (fun attempt ->
          Alcotest.(check bool)
            (Printf.sprintf "pure function of (key=%s, attempt=%d)" key attempt)
            (Fault.fires plan Fault.Point_exec ~key ~attempt)
            (Fault.fires plan Fault.Point_exec ~key ~attempt))
        [ 0; 1; 2 ])
    [ "a"; "b"; "c"; "a much longer key with spaces" ];
  (* Sites not in the plan never fire; rate-1 sites always do. *)
  Alcotest.(check bool) "unlisted site silent" false
    (Fault.fires plan Fault.Cache_store ~key:"a" ~attempt:0);
  let always = Fault.make [ (Fault.Tmp_rename, 1.) ] in
  Alcotest.(check bool) "rate 1 always fires" true
    (List.for_all
       (fun key -> Fault.fires always Fault.Tmp_rename ~key ~attempt:0)
       [ "x"; "y"; "z" ]);
  Alcotest.(check bool) "none never fires" false
    (Fault.fires Fault.none Fault.Point_exec ~key:"x" ~attempt:0);
  Alcotest.(check bool) "none is none" true (Fault.is_none Fault.none);
  Alcotest.(check bool) "zero rates collapse to none" true
    (Fault.is_none (Fault.make [ (Fault.Point_exec, 0.) ]))

let plan_rate_is_roughly_respected () =
  let plan = Fault.make ~seed:11L [ (Fault.Cache_find, 0.5) ] in
  let n = 400 in
  let hits = ref 0 in
  for i = 0 to n - 1 do
    if Fault.fires plan Fault.Cache_find ~key:(string_of_int i) ~attempt:0 then incr hits
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d fired at rate 0.5" !hits n)
    true
    (!hits > n / 4 && !hits < 3 * n / 4)

let plan_trip_raises_injected () =
  let plan = Fault.make [ (Fault.Cache_store, 1.) ] in
  (match Fault.trip plan Fault.Cache_store ~key:"k" () with
  | () -> Alcotest.fail "expected Injected"
  | exception Fault.Injected (site, key) ->
      Alcotest.(check string) "site" "cache_store" (Fault.site_name site);
      Alcotest.(check string) "key" "k" key);
  Fault.trip Fault.none Fault.Cache_store ~key:"k" ()

let spec_round_trip () =
  (match Fault.of_spec "seed=42, point_exec=0.5, cache_store=1" with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok plan ->
      Alcotest.(check string) "canonical rendering" "seed=42,point_exec=0.5,cache_store=1"
        (Fault.to_spec plan);
      Alcotest.(check bool) "re-parses to the same plan" true
        (Fault.of_spec (Fault.to_spec plan) = Ok plan));
  (match Fault.of_spec "" with
  | Ok plan -> Alcotest.(check bool) "empty spec is no plan" true (Fault.is_none plan)
  | Error e -> Alcotest.failf "empty spec rejected: %s" e);
  let rejected spec =
    match Fault.of_spec spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad spec %S" spec
  in
  rejected "bogus_site=1";
  rejected "point_exec=2";
  rejected "point_exec=x";
  rejected "seed=notanumber";
  rejected "point_exec"

(* --- shared mkdir_p ----------------------------------------------- *)

let mkdir_p_creates_and_tolerates () =
  with_temp_dir (fun dir ->
      let deep = Filename.concat (Filename.concat (Filename.concat dir "a") "b") "c" in
      Fs_util.mkdir_p deep;
      Alcotest.(check bool) "nested path created" true (Sys.is_directory deep);
      (* Idempotent — and in particular safe when another process
         created the directory between the existence check and mkdir. *)
      Fs_util.mkdir_p deep;
      Alcotest.(check bool) "still there" true (Sys.is_directory deep);
      Sys.rmdir deep;
      Sys.rmdir (Filename.dirname deep);
      Sys.rmdir (Filename.concat dir "a"))

(* --- point-cache hygiene ------------------------------------------ *)

let tmp_files dir =
  Sys.readdir dir |> Array.to_list |> List.filter (fun f -> Filename.check_suffix f ".tmp")

let backdate path =
  let old = Unix.gettimeofday () -. 3600. in
  Unix.utimes path old old

let store_failure_leaves_no_tmp () =
  with_temp_dir (fun dir ->
      let entry =
        {
          Point_cache.summary =
            {
              Fatnet_stats.Summary.count = 1;
              mean = 1.;
              stddev = 0.;
              min = 1.;
              max = 1.;
              p50 = 1.;
              p90 = 1.;
              p99 = 1.;
              p999 = 1.;
            };
          ci_half_width = 0.;
          replications = 1;
          events = 1;
        }
      in
      let faults = Fault.make [ (Fault.Tmp_rename, 1.) ] in
      (match Point_cache.store ~dir ~faults "some-key" entry with
      | () -> Alcotest.fail "expected the injected rename fault"
      | exception Fault.Injected (Fault.Tmp_rename, _) -> ());
      Alcotest.(check (list string)) "no .tmp debris after a failed store" [] (tmp_files dir);
      (* The fault fired between write and rename, so no entry landed
         either — and a clean store afterwards works. *)
      Alcotest.(check bool) "nothing stored" true (Point_cache.find ~dir "some-key" = None);
      Point_cache.store ~dir "some-key" entry;
      Alcotest.(check bool) "clean store lands" true (Point_cache.find ~dir "some-key" <> None))

let gc_tmp_removes_only_stale () =
  with_temp_dir (fun dir ->
      let fresh = Filename.concat dir "fresh.tmp" in
      let stale = Filename.concat dir "stale.tmp" in
      List.iter (fun p -> Out_channel.with_open_text p (fun oc -> output_string oc "x")) [ fresh; stale ];
      backdate stale;
      Alcotest.(check int) "one stale file collected" 1 (Point_cache.gc_tmp ~dir);
      Alcotest.(check (list string)) "fresh writer's file untouched" [ "fresh.tmp" ] (tmp_files dir);
      Alcotest.(check int) "idempotent" 0 (Point_cache.gc_tmp ~dir);
      Alcotest.(check int) "missing dir is zero, not an exception" 0
        (Point_cache.gc_tmp ~dir:(Filename.concat dir "nonexistent")))

let clear_spares_live_writers () =
  with_temp_dir (fun dir ->
      let fresh = Filename.concat dir "live-writer.tmp" in
      let stale = Filename.concat dir "crashed.tmp" in
      let entry = Filename.concat dir "deadbeef.point" in
      List.iter
        (fun p -> Out_channel.with_open_text p (fun oc -> output_string oc "x"))
        [ fresh; stale; entry ];
      backdate stale;
      Point_cache.clear ~dir;
      Alcotest.(check bool) "entry removed" false (Sys.file_exists entry);
      Alcotest.(check bool) "crash debris removed" false (Sys.file_exists stale);
      Alcotest.(check bool) "a live writer's temp file survives" true (Sys.file_exists fresh))

(* --- the headline guarantee --------------------------------------- *)

(* Survivors of ANY fault schedule are bit-identical to a fault-free
   sweep, and exactly the points whose schedule exhausts the retry
   budget are quarantined.  The schedule is predicted from the plan
   itself ([Fault.fires] keyed on scenario hashes), so the assertion
   covers which points die, which retry, and what every survivor
   returns. *)
let injected_faults_quarantine_predictably () =
  let keys = List.map Scenario.hash points in
  let retries = 1 in
  let rate = 0.5 in
  (* Pick (deterministically) a seed whose schedule kills some points
     but not all, and retries at least one survivor into success. *)
  let fires0 plan k = Fault.fires plan Fault.Point_exec ~key:k ~attempt:0 in
  let dies plan k = fires0 plan k && Fault.fires plan Fault.Point_exec ~key:k ~attempt:1 in
  let pick seed =
    let plan = Fault.make ~seed [ (Fault.Point_exec, rate) ] in
    let killed = List.filter (dies plan) keys in
    let survivor_retried k = fires0 plan k && not (dies plan k) in
    if killed <> [] && List.length killed < List.length keys
       && List.exists survivor_retried keys
    then Some plan
    else None
  in
  let rec search s =
    if s > 999 then Alcotest.fail "no seed below 1000 gives a mixed schedule"
    else match pick (Int64.of_int s) with Some plan -> plan | None -> search (s + 1)
  in
  let plan = search 0 in
  let predicted_dead =
    List.concat (List.mapi (fun i k -> if dies plan k then [ i ] else []) keys)
  in
  let predicted_retries = List.length (List.filter (fires0 plan) keys) in
  let base =
    { Engine.default_config with Engine.domains = Some 2; cache = Engine.No_cache; retries }
  in
  let clean = Engine.run ~config:base points in
  Alcotest.(check (list int)) "fault-free run quarantines nothing" []
    (List.map (fun f -> f.Engine.index) clean.Engine.quarantined);
  let faulty = Engine.run ~config:{ base with Engine.faults = plan } points in
  Alcotest.(check (list int)) "exactly the predicted points quarantined" predicted_dead
    (List.map (fun f -> f.Engine.index) faulty.Engine.quarantined);
  Alcotest.(check int) "every first-attempt fault was retried" predicted_retries
    faulty.Engine.stats.Engine.retries;
  List.iter
    (fun f ->
      Alcotest.(check bool) "quarantined failures carry the injected fault" true
        (match f.Engine.error with Fault.Injected (Fault.Point_exec, _) -> true | _ -> false);
      Alcotest.(check int) "budget exhausted" (retries + 1) f.Engine.attempts;
      Alcotest.(check bool) "offered load reported" true (f.Engine.lambda_g <> None))
    faulty.Engine.quarantined;
  List.iteri
    (fun i _ ->
      match (clean.Engine.results.(i), faulty.Engine.results.(i)) with
      | Some c, Some f ->
          Alcotest.(check string)
            (Printf.sprintf "survivor %d bit-identical mean" i)
            (hex c.Engine.summary.Fatnet_stats.Summary.mean)
            (hex f.Engine.summary.Fatnet_stats.Summary.mean);
          Alcotest.(check bool)
            (Printf.sprintf "survivor %d identical summary" i)
            true
            (c.Engine.summary = f.Engine.summary)
      | Some _, None ->
          Alcotest.(check bool)
            (Printf.sprintf "point %d missing only if predicted dead" i)
            true (List.mem i predicted_dead)
      | None, _ -> Alcotest.failf "fault-free run lost point %d" i)
    points

(* --- cache degradation -------------------------------------------- *)

let entry_counter snap name labels =
  match Metrics.Snapshot.find ~labels snap name with
  | Some (Metrics.Snapshot.Counter n) -> n
  | _ -> 0

let store_faults_degrade_cache () =
  with_temp_dir (fun dir ->
      let reg = Metrics.create () in
      let config =
        {
          Engine.default_config with
          Engine.domains = Some 1;
          cache = Engine.Cache_dir dir;
          metrics = reg;
          faults = Fault.make [ (Fault.Cache_store, 1.) ];
        }
      in
      let outcome = Engine.run ~config points in
      Alcotest.(check int) "no quarantine from cache faults" 0
        outcome.Engine.stats.Engine.quarantined;
      Alcotest.(check bool) "every point has a result" true
        (Array.for_all (fun r -> r <> None) outcome.Engine.results);
      Alcotest.(check bool) "cache flagged degraded" true
        outcome.Engine.stats.Engine.cache_degraded;
      Alcotest.(check bool) "cache error counted" true
        (entry_counter (Metrics.snapshot reg) "cache_errors"
           [ ("op", "store"); ("kind", "injected") ]
         >= 1);
      Alcotest.(check (list string)) "nothing stored into the degraded cache" []
        (List.filter
           (fun f -> Filename.check_suffix f ".point")
           (Array.to_list (Sys.readdir dir))))

let find_faults_degrade_to_recompute () =
  with_temp_dir (fun dir ->
      let base =
        { Engine.default_config with Engine.domains = Some 1; cache = Engine.Cache_dir dir }
      in
      let clean = Engine.run ~config:base points in
      let warm = Engine.run ~config:base points in
      Alcotest.(check int) "warm control run is all hits"
        (List.length points)
        warm.Engine.stats.Engine.cache_hits;
      let degraded =
        Engine.run
          ~config:{ base with Engine.faults = Fault.make [ (Fault.Cache_find, 1.) ] }
          points
      in
      Alcotest.(check int) "no hits once find faults" 0
        degraded.Engine.stats.Engine.cache_hits;
      Alcotest.(check int) "every point recomputed" (List.length points)
        degraded.Engine.stats.Engine.executed;
      Alcotest.(check bool) "flagged degraded" true
        degraded.Engine.stats.Engine.cache_degraded;
      Alcotest.(check int) "nothing quarantined" 0 degraded.Engine.stats.Engine.quarantined;
      Array.iteri
        (fun i r ->
          match (clean.Engine.results.(i), r) with
          | Some c, Some d ->
              Alcotest.(check string) "recomputation bit-identical to first run"
                (hex c.Engine.summary.Fatnet_stats.Summary.mean)
                (hex d.Engine.summary.Fatnet_stats.Summary.mean)
          | _ -> Alcotest.failf "missing result for point %d" i)
        degraded.Engine.results)

let stale_version_entries_are_misses () =
  (* Engine-version migration: entries written by an older engine
     version must read as plain cache misses — recomputed and
     re-stored at the current version, with [cache_errors] untouched
     and no degradation. *)
  with_temp_dir (fun dir ->
      let reg = Metrics.create () in
      let config =
        {
          Engine.default_config with
          Engine.domains = Some 1;
          cache = Engine.Cache_dir dir;
          metrics = reg;
        }
      in
      let cold = Engine.run ~config points in
      let entries =
        List.filter
          (fun f -> Filename.check_suffix f ".point")
          (Array.to_list (Sys.readdir dir))
      in
      Alcotest.(check int) "one entry per point" (List.length points) (List.length entries);
      (* Rewrite each entry's magic line to the previous engine
         version — exactly what an upgraded binary finds on disk. *)
      List.iter
        (fun f ->
          let path = Filename.concat dir f in
          let ic = open_in_bin path in
          let body = really_input_string ic (in_channel_length ic) in
          close_in ic;
          let stale =
            Printf.sprintf "fatnet-point-cache %d" (Point_cache.engine_version - 1)
          in
          let body =
            match String.index_opt body '\n' with
            | Some i -> stale ^ String.sub body i (String.length body - i)
            | None -> stale
          in
          let oc = open_out_bin path in
          output_string oc body;
          close_out oc)
        entries;
      let migrated = Engine.run ~config points in
      Alcotest.(check int) "stale entries are plain misses" 0
        migrated.Engine.stats.Engine.cache_hits;
      Alcotest.(check int) "every point recomputed" (List.length points)
        migrated.Engine.stats.Engine.executed;
      Alcotest.(check bool) "cache not degraded" false
        migrated.Engine.stats.Engine.cache_degraded;
      let snap = Metrics.snapshot reg in
      List.iter
        (fun (s : Metrics.Snapshot.series) ->
          if s.Metrics.Snapshot.name = "cache_errors" then
            match s.Metrics.Snapshot.value with
            | Metrics.Snapshot.Counter n ->
                Alcotest.(check int) "a version miss is not a cache error" 0 n
            | _ -> ())
        snap.Metrics.Snapshot.series;
      Array.iteri
        (fun i r ->
          match (cold.Engine.results.(i), r) with
          | Some c, Some m ->
              Alcotest.(check string) "recomputation bit-identical"
                (hex c.Engine.summary.Fatnet_stats.Summary.mean)
                (hex m.Engine.summary.Fatnet_stats.Summary.mean);
              Alcotest.(check bool) "full summary identical" true
                (c.Engine.summary = m.Engine.summary)
          | _ -> Alcotest.failf "missing result for point %d" i)
        migrated.Engine.results;
      (* The recomputation re-stored current-version entries: a third
         run is all hits again. *)
      let rewarm = Engine.run ~config points in
      Alcotest.(check int) "re-stored at the current version"
        (List.length points)
        rewarm.Engine.stats.Engine.cache_hits)

let rename_faults_degrade_without_debris () =
  with_temp_dir (fun dir ->
      let config =
        {
          Engine.default_config with
          Engine.domains = Some 1;
          cache = Engine.Cache_dir dir;
          faults = Fault.make [ (Fault.Tmp_rename, 1.) ];
        }
      in
      let outcome = Engine.run ~config points in
      Alcotest.(check bool) "sweep survives rename faults" true
        (Array.for_all (fun r -> r <> None) outcome.Engine.results);
      Alcotest.(check bool) "flagged degraded" true outcome.Engine.stats.Engine.cache_degraded;
      Alcotest.(check (list string)) "failed stores leave no .tmp debris" [] (tmp_files dir))

(* --- cost model --------------------------------------------------- *)

let estimated_cost_tracks_bottleneck_load () =
  let sat =
    Fatnet_model.Latency.saturation_rate ~system:small_system ~message ()
  in
  let cost f = Engine.estimated_cost (point (f *. sat)) in
  Alcotest.(check bool) "cost grows towards saturation" true
    (cost 0.1 < cost 0.5 && cost 0.5 < cost 0.9);
  (* Past saturation the backlog grows for the whole run: costlier
     than any stable point, so LPT dispatches these first. *)
  Alcotest.(check bool) "saturated points cost most" true (cost 1.2 > cost 0.9)

(* --- CLI error boundary ------------------------------------------- *)

let guard_exit_codes () =
  Alcotest.(check int) "success passes through" 0 (Cli.guard (fun () -> Ok 0));
  Alcotest.(check int) "Error is usage (2)" 2 (Cli.guard (fun () -> Error "bad flag"));
  Alcotest.(check int) "Failure is usage (2)" 2 (Cli.guard (fun () -> failwith "bad spec"));
  Alcotest.(check int) "Sys_error is runtime (1)" 1
    (Cli.guard (fun () -> raise (Sys_error "disk on fire")));
  let failure =
    Engine.Point_failure
      { Engine.index = 3; lambda_g = Some 0.7; attempts = 3; error = Failure "sim blew up" }
  in
  Alcotest.(check int) "sweep failures are runtime (1)" 1
    (Cli.guard (fun () -> raise (Parallel.Failures [ (3, failure) ])))

let inject_faults_flag_round_trips () =
  let opts =
    {
      Cli.domains = Some 1;
      no_cache = true;
      cache_dir = "unused";
      precision = 0.;
      min_reps = 2;
      max_reps = 8;
      seed = 1L;
      target = Scenario.Mean;
      retries = 5;
      fail_fast = true;
      inject_faults = Some "seed=9,point_exec=0.25";
    }
  in
  let config = Cli.engine_of_opts opts in
  Alcotest.(check int) "retries wired through" 5 config.Engine.retries;
  Alcotest.(check bool) "fail-fast wired through" true config.Engine.fail_fast;
  Alcotest.(check string) "fault plan wired through" "seed=9,point_exec=0.25"
    (Fault.to_spec config.Engine.faults);
  Alcotest.(check int) "bad spec is a usage error" 2
    (Cli.guard (fun () ->
         ignore (Cli.engine_of_opts { opts with Cli.inject_faults = Some "bogus=1" });
         Ok 0))

(* --- the cache gate ------------------------------------------------ *)

module Gate = Fatnet_experiments.Cache_gate

let gate_disabled_is_inert () =
  let g = Gate.create ~enabled:false () in
  Alcotest.(check bool) "never ready" false (Gate.ready g);
  Gate.trip g ~op:"find" (Sys_error "boom");
  Alcotest.(check bool) "trip is a no-op target" false (Gate.ready g);
  Alcotest.(check int) "no trips counted" 0 (Gate.trips g)

let gate_one_way_without_recovery () =
  let g = Gate.create ~enabled:true () in
  Alcotest.(check bool) "starts up" true (Gate.ready g);
  Alcotest.(check bool) "not degraded" false (Gate.degraded g);
  Gate.trip g ~op:"store" (Sys_error "disk full");
  Alcotest.(check bool) "down after trip" false (Gate.ready g);
  Alcotest.(check bool) "degraded" true (Gate.degraded g);
  Alcotest.(check int) "one trip" 1 (Gate.trips g);
  (* With no recover_after the trip is permanent, and repeat trips of
     an already-down gate don't re-count (one warning per trip). *)
  Gate.trip g ~op:"store" (Sys_error "disk still full");
  Alcotest.(check int) "second trip while down not counted" 1 (Gate.trips g);
  for _ = 1 to 100 do
    Alcotest.(check bool) "stays down" false (Gate.ready g)
  done

let counter_with_op reg name op =
  List.fold_left
    (fun acc (s : Metrics.Snapshot.series) ->
      match s.Metrics.Snapshot.value with
      | Metrics.Snapshot.Counter n
        when s.Metrics.Snapshot.name = name
             && List.assoc_opt "op" s.Metrics.Snapshot.labels = Some op ->
          acc + n
      | _ -> acc)
    0
    (Metrics.snapshot reg).Metrics.Snapshot.series

let gate_reprobe_after_n () =
  let reg = Metrics.create () in
  let g = Gate.create ~recover_after:3 ~metrics:reg ~enabled:true () in
  Gate.trip g ~op:"find" (Sys_error "transient");
  (* Exactly recover_after ready-checks answer false, then the gate
     optimistically re-opens. *)
  Alcotest.(check (list bool)) "3 skips then open"
    [ false; false; false; true ]
    (List.init 4 (fun _ -> Gate.ready g));
  Alcotest.(check bool) "no longer degraded" false (Gate.degraded g);
  (* A failure during the re-probe trips it again, counted again. *)
  Gate.trip g ~op:"find" (Sys_error "still transient");
  Alcotest.(check int) "second trip counted" 2 (Gate.trips g);
  Alcotest.(check bool) "down again" false (Gate.ready g);
  let count name =
    match Metrics.Snapshot.find (Metrics.snapshot reg) name with
    | Some (Metrics.Snapshot.Counter n) -> n
    | _ -> 0
  in
  Alcotest.(check int) "one re-probe recorded" 1 (count "cache_reprobes");
  Alcotest.(check bool) "errors labelled by op" true
    (counter_with_op reg "cache_errors" "find" >= 2)

let gate_concurrent_countdown () =
  (* Domains hammering [ready] on a down gate: the CAS countdown must
     hand out exactly [recover_after] skips before the single re-open,
     never a lost decrement or a double re-open. *)
  let n = 1000 in
  let g = Gate.create ~recover_after:n ~enabled:true () in
  Gate.trip g ~op:"find" (Sys_error "transient");
  let opens = Atomic.make 0 and skips = Atomic.make 0 in
  let worker () =
    for _ = 1 to n do
      if Gate.ready g then Atomic.incr opens else Atomic.incr skips
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  (* 4n checks against an n-countdown: n skips, then every later
     check (including the re-opening one) answers true. *)
  Alcotest.(check int) "exactly n skips" n (Atomic.get skips);
  Alcotest.(check int) "the rest pass" (3 * n) (Atomic.get opens)

let () =
  Alcotest.run "faults"
    [
      ( "fault plan",
        [
          Alcotest.test_case "deterministic" `Quick plan_is_deterministic;
          Alcotest.test_case "rate respected" `Quick plan_rate_is_roughly_respected;
          Alcotest.test_case "trip raises" `Quick plan_trip_raises_injected;
          Alcotest.test_case "spec round trip" `Quick spec_round_trip;
        ] );
      ( "filesystem",
        [
          Alcotest.test_case "mkdir_p" `Quick mkdir_p_creates_and_tolerates;
          Alcotest.test_case "failed store leaves no tmp" `Quick store_failure_leaves_no_tmp;
          Alcotest.test_case "gc_tmp staleness" `Quick gc_tmp_removes_only_stale;
          Alcotest.test_case "clear spares live writers" `Quick clear_spares_live_writers;
        ] );
      ( "resilient sweeps",
        [
          Alcotest.test_case "survivors bit-identical" `Quick
            injected_faults_quarantine_predictably;
          Alcotest.test_case "store faults degrade cache" `Quick store_faults_degrade_cache;
          Alcotest.test_case "find faults recompute" `Quick find_faults_degrade_to_recompute;
          Alcotest.test_case "stale version migrates" `Quick stale_version_entries_are_misses;
          Alcotest.test_case "rename faults leave no debris" `Quick
            rename_faults_degrade_without_debris;
        ] );
      ( "cache gate",
        [
          Alcotest.test_case "disabled is inert" `Quick gate_disabled_is_inert;
          Alcotest.test_case "one-way without recovery" `Quick
            gate_one_way_without_recovery;
          Alcotest.test_case "re-probe after N" `Quick gate_reprobe_after_n;
          Alcotest.test_case "concurrent countdown" `Quick gate_concurrent_countdown;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "cost tracks load" `Quick estimated_cost_tracks_bottleneck_load;
        ] );
      ( "cli",
        [
          Alcotest.test_case "guard exit codes" `Quick guard_exit_codes;
          Alcotest.test_case "fault flags" `Quick inject_faults_flag_round_trips;
        ] );
    ]
