(* The latency-oracle daemon: protocol parsing, the determinism
   contract (answers are a pure function of (scenario, query) —
   bit-identical across batch order, batch splitting, domain count
   and memo history), and the socket edge end to end. *)

module Json = Fatnet_obs.Json
module Metrics = Fatnet_obs.Metrics
module Eval = Fatnet_model.Eval
module Presets = Fatnet_model.Presets
module Scenario = Fatnet_scenario.Scenario
module Protocol = Fatnet_serve.Protocol
module Oracle = Fatnet_serve.Oracle
module Server = Fatnet_serve.Server

let message = Presets.message ~m_flits:32 ~d_m_bytes:256.

let small_system =
  Fatnet_model.Params.homogeneous ~m:4 ~tree_depth:2 ~clusters:4 ~icn1:Presets.net1
    ~ecn1:Presets.net2 ~icn2:Presets.net1

let scenario =
  Scenario.make ~name:"serve-test" ~system:small_system ~message
    ~load:(Scenario.Fixed 1e-4) ()

let saturation = lazy (Eval.saturation_rate (Scenario.evaluator scenario))

(* --- protocol ------------------------------------------------------ *)

let parse_one line =
  match Protocol.frame_of_line line with
  | Ok (Protocol.Single p) -> p
  | Ok (Protocol.Batch _) -> Alcotest.fail "expected a single frame"
  | Error e -> Alcotest.failf "frame rejected: %s" e

let protocol_parses_good_requests () =
  (match parse_one {|{"id": 7, "op": "latency", "lambda": 2e-5}|} with
  | Protocol.Req { id = Json.Num 7.; query = Protocol.Latency { lambda = 2e-5 } } -> ()
  | _ -> Alcotest.fail "latency request mis-parsed");
  (match parse_one {|{"lambda": 3e-5}|} with
  | Protocol.Req { id = Json.Null; query = Protocol.Latency { lambda = 3e-5 } } -> ()
  | _ -> Alcotest.fail "op should default to latency, id to null");
  (match parse_one {|{"op": "quantile", "lambda": 1e-5, "q": 0.99}|} with
  | Protocol.Req { query = Protocol.Quantile { lambda = 1e-5; q = 0.99 }; _ } -> ()
  | _ -> Alcotest.fail "quantile request mis-parsed");
  (match parse_one {|{"op": "saturation", "id": "tag"}|} with
  | Protocol.Req { id = Json.Str "tag"; query = Protocol.Saturation } -> ()
  | _ -> Alcotest.fail "saturation request mis-parsed");
  (match parse_one {|{"op": "point", "lambda": 5e-5}|} with
  | Protocol.Req { query = Protocol.Point { lambda = 5e-5 }; _ } -> ()
  | _ -> Alcotest.fail "point request mis-parsed");
  match Protocol.frame_of_line {|[{"lambda": 1e-5}, {"op": "saturation"}]|} with
  | Ok (Protocol.Batch [ Protocol.Req _; Protocol.Req _ ]) -> ()
  | _ -> Alcotest.fail "array line should parse as a batch"

let protocol_rejects_bad_requests () =
  let malformed line =
    match parse_one line with
    | Protocol.Malformed (_, msg) -> msg
    | Protocol.Req _ -> Alcotest.failf "accepted %s" line
  in
  let contains hay needle =
    let n = String.length needle and l = String.length hay in
    let rec go i = i + n <= l && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let check line needle =
    let msg = malformed line in
    Alcotest.(check bool)
      (Printf.sprintf "%s -> %S mentions %S" line msg needle)
      true (contains msg needle)
  in
  check {|{"op": "latency"}|} "lambda";
  check {|{"op": "latency", "lambda": "fast"}|} "lambda";
  check {|{"op": "latency", "lambda": -1e-5}|} "lambda";
  check {|{"op": "quantile", "lambda": 1e-5}|} "q";
  check {|{"op": "quantile", "lambda": 1e-5, "q": 1.5}|} "q";
  check {|{"op": "warp", "lambda": 1e-5}|} "op";
  check {|42|} "object";
  (* A malformed element keeps its slot in a batch, and its id. *)
  (match Protocol.frame_of_line {|[{"lambda": 1e-5}, {"id": 3, "op": "warp"}]|} with
  | Ok (Protocol.Batch [ Protocol.Req _; Protocol.Malformed (Json.Num 3., _) ]) -> ()
  | _ -> Alcotest.fail "batch should keep the malformed slot with its id");
  (* Invalid JSON is rejected at the frame level. *)
  match Protocol.frame_of_line "{ not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid JSON accepted"

let response_lines_roundtrip () =
  let b = Buffer.create 256 in
  Protocol.buf_add_frame_responses b ~batched:false
    [| { Protocol.rid = Json.Num 7.; outcome = Ok ("latency", Protocol.Value 1.5e-4) } |];
  let line = Buffer.contents b in
  Alcotest.(check bool) "ends with newline" true (String.length line > 0 && line.[String.length line - 1] = '\n');
  (match Json.parse (String.trim line) with
  | Json.Obj _ as j ->
      Alcotest.(check bool) "ok true" true (Json.member "ok" j = Some (Json.Bool true));
      Alcotest.(check bool) "id echoed" true (Json.member "id" j = Some (Json.Num 7.));
      (match Json.member "value" j with
      | Some (Json.Num v) ->
          Alcotest.(check bool) "value bits survive the wire" true
            (Int64.bits_of_float v = Int64.bits_of_float 1.5e-4)
      | _ -> Alcotest.fail "value missing");
      Alcotest.(check bool) "saturated flag" true
        (Json.member "saturated" j = Some (Json.Bool false))
  | _ -> Alcotest.fail "not an object");
  (* Non-finite values are the tagged strings, flagged saturated. *)
  Buffer.clear b;
  Protocol.buf_add_response b
    { Protocol.rid = Json.Null; outcome = Ok ("latency", Protocol.Value infinity) };
  let j = Json.parse (Buffer.contents b) in
  Alcotest.(check bool) "inf tagged" true (Json.member "value" j = Some (Json.Str "inf"));
  Alcotest.(check bool) "inf saturated" true
    (Json.member "saturated" j = Some (Json.Bool true));
  (* An error line parses and carries the message. *)
  match Json.parse (String.trim (Protocol.error_line "bad frame")) with
  | j ->
      Alcotest.(check bool) "ok false" true (Json.member "ok" j = Some (Json.Bool false));
      Alcotest.(check bool) "error text" true
        (Json.member "error" j = Some (Json.Str "bad frame"))

(* --- determinism --------------------------------------------------- *)

let value_of (r : Protocol.response) =
  match r.Protocol.outcome with
  | Ok (_, Protocol.Value v) -> v
  | Ok (op, _) -> Alcotest.failf "unexpected non-value reply for %s" op
  | Error e -> Alcotest.failf "unexpected error reply: %s" e

let reference_answers reqs =
  let ws = Scenario.evaluator scenario in
  let sat = Lazy.force saturation in
  Array.map
    (fun p ->
      match p with
      | Protocol.Req { query = Protocol.Latency { lambda }; _ } ->
          Eval.mean_into ws ~lambda_g:lambda
      | Protocol.Req { query = Protocol.Quantile { lambda; q }; _ } ->
          Eval.quantile ws ~lambda_g:lambda ~q
      | Protocol.Req { query = Protocol.Saturation; _ } -> sat
      | _ -> Alcotest.fail "reference_answers: unsupported request")
    reqs

let daemon_matches_direct_eval () =
  (* The pinned contract: a long-lived oracle, whatever its memo
     history, answers exactly the bits a fresh sequential Eval
     produces. *)
  let sat = Lazy.force saturation in
  let reqs =
    Array.init 24 (fun i ->
        let lambda = 0.9 *. sat *. float_of_int (1 + (i mod 8)) /. 8. in
        let query =
          match i mod 3 with
          | 0 -> Protocol.Latency { lambda }
          | 1 -> Protocol.Quantile { lambda; q = 0.99 }
          | _ -> Protocol.Saturation
        in
        Protocol.Req { Protocol.id = Json.Num (float_of_int i); query })
  in
  let expected = reference_answers reqs in
  let oracle = Oracle.create ~domains:2 scenario in
  Fun.protect ~finally:(fun () -> Oracle.shutdown oracle) @@ fun () ->
  (* Twice: the second pass answers from a warm memo. *)
  for pass = 1 to 2 do
    let got = Oracle.answer_batch oracle reqs in
    Array.iteri
      (fun i r ->
        Alcotest.(check bool)
          (Printf.sprintf "pass %d request %d bit-identical" pass i)
          true
          (Int64.bits_of_float (value_of r) = Int64.bits_of_float expected.(i)))
      got
  done

let qcheck_batches_bit_identical =
  (* Random request streams, shuffled, split into random batch sizes,
     answered by oracles with different domain counts and memo
     histories: every answer must carry exactly the reference bits. *)
  let open QCheck in
  let gen_req =
    let open Gen in
    let* kind = int_bound 9 in
    let* slot = int_bound 15 in
    let lambda = 1e-5 *. float_of_int (1 + slot) in
    return
      (Protocol.Req
         {
           Protocol.id = Json.Num (float_of_int slot);
           query =
             (if kind = 0 then Protocol.Saturation
              else if kind <= 2 then Protocol.Quantile { lambda; q = 0.9 }
              else Protocol.Latency { lambda });
         })
  in
  let arb =
    make
      Gen.(
        let* reqs = array_size (int_range 1 40) gen_req in
        let* domains = int_range 1 3 in
        let* splits = list_size (int_range 0 6) (int_range 1 10) in
        return (reqs, domains, splits))
  in
  Test.make ~name:"serve answers are bit-identical across batching" ~count:30 arb
    (fun (reqs, domains, splits) ->
      let expected = reference_answers reqs in
      let oracle = Oracle.create ~domains scenario in
      Fun.protect ~finally:(fun () -> Oracle.shutdown oracle) @@ fun () ->
      let check got =
        Array.iteri
          (fun i r ->
            if Int64.bits_of_float (value_of r) <> Int64.bits_of_float expected.(i)
            then
              QCheck.Test.fail_reportf "request %d: %h <> %h" i (value_of r)
                expected.(i))
          got
      in
      (* One big batch first (cold memo), then the same stream split
         into arbitrary chunk sizes (warm memo, different dispatch
         shapes). *)
      check (Oracle.answer_batch oracle reqs);
      let n = Array.length reqs in
      let pos = ref 0 and splits = ref (if splits = [] then [ 7 ] else splits) in
      let buf = Buffer.create 64 in
      ignore buf;
      let answers = Array.make n None in
      while !pos < n do
        let k =
          match !splits with
          | [] -> n - !pos
          | k :: rest ->
              splits := rest @ [ k ];
              min k (n - !pos)
        in
        let got = Oracle.answer_batch oracle (Array.sub reqs !pos k) in
        Array.iteri (fun i r -> answers.(!pos + i) <- Some r) got;
        pos := !pos + k
      done;
      check (Array.map Option.get answers);
      true)

(* --- the socket edge ----------------------------------------------- *)

let with_daemon ?cache_dir f =
  let path = Filename.temp_file "fatnet-serve-test" ".sock" in
  Sys.remove path;
  let stop = Atomic.make false in
  let metrics = Metrics.create () in
  let oracle = Oracle.create ~domains:1 ?cache_dir ~metrics scenario in
  let server =
    Domain.spawn (fun () ->
        Server.serve
          {
            Server.address = Server.Unix_path path;
            max_batch = Server.default_max_batch;
            stop;
            metrics;
            tracer = Fatnet_obs.Trace.disabled;
          }
          oracle)
  in
  (* Wait for the socket to appear. *)
  let rec wait n =
    if n = 0 then Alcotest.fail "daemon never bound its socket";
    if not (Sys.file_exists path) then (Unix.sleepf 0.01; wait (n - 1))
  in
  wait 500;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server;
      Oracle.shutdown oracle;
      Alcotest.(check bool) "socket unlinked on shutdown" false (Sys.file_exists path))
    (fun () -> f path)

let connect path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX path);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd, fd)

let socket_end_to_end () =
  with_daemon @@ fun path ->
  let ic, oc, fd = connect path in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let sat = Lazy.force saturation in
  let lambda = 0.5 *. sat in
  let ws = Scenario.evaluator scenario in
  let expected = Eval.mean_into ws ~lambda_g:lambda in
  (* Line 1: a valid request.  Line 2: garbage — the daemon must
     answer it in order, keep the connection, and answer line 3. *)
  Printf.fprintf oc {|{"id": 1, "lambda": %s}|} (Json.shortest_float lambda);
  output_string oc "\n{ not json\n";
  Printf.fprintf oc {|[{"id": 2, "lambda": %s}, {"op": "saturation"}]|}
    (Json.shortest_float lambda);
  output_string oc "\n";
  flush oc;
  let l1 = input_line ic and l2 = input_line ic and l3 = input_line ic in
  (match Json.parse l1 with
  | j ->
      Alcotest.(check bool) "first answer ok" true
        (Json.member "ok" j = Some (Json.Bool true));
      (match Json.member "value" j with
      | Some (Json.Num v) ->
          Alcotest.(check bool) "socket answer bit-identical to Eval" true
            (Int64.bits_of_float v = Int64.bits_of_float expected)
      | _ -> Alcotest.fail "value missing"));
  (match Json.parse l2 with
  | j ->
      Alcotest.(check bool) "garbage answered ok:false" true
        (Json.member "ok" j = Some (Json.Bool false));
      (match Json.member "error" j with
      | Some (Json.Str _) -> ()
      | _ -> Alcotest.fail "friendly error missing"));
  match Json.parse l3 with
  | Json.Arr [ first; second ] ->
      Alcotest.(check bool) "batch answer order" true
        (Json.member "id" first = Some (Json.Num 2.));
      (match Json.member "value" first with
      | Some (Json.Num v) ->
          Alcotest.(check bool) "batched answer bit-identical" true
            (Int64.bits_of_float v = Int64.bits_of_float expected)
      | _ -> Alcotest.fail "batch value missing");
      (match Json.member "value" second with
      | Some (Json.Num v) ->
          Alcotest.(check bool) "saturation bit-identical" true
            (Int64.bits_of_float v = Int64.bits_of_float sat)
      | _ -> Alcotest.fail "saturation value missing")
  | _ -> Alcotest.fail "batched request should answer with an array line"

let metrics_scrape () =
  with_daemon @@ fun path ->
  (* First, some traffic so the counters are non-zero. *)
  let ic, oc, fd = connect path in
  Printf.fprintf oc {|{"op": "saturation"}|};
  output_string oc "\n";
  flush oc;
  ignore (input_line ic);
  Unix.close fd;
  (* Then an HTTP scrape on the same socket. *)
  let ic, oc, fd = connect path in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  output_string oc "GET /metrics HTTP/1.0\r\n\r\n";
  flush oc;
  let body = In_channel.input_all ic in
  let contains needle =
    let n = String.length needle and l = String.length body in
    let rec go i = i + n <= l && (String.sub body i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "HTTP 200" true (contains "HTTP/1.0 200");
  Alcotest.(check bool) "request counter exported" true
    (contains "serve_requests_total");
  Alcotest.(check bool) "saturation op labelled" true (contains "op=\"saturation\"")

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "good requests" `Quick protocol_parses_good_requests;
          Alcotest.test_case "bad requests get friendly errors" `Quick
            protocol_rejects_bad_requests;
          Alcotest.test_case "response lines" `Quick response_lines_roundtrip;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "daemon = direct Eval, bit for bit" `Quick
            daemon_matches_direct_eval;
          QCheck_alcotest.to_alcotest qcheck_batches_bit_identical;
        ] );
      ( "socket",
        [
          Alcotest.test_case "end to end, malformed line survives" `Quick
            socket_end_to_end;
          Alcotest.test_case "prometheus scrape" `Quick metrics_scrape;
        ] );
    ]
