(* Tests for the telemetry subsystem: instrument semantics, the
   disabled-mode null sinks, snapshot merge, the JSON round-trip,
   Prometheus exposition and the ambient registry. *)

module M = Fatnet_obs.Metrics
module S = M.Snapshot

let check_float = Alcotest.(check (float 1e-12))

let find_exn ?labels snap name =
  match S.find ?labels snap name with
  | Some v -> v
  | None -> Alcotest.failf "series %s not found" name

let counter_exn ?labels snap name =
  match find_exn ?labels snap name with
  | S.Counter n -> n
  | _ -> Alcotest.failf "%s is not a counter" name

let gauge_exn ?labels snap name =
  match find_exn ?labels snap name with
  | S.Gauge g -> g
  | _ -> Alcotest.failf "%s is not a gauge" name

let histo_exn ?labels snap name =
  match find_exn ?labels snap name with
  | S.Histogram h -> h
  | _ -> Alcotest.failf "%s is not a histogram" name

let counter_semantics () =
  let t = M.create () in
  let c = M.counter t "events" in
  M.incr c;
  M.add c 41;
  Alcotest.(check int) "incr + add" 42 (counter_exn (M.snapshot t) "events");
  let c' = M.counter t "events" in
  M.incr c';
  Alcotest.(check int) "same identity, same instrument" 43
    (counter_exn (M.snapshot t) "events")

let gauge_semantics () =
  let t = M.create () in
  let g = M.gauge t "depth" in
  M.set g 3.;
  M.set_max g 1.;
  check_float "set_max keeps larger" 3. (gauge_exn (M.snapshot t) "depth");
  M.set_max g 7.;
  check_float "set_max takes larger" 7. (gauge_exn (M.snapshot t) "depth");
  M.set g 2.;
  check_float "set overwrites" 2. (gauge_exn (M.snapshot t) "depth")

let histogram_semantics () =
  let t = M.create () in
  let h = M.histogram t "lat" ~lo:0. ~hi:10. ~bins:5 in
  (* -1. is rejected at the boundary: a negative sample into a
     non-negative-range histogram is a broken clock, not data. *)
  List.iter (M.observe h) [ 0.5; 1.; 3.; -1.; 10.; 100. ];
  let s = histo_exn (M.snapshot t) "lat" in
  Alcotest.(check int) "count includes overflow, not rejects" 5 s.S.count;
  Alcotest.(check int) "negative rejected, no underflow" 0 s.S.underflow;
  Alcotest.(check int) "overflow" 2 s.S.overflow;
  Alcotest.(check int) "bin 0" 2 s.S.counts.(0);
  Alcotest.(check int) "bin 1" 1 s.S.counts.(1);
  check_float "sum" 114.5 s.S.sum

let observe_rejections () =
  let t = M.create () in
  let h = M.histogram t "lat" ~lo:0. ~hi:1. ~bins:2 in
  M.observe h nan;
  M.observe h (-1e-9);
  M.observe h (-0.) (* negative zero is zero: in range *);
  M.observe h 0.25;
  let s = histo_exn (M.snapshot t) "lat" in
  Alcotest.(check int) "NaN and negatives dropped" 2 s.S.count;
  Alcotest.(check int) "no underflow recorded" 0 s.S.underflow;
  check_float "sum untouched by rejects" 0.25 s.S.sum;
  (* A histogram whose range admits negative values still takes them:
     the guard is about non-negative ranges, not a sign ban. *)
  let signed = M.histogram t "delta" ~lo:(-1.) ~hi:1. ~bins:2 in
  M.observe signed (-0.5);
  M.observe signed (-5.);
  M.observe signed nan;
  let s = histo_exn (M.snapshot t) "delta" in
  Alcotest.(check int) "signed range accepts negatives" 2 s.S.count;
  Alcotest.(check int) "true underflow still counted" 1 s.S.underflow

let now_seconds_monotonic () =
  (* The daemon timestamps request arrival and batch walls with
     [now_seconds]; a wall-clock step (NTP, manual set) must never
     produce a negative duration.  The monotonic source guarantees
     non-decreasing reads; the epoch is arbitrary, so only
     differences are checked. *)
  let prev = ref (M.now_seconds ()) in
  for _ = 1 to 1000 do
    let t = M.now_seconds () in
    if t < !prev then Alcotest.failf "clock went backwards: %.17g < %.17g" t !prev;
    prev := t
  done;
  let t0 = M.now_seconds () in
  Unix.sleepf 0.01;
  let dt = M.now_seconds () -. t0 in
  Alcotest.(check bool) "sleep measured" true (dt >= 0.009 && dt < 10.)

let labels_distinguish () =
  let t = M.create () in
  let a = M.counter t "hits" ~labels:[ ("level", "0") ] in
  let b = M.counter t "hits" ~labels:[ ("level", "1") ] in
  M.incr a;
  M.add b 2;
  let snap = M.snapshot t in
  Alcotest.(check int) "level 0" 1 (counter_exn ~labels:[ ("level", "0") ] snap "hits");
  Alcotest.(check int) "level 1" 2 (counter_exn ~labels:[ ("level", "1") ] snap "hits");
  Alcotest.(check bool) "unlabelled absent" true (S.find snap "hits" = None)

let kind_mismatch_raises () =
  let t = M.create () in
  ignore (M.counter t "x");
  Alcotest.(check bool) "kind clash raises" true
    (match M.gauge t "x" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  ignore (M.histogram t "h" ~lo:0. ~hi:1. ~bins:4);
  Alcotest.(check bool) "bucket clash raises" true
    (match M.histogram t "h" ~lo:0. ~hi:2. ~bins:4 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let disabled_is_silent () =
  Alcotest.(check bool) "disabled" false (M.is_enabled M.disabled);
  Alcotest.(check bool) "create enabled" true (M.is_enabled (M.create ()));
  let c = M.counter M.disabled "events" in
  let g = M.gauge M.disabled "depth" in
  let h = M.histogram M.disabled "lat" ~lo:0. ~hi:1. ~bins:2 in
  M.incr c;
  M.add c 5;
  M.set g 1.;
  M.set_max g 9.;
  M.observe h 0.5;
  let span = M.start_span h in
  M.finish_span span;
  M.set_meta M.disabled "k" "v";
  Alcotest.(check bool) "snapshot stays empty" true (M.snapshot M.disabled = S.empty);
  (* Mismatched re-registration must not raise either: the disabled
     registry validates nothing, it only hands out sinks. *)
  ignore (M.histogram M.disabled "lat" ~lo:0. ~hi:99. ~bins:7)

let span_observes () =
  let t = M.create () in
  let h = M.histogram t "elapsed" ~lo:0. ~hi:60. ~bins:6 in
  let span = M.start_span h in
  M.finish_span span;
  let s = histo_exn (M.snapshot t) "elapsed" in
  Alcotest.(check int) "one sample" 1 s.S.count;
  Alcotest.(check bool) "non-negative" true (s.S.sum >= 0.)

let merge_semantics () =
  let mk f =
    let t = M.create () in
    f t;
    M.snapshot t
  in
  let a =
    mk (fun t ->
        M.add (M.counter t "c") 2;
        M.set (M.gauge t "g") 5.;
        M.observe (M.histogram t "h" ~lo:0. ~hi:4. ~bins:4) 1.5;
        M.set_meta t "who" "a";
        M.set_meta t "only_a" "1")
  in
  let b =
    mk (fun t ->
        M.add (M.counter t "c") 3;
        M.set (M.gauge t "g") 4.;
        M.observe (M.histogram t "h" ~lo:0. ~hi:4. ~bins:4) 1.7;
        M.observe (M.histogram t "h" ~lo:0. ~hi:4. ~bins:4) 9.;
        M.set_meta t "who" "b")
  in
  let m = S.merge a b in
  Alcotest.(check int) "counters add" 5 (counter_exn m "c");
  check_float "gauges keep max" 5. (gauge_exn m "g");
  let h = histo_exn m "h" in
  Alcotest.(check int) "histogram counts add" 3 h.S.count;
  Alcotest.(check int) "shared bin" 2 h.S.counts.(1);
  Alcotest.(check int) "overflow adds" 1 h.S.overflow;
  check_float "sums add" 12.2 h.S.sum;
  Alcotest.(check (option string)) "meta ties: second wins" (Some "b")
    (List.assoc_opt "who" m.S.meta);
  Alcotest.(check (option string)) "meta union" (Some "1") (List.assoc_opt "only_a" m.S.meta)

let merge_layout_mismatch () =
  let mk hi =
    let t = M.create () in
    M.observe (M.histogram t "h" ~lo:0. ~hi ~bins:4) 0.5;
    M.snapshot t
  in
  Alcotest.(check bool) "layout mismatch raises" true
    (match S.merge (mk 4.) (mk 5.) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let json_roundtrip () =
  let t = M.create () in
  M.set_meta t "scenario" "fig5 \"quoted\"\nline";
  M.add (M.counter t "c" ~help:"a counter") 7;
  M.set (M.gauge t "g" ~labels:[ ("phase", "drain") ]) 1.25e-9;
  M.set (M.gauge t "g_nan") nan;
  M.set (M.gauge t "g_inf") infinity;
  M.set (M.gauge t "g_ninf") neg_infinity;
  let h = M.histogram t "h" ~lo:0. ~hi:1. ~bins:3 ~help:"hist" in
  List.iter (M.observe h) [ 0.1; 0.5; 0.9; -2.; 3. ];
  let snap = M.snapshot t in
  match S.of_json (S.to_json snap) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok back ->
      Alcotest.(check bool) "meta survives" true (back.S.meta = snap.S.meta);
      Alcotest.(check int) "series count" (List.length snap.S.series)
        (List.length back.S.series);
      Alcotest.(check int) "counter" 7 (counter_exn back "c");
      check_float "tiny float exact" 1.25e-9 (gauge_exn ~labels:[ ("phase", "drain") ] back "g");
      Alcotest.(check bool) "nan" true (Float.is_nan (gauge_exn back "g_nan"));
      check_float "inf" infinity (gauge_exn back "g_inf");
      check_float "-inf" neg_infinity (gauge_exn back "g_ninf");
      Alcotest.(check bool) "histogram identical" true
        (histo_exn back "h" = histo_exn snap "h");
      (* A second round trip must be a fixed point. *)
      Alcotest.(check string) "stable encoding" (S.to_json snap) (S.to_json back)

let json_rejects_garbage () =
  let bad = [ ""; "nonsense"; "{}"; "{ \"fatnet_metrics_version\": 99 }"; "[1, 2" ] in
  List.iter
    (fun doc ->
      match S.of_json doc with
      | Ok _ -> Alcotest.failf "accepted %S" doc
      | Error _ -> ())
    bad

let prometheus_format () =
  let t = M.create () in
  M.add (M.counter t "c" ~help:"a counter") 7;
  M.set (M.gauge t "g" ~labels:[ ("phase", "drain") ]) 2.5;
  let h = M.histogram t "h" ~lo:0. ~hi:1. ~bins:2 in
  List.iter (M.observe h) [ 0.25; 0.75; -1.; 5. ];
  let body = S.to_prometheus (M.snapshot t) in
  let has needle =
    let n = String.length needle and l = String.length body in
    let rec go i = i + n <= l && (String.sub body i n = needle || go (i + 1)) in
    Alcotest.(check bool) ("contains " ^ needle) true (go 0)
  in
  has "# TYPE c counter";
  has "c 7";
  has "# HELP c a counter";
  has "g{phase=\"drain\"} 2.5";
  (* -1. was rejected at the boundary (non-negative range); +Inf
     covers the overflow *)
  has "h_bucket{le=\"0.5\"} 1";
  has "h_bucket{le=\"1\"} 2";
  has "h_bucket{le=\"+Inf\"} 3";
  has "h_count 3"

let duplicate_series_error () =
  let t = M.create () in
  ignore (M.counter t "dup" ~labels:[ ("a", "1") ]);
  match M.gauge t "dup" ~labels:[ ("a", "2") ] with
  | _ -> Alcotest.fail "gauge under a counter's name accepted"
  | exception Invalid_argument msg ->
      let has needle =
        let n = String.length needle and l = String.length msg in
        let rec go i = i + n <= l && (String.sub msg i n = needle || go (i + 1)) in
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" msg needle)
          true (go 0)
      in
      has "duplicate series dup";
      has "already registered as a counter"

let replace ~needle ~by s =
  let n = String.length needle in
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i < String.length s do
    if !i + n <= String.length s && String.sub s !i n = needle then begin
      Buffer.add_string b by;
      i := !i + n
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let json_unknown_kind_qualified () =
  let t = M.create () in
  M.add (M.counter t "c") 1;
  M.set (M.gauge t "g") 2.;
  let doc =
    replace ~needle:"\"type\": \"gauge\"" ~by:"\"type\": \"sparkline\""
      (S.to_json (M.snapshot t))
  in
  match S.of_json doc with
  | Ok _ -> Alcotest.fail "unknown kind accepted"
  | Error e ->
      let has needle =
        let n = String.length needle and l = String.length e in
        let rec go i = i + n <= l && (String.sub e i n = needle || go (i + 1)) in
        Alcotest.(check bool) (Printf.sprintf "%S mentions %S" e needle) true (go 0)
      in
      (* The error names the offending series and field, .scn-style. *)
      has "series[";
      has "unknown metric kind \"sparkline\""

let prometheus_escaping () =
  let t = M.create () in
  M.set
    (M.gauge t "g" ~help:"line1\nline2 \"quoted\" back\\slash"
       ~labels:[ ("path", "a\\b\"c\nd") ])
    1.;
  let body = S.to_prometheus (M.snapshot t) in
  let has needle =
    let n = String.length needle and l = String.length body in
    let rec go i = i + n <= l && (String.sub body i n = needle || go (i + 1)) in
    Alcotest.(check bool) ("contains " ^ String.escaped needle) true (go 0)
  in
  (* Label values escape backslash, double quote and newline. *)
  has "g{path=\"a\\\\b\\\"c\\nd\"} 1";
  (* HELP text escapes backslash and newline but leaves quotes alone. *)
  has "# HELP g line1\\nline2 \"quoted\" back\\\\slash"

let ambient_restores () =
  let t = M.create () in
  Alcotest.(check bool) "default ambient disabled" false (M.is_enabled (M.ambient ()));
  M.with_ambient t (fun () ->
      Alcotest.(check bool) "swapped in" true (M.ambient () == t);
      M.incr (M.counter (M.ambient ()) "seen"));
  Alcotest.(check bool) "restored" false (M.is_enabled (M.ambient ()));
  Alcotest.(check int) "recorded through ambient" 1 (counter_exn (M.snapshot t) "seen");
  (match M.with_ambient t (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  Alcotest.(check bool) "restored after raise" false (M.is_enabled (M.ambient ()))

let absorb_folds_in () =
  let root = M.create () in
  M.add (M.counter root "c") 1;
  let worker = M.create () in
  M.add (M.counter worker "c") 2;
  M.observe (M.histogram worker "h" ~lo:0. ~hi:1. ~bins:2) 0.75;
  M.absorb root (M.snapshot worker);
  let snap = M.snapshot root in
  Alcotest.(check int) "counters folded" 3 (counter_exn snap "c");
  Alcotest.(check int) "new instrument created" 1 (histo_exn snap "h").S.count;
  (* absorbing into disabled is a no-op, not an error *)
  M.absorb M.disabled (M.snapshot worker);
  Alcotest.(check bool) "disabled unchanged" true (M.snapshot M.disabled = S.empty)

let domain_counters () =
  let t = M.create () in
  let c = M.counter t "n" in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              M.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "atomic across domains" 40_000 (counter_exn (M.snapshot t) "n")

let () =
  Alcotest.run "obs"
    [
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick counter_semantics;
          Alcotest.test_case "gauge" `Quick gauge_semantics;
          Alcotest.test_case "histogram" `Quick histogram_semantics;
          Alcotest.test_case "observe rejects NaN and negatives" `Quick
            observe_rejections;
          Alcotest.test_case "now_seconds is monotonic" `Quick now_seconds_monotonic;
          Alcotest.test_case "labels" `Quick labels_distinguish;
          Alcotest.test_case "kind mismatch" `Quick kind_mismatch_raises;
          Alcotest.test_case "duplicate series error" `Quick duplicate_series_error;
          Alcotest.test_case "span" `Quick span_observes;
          Alcotest.test_case "domain counters" `Quick domain_counters;
        ] );
      ( "disabled",
        [ Alcotest.test_case "null sinks" `Quick disabled_is_silent ] );
      ( "snapshot",
        [
          Alcotest.test_case "merge" `Quick merge_semantics;
          Alcotest.test_case "merge layout mismatch" `Quick merge_layout_mismatch;
          Alcotest.test_case "absorb" `Quick absorb_folds_in;
        ] );
      ( "export",
        [
          Alcotest.test_case "json roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "json rejects garbage" `Quick json_rejects_garbage;
          Alcotest.test_case "json unknown kind" `Quick json_unknown_kind_qualified;
          Alcotest.test_case "prometheus" `Quick prometheus_format;
          Alcotest.test_case "prometheus escaping" `Quick prometheus_escaping;
        ] );
      ( "ambient",
        [ Alcotest.test_case "swap and restore" `Quick ambient_restores ] );
    ]
