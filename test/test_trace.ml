(* The causal span trace: disabled-is-free discipline, the span-tree
   invariants under concurrent recording, the Chrome trace-event
   round trip, and the headline contract — a traced sweep is
   bit-identical to an untraced one, cache entries included. *)

module Trace = Fatnet_obs.Trace
module Json = Fatnet_obs.Json
module Engine = Fatnet_experiments.Sweep_engine
module Scenario = Fatnet_scenario.Scenario
module Presets = Fatnet_model.Presets
module Latency = Fatnet_model.Latency

let message = Presets.message ~m_flits:8 ~d_m_bytes:256.

let small_system =
  Fatnet_model.Params.homogeneous ~m:4 ~tree_depth:2 ~clusters:4 ~icn1:Presets.net1
    ~ecn1:Presets.net2 ~icn2:Presets.net1

let tiny_protocol =
  { Scenario.quick_protocol with Scenario.warmup = 10; measured = 100; drain = 10 }

let point lambda_g =
  Scenario.make ~name:"trace-test" ~system:small_system ~message ~protocol:tiny_protocol
    ~load:(Scenario.Fixed lambda_g) ()

let points n = List.init n (fun i -> point (1e-4 *. float_of_int (i + 1)))

let with_temp_dir f =
  let dir = Filename.temp_file "fatnet-trace-test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      (match Sys.readdir dir with
      | files ->
          Array.iter
            (fun x -> try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
            files
      | exception Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

(* --- disabled-is-free discipline ---------------------------------- *)

let disabled_is_inert () =
  Alcotest.(check bool) "disabled" false (Trace.is_enabled Trace.disabled);
  Alcotest.(check bool) "create enabled" true (Trace.is_enabled (Trace.create ()));
  let sp = Trace.start Trace.disabled "x" in
  Alcotest.(check bool) "null span" true (sp == Trace.null_span);
  Alcotest.(check int) "null id" 0 (Trace.id sp);
  Trace.attr sp "k" "v";
  Trace.attr_int sp "i" 1;
  Trace.attr_float sp "f" 1.5;
  Trace.finish sp;
  Trace.instant Trace.disabled "marker" [ ("a", "b") ];
  let got = Trace.in_span Trace.disabled "y" (fun inner -> inner == Trace.null_span) in
  Alcotest.(check bool) "in_span hands null span" true got;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans Trace.disabled));
  Alcotest.(check int) "no ambient current" 0 (Trace.current ())

let nesting_and_attrs () =
  let t = Trace.create () in
  let r =
    Trace.in_span t "outer" (fun outer ->
        Trace.attr_int outer "n" 3;
        Trace.in_span t "inner" (fun inner ->
            Alcotest.(check int) "ambient current is inner" (Trace.id inner)
              (Trace.current ());
            (Trace.id outer, Trace.id inner)))
  in
  let outer_id, inner_id = r in
  Alcotest.(check int) "current restored" 0 (Trace.current ());
  match Trace.spans t with
  | [ a; b ] ->
      (* sorted by start: outer began first *)
      Alcotest.(check string) "outer first" "outer" a.Trace.name;
      Alcotest.(check int) "outer is a root" 0 a.Trace.parent;
      Alcotest.(check int) "outer id" outer_id a.Trace.id;
      Alcotest.(check bool) "attr kept" true (List.mem ("n", "3") a.Trace.attrs);
      Alcotest.(check string) "inner second" "inner" b.Trace.name;
      Alcotest.(check int) "inner parents to outer" outer_id b.Trace.parent;
      Alcotest.(check int) "inner id" inner_id b.Trace.id
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

(* --- the span-tree invariants, under any --domains ----------------- *)

let span_end (r : Trace.span_record) = Int64.add r.start_ns r.dur_ns

let check_tree spans =
  let by_id = Hashtbl.create 64 in
  List.iter (fun (r : Trace.span_record) -> Hashtbl.replace by_id r.id r) spans;
  (* Every parented span's interval sits inside its parent's. *)
  List.iter
    (fun (r : Trace.span_record) ->
      if r.parent <> 0 then
        match Hashtbl.find_opt by_id r.parent with
        | None ->
            QCheck.Test.fail_reportf "span %d (%s) has unrecorded parent %d" r.id
              r.name r.parent
        | Some p ->
            if not (p.start_ns <= r.start_ns && span_end r <= span_end p) then
              QCheck.Test.fail_reportf
                "child %d (%s) [%Ld +%Ld] escapes parent %d (%s) [%Ld +%Ld]" r.id
                r.name r.start_ns r.dur_ns p.id p.name p.start_ns p.dur_ns)
    spans;
  (* On one track (= one recording domain) spans nest or are disjoint:
     bodies run on a single domain, so intervals cannot straddle. *)
  let tracks = Hashtbl.create 8 in
  List.iter
    (fun (r : Trace.span_record) ->
      let prev = Option.value (Hashtbl.find_opt tracks r.track) ~default:[] in
      Hashtbl.replace tracks r.track (r :: prev))
    spans;
  Hashtbl.iter
    (fun track rs ->
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                let disjoint =
                  span_end a <= b.Trace.start_ns || span_end b <= a.Trace.start_ns
                in
                let nested =
                  (a.Trace.start_ns <= b.Trace.start_ns && span_end b <= span_end a)
                  || (b.Trace.start_ns <= a.Trace.start_ns && span_end a <= span_end b)
                in
                if not (disjoint || nested) then
                  QCheck.Test.fail_reportf
                    "track %d: spans %d (%s) and %d (%s) overlap without nesting" track
                    a.Trace.id a.Trace.name b.Trace.id b.Trace.name)
              rest;
            pairs rest
      in
      pairs rs)
    tracks;
  true

let gen_case = QCheck.Gen.(pair (int_range 1 4) (int_range 2 5))

let qcheck_span_tree =
  QCheck.Test.make
    ~name:"sweep trace: parents contain children, per-track spans nest or are disjoint"
    ~count:8 (QCheck.make gen_case)
    (fun (domains, n) ->
      let tracer = Trace.create () in
      let config =
        {
          Engine.default_config with
          domains = Some domains;
          cache = Engine.No_cache;
          tracer;
        }
      in
      ignore (Engine.run ~config (points n));
      let spans = Trace.spans tracer in
      if List.length spans = 0 then QCheck.Test.fail_report "no spans recorded";
      check_tree spans)

(* --- Chrome trace-event export ------------------------------------ *)

(* One trace covering every instrumented layer: solver spans from a
   saturation search, sweep/point/attempt/sim spans from a cached
   engine run (cache.find/cache.store included). *)
let full_stack_trace dir =
  let tracer = Trace.create () in
  Trace.with_ambient tracer (fun () ->
      ignore (Latency.saturation_rate ~system:small_system ~message ()));
  let config =
    {
      Engine.default_config with
      domains = Some 2;
      cache = Engine.Cache_dir dir;
      tracer;
    }
  in
  ignore (Engine.run ~config (points 3));
  tracer

let chrome_roundtrip () =
  with_temp_dir @@ fun dir ->
  let tracer = full_stack_trace dir in
  let orig = Trace.spans tracer in
  let doc = Trace.to_chrome_json tracer in
  (* The document is loadable JSON with the Chrome shape: a
     traceEvents array of complete events plus thread_name metadata. *)
  (match Json.member "traceEvents" (Json.parse doc) with
  | Some (Json.Arr evs) ->
      let ph v e = Json.member "ph" e = Some (Json.Str v) in
      Alcotest.(check bool) "has complete events" true (List.exists (ph "X") evs);
      Alcotest.(check bool) "has thread_name metadata" true
        (List.exists (ph "M") evs);
      Alcotest.(check int) "one X event per span" (List.length orig)
        (List.length (List.filter (ph "X") evs))
  | _ -> Alcotest.fail "no traceEvents array");
  match Trace.spans_of_chrome_json doc with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok back ->
      Alcotest.(check int) "span count survives" (List.length orig) (List.length back);
      List.iter2
        (fun (a : Trace.span_record) (b : Trace.span_record) ->
          if a <> b then
            Alcotest.failf
              "span %d (%s) did not round-trip: [%Ld +%Ld] %d attrs vs [%Ld +%Ld] %d \
               attrs"
              a.id a.name a.start_ns a.dur_ns (List.length a.attrs) b.start_ns
              b.dur_ns (List.length b.attrs))
        orig back

let every_layer_appears () =
  with_temp_dir @@ fun dir ->
  let tracer = full_stack_trace dir in
  let names = List.map (fun (r : Trace.span_record) -> r.name) (Trace.spans tracer) in
  let prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  List.iter
    (fun layer ->
      Alcotest.(check bool) ("a " ^ layer ^ " span exists") true
        (List.exists (prefix layer) names))
    [ "sweep"; "point"; "attempt"; "sim."; "solver."; "cache." ]

let garbage_rejected () =
  List.iter
    (fun doc ->
      match Trace.spans_of_chrome_json doc with
      | Ok _ -> Alcotest.failf "accepted %S" doc
      | Error _ -> ())
    [ ""; "nonsense"; "{}"; "{ \"traceEvents\": 3 }"; "{ \"traceEvents\": [ 4 ] }" ]

(* --- observer registry ------------------------------------------- *)

let observer_order_preserved () =
  (* Subscribers fire in registration order — the live progress line
     relies on it — and enough of them to force the growable array
     through several doublings.  Subscribing from inside an observer
     callback (re-entrant growth) must neither deadlock nor disturb
     the order of the in-flight notification. *)
  let tr = Trace.create () in
  let calls = ref [] in
  let n = 67 in
  for i = 0 to n - 1 do
    Trace.subscribe tr (fun _ -> calls := i :: !calls)
  done;
  Trace.in_span tr "probe" (fun _ -> ());
  Alcotest.(check (list int)) "registration order" (List.init n Fun.id)
    (List.rev !calls);
  calls := [];
  let late = ref 0 in
  Trace.subscribe tr (fun _ ->
      if !late = 0 then Trace.subscribe tr (fun _ -> incr late));
  Trace.in_span tr "again" (fun _ -> ());
  Alcotest.(check (list int)) "existing order stable" (List.init n Fun.id)
    (List.rev !calls);
  Alcotest.(check int) "late subscriber not called mid-flight" 0 !late;
  Trace.in_span tr "third" (fun _ -> ());
  Alcotest.(check int) "late subscriber called next span" 1 !late

(* --- the headline contract: tracing observes, never steers --------- *)

let traced_sweep_bit_identical () =
  with_temp_dir @@ fun dir_plain ->
  with_temp_dir @@ fun dir_traced ->
  let run tracer dir =
    let config =
      { Engine.default_config with domains = Some 2; cache = Engine.Cache_dir dir; tracer }
    in
    Engine.results_exn (Engine.run ~config (points 4))
  in
  let plain = run Trace.disabled dir_plain in
  let traced = run (Trace.create ()) dir_traced in
  (* Bit-for-bit result equality, NaN-proof: Marshal preserves float
     bit patterns, so equal bytes <=> equal bits. *)
  Alcotest.(check bool) "results bit-identical" true
    (Marshal.to_string plain [] = Marshal.to_string traced []);
  (* The traced run populated the same cache entries, byte for byte:
     the span tracer never bypasses or perturbs the cache. *)
  let entries dir = Sys.readdir dir |> Array.to_list |> List.sort compare in
  Alcotest.(check (list string)) "same cache entries" (entries dir_plain)
    (entries dir_traced);
  List.iter
    (fun f ->
      let slurp d = In_channel.with_open_bin (Filename.concat d f) In_channel.input_all in
      Alcotest.(check bool) ("entry " ^ f ^ " byte-identical") true
        (slurp dir_plain = slurp dir_traced))
    (entries dir_plain)

let () =
  Alcotest.run "trace"
    [
      ( "discipline",
        [
          Alcotest.test_case "disabled is inert" `Quick disabled_is_inert;
          Alcotest.test_case "nesting and attrs" `Quick nesting_and_attrs;
        ] );
      ("tree", [ QCheck_alcotest.to_alcotest qcheck_span_tree ]);
      ( "observers",
        [ Alcotest.test_case "registration order" `Quick observer_order_preserved ] );
      ( "chrome",
        [
          Alcotest.test_case "round trip" `Quick chrome_roundtrip;
          Alcotest.test_case "every layer appears" `Quick every_layer_appears;
          Alcotest.test_case "garbage rejected" `Quick garbage_rejected;
        ] );
      ( "transparency",
        [ Alcotest.test_case "bit-identical with cache" `Quick traced_sweep_bit_identical ]
      );
    ]
