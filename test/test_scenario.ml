(* Tests for the scenario subsystem: the validated experiment record,
   the versioned text codec, and the canonical identity / hash that
   keys the point cache.

   The codec contract is parse -> print -> parse identity on every
   valid scenario (a QCheck property over randomly generated systems,
   patterns, protocols and loads), and the golden hashes below pin
   the identity of the paper's two Table-1 organizations: if either
   test breaks, the cache key scheme changed and [scenario_version]
   must be bumped. *)

module Scenario = Fatnet_scenario.Scenario
module Params = Fatnet_model.Params
module Presets = Fatnet_model.Presets
module Variants = Fatnet_model.Variants
module Destination = Fatnet_workload.Destination

let base =
  Scenario.make ~name:"base" ~title:"base scenario"
    ~system:
      (Params.homogeneous ~m:4 ~tree_depth:2 ~clusters:4 ~icn1:Presets.net1 ~ecn1:Presets.net2
         ~icn2:Presets.net1)
    ~message:(Presets.message ~m_flits:32 ~d_m_bytes:256.)
    ~load:(Scenario.Fixed 1e-4) ()

(* ---- validation ---- *)

let check_error expected s =
  match Scenario.validate s with
  | Ok () -> Alcotest.failf "expected %S, scenario validated" expected
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" msg expected)
        true
        (String.length msg >= String.length expected
        && String.sub msg 0 (String.length expected) = expected)

let validate_names_the_field () =
  check_error "load.fixed" { base with Scenario.load = Scenario.Fixed (-1.) };
  check_error "load.fixed" { base with Scenario.load = Scenario.Fixed Float.infinity };
  check_error "load.linear.steps"
    { base with Scenario.load = Scenario.Linear { lambda_max = 1e-3; steps = 0 } };
  check_error "message.flits"
    { base with Scenario.message = { base.Scenario.message with Params.length_flits = 0 } };
  check_error "message.flit-bytes"
    { base with Scenario.message = { base.Scenario.message with Params.flit_bytes = 0. } };
  check_error "protocol.measured"
    { base with Scenario.protocol = { base.Scenario.protocol with Scenario.measured = 0 } };
  check_error "protocol.warmup"
    { base with Scenario.protocol = { base.Scenario.protocol with Scenario.warmup = -1 } };
  check_error "pattern.hotspot.node"
    { base with Scenario.pattern = Destination.Hotspot { node = 999; fraction = 0.1 } };
  check_error "pattern.hotspot.fraction"
    { base with Scenario.pattern = Destination.Hotspot { node = 0; fraction = 1.5 } };
  check_error "pattern.local"
    { base with Scenario.pattern = Destination.Local { p_local = -0.1 } };
  check_error "replication.target-rel"
    {
      base with
      Scenario.replication =
        Some { Scenario.target_rel = 0.; confidence = 0.95; min_reps = 2; max_reps = 4; target = Scenario.Mean };
    };
  check_error "replication.confidence"
    {
      base with
      Scenario.replication =
        Some { Scenario.target_rel = 0.1; confidence = 1.; min_reps = 2; max_reps = 4; target = Scenario.Mean };
    };
  check_error "replication.max-reps"
    {
      base with
      Scenario.replication =
        Some { Scenario.target_rel = 0.1; confidence = 0.95; min_reps = 4; max_reps = 2; target = Scenario.Mean };
    };
  check_error "system: "
    { base with Scenario.system = { base.Scenario.system with Params.m = 5 } };
  check_error "name" { base with Scenario.name = "two\nlines" }

let make_rejects_invalid () =
  Alcotest.check_raises "Invalid_argument"
    (Invalid_argument "Scenario: load.fixed: must be finite and positive") (fun () ->
      ignore
        (Scenario.make ~system:base.Scenario.system ~message:base.Scenario.message
           ~load:(Scenario.Fixed 0.) ()))

(* ---- load axis ---- *)

let load_axis_shapes () =
  let swept =
    { base with Scenario.load = Scenario.Linear { lambda_max = 1e-3; steps = 4 } }
  in
  Alcotest.(check (list (float 1e-15)))
    "linear grid" [ 2.5e-4; 5e-4; 7.5e-4; 1e-3 ] (Scenario.lambdas swept);
  Alcotest.(check int) "one point per lambda" 4 (List.length (Scenario.points swept));
  Alcotest.(check (option (float 0.))) "fixed" (Some 1e-4) (Scenario.fixed_lambda base);
  Alcotest.(check (option (float 0.))) "swept has no fixed rate" None
    (Scenario.fixed_lambda swept);
  Alcotest.(check (float 0.)) "at pins" 7.5e-4
    (Scenario.require_lambda (Scenario.at swept 7.5e-4));
  Alcotest.check_raises "require_lambda on a sweep"
    (Invalid_argument "Scenario: lambda_g is required when the load axis is a sweep")
    (fun () -> ignore (Scenario.require_lambda swept))

(* ---- codec round-trip ---- *)

let roundtrip s =
  match Scenario.of_string (Scenario.to_string s) with
  | Ok s' -> s'
  | Error e -> Alcotest.failf "reparse failed: %s\n%s" e (Scenario.to_string s)

let roundtrip_exact () =
  List.iter
    (fun s -> Alcotest.(check bool) ("round-trips: " ^ s.Scenario.name) true (roundtrip s = s))
    [
      base;
      { base with Scenario.name = "swept"; load = Scenario.Linear { lambda_max = 1e-3; steps = 7 } };
      {
        base with
        Scenario.name = "rich";
        title = "hotspot, replicated, store-and-forward";
        pattern = Destination.Hotspot { node = 3; fraction = 0.25 };
        replication =
          Some { Scenario.target_rel = 0.05; confidence = 0.95; min_reps = 2; max_reps = 8; target = Scenario.Quantile 0.99 };
        protocol =
          {
            Scenario.quick_protocol with
            Scenario.cd_mode = Scenario.Store_and_forward;
            streaming = false;
            seed = -1L;
          };
      };
      {
        base with
        Scenario.name = "local";
        pattern = Destination.Local { p_local = 0.9 };
        variants =
          {
            Variants.lambda_i2 = Variants.Size_scaled;
            source_variance = Variants.Zero;
            source_rate = Variants.Network_total;
            use_relaxing_factor = false;
          };
      };
    ]

(* Version-1 files (written before the distribution-carrying result
   pipeline) have no `target` line and a `scenario 1` header: they
   must keep parsing, with the stopping target defaulting to the
   mean — the exact pre-v2 semantics. *)
let v1_files_parse_with_mean_target () =
  let v2 =
    {
      base with
      Scenario.name = "legacy";
      replication =
        Some
          {
            Scenario.target_rel = 0.05;
            confidence = 0.95;
            min_reps = 2;
            max_reps = 8;
            target = Scenario.Mean;
          };
    }
  in
  let v1_text =
    Scenario.to_string v2 |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           if line = "scenario 2" then Some "scenario 1"
           else if line = "target mean" then None
           else Some line)
    |> String.concat "\n"
  in
  (match Scenario.of_string v1_text with
  | Ok parsed ->
      Alcotest.(check bool) "v1 text parses to the v2 value (target = Mean)" true (parsed = v2)
  | Error e -> Alcotest.failf "v1 text rejected: %s" e);
  Alcotest.(check bool) "both versions declared parseable" true
    (List.mem 1 Scenario.parseable_versions && List.mem 2 Scenario.parseable_versions);
  match Scenario.of_string (String.concat "\n" [ "scenario 99"; "" ]) with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error e ->
      Alcotest.(check bool) "unknown version rejected with the supported list" true
        (String.length e > 0)

(* Random valid scenarios.  Floats mix "nice" decimals with raw
   doubles so the shortest-round-trip printer's %.17g fallback is
   exercised. *)
let gen_scenario =
  let open QCheck.Gen in
  let messy_float lo hi =
    oneof [ oneofl [ lo; hi; (lo +. hi) /. 2. ]; float_range lo hi ]
  in
  let gen_network =
    messy_float 1. 1000. >>= fun bandwidth ->
    messy_float 0. 1. >>= fun network_latency ->
    messy_float 0. 1. >>= fun switch_latency ->
    return { Params.bandwidth; network_latency; switch_latency }
  in
  oneofl [ 2; 4; 6 ] >>= fun m ->
  (if m = 2 then return 1 else int_range 1 2) >>= fun n_c ->
  (* C = 2*(m/2)^n_c, the ICN2 shape constraint *)
  let clusters =
    let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
    2 * pow (m / 2) n_c
  in
  gen_network >>= fun icn2 ->
  list_repeat clusters
    ( int_range 1 2 >>= fun tree_depth ->
      gen_network >>= fun icn1 ->
      gen_network >>= fun ecn1 -> return { Params.tree_depth; icn1; ecn1 } )
  >>= fun cluster_list ->
  let system =
    {
      Params.m;
      clusters = Array.of_list cluster_list;
      icn2;
      icn2_depth = n_c;
    }
  in
  let n = Params.total_nodes system in
  int_range 1 256 >>= fun length_flits ->
  messy_float 1. 1024. >>= fun flit_bytes ->
  let message = { Params.length_flits; flit_bytes } in
  oneofl [ Variants.Pair_average; Variants.Size_scaled ] >>= fun lambda_i2 ->
  oneofl [ Variants.Draper_ghosh; Variants.Zero ] >>= fun source_variance ->
  oneofl [ Variants.Per_node; Variants.Network_total ] >>= fun source_rate ->
  bool >>= fun use_relaxing_factor ->
  let variants = { Variants.lambda_i2; source_variance; source_rate; use_relaxing_factor } in
  oneof
    [
      return Destination.Uniform;
      ( int_range 0 (n - 1) >>= fun node ->
        messy_float 0. 1. >>= fun fraction ->
        return (Destination.Hotspot { node; fraction }) );
      (messy_float 0. 1. >>= fun p_local -> return (Destination.Local { p_local }));
    ]
  >>= fun pattern ->
  int_range 0 5000 >>= fun warmup ->
  int_range 1 50_000 >>= fun measured ->
  int_range 0 5000 >>= fun drain ->
  (pair int int >>= fun (a, b) ->
   return Int64.(logxor (of_int a) (shift_left (of_int b) 31)))
  >>= fun seed ->
  oneofl [ Scenario.Cut_through; Scenario.Store_and_forward ] >>= fun cd_mode ->
  bool >>= fun streaming ->
  let protocol = { Scenario.warmup; measured; drain; seed; cd_mode; streaming } in
  oneof
    [
      return None;
      ( messy_float 0.01 0.5 >>= fun target_rel ->
        messy_float 0.5 0.99 >>= fun confidence ->
        int_range 1 3 >>= fun min_reps ->
        int_range 0 4 >>= fun extra ->
        oneof
          [
            return Scenario.Mean;
            (oneofl [ 0.5; 0.9; 0.99; 0.999 ] >>= fun q -> return (Scenario.Quantile q));
          ]
        >>= fun target ->
        return
          (Some
             { Scenario.target_rel; confidence; min_reps; max_reps = min_reps + extra; target })
      );
    ]
  >>= fun replication ->
  oneof
    [
      (messy_float 1e-6 1e-2 >>= fun l -> return (Scenario.Fixed l));
      ( messy_float 1e-6 1e-2 >>= fun lambda_max ->
        int_range 1 12 >>= fun steps ->
        return (Scenario.Linear { lambda_max; steps }) );
    ]
  >>= fun load ->
  return
    (Scenario.make ~name:"prop" ~title:"generated" ~variants ~pattern ~protocol ?replication
       ~system ~message ~load ())

let arb_scenario = QCheck.make ~print:Scenario.to_string gen_scenario

let roundtrip_property =
  QCheck.Test.make ~name:"parse (print s) = s" ~count:300 arb_scenario (fun s ->
      roundtrip s = s)

let hash_ignores_labels_property =
  QCheck.Test.make ~name:"hash ignores name/title" ~count:100 arb_scenario (fun s ->
      Scenario.hash { s with Scenario.name = "renamed"; title = "retitled" } = Scenario.hash s
      && Scenario.hash (roundtrip s) = Scenario.hash s)

(* ---- golden identities ---- *)

(* The two Table-1 organizations under the paper's figure settings
   (M=32, d_m=256, default protocol, default variants, six-step load
   axis).  These digests ARE the point-cache identity: a change here
   is a cache-key scheme change and requires a [scenario_version]
   bump (which this test then pins). *)
let golden_hashes () =
  Alcotest.(check int) "codec version" 2 Scenario.scenario_version;
  let org name system lambda_max =
    Scenario.make ~name ~system
      ~message:(Presets.message ~m_flits:32 ~d_m_bytes:256.)
      ~load:(Scenario.Linear { lambda_max; steps = 6 })
      ()
  in
  Alcotest.(check string) "org_1120 identity" "f768aad366ef4362262be2d146a6c299"
    (Scenario.hash (org "org1120" Presets.org_1120 5e-4));
  Alcotest.(check string) "org_544 identity" "fbd03de72886862710df5f9dd7f229f5"
    (Scenario.hash (org "org544" Presets.org_544 1e-3))

let parse_errors_carry_line_numbers () =
  let check_prefix input prefix =
    match Scenario.of_string input with
    | Ok _ -> Alcotest.failf "parsed, expected error %S" prefix
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S starts with %S" msg prefix)
          true
          (String.length msg >= String.length prefix
          && String.sub msg 0 (String.length prefix) = prefix)
  in
  check_prefix "bogus 9" "line 1";
  check_prefix "scenario 99\n" "line 1";
  check_prefix "scenario 1\n[system]\nm eight\n" "line 3";
  check_prefix "scenario 1\n[nonsense]\n" "line 2"

let () =
  Alcotest.run "scenario"
    [
      ( "validation",
        [
          Alcotest.test_case "field errors" `Quick validate_names_the_field;
          Alcotest.test_case "make raises" `Quick make_rejects_invalid;
          Alcotest.test_case "load axis" `Quick load_axis_shapes;
        ] );
      ( "codec",
        [
          Alcotest.test_case "exact round-trips" `Quick roundtrip_exact;
          Alcotest.test_case "v1 compatibility" `Quick v1_files_parse_with_mean_target;
          QCheck_alcotest.to_alcotest roundtrip_property;
          QCheck_alcotest.to_alcotest hash_ignores_labels_property;
          Alcotest.test_case "parse errors" `Quick parse_errors_carry_line_numbers;
        ] );
      ( "identity",
        [ Alcotest.test_case "golden hashes" `Quick golden_hashes ] );
    ]
