(* The allocation-free evaluation engine: bit-identity against the
   record-building reference, warm-started saturation searches and
   their telemetry, and the batched sweeps built on top. *)

module P = Fatnet_model.Params
module V = Fatnet_model.Variants
module L = Fatnet_model.Latency
module Eval = Fatnet_model.Eval
module Pattern = Fatnet_model.Pattern
module Sweep = Fatnet_model.Sweep
module Presets = Fatnet_model.Presets
module Solver = Fatnet_numerics.Solver
module Metrics = Fatnet_obs.Metrics
module Memo = Fatnet_numerics.Memo
module Pool = Eval.Pool

let message = Presets.message ~m_flits:32 ~d_m_bytes:256.

let small_system =
  P.homogeneous ~m:4 ~tree_depth:2 ~clusters:4 ~icn1:Presets.net1 ~ecn1:Presets.net2
    ~icn2:Presets.net1

let bits = Int64.bits_of_float

let check_bits what expected actual =
  Alcotest.(check int64) (Printf.sprintf "%s: %h = %h" what expected actual)
    (bits expected) (bits actual)

(* ---- bit-identity: mean_into vs Latency.mean ---- *)

let paper_orgs = [ ("org_544", Presets.org_544); ("org_1120", Presets.org_1120) ]

let golden_mean_bit_identity () =
  List.iter
    (fun (name, system) ->
      let ws = Eval.workspace ~system ~message () in
      let sat = L.saturation_rate ~system ~message () in
      (* A grid spanning light load through past saturation. *)
      List.iter
        (fun frac ->
          let lambda_g = frac *. sat in
          check_bits
            (Printf.sprintf "%s at %.2f x sat" name frac)
            (L.mean ~system ~message ~lambda_g ())
            (Eval.mean_into ws ~lambda_g))
        [ 0.; 0.05; 0.25; 0.5; 0.75; 0.9; 0.99; 1.01; 1.5 ])
    paper_orgs

let golden_variants_bit_identity () =
  let settings =
    [
      V.default;
      { V.default with V.lambda_i2 = V.Size_scaled };
      { V.default with V.source_variance = V.Zero };
      { V.default with V.source_rate = V.Network_total };
      { V.default with V.use_relaxing_factor = false };
    ]
  in
  List.iteri
    (fun k variants ->
      let ws = Eval.workspace ~variants ~system:Presets.org_544 ~message () in
      List.iter
        (fun lambda_g ->
          check_bits
            (Printf.sprintf "variant %d at %g" k lambda_g)
            (L.mean ~variants ~system:Presets.org_544 ~message ~lambda_g ())
            (Eval.mean_into ws ~lambda_g))
        [ 0.; 1e-5; 1e-4; 3e-4; 1e-3 ])
    settings

let golden_saturation_bit_identity () =
  List.iter
    (fun (name, system) ->
      let ws = Eval.workspace ~system ~message () in
      check_bits (name ^ " saturation")
        (L.saturation_rate ~system ~message ())
        (Eval.saturation_rate ws);
      (* The first stateful solve runs the same cold sequence. *)
      let state = Solver.bracket_state () in
      check_bits
        (name ^ " first warm-capable solve")
        (L.saturation_rate ~system ~message ())
        (Eval.saturation_rate ~state ws))
    paper_orgs

let single_cluster_bit_identity () =
  let system =
    P.homogeneous ~m:4 ~tree_depth:2 ~clusters:1 ~icn1:Presets.net1 ~ecn1:Presets.net2
      ~icn2:Presets.net1
  in
  let ws = Eval.workspace ~system ~message () in
  List.iter
    (fun lambda_g ->
      check_bits
        (Printf.sprintf "single cluster at %g" lambda_g)
        (L.mean ~system ~message ~lambda_g ())
        (Eval.mean_into ws ~lambda_g))
    [ 0.; 1e-4; 1e-3; 1e-2; 1. ]

let pattern_bit_identity () =
  let pattern = Pattern.Local { p_local = 0.7 } in
  let outgoing cluster =
    Pattern.outgoing_probability pattern ~system:small_system ~cluster
  in
  let ws = Eval.workspace ~outgoing ~system:small_system ~message () in
  List.iter
    (fun lambda_g ->
      check_bits
        (Printf.sprintf "local pattern at %g" lambda_g)
        (Pattern.mean ~pattern ~system:small_system ~message ~lambda_g ())
        (Eval.mean_into ws ~lambda_g))
    [ 0.; 1e-4; 1e-3; 5e-3 ]

(* ---- QCheck: random systems, messages, variants, rates ---- *)

let gen_network =
  QCheck.Gen.(
    let* bw = float_range 50. 1000. in
    let* a_n = float_range 0. 0.1 in
    let* a_s = float_range 0. 0.1 in
    return { P.bandwidth = bw; network_latency = a_n; switch_latency = a_s })

let gen_case =
  QCheck.Gen.(
    let* m = oneofl [ 2; 4; 6; 8 ] in
    (* C = 2·(m/2)^n_c keeps the workspace small: n_c = 1, or 2 when
       the arity allows it without exploding the pair count. *)
    let* icn2_depth = if m <= 4 then return 1 else oneofl [ 1; 2 ] in
    let clusters = P.cluster_size ~m ~tree_depth:icn2_depth in
    let* depths = list_size (return clusters) (int_range 1 3) in
    let* icn2 = gen_network in
    let* nets = list_size (return (2 * clusters)) gen_network in
    let* m_flits = int_range 1 64 in
    let* flit_bytes = float_range 1. 512. in
    let* lambda_i2 = oneofl [ V.Pair_average; V.Size_scaled ] in
    let* source_variance = oneofl [ V.Draper_ghosh; V.Zero ] in
    let* source_rate = oneofl [ V.Per_node; V.Network_total ] in
    let* use_relaxing_factor = bool in
    let* lambda_scale = float_range 0. 2. in
    let cluster_params =
      List.mapi
        (fun i depth ->
          { P.tree_depth = depth; icn1 = List.nth nets (2 * i); ecn1 = List.nth nets ((2 * i) + 1) })
        depths
    in
    let system = P.make_system ~m ~icn2 ~icn2_depth cluster_params in
    let message = { P.length_flits = m_flits; flit_bytes } in
    let variants = { V.lambda_i2; source_variance; source_rate; use_relaxing_factor } in
    return (system, message, variants, lambda_scale))

let arb_case = QCheck.make gen_case

let qcheck_mean_bit_identity =
  QCheck.Test.make ~name:"Eval.mean_into equals Latency.mean to the bit" ~count:150
    arb_case
    (fun (system, message, variants, lambda_scale) ->
      let ws = Eval.workspace ~variants ~system ~message () in
      (* Scale λ by the true saturation rate so the samples cover
         light load, heavy load and past-saturation alike. *)
      let sat = Eval.saturation_rate ws in
      let lambda_g = lambda_scale *. sat in
      let reference = L.mean ~variants ~system ~message ~lambda_g () in
      let fast = Eval.mean_into ws ~lambda_g in
      bits reference = bits fast)

let qcheck_saturation_bit_identity =
  QCheck.Test.make ~name:"Eval.saturation_rate equals Latency.saturation_rate to the bit"
    ~count:40 arb_case
    (fun (system, message, variants, _) ->
      let ws = Eval.workspace ~variants ~system ~message () in
      bits (L.saturation_rate ~variants ~system ~message ())
      = bits (Eval.saturation_rate ws))

(* ---- warm-started saturation searches ---- *)

let warm_matches_cold_and_records () =
  let reg = Metrics.create () in
  Metrics.with_ambient reg @@ fun () ->
  let ws = Eval.workspace ~system:Presets.org_544 ~message () in
  let cold = Eval.saturation_rate ws in
  let count name =
    match Metrics.Snapshot.find (Metrics.snapshot reg) name with
    | Some (Metrics.Snapshot.Counter n) -> n
    | _ -> 0
  in
  Alcotest.(check int) "cold solve records no warm starts" 0 (count "solver_warm_starts");
  Alcotest.(check int) "cold solve records no bracket reuses" 0
    (count "solver_bracket_reuses");
  let state = Solver.bracket_state () in
  let first = Eval.saturation_rate ~state ws in
  check_bits "first stateful solve is the cold sequence" cold first;
  Alcotest.(check int) "still cold through a fresh state" 0 (count "solver_warm_starts");
  let iters_before = count "solver_boundary_iterations" in
  let warm = Eval.saturation_rate ~state ws in
  let iters_warm = count "solver_boundary_iterations" - iters_before in
  Alcotest.(check int) "second solve warm-started" 1 (count "solver_warm_starts");
  Alcotest.(check int) "previous bracket reused verbatim" 1 (count "solver_bracket_reuses");
  Alcotest.(check bool)
    (Printf.sprintf "warm agrees with cold (%h vs %h)" cold warm)
    true
    (Fatnet_numerics.Float_utils.approx_equal ~rel:1e-6 cold warm);
  Alcotest.(check bool)
    (Printf.sprintf "warm bisection is nearly free (%d iterations)" iters_warm)
    true (iters_warm <= 2)

let warm_tracks_moving_root () =
  let reg = Metrics.create () in
  Metrics.with_ambient reg @@ fun () ->
  let state = Solver.bracket_state () in
  (* A family of slightly perturbed systems: the root drifts, the
     bracket follows. *)
  let rates =
    List.map
      (fun i ->
        let system =
          Presets.with_icn2_bandwidth_scaled Presets.org_544
            ~factor:(1. +. (0.01 *. float_of_int i))
        in
        let ws = Eval.workspace ~system ~message () in
        Eval.saturation_rate ~state ws)
      [ 0; 1; 2; 3; 4 ]
  in
  List.iteri
    (fun i rate ->
      let system =
        Presets.with_icn2_bandwidth_scaled Presets.org_544
          ~factor:(1. +. (0.01 *. float_of_int i))
      in
      let cold = L.saturation_rate ~system ~message () in
      Alcotest.(check bool)
        (Printf.sprintf "perturbation %d: warm %.9g vs cold %.9g" i rate cold)
        true
        (Fatnet_numerics.Float_utils.approx_equal ~rel:1e-6 rate cold))
    rates;
  let count name =
    match Metrics.Snapshot.find (Metrics.snapshot reg) name with
    | Some (Metrics.Snapshot.Counter n) -> n
    | _ -> 0
  in
  Alcotest.(check int) "four of five solves warm" 4 (count "solver_warm_starts")

let warm_counters_in_all_formats () =
  let reg = Metrics.create () in
  Metrics.with_ambient reg (fun () ->
      let ws = Eval.workspace ~system:small_system ~message () in
      let state = Solver.bracket_state () in
      ignore (Eval.saturation_rate ~state ws);
      ignore (Eval.saturation_rate ~state ws));
  let snap = Metrics.snapshot reg in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in json") true
        (contains (Metrics.Snapshot.to_json snap) name);
      Alcotest.(check bool) (name ^ " in prometheus") true
        (contains (Metrics.Snapshot.to_prometheus snap) name);
      Alcotest.(check bool) (name ^ " in table") true
        (contains (Fatnet_report.Metrics_report.render snap) name))
    [ "solver_warm_starts"; "solver_bracket_reuses" ]

let warm_repeat_reuses_bracket () =
  (* The design-search revisit pattern: a repeated system's root still
     sits inside the stored tol-tight bracket, so the repeat solve
     reuses it verbatim; a drifted system's root escapes it and the
     solver marches instead.  This is the genuine-reuse counterpart of
     [warm_tracks_moving_root] (which shows a strictly monotone family
     correctly reports zero reuses). *)
  let reg = Metrics.create () in
  Metrics.with_ambient reg @@ fun () ->
  let state = Solver.bracket_state () in
  List.iter
    (fun i ->
      let system =
        Presets.with_icn2_bandwidth_scaled Presets.org_544
          ~factor:(1. +. (0.01 *. float_of_int i))
      in
      let ws = Eval.workspace ~system ~message () in
      ignore (Eval.saturation_rate ~state ws);
      ignore (Eval.saturation_rate ~state ws))
    [ 0; 1 ];
  let count name =
    match Metrics.Snapshot.find (Metrics.snapshot reg) name with
    | Some (Metrics.Snapshot.Counter n) -> n
    | _ -> 0
  in
  Alcotest.(check int) "three of four solves warm" 3 (count "solver_warm_starts");
  Alcotest.(check int) "each repeat reuses the stored bracket" 2
    (count "solver_bracket_reuses")

(* ---- multicore pool ---- *)

let pool_map_basics () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check int) "domains" 3 (Pool.domains pool);
      let inputs = Array.init 20 Fun.id in
      let out = Pool.map pool ~f:(fun ctx x -> (x * x) + (0 * Pool.ctx_id ctx)) inputs in
      Alcotest.(check (array int)) "results at input indices"
        (Array.map (fun x -> x * x) inputs)
        out)

let pool_exceptions_propagate () =
  Pool.with_pool ~domains:2 (fun pool ->
      (match
         Pool.map pool
           ~f:(fun _ x -> if x = 5 then failwith "boom" else x)
           (Array.init 10 Fun.id)
       with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> Alcotest.(check string) "payload" "boom" msg);
      (* The pool survives a failed batch. *)
      let out = Pool.map pool ~f:(fun _ x -> x + 1) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "usable after failure" [| 2; 3; 4 |] out)

let pool_shutdown_semantics () =
  let pool = Pool.create ~domains:2 () in
  let out = Pool.map pool ~f:(fun _ x -> x + 1) [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "map works" [| 2; 3; 4 |] out;
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  match Pool.map pool ~f:(fun _ x -> x) [| 1 |] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ()

let pool_nested_map_raises () =
  Pool.with_pool ~domains:2 (fun pool ->
      match
        Pool.map pool
          ~f:(fun _ _ -> ignore (Pool.map pool ~f:(fun _ x -> x) [| 1 |]))
          [| 0 |]
      with
      | _ -> Alcotest.fail "expected Invalid_argument from nested map"
      | exception Invalid_argument _ -> ())

let pool_means_match_sequential () =
  List.iter
    (fun (name, system) ->
      let ws = Eval.workspace ~system ~message () in
      let sat = Eval.saturation_rate ws in
      (* Shuffled order, light load, near-saturation, and diverged
         points alike. *)
      let lambdas =
        Array.of_list
          (List.map (fun f -> f *. sat) [ 0.9; 0.1; 1.2; 0.5; 0.; 0.99; 1.01; 0.7 ])
      in
      let expected = Array.map (fun lambda_g -> Eval.mean_into ws ~lambda_g) lambdas in
      List.iter
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              let got = Pool.means pool ~system ~message lambdas in
              Array.iteri
                (fun i v ->
                  check_bits
                    (Printf.sprintf "%s, %d domains, point %d" name domains i)
                    expected.(i) v)
                got))
        [ 1; 2; 4 ])
    paper_orgs

let pool_sweep_matches_sequential () =
  let seq = Sweep.up_to_saturation ~system:small_system ~message ~steps:7 () in
  Pool.with_pool ~domains:3 (fun pool ->
      let par = Sweep.up_to_saturation_pool pool ~system:small_system ~message ~steps:7 () in
      List.iter2
        (fun (a : Sweep.point) (b : Sweep.point) ->
          Alcotest.(check bool) "same grid" true (a.Sweep.lambda_g = b.Sweep.lambda_g);
          check_bits "pooled sweep latency" a.Sweep.latency b.Sweep.latency)
        seq.Sweep.points par.Sweep.points)

let pool_saturation_rates () =
  let family =
    Array.init 5 (fun i ->
        Presets.with_icn2_bandwidth_scaled small_system
          ~factor:(1. +. (0.01 *. float_of_int i)))
  in
  let expected = Array.map (fun system -> L.saturation_rate ~system ~message ()) family in
  Pool.with_pool ~domains:2 (fun pool ->
      let cold = Pool.saturation_rates pool ~message family in
      Array.iteri
        (fun i v -> check_bits (Printf.sprintf "cold search %d" i) expected.(i) v)
        cold;
      let warm = Pool.saturation_rates pool ~warm:true ~message family in
      Array.iteri
        (fun i v ->
          Alcotest.(check bool)
            (Printf.sprintf "warm search %d: %.9g vs %.9g" i expected.(i) v)
            true
            (Fatnet_numerics.Float_utils.approx_equal ~rel:1e-6 expected.(i) v))
        warm)

let pool_memo_counters_in_all_formats () =
  let reg = Metrics.create () in
  Metrics.with_ambient reg (fun () ->
      let memo = Memo.create ~metric:"model_memo" () in
      Pool.with_pool ~domains:2 (fun pool ->
          let lambdas = [| 1e-4; 2e-4; 3e-4 |] in
          ignore (Pool.means pool ~memo ~key:"fmt" ~system:small_system ~message lambdas);
          ignore (Pool.means pool ~memo ~key:"fmt" ~system:small_system ~message lambdas)));
  let snap = Metrics.snapshot reg in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in json") true
        (contains (Metrics.Snapshot.to_json snap) name);
      Alcotest.(check bool) (name ^ " in prometheus") true
        (contains (Metrics.Snapshot.to_prometheus snap) name);
      Alcotest.(check bool) (name ^ " in table") true
        (contains (Fatnet_report.Metrics_report.render snap) name))
    [ "model_memo_hits"; "model_memo_misses"; "pool_domain_occupancy" ]

(* Satellite 3: the parallel engine is bit-identical to the
   sequential loop for any domain count and any λ order, memo on or
   off, hit or miss — random heterogeneous systems included. *)
let gen_pool_case =
  QCheck.Gen.(
    let* system, message, variants, _ = gen_case in
    let* scales = list_size (int_range 1 24) (float_range 0. 2.) in
    return (system, message, variants, scales))

let qcheck_pool_bit_identity =
  QCheck.Test.make
    ~name:"Pool.means equals the sequential loop to the bit (domains 1/2/4/8)"
    ~count:15 (QCheck.make gen_pool_case)
    (fun (system, message, variants, scales) ->
      let ws = Eval.workspace ~variants ~system ~message () in
      let sat = Eval.saturation_rate ws in
      let lambdas = Array.of_list (List.map (fun s -> s *. sat) scales) in
      let expected = Array.map (fun lambda_g -> Eval.mean_into ws ~lambda_g) lambdas in
      let same got =
        Array.length got = Array.length expected
        && Array.for_all2 (fun a b -> bits a = bits b) expected got
      in
      List.for_all
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              let plain = Pool.means pool ~variants ~system ~message lambdas in
              let memo = Memo.create () in
              let cold = Pool.means pool ~memo ~key:"case" ~variants ~system ~message lambdas in
              let warm = Pool.means pool ~memo ~key:"case" ~variants ~system ~message lambdas in
              same plain && same cold && same warm))
        [ 1; 2; 4; 8 ])

(* ---- allocation discipline ---- *)

let mean_into_is_allocation_free () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ -> ()  (* bytecode boxes everything *)
  | Sys.Native ->
      let ws = Eval.workspace ~system:Presets.org_544 ~message () in
      (* Warm up: fault in any lazy state. *)
      ignore (Eval.mean_into ws ~lambda_g:1e-4);
      let n = 1000 in
      let before = Gc.allocated_bytes () in
      for _ = 1 to n do
        ignore (Eval.mean_into ws ~lambda_g:1e-4)
      done;
      let per_eval = (Gc.allocated_bytes () -. before) /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "bytes per eval %.1f <= 64" per_eval)
        true (per_eval <= 64.)

(* ---- batched sweeps ---- *)

let batch_matches_pointwise () =
  let ws = Eval.workspace ~system:small_system ~message () in
  let sat = Eval.saturation_rate ws in
  let lambdas = List.init 9 (fun i -> 0.3 *. sat *. float_of_int i) in
  let s = Sweep.batch ws ~lambdas in
  Alcotest.(check int) "points" 9 (List.length s.Sweep.points);
  List.iteri
    (fun i p ->
      let expected = List.nth lambdas i in
      Alcotest.(check bool) "order preserved" true (p.Sweep.lambda_g = expected);
      if p.Sweep.lambda_g < sat then
        check_bits
          (Printf.sprintf "batch point %d" i)
          (L.mean ~system:small_system ~message ~lambda_g:p.Sweep.lambda_g ())
          p.Sweep.latency
      else
        Alcotest.(check bool) "saturated point is infinite" true
          (not (Float.is_finite p.Sweep.latency)))
    s.Sweep.points

let batch_frontier_skips_evaluations () =
  let reg = Metrics.create () in
  Metrics.with_ambient reg @@ fun () ->
  let ws = Eval.workspace ~system:small_system ~message () in
  let sat = Eval.saturation_rate ws in
  let evals0 =
    match Metrics.Snapshot.find (Metrics.snapshot reg) "model_evaluations" with
    | Some (Metrics.Snapshot.Counter n) -> n
    | _ -> 0
  in
  (* Five rates past saturation, shuffled: only the lowest is
     evaluated, the frontier covers the rest. *)
  let lambdas = List.map (fun f -> f *. sat) [ 1.9; 1.2; 1.7; 1.3; 1.5 ] in
  let s = Sweep.batch ws ~lambdas in
  let evals =
    (match Metrics.Snapshot.find (Metrics.snapshot reg) "model_evaluations" with
    | Some (Metrics.Snapshot.Counter n) -> n
    | _ -> 0)
    - evals0
  in
  Alcotest.(check int) "one evaluation for five saturated points" 1 evals;
  Alcotest.(check bool) "all saturated" true
    (List.for_all (fun p -> not (Float.is_finite p.Sweep.latency)) s.Sweep.points);
  let sat_count =
    match
      Metrics.Snapshot.find (Metrics.snapshot reg) "model_sweep_points_saturated"
    with
    | Some (Metrics.Snapshot.Counter n) -> n
    | _ -> 0
  in
  Alcotest.(check int) "saturated points still counted" 5 sat_count

let up_to_saturation_margin_validation () =
  let expect margin =
    Alcotest.check_raises
      (Printf.sprintf "margin %h rejected" margin)
      (Invalid_argument "Sweep.up_to_saturation: margin must be finite and in (0,1)")
      (fun () ->
        ignore
          (Sweep.up_to_saturation ~margin ~system:small_system ~message ~steps:4 ()))
  in
  expect nan;
  expect 0.;
  expect (-0.5);
  expect 1.;
  expect 1.5;
  expect infinity;
  expect neg_infinity

let linear_matches_reference () =
  let s = Sweep.linear ~system:small_system ~message ~lo:0. ~hi:1e-3 ~steps:6 () in
  List.iter
    (fun p ->
      check_bits
        (Printf.sprintf "linear at %g" p.Sweep.lambda_g)
        (L.mean ~system:small_system ~message ~lambda_g:p.Sweep.lambda_g ())
        p.Sweep.latency)
    s.Sweep.points

let () =
  Alcotest.run "eval"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "paper organizations" `Quick golden_mean_bit_identity;
          Alcotest.test_case "all variant settings" `Quick golden_variants_bit_identity;
          Alcotest.test_case "saturation rates" `Quick golden_saturation_bit_identity;
          Alcotest.test_case "single cluster" `Quick single_cluster_bit_identity;
          Alcotest.test_case "local traffic pattern" `Quick pattern_bit_identity;
          QCheck_alcotest.to_alcotest qcheck_mean_bit_identity;
          QCheck_alcotest.to_alcotest qcheck_saturation_bit_identity;
        ] );
      ( "warm start",
        [
          Alcotest.test_case "warm matches cold, counters recorded" `Quick
            warm_matches_cold_and_records;
          Alcotest.test_case "bracket follows a drifting root" `Quick
            warm_tracks_moving_root;
          Alcotest.test_case "revisited system reuses its bracket" `Quick
            warm_repeat_reuses_bracket;
          Alcotest.test_case "counters in all three formats" `Quick
            warm_counters_in_all_formats;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map basics" `Quick pool_map_basics;
          Alcotest.test_case "exceptions propagate" `Quick pool_exceptions_propagate;
          Alcotest.test_case "shutdown semantics" `Quick pool_shutdown_semantics;
          Alcotest.test_case "nested map raises" `Quick pool_nested_map_raises;
          Alcotest.test_case "means match sequential" `Quick pool_means_match_sequential;
          Alcotest.test_case "pooled sweep matches sequential" `Quick
            pool_sweep_matches_sequential;
          Alcotest.test_case "saturation rates" `Quick pool_saturation_rates;
          Alcotest.test_case "memo and occupancy in all formats" `Quick
            pool_memo_counters_in_all_formats;
          QCheck_alcotest.to_alcotest qcheck_pool_bit_identity;
        ] );
      ( "allocation",
        [ Alcotest.test_case "mean_into allocation-free" `Quick mean_into_is_allocation_free ] );
      ( "batch",
        [
          Alcotest.test_case "batch matches pointwise" `Quick batch_matches_pointwise;
          Alcotest.test_case "frontier skips evaluations" `Quick
            batch_frontier_skips_evaluations;
          Alcotest.test_case "margin validation" `Quick up_to_saturation_margin_validation;
          Alcotest.test_case "linear matches reference" `Quick linear_matches_reference;
        ] );
    ]
